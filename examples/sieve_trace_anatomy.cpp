//===- sieve_trace_anatomy.cpp - Walk through the paper's §2 example --------------===//
//
// Runs the paper's Figure 1 program (sieve of Eratosthenes) and narrates
// what the trace machinery did, mirroring the §2 walkthrough: the inner
// loop compiles first (T45), the outer loop nests it (T16), and the hot
// `continue` side exit grows a branch trace (T23,1).
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <string>

#include "api/engine.h"
#include "lir/lir.h"
#include "trace/monitor.h"

using namespace tracejit;

int main() {
  EngineOptions Opts;
  Opts.CollectStats = true;

  Engine E(Opts);
  E.setPrintHook([](const std::string &S) { fputs(S.c_str(), stdout); });

  // Figure 1, plus initialization and a checksum.
  auto R = E.eval(R"js(
    var N = 1000;
    var primes = Array(N);
    for (var p = 0; p < N; ++p) primes[p] = true;

    for (var i = 2; i < N; ++i) {
      if (!primes[i]) continue;          // line 2-3: the branch that gets hot
      for (var k = i + i; k < N; k += i) // line 4-5: the inner loop (T45)
        primes[k] = false;
    }

    var count = 0;
    for (var n = 2; n < N; ++n) if (primes[n]) count = count + 1;
    print('primes below', N, '=', count);
  )js");
  if (!R.ok()) {
    fprintf(stderr, "%s\n", R.Err.describe().c_str());
    return 1;
  }

  auto *M = static_cast<TraceMonitorImpl *>(E.context().Monitor);
  printf("\n--- trace anatomy (compare with paper §2) ---\n");
  for (const auto &F : M->fragments()) {
    if (F->Body.empty())
      continue;
    printf("fragment %u: %-6s anchor pc %u, entry %s\n", F->Id,
           F->Kind == FragmentKind::Root ? "root" : "branch", F->AnchorPc,
           F->EntryTypes.describe().c_str());
    printf("  %zu LIR instructions, %u native bytes, %u bytecodes/iteration,"
           " %llu iterations\n",
           F->Body.size(), F->NativeSize, F->BytecodesCovered,
           (unsigned long long)F->Iterations);
    int TreeCalls = 0;
    for (const LIns *I : F->Body)
      if (I->Op == LOp::TreeCall)
        ++TreeCalls;
    if (TreeCalls)
      printf("  calls %d nested tree(s) -- the outer loop treating the "
             "inner loop as one unit (paper Fig. 7b)\n",
             TreeCalls);
  }

  VMStats S = E.stats();
  printf("\ntrees=%llu branches=%llu tree-calls=%llu stitched=%llu "
         "side-exits=%llu\n",
         (unsigned long long)S.TreesCompiled,
         (unsigned long long)S.BranchesCompiled,
         (unsigned long long)S.TreeCalls,
         (unsigned long long)S.StitchedTransfers,
         (unsigned long long)S.SideExits);
  printf("\nExpected shape (paper §2): the inner loop compiles first; the\n"
         "outer loop's tree calls it; the `continue` path appears as a\n"
         "branch trace stitched to the outer tree.\n");
  return 0;
}
