//===- quickstart.cpp - Embedding tracejit in five minutes ------------------------===//
//
// Create an engine, run a script, read results back, and see the tracing
// JIT kick in on a hot loop.
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <iostream>

#include "api/engine.h"

int main() {
  using namespace tracejit;

  // 1. Configure: defaults are the paper's settings (hot threshold 2,
  //    blacklisting, nesting, all LIR filters, native x86-64 backend).
  EngineOptions Opts;
  Opts.CollectStats = true;

  Engine E(Opts);
  E.setPrintHook([](const std::string &S) { std::cout << S; });

  // 2. Run a program with a hot loop. The first two iterations interpret,
  //    then the loop is recorded, compiled, and runs as native code.
  auto R = E.eval(R"js(
    function hypot(a, b) { return Math.sqrt(a * a + b * b); }

    var total = 0;
    for (var i = 0; i < 200000; ++i)
      total = total + hypot(i, i + 1);
    print('total =', total);
  )js");
  if (!R.ok()) {
    std::cerr << R.Err.describe() << "\n";
    return 1;
  }

  // 3. Read globals from C++.
  Value Total = E.getGlobal("total");
  printf("total from C++: %.3f\n", Total.numberValue());

  // 4. Inject data and host functions.
  E.setGlobalNumber("scale", 2.5);
  E.registerNative("hostClamp", [](Interpreter &I, Value, const Value *Args,
                                   uint32_t N) -> Value {
    double X = N > 0 ? Interpreter::toNumber(Args[0]) : 0;
    return I.context().TheHeap.boxNumber(X < 0 ? 0 : X > 100 ? 100 : X);
  });
  E.eval("print('clamped:', hostClamp(3 * scale * 20));");

  // 5. Inspect what the JIT did.
  VMStats S = E.stats();
  printf("\n--- VM statistics ---\n%s", S.report().c_str());
  return 0;
}
