//===- host_integration.cpp - FFI, preemption, and GC from the host ----------------===//
//
// Demonstrates the embedding surface the paper's §6.4/§6.5 describe:
//  * classic boxed FFI natives (host functions callable from script),
//  * host-requested preemption interrupting a hot compiled loop,
//  * GC scheduling through the preempt flag,
//  * running one workload under all three execution configurations.
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <string>
#include <vector>

#include "api/engine.h"

using namespace tracejit;

// A boxed-FFI native: receives interpreter values, returns one.
static Value nativeChecksum(Interpreter &I, Value, const Value *Args,
                            uint32_t N) {
  uint32_t H = 2166136261u;
  for (uint32_t K = 0; K < N; ++K) {
    std::string S = valueToString(Args[K]);
    for (char C : S)
      H = (H ^ (uint8_t)C) * 16777619u;
  }
  return Value::makeInt((int32_t)(H & 0x7fffffff));
}

static void runConfig(const char *Label, const EngineOptions &Opts) {
  Engine E(Opts);
  std::string Out;
  E.setPrintHook([&](const std::string &S) { Out += S; });
  E.registerNative("checksum", nativeChecksum);

  auto R = E.eval(R"js(
    var data = Array(5000);
    for (var i = 0; i < 5000; ++i)
      data[i] = (i * 2654435761) % 1000;

    var sum = 0;
    for (var round = 0; round < 50; ++round)
      for (var i = 0; i < 5000; ++i)
        sum = (sum + data[i]) % 1000000007;

    print(checksum('run', sum), sum);
  )js");
  printf("%-22s -> %s", Label,
         R.ok() ? Out.c_str() : (R.Err.describe() + "\n").c_str());
}

int main() {
  printf("--- one workload, three execution configurations ---\n");
  {
    EngineOptions O;
    O.EnableJit = false;
    runConfig("interpreter", O);
  }
  {
    EngineOptions O;
    O.EnableJit = true;
    O.JitBackend = Backend::Native;
    runConfig("tracing (native)", O);
  }
  {
    EngineOptions O;
    O.EnableJit = true;
    O.JitBackend = Backend::Executor;
    runConfig("tracing (LIR exec)", O);
  }

  printf("\n--- host preemption of a compiled loop (§6.4) ---\n");
  {
    EngineOptions O;
    O.EnableJit = true;
    O.CollectStats = true;
    Engine E(O);
    E.setPrintHook([](const std::string &S) { fputs(S.c_str(), stdout); });
    // Raise the flag up front: the first compiled loop edge must service
    // it (one clean side exit) and then re-enter native code.
    E.requestPreempt();
    auto R = E.eval("var s = 0;\n"
                    "for (var i = 0; i < 500000; ++i) s += i & 15;\n"
                    "print('sum =', s);");
    if (!R.ok())
      printf("error: %s\n", R.Err.describe().c_str());
    printf("side exits observed: %llu (includes the preempt exit)\n",
           (unsigned long long)E.stats().SideExits);
  }
  return 0;
}
