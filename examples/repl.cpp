//===- repl.cpp - Interactive MiniJS shell -----------------------------------------===//
//
// A read-eval-print loop over one persistent Engine: globals survive
// between lines, traces accumulate in the trace cache, and `:stats`,
// `:jit on|off`-style commands expose the VM.
//
//   $ ./repl
//   tj> var s = 0; for (var i = 0; i < 1e6; ++i) s += i;
//   tj> print(s);
//   499999500000
//   tj> :stats
//
// Positional arguments are script files: each is run to completion (with
// file:line:col diagnostics on error) and the process exits instead of
// entering the loop. Flags are EngineOptions::applyFlag spellings
// ("--no-jit", "--ic", "--stats", "-O0".."-O2", "--jit-opt=[+|-]pass,...").
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/engine.h"

using namespace tracejit;

int main(int argc, char **argv) {
  EngineOptions Opts;
  Opts.CollectStats = true;
  std::vector<std::string> Files;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (!A.empty() && A[0] == '-') {
      if (!Opts.applyFlag(A)) {
        std::cerr << "unknown flag: " << A << "\n";
        return 2;
      }
    } else {
      Files.push_back(A);
    }
  }

  auto E = std::make_unique<Engine>(Opts);
  E->setPrintHook([](const std::string &S) { std::cout << S; });

  // Lint mode (--analyze): parse + static analysis only, no execution.
  // Exit 1 when any file fails to parse or produces findings, so CI can
  // gate on a clean report.
  if (Opts.AnalyzeOnly) {
    if (Files.empty()) {
      std::cerr << "--analyze requires at least one script file\n";
      return 2;
    }
    bool AnyFinding = false;
    for (const std::string &Path : Files) {
      std::ifstream In(Path);
      if (!In) {
        std::cerr << "cannot open " << Path << "\n";
        return 1;
      }
      std::ostringstream Buf;
      Buf << In.rdbuf();
      auto Report = E->analyze(Buf.str(), Path);
      if (!Report.Ok) {
        std::cerr << Report.Err.describe() << "\n";
        AnyFinding = true;
        continue;
      }
      for (const AnalysisDiagnostic &D : Report.Diagnostics) {
        std::cerr << Path << ":" << D.Line << ":" << D.Col
                  << ": warning: [" << analysisDiagKindName(D.Kind) << "] "
                  << D.Message;
        if (!D.Function.empty())
          std::cerr << " (in function " << D.Function << ")";
        std::cerr << "\n";
        AnyFinding = true;
      }
    }
    return AnyFinding ? 1 : 0;
  }

  // Script mode: run each file through the FileName-carrying eval so
  // diagnostics say which script failed, then exit without a prompt.
  if (!Files.empty()) {
    for (const std::string &Path : Files) {
      std::ifstream In(Path);
      if (!In) {
        std::cerr << "cannot open " << Path << "\n";
        return 1;
      }
      std::ostringstream Buf;
      Buf << In.rdbuf();
      auto R = E->eval(Buf.str(), Path);
      if (!R.ok()) {
        std::cerr << R.Err.describe() << "\n";
        return 1;
      }
    }
    return 0;
  }

  std::cout << "tracejit REPL -- MiniJS with a trace-compiling JIT\n"
            << "commands: :stats  :reset  :quit   (everything else is "
               "evaluated)\n";

  std::string Line;
  while (true) {
    std::cout << "tj> " << std::flush;
    if (!std::getline(std::cin, Line))
      break;
    if (Line == ":quit" || Line == ":q")
      break;
    if (Line == ":stats") {
      std::cout << E->stats().report();
      continue;
    }
    if (Line == ":reset") {
      E = std::make_unique<Engine>(Opts);
      E->setPrintHook([](const std::string &S) { std::cout << S; });
      std::cout << "(fresh engine)\n";
      continue;
    }
    if (Line.empty())
      continue;
    // Convenience: expressions without a trailing ';' get wrapped in print.
    std::string Src = Line;
    if (Src.find(';') == std::string::npos &&
        Src.rfind("print", 0) != 0)
      Src = "print(" + Src + ");";
    auto R = E->eval(Src);
    if (!R.ok())
      std::cout << R.Err.describe() << "\n";
  }
  return 0;
}
