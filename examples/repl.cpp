//===- repl.cpp - Interactive MiniJS shell -----------------------------------------===//
//
// A read-eval-print loop over one persistent Engine: globals survive
// between lines, traces accumulate in the trace cache, and `:stats`,
// `:jit on|off`-style commands expose the VM.
//
//   $ ./repl
//   tj> var s = 0; for (var i = 0; i < 1e6; ++i) s += i;
//   tj> print(s);
//   499999500000
//   tj> :stats
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "api/engine.h"

using namespace tracejit;

int main(int argc, char **argv) {
  EngineOptions Opts;
  Opts.CollectStats = true;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--no-jit")
      Opts.EnableJit = false;
    else if (A == "--executor")
      Opts.JitBackend = Backend::Executor;
    else if (A == "--dump-lir")
      Opts.DumpLIR = true;
    else if (A == "--verify-lir")
      Opts.VerifyLir = true;
    else if (A == "--no-verify-lir")
      Opts.VerifyLir = false;
  }

  auto E = std::make_unique<Engine>(Opts);
  E->setPrintHook([](const std::string &S) { std::cout << S; });

  std::cout << "tracejit REPL -- MiniJS with a trace-compiling JIT\n"
            << "commands: :stats  :reset  :quit   (everything else is "
               "evaluated)\n";

  std::string Line;
  while (true) {
    std::cout << "tj> " << std::flush;
    if (!std::getline(std::cin, Line))
      break;
    if (Line == ":quit" || Line == ":q")
      break;
    if (Line == ":stats") {
      std::cout << E->stats().report();
      continue;
    }
    if (Line == ":reset") {
      E = std::make_unique<Engine>(Opts);
      E->setPrintHook([](const std::string &S) { std::cout << S; });
      std::cout << "(fresh engine)\n";
      continue;
    }
    if (Line.empty())
      continue;
    // Convenience: expressions without a trailing ';' get wrapped in print.
    std::string Src = Line;
    if (Src.find(';') == std::string::npos &&
        Src.rfind("print", 0) != 0)
      Src = "print(" + Src + ");";
    auto R = E->eval(Src);
    if (!R.ok())
      std::cout << R.Err.describe() << "\n";
  }
  return 0;
}
