//===- test_name_tables.cpp - Enum name-table completeness --------------------===//
//
// The X-macro lists in support/events.cpp pin each name table's size and
// order at compile time; this suite re-checks the runtime-visible half of
// the contract: every in-range enumerator resolves to a real, distinct
// name (never the "?" fallback), and out-of-range lookups degrade to "?"
// instead of reading past the table.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>

#include "support/events.h"

using namespace tracejit;

namespace {

template <typename EnumT, typename NameFn>
void checkTable(size_t Count, NameFn Name, const char *What) {
  std::set<std::string> Seen;
  for (size_t I = 0; I < Count; ++I) {
    const char *S = Name((EnumT)I);
    ASSERT_NE(S, nullptr) << What << " value " << I;
    EXPECT_STRNE(S, "?") << What << " value " << I << " has no name";
    EXPECT_GT(std::strlen(S), 0u) << What << " value " << I;
    EXPECT_TRUE(Seen.insert(S).second)
        << What << " name '" << S << "' appears twice";
  }
  EXPECT_STREQ(Name((EnumT)Count), "?") << What << " out-of-range lookup";
}

} // namespace

TEST(NameTables, AbortReasonsAllNamed) {
  checkTable<AbortReason>((size_t)AbortReason::NumReasons, abortReasonName,
                          "AbortReason");
}

TEST(NameTables, VerifyRulesAllNamed) {
  checkTable<VerifyRule>((size_t)VerifyRule::NumRules, verifyRuleName,
                         "VerifyRule");
}

TEST(NameTables, JitEventKindsAllNamed) {
  checkTable<JitEventKind>((size_t)JitEventKind::NumKinds, jitEventKindName,
                           "JitEventKind");
}
