//===- test_jit.cpp - Differential tests: interpreter vs. both JIT backends -===//
//
// Every program runs three ways -- pure interpreter, JIT with the native
// x86-64 backend, JIT with the portable LIR-executor backend -- and all
// three outputs must agree. The JIT configurations use a hot-loop
// threshold of 2 (the paper's default), so even short loops compile.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "api/engine.h"
#include "trace/monitor.h"

using namespace tracejit;

namespace {

std::string runConfig(const std::string &Src, const EngineOptions &Opts,
                      VMStats *StatsOut = nullptr) {
  Engine E(Opts);
  std::string Out;
  E.setPrintHook([&](const std::string &S) { Out += S; });
  auto R = E.eval(Src);
  EXPECT_TRUE(R.ok()) << R.Err.describe() << "\nprogram:\n" << Src;
  if (!R.ok())
    return "<error: " + R.Err.describe() + ">";
  if (StatsOut)
    *StatsOut = E.stats();
  return Out;
}

EngineOptions interpOpts() {
  EngineOptions O;
  O.EnableJit = false;
  return O;
}

EngineOptions nativeOpts() {
  EngineOptions O;
  O.EnableJit = true;
  O.JitBackend = Backend::Native;
  O.CollectStats = true;
  // diff3Traced asserts TracesCompleted/TraceEnters: pin the tier so a
  // TRACEJIT_TIER=method CI run cannot reroute the loops to method code.
  O.Tier = TierMode::Trace;
  return O;
}

EngineOptions executorOpts() {
  EngineOptions O;
  O.EnableJit = true;
  O.JitBackend = Backend::Executor;
  O.CollectStats = true;
  O.Tier = TierMode::Trace;
  return O;
}

/// The core differential harness.
void diff3(const std::string &Src) {
  std::string I = runConfig(Src, interpOpts());
  VMStats NatStats;
  std::string N = runConfig(Src, nativeOpts(), &NatStats);
  std::string X = runConfig(Src, executorOpts());
  EXPECT_EQ(I, N) << "native JIT diverged from interpreter on:\n" << Src;
  EXPECT_EQ(I, X) << "executor JIT diverged from interpreter on:\n" << Src;
}

/// Like diff3, but also requires that at least one trace actually compiled
/// and ran (guards against silently falling back to pure interpretation).
void diff3Traced(const std::string &Src, uint64_t MinTraces = 1) {
  diff3(Src);
  VMStats S;
  runConfig(Src, nativeOpts(), &S);
  EXPECT_GE(S.TracesCompleted, MinTraces) << Src;
  EXPECT_GE(S.TraceEnters, 1u) << Src;
}

} // namespace

TEST(Jit, SimpleIntLoop) {
  diff3Traced("var s = 0; for (var i = 0; i < 1000; ++i) s += i; print(s);");
}

TEST(Jit, SimpleDoubleLoop) {
  diff3Traced("var s = 0.5; for (var i = 0; i < 1000; ++i) s = s + 0.25;"
              "print(s);");
}

TEST(Jit, IntOverflowOnTrace) {
  // Starts int, overflows mid-loop: overflow guard exits, oracle demotes,
  // a double trace takes over.
  diff3Traced("var s = 1; for (var i = 0; i < 100; ++i) s = s * 3;"
              "print(s);");
}

TEST(Jit, BitOpsLoop) {
  diff3Traced("var x = 0; for (var i = 0; i < 5000; ++i)"
              "  x = (x + i) & 0xffff ^ (i << 3) | (i >>> 2);"
              "print(x);");
}

TEST(Jit, BranchyLoopGrowsTraceTree) {
  diff3Traced("var a = 0, b = 0;\n"
              "for (var i = 0; i < 2000; ++i) {\n"
              "  if (i % 3 == 0) a += i; else b += i;\n"
              "}\n"
              "print(a, b);");
}

TEST(Jit, WhileLoop) {
  diff3Traced("var n = 0; var i = 0; while (i < 777) { n += 2; i = i + 1; }"
              "print(n, i);");
}

TEST(Jit, DoWhileLoop) {
  diff3Traced("var i = 0; do { i = i + 1; } while (i < 543); print(i);");
}

TEST(Jit, NestedLoops) {
  diff3Traced("var c = 0;\n"
              "for (var i = 0; i < 60; ++i)\n"
              "  for (var j = 0; j < 60; ++j)\n"
              "    c = c + 1;\n"
              "print(c);");
}

TEST(Jit, SieveFromThePaper) {
  diff3Traced("var primes = Array(1000);\n"
              "for (var p = 0; p < 1000; ++p) primes[p] = true;\n"
              "for (var i = 2; i < 1000; ++i) {\n"
              "  if (!primes[i]) continue;\n"
              "  for (var k = i + i; k < 1000; k += i)\n"
              "    primes[k] = false;\n"
              "}\n"
              "var count = 0;\n"
              "for (var n = 2; n < 1000; ++n) if (primes[n]) count = count + 1;\n"
              "print(count);");
}

TEST(Jit, ArrayReadWrite) {
  diff3Traced("var a = Array(100);\n"
              "for (var i = 0; i < 100; ++i) a[i] = i * 2;\n"
              "var s = 0;\n"
              "for (var j = 0; j < 100; ++j) s += a[j];\n"
              "print(s, a.length);");
}

TEST(Jit, ArrayAppendGrowth) {
  diff3Traced("var a = [];\n"
              "for (var i = 0; i < 500; ++i) a[i] = i;\n"
              "print(a.length, a[0], a[499]);");
}

TEST(Jit, ObjectPropertiesOnTrace) {
  diff3Traced("var o = {x: 0, y: 1};\n"
              "for (var i = 0; i < 500; ++i) { o.x = o.x + o.y; }\n"
              "print(o.x);");
}

TEST(Jit, ScriptedCallInlining) {
  diff3Traced("function add(a, b) { return a + b; }\n"
              "var s = 0;\n"
              "for (var i = 0; i < 1000; ++i) s = add(s, i);\n"
              "print(s);");
}

TEST(Jit, MathNativesOnTrace) {
  diff3Traced("var s = 0;\n"
              "for (var i = 0; i < 300; ++i)"
              "  s += Math.sqrt(i) + Math.abs(-i) + Math.min(i, 10);\n"
              "print(Math.floor(s));");
}

TEST(Jit, DoubleToIntIndexing) {
  diff3Traced("var a = Array(64);\n"
              "for (var i = 0; i < 64; ++i) a[i] = i;\n"
              "var s = 0;\n"
              "for (var j = 0.0; j < 64; j = j + 1) s += a[j];\n"
              "print(s);");
}

TEST(Jit, StringCharCodeAt) {
  diff3Traced("var s = 'abcdefghijklmnopqrstuvwxyz';\n"
              "var t = 0;\n"
              "for (var r = 0; r < 40; ++r)\n"
              "  for (var i = 0; i < s.length; ++i) t += s.charCodeAt(i);\n"
              "print(t);");
}

TEST(Jit, StringConcatOnTrace) {
  diff3Traced("var s = '';\n"
              "for (var i = 0; i < 64; ++i) s = s + 'x';\n"
              "print(s.length);");
}

TEST(Jit, TypeUnstableLoopStabilizes) {
  // i stays int; s flips to double on the first iteration -- classic
  // type-unstable first iteration (Fig. 6), resolved by peer linking and
  // the oracle.
  diff3Traced("var s = 0;\n"
              "for (var i = 0; i < 500; ++i) s = s + 0.5;\n"
              "print(s);");
}

TEST(Jit, BreakOutOfLoop) {
  diff3Traced("var i = 0;\n"
              "for (;;) { i = i + 1; if (i >= 1234) break; }\n"
              "print(i);");
}

TEST(Jit, ContinuePath) {
  diff3Traced("var s = 0;\n"
              "for (var i = 0; i < 3000; ++i) {\n"
              "  if ((i & 1) == 0) continue;\n"
              "  s += i;\n"
              "}\n"
              "print(s);");
}

TEST(Jit, TernaryAndLogicalOps) {
  diff3Traced("var s = 0;\n"
              "for (var i = 0; i < 1000; ++i)\n"
              "  s += (i % 2 == 0 ? 1 : 2) + (i > 500 && i < 600 ? 10 : 0);\n"
              "print(s);");
}

TEST(Jit, UntraceableRecursionStaysCorrect) {
  // Recursion aborts recording; blacklisting must keep this correct (and
  // eventually quiet).
  diff3("function fib(n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }\n"
        "var s = 0;\n"
        "for (var i = 0; i < 15; ++i) s += fib(i);\n"
        "print(s);");
}

TEST(Jit, GlobalsOnTrace) {
  diff3Traced("var g = 0;\n"
              "function bump(i) { g = g + i; return g; }\n"
              "var last = 0;\n"
              "for (var i = 0; i < 400; ++i) last = bump(i);\n"
              "print(g, last);");
}

TEST(Jit, DeepExpressionStacks) {
  diff3Traced("var s = 0;\n"
              "for (var i = 0; i < 500; ++i)\n"
              "  s += ((i + 1) * (i + 2) - (i + 3)) % 97 + (i ^ 3) % 13;\n"
              "print(s);");
}

TEST(Jit, NestedLoopsWithBranches) {
  diff3Traced("var c = 0;\n"
              "for (var i = 0; i < 50; ++i) {\n"
              "  for (var j = 0; j < 50; ++j) {\n"
              "    if ((i + j) % 2 == 0) c += 1; else c += 2;\n"
              "  }\n"
              "}\n"
              "print(c);");
}

TEST(Jit, TripleNestedLoops) {
  diff3Traced("var c = 0;\n"
              "for (var i = 0; i < 12; ++i)\n"
              "  for (var j = 0; j < 12; ++j)\n"
              "    for (var k = 0; k < 12; ++k)\n"
              "      c = c + 1;\n"
              "print(c);");
}

TEST(Jit, PreemptionDuringNativeLoop) {
  EngineOptions O = nativeOpts();
  Engine E(O);
  std::string Out;
  E.setPrintHook([&](const std::string &S) { Out += S; });
  // On-trace allocation (string concat) raises the preempt flag under heap
  // pressure; the guard at the compiled loop edge must exit so the
  // interpreter can collect, then re-enter the trace -- without corrupting
  // the loop (§6.4).
  auto R = E.eval("var total = 0;\n"
                  "for (var r = 0; r < 40; ++r) {\n"
                  "  var s = '';\n"
                  "  for (var i = 0; i < 3000; ++i) s = s + 'xxxxxxxx';\n"
                  "  total += s.length;\n"
                  "}\n"
                  "print(total);");
  ASSERT_TRUE(R.ok()) << R.Err.describe();
  EXPECT_EQ(Out, "960000\n");
  EXPECT_GE(E.stats().GCs, 1u) << "expected GC pressure during the loop";
  EXPECT_GE(E.stats().TraceEnters, 1u);
}

TEST(Jit, HostRequestedPreemption) {
  // The host can raise the preempt flag at any time; both interpreted and
  // compiled loop edges service it promptly.
  EngineOptions O = nativeOpts();
  Engine E(O);
  E.requestPreempt();
  auto R = E.eval("var s = 0; for (var i = 0; i < 10000; ++i) s += i;");
  ASSERT_TRUE(R.ok()) << R.Err.describe();
  EXPECT_EQ(E.getGlobal("s").numberValue(), 49995000.0);
}

TEST(Jit, Figure11CountersPopulated) {
  VMStats S;
  runConfig("var s = 0; for (var i = 0; i < 10000; ++i) s += i; print(s);",
            nativeOpts(), &S);
  EXPECT_GT(S.BytecodesInterpreted, 0u);
  EXPECT_GT(S.BytecodesNative, 0u);
  // The loop is hot: native coverage should dominate interpretation.
  EXPECT_GT(S.BytecodesNative, S.BytecodesInterpreted);
}
