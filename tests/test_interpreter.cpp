//===- test_interpreter.cpp - Language semantics on the baseline interpreter -===//

#include <gtest/gtest.h>

#include "api/engine.h"

using namespace tracejit;

namespace {

/// Run a program on the pure interpreter and return everything it printed.
std::string runInterp(const std::string &Src) {
  EngineOptions Opts;
  Opts.EnableJit = false;
  Engine E(Opts);
  std::string Out;
  E.setPrintHook([&](const std::string &S) { Out += S; });
  auto R = E.eval(Src);
  EXPECT_TRUE(R.ok()) << R.Err.describe() << "\nprogram:\n" << Src;
  return Out;
}

std::string runExpect(const std::string &Src, const std::string &Expected) {
  std::string Out = runInterp(Src);
  EXPECT_EQ(Out, Expected) << "program:\n" << Src;
  return Out;
}

} // namespace

TEST(Interp, Arithmetic) {
  runExpect("print(1 + 2 * 3);", "7\n");
  runExpect("print((1 + 2) * 3);", "9\n");
  runExpect("print(7 / 2);", "3.5\n");
  runExpect("print(7 % 3);", "1\n");
  runExpect("print(-7 % 3);", "-1\n");
  runExpect("print(2.5 + 0.25);", "2.75\n");
  runExpect("print(-5);", "-5\n");
  runExpect("print(10 - 3 - 2);", "5\n");
}

TEST(Interp, IntOverflowPromotesToDouble) {
  runExpect("print(2147483647 + 1);", "2147483648\n");
  runExpect("print(-2147483648 - 1);", "-2147483649\n");
  runExpect("print(100000 * 100000);", "10000000000\n");
}

TEST(Interp, BitOps) {
  runExpect("print(6 & 3);", "2\n");
  runExpect("print(6 | 3);", "7\n");
  runExpect("print(6 ^ 3);", "5\n");
  runExpect("print(1 << 10);", "1024\n");
  runExpect("print(-8 >> 1);", "-4\n");
  runExpect("print(-8 >>> 28);", "15\n");
  runExpect("print(~5);", "-6\n");
  runExpect("print(4294967296 | 0);", "0\n");
  runExpect("print(2147483648 | 0);", "-2147483648\n");
  runExpect("print(-1 >>> 0);", "4294967295\n");
}

TEST(Interp, Comparisons) {
  runExpect("print(1 < 2, 2 <= 2, 3 > 4, 4 >= 4);", "true true false true\n");
  runExpect("print(1 == 1.0, 1 === 1.0, 1 != 2, 1 !== 1);",
            "true true true false\n");
  runExpect("print('abc' < 'abd', 'a' == 'a');", "true true\n");
  runExpect("print(null == undefined, null === undefined);", "true false\n");
  runExpect("print(0/0 == 0/0, 0/0 < 1, 0/0 >= 0);", "false false false\n");
}

TEST(Interp, LogicalOperators) {
  runExpect("print(true && false, true || false);", "false true\n");
  runExpect("print(0 && 1, 2 && 3);", "0 3\n");
  runExpect("print(0 || 5, 6 || 7);", "5 6\n");
  runExpect("print(!0, !1, !'');", "true false true\n");
  // Short circuit: the second arm must not run.
  runExpect("var hits = 0;\n"
            "function bump() { hits = hits + 1; return true; }\n"
            "var r = false && bump();\n"
            "print(hits, r);",
            "0 false\n");
}

TEST(Interp, Ternary) {
  runExpect("print(1 < 2 ? 'yes' : 'no');", "yes\n");
  runExpect("print(false ? 1 : true ? 2 : 3);", "2\n");
}

TEST(Interp, VariablesAndAssignment) {
  runExpect("var x = 10; x += 5; print(x); x *= 2; print(x);", "15\n30\n");
  runExpect("var a = 1, b = 2; var t = a; a = b; b = t; print(a, b);",
            "2 1\n");
  runExpect("var x = 3; var y = (x = 7) + 1; print(x, y);", "7 8\n");
  runExpect("var x = 1; x <<= 4; print(x); x >>= 2; print(x);", "16\n4\n");
}

TEST(Interp, IncrementDecrement) {
  runExpect("var i = 5; print(i++); print(i); print(++i); print(i);",
            "5\n6\n7\n7\n");
  runExpect("var i = 5; print(i--); print(--i);", "5\n3\n");
  runExpect("var a = [10]; a[0]++; print(a[0]); print(a[0]++); print(a[0]);",
            "11\n11\n12\n");
  runExpect("var o = {n: 1}; ++o.n; print(o.n); print(o.n++, o.n);",
            "2\n2 3\n");
}

TEST(Interp, WhileLoop) {
  runExpect("var s = 0; var i = 0; while (i < 5) { s += i; i = i + 1; }"
            "print(s, i);",
            "10 5\n");
  runExpect("var i = 0; while (true) { i = i + 1; if (i >= 3) break; }"
            "print(i);",
            "3\n");
}

TEST(Interp, ForLoop) {
  runExpect("var s = 0; for (var i = 0; i < 10; ++i) s += i; print(s);",
            "45\n");
  runExpect("var s = 0; for (var i = 0; i < 10; ++i) {"
            "  if (i % 2 == 0) continue; s += i; } print(s);",
            "25\n");
  runExpect("var n = 0; for (;;) { n = n + 1; if (n == 4) break; } print(n);",
            "4\n");
}

TEST(Interp, DoWhileLoop) {
  runExpect("var i = 10; var n = 0; do { n = n + 1; i = i + 1; }"
            "while (i < 3); print(n);",
            "1\n");
  runExpect("var i = 0; do { i = i + 1; } while (i < 5); print(i);", "5\n");
}

TEST(Interp, NestedLoops) {
  runExpect("var c = 0;\n"
            "for (var i = 0; i < 4; ++i)\n"
            "  for (var j = 0; j < 5; ++j)\n"
            "    c = c + 1;\n"
            "print(c);",
            "20\n");
}

TEST(Interp, SieveFromThePaper) {
  // Figure 1, scaled: sieve of Eratosthenes over 100 entries.
  runExpect("var primes = Array(100);\n"
            "for (var p = 0; p < 100; ++p) primes[p] = true;\n"
            "for (var i = 2; i < 100; ++i) {\n"
            "  if (!primes[i]) continue;\n"
            "  for (var k = i + i; k < 100; k += i)\n"
            "    primes[k] = false;\n"
            "}\n"
            "var count = 0;\n"
            "for (var n = 2; n < 100; ++n) if (primes[n]) count = count + 1;\n"
            "print(count);",
            "25\n");
}

TEST(Interp, Functions) {
  runExpect("function add(a, b) { return a + b; } print(add(2, 3));", "5\n");
  runExpect("function f() { return 42; } print(f());", "42\n");
  runExpect("function f(x) { return x; } print(f());", "undefined\n");
  runExpect("function fib(n) { if (n < 2) return n;"
            "  return fib(n - 1) + fib(n - 2); } print(fib(15));",
            "610\n");
  runExpect("function g() {} print(g());", "undefined\n");
}

TEST(Interp, FunctionLocalsAreIndependent) {
  runExpect("var x = 1;\n"
            "function f(x) { x = x + 100; return x; }\n"
            "print(f(5), x);",
            "105 1\n");
}

TEST(Interp, Arrays) {
  runExpect("var a = [1, 2, 3]; print(a.length, a[0], a[2]);", "3 1 3\n");
  runExpect("var a = []; a[5] = 'x'; print(a.length, a[0], a[5]);",
            "6 undefined x\n");
  runExpect("var a = Array(4); print(a.length);", "4\n");
  runExpect("var a = [1]; a.push(2); a.push(3); print(a.length, a[2]);",
            "3 3\n");
  runExpect("print([1, 2, 3].join('-'));", "1-2-3\n");
}

TEST(Interp, Objects) {
  runExpect("var o = {x: 1, y: 'two'}; print(o.x, o.y);", "1 two\n");
  runExpect("var o = {}; o.a = 5; o.a = o.a + 1; print(o.a);", "6\n");
  runExpect("var p = {pos: {x: 3}}; print(p.pos.x);", "3\n");
  runExpect("var o = {n: 2}; o.n *= 10; print(o.n);", "20\n");
}

TEST(Interp, Strings) {
  runExpect("print('hello' + ' ' + 'world');", "hello world\n");
  runExpect("print('n=' + 5);", "n=5\n");
  runExpect("print(5 + 'n');", "5n\n");
  runExpect("var s = 'abc'; print(s.length, s.charAt(1), s.charCodeAt(0));",
            "3 b 97\n");
  runExpect("print('hello'.indexOf('ll'), 'hello'.indexOf('z'));", "2 -1\n");
  runExpect("print('abcdef'.substring(2, 4));", "cd\n");
  runExpect("print(String.fromCharCode(72, 105));", "Hi\n");
  runExpect("var s = 'xy'; print(s[0], s[1]);", "x y\n");
}

TEST(Interp, MathBuiltins) {
  runExpect("print(Math.abs(-3), Math.floor(2.7), Math.ceil(2.2));",
            "3 2 3\n");
  runExpect("print(Math.sqrt(16), Math.pow(2, 10));", "4 1024\n");
  runExpect("print(Math.min(3, 7), Math.max(3, 7));", "3 7\n");
  runExpect("print(Math.floor(Math.PI * 100));", "314\n");
  runExpect("var r = Math.random(); print(r >= 0 && r < 1);", "true\n");
}

TEST(Interp, TypeStabilityAcrossNumberKinds) {
  // Mixed int/double flows, the bread and butter of the tracer later.
  runExpect("var x = 1; x = x + 0.5; x = x + 0.5; print(x);", "2\n");
  runExpect("var x = 3; x = x / 2; print(x);", "1.5\n");
}

TEST(Interp, Errors) {
  EngineOptions Opts;
  Opts.EnableJit = false;
  {
    Engine E(Opts);
    auto R = E.eval("var x = ;");
    EXPECT_FALSE(R.ok());
    EXPECT_EQ(R.Err.Kind, ErrorKind::Parse);
    EXPECT_EQ(R.Err.Line, 1u);
    EXPECT_EQ(R.Err.Col, 9u) << "column of the offending ';'";
    EXPECT_NE(R.Err.describe().find("SyntaxError"), std::string::npos);
  }
  {
    Engine E(Opts);
    auto R = E.eval("var a = 1;\n  var b = @;");
    EXPECT_FALSE(R.ok());
    EXPECT_EQ(R.Err.Kind, ErrorKind::Lex) << "bad character is a lex error";
    EXPECT_EQ(R.Err.Line, 2u);
    EXPECT_EQ(R.Err.Col, 11u);
  }
  {
    Engine E(Opts);
    auto R = E.eval("var x = 1; x();");
    EXPECT_FALSE(R.ok());
    EXPECT_EQ(R.Err.Kind, ErrorKind::Runtime);
    EXPECT_NE(R.Err.describe().find("RuntimeError"), std::string::npos);
  }
  {
    Engine E(Opts);
    auto R = E.eval("undefinedGlobal.x;");
    EXPECT_FALSE(R.ok());
  }
  {
    // Engine survives an error and can evaluate again.
    Engine E(Opts);
    EXPECT_FALSE(E.eval("var x = 1; x();").ok());
    EXPECT_TRUE(E.eval("var y = 2;").ok());
    EXPECT_EQ(E.getGlobal("y").toInt(), 2);
  }
}

TEST(Interp, LastExpressionValue) {
  EngineOptions Opts;
  Opts.EnableJit = false;
  Engine E(Opts);
  {
    auto R = E.eval("1 + 2;");
    ASSERT_TRUE(R.ok());
    EXPECT_EQ(R.LastValue.toInt(), 3);
  }
  {
    // The *last* top-level expression statement wins; statements inside
    // loops or functions do not contribute.
    auto R = E.eval("function f(n) { n * 10; return n; }\n"
                    "var s = 0;\n"
                    "for (var i = 0; i < 10; ++i) { s + 1; s = s + f(1); }\n"
                    "s * 2;");
    ASSERT_TRUE(R.ok());
    EXPECT_EQ(R.LastValue.toInt(), 20);
  }
  {
    // No top-level expression statement => undefined.
    auto R = E.eval("var q = 5;");
    ASSERT_TRUE(R.ok());
    EXPECT_TRUE(R.LastValue.isUndefined());
  }
}

TEST(Interp, GlobalAccessAcrossEvals) {
  EngineOptions Opts;
  Opts.EnableJit = false;
  Engine E(Opts);
  EXPECT_TRUE(E.eval("var counter = 10;").ok());
  EXPECT_TRUE(E.eval("counter = counter + 5;").ok());
  EXPECT_EQ(E.getGlobal("counter").toInt(), 15);
  E.setGlobalNumber("injected", 2.5);
  EXPECT_TRUE(E.eval("var twice = injected * 2;").ok());
  EXPECT_EQ(E.getGlobal("twice").numberValue(), 5.0);
}

TEST(Interp, HostNativeRegistration) {
  EngineOptions Opts;
  Opts.EnableJit = false;
  Engine E(Opts);
  E.registerNative("hostAdd", [](Interpreter &I, Value, const Value *Args,
                                 uint32_t N) -> Value {
    double S = 0;
    for (uint32_t K = 0; K < N; ++K)
      S += Interpreter::toNumber(Args[K]);
    return I.context().TheHeap.boxNumber(S);
  });
  std::string Out;
  E.setPrintHook([&](const std::string &S) { Out += S; });
  EXPECT_TRUE(E.eval("print(hostAdd(1, 2, 3.5));").ok());
  EXPECT_EQ(Out, "6.5\n");
}

TEST(Interp, GCDuringExecution) {
  // Heavy double churn forces collections through the preempt flag.
  EngineOptions Opts;
  Opts.EnableJit = false;
  Engine E(Opts);
  std::string Out;
  E.setPrintHook([&](const std::string &S) { Out += S; });
  auto R = E.eval("var s = 0.1;\n"
                  "for (var i = 0; i < 200000; ++i) s = s + 0.1;\n"
                  "print(s > 20000 && s < 20001);");
  ASSERT_TRUE(R.ok()) << R.Err.describe();
  EXPECT_EQ(Out, "true\n");
}

TEST(Interp, DeepRecursionOverflowsGracefully) {
  EngineOptions Opts;
  Opts.EnableJit = false;
  Engine E(Opts);
  auto R = E.eval("function f(n) { return f(n + 1); } f(0);");
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.Err.Kind, ErrorKind::StackOverflow);
  EXPECT_NE(R.Err.describe().find("StackOverflowError"), std::string::npos);
  EXPECT_NE(R.Err.Message.find("too much recursion"), std::string::npos);
  // The overflow carries a source position (the recursive call site).
  EXPECT_GT(R.Err.Line, 0u);
}
