//===- test_observability.cpp - Event stream, telemetry, abort taxonomy ----===//
//
// Covers the structured observability layer: JitEvent ordering over a hot
// loop's lifecycle, the abort-reason taxonomy and its VMStats counters,
// per-fragment telemetry snapshots, listener attach/detach semantics, and
// the Chrome trace-event JSON exporter.
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.h"

using namespace tracejit;

namespace {

/// Records every event it sees.
struct CollectingListener final : JitEventListener {
  std::vector<JitEvent> Events;
  void onEvent(const JitEvent &E) override { Events.push_back(E); }

  int64_t firstIndexOf(JitEventKind K) const {
    for (size_t I = 0; I < Events.size(); ++I)
      if (Events[I].Kind == K)
        return (int64_t)I;
    return -1;
  }
  uint64_t count(JitEventKind K) const {
    uint64_t N = 0;
    for (const JitEvent &E : Events)
      N += E.Kind == K;
    return N;
  }
};

EngineOptions jitOpts() {
  EngineOptions O;
  O.EnableJit = true;
  O.Tier = TierMode::Trace; // event assertions pin the trace pipeline
  return O;
}

const char *HotLoopSrc = "var s = 0; for (var i = 0; i < 200; ++i) s += i;";

/// Minimal JSON well-formedness scan: balanced {}/[] outside strings, valid
/// string escapes, no trailing garbage. Returns an empty string when OK.
std::string scanJson(const std::string &J) {
  std::vector<char> Nesting;
  bool InString = false;
  for (size_t I = 0; I < J.size(); ++I) {
    char C = J[I];
    if (InString) {
      if (C == '\\')
        ++I;
      else if (C == '"')
        InString = false;
      continue;
    }
    switch (C) {
    case '"':
      InString = true;
      break;
    case '{':
    case '[':
      Nesting.push_back(C);
      break;
    case '}':
    case ']': {
      if (Nesting.empty())
        return "unbalanced close at " + std::to_string(I);
      char Open = Nesting.back();
      Nesting.pop_back();
      if ((C == '}') != (Open == '{'))
        return "mismatched close at " + std::to_string(I);
      break;
    }
    default:
      break;
    }
    if (Nesting.empty() && C == '}' && J.find_first_not_of(" \n\t", I + 1) !=
                                           std::string::npos)
      return "trailing garbage after top-level object";
  }
  if (InString)
    return "unterminated string";
  if (!Nesting.empty())
    return "unclosed nesting";
  return "";
}

} // namespace

TEST(Observability, HotLoopEventOrdering) {
  Engine E(jitOpts());
  CollectingListener L;
  E.addEventListener(&L);
  ASSERT_TRUE(E.eval(HotLoopSrc).ok());

  int64_t Hot = L.firstIndexOf(JitEventKind::LoopHot);
  int64_t Start = L.firstIndexOf(JitEventKind::RecordStart);
  int64_t Compiled = L.firstIndexOf(JitEventKind::TreeCompiled);
  int64_t Exit = L.firstIndexOf(JitEventKind::SideExit);
  ASSERT_GE(Hot, 0) << "loop never reported hot";
  ASSERT_GE(Start, 0) << "recording never started";
  ASSERT_GE(Compiled, 0) << "tree never compiled";
  ASSERT_GE(Exit, 0) << "compiled loop must side-exit when i reaches 200";
  EXPECT_LT(Hot, Start);
  EXPECT_LT(Start, Compiled);
  EXPECT_LT(Compiled, Exit);

  // The compile event carries the fragment's final LIR size; the side exit
  // names its guard and parent fragment.
  EXPECT_GT(L.Events[Compiled].Arg0, 0u) << "LIR size";
  EXPECT_NE(L.Events[Exit].FragmentId, ~0u);
  EXPECT_NE(L.Events[Exit].ExitId, ~0u);

  // Timestamps are monotone within the stream.
  for (size_t I = 1; I < L.Events.size(); ++I)
    EXPECT_GE(L.Events[I].TimeUs, L.Events[I - 1].TimeUs);
  E.removeEventListener(&L);
}

TEST(Observability, ListenerDetachStopsDelivery) {
  Engine E(jitOpts());
  CollectingListener L;
  E.addEventListener(&L);
  ASSERT_TRUE(E.eval(HotLoopSrc).ok());
  size_t Seen = L.Events.size();
  EXPECT_GT(Seen, 0u);
  E.removeEventListener(&L);
  ASSERT_TRUE(E.eval("var t = 0; for (var j = 0; j < 200; ++j) t += 2;").ok());
  EXPECT_EQ(L.Events.size(), Seen) << "detached listener still saw events";
}

TEST(Observability, AbortReasonCountersForUntraceableLoop) {
  EngineOptions O = jitOpts();
  O.CollectStats = true;
  Engine E(O);
  E.setPrintHook([](const std::string &) {});
  CollectingListener L;
  E.addEventListener(&L);
  // `print` has no traceable fast path, so every recording attempt aborts
  // with a named reason until the header is blacklisted.
  ASSERT_TRUE(E.eval("for (var i = 0; i < 100; ++i) print(i);").ok());

  VMStats S = E.stats();
  EXPECT_GT(S.TracesAborted, 0u);
  EXPECT_GT(S.AbortsByReason[(size_t)AbortReason::UntraceableNative], 0u);

  // Every abort is attributed: per-reason counters sum to the total.
  uint64_t Sum = 0;
  for (uint64_t N : S.AbortsByReason)
    Sum += N;
  EXPECT_EQ(Sum, S.TracesAborted);

  // The abort event stream carries the same reason, and the report text
  // names it.
  int64_t Abort = L.firstIndexOf(JitEventKind::RecordAbort);
  ASSERT_GE(Abort, 0);
  EXPECT_EQ(L.Events[Abort].Reason, AbortReason::UntraceableNative);
  EXPECT_GE(L.count(JitEventKind::Blacklisted), 1u);
  EXPECT_NE(S.report().find("untraceable-native"), std::string::npos);
}

TEST(Observability, FragmentProfilesForSieve) {
  EngineOptions O = jitOpts();
  O.CollectStats = true;
  Engine E(O);
  E.setPrintHook([](const std::string &) {});
  ASSERT_TRUE(E.eval("var N = 400;\n"
                     "var primes = Array(N);\n"
                     "for (var p = 0; p < N; ++p) primes[p] = true;\n"
                     "for (var i = 2; i < N; ++i) {\n"
                     "  if (!primes[i]) continue;\n"
                     "  for (var k = i + i; k < N; k += i) primes[k] = false;\n"
                     "}\n")
                  .ok());

  std::vector<FragmentProfile> Profiles = E.fragmentProfiles();
  ASSERT_GE(Profiles.size(), 2u) << "inner and outer sieve trees";

  bool SawEnteredRoot = false, SawFiredGuard = false;
  for (const FragmentProfile &P : Profiles) {
    EXPECT_GE(P.LirRecorded, P.LirAfterFilters)
        << "filters never grow a trace";
    if (P.IsRoot && P.Enters > 0 && P.LirAfterFilters > 0 &&
        P.Iterations > 0)
      SawEnteredRoot = true;
    for (const GuardProfile &G : P.Guards) {
      EXPECT_STRNE(G.ExitKindName, "?");
      if (G.Hits > 0)
        SawFiredGuard = true;
    }
  }
  EXPECT_TRUE(SawEnteredRoot);
  EXPECT_TRUE(SawFiredGuard);
}

TEST(Observability, ChromeTraceExport) {
  EngineOptions O = jitOpts();
  O.CaptureTraceEvents = true;
  Engine E(O);
  E.setPrintHook([](const std::string &) {});
  ASSERT_TRUE(E.eval("var N = 400;\n"
                     "var primes = Array(N);\n"
                     "for (var p = 0; p < N; ++p) primes[p] = true;\n"
                     "for (var i = 2; i < N; ++i) {\n"
                     "  if (!primes[i]) continue;\n"
                     "  for (var k = i + i; k < N; k += i) primes[k] = false;\n"
                     "}\n")
                  .ok());

  std::string Path = testing::TempDir() + "tracejit_events.json";
  ASSERT_TRUE(E.exportTraceEvents(Path));

  std::string J;
  {
    FILE *F = fopen(Path.c_str(), "r");
    ASSERT_NE(F, nullptr);
    char Buf[4096];
    size_t N;
    while ((N = fread(Buf, 1, sizeof(Buf), F)) > 0)
      J.append(Buf, N);
    fclose(F);
  }
  remove(Path.c_str());

  EXPECT_EQ(scanJson(J), "") << J.substr(0, 400);
  EXPECT_NE(J.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(J.find("\"TreeCompiled\""), std::string::npos);
  EXPECT_NE(J.find("\"SideExit\""), std::string::npos);
}

TEST(Observability, ExportRequiresCaptureOption) {
  Engine E(jitOpts()); // CaptureTraceEvents defaults to off
  ASSERT_TRUE(E.eval(HotLoopSrc).ok());
  EXPECT_FALSE(E.exportTraceEvents(testing::TempDir() + "unused.json"));
}

TEST(Observability, LogListenerFormat) {
  JitEvent E;
  E.Kind = JitEventKind::RecordAbort;
  E.Reason = AbortReason::TraceTooLong;
  E.FragmentId = 7;
  E.ScriptId = 0;
  E.Pc = 42;
  std::string Line = LogJitEventListener::format(E);
  EXPECT_NE(Line.find("RecordAbort"), std::string::npos);
  EXPECT_NE(Line.find("frag=7"), std::string::npos);
  EXPECT_NE(Line.find("pc=42"), std::string::npos);
  EXPECT_NE(Line.find("reason=trace-too-long"), std::string::npos);
}
