//===- test_trace_machinery.cpp - Trees, nesting, blacklisting, oracle -------===//

#include <gtest/gtest.h>

#include "api/engine.h"
#include "trace/monitor.h"

using namespace tracejit;

namespace {

struct RunInfo {
  std::string Out;
  VMStats Stats;
  bool Ok;
  std::string Error;
};

RunInfo runWith(const std::string &Src, EngineOptions O) {
  O.CollectStats = true;
  Engine E(O);
  RunInfo R;
  E.setPrintHook([&](const std::string &S) { R.Out += S; });
  auto Res = E.eval(Src);
  R.Ok = Res.ok();
  R.Error = Res.Err.describe();
  R.Stats = E.stats();
  return R;
}

EngineOptions jit() {
  EngineOptions O;
  O.EnableJit = true;
  // This file asserts trace-pipeline internals (recordings, trees,
  // side exits); pin the tier so a TRACEJIT_TIER=method CI run cannot
  // reroute the loops it observes.
  O.Tier = TierMode::Trace;
  return O;
}

} // namespace

TEST(TraceTrees, HotLoopThresholdRespected) {
  // Below threshold: no recording at all.
  std::string Src = "var s = 0; for (var i = 0; i < 50; ++i) s += i;"
                    "print(s);";
  EngineOptions O = jit();
  O.HotLoopThreshold = 1000;
  RunInfo R = runWith(Src, O);
  EXPECT_EQ(R.Stats.TracesStarted, 0u);
  EXPECT_EQ(R.Out, "1225\n");

  O.HotLoopThreshold = 2;
  RunInfo R2 = runWith(Src, O);
  EXPECT_GE(R2.Stats.TracesCompleted, 1u);
  EXPECT_EQ(R2.Out, "1225\n");
}

TEST(TraceTrees, BranchTracesAttachAtHotExits) {
  // The minor path becomes hot and must be stitched, not re-entered via
  // the monitor every time.
  RunInfo R = runWith("var a = 0, b = 0;\n"
                  "for (var i = 0; i < 5000; ++i) {\n"
                  "  if (i % 4 == 0) a += 1; else b += 1;\n"
                  "}\n"
                  "print(a, b);",
                  jit());
  EXPECT_EQ(R.Out, "1250 3750\n");
  EXPECT_GE(R.Stats.BranchesCompiled, 1u);
  EXPECT_GE(R.Stats.StitchedTransfers, 1u);
}

TEST(TraceTrees, NestedTreesCallInnerTree) {
  RunInfo R = runWith("var c = 0;\n"
                  "for (var i = 0; i < 300; ++i)\n"
                  "  for (var j = 0; j < 40; ++j)\n"
                  "    c = c + 1;\n"
                  "print(c);",
                  jit());
  EXPECT_EQ(R.Out, "12000\n");
  EXPECT_GE(R.Stats.TreesCompiled, 2u) << "inner and outer trees";
  EXPECT_GE(R.Stats.TreeCalls, 1u) << "outer recording called the inner tree";
}

TEST(TraceTrees, NestingDisabledStillCorrect) {
  EngineOptions O = jit();
  O.EnableNesting = false;
  RunInfo R = runWith("var c = 0;\n"
                  "for (var i = 0; i < 300; ++i)\n"
                  "  for (var j = 0; j < 40; ++j)\n"
                  "    c = c + 1;\n"
                  "print(c);",
                  O);
  EXPECT_EQ(R.Out, "12000\n");
  EXPECT_EQ(R.Stats.TreeCalls, 0u);
}

TEST(Blacklisting, UntraceableLoopGetsBlacklisted) {
  // Recursion aborts recording; after MaxRecordingFailures the loop header
  // bytecode is patched and the monitor is never consulted again (§3.3).
  RunInfo R = runWith(
      "function r(n) { if (n <= 0) return 0; return r(n - 1) + 1; }\n"
      "var s = 0;\n"
      "for (var i = 0; i < 500; ++i) s += r(3);\n"
      "print(s);",
      jit());
  EXPECT_EQ(R.Out, "1500\n");
  EXPECT_GE(R.Stats.LoopsBlacklisted, 1u);
  // Bounded: at most a handful of attempts, not hundreds.
  EXPECT_LE(R.Stats.TracesAborted, 10u);
}

TEST(Blacklisting, BackoffDelaysReattempts) {
  EngineOptions O = jit();
  O.MaxRecordingFailures = 1000000; // never blacklist outright
  O.BlacklistBackoff = 64;
  RunInfo R = runWith(
      "function r(n) { if (n <= 0) return 0; return r(n - 1) + 1; }\n"
      "var s = 0;\n"
      "for (var i = 0; i < 1000; ++i) s += r(2);\n"
      "print(s);",
      O);
  EXPECT_EQ(R.Out, "2000\n");
  // ~1000 iterations / backoff 64 => on the order of 16 attempts.
  EXPECT_LE(R.Stats.TracesAborted, 40u);
  EXPECT_GE(R.Stats.TracesAborted, 2u);
}

TEST(Oracle, DemotesFlipFloppingVariables) {
  // s flips from int to double during the very iteration being recorded
  // (i == 1 is the recording iteration at threshold 2): the trace closes
  // type-unstable, the oracle notes the mis-speculation, and the retrace
  // enters with s demoted to double (§3.2). Static analysis off: it would
  // seed the demotion up front, and this test pins the runtime path.
  EngineOptions DemoteOpts = jit();
  DemoteOpts.StaticAnalysis = false;
  RunInfo R = runWith("var s = 0;\n"
                      "for (var i = 0; i < 2000; ++i) {\n"
                      "  if (i == 1) s = s + 0.5; else s = s + 1;\n"
                      "}\n"
                      "print(s);",
                      DemoteOpts);
  EXPECT_EQ(R.Out, "1999.5\n");
  EXPECT_GE(R.Stats.OracleDemotions, 1u);
  EXPECT_GE(R.Stats.TraceEnters, 1u);
}

TEST(Oracle, StableLoopNeedsNoDemotion) {
  // With threshold 2, recording starts after the first iteration already
  // made s a double: the loop is type-stable from the start.
  RunInfo R = runWith("var s = 0;\n"
                      "for (var i = 0; i < 2000; ++i) s = s + 0.25;\n"
                      "print(s);",
                      jit());
  EXPECT_EQ(R.Out, "500\n");
  EXPECT_GE(R.Stats.TraceEnters, 1u);
}

TEST(Oracle, DisabledOracleStillCorrect) {
  EngineOptions O = jit();
  O.EnableOracle = false;
  RunInfo R = runWith("var s = 0;\n"
                  "for (var i = 0; i < 2000; ++i) s = s + 0.25;\n"
                  "print(s);",
                  O);
  EXPECT_EQ(R.Out, "500\n");
}

TEST(TypeInstability, PeerTracesCoverBothTypes) {
  // x alternates between int-typed and double-typed work per iteration
  // block; peers and/or branch traces must cover both without
  // miscompiling.
  RunInfo R = runWith("var total = 0;\n"
                  "for (var i = 0; i < 4000; ++i) {\n"
                  "  var x;\n"
                  "  if ((i & 1) == 0) x = 1; else x = 1.5;\n"
                  "  total = total + x;\n"
                  "}\n"
                  "print(total);",
                  jit());
  EXPECT_EQ(R.Out, "5000\n");
}

TEST(TraceCache, MultipleTreesPerHeaderByEntryTypes) {
  // The same function is driven with int and with double arguments: the
  // loop header needs one tree per entry type map ("there may be several
  // trees for a given loop header", §3.2).
  RunInfo R = runWith("function sum(step, n) {\n"
                  "  var s = 0;\n"
                  "  for (var i = 0; i < n; ++i) s = s + step;\n"
                  "  return s;\n"
                  "}\n"
                  "var a = 0, b = 0;\n"
                  "for (var r = 0; r < 50; ++r) { a = sum(1, 100);"
                  " b = sum(0.5, 100); }\n"
                  "print(a, b);",
                  jit());
  EXPECT_EQ(R.Out, "100 50\n");
  EXPECT_GE(R.Stats.TreesCompiled, 2u);
}

TEST(SameTreeDifferentCallSites, ReturnPcsAreDynamic) {
  // Regression test: a tree recorded at one call site must resume
  // correctly when entered via a different call site (dynamic return pcs
  // in the call-stack area).
  RunInfo R = runWith("var n = 8;\n"
                  "function Au(u, v, n) {\n"
                  "  for (var i = 0; i < n; ++i) v[i] = u[i] + 1;\n"
                  "}\n"
                  "var u = Array(n), v = Array(n);\n"
                  "for (var i = 0; i < n; ++i) { u[i] = 1; v[i] = 0; }\n"
                  "for (var r = 0; r < 30; ++r) { Au(u, v, n); Au(v, u, n); }\n"
                  "print(u[3], v[3]);",
                  jit());
  EXPECT_EQ(R.Out, "61 60\n");
}

TEST(SameTreeDifferentCallSites, SequentialLoopsSharingLocals) {
  RunInfo R = runWith("function f(n) {\n"
                  "  var i, s = 0;\n"
                  "  for (i = 0; i < n; ++i) s += i;\n"
                  "  for (i = 0; i < n; ++i) s += i * 2;\n"
                  "  return s;\n"
                  "}\n"
                  "var t = 0;\n"
                  "for (var r = 0; r < 20; ++r) t += f(50);\n"
                  "print(t);",
                  jit());
  EXPECT_EQ(R.Out, "73500\n");
}

TEST(Stitching, DisabledStitchingStaysCorrect) {
  EngineOptions O = jit();
  O.EnableStitching = false;
  RunInfo R = runWith("var a = 0, b = 0;\n"
                  "for (var i = 0; i < 3000; ++i) {\n"
                  "  if (i % 3 == 0) a += i; else b += i;\n"
                  "}\n"
                  "print(a, b);",
                  O);
  EXPECT_EQ(R.Out, "1498500 3000000\n");
  EXPECT_EQ(R.Stats.BranchesCompiled, 0u);
}

TEST(Filters, EveryFilterSubsetIsCorrect) {
  const std::string Src =
      "var primes = Array(500);\n"
      "for (var p = 0; p < 500; ++p) primes[p] = true;\n"
      "for (var i = 2; i < 500; ++i) {\n"
      "  if (!primes[i]) continue;\n"
      "  for (var k = i + i; k < 500; k += i) primes[k] = false;\n"
      "}\n"
      "var c = 0;\n"
      "for (var q = 2; q < 500; ++q) if (primes[q]) c = c + 1;\n"
      "print(c);";
  // Every subset of the pass registry must be semantics-preserving: the
  // pipeline owns ordering, so any combination (hoist without DCE, indvar
  // without guardelim, ...) has to produce the interpreter's answer.
  const uint32_t N = (uint32_t)OptPass::NumPasses;
  for (uint32_t Mask = 0; Mask < (1u << N); ++Mask) {
    EngineOptions O = jit();
    OptPipeline P;
    for (uint32_t B = 0; B < N; ++B)
      if (Mask & (1u << B))
        P.add((OptPass)B);
    O.Passes = P;
    RunInfo R = runWith(Src, O);
    EXPECT_EQ(R.Out, "95\n") << "pass set " << P.describe();
  }
}

TEST(Preemption, FlagServicedOnTrace) {
  EngineOptions O = jit();
  Engine E(O);
  std::string Out;
  E.setPrintHook([&](const std::string &S) { Out += S; });
  E.requestPreempt();
  auto R = E.eval("var s = 0; for (var i = 0; i < 50000; ++i) s += 2;"
                  "print(s);");
  ASSERT_TRUE(R.ok()) << R.Err.describe();
  EXPECT_EQ(Out, "100000\n");
}

TEST(Preemption, GuardCanBeDisabled) {
  EngineOptions O = jit();
  O.EnablePreemptGuard = false;
  RunInfo R = runWith("var s = 0; for (var i = 0; i < 50000; ++i) s += 2;"
                  "print(s);",
                  O);
  EXPECT_EQ(R.Out, "100000\n");
}

TEST(TraceAnatomy, SieveMatchesPaperNarrative) {
  // §2: inner tree first, outer tree calls it, continue-branch stitched.
  EngineOptions O = jit();
  O.CollectStats = true;
  Engine E(O);
  E.setPrintHook([](const std::string &) {});
  auto R = E.eval("var N = 400;\n"
                  "var primes = Array(N);\n"
                  "for (var p = 0; p < N; ++p) primes[p] = true;\n"
                  "for (var i = 2; i < N; ++i) {\n"
                  "  if (!primes[i]) continue;\n"
                  "  for (var k = i + i; k < N; k += i) primes[k] = false;\n"
                  "}\n");
  ASSERT_TRUE(R.ok()) << R.Err.describe();
  VMStats S = E.stats();
  EXPECT_GE(S.TreesCompiled, 2u) << "inner (T45) and outer (T16) trees";
  EXPECT_GE(S.TreeCalls, 1u) << "outer tree nests the inner tree";
  EXPECT_GE(S.BranchesCompiled, 1u) << "the continue path (T23,1)";
}

TEST(ExecutorBackend, MatchesNativeOnTraceTopology) {
  const std::string Src = "var c = 0;\n"
                          "for (var i = 0; i < 100; ++i)\n"
                          "  for (var j = 0; j < 30; ++j)\n"
                          "    if ((i ^ j) & 1) c += 1; else c += 2;\n"
                          "print(c);";
  EngineOptions N = jit();
  EngineOptions X = jit();
  X.JitBackend = Backend::Executor;
  RunInfo A = runWith(Src, N);
  RunInfo B = runWith(Src, X);
  EXPECT_EQ(A.Out, B.Out);
  EXPECT_EQ(A.Out, "4500\n");
  // Same recorder, same policies: topology matches across backends.
  EXPECT_EQ(A.Stats.TreesCompiled, B.Stats.TreesCompiled);
}

TEST(TraceCache, EmbeddedRootsSurviveGC) {
  // Compiled traces embed string constants and callee objects; the trace
  // cache must root them across collections.
  EngineOptions O = jit();
  Engine E(O);
  std::string Out;
  E.setPrintHook([&](const std::string &S) { Out += S; });
  ASSERT_TRUE(E.eval("var s = '';\n"
                     "for (var i = 0; i < 100; ++i) s = s + 'ab';\n")
                  .ok());
  E.context().TheHeap.collect(); // everything unrooted dies
  auto R = E.eval("for (var i = 0; i < 100; ++i) s = s + 'ab';\n"
                  "print(s.length);");
  ASSERT_TRUE(R.ok()) << R.Err.describe();
  EXPECT_EQ(Out, "400\n");
}
