//===- test_analysis.cpp - Bytecode abstract interpreter tests ----------------===//
//
// Covers the static analysis end to end: the lint diagnostics surfaced by
// Engine::analyze (--analyze in the repl), the guard elision the recorder
// performs from published facts, the §3.2 demotion and megamorphic seeds
// handed to the oracle, the ValidateStaticFacts runtime cross-check, and
// the contract that switching the analysis off reproduces the baseline
// pipeline behavior exactly.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analysis/analysis.h"
#include "api/engine.h"

using namespace tracejit;

namespace {

EngineOptions jitOpts() {
  EngineOptions O;
  O.EnableJit = true;
  O.CollectStats = true;
  O.VerifyLir = true;
  // Guard-elision counters are a trace-recording stat; keep these tests
  // on the trace tier under a TRACEJIT_TIER=method CI run.
  O.Tier = TierMode::Trace;
  return O;
}

struct EvalRun {
  std::string Out;
  VMStats Stats;
};

EvalRun runWith(const std::string &Src, const EngineOptions &O) {
  Engine E(O);
  EvalRun R;
  E.setPrintHook([&](const std::string &S) { R.Out += S; });
  auto Res = E.eval(Src);
  EXPECT_TRUE(Res.ok()) << Res.Err.describe();
  R.Stats = E.stats();
  return R;
}

Engine::AnalysisReport analyze(const std::string &Src) {
  Engine E;
  return E.analyze(Src, "test.js");
}

bool hasDiag(const Engine::AnalysisReport &R, AnalysisDiagKind K,
             uint32_t Line) {
  return std::any_of(R.Diagnostics.begin(), R.Diagnostics.end(),
                     [&](const AnalysisDiagnostic &D) {
                       return D.Kind == K && D.Line == Line && D.Col > 0;
                     });
}

} // namespace

// --- Lint diagnostics (the --analyze mode) -----------------------------------

TEST(Analysis, ConstantConditionIsFlaggedWithPosition) {
  auto R = analyze("var x = 1;\n"
                   "if (x) { print(1); }\n");
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(hasDiag(R, AnalysisDiagKind::ConstantCondition, 2))
      << "diagnostics: " << R.Diagnostics.size();
}

TEST(Analysis, UnreachableElseOfConstantBranch) {
  auto R = analyze("var x = 0;\n"
                   "if (x) {\n"
                   "  print(1);\n"
                   "}\n");
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(hasDiag(R, AnalysisDiagKind::ConstantCondition, 2));
  EXPECT_TRUE(hasDiag(R, AnalysisDiagKind::UnreachableCode, 3));
}

TEST(Analysis, CodeAfterReturnIsUnreachable) {
  auto R = analyze("function f() {\n"
                   "  return 1;\n"
                   "  print(2);\n"
                   "}\n"
                   "f();\n");
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(hasDiag(R, AnalysisDiagKind::UnreachableCode, 3));
  // The finding is attributed to its enclosing function.
  bool Named = false;
  for (const auto &D : R.Diagnostics)
    if (D.Kind == AnalysisDiagKind::UnreachableCode && D.Function == "f")
      Named = true;
  EXPECT_TRUE(Named);
}

TEST(Analysis, UseBeforeDefOnLocal) {
  auto R = analyze("function f() {\n"
                   "  var a;\n"
                   "  var b = a + 1;\n"
                   "  return b;\n"
                   "}\n"
                   "f();\n");
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(hasDiag(R, AnalysisDiagKind::UseBeforeDef, 3));
}

TEST(Analysis, GuaranteedTypeErrorOnPrimitiveReceiver) {
  auto R = analyze("var x = 1;\n"
                   "var y = x.foo;\n");
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(hasDiag(R, AnalysisDiagKind::TypeError, 2));
}

TEST(Analysis, RealLoopHasNoFalsePositives) {
  auto R = analyze("var s = 0;\n"
                   "for (var i = 0; i < 100; ++i) {\n"
                   "  if (i % 2 == 0) s = s + i;\n"
                   "}\n"
                   "print(s);\n");
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(R.Diagnostics.empty())
      << "first: " << (R.Diagnostics.empty() ? "" : R.Diagnostics[0].Message);
}

TEST(Analysis, ParseErrorIsReportedNotThrown) {
  auto R = analyze("var (;");
  EXPECT_FALSE(R.Ok);
  EXPECT_FALSE(R.Err.describe().empty());
}

// --- Recorder guard elision --------------------------------------------------

TEST(Analysis, ElidesOverflowGuardInProvenIntLoop) {
  // i stays in [0,1000): the ++i overflow check is statically redundant.
  EvalRun R = runWith("var s = 0;\n"
                  "for (var i = 0; i < 1000; ++i) s = s + 1;\n"
                  "print(s);\n",
                  jitOpts());
  EXPECT_EQ(R.Out, "1000\n");
  EXPECT_GT(R.Stats.StaticGuardsElided, 0u);
  EXPECT_EQ(R.Stats.VerifyFailures, 0u);
  EXPECT_EQ(R.Stats.StaticFactContradictions, 0u);
}

TEST(Analysis, ElidesGuardsInNestedSieveLoop) {
  // The fig. 1 workload shape: nested loops where the inner bound depends
  // on the outer induction variable. Threshold widening must keep both
  // induction variables provably int for any elision to happen here.
  EvalRun R = runWith("var primes = 0;\n"
                  "for (var i = 2; i < 1000; ++i) {\n"
                  "  var composite = 0;\n"
                  "  for (var k = 2; k * k <= i; ++k) {\n"
                  "    if (i % k == 0) composite = 1;\n"
                  "  }\n"
                  "  if (composite == 0) primes = primes + 1;\n"
                  "}\n"
                  "print(primes);\n",
                  jitOpts());
  EXPECT_EQ(R.Out, "168\n");
  EXPECT_GT(R.Stats.StaticGuardsElided, 0u);
  EXPECT_EQ(R.Stats.VerifyFailures, 0u);
}

// --- Oracle seeding ----------------------------------------------------------

TEST(Analysis, SeedsDemotionForIntDoubleAccumulator) {
  // x joins int (init) with certainly-fractional double (the += 0.5): the
  // analysis publishes the §3.2 demotion up front, so the first recording
  // already treats x as double instead of record/fail/re-record.
  EvalRun R = runWith("var x = 0;\n"
                  "for (var i = 0; i < 500; ++i) x = x + 0.5;\n"
                  "print(x);\n",
                  jitOpts());
  EXPECT_EQ(R.Out, "250\n");
  EXPECT_GE(R.Stats.StaticDemotionsSeeded, 1u);
  EXPECT_EQ(R.Stats.VerifyFailures, 0u);
}

TEST(Analysis, DoesNotSeedDemotionForPureIntLoop) {
  // The sieve variables are int-or-double only through *possible overflow*
  // (OvfD); demoting them would pessimize an int loop, so no seeds.
  EvalRun R = runWith("var primes = 0;\n"
                  "for (var i = 2; i < 1000; ++i) {\n"
                  "  var composite = 0;\n"
                  "  for (var k = 2; k * k <= i; ++k) {\n"
                  "    if (i % k == 0) composite = 1;\n"
                  "  }\n"
                  "  if (composite == 0) primes = primes + 1;\n"
                  "}\n"
                  "print(primes);\n",
                  jitOpts());
  EXPECT_EQ(R.Stats.StaticDemotionsSeeded, 0u);
}

TEST(Analysis, PreMarksMegamorphicPropertySite) {
  // o draws from five distinct literal allocation sites -- more than a
  // polymorphic IC chain holds -- and from nothing unknown, so the o.x
  // site is pre-marked megamorphic before the first recording.
  EvalRun R = runWith("function pick(n) {\n"
                  "  var o = {x: 1};\n"
                  "  if (n == 1) { o = {x: 2, a: 1}; }\n"
                  "  if (n == 2) { o = {x: 3, b: 1}; }\n"
                  "  if (n == 3) { o = {x: 4, c: 1}; }\n"
                  "  if (n == 4) { o = {x: 5, d: 1}; }\n"
                  "  return o.x;\n"
                  "}\n"
                  "var t = 0;\n"
                  "for (var i = 0; i < 100; ++i) t = t + pick(i % 5);\n"
                  "print(t);\n",
                  jitOpts());
  EXPECT_GT(R.Stats.StaticMegaSeeded, 0u);
  EXPECT_EQ(R.Stats.VerifyFailures, 0u);
}

// --- Runtime cross-validation ------------------------------------------------

TEST(Analysis, ValidatedFactsNeverContradictExecution) {
  EngineOptions O = jitOpts();
  O.ValidateStaticFacts = true;
  EvalRun R = runWith("var x = 0;\n"
                  "var s = 0;\n"
                  "for (var i = 0; i < 300; ++i) {\n"
                  "  x = x + 0.5;\n"
                  "  s = s + (i % 7);\n"
                  "}\n"
                  "print(s);\n",
                  O);
  EXPECT_GT(R.Stats.StaticFactChecks, 0u);
  EXPECT_EQ(R.Stats.StaticFactContradictions, 0u);
}

// --- The off switch ----------------------------------------------------------

TEST(Analysis, DisabledAnalysisReproducesBaselinePipeline) {
  const std::string Src = "var primes = 0;\n"
                          "for (var i = 2; i < 500; ++i) {\n"
                          "  var composite = 0;\n"
                          "  for (var k = 2; k * k <= i; ++k) {\n"
                          "    if (i % k == 0) composite = 1;\n"
                          "  }\n"
                          "  if (composite == 0) primes = primes + 1;\n"
                          "}\n"
                          "print(primes);\n";
  EngineOptions Off = jitOpts();
  Off.StaticAnalysis = false;
  EvalRun A = runWith(Src, Off);
  EvalRun B = runWith(Src, jitOpts());
  EXPECT_EQ(A.Out, B.Out);
  // With the analysis off, none of its counters may move.
  EXPECT_EQ(A.Stats.AnalysisRuns, 0u);
  EXPECT_EQ(A.Stats.StaticGuardsElided, 0u);
  EXPECT_EQ(A.Stats.StaticDemotionsSeeded, 0u);
  EXPECT_EQ(A.Stats.StaticMegaSeeded, 0u);
  // With it on, the run is observed by the stats.
  EXPECT_GT(B.Stats.AnalysisRuns, 0u);
}

// --- Direct analyzeScript facts ----------------------------------------------

TEST(Analysis, FactsSurviveAcrossEvalAndAnalyze) {
  // analyze() caches the compiled scripts' facts in the context, so a
  // subsequent eval of new source still runs analysis independently.
  Engine E(jitOpts());
  auto Rep = E.analyze("var q = 1; if (q) { print(q); }");
  ASSERT_TRUE(Rep.Ok);
  EXPECT_FALSE(Rep.Diagnostics.empty());
  std::string Out;
  E.setPrintHook([&](const std::string &S) { Out += S; });
  auto R = E.eval("var s = 0; for (var i = 0; i < 1000; ++i) s = s + 1; print(s);");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(Out, "1000\n");
  EXPECT_GT(E.stats().StaticGuardsElided, 0u);
}
