//===- test_fuzz.cpp - JSFUNFUZZ-lite differential fuzzing --------------------===//
//
// "One tool that helped us greatly was Mozilla's JavaScript fuzz tester,
// JSFUNFUZZ... We modified JSFUNFUZZ to generate loops, and also to test
// more heavily certain constructs we suspected would reveal flaws in our
// implementation. For example, we suspected bugs in TraceMonkey's handling
// of type-unstable loops and heavily branching code." (§6.6)
//
// This generator does the same: random loop-heavy programs with branchy
// bodies, type-unstable accumulators, arrays, and function calls. Every
// seed runs on the interpreter and on both JIT backends; outputs must
// match. TEST_P sweeps seeds as a property-based suite.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "api/engine.h"

using namespace tracejit;

namespace {

/// Deterministic generator state (splitmix64).
struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed * 2654435761u + 1) {}
  uint64_t next() {
    S += 0x9E3779B97F4A7C15ULL;
    uint64_t Z = S;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
    return Z ^ (Z >> 31);
  }
  uint32_t below(uint32_t N) { return (uint32_t)(next() % N); }
};

/// Generate a random arithmetic expression over the in-scope variables.
std::string genExpr(Rng &R, int Depth) {
  static const char *Vars[] = {"a", "b", "c", "i"};
  if (Depth <= 0 || R.below(3) == 0) {
    switch (R.below(4)) {
    case 0:
      return Vars[R.below(4)];
    case 1:
      return std::to_string((int)R.below(100));
    case 2:
      return std::to_string((int)R.below(100)) + "." +
             std::to_string((int)R.below(100));
    default:
      return std::string("arr[i % ") + std::to_string(4 + R.below(4)) + "]";
    }
  }
  static const char *Ops[] = {"+", "-", "*", "&", "|", "^",
                              "%", ">>", "<<", ">>>"};
  const char *Op = Ops[R.below(10)];
  std::string L = genExpr(R, Depth - 1);
  std::string Rhs = genExpr(R, Depth - 1);
  if (std::string(Op) == "%")
    Rhs = "(1 + (" + Rhs + " & 15))"; // avoid %0 NaNs dominating
  if (std::string(Op) == ">>" || std::string(Op) == "<<" ||
      std::string(Op) == ">>>")
    Rhs = "(" + Rhs + " & 7)";
  return "(" + L + " " + Op + " " + Rhs + ")";
}

std::string genCond(Rng &R) {
  static const char *Cmp[] = {"<", "<=", ">", ">=", "==", "!="};
  return genExpr(R, 1) + " " + Cmp[R.below(6)] + " " + genExpr(R, 1);
}

std::string genStatement(Rng &R, int Depth) {
  static const char *Accs[] = {"a", "b", "c"};
  switch (R.below(6)) {
  case 0:
    return std::string(Accs[R.below(3)]) + " = " + genExpr(R, 2) + ";\n";
  case 1:
    return std::string(Accs[R.below(3)]) + " += " + genExpr(R, 2) + ";\n";
  case 2:
    return "if (" + genCond(R) + ") { " + std::string(Accs[R.below(3)]) +
           " += 1; } else { " + std::string(Accs[R.below(3)]) +
           " -= 2; }\n";
  case 3:
    return "arr[i % 8] = " + genExpr(R, 1) + ";\n";
  case 4:
    return std::string(Accs[R.below(3)]) + " = helper(" + genExpr(R, 1) +
           ", " + genExpr(R, 1) + ");\n";
  default:
    if (Depth > 0) {
      // A small nested loop exercising tree nesting under fuzz. Each gets
      // a unique counter so nested instances cannot interfere.
      static int LoopVar = 0;
      std::string K = "k" + std::to_string(LoopVar++);
      std::string Body = genStatement(R, Depth - 1);
      return "for (var " + K + " = 0; " + K + " < " +
             std::to_string(2 + R.below(6)) + "; ++" + K + ") {\n" + Body +
             "}\n";
    }
    return std::string(Accs[R.below(3)]) + " ^= " + genExpr(R, 1) + ";\n";
  }
}

std::string generateProgram(uint64_t Seed) {
  Rng R(Seed);
  std::string P;
  P += "function helper(x, y) { return (x | 0) + (y | 0) * 3; }\n";
  P += "var a = 0, b = 1, c = 0;\n";
  P += "var arr = Array(8);\n";
  P += "for (var z = 0; z < 8; ++z) arr[z] = z;\n";
  // Sometimes make an accumulator start out type-unstable.
  if (R.below(2))
    P += "b = 0.5;\n";
  int Iters = 50 + (int)R.below(500);
  P += "for (var i = 0; i < " + std::to_string(Iters) + "; ++i) {\n";
  int Stmts = 1 + R.below(5);
  for (int K = 0; K < Stmts; ++K)
    P += genStatement(R, 1);
  P += "}\n";
  P += "print(a | 0, b | 0, c | 0, arr[3] | 0);\n";
  return P;
}

std::string runOn(const std::string &Src, bool Jit, Backend B,
                  TierMode T = TierMode::Trace) {
  EngineOptions O;
  O.EnableJit = Jit;
  O.JitBackend = B;
  O.Tier = T;
  // The fuzzer is exactly where malformed LIR would surface: run every
  // JIT configuration with the verifier on and require silence.
  O.VerifyLir = true;
  O.CollectStats = true;
  Engine E(O);
  std::string Out;
  E.setPrintHook([&](const std::string &S) { Out += S; });
  auto R = E.eval(Src);
  if (!R.ok())
    return "<error: " + R.Err.describe() + ">";
  EXPECT_EQ(E.stats().VerifyFailures, 0u) << "program:\n" << Src;
  return Out;
}

class FuzzDifferential : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(FuzzDifferential, InterpreterAndJitAgree) {
  uint64_t Seed = GetParam();
  std::string Src = generateProgram(Seed);
  std::string I = runOn(Src, false, Backend::Native);
  std::string N = runOn(Src, true, Backend::Native);
  std::string X = runOn(Src, true, Backend::Executor);
  EXPECT_EQ(I, N) << "seed " << Seed << "\nprogram:\n" << Src;
  EXPECT_EQ(I, X) << "seed " << Seed << "\nprogram:\n" << Src;
  // Tier legs: the same program must survive promotion (hybrid) and a
  // method-only pipeline, on both backends.
  std::string H = runOn(Src, true, Backend::Native, TierMode::Hybrid);
  std::string M = runOn(Src, true, Backend::Native, TierMode::Method);
  std::string XM = runOn(Src, true, Backend::Executor, TierMode::Method);
  EXPECT_EQ(I, H) << "hybrid, seed " << Seed << "\nprogram:\n" << Src;
  EXPECT_EQ(I, M) << "method, seed " << Seed << "\nprogram:\n" << Src;
  EXPECT_EQ(I, XM) << "method/executor, seed " << Seed << "\nprogram:\n"
                   << Src;
}

// The abstract interpreter's published facts must never contradict what
// actually happens at runtime. ValidateStaticFacts re-checks every header
// fact against live values on each loop-header crossing, and the recorder
// counts a contradiction whenever an elidable fact disagrees with the
// recorded type. Any nonzero count is an analysis soundness bug, and under
// the JIT an unsound fact would also surface as a wrong answer -- so this
// leg runs the same differential comparison with validation armed.
TEST_P(FuzzDifferential, StaticFactsNeverContradictRuntime) {
  uint64_t Seed = GetParam();
  std::string Src = generateProgram(Seed);
  std::string Outs[2];
  for (int Jit = 0; Jit < 2; ++Jit) {
    EngineOptions O;
    O.EnableJit = Jit != 0;
    O.ValidateStaticFacts = true;
    O.CollectStats = true;
    O.VerifyLir = Jit != 0;
    Engine E(O);
    E.setPrintHook([&](const std::string &S) { Outs[Jit] += S; });
    auto R = E.eval(Src);
    ASSERT_TRUE(R.ok()) << "seed " << Seed << ": " << R.Err.describe();
    EXPECT_EQ(E.stats().StaticFactContradictions, 0u)
        << "seed " << Seed << " jit=" << Jit << "\nprogram:\n" << Src;
    if (Jit)
      EXPECT_EQ(E.stats().VerifyFailures, 0u) << "program:\n" << Src;
  }
  EXPECT_EQ(Outs[0], Outs[1]) << "seed " << Seed << "\nprogram:\n" << Src;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential,
                         ::testing::Range<uint64_t>(1, 120));
