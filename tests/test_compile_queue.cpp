//===- test_compile_queue.cpp - Off-thread trace compilation -------------------===//
//
// Covers the background compile pipeline (EngineOptions::OffThreadCompile):
// the CompileService/CompileClient queue mechanics in isolation (bounded
// submit, drain order, quiesce, shutdown with jobs in flight), and the
// full engine pipeline (results identical to the interpreter, backpressure
// degrading to the normal blacklist backoff, publish-after-flush dropped
// by generation, destruction with jobs in flight, and the flag-off
// configuration keeping every new path inert).
//
//===----------------------------------------------------------------------===//

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "jit/compile_queue.h"

using namespace tracejit;

namespace {

struct CollectingListener final : JitEventListener {
  std::vector<JitEvent> Events;
  void onEvent(const JitEvent &E) override { Events.push_back(E); }
  uint64_t count(JitEventKind K) const {
    uint64_t N = 0;
    for (const JitEvent &E : Events)
      N += E.Kind == K;
    return N;
  }
};

/// N distinct hot loops; `total` (the final expression) folds every loop's
/// result deterministically.
std::string churnWorkload(int Loops, int Iters) {
  std::string S = "var total = 0;\n";
  for (int L = 0; L < Loops; ++L) {
    std::string I = "i" + std::to_string(L);
    std::string A = "a" + std::to_string(L);
    S += "var " + A + " = 0;\n";
    S += "for (var " + I + " = 0; " + I + " < " + std::to_string(Iters) +
         "; ++" + I + ") { " + A + " += " + I + " * " +
         std::to_string(L + 1) + " + " + std::to_string(L % 3) + "; }\n";
    S += "total += " + A + ";\n";
  }
  S += "total;";
  return S;
}

double interpretedResult(const std::string &Src) {
  EngineOptions O;
  O.Tier = TierMode::Trace; // asserts trace-pipeline internals
  O.EnableJit = false;
  Engine E(O);
  auto R = E.eval(Src);
  EXPECT_TRUE(R.ok()) << R.Err.describe();
  return R.LastValue.numberValue();
}

/// Null-backend job: exercises queue mechanics without compiling anything.
CompileJob markerJob(uint32_t Id) {
  CompileJob J;
  J.FragmentId = Id;
  return J;
}

/// Poll until the engine's compile queue has no unfinished jobs (the
/// worker is asynchronous; completion is not publication).
void awaitCompiled(Engine &E) {
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (E.pendingCompileJobs() > 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), Deadline)
        << "compile worker never finished";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

} // namespace

// --- CompileService / CompileClient mechanics --------------------------------

TEST(CompileQueue, BoundedSubmitThenDrainInOrder) {
  CompileService Svc;
  Svc.setPausedForTest(true); // deterministic: nothing runs until we say so
  auto C = Svc.createClient(2);

  EXPECT_FALSE(C->hasCompleted());
  EXPECT_TRUE(C->trySubmit(markerJob(1)));
  EXPECT_TRUE(C->trySubmit(markerJob(2)));
  EXPECT_FALSE(C->trySubmit(markerJob(3))) << "depth 2 means 2 in flight";
  EXPECT_EQ(C->pendingCount(), 2u);

  Svc.setPausedForTest(false);
  C->waitIdle();
  EXPECT_EQ(C->pendingCount(), 0u);
  EXPECT_TRUE(C->hasCompleted());

  std::vector<CompileJob> Done;
  C->drainCompleted(Done);
  ASSERT_EQ(Done.size(), 2u);
  EXPECT_EQ(Done[0].FragmentId, 1u) << "completion preserves submit order";
  EXPECT_EQ(Done[1].FragmentId, 2u);
  for (const CompileJob &J : Done) {
    EXPECT_TRUE(J.Compiled);
    EXPECT_EQ(J.Result, CompileResult::BackendUnavailable);
  }
  EXPECT_FALSE(C->hasCompleted()) << "drain clears the poll flag";

  // The freed slots are usable again.
  EXPECT_TRUE(C->trySubmit(markerJob(4)));
  C->waitIdle();
}

TEST(CompileQueue, QuiescePullsQueuedJobsBack) {
  CompileService Svc;
  Svc.setPausedForTest(true);
  auto C = Svc.createClient(4);
  ASSERT_TRUE(C->trySubmit(markerJob(7)));
  ASSERT_TRUE(C->trySubmit(markerJob(8)));

  std::vector<CompileJob> Dropped;
  C->quiesce(&Dropped);
  ASSERT_EQ(Dropped.size(), 2u);
  EXPECT_EQ(Dropped[0].FragmentId, 7u);
  EXPECT_FALSE(Dropped[0].Compiled) << "never reached the worker";
  EXPECT_EQ(C->pendingCount(), 0u);
  Svc.setPausedForTest(false);
  C->waitIdle(); // trivially idle; must not hang after a quiesce
}

TEST(CompileQueue, TwoClientsAreIsolated) {
  CompileService Svc;
  Svc.setPausedForTest(true);
  auto A = Svc.createClient(8);
  auto B = Svc.createClient(8);
  ASSERT_TRUE(A->trySubmit(markerJob(1)));
  ASSERT_TRUE(B->trySubmit(markerJob(100)));
  ASSERT_TRUE(A->trySubmit(markerJob(2)));

  // Quiescing A must not disturb B's queued job.
  std::vector<CompileJob> Dropped;
  A->quiesce(&Dropped);
  EXPECT_EQ(Dropped.size(), 2u);
  EXPECT_EQ(B->pendingCount(), 1u);

  Svc.setPausedForTest(false);
  B->waitIdle();
  std::vector<CompileJob> Done;
  B->drainCompleted(Done);
  ASSERT_EQ(Done.size(), 1u);
  EXPECT_EQ(Done[0].FragmentId, 100u);
}

TEST(CompileQueue, ClientDestructionWithJobsInFlightIsClean) {
  CompileService Svc;
  Svc.setPausedForTest(true);
  {
    auto C = Svc.createClient(4);
    ASSERT_TRUE(C->trySubmit(markerJob(1)));
    ASSERT_TRUE(C->trySubmit(markerJob(2)));
    // dtor quiesces: queued jobs are pulled back, nothing dangles.
  }
  Svc.setPausedForTest(false);
  // The service worker must still be healthy.
  auto C2 = Svc.createClient(1);
  ASSERT_TRUE(C2->trySubmit(markerJob(3)));
  C2->waitIdle();
}

// --- Engine pipeline ---------------------------------------------------------

TEST(OffThreadCompile, CompilesOffThreadAndMatchesInterpreter) {
  // Long loops: the publish happens mid-loop (on nproc=1 hosts the worker
  // still gets scheduled within a few ms), so the trace actually runs.
  std::string Src = churnWorkload(4, 20000);
  double Want = interpretedResult(Src);

  EngineOptions O;

  O.Tier = TierMode::Trace; // asserts trace-pipeline internals
  O.EnableJit = true;
  O.CollectStats = true;
  O.OffThreadCompile = true;
  Engine E(O);
  CollectingListener L;
  E.addEventListener(&L);

  auto R = E.eval(Src);
  ASSERT_TRUE(R.ok()) << R.Err.describe();
  EXPECT_EQ(R.LastValue.numberValue(), Want);
  E.waitForCompileQueue();

  VMStats S = E.stats();
  EXPECT_GT(S.CompileJobsQueued, 0u) << "hot loops must go off-thread";
  EXPECT_GT(S.CompileJobsPublished, 0u);
  EXPECT_EQ(S.CompileJobsQueued, S.CompileJobsPublished + S.CompileJobsDropped)
      << "every job is accounted for after the queue settles";
  EXPECT_GT(S.TreesCompiled, 0u);
  EXPECT_GE(L.count(JitEventKind::CompileJobQueued), S.CompileJobsPublished);
  EXPECT_NE(S.report().find("compile queue:"), std::string::npos);

  // Long loops publish mid-eval and then actually run natively.
  EXPECT_GT(S.TraceEnters, 0u) << "published traces were never entered";

  // Second eval re-uses the published trees and still agrees.
  auto R2 = E.eval(Src);
  ASSERT_TRUE(R2.ok());
  EXPECT_EQ(R2.LastValue.numberValue(), Want);
}

TEST(OffThreadCompile, BackpressureDegradesToInterpreterWithBackoff) {
  std::string Src = churnWorkload(5, 200);
  double Want = interpretedResult(Src);

  CompileService Svc;
  Svc.setPausedForTest(true); // the queue can only fill, never drain

  EngineOptions O;

  O.Tier = TierMode::Trace; // asserts trace-pipeline internals
  O.EnableJit = true;
  O.CollectStats = true;
  O.OffThreadCompile = true;
  O.CompileQueueDepth = 1;
  O.SharedCompileService = &Svc;
  {
    Engine E(O);
    auto R = E.eval(Src);
    ASSERT_TRUE(R.ok()) << R.Err.describe();
    EXPECT_EQ(R.LastValue.numberValue(), Want)
        << "a saturated compile queue must not affect results";

    VMStats S = E.stats();
    EXPECT_EQ(S.CompileJobsQueued, 1u) << "depth 1 admits exactly one job";
    EXPECT_GT(S.AbortsByReason[(size_t)AbortReason::CompileQueueFull], 0u)
        << "later hot loops must abort with the queue-full reason";
    EXPECT_EQ(S.TreesCompiled, 0u) << "nothing can publish while paused";
    EXPECT_NE(S.report().find("compile-queue-full"), std::string::npos);

    Svc.setPausedForTest(false);
    E.waitForCompileQueue();
    S = E.stats();
    EXPECT_EQ(S.CompileJobsQueued,
              S.CompileJobsPublished + S.CompileJobsDropped);
    // Engine dies here, while the shared service lives on.
  }
  Svc.setPausedForTest(false);
}

TEST(OffThreadCompile, PublishAfterFlushIsDroppedByGeneration) {
  CompileService Svc;
  Svc.setPausedForTest(true);

  EngineOptions O;

  O.Tier = TierMode::Trace; // asserts trace-pipeline internals
  O.EnableJit = true;
  O.CollectStats = true;
  O.OffThreadCompile = true;
  O.SharedCompileService = &Svc;
  Engine E(O);
  CollectingListener L;
  E.addEventListener(&L);

  // One hot loop: the job is submitted at a loop edge and still unfinished
  // (worker paused) when the script ends.
  ASSERT_TRUE(E.eval(churnWorkload(1, 200)).ok());
  ASSERT_GE(E.pendingCompileJobs(), 1u);

  // Let the worker finish the compile, but do NOT publish it yet.
  Svc.setPausedForTest(false);
  awaitCompiled(E);

  // Flush first: the cache generation moves past the job's.
  E.flushCodeCache();
  EXPECT_EQ(E.cacheGeneration(), 1u);

  // Publication now sees a stale generation and drops the finished code.
  E.pumpCompileQueue();
  VMStats S = E.stats();
  EXPECT_GE(S.CompileJobsDropped, 1u);
  EXPECT_EQ(S.CompileJobsPublished, 0u);
  EXPECT_EQ(S.TreesCompiled, 0u) << "stale code must never be installed";
  EXPECT_TRUE(E.fragmentProfiles().empty());
  ASSERT_GE(L.count(JitEventKind::CompileJobDropped), 1u);
  for (const JitEvent &Ev : L.Events)
    if (Ev.Kind == JitEventKind::CompileJobDropped) {
      EXPECT_EQ(Ev.Arg0, 0u) << "job was submitted in generation 0";
      EXPECT_EQ(Ev.Arg1, 1u) << "dropped against generation 1";
    }

  // The engine is not wedged: the loop re-records and republishes.
  ASSERT_TRUE(E.eval(churnWorkload(1, 200)).ok());
  E.waitForCompileQueue();
  EXPECT_GT(E.stats().CompileJobsPublished, 0u);
}

TEST(OffThreadCompile, EngineDestructionWithJobsInFlightIsClean) {
  // Shared service: the engine dies with a job still queued; its client
  // must quiesce so the worker never touches freed fragments.
  CompileService Svc;
  Svc.setPausedForTest(true);
  {
    EngineOptions O;
    O.Tier = TierMode::Trace; // asserts trace-pipeline internals
    O.EnableJit = true;
    O.OffThreadCompile = true;
    O.SharedCompileService = &Svc;
    Engine E(O);
    ASSERT_TRUE(E.eval(churnWorkload(2, 200)).ok());
    ASSERT_GE(E.pendingCompileJobs(), 1u);
  }
  Svc.setPausedForTest(false);

  // Engine-owned service: destruction joins the worker thread.
  {
    EngineOptions O;
    O.Tier = TierMode::Trace; // asserts trace-pipeline internals
    O.EnableJit = true;
    O.OffThreadCompile = true;
    Engine E(O);
    ASSERT_TRUE(E.eval(churnWorkload(2, 200)).ok());
  }
}

TEST(OffThreadCompile, OffByDefaultKeepsPipelineInert) {
  // The corpus runs three ways: interpreter (ground truth), default
  // options, and explicit OffThreadCompile=false. The default must be
  // byte-identical to the explicit-off configuration -- same output, same
  // values, same trace pipeline counters -- and neither may ever touch the
  // queue.
  const char *Corpus[] = {
      "var t = 0; for (var i = 0; i < 3000; ++i) t += i * 3 + 1; t;",
      "function f(n) { var s = 0; for (var i = 0; i < n; ++i) s += i; "
      "return s; }\nvar r = 0; for (var j = 0; j < 40; ++j) r = f(200); r;",
      "var m = 0;\nfor (var a = 0; a < 60; ++a)\n  for (var b = 0; b < 60; "
      "++b)\n    m += a * b;\nm;",
  };
  for (const char *Src : Corpus) {
    double Want = interpretedResult(Src);

    auto run = [&](const EngineOptions &O) {
      Engine E(O);
      auto R = E.eval(Src);
      EXPECT_TRUE(R.ok()) << R.Err.describe();
      EXPECT_EQ(R.LastValue.numberValue(), Want);
      EXPECT_EQ(E.pendingCompileJobs(), 0u);
      return E.stats();
    };

    EngineOptions Default;
    Default.EnableJit = true;
    Default.CollectStats = true;
    EXPECT_FALSE(Default.OffThreadCompile) << "the flag must default off";

    EngineOptions ExplicitOff = Default;
    ExplicitOff.OffThreadCompile = false;
    ExplicitOff.CompileQueueDepth = 2; // must be ignored when off

    VMStats A = run(Default), B = run(ExplicitOff);
    EXPECT_EQ(A.CompileJobsQueued, 0u);
    EXPECT_EQ(B.CompileJobsQueued, 0u);
    EXPECT_EQ(A.CompileJobsPublished, 0u);
    EXPECT_EQ(A.CompileJobsDropped, 0u);
    EXPECT_EQ(A.TreesCompiled, B.TreesCompiled);
    EXPECT_EQ(A.BranchesCompiled, B.BranchesCompiled);
    EXPECT_EQ(A.TracesCompleted, B.TracesCompleted);
    EXPECT_EQ(A.TraceEnters, B.TraceEnters);
    EXPECT_EQ(A.SideExits, B.SideExits);
    EXPECT_EQ(A.TracesAborted, B.TracesAborted);
  }
}

TEST(OffThreadCompile, FlagsParseThroughApplyFlag) {
  EngineOptions O;
  O.Tier = TierMode::Trace; // asserts trace-pipeline internals
  EXPECT_TRUE(O.applyFlag("--off-thread-compile"));
  EXPECT_TRUE(O.OffThreadCompile);
  EXPECT_TRUE(O.applyFlag("--no-off-thread-compile"));
  EXPECT_FALSE(O.OffThreadCompile);
  EXPECT_TRUE(O.applyFlag("--compile-queue-depth=32"));
  EXPECT_EQ(O.CompileQueueDepth, 32u);
  EXPECT_FALSE(O.applyFlag("--compile-queue-depth="));
  EXPECT_FALSE(O.applyFlag("--compile-queue-depth=0"));
  EXPECT_FALSE(O.applyFlag("--compile-queue-depth=abc"));
  EXPECT_EQ(O.CompileQueueDepth, 32u) << "bad values must not clobber";
}
