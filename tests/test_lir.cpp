//===- test_lir.cpp - LIR buffer, filters, backward passes -------------------===//

#include <gtest/gtest.h>

#include "jit/fragment.h"
#include "lir/backward.h"
#include "lir/filters.h"
#include "lir/lir.h"
#include "support/arena.h"

using namespace tracejit;

namespace {

struct PipelineFixture : ::testing::Test {
  Arena A;
  LirBuffer Buf{A};
  CseFilter Cse{&Buf};
  ExprFilter Expr{&Cse};
  LirWriter &W = Expr;
  Fragment Frag;

  ExitDescriptor *exit(uint32_t Sp = 0) {
    ExitDescriptor *E = Frag.makeExit();
    E->Sp = Sp;
    return E;
  }
};

} // namespace

TEST_F(PipelineFixture, ConstantFoldingInt) {
  LIns *R = W.ins2(LOp::AddI, W.insImmI(2), W.insImmI(3));
  ASSERT_EQ(R->Op, LOp::ImmI);
  EXPECT_EQ(R->Imm.ImmI32, 5);
  EXPECT_EQ(W.ins2(LOp::MulI, W.insImmI(6), W.insImmI(7))->Imm.ImmI32, 42);
  EXPECT_EQ(W.ins2(LOp::ShlI, W.insImmI(1), W.insImmI(10))->Imm.ImmI32, 1024);
  EXPECT_EQ(W.ins2(LOp::LtI, W.insImmI(1), W.insImmI(2))->Imm.ImmI32, 1);
}

TEST_F(PipelineFixture, ConstantFoldingDouble) {
  LIns *R = W.ins2(LOp::MulD, W.insImmD(1.5), W.insImmD(4.0));
  ASSERT_EQ(R->Op, LOp::ImmD);
  EXPECT_EQ(R->Imm.ImmDbl, 6.0);
  EXPECT_EQ(W.ins1(LOp::I2D, W.insImmI(7))->Imm.ImmDbl, 7.0);
  EXPECT_EQ(W.ins1(LOp::D2I, W.insImmD(7.9))->Imm.ImmI32, 7);
}

TEST_F(PipelineFixture, AlgebraicIdentities) {
  LIns *Tar = W.ins0(LOp::ParamTar);
  LIns *X = W.insLoad(LOp::LdI, Tar, 0);
  EXPECT_EQ(W.ins2(LOp::AddI, X, W.insImmI(0)), X) << "x + 0 = x";
  EXPECT_EQ(W.ins2(LOp::MulI, X, W.insImmI(1)), X) << "x * 1 = x";
  // a - a = 0 is called out explicitly in §5.1.
  LIns *Z = W.ins2(LOp::SubI, X, X);
  ASSERT_EQ(Z->Op, LOp::ImmI);
  EXPECT_EQ(Z->Imm.ImmI32, 0);
  LIns *AndZ = W.ins2(LOp::AndI, X, W.insImmI(0));
  EXPECT_EQ(AndZ->Imm.ImmI32, 0);
}

TEST_F(PipelineFixture, IntDoubleNarrowing) {
  // "LIR that converts an INT to a DOUBLE and then back again would be
  // removed by this filter." (§5.1)
  LIns *Tar = W.ins0(LOp::ParamTar);
  LIns *X = W.insLoad(LOp::LdI, Tar, 8);
  LIns *RoundTrip = W.ins1(LOp::D2I, W.ins1(LOp::I2D, X));
  EXPECT_EQ(RoundTrip, X);
}

TEST_F(PipelineFixture, CseDeduplicatesPureExpressions) {
  LIns *Tar = W.ins0(LOp::ParamTar);
  LIns *X = W.insLoad(LOp::LdI, Tar, 0);
  LIns *Y = W.insLoad(LOp::LdI, Tar, 8);
  LIns *S1 = W.ins2(LOp::AddI, X, Y);
  LIns *S2 = W.ins2(LOp::AddI, X, Y);
  EXPECT_EQ(S1, S2);
  // Identical immediates unify as well.
  EXPECT_EQ(W.insImmI(42), W.insImmI(42));
  EXPECT_EQ(W.insImmQ(0x1234), W.insImmQ(0x1234));
}

TEST_F(PipelineFixture, CseDeduplicatesLoadsUntilStore) {
  LIns *Tar = W.ins0(LOp::ParamTar);
  LIns *L1 = W.insLoad(LOp::LdI, Tar, 16);
  LIns *L2 = W.insLoad(LOp::LdI, Tar, 16);
  EXPECT_EQ(L1, L2) << "repeated load with no intervening store is CSE'd";
  W.insStore(LOp::StI, W.insImmI(1), Tar, 999);
  LIns *L3 = W.insLoad(LOp::LdI, Tar, 16);
  EXPECT_NE(L1, L3) << "stores conservatively invalidate cached loads";
}

TEST_F(PipelineFixture, RedundantGuardsDropped) {
  LIns *Tar = W.ins0(LOp::ParamTar);
  LIns *X = W.insLoad(LOp::LdI, Tar, 0);
  LIns *C = W.ins2(LOp::EqI, X, W.insImmI(3));
  LIns *G1 = W.insGuard(LOp::GuardT, C, exit());
  EXPECT_NE(G1, nullptr);
  LIns *G2 = W.insGuard(LOp::GuardT, C, exit());
  EXPECT_EQ(G2, nullptr) << "same condition, same polarity: proven already";
  LIns *G3 = W.insGuard(LOp::GuardF, C, exit());
  EXPECT_NE(G3, nullptr) << "opposite polarity is a different guard";
}

TEST_F(PipelineFixture, GuardOnProvenConstantDisappears) {
  LIns *G = W.insGuard(LOp::GuardT, W.insImmI(1), exit());
  EXPECT_EQ(G, nullptr);
}

TEST_F(PipelineFixture, OverflowOpsFoldWhenSafe) {
  LIns *R = W.insOvf(LOp::AddOvI, W.insImmI(1000), W.insImmI(2000), exit());
  ASSERT_EQ(R->Op, LOp::ImmI);
  EXPECT_EQ(R->Imm.ImmI32, 3000);
  // Overflowing constants must NOT fold (the guard matters).
  LIns *Big = W.insOvf(LOp::MulOvI, W.insImmI(1 << 20), W.insImmI(1 << 20),
                       exit());
  EXPECT_EQ(Big->Op, LOp::MulOvI);
}

TEST(DeadStoreElim, RemovesStoresAboveExitStackDepth) {
  // "Stores to locations that are off the top of the interpreter stack at
  // future exits are also dead." (§5.1)
  Arena A;
  LirBuffer Buf(A);
  Fragment Frag;
  LIns *Tar = Buf.ins0(LOp::ParamTar);
  LIns *V = Buf.insImmI(7);
  // Slot 5 (stack depth 5 with 0 globals): dead if every exit has Sp <= 5.
  Buf.insStore(LOp::StI, V, Tar, 5 * 8);
  // Slot 0: live at the exit below.
  Buf.insStore(LOp::StI, V, Tar, 0);
  ExitDescriptor *E = Frag.makeExit();
  E->Sp = 2; // exit sees slots [0, 2)
  Buf.insGuard(LOp::GuardT, Buf.insImmI(0), E); // not folded: raw buffer
  Buf.insExit(E);

  uint32_t Removed = eliminateDeadStores(Buf.instructions(), /*Globals=*/0);
  EXPECT_EQ(Removed, 1u);
  bool SawSlot0 = false, SawSlot5 = false;
  for (LIns *I : Buf.instructions()) {
    if (I->isStore() && I->Disp == 0)
      SawSlot0 = true;
    if (I->isStore() && I->Disp == 40)
      SawSlot5 = true;
  }
  EXPECT_TRUE(SawSlot0);
  EXPECT_FALSE(SawSlot5);
}

TEST(DeadStoreElim, OverwrittenStoreWithNoInterveningExitIsDead) {
  Arena A;
  LirBuffer Buf(A);
  Fragment Frag;
  LIns *Tar = Buf.ins0(LOp::ParamTar);
  Buf.insStore(LOp::StI, Buf.insImmI(1), Tar, 0); // dead: overwritten
  Buf.insStore(LOp::StI, Buf.insImmI(2), Tar, 0); // live at exit
  ExitDescriptor *E = Frag.makeExit();
  E->Sp = 1;
  Buf.insExit(E);
  EXPECT_EQ(eliminateDeadStores(Buf.instructions(), 0), 1u);
}

TEST(DeadStoreElim, ExitBetweenStoresKeepsBoth) {
  Arena A;
  LirBuffer Buf(A);
  Fragment Frag;
  LIns *Tar = Buf.ins0(LOp::ParamTar);
  Buf.insStore(LOp::StI, Buf.insImmI(1), Tar, 0);
  ExitDescriptor *E = Frag.makeExit();
  E->Sp = 1;
  LIns *Cond = Buf.insLoad(LOp::LdI, Tar, 8);
  Buf.insGuard(LOp::GuardT, Cond, E); // observes slot 0
  Buf.insStore(LOp::StI, Buf.insImmI(2), Tar, 0);
  ExitDescriptor *E2 = Frag.makeExit();
  E2->Sp = 1;
  Buf.insExit(E2);
  EXPECT_EQ(eliminateDeadStores(Buf.instructions(), 0), 0u);
}

TEST(DeadStoreElim, LoopKeepsReimportedSlots) {
  // A store before Loop is live if the trace reloads that slot anywhere
  // (the next iteration re-imports it).
  Arena A;
  LirBuffer Buf(A);
  LIns *Tar = Buf.ins0(LOp::ParamTar);
  LIns *V = Buf.insLoad(LOp::LdI, Tar, 0);
  LIns *V2 = Buf.ins2(LOp::AddI, V, V);
  Buf.insStore(LOp::StI, V2, Tar, 0);
  Buf.insLoop();
  EXPECT_EQ(eliminateDeadStores(Buf.instructions(), 0), 0u);
}

TEST(DeadCodeElim, RemovesUnusedPureOps) {
  Arena A;
  LirBuffer Buf(A);
  Fragment Frag;
  LIns *Tar = Buf.ins0(LOp::ParamTar);
  LIns *X = Buf.insLoad(LOp::LdI, Tar, 0);
  Buf.ins2(LOp::AddI, X, X); // unused
  LIns *Used = Buf.ins2(LOp::MulI, X, X);
  Buf.insStore(LOp::StI, Used, Tar, 8);
  size_t Before = Buf.instructions().size();
  uint32_t Removed = eliminateDeadCode(Buf.instructions());
  EXPECT_EQ(Removed, 1u);
  EXPECT_EQ(Buf.instructions().size(), Before - 1);
}

TEST(DeadCodeElim, KeepsGuardsAndTheirOperandChains) {
  Arena A;
  LirBuffer Buf(A);
  Fragment Frag;
  LIns *Tar = Buf.ins0(LOp::ParamTar);
  LIns *X = Buf.insLoad(LOp::LdI, Tar, 0);
  LIns *C = Buf.ins2(LOp::EqI, X, Buf.insImmI(0));
  ExitDescriptor *E = Frag.makeExit();
  Buf.insGuard(LOp::GuardT, C, E);
  EXPECT_EQ(eliminateDeadCode(Buf.instructions()), 0u)
      << "the guard roots its whole condition chain";
}

TEST(Typecheck, AcceptsWellTypedBody) {
  Arena A;
  LirBuffer Buf(A);
  LIns *Tar = Buf.ins0(LOp::ParamTar);
  LIns *X = Buf.insLoad(LOp::LdI, Tar, 0);
  LIns *D = Buf.ins1(LOp::I2D, X);
  LIns *S = Buf.ins2(LOp::AddD, D, Buf.insImmD(1.0));
  Buf.insStore(LOp::StD, S, Tar, 8);
  EXPECT_EQ(typecheckBody(Buf.instructions()), "");
}

TEST(Typecheck, RejectsTypeMismatch) {
  Arena A;
  LirBuffer Buf(A);
  LIns *Tar = Buf.ins0(LOp::ParamTar);
  LIns *X = Buf.insLoad(LOp::LdI, Tar, 0);
  LIns *D = Buf.insImmD(1.0);
  Buf.ins2(LOp::AddI, X, D); // I32 + D: ill-typed
  EXPECT_NE(typecheckBody(Buf.instructions()), "");
}

TEST(Printer, GuardExitMetadataGolden) {
  // Guards must print the exit metadata the verifier's diagnostics lean
  // on: resume point, stack depth, frame depth, and the type-map summary.
  Arena A;
  LirBuffer Buf(A);
  Fragment Frag;
  LIns *Tar = Buf.ins0(LOp::ParamTar);
  LIns *X = Buf.insLoad(LOp::LdI, Tar, 0);
  LIns *C = Buf.ins2(LOp::EqI, X, Buf.insImmI(3));
  ExitDescriptor *E = Frag.makeExit();
  E->Kind = ExitKind::Type;
  E->Pc = 12;
  E->Sp = 2;
  E->Frames.push_back({nullptr, 0, 0});
  E->Types.NumGlobals = 1;
  E->Types.Types = {TraceType::Int, TraceType::Int, TraceType::Double};
  LIns *G = Buf.insGuard(LOp::GuardT, C, E);
  EXPECT_EQ(formatIns(G),
            "v4    v= xf       v3 -> exit0(type@12 sp=2 depth=1 types=[i|id])");

  ExitDescriptor *Plain = Frag.makeExit();
  Plain->Kind = ExitKind::LoopExit;
  Plain->Pc = 7;
  Plain->Sp = 1;
  Plain->Types.Types = {TraceType::String};
  LIns *Tail = Buf.insExit(Plain);
  EXPECT_EQ(formatIns(Tail),
            "v5    v= exit     -> exit1(loopexit@7 sp=1 depth=0 types=[|s])");
}

TEST(Printer, FormatsInstructionsReadably) {
  Arena A;
  LirBuffer Buf(A);
  LIns *Tar = Buf.ins0(LOp::ParamTar);
  LIns *X = Buf.insLoad(LOp::LdI, Tar, 16);
  Buf.ins2(LOp::AddI, X, Buf.insImmI(5));
  std::string S = formatBody(Buf.instructions());
  EXPECT_NE(S.find("param.tar"), std::string::npos);
  EXPECT_NE(S.find("ldi"), std::string::npos);
  EXPECT_NE(S.find("addi"), std::string::npos);
  EXPECT_NE(S.find("[16]"), std::string::npos);
}
