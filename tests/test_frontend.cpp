//===- test_frontend.cpp - Lexer, parser, bytecode compiler -------------------===//

#include <gtest/gtest.h>

#include "api/engine.h"
#include "frontend/lexer.h"
#include "frontend/parser.h"

using namespace tracejit;

TEST(Lexer, TokenKinds) {
  Lexer L("var x = 0x1F + 2.5e3; // comment\n'str' >>> >= === !== &&");
  EXPECT_EQ(L.next().Kind, Tok::KwVar);
  Token Id = L.next();
  EXPECT_EQ(Id.Kind, Tok::Identifier);
  EXPECT_EQ(Id.Text, "x");
  EXPECT_EQ(L.next().Kind, Tok::Assign);
  Token Hex = L.next();
  EXPECT_EQ(Hex.Kind, Tok::Number);
  EXPECT_EQ(Hex.NumValue, 31.0);
  EXPECT_EQ(L.next().Kind, Tok::Plus);
  Token Exp = L.next();
  EXPECT_EQ(Exp.NumValue, 2500.0);
  EXPECT_EQ(L.next().Kind, Tok::Semicolon);
  Token Str = L.next();
  EXPECT_EQ(Str.Kind, Tok::StringLit);
  EXPECT_EQ(Str.Text, "str");
  EXPECT_EQ(L.next().Kind, Tok::Ushr);
  EXPECT_EQ(L.next().Kind, Tok::Ge);
  EXPECT_EQ(L.next().Kind, Tok::StrictEq);
  EXPECT_EQ(L.next().Kind, Tok::StrictNe);
  EXPECT_EQ(L.next().Kind, Tok::AmpAmp);
  EXPECT_EQ(L.next().Kind, Tok::Eof);
}

TEST(Lexer, StringEscapes) {
  EXPECT_EQ(decodeStringLiteral("a\\nb\\t\\x41"), "a\nb\tA");
  EXPECT_EQ(decodeStringLiteral("\\'\\\""), "'\"");
}

TEST(Lexer, BlockComments) {
  Lexer L("1 /* multi\nline */ 2");
  EXPECT_EQ(L.next().NumValue, 1.0);
  Token T = L.next();
  EXPECT_EQ(T.NumValue, 2.0);
  EXPECT_EQ(T.Line, 2u) << "line counting continues inside comments";
}

namespace {
FunctionScript *compileOk(VMContext &Ctx, const char *Src) {
  std::string Err;
  FunctionScript *S = compileSource(Ctx, Src, &Err);
  EXPECT_NE(S, nullptr) << Err;
  return S;
}
} // namespace

TEST(Parser, LoopHeadersAreEmitted) {
  EngineOptions O;
  VMContext Ctx(O);
  FunctionScript *S =
      compileOk(Ctx, "var s = 0; for (var i = 0; i < 3; ++i) s += i;");
  ASSERT_EQ(S->Loops.size(), 1u);
  EXPECT_EQ(S->opAt(S->Loops[0].HeaderPc), Op::LoopHeader);
  EXPECT_GT(S->Loops[0].EndPc, S->Loops[0].HeaderPc);
}

TEST(Parser, NestedLoopExtentsNest) {
  EngineOptions O;
  VMContext Ctx(O);
  FunctionScript *S = compileOk(Ctx, "for (var i = 0; i < 3; ++i)"
                                     "  for (var j = 0; j < 3; ++j)"
                                     "    i;");
  ASSERT_EQ(S->Loops.size(), 2u);
  const LoopRecord &Outer = S->Loops[0];
  const LoopRecord &Inner = S->Loops[1];
  EXPECT_LT(Outer.HeaderPc, Inner.HeaderPc);
  EXPECT_LE(Inner.EndPc, Outer.EndPc);
}

TEST(Parser, BackwardJumpsTargetLoopHeaders) {
  // The §3.2 invariant: "a bytecode is a loop header iff it is the target
  // of a backward branch".
  EngineOptions O;
  VMContext Ctx(O);
  FunctionScript *S = compileOk(
      Ctx, "var i = 0; do { i = i + 1; } while (i < 3);"
           "while (i < 10) { ++i; if (i == 7) continue; }"
           "for (var k = 0; k < 5; ++k) { if (k == 2) continue; }");
  uint32_t Pc = 0;
  while (Pc < S->Code.size()) {
    Op Op_ = S->opAt(Pc);
    uint32_t Len = 1 + opInfo(Op_).OperandBytes;
    if (Op_ == Op::Jump || Op_ == Op::JumpIfTrue) {
      uint32_t Target = S->u32At(Pc + 1);
      if (Target < Pc && Op_ == Op::JumpIfTrue)
        EXPECT_EQ(S->opAt(Target), Op::LoopHeader)
            << "backward conditional jump at " << Pc;
    }
    Pc += Len;
  }
}

TEST(Parser, FunctionsGetOwnScripts) {
  EngineOptions O;
  VMContext Ctx(O);
  compileOk(Ctx, "function f(a, b) { return a + b; }"
                 "function g() { return f(1, 2); }");
  // Scripts: toplevel first, then f and g in declaration order.
  EXPECT_EQ(Ctx.Scripts.size(), 3u);
  EXPECT_EQ(Ctx.Scripts[0]->Name, "");
  EXPECT_EQ(Ctx.Scripts[1]->Name, "f");
  EXPECT_EQ(Ctx.Scripts[1]->Arity, 2u);
  EXPECT_EQ(Ctx.Scripts[1]->NumLocals, 2u);
  EXPECT_EQ(Ctx.Scripts[2]->Name, "g");
}

TEST(Parser, SyntaxErrors) {
  EngineOptions O;
  const char *Bad[] = {
      "var = 3;",
      "if (1 { }",
      "for (;;",
      "function () {}",
      "break;",
      "continue;",
      "return 1;",
      "var x = 1 +;",
      "function f() { function g() {} }", // nested functions unsupported
      "1 = 2;",
  };
  for (const char *Src : Bad) {
    VMContext Ctx(O);
    std::string Err;
    EXPECT_EQ(compileSource(Ctx, Src, &Err), nullptr) << Src;
    EXPECT_FALSE(Err.empty()) << Src;
  }
}

TEST(Parser, DisassemblerRoundTrips) {
  EngineOptions O;
  VMContext Ctx(O);
  FunctionScript *S = compileOk(Ctx, "var o = {x: 1};\n"
                                     "for (var i = 0; i < 3; ++i)"
                                     "  o.x = o.x + i;");
  std::string Dis = S->disassemble();
  EXPECT_NE(Dis.find("loopheader"), std::string::npos);
  EXPECT_NE(Dis.find("getprop"), std::string::npos);
  EXPECT_NE(Dis.find(".x"), std::string::npos);
  EXPECT_NE(Dis.find("jump"), std::string::npos);
}

TEST(Parser, OperatorPrecedence) {
  EngineOptions O;
  Engine E(O);
  std::string Out;
  E.setPrintHook([&](const std::string &S) { Out += S; });
  ASSERT_TRUE(E.eval("print(1 + 2 * 3 - 4 / 2);\n"
                     "print(1 << 2 + 1);\n"
                     "print(7 & 3 | 4 ^ 1);\n"
                     "print(1 < 2 == true);\n"
                     "print(-2 * -3);\n")
                  .ok());
  EXPECT_EQ(Out, "5\n8\n7\ntrue\n6\n");
}
