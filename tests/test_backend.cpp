//===- test_backend.cpp - Assembler, exec memory, native compiler ------------===//

#include <gtest/gtest.h>

#include <cstring>

#include "interp/vmcontext.h"
#include "jit/assembler_x64.h"
#include "jit/compiler_x64.h"
#include "jit/execmem.h"
#include "jit/executor.h"
#include "lir/lir.h"
#include "support/arena.h"

using namespace tracejit;

namespace {

/// Assemble a tiny function and call it directly. The pool is W^X: it maps
/// RW for emission, so flip it to RX before handing out a callable.
template <typename FnT> FnT assembleInto(ExecMemPool &Pool, Assembler &A) {
  EXPECT_FALSE(A.overflowed());
  EXPECT_TRUE(Pool.makeExecutable());
  return (FnT)A.begin();
}

} // namespace

TEST(ExecMem, AllocatesAlignedExecutableMemory) {
  ExecMemPool Pool(1 << 20);
  ASSERT_TRUE(Pool.valid());
  uint8_t *A = Pool.allocate(100);
  uint8_t *B = Pool.allocate(100);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  EXPECT_EQ((uintptr_t)A % 16, 0u);
  EXPECT_EQ((uintptr_t)B % 16, 0u);
  EXPECT_GE(B, A + 100);
}

TEST(Assembler, ReturnConstant) {
  ExecMemPool Pool(1 << 16);
  ASSERT_TRUE(Pool.valid());
  Assembler A(Pool.allocate(64), 64);
  A.movRI32(RAX, 12345);
  A.ret();
  auto Fn = assembleInto<int (*)()>(Pool, A);
  EXPECT_EQ(Fn(), 12345);
}

TEST(Assembler, IntegerArithmetic) {
  ExecMemPool Pool(1 << 16);
  ASSERT_TRUE(Pool.valid());
  // int f(int a, int b) { return (a + b) * 3 - (a & b); }
  Assembler A(Pool.allocate(128), 128);
  A.movRR32(RAX, RDI);
  A.addRR32(RAX, RSI);
  A.movRI32(RCX, 3);
  A.imulRR32(RAX, RCX);
  A.movRR32(RDX, RDI);
  A.andRR32(RDX, RSI);
  A.subRR32(RAX, RDX);
  A.ret();
  auto Fn = assembleInto<int (*)(int, int)>(Pool, A);
  EXPECT_EQ(Fn(5, 7), 31);
  EXPECT_EQ(Fn(-4, 9), 15 - (-4 & 9));
}

TEST(Assembler, MemoryAndShifts) {
  ExecMemPool Pool(1 << 16);
  ASSERT_TRUE(Pool.valid());
  // int f(int* p) { return (p[0] << 4) | (p[1] >> 2); }
  Assembler A(Pool.allocate(128), 128);
  A.movRM32(RAX, RDI, 0);
  A.shlI32(RAX, 4);
  A.movRM32(RCX, RDI, 4);
  A.sarI32(RCX, 2);
  A.orRR32(RAX, RCX);
  A.ret();
  auto Fn = assembleInto<int (*)(int *)>(Pool, A);
  int Data[2] = {3, 40};
  EXPECT_EQ(Fn(Data), (3 << 4) | (40 >> 2));
}

TEST(Assembler, DoubleArithmetic) {
  ExecMemPool Pool(1 << 16);
  ASSERT_TRUE(Pool.valid());
  // double f(double a, double b) { return a * b + a; }
  Assembler A(Pool.allocate(64), 64);
  A.movsdRR(XMM2, XMM0);
  A.mulsd(XMM2, XMM1);
  A.addsd(XMM2, XMM0);
  A.movsdRR(XMM0, XMM2);
  A.ret();
  auto Fn = assembleInto<double (*)(double, double)>(Pool, A);
  EXPECT_EQ(Fn(2.5, 4.0), 12.5);
}

TEST(Assembler, ConversionsAndCompares) {
  ExecMemPool Pool(1 << 16);
  ASSERT_TRUE(Pool.valid());
  // int f(double d, int i) { return (int)d + (d > (double)i ? 10 : 0); }
  Assembler A(Pool.allocate(128), 128);
  A.cvttsd2si(RAX, XMM0);
  A.cvtsi2sd(XMM1, RDI);
  A.ucomisd(XMM0, XMM1);
  A.setcc(CondA, RCX);
  A.movzxByteRR(RCX, RCX);
  A.movRI32(RDX, 10);
  A.imulRR32(RCX, RDX);
  A.addRR32(RAX, RCX);
  A.ret();
  auto Fn = assembleInto<int (*)(int, double)>(Pool, A); // (rdi, xmm0)
  EXPECT_EQ(Fn(3, 7.5), 7 + 10);
  EXPECT_EQ(Fn(9, 7.5), 7 + 0);
}

TEST(Assembler, JumpsAndPatching) {
  ExecMemPool Pool(1 << 16);
  ASSERT_TRUE(Pool.valid());
  // int f(int a) { if (a < 0) return -1; return 1; }
  Assembler A(Pool.allocate(64), 64);
  A.testRR32(RDI, RDI);
  uint8_t *Neg = A.jccFwd(CondS);
  A.movRI32(RAX, 1);
  A.ret();
  uint8_t *NegTarget = A.pc();
  A.movRI32(RAX, -1);
  A.ret();
  Assembler::patchRel32(Neg, NegTarget);
  auto Fn = assembleInto<int (*)(int)>(Pool, A);
  EXPECT_EQ(Fn(5), 1);
  EXPECT_EQ(Fn(-5), -1);
}

TEST(Assembler, ExtendedRegistersEncodeCorrectly) {
  ExecMemPool Pool(1 << 16);
  ASSERT_TRUE(Pool.valid());
  // Exercise r8-r15 and xmm8+: int f(int a) { return a * 2 + 7; }
  Assembler A(Pool.allocate(128), 128);
  A.push(R15); // callee-saved: the C++ caller may live in it
  A.movRR32(R8, RDI);
  A.addRR32(R8, RDI);
  A.movRI32(R15, 7);
  A.addRR32(R8, R15);
  A.movRR32(RAX, R8);
  A.pop(R15);
  A.ret();
  auto Fn = assembleInto<int (*)(int)>(Pool, A);
  EXPECT_EQ(Fn(21), 49);
}

// --- Native vs executor on hand-built LIR fragments --------------------------------

namespace {

struct BackendFixture : ::testing::Test {
  EngineOptions Opts;
  VMContext Ctx{Opts};
  NativeBackend BE;
  Arena A;

  /// Run a fragment under both backends against the same TAR contents and
  /// require identical exits and TAR effects.
  void checkBoth(Fragment &F, std::vector<uint64_t> TarInit,
                 ExitDescriptor *WantExit) {
    ASSERT_TRUE(BE.valid());
    ASSERT_EQ(typecheckBody(F.Body), "");

    std::vector<uint64_t> TarN = TarInit, TarX = TarInit;
    TarN.resize(TarInit.size() + 64);
    TarX.resize(TarInit.size() + 64);

    ASSERT_EQ(BE.compile(&F, &Ctx), CompileResult::Ok);
    ASSERT_TRUE(BE.ensureExecutable());
    ExitDescriptor *EN = BE.enter(TarN.data(), &F);
    ExitDescriptor *EX =
        LirExecutor::run(&F, (uint8_t *)TarX.data(), &Ctx);
    EXPECT_EQ(EN, WantExit);
    EXPECT_EQ(EX, WantExit);
    EXPECT_EQ(TarN, TarX) << "backends disagree on TAR effects";
  }
};

} // namespace

TEST_F(BackendFixture, CountingLoopFragment) {
  // slot0 = i; loop until i == 100, incrementing.
  Fragment F;
  LirBuffer Buf(A);
  LIns *Tar = Buf.ins0(LOp::ParamTar);
  LIns *I = Buf.insLoad(LOp::LdI, Tar, 0);
  LIns *Done = Buf.ins2(LOp::EqI, I, Buf.insImmI(100));
  ExitDescriptor *E = F.makeExit();
  E->Sp = 1;
  Buf.insGuard(LOp::GuardF, Done, E);
  LIns *Next = Buf.ins2(LOp::AddI, I, Buf.insImmI(1));
  Buf.insStore(LOp::StI, Next, Tar, 0);
  Buf.insLoop();
  F.Body = Buf.instructions();

  std::vector<uint64_t> TarInit = {0, 0, 0, 0};
  checkBoth(F, TarInit, E);
}

TEST_F(BackendFixture, DoubleAccumulationFragment) {
  Fragment F;
  LirBuffer Buf(A);
  LIns *Tar = Buf.ins0(LOp::ParamTar);
  LIns *I = Buf.insLoad(LOp::LdI, Tar, 0);
  LIns *S = Buf.insLoad(LOp::LdD, Tar, 8);
  LIns *S2 = Buf.ins2(LOp::AddD, S, Buf.insImmD(0.125));
  Buf.insStore(LOp::StD, S2, Tar, 8);
  LIns *Next = Buf.ins2(LOp::AddI, I, Buf.insImmI(1));
  Buf.insStore(LOp::StI, Next, Tar, 0);
  ExitDescriptor *E = F.makeExit();
  E->Sp = 2;
  Buf.insGuard(LOp::GuardT, Buf.ins2(LOp::LtI, Next, Buf.insImmI(64)), E);
  Buf.insLoop();
  F.Body = Buf.instructions();

  std::vector<uint64_t> TarInit = {0, 0, 0, 0};
  checkBoth(F, TarInit, E);
  // Spot-check the math: 64 iterations of +0.125 = 8.0.
  std::vector<uint64_t> TarMem = TarInit;
  TarMem.resize(68);
  LirExecutor::run(&F, (uint8_t *)TarMem.data(), &Ctx);
  double Result;
  memcpy(&Result, &TarMem[1], 8);
  EXPECT_EQ(Result, 8.0);
}

TEST_F(BackendFixture, OverflowGuardExits) {
  Fragment F;
  LirBuffer Buf(A);
  LIns *Tar = Buf.ins0(LOp::ParamTar);
  LIns *X = Buf.insLoad(LOp::LdI, Tar, 0);
  ExitDescriptor *Ov = F.makeExit();
  Ov->Sp = 1;
  LIns *Dbl = Buf.insOvf(LOp::AddOvI, X, X, Ov);
  Buf.insStore(LOp::StI, Dbl, Tar, 0);
  Buf.insLoop();
  F.Body = Buf.instructions();

  // Starts at 3: doubles until it overflows int32, then must exit.
  std::vector<uint64_t> TarInit = {3, 0};
  checkBoth(F, TarInit, Ov);
}

TEST_F(BackendFixture, ManyLiveValuesForceSpills) {
  // More simultaneously-live values than registers: exercises the
  // furthest-next-use spill heuristic (§5.2).
  Fragment F;
  LirBuffer Buf(A);
  LIns *Tar = Buf.ins0(LOp::ParamTar);
  constexpr int N = 40;
  LIns *Vals[N];
  for (int K = 0; K < N; ++K)
    Vals[K] = Buf.insLoad(LOp::LdI, Tar, K * 8);
  // Consume in reverse so everything stays live a long time.
  LIns *Acc = Buf.insImmI(0);
  for (int K = N - 1; K >= 0; --K)
    Acc = Buf.ins2(LOp::AddI, Acc, Vals[K]);
  Buf.insStore(LOp::StI, Acc, Tar, N * 8);
  ExitDescriptor *E = F.makeExit();
  E->Sp = 0;
  Buf.insExit(E);
  F.Body = Buf.instructions();

  std::vector<uint64_t> TarInit(N + 2);
  for (int K = 0; K < N; ++K)
    TarInit[K] = (uint64_t)(K + 1);
  checkBoth(F, TarInit, E);
  // Validate the sum through the executor copy.
  std::vector<uint64_t> TarMem = TarInit;
  TarMem.resize(TarInit.size() + 64);
  LirExecutor::run(&F, (uint8_t *)TarMem.data(), &Ctx);
  EXPECT_EQ((int32_t)TarMem[N], N * (N + 1) / 2);
}

TEST_F(BackendFixture, StitchedExitTransfersToBranchFragment) {
  // Fragment A exits; its exit is patched to fragment B, which writes a
  // marker and exits through its own descriptor.
  Fragment FB;
  LirBuffer BufB(A);
  {
    LIns *Tar = BufB.ins0(LOp::ParamTar);
    BufB.insStore(LOp::StI, BufB.insImmI(777), Tar, 8);
    ExitDescriptor *EB = FB.makeExit();
    EB->Sp = 0;
    BufB.insExit(EB);
    FB.Body = BufB.instructions();
  }
  ASSERT_EQ(BE.compile(&FB, &Ctx), CompileResult::Ok);

  Fragment FA;
  LirBuffer BufA(A);
  ExitDescriptor *EA;
  {
    LIns *Tar = BufA.ins0(LOp::ParamTar);
    LIns *X = BufA.insLoad(LOp::LdI, Tar, 0);
    EA = FA.makeExit();
    EA->Sp = 0;
    BufA.insGuard(LOp::GuardT, BufA.ins2(LOp::EqI, X, BufA.insImmI(0)), EA);
    ExitDescriptor *EEnd = FA.makeExit();
    EEnd->Sp = 0;
    BufA.insExit(EEnd);
    FA.Body = BufA.instructions();
  }
  ASSERT_EQ(BE.compile(&FA, &Ctx), CompileResult::Ok);

  BE.patchExitTo(EA, &FB);

  // Native path.
  ASSERT_TRUE(BE.ensureExecutable());
  std::vector<uint64_t> Tar(8, 0);
  Tar[0] = 5; // guard fails -> goes through the stitched exit into FB
  ExitDescriptor *Got = BE.enter(Tar.data(), &FA);
  EXPECT_EQ(Got, FB.Exits[0].get());
  EXPECT_EQ((int32_t)Tar[1], 777);

  // Executor path follows Exit->Target the same way.
  std::vector<uint64_t> Tar2(8, 0);
  Tar2[0] = 5;
  ExitDescriptor *Got2 = LirExecutor::run(&FA, (uint8_t *)Tar2.data(), &Ctx);
  EXPECT_EQ(Got2, FB.Exits[0].get());
  EXPECT_EQ((int32_t)Tar2[1], 777);
}
