//===- test_serve.cpp - Multi-context serving harness --------------------------===//
//
// Covers the ScriptServer: request/result correctness across N isolated
// contexts, per-request print capture and error reporting, bounded-queue
// submission, drain/reuse, graceful stop with per-worker stats, and N
// engines sharing one background compiler.
//
//===----------------------------------------------------------------------===//

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "jit/compile_queue.h"
#include "serve/server.h"

using namespace tracejit;
using namespace tracejit::serve;

namespace {

/// A hot-loop script whose print output is its (deterministic) checksum.
std::string loopScript(int Variant, int Iters) {
  return "var t = 0; for (var i = 0; i < " + std::to_string(Iters) +
         "; ++i) t += i * " + std::to_string(Variant + 1) + " + " +
         std::to_string(Variant % 5) + "; print(t);";
}

std::string interpreterOutput(const std::string &Src) {
  EngineOptions O;
  O.EnableJit = false;
  Engine E(O);
  std::string Out;
  E.setPrintHook([&Out](const std::string &S) { Out += S; });
  EXPECT_TRUE(E.eval(Src).ok());
  return Out;
}

} // namespace

TEST(Serve, ServesRequestsCorrectlyAcrossContexts) {
  ServerConfig C;
  C.Workers = 3;
  C.QueueDepth = 64;
  C.Engine.EnableJit = true;
  C.Engine.CollectStats = true;
  C.Engine.OffThreadCompile = true;
  ScriptServer S(C);
  ASSERT_NE(S.compileService(), nullptr)
      << "off-thread serving owns a shared compiler";

  std::vector<std::string> Scripts;
  std::vector<std::string> Want;
  for (int V = 0; V < 6; ++V) {
    Scripts.push_back(loopScript(V, 2000));
    Want.push_back(interpreterOutput(Scripts.back()));
  }
  const int Requests = 30;
  for (int I = 0; I < Requests; ++I)
    S.submit(Scripts[I % Scripts.size()]);
  S.stop();

  std::vector<RequestResult> Results = S.takeResults();
  ASSERT_EQ(Results.size(), (size_t)Requests);
  std::set<uint64_t> Ids;
  for (const RequestResult &R : Results) {
    EXPECT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.Output, Want[(R.Id - 1) % Want.size()])
        << "context " << R.Worker << " returned a wrong checksum";
    EXPECT_LT(R.Worker, C.Workers);
    EXPECT_GE(R.TotalMs, R.EvalMs);
    Ids.insert(R.Id);
  }
  EXPECT_EQ(Ids.size(), (size_t)Requests) << "request ids must be unique";

  // Per-context stats were snapped at shutdown; jointly they must account
  // for every request and for a settled compile queue.
  ASSERT_EQ(S.workerStats().size(), C.Workers);
  uint64_t Queued = 0, Published = 0, Dropped = 0;
  for (const VMStats &W : S.workerStats()) {
    Queued += W.CompileJobsQueued;
    Published += W.CompileJobsPublished;
    Dropped += W.CompileJobsDropped;
  }
  EXPECT_GT(Queued, 0u) << "hot loops must have compiled off-thread";
  EXPECT_EQ(Queued, Published + Dropped);
}

TEST(Serve, ScriptErrorsAreReportedPerRequest) {
  ServerConfig C;
  C.Workers = 2;
  ScriptServer S(C);
  S.submit("print(1 + 2);");
  S.submit("var x = ;"); // parse error
  S.submit("undefinedCall();"); // runtime error
  S.stop();

  std::vector<RequestResult> Results = S.takeResults();
  ASSERT_EQ(Results.size(), 3u);
  int Ok = 0, Failed = 0;
  for (const RequestResult &R : Results) {
    if (R.Ok) {
      ++Ok;
      EXPECT_EQ(R.Output, "3\n");
    } else {
      ++Failed;
      EXPECT_FALSE(R.Error.empty());
    }
  }
  EXPECT_EQ(Ok, 1);
  EXPECT_EQ(Failed, 2) << "a failing request must not poison its context";
}

TEST(Serve, TinyQueueStillServesEverything) {
  // QueueDepth 1 forces submit() to block on a full queue; every request
  // must still be served exactly once.
  ServerConfig C;
  C.Workers = 1;
  C.QueueDepth = 1;
  ScriptServer S(C);
  for (int I = 0; I < 10; ++I)
    S.submit(loopScript(I, 500));
  S.stop();
  EXPECT_EQ(S.takeResults().size(), 10u);
}

TEST(Serve, DrainAllowsBatchedUse) {
  ServerConfig C;
  C.Workers = 2;
  ScriptServer S(C);
  S.submit("print(1);");
  S.submit("print(2);");
  S.drain();
  EXPECT_EQ(S.takeResults().size(), 2u);
  S.submit("print(3);");
  S.drain();
  std::vector<RequestResult> Batch2 = S.takeResults();
  ASSERT_EQ(Batch2.size(), 1u);
  EXPECT_EQ(Batch2[0].Output, "3\n");
  S.stop();
  S.stop(); // idempotent
}

TEST(Serve, InlineModeHasNoCompilerThread) {
  ServerConfig C;
  C.Workers = 2;
  C.Engine.EnableJit = true;
  C.Engine.CollectStats = true;
  C.Engine.OffThreadCompile = false;
  ScriptServer S(C);
  EXPECT_EQ(S.compileService(), nullptr);
  for (int I = 0; I < 8; ++I)
    S.submit(loopScript(I, 2000));
  S.stop();
  for (const RequestResult &R : S.takeResults())
    EXPECT_TRUE(R.Ok) << R.Error;
  for (const VMStats &W : S.workerStats())
    EXPECT_EQ(W.CompileJobsQueued, 0u) << "inline mode never queues";
}
