//===- test_governance.cpp - Resource governance & interruption ----------------===//
//
// Covers the cooperative-interruption machinery: the interrupt bitmask and
// its safe points, script deadlines (in-thread clock poll and the engine
// timer thread reaching hot traces through the §6.4 guard), heap quotas
// terminating as OutOfMemory with a fully reusable engine, structured
// stack-overflow errors with source positions, fault-injected allocation
// failure, and the serving watchdog: per-request deadlines, hostile-traffic
// chaos across four workers, and the engine-recycle policy.
//
// The Watchdog suite runs under ThreadSanitizer in CI (see ci.yml).
//
//===----------------------------------------------------------------------===//

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "jit/fragment.h"
#include "serve/server.h"
#include "support/events.h"

using namespace tracejit;
using namespace tracejit::serve;

namespace {

/// Effectively infinite: only a governor can end it.
const char *InfiniteLoop = "var t = 0; for (var i = 0; i < 1e18; ++i) t += 1;";

/// Allocates strings without bound -- but inside a function, so the error
/// unwind drops every reference and a later GC can reclaim the garbage.
const char *AllocBomb = "function bomb() {\n"
                        "  var a = [];\n"
                        "  for (var i = 0; i < 100000000; ++i) a[i] = \"x\" + i;\n"
                        "  return a;\n"
                        "}\n"
                        "bomb();";

/// A hot-loop script whose print output is its deterministic checksum.
std::string loopScript(int Variant, int Iters) {
  return "var t = 0; for (var i = 0; i < " + std::to_string(Iters) +
         "; ++i) t += i * " + std::to_string(Variant + 1) + " + " +
         std::to_string(Variant % 5) + "; print(t);";
}

std::string interpreterOutput(const std::string &Src) {
  EngineOptions O;
  O.EnableJit = false;
  Engine E(O);
  std::string Out;
  E.setPrintHook([&Out](const std::string &S) { Out += S; });
  EXPECT_TRUE(E.eval(Src).ok());
  return Out;
}

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

/// Raises the host-interrupt bit the moment the recorder attaches, so the
/// termination lands mid-recording (natives cannot do this: calling one
/// aborts the recording for its own reason).
class InterruptOnRecordStart final : public JitEventListener {
public:
  explicit InterruptOnRecordStart(VMContext &Ctx) : Ctx(Ctx) {}
  void onEvent(const JitEvent &E) override {
    if (E.Kind == JitEventKind::RecordStart && !Fired) {
      Fired = true;
      Ctx.requestInterrupt(InterruptHost);
    }
  }
  bool Fired = false;

private:
  VMContext &Ctx;
};

} // namespace

// --- Options plumbing ---------------------------------------------------------

TEST(Governance, FlagsParse) {
  EngineOptions O;
  EXPECT_TRUE(O.applyFlag("--deadline-ms=250"));
  EXPECT_EQ(O.EvalDeadlineMs, 250u);
  EXPECT_TRUE(O.applyFlag("--max-heap=1048576"));
  EXPECT_EQ(O.MaxHeapBytes, (size_t)1048576);
  EXPECT_TRUE(O.applyFlag("--max-frames=64"));
  EXPECT_EQ(O.MaxFrames, 64u);
  EXPECT_FALSE(O.applyFlag("--max-frames=0")) << "a frameless VM cannot run";
  EXPECT_FALSE(O.applyFlag("--max-frames=lots"));
  EXPECT_FALSE(O.applyFlag("--deadline-forever"));
}

// --- Structured stack overflow ------------------------------------------------

TEST(Governance, ConfigurableFrameLimitOverflowsStructured) {
  EngineOptions O;
  O.EnableJit = false;
  O.MaxFrames = 64;
  Engine E(O);
  auto R = E.eval("function f(n) { return f(n + 1); } f(0);");
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Err.Kind, ErrorKind::StackOverflow);
  EXPECT_NE(R.Err.describe().find("StackOverflowError"), std::string::npos);
  EXPECT_GT(R.Err.Line, 0u) << "overflow must carry the call site";
  EXPECT_GE(E.stats().StackOverflows, 1u);

  // Same depth under a deeper limit completes: the limit is the knob.
  EngineOptions O2;
  O2.EnableJit = false;
  O2.MaxFrames = 128;
  Engine E2(O2);
  auto R2 = E2.eval(
      "function g(n) { if (n < 100) { return g(n + 1); } return n; } g(0);");
  EXPECT_TRUE(R2.ok()) << R2.Err.describe();
  auto R3 = E.eval(
      "function g(n) { if (n < 100) { return g(n + 1); } return n; } g(0);");
  ASSERT_FALSE(R3.ok()) << "depth 100 must not fit in 64 frames";
  EXPECT_EQ(R3.Err.Kind, ErrorKind::StackOverflow);
}

// --- Host interruption --------------------------------------------------------

TEST(Governance, HostInterruptTerminatesFromAnotherThread) {
  EngineOptions O;
  O.EnableJit = true;
  Engine E(O);
  std::atomic<bool> Done{false};
  // Re-raise until eval returns, as a real watchdog would: a single raise
  // landing before eval (which clears stale termination bits) would be
  // dropped and the loop would run forever.
  std::thread Killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    while (!Done.load(std::memory_order_acquire)) {
      E.requestInterrupt();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  auto R = E.eval(InfiniteLoop);
  Done.store(true, std::memory_order_release);
  Killer.join();
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Err.Kind, ErrorKind::Interrupted);
  EXPECT_NE(R.Err.describe().find("InterruptedError"), std::string::npos);
  EXPECT_GE(E.stats().HostInterrupts, 1u);
  // The engine is fully reusable afterwards.
  auto R2 = E.eval("var s = 0; for (var i = 0; i < 100; ++i) s += i; s;");
  ASSERT_TRUE(R2.ok()) << R2.Err.describe();
  EXPECT_EQ(R2.LastValue.numberValue(), 4950.0);
}

TEST(Governance, InterruptMidRecordingIsForgiven) {
  EngineOptions O;
  O.Tier = TierMode::Trace; // the interrupt is raised by a RecordStart event
  O.EnableJit = true;
  O.CollectStats = true;
  Engine E(O);
  InterruptOnRecordStart L(E.context());
  E.addEventListener(&L);
  auto R = E.eval(InfiniteLoop);
  ASSERT_TRUE(L.Fired) << "the loop never got hot enough to record";
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Err.Kind, ErrorKind::Interrupted);
  VMStats S = E.stats();
  EXPECT_GE(S.AbortsByReason[(size_t)AbortReason::Interrupted], 1u)
      << "the in-flight recording must be torn down via the forgiven abort";
  E.removeEventListener(&L);
  // Forgiven means no blacklist pressure: the same loop (bounded now)
  // records, compiles, and completes on reuse.
  auto R2 = E.eval(loopScript(1, 5000));
  EXPECT_TRUE(R2.ok()) << R2.Err.describe();
}

// --- Deadlines ----------------------------------------------------------------

TEST(Governance, DeadlineTerminatesHotLoopOnTrace) {
  EngineOptions O;
  O.EnableJit = true;
  O.CollectStats = true;
  O.EvalDeadlineMs = 100;
  Engine E(O);
  auto T0 = std::chrono::steady_clock::now();
  auto R = E.eval(InfiniteLoop);
  double Wall = msSince(T0);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Err.Kind, ErrorKind::Timeout);
  EXPECT_NE(R.Err.describe().find("TimeoutError"), std::string::npos);
  EXPECT_GE(Wall, 50.0) << "terminated well before the deadline";
  EXPECT_LT(Wall, 5000.0) << "deadline service latency is way off";
  EXPECT_GE(E.stats().Timeouts, 1u);
  // The loop was on-trace when the timer fired, so the termination must
  // have travelled through a §6.4 preempt guard.
  uint64_t PreemptHits = 0;
  for (const FragmentProfile &F : E.fragmentProfiles())
    for (const GuardProfile &G : F.Guards)
      if (G.ExitKindRaw == (uint8_t)ExitKind::Preempt)
        PreemptHits += G.Hits;
  EXPECT_GE(PreemptHits, 1u) << "hot loop should die through its trace guard";
  // Reusable: the next (bounded) eval completes inside the same deadline.
  auto R2 = E.eval("var s = 0; for (var i = 0; i < 1000; ++i) s += 2; s;");
  ASSERT_TRUE(R2.ok()) << R2.Err.describe();
  EXPECT_EQ(R2.LastValue.numberValue(), 2000.0);
}

TEST(Governance, DeadlineAlsoCoversTheInterpreter) {
  EngineOptions O;
  O.EnableJit = false; // only the in-thread clock poll can catch it
  O.EvalDeadlineMs = 60;
  Engine E(O);
  auto R = E.eval(InfiniteLoop);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Err.Kind, ErrorKind::Timeout);
  EXPECT_TRUE(E.eval("42;").ok());
}

// --- Heap quotas --------------------------------------------------------------

TEST(Governance, HeapQuotaTerminatesAsOOMThenEngineReusesBitForBit) {
  EngineOptions O;
  O.EnableJit = true;
  O.MaxHeapBytes = 6u << 20;
  Engine E(O);
  auto R = E.eval(AllocBomb);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Err.Kind, ErrorKind::OutOfMemory);
  EXPECT_NE(R.Err.describe().find("OutOfMemoryError"), std::string::npos);
  EXPECT_GE(E.stats().HeapQuotaHits, 1u);

  // The bomb's garbage died with its frames; the survivor engine must now
  // behave exactly like a fresh engine with the same options.
  std::string Clean;
  for (int V = 0; V < 3; ++V)
    Clean += loopScript(V, 3000);
  EngineOptions FO = O;
  Engine Fresh(FO);
  std::string FreshOut, ReusedOut;
  Fresh.setPrintHook([&FreshOut](const std::string &S) { FreshOut += S; });
  E.setPrintHook([&ReusedOut](const std::string &S) { ReusedOut += S; });
  ASSERT_TRUE(Fresh.eval(Clean).ok());
  auto R2 = E.eval(Clean);
  ASSERT_TRUE(R2.ok()) << R2.Err.describe();
  EXPECT_EQ(ReusedOut, FreshOut) << "survivor diverged from a fresh engine";
}

TEST(Governance, InjectedHeapAllocFailTerminatesAsOOM) {
  EngineOptions O;
  O.EnableJit = false;
  int AllocChecks = 0;
  O.FaultInjector = [&AllocChecks](FaultSite S) {
    if (S != FaultSite::HeapAllocFail)
      return false;
    return ++AllocChecks > 50;
  };
  Engine E(O);
  auto R = E.eval(AllocBomb);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Err.Kind, ErrorKind::OutOfMemory);
  EXPECT_GT(AllocChecks, 50) << "injector never reached the failure point";
}

// --- Serving watchdog ---------------------------------------------------------

TEST(Watchdog, SubmitAfterStopReturnsZero) {
  ServerConfig C;
  ScriptServer S(C);
  EXPECT_NE(S.submit("print(1);"), 0u);
  S.stop();
  EXPECT_EQ(S.submit("print(2);"), 0u) << "a stopped server refuses work";
  EXPECT_EQ(S.takeResults().size(), 1u);
}

TEST(Watchdog, PerRequestDeadlineOverridesConfig) {
  ServerConfig C;
  C.Workers = 1;
  C.Engine.EnableJit = true;
  ScriptServer S(C); // no default deadline
  uint64_t Hostile = S.submit(InfiniteLoop, 80); // per-request override
  uint64_t Good = S.submit(loopScript(0, 1000));
  S.drain();
  std::vector<RequestResult> Results = S.takeResults();
  ASSERT_EQ(Results.size(), 2u);
  for (const RequestResult &R : Results) {
    if (R.Id == Hostile) {
      EXPECT_FALSE(R.Ok);
      EXPECT_TRUE(R.TimedOut);
      EXPECT_EQ(R.ErrKind, ErrorKind::Timeout);
    } else {
      EXPECT_EQ(R.Id, Good);
      EXPECT_TRUE(R.Ok) << R.Error;
    }
  }
  S.stop();
}

TEST(Watchdog, ChaosMixedHostileTraffic) {
  // The acceptance scenario: four workers fed a mix of infinite loops,
  // allocation bombs, and well-behaved scripts. Every well-behaved request
  // completes with the right answer, every hostile one is terminated
  // within 2x its deadline, and the pool is still fully alive afterwards.
  ServerConfig C;
  C.Workers = 4;
  C.QueueDepth = 64;
  C.DeadlineMs = 250; // headroom for sanitizer builds
  C.Engine.EnableJit = true;
  C.Engine.MaxHeapBytes = 4u << 20;
  ScriptServer S(C);

  std::set<uint64_t> InfiniteIds, BombIds;
  std::map<uint64_t, std::string> WantById;
  std::vector<std::string> Good, GoodWant;
  for (int V = 0; V < 4; ++V) {
    Good.push_back(loopScript(V, 2000));
    GoodWant.push_back(interpreterOutput(Good.back()));
  }
  for (int I = 0; I < 24; ++I) {
    if (I % 3 == 0) {
      InfiniteIds.insert(S.submit(InfiniteLoop));
    } else if (I % 3 == 1) {
      BombIds.insert(S.submit(AllocBomb));
    } else {
      int V = I % 4;
      WantById[S.submit(Good[V])] = GoodWant[V];
    }
  }
  S.drain();

  std::vector<RequestResult> Results = S.takeResults();
  ASSERT_EQ(Results.size(), 24u);
  for (const RequestResult &R : Results) {
    if (InfiniteIds.count(R.Id)) {
      EXPECT_FALSE(R.Ok);
      EXPECT_TRUE(R.TimedOut) << R.Error;
      EXPECT_LE(R.EvalMs, 2.0 * C.DeadlineMs)
          << "hostile request outlived 2x its deadline";
    } else if (BombIds.count(R.Id)) {
      // A bomb dies of its quota, or of the deadline if allocation is slow
      // (sanitizer builds) -- either way it dies on time.
      EXPECT_FALSE(R.Ok);
      EXPECT_TRUE(R.ErrKind == ErrorKind::OutOfMemory || R.TimedOut)
          << R.Error;
      EXPECT_LE(R.EvalMs, 2.0 * C.DeadlineMs);
    } else {
      ASSERT_TRUE(WantById.count(R.Id));
      EXPECT_TRUE(R.Ok) << R.Error;
      EXPECT_EQ(R.Output, WantById[R.Id]);
    }
  }

  // Every worker is still alive and serving.
  std::map<uint64_t, std::string> FinalWant;
  for (int I = 0; I < 8; ++I)
    FinalWant[S.submit(Good[I % 4])] = GoodWant[I % 4];
  S.drain();
  std::vector<RequestResult> Final = S.takeResults();
  ASSERT_EQ(Final.size(), 8u);
  std::set<uint32_t> WorkersSeen;
  for (const RequestResult &R : Final) {
    EXPECT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.Output, FinalWant[R.Id]);
    WorkersSeen.insert(R.Worker);
  }
  EXPECT_GE(WorkersSeen.size(), 1u);
  S.stop();
  ASSERT_EQ(S.workerStats().size(), C.Workers);
}

TEST(Watchdog, InjectedFaultsForceRecyclesAndServerSurvives) {
  // Chaos phase two: a fault injector makes roughly every 500th allocation
  // check fail as a heap-quota hit, on top of tiny deadlines. Workers OOM,
  // recycle their engines, and keep serving; disarming the injector
  // returns the pool to full health.
  auto Armed = std::make_shared<std::atomic<bool>>(true);
  auto Checks = std::make_shared<std::atomic<uint64_t>>(0);
  ServerConfig C;
  C.Workers = 4;
  C.QueueDepth = 64;
  C.DeadlineMs = 100;
  C.RecycleAfterFailures = 3;
  C.Engine.EnableJit = true;
  C.Engine.FaultInjector = [Armed, Checks](FaultSite S) {
    if (S != FaultSite::HeapAllocFail || !Armed->load(std::memory_order_relaxed))
      return false;
    return (Checks->fetch_add(1, std::memory_order_relaxed) % 500) == 499;
  };
  ScriptServer S(C);

  for (int I = 0; I < 24; ++I) {
    if (I % 4 == 0)
      S.submit(InfiniteLoop);
    else if (I % 4 == 1)
      S.submit(AllocBomb); // thousands of alloc checks: injection is certain
    else
      S.submit(loopScript(I % 4, 2000));
  }
  S.drain();
  std::vector<RequestResult> Chaos = S.takeResults();
  ASSERT_EQ(Chaos.size(), 24u);
  int Ooms = 0;
  for (const RequestResult &R : Chaos)
    if (R.ErrKind == ErrorKind::OutOfMemory)
      ++Ooms;
  EXPECT_GE(Ooms, 1) << "the injector never fired";
  uint32_t Recycles = 0;
  for (uint32_t N : S.workerRecycles())
    Recycles += N;
  EXPECT_GE(Recycles, 1u) << "an OOM death must recycle the engine";

  // Disarm and run a clean round: every worker serves correctly again.
  Armed->store(false, std::memory_order_relaxed);
  std::string Clean = loopScript(2, 2000);
  std::string Want = interpreterOutput(Clean);
  for (int I = 0; I < 8; ++I)
    S.submit(Clean);
  S.drain();
  std::vector<RequestResult> Final = S.takeResults();
  ASSERT_EQ(Final.size(), 8u);
  for (const RequestResult &R : Final) {
    EXPECT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.Output, Want);
  }
  S.stop();
}
