//===- test_value.cpp - Tagged values, heap, strings, shapes, objects ------===//

#include <gtest/gtest.h>

#include <cmath>

#include "vm/gc.h"
#include "vm/object.h"
#include "vm/shape.h"
#include "vm/string.h"
#include "vm/value.h"

using namespace tracejit;

TEST(Value, IntTagging) {
  for (int32_t I : {0, 1, -1, 42, INT32_MAX, INT32_MIN, 123456789}) {
    Value V = Value::makeInt(I);
    EXPECT_TRUE(V.isInt());
    EXPECT_FALSE(V.isObject());
    EXPECT_FALSE(V.isDoubleCell());
    EXPECT_FALSE(V.isString());
    EXPECT_FALSE(V.isSpecial());
    EXPECT_EQ(V.toInt(), I);
    EXPECT_EQ(V.numberValue(), (double)I);
  }
}

TEST(Value, SpecialTagging) {
  EXPECT_TRUE(Value::makeBoolean(true).isBoolean());
  EXPECT_TRUE(Value::makeBoolean(true).toBoolean());
  EXPECT_FALSE(Value::makeBoolean(false).toBoolean());
  EXPECT_TRUE(Value::null().isNull());
  EXPECT_TRUE(Value::undefined().isUndefined());
  EXPECT_TRUE(Value().isUndefined()) << "default Value is undefined";
}

TEST(Value, DoubleHandles) {
  Heap H;
  Value V = H.boxDouble(3.25);
  EXPECT_TRUE(V.isDoubleCell());
  EXPECT_FALSE(V.isInt());
  EXPECT_EQ(V.numberValue(), 3.25);
}

TEST(Value, BoxNumberPrefersIntRepresentation) {
  Heap H;
  EXPECT_TRUE(H.boxNumber(7.0).isInt());
  EXPECT_TRUE(H.boxNumber(-3.0).isInt());
  EXPECT_TRUE(H.boxNumber(0.5).isDoubleCell());
  EXPECT_TRUE(H.boxNumber(1e300).isDoubleCell());
  // -0 must stay a double: it is observably different from +0 in JS.
  EXPECT_TRUE(H.boxNumber(-0.0).isDoubleCell());
  EXPECT_TRUE(H.boxNumber((double)INT32_MAX).isInt());
  EXPECT_TRUE(H.boxNumber((double)INT32_MAX + 1).isDoubleCell());
}

TEST(Value, Truthiness) {
  Heap H;
  EXPECT_FALSE(Value::makeInt(0).truthy());
  EXPECT_TRUE(Value::makeInt(1).truthy());
  EXPECT_TRUE(Value::makeInt(-1).truthy());
  EXPECT_FALSE(H.boxDouble(0.0).truthy());
  EXPECT_FALSE(H.boxDouble(std::nan("")).truthy());
  EXPECT_TRUE(H.boxDouble(0.25).truthy());
  EXPECT_FALSE(Value::null().truthy());
  EXPECT_FALSE(Value::undefined().truthy());
  EXPECT_FALSE(Value::makeBoolean(false).truthy());
  EXPECT_TRUE(Value::makeBoolean(true).truthy());
  Value Empty = Value::makeString(String::create(H, ""));
  Value NonEmpty = Value::makeString(String::create(H, "x"));
  EXPECT_FALSE(Empty.truthy());
  EXPECT_TRUE(NonEmpty.truthy());
}

TEST(Value, NumberToString) {
  EXPECT_EQ(numberToString(3.0), "3");
  EXPECT_EQ(numberToString(-17.0), "-17");
  EXPECT_EQ(numberToString(0.5), "0.5");
  EXPECT_EQ(numberToString(std::nan("")), "NaN");
  EXPECT_EQ(numberToString(1.0 / 0.0), "Infinity");
  EXPECT_EQ(numberToString(-1.0 / 0.0), "-Infinity");
}

TEST(Strings, InternIsIdentity) {
  Heap H;
  AtomTable Atoms(H);
  String *A = Atoms.intern("foo");
  String *B = Atoms.intern("foo");
  String *C = Atoms.intern("bar");
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_TRUE(A->isAtom());
  EXPECT_EQ(A->view(), "foo");
}

TEST(Shapes, TransitionSharing) {
  ShapeTree T;
  Heap H;
  AtomTable Atoms(H);
  String *X = Atoms.intern("x");
  String *Y = Atoms.intern("y");

  Shape *S0 = T.emptyShape();
  Shape *S1 = T.transition(S0, X);
  Shape *S1b = T.transition(S0, X);
  EXPECT_EQ(S1, S1b) << "same transition yields the same shape";
  Shape *S2 = T.transition(S1, Y);
  EXPECT_NE(S1, S2);
  EXPECT_EQ(S1->lookup(X), 0);
  EXPECT_EQ(S1->lookup(Y), -1);
  EXPECT_EQ(S2->lookup(X), 0);
  EXPECT_EQ(S2->lookup(Y), 1);
  EXPECT_NE(S1->id(), S2->id());
}

TEST(Objects, PropertiesShareShapes) {
  Heap H;
  ShapeTree T;
  AtomTable Atoms(H);
  String *X = Atoms.intern("x");
  String *Y = Atoms.intern("y");

  Object *A = Object::create(H, T);
  Object *B = Object::create(H, T);
  EXPECT_EQ(A->shape(), B->shape());
  A->setProperty(T, X, Value::makeInt(1));
  B->setProperty(T, X, Value::makeInt(2));
  EXPECT_EQ(A->shape(), B->shape()) << "same creation order -> same shape";
  A->setProperty(T, Y, Value::makeInt(3));
  EXPECT_NE(A->shape(), B->shape());
  EXPECT_EQ(A->getProperty(X).toInt(), 1);
  EXPECT_EQ(A->getProperty(Y).toInt(), 3);
  EXPECT_EQ(B->getProperty(X).toInt(), 2);
  EXPECT_TRUE(B->getProperty(Y).isUndefined());
}

TEST(Objects, DenseArrayGrowth) {
  Heap H;
  ShapeTree T;
  Object *A = Object::createArray(H, T, 0);
  EXPECT_EQ(A->arrayLength(), 0u);
  A->setElement(H, 0, Value::makeInt(10));
  A->setElement(H, 99, Value::makeInt(20));
  EXPECT_EQ(A->arrayLength(), 100u);
  EXPECT_EQ(A->getElement(0).toInt(), 10);
  EXPECT_TRUE(A->getElement(50).isUndefined());
  EXPECT_EQ(A->getElement(99).toInt(), 20);
  EXPECT_TRUE(A->getElement(1000).isUndefined());
}

TEST(GC, CollectsUnreachableCells) {
  Heap H;
  std::vector<Value> Roots;
  H.addRootProvider([&](Marker &M) {
    for (Value &V : Roots)
      M.markValue(V);
  });
  ShapeTree T;
  Object *Live = Object::create(H, T);
  Roots.push_back(Value::makeObject(Live));
  for (int I = 0; I < 1000; ++I)
    H.boxDouble((double)I); // garbage
  size_t Before = H.bytesAllocated();
  H.collect();
  EXPECT_LT(H.bytesAllocated(), Before);
  EXPECT_EQ(Live->kind(), ObjectKind::Plain) << "live object survives";
}

TEST(GC, MarksThroughObjectGraphs) {
  Heap H;
  ShapeTree T;
  AtomTable Atoms(H);
  std::vector<Value> Roots;
  H.addRootProvider([&](Marker &M) {
    for (Value &V : Roots)
      M.markValue(V);
  });

  Object *Outer = Object::create(H, T);
  Object *Inner = Object::createArray(H, T, 3);
  Inner->setElement(H, 0, H.boxDouble(2.5));
  Outer->setProperty(T, Atoms.intern("inner"), Value::makeObject(Inner));
  Roots.push_back(Value::makeObject(Outer));

  H.collect();
  Value Got = Outer->getProperty(Atoms.intern("inner"));
  ASSERT_TRUE(Got.isObject());
  EXPECT_EQ(Got.toObject()->getElement(0).numberValue(), 2.5);
}
