//===- test_verify.cpp - LIR verifier negative and positive paths -------------===//
//
// Negative path: hand-construct malformed LIR -- type-mismatched ops,
// use-before-def, dangling exits, bad type-map lengths -- and assert each
// trips the expected VerifyRule, through both entry points (the streaming
// VerifyWriter and the whole-trace verifyTrace()).
//
// Positive path: run representative tier-1 programs through the engine
// with VerifyLir forced on (both backends) and assert the verifier stays
// silent while actually covering traces.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "api/engine.h"
#include "frontend/bytecode.h"
#include "jit/fragment.h"
#include "lir/verify.h"
#include "support/stats.h"
#include "trace/helpers.h"

using namespace tracejit;

namespace {

/// Streaming fixture: a VerifyWriter writing straight into a LirBuffer
/// (no filters in between, so every emission reaches the tail verbatim).
struct StreamFixture {
  Arena A;
  LirBuffer Buf{A};
  VMStats Stats;
  Fragment Frag;
  VerifyWriter W{&Buf, Buf, /*NumGlobals=*/1, &Stats};

  ExitDescriptor *exit(uint32_t Sp) {
    ExitDescriptor *E = Frag.makeExit();
    E->Sp = Sp;
    E->Types.NumGlobals = 1;
    E->Types.Types.assign(1 + Sp, TraceType::Int);
    return E;
  }
};

/// Whole-trace fixture: build a body directly in the buffer (bypassing the
/// streaming verifier), move it into a fragment, and run verifyTrace.
struct TraceFixture {
  Arena A;
  LirBuffer Buf{A};
  VMStats Stats;
  Fragment Frag;

  ExitDescriptor *exit(uint32_t Sp) {
    ExitDescriptor *E = Frag.makeExit();
    E->Sp = Sp;
    E->Types.NumGlobals = 1;
    E->Types.Types.assign(1 + Sp, TraceType::Int);
    return E;
  }

  VerifyRule run() {
    Frag.Body = Buf.instructions();
    VerifyError Err;
    bool Ok = verifyTrace(Frag, /*NumGlobals=*/1, Err, &Stats);
    EXPECT_NE(Ok, static_cast<bool>(Err));
    return Err.Rule;
  }
};

// --- Streaming negatives ---------------------------------------------------------

TEST(VerifyWriter, OperandTypeMismatch) {
  StreamFixture F;
  LIns *I = F.W.insImmI(1);
  LIns *D = F.W.insImmD(2.5);
  F.W.ins2(LOp::AddI, I, D); // i32 + d
  ASSERT_TRUE(F.W.failed());
  EXPECT_EQ(F.W.error().Rule, VerifyRule::OperandType);
  EXPECT_EQ(F.Stats.VerifyFailures, 1u);
  EXPECT_EQ(F.Stats.VerifyFailuresByRule[(size_t)VerifyRule::OperandType], 1u);
}

TEST(VerifyWriter, MissingOperand) {
  StreamFixture F;
  F.W.ins2(LOp::AddI, F.W.insImmI(1), nullptr);
  ASSERT_TRUE(F.W.failed());
  EXPECT_EQ(F.W.error().Rule, VerifyRule::MissingOperand);
}

TEST(VerifyWriter, UseBeforeDef) {
  StreamFixture F;
  // An instruction minted outside the pipeline: never entered the buffer.
  LIns *Stray = F.A.make<LIns>();
  Stray->Op = LOp::ImmI;
  Stray->Ty = LTy::I32;
  Stray->Id = 7;
  F.W.ins2(LOp::AddI, F.W.insImmI(1), Stray);
  ASSERT_TRUE(F.W.failed());
  EXPECT_EQ(F.W.error().Rule, VerifyRule::UseBeforeDef);
}

TEST(VerifyWriter, GuardWithoutExit) {
  StreamFixture F;
  LIns *C = F.W.ins2(LOp::EqI, F.W.insImmI(1), F.W.insImmI(2));
  F.W.insGuard(LOp::GuardT, C, nullptr);
  ASSERT_TRUE(F.W.failed());
  EXPECT_EQ(F.W.error().Rule, VerifyRule::GuardWithoutExit);
}

TEST(VerifyWriter, ExitTypeMapLength) {
  StreamFixture F;
  ExitDescriptor *E = F.exit(3);
  E->Types.Types.resize(1); // covers 1 slot, needs 1 + 3
  LIns *C = F.W.ins2(LOp::EqI, F.W.insImmI(1), F.W.insImmI(2));
  F.W.insGuard(LOp::GuardT, C, E);
  ASSERT_TRUE(F.W.failed());
  EXPECT_EQ(F.W.error().Rule, VerifyRule::ExitTypeMapLength);
}

TEST(VerifyWriter, ExitGlobalsMismatch) {
  StreamFixture F;
  ExitDescriptor *E = F.exit(1);
  E->Types.NumGlobals = 0; // fragment slot domain says 1 global
  F.W.insExit(E);
  ASSERT_TRUE(F.W.failed());
  EXPECT_EQ(F.W.error().Rule, VerifyRule::ExitTypeMapLength);
}

TEST(VerifyWriter, TarAddressingUnaligned) {
  StreamFixture F;
  LIns *Tar = F.W.ins0(LOp::ParamTar);
  F.W.insLoad(LOp::LdI, Tar, 12); // not 8-aligned
  ASSERT_TRUE(F.W.failed());
  EXPECT_EQ(F.W.error().Rule, VerifyRule::TarAddressing);
}

TEST(VerifyWriter, TarAddressingNegative) {
  StreamFixture F;
  LIns *Tar = F.W.ins0(LOp::ParamTar);
  F.W.insStore(LOp::StI, F.W.insImmI(5), Tar, -8);
  ASSERT_TRUE(F.W.failed());
  EXPECT_EQ(F.W.error().Rule, VerifyRule::TarAddressing);
}

TEST(VerifyWriter, ShiftCountNotImmediate) {
  StreamFixture F;
  LIns *Tar = F.W.ins0(LOp::ParamTar);
  LIns *Q = F.W.insLoad(LOp::LdQ, Tar, 0);
  LIns *Count = F.W.insLoad(LOp::LdI, Tar, 8); // i32 but not ImmI
  F.W.ins2(LOp::ShrQ, Q, Count);
  ASSERT_TRUE(F.W.failed());
  EXPECT_EQ(F.W.error().Rule, VerifyRule::ShiftCountNotImm);
}

TEST(VerifyTrace, CallSignatureArity) {
  TraceFixture F;
  CallInfo CI;
  CI.Name = "fake";
  CI.Ret = LTy::D;
  CI.NArgs = 1;
  CI.Args[0] = LTy::D;
  LIns *Args[1] = {F.Buf.insImmD(1.0)};
  F.Buf.insCall(&CI, Args, 1);
  F.Buf.insLoop();
  CI.NArgs = 2; // signature changed under the emitted call
  CI.Args[1] = LTy::D;
  EXPECT_EQ(F.run(), VerifyRule::CallSignature);
}

TEST(VerifyWriter, CallSignatureArgType) {
  StreamFixture F;
  CallInfo CI;
  CI.Name = "fake";
  CI.Ret = LTy::D;
  CI.NArgs = 1;
  CI.Args[0] = LTy::D;
  LIns *Args[1] = {F.W.insImmI(1)}; // i32 where the signature wants d
  F.W.insCall(&CI, Args, 1);
  ASSERT_TRUE(F.W.failed());
  EXPECT_EQ(F.W.error().Rule, VerifyRule::CallSignature);
}

TEST(VerifyWriter, TreeCallTargetNotRoot) {
  StreamFixture F;
  Fragment Inner;
  Fragment Root;
  Inner.Root = &Root; // a branch fragment, not a root
  ExitDescriptor *Mismatch = F.exit(0);
  F.W.insTreeCall(&Inner, Mismatch, Mismatch);
  ASSERT_TRUE(F.W.failed());
  EXPECT_EQ(F.W.error().Rule, VerifyRule::TransferTarget);
}

TEST(VerifyWriter, FirstErrorLatches) {
  StreamFixture F;
  F.W.ins2(LOp::AddI, F.W.insImmI(1), F.W.insImmD(2.0)); // OperandType
  LIns *C = F.W.ins2(LOp::EqI, F.W.insImmI(1), F.W.insImmI(2));
  F.W.insGuard(LOp::GuardT, C, nullptr); // would be GuardWithoutExit
  ASSERT_TRUE(F.W.failed());
  EXPECT_EQ(F.W.error().Rule, VerifyRule::OperandType);
  EXPECT_EQ(F.Stats.VerifyFailures, 1u);
}

TEST(VerifyWriter, CleanStreamReportsNothing) {
  StreamFixture F;
  LIns *Tar = F.W.ins0(LOp::ParamTar);
  LIns *X = F.W.insLoad(LOp::LdI, Tar, 0);
  LIns *Y = F.W.ins2(LOp::AddI, X, F.W.insImmI(1));
  F.W.insStore(LOp::StI, Y, Tar, 0);
  LIns *C = F.W.ins2(LOp::LtI, Y, F.W.insImmI(100));
  F.W.insGuard(LOp::GuardT, C, F.exit(0));
  F.W.ins0(LOp::Loop);
  EXPECT_FALSE(F.W.failed());
  EXPECT_EQ(F.Stats.VerifyFailures, 0u);
  EXPECT_GT(F.Stats.LirInsVerified, 0u);
}

// --- Whole-trace negatives -------------------------------------------------------

TEST(VerifyTrace, EmptyBodyIsMissingTerminator) {
  TraceFixture F;
  EXPECT_EQ(F.run(), VerifyRule::Terminator);
}

TEST(VerifyTrace, BodyMustEndInTerminator) {
  TraceFixture F;
  F.Buf.insImmI(1);
  EXPECT_EQ(F.run(), VerifyRule::Terminator);
}

TEST(VerifyTrace, TerminatorMustBeLast) {
  TraceFixture F;
  F.Buf.insLoop();
  F.Buf.insImmI(1);
  EXPECT_EQ(F.run(), VerifyRule::Terminator);
}

TEST(VerifyTrace, DanglingOperandAfterDce) {
  TraceFixture F;
  LIns *X = F.Buf.insImmI(1);
  LIns *Y = F.Buf.insImmI(2);
  F.Buf.ins2(LOp::AddI, X, Y);
  F.Buf.insLoop();
  F.Frag.Body = F.Buf.instructions();
  // Simulate a buggy DCE pass that removed a value a survivor still uses.
  F.Frag.Body.erase(F.Frag.Body.begin() + 1);
  VerifyError Err;
  EXPECT_FALSE(verifyTrace(F.Frag, 1, Err, &F.Stats));
  EXPECT_EQ(Err.Rule, VerifyRule::DanglingOperand);
}

TEST(VerifyTrace, UseBeforeDefAfterReorder) {
  TraceFixture F;
  LIns *X = F.Buf.insImmI(1);
  LIns *Y = F.Buf.insImmI(2);
  F.Buf.ins2(LOp::AddI, X, Y);
  F.Buf.insLoop();
  F.Frag.Body = F.Buf.instructions();
  // Swap the AddI above one of its operands.
  std::swap(F.Frag.Body[1], F.Frag.Body[2]);
  VerifyError Err;
  EXPECT_FALSE(verifyTrace(F.Frag, 1, Err, &F.Stats));
  EXPECT_EQ(Err.Rule, VerifyRule::UseBeforeDef);
}

TEST(VerifyTrace, ResultTypeTampered) {
  TraceFixture F;
  LIns *X = F.Buf.insImmI(1);
  LIns *Y = F.Buf.ins2(LOp::AddI, X, X);
  F.Buf.insLoop();
  Y->Ty = LTy::D; // AddI yields i32
  EXPECT_EQ(F.run(), VerifyRule::ResultType);
}

TEST(VerifyTrace, TarSlotOutsideDomain) {
  TraceFixture F;
  LIns *Tar = F.Buf.ins0(LOp::ParamTar);
  F.Buf.insLoad(LOp::LdI, Tar, 5 * 8);
  F.Buf.insLoop();
  F.Frag.RequiredTarSlots = 4; // slot 5 is out of range
  EXPECT_EQ(F.run(), VerifyRule::TarAddressing);
}

TEST(VerifyTrace, ExitFrameBaseAboveSp) {
  TraceFixture F;
  FunctionScript Script;
  Script.Code.assign(16, 0);
  ExitDescriptor *E = F.exit(2);
  E->Frames.push_back({&Script, 5, 0}); // base 5 above sp 2
  F.Buf.insExit(E);
  EXPECT_EQ(F.run(), VerifyRule::ExitFrameBounds);
}

TEST(VerifyTrace, ExitResumePcOutsideScript) {
  TraceFixture F;
  FunctionScript Script;
  Script.Code.assign(16, 0);
  ExitDescriptor *E = F.exit(2);
  E->Pc = 99; // script has 16 bytes of code
  E->Frames.push_back({&Script, 0, 0});
  F.Buf.insExit(E);
  EXPECT_EQ(F.run(), VerifyRule::ExitFrameBounds);
}

TEST(VerifyTrace, ExitFrameBasesNotMonotonic) {
  TraceFixture F;
  FunctionScript Script;
  Script.Code.assign(16, 0);
  ExitDescriptor *E = F.exit(8);
  E->Frames.push_back({&Script, 6, 0});
  E->Frames.push_back({&Script, 2, 3}); // inner frame below outer frame
  F.Buf.insExit(E);
  EXPECT_EQ(F.run(), VerifyRule::ExitFrameBounds);
}

TEST(VerifyTrace, TreeCallTypeMapDisagreement) {
  TraceFixture F;
  LoopRecord Loop;
  Fragment Inner;
  Inner.Root = &Inner;
  Inner.Loop = &Loop;
  Inner.EntryTypes.NumGlobals = 1;
  Inner.EntryTypes.Types = {TraceType::Int, TraceType::Double};

  // The expected exit belongs to the same loop's tree.
  ExitDescriptor *Expected = Inner.makeExit();

  // Call-site mismatch snapshot disagrees with the inner entry map.
  ExitDescriptor *Mismatch = F.exit(1); // {Int, Int}
  F.Buf.insTreeCall(&Inner, Expected, Mismatch);
  F.Buf.insLoop();
  EXPECT_EQ(F.run(), VerifyRule::TreeCallTypeMaps);
}

TEST(VerifyTrace, TreeCallExitFromForeignLoop) {
  TraceFixture F;
  LoopRecord LoopA, LoopB;
  Fragment Inner;
  Inner.Root = &Inner;
  Inner.Loop = &LoopA;
  Inner.EntryTypes.NumGlobals = 1;
  Inner.EntryTypes.Types = {TraceType::Int, TraceType::Int};

  Fragment Other;
  Other.Root = &Other;
  Other.Loop = &LoopB;
  ExitDescriptor *Foreign = Other.makeExit();

  ExitDescriptor *Mismatch = F.exit(1);
  F.Buf.insTreeCall(&Inner, Foreign, Mismatch);
  F.Buf.insLoop();
  EXPECT_EQ(F.run(), VerifyRule::TransferTarget);
}

TEST(VerifyTrace, JmpFragToNonRoot) {
  TraceFixture F;
  Fragment Root;
  Fragment Branch;
  Branch.Root = &Root;
  F.Buf.insJmpFrag(&Branch);
  EXPECT_EQ(F.run(), VerifyRule::TransferTarget);
}

TEST(VerifyTrace, CleanTracePasses) {
  TraceFixture F;
  LIns *Tar = F.Buf.ins0(LOp::ParamTar);
  LIns *X = F.Buf.insLoad(LOp::LdI, Tar, 8);
  LIns *Y = F.Buf.ins2(LOp::AddI, X, F.Buf.insImmI(1));
  F.Buf.insStore(LOp::StI, Y, Tar, 8);
  LIns *C = F.Buf.ins2(LOp::LtI, Y, F.Buf.insImmI(100));
  F.Buf.insGuard(LOp::GuardT, C, F.exit(1));
  F.Buf.insLoop();
  F.Frag.RequiredTarSlots = 2;
  EXPECT_EQ(F.run(), VerifyRule::None);
  EXPECT_EQ(F.Stats.TracesVerified, 1u);
  EXPECT_GT(F.Stats.LirInsVerified, 0u);
}

// --- Positive path: the verifier stays silent on real traces ---------------------

const char *kPrograms[] = {
    // Int loop with an overflowing accumulator and branches.
    "var s = 0;\n"
    "for (var i = 0; i < 200; i = i + 1) {\n"
    "  if (i % 3 == 0) s = s + i; else s = s - 1;\n"
    "}\n"
    "print(s);\n",
    // Type-unstable loop: int promoted to double mid-loop.
    "var x = 0;\n"
    "for (var i = 0; i < 120; i = i + 1) {\n"
    "  if (i > 60) x = x + 0.5; else x = x + 1;\n"
    "}\n"
    "print(x);\n",
    // Nested loops (tree calls) over an array.
    "var arr = [1, 2, 3, 4, 5, 6, 7, 8];\n"
    "var t = 0;\n"
    "for (var i = 0; i < 40; i = i + 1) {\n"
    "  for (var j = 0; j < 8; j = j + 1) {\n"
    "    t = t + arr[j];\n"
    "  }\n"
    "}\n"
    "print(t);\n",
    // Function calls inlined into the trace.
    "function sq(n) { return n * n; }\n"
    "var acc = 0;\n"
    "for (var i = 0; i < 100; i = i + 1) { acc = acc + sq(i); }\n"
    "print(acc);\n",
};

void runVerified(Backend B) {
  for (const char *Src : kPrograms) {
    EngineOptions O;
    O.EnableJit = true;
    O.JitBackend = B;
    O.CollectStats = true;
    O.VerifyLir = true;
    Engine E(O);
    std::string Out;
    E.setPrintHook([&](const std::string &S) { Out += S; });
    auto R = E.eval(Src);
    ASSERT_TRUE(R.ok()) << R.Err.describe() << "\nprogram:\n" << Src;
    const VMStats &S = E.stats();
    EXPECT_GT(S.TracesVerified, 0u) << Src;
    EXPECT_GT(S.LirInsVerified, 0u) << Src;
    EXPECT_EQ(S.VerifyFailures, 0u) << Src;
    EXPECT_EQ(S.AbortsByReason[(size_t)AbortReason::VerifyFailed], 0u) << Src;
  }
}

TEST(VerifyPositive, NativeBackendTracesStayClean) { runVerified(Backend::Native); }

TEST(VerifyPositive, ExecutorBackendTracesStayClean) {
  runVerified(Backend::Executor);
}

} // namespace
