//===- test_cache_lifecycle.cpp - Code-cache lifecycle governance ----------===//
//
// Covers the bounded executable pool (reserve/commit/rewind, floor/reset,
// W^X flips), whole-cache flush under a tiny CodeCacheBytes with results
// identical to the pure interpreter, all four deterministic fault-injection
// sites (map, alloc, protect, compile), flush deferral while a trace is on
// the native stack, and the MaxCacheFlushes kill switch.
//
//===----------------------------------------------------------------------===//

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "jit/execmem.h"

using namespace tracejit;

namespace {

struct CollectingListener final : JitEventListener {
  std::vector<JitEvent> Events;
  void onEvent(const JitEvent &E) override { Events.push_back(E); }
  uint64_t count(JitEventKind K) const {
    uint64_t N = 0;
    for (const JitEvent &E : Events)
      N += E.Kind == K;
    return N;
  }
};

/// N distinct hot loops, each compiling to its own fragment; `total` (the
/// final expression) deterministically folds every loop's result.
std::string churnWorkload(int Loops, int Iters) {
  std::string S = "var total = 0;\n";
  for (int L = 0; L < Loops; ++L) {
    std::string I = "i" + std::to_string(L);
    std::string A = "a" + std::to_string(L);
    S += "var " + A + " = 0;\n";
    S += "for (var " + I + " = 0; " + I + " < " + std::to_string(Iters) +
         "; ++" + I + ") { " + A + " += " + I + " * " +
         std::to_string(L + 1) + " + " + std::to_string(L % 3) + "; }\n";
    S += "total += " + A + ";\n";
  }
  S += "total;";
  return S;
}

/// Ground truth for a workload: what the pure interpreter computes.
double interpretedResult(const std::string &Src) {
  EngineOptions O;
  O.Tier = TierMode::Trace; // asserts trace-pipeline internals
  O.EnableJit = false;
  Engine E(O);
  auto R = E.eval(Src);
  EXPECT_TRUE(R.ok()) << R.Err.describe();
  return R.LastValue.numberValue();
}

} // namespace

// --- ExecMemPool: reservation protocol, floor, W^X ---------------------------

TEST(ExecPool, ReserveCommitKeepsOnlyActualBytes) {
  ExecMemPool Pool(1 << 16);
  ASSERT_TRUE(Pool.valid());
  size_t Before = Pool.used();
  uint8_t *P = Pool.reserve(4096);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(Pool.used(), Before + 4096);
  Pool.commit(100); // the assembler only emitted 100 bytes
  EXPECT_EQ(Pool.used(), Before + 100);
  // The next reservation starts 16-byte aligned after the committed bytes.
  uint8_t *Q = Pool.reserve(64);
  ASSERT_NE(Q, nullptr);
  EXPECT_EQ((uintptr_t)Q % 16, 0u);
  EXPECT_GE(Q, P + 100);
  Pool.rewind();
  // Rewind returns to the reservation's (aligned) start; only the 15-byte
  // alignment pad in front of it stays consumed.
  EXPECT_EQ(Pool.used(), (Before + 100 + 15) & ~(size_t)15)
      << "rewind must return the whole reservation";
}

TEST(ExecPool, ReserveFailsWhenExhaustedAndPoolStaysUsable) {
  ExecMemPool Pool(4096); // one page
  ASSERT_TRUE(Pool.valid());
  EXPECT_EQ(Pool.reserve(Pool.capacity() + 1), nullptr);
  uint8_t *P = Pool.allocate(128); // failed reserve left no reservation open
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(Pool.used(), 128u);
}

TEST(ExecPool, ResetRewindsToFloor) {
  ExecMemPool Pool(1 << 16);
  ASSERT_TRUE(Pool.valid());
  ASSERT_NE(Pool.allocate(200), nullptr); // "runtime stubs"
  Pool.setFloor();
  ASSERT_NE(Pool.allocate(1000), nullptr);
  ASSERT_NE(Pool.allocate(500), nullptr);
  size_t Reclaimed = Pool.reset();
  EXPECT_GE(Reclaimed, 1500u); // plus alignment padding
  EXPECT_EQ(Pool.used(), Pool.floorBytes());
  EXPECT_EQ(Pool.used(), 200u);
  EXPECT_FALSE(Pool.executable()) << "reset leaves the pool writable";
}

TEST(ExecPool, WxFlipsAreIdempotent) {
  ExecMemPool Pool(4096);
  ASSERT_TRUE(Pool.valid());
  EXPECT_FALSE(Pool.executable());
  EXPECT_TRUE(Pool.makeWritable()); // already RW: no-op success
  EXPECT_TRUE(Pool.makeExecutable());
  EXPECT_TRUE(Pool.executable());
  EXPECT_TRUE(Pool.makeExecutable()); // already RX: no-op success
  EXPECT_TRUE(Pool.makeWritable());
  EXPECT_FALSE(Pool.executable());
}

TEST(ExecPool, InjectedMapFailureLeavesPoolInvalid) {
  FaultHook Hook = [](FaultSite S) { return S == FaultSite::ExecMapFail; };
  ExecMemPool Pool(1 << 16, &Hook);
  EXPECT_FALSE(Pool.valid());
  EXPECT_EQ(Pool.reserve(64), nullptr);
  EXPECT_FALSE(Pool.makeExecutable());
}

TEST(ExecPool, InjectedAllocAndProtectFailures) {
  bool FailAlloc = false, FailProtect = false;
  FaultHook Hook = [&](FaultSite S) {
    if (S == FaultSite::ExecAllocFail)
      return FailAlloc;
    if (S == FaultSite::ProtectFail)
      return FailProtect;
    return false;
  };
  ExecMemPool Pool(1 << 16, &Hook);
  ASSERT_TRUE(Pool.valid());

  FailAlloc = true;
  EXPECT_EQ(Pool.reserve(64), nullptr);
  FailAlloc = false;
  ASSERT_NE(Pool.allocate(64), nullptr);

  FailProtect = true;
  EXPECT_FALSE(Pool.makeExecutable());
  EXPECT_FALSE(Pool.executable()) << "failed flip must not change state";
  FailProtect = false;
  EXPECT_TRUE(Pool.makeExecutable());
}

// --- Whole-cache flush under memory pressure ---------------------------------

TEST(CacheLifecycle, TinyCacheFlushesAndMatchesInterpreter) {
  std::string Src = churnWorkload(10, 60);
  double Want = interpretedResult(Src);

  EngineOptions O;

  O.Tier = TierMode::Trace; // asserts trace-pipeline internals
  O.EnableJit = true;
  O.CollectStats = true;
  O.CodeCacheBytes = 4096;   // one page: a handful of fragments at most
  O.MaxCacheFlushes = 1000;  // keep the kill switch out of this test
  O.StaticAnalysis = false;  // elided guards shrink traces enough to fit
  Engine E(O);
  CollectingListener L;
  E.addEventListener(&L);

  auto R = E.eval(Src);
  ASSERT_TRUE(R.ok()) << R.Err.describe();
  EXPECT_EQ(R.LastValue.numberValue(), Want)
      << "flush-churned JIT run diverged from the interpreter";

  VMStats S = E.stats();
  EXPECT_GE(S.CacheFlushes, 1u) << "ten loops cannot fit in one page";
  EXPECT_GT(S.CacheBytesReclaimed, 0u);
  EXPECT_GT(S.FragmentsRetired, 0u);
  EXPECT_EQ(E.cacheGeneration(), S.CacheFlushes);
  EXPECT_GE(L.count(JitEventKind::CacheFlush), 1u);
  EXPECT_GE(L.count(JitEventKind::FragmentRetired), 1u);
  EXPECT_NE(S.report().find("code cache:"), std::string::npos);

  // Surviving fragments were all compiled in the current generation --
  // nothing from a retired generation is still reachable.
  for (const FragmentProfile &P : E.fragmentProfiles())
    EXPECT_EQ(P.Generation, E.cacheGeneration());

  // The engine is not wedged: the same workload still evaluates correctly.
  auto R2 = E.eval(Src);
  ASSERT_TRUE(R2.ok());
  EXPECT_EQ(R2.LastValue.numberValue(), Want);
}

TEST(CacheLifecycle, CommittedBytesMatchFragmentSizes) {
  EngineOptions O;
  O.Tier = TierMode::Trace; // asserts trace-pipeline internals
  O.EnableJit = true;
  Engine E(O);
  size_t StubBytes = E.codeCacheUsed(); // floor: the runtime stubs
  EXPECT_GT(E.codeCacheCapacity(), 0u);

  ASSERT_TRUE(E.eval(churnWorkload(3, 60)).ok());
  std::vector<FragmentProfile> Profiles = E.fragmentProfiles();
  ASSERT_FALSE(Profiles.empty());
  size_t SumNative = 0, Compiled = 0;
  for (const FragmentProfile &P : Profiles) {
    SumNative += P.NativeBytes;
    Compiled += P.NativeBytes > 0;
  }
  ASSERT_GT(Compiled, 0u);
  size_t Delta = E.codeCacheUsed() - StubBytes;
  // commit() keeps exactly NativeSize per fragment; reserve() adds at most
  // 15 bytes of alignment padding in front of each.
  EXPECT_GE(Delta, SumNative);
  EXPECT_LE(Delta, SumNative + 16 * Compiled);
}

// --- Host-requested flush and deferral ---------------------------------------

TEST(CacheLifecycle, HostFlushRetiresAndRecompiles) {
  EngineOptions O;
  O.Tier = TierMode::Trace; // asserts trace-pipeline internals
  O.EnableJit = true;
  O.CollectStats = true;
  Engine E(O);
  std::string Src = churnWorkload(2, 60);
  double Want = interpretedResult(Src);

  ASSERT_TRUE(E.eval(Src).ok());
  EXPECT_FALSE(E.fragmentProfiles().empty());
  size_t UsedBefore = E.codeCacheUsed();

  E.flushCodeCache(); // safe point: flush runs immediately
  EXPECT_EQ(E.cacheGeneration(), 1u);
  EXPECT_TRUE(E.fragmentProfiles().empty());
  EXPECT_LT(E.codeCacheUsed(), UsedBefore) << "fragment code was reclaimed";

  auto R = E.eval(Src); // re-enters monitoring cold and recompiles
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.LastValue.numberValue(), Want);
  EXPECT_FALSE(E.fragmentProfiles().empty());
}

TEST(CacheLifecycle, FlushDefersWhileTraceOnNativeStack) {
  EngineOptions O;
  O.Tier = TierMode::Trace; // asserts trace-pipeline internals
  O.EnableJit = true;
  Engine E(O);
  ASSERT_TRUE(E.eval(churnWorkload(2, 60)).ok());
  ASSERT_FALSE(E.fragmentProfiles().empty());

  // Simulate the host requesting a flush from a native callback while a
  // trace is running: the flush must be deferred, not executed under the
  // running code, and not dropped.
  E.context().OnTrace = true;
  E.flushCodeCache();
  EXPECT_EQ(E.cacheGeneration(), 0u) << "flush must not run on-trace";
  EXPECT_FALSE(E.fragmentProfiles().empty());
  E.context().OnTrace = false;

  // The next loop edge is the safe point that runs the deferred flush.
  ASSERT_TRUE(E.eval("var z = 0; for (var q = 0; q < 50; ++q) z += q;").ok());
  EXPECT_EQ(E.cacheGeneration(), 1u) << "deferred flush never ran";
}

// --- Fault injection: the four sites -----------------------------------------

TEST(FaultInjection, ExecMapFailFallsBackToExecutor) {
  std::string Src = churnWorkload(2, 60);
  double Want = interpretedResult(Src);

  EngineOptions O;

  O.Tier = TierMode::Trace; // asserts trace-pipeline internals
  O.EnableJit = true;
  O.CollectStats = true;
  O.CaptureTraceEvents = true; // built-in listener sees construction events
  O.FaultInjector = [](FaultSite S) { return S == FaultSite::ExecMapFail; };
  Engine E(O);

  auto R = E.eval(Src);
  ASSERT_TRUE(R.ok()) << R.Err.describe();
  EXPECT_EQ(R.LastValue.numberValue(), Want);

  VMStats S = E.stats();
  EXPECT_EQ(S.BackendFallbacks, 1u);
  EXPECT_GT(S.TracesCompleted, 0u) << "the executor backend still traces";
  for (const FragmentProfile &P : E.fragmentProfiles())
    EXPECT_EQ(P.NativeBytes, 0u) << "no native code without a pool";
  EXPECT_EQ(E.codeCacheCapacity(), 0u);

  std::string Path = testing::TempDir() + "mapfail_events.json";
  ASSERT_TRUE(E.exportTraceEvents(Path));
  std::string J;
  {
    FILE *F = fopen(Path.c_str(), "r");
    ASSERT_NE(F, nullptr);
    char Buf[4096];
    size_t N;
    while ((N = fread(Buf, 1, sizeof(Buf), F)) > 0)
      J.append(Buf, N);
    fclose(F);
  }
  remove(Path.c_str());
  EXPECT_NE(J.find("\"BackendFallback\""), std::string::npos)
      << "construction-time fallback event must reach built-in listeners";
}

TEST(FaultInjection, AllocFailFlushesThenTripsKillSwitch) {
  std::string Src = churnWorkload(3, 120);
  double Want = interpretedResult(Src);

  // Let the backend's one stub reservation through, then refuse every
  // fragment reservation: each compile ends in PoolExhausted, each
  // exhaustion forces a flush, and MaxCacheFlushes=2 trips the kill switch.
  auto Allocs = std::make_shared<int>(0);
  EngineOptions O;
  O.Tier = TierMode::Trace; // asserts trace-pipeline internals
  O.EnableJit = true;
  O.CollectStats = true;
  O.MaxCacheFlushes = 2;
  O.FaultInjector = [Allocs](FaultSite S) {
    if (S != FaultSite::ExecAllocFail)
      return false;
    return ++*Allocs > 1;
  };
  Engine E(O);
  CollectingListener L;
  E.addEventListener(&L);

  auto R = E.eval(Src);
  ASSERT_TRUE(R.ok()) << R.Err.describe();
  EXPECT_EQ(R.LastValue.numberValue(), Want);

  VMStats S = E.stats();
  EXPECT_GT(S.AbortsByReason[(size_t)AbortReason::CompilePoolExhausted], 0u);
  EXPECT_EQ(S.CacheFlushes, 2u);
  EXPECT_EQ(S.JitDisables, 1u);
  EXPECT_TRUE(E.jitDisabled());
  EXPECT_EQ(L.count(JitEventKind::JitDisabled), 1u);
  EXPECT_NE(S.report().find("compile-pool-exhausted"), std::string::npos);

  // Kill-switched engine: still correct, and permanently interpreter-only.
  auto R2 = E.eval(Src);
  ASSERT_TRUE(R2.ok());
  EXPECT_EQ(R2.LastValue.numberValue(), Want);
  EXPECT_EQ(E.stats().CacheFlushes, 2u) << "no further flushes once disabled";
  EXPECT_TRUE(E.jitDisabled());
}

TEST(FaultInjection, ProtectFailFallsBackToExecutorPerRun) {
  std::string Src = churnWorkload(2, 60);
  double Want = interpretedResult(Src);

  EngineOptions O;

  O.Tier = TierMode::Trace; // asserts trace-pipeline internals
  O.EnableJit = true;
  O.CollectStats = true;
  // The pool starts RW, so compiles succeed; only the RX flip before
  // entering a trace fails. Every native entry must degrade to the LIR
  // executor and still produce the right answer.
  O.FaultInjector = [](FaultSite S) { return S == FaultSite::ProtectFail; };
  Engine E(O);

  auto R = E.eval(Src);
  ASSERT_TRUE(R.ok()) << R.Err.describe();
  EXPECT_EQ(R.LastValue.numberValue(), Want);

  VMStats S = E.stats();
  EXPECT_GT(S.ProtectFaults, 0u);
  EXPECT_GT(S.TraceEnters, 0u) << "traces still run, just not natively";
  EXPECT_NE(S.report().find("protect-faults"), std::string::npos);
}

TEST(FaultInjection, CompileFailAbortsIntoBlacklistBackoff) {
  std::string Src = churnWorkload(2, 200);
  double Want = interpretedResult(Src);

  EngineOptions O;

  O.Tier = TierMode::Trace; // asserts trace-pipeline internals
  O.EnableJit = true;
  O.CollectStats = true;
  O.FaultInjector = [](FaultSite S) { return S == FaultSite::CompileFail; };
  Engine E(O);
  CollectingListener L;
  E.addEventListener(&L);

  auto R = E.eval(Src);
  ASSERT_TRUE(R.ok()) << R.Err.describe();
  EXPECT_EQ(R.LastValue.numberValue(), Want);

  VMStats S = E.stats();
  EXPECT_GT(S.AbortsByReason[(size_t)AbortReason::CompileFault], 0u);
  EXPECT_EQ(S.TreesCompiled, 0u);
  // Repeated compile failures feed the normal recording-failure governance:
  // MaxRecordingFailures=2 blacklists the headers instead of re-recording
  // forever.
  EXPECT_GT(S.LoopsBlacklisted, 0u);
  EXPECT_GE(L.count(JitEventKind::Blacklisted), 1u);
  EXPECT_EQ(S.CacheFlushes, 0u) << "a compile fault is not memory pressure";
}
