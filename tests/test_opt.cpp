//===- test_opt.cpp - Loop optimizer: guard elim, indvars, hoisting ----------===//
//
// Unit tests drive optimizeTrace (lir/opt.h) over hand-built LIR bodies and
// check the per-pass contracts: a dominated guard disappears, a clobbered
// location keeps its guard, overflow checks fold only under a dominating
// range guard, invariant code moves into the prologue and nothing else
// does. End-to-end tests then run whole programs at every -O level on both
// backends and require identical output -- the optimizer may only move
// time, never results.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "api/engine.h"
#include "jit/fragment.h"
#include "lir/lir.h"
#include "lir/opt.h"
#include "support/stats.h"

using namespace tracejit;

namespace {

/// A fragment owning its arena plus a raw LirBuffer (no forward filters:
/// these tests control the exact instruction stream).
struct OptTest : ::testing::Test {
  Fragment F;
  std::unique_ptr<LirBuffer> Buf;

  OptTest() {
    F.LirArena = std::make_unique<Arena>();
    Buf = std::make_unique<LirBuffer>(*F.LirArena);
  }
  LirWriter &W() { return *Buf; }

  ExitDescriptor *exit(ExitKind K = ExitKind::Branch) {
    ExitDescriptor *E = F.makeExit();
    E->Kind = K;
    return E;
  }
  /// Move the buffer's stream into the fragment body.
  void seal() { F.Body = Buf->instructions(); }

  static OptPipeline only(OptPass P) { return OptPipeline().add(P); }

  bool inPrologue(const LIns *I) const {
    for (uint32_t P = 0; P < F.PrologueEnd; ++P)
      if (F.Body[P] == I)
        return true;
    return false;
  }
  bool inBody(const LIns *I) const {
    for (const LIns *X : F.Body)
      if (X == I)
        return true;
    return false;
  }
};

} // namespace

// --- Dominating-guard elimination --------------------------------------------

TEST_F(OptTest, DominatedGuardIsDropped) {
  LIns *Tar = W().ins0(LOp::ParamTar);
  LIns *L = W().insLoad(LOp::LdI, Tar, 0);
  LIns *Five = W().insImmI(5);
  LIns *C = W().ins2(LOp::LtI, L, Five);
  LIns *G1 = W().insGuard(LOp::GuardT, C, exit());
  LIns *G2 = W().insGuard(LOp::GuardT, C, exit());
  seal();

  OptResult R = optimizeTrace(F, only(OptPass::GuardElim), 0, nullptr);
  EXPECT_EQ(R.GuardsEliminated, 1u);
  EXPECT_TRUE(inBody(G1));
  EXPECT_FALSE(inBody(G2)) << "re-check of a guarded condition can't fire";
}

TEST_F(OptTest, OppositePolarityGuardIsKept) {
  LIns *Tar = W().ins0(LOp::ParamTar);
  LIns *L = W().insLoad(LOp::LdI, Tar, 0);
  LIns *C = W().ins2(LOp::EqI, L, W().insImmI(0));
  W().insGuard(LOp::GuardT, C, exit());
  LIns *G2 = W().insGuard(LOp::GuardF, C, exit());
  seal();

  OptResult R = optimizeTrace(F, only(OptPass::GuardElim), 0, nullptr);
  EXPECT_EQ(R.GuardsEliminated, 0u);
  EXPECT_TRUE(inBody(G2)) << "GuardF(c) is not subsumed by GuardT(c)";
}

TEST_F(OptTest, GuardKeptAcrossHeapClobber) {
  // load; guard; store to the same location; reload; same-shaped guard.
  // The store starts a new equivalence class: the reload and its guard
  // must both survive.
  LIns *Tar = W().ins0(LOp::ParamTar);
  LIns *Base = W().insLoad(LOp::LdQ, Tar, 8);
  LIns *Five = W().insImmI(5);
  LIns *L1 = W().insLoad(LOp::LdI, Base, 0);
  LIns *C1 = W().ins2(LOp::LtI, L1, Five);
  W().insGuard(LOp::GuardT, C1, exit());
  W().insStore(LOp::StI, Five, Base, 0);
  LIns *L2 = W().insLoad(LOp::LdI, Base, 0);
  LIns *C2 = W().ins2(LOp::LtI, L2, Five);
  LIns *G2 = W().insGuard(LOp::GuardT, C2, exit());
  seal();

  OptResult R = optimizeTrace(F, only(OptPass::GuardElim), 0, nullptr);
  EXPECT_EQ(R.GuardsEliminated, 0u);
  EXPECT_TRUE(inBody(L2)) << "clobbered load must not merge";
  EXPECT_TRUE(inBody(G2));
}

TEST_F(OptTest, RedundantLoadAndGuardMergeWithoutClobber) {
  // Same stream as above minus the store: the reload value-numbers into
  // the first load, the condition into the first condition, and the second
  // guard is dominated.
  LIns *Tar = W().ins0(LOp::ParamTar);
  LIns *Base = W().insLoad(LOp::LdQ, Tar, 8);
  LIns *Five = W().insImmI(5);
  LIns *L1 = W().insLoad(LOp::LdI, Base, 0);
  LIns *C1 = W().ins2(LOp::LtI, L1, Five);
  LIns *G1 = W().insGuard(LOp::GuardT, C1, exit());
  LIns *L2 = W().insLoad(LOp::LdI, Base, 0);
  LIns *C2 = W().ins2(LOp::LtI, L2, Five);
  LIns *G2 = W().insGuard(LOp::GuardT, C2, exit());
  seal();

  OptResult R = optimizeTrace(F, only(OptPass::GuardElim), 0, nullptr);
  EXPECT_EQ(R.GuardsEliminated, 1u);
  EXPECT_FALSE(inBody(L2));
  EXPECT_FALSE(inBody(C2));
  EXPECT_FALSE(inBody(G2));
  EXPECT_TRUE(inBody(G1));
  (void)L1;
}

TEST_F(OptTest, TreeCallInvalidatesTarSlots) {
  // TAR loads must not merge across a TreeCall: the inner tree runs over
  // the same activation record and may write any slot.
  Fragment Inner;
  LIns *Tar = W().ins0(LOp::ParamTar);
  LIns *L1 = W().insLoad(LOp::LdI, Tar, 0);
  W().insTreeCall(&Inner, exit(), exit(ExitKind::Nested));
  LIns *L2 = W().insLoad(LOp::LdI, Tar, 0);
  seal();

  optimizeTrace(F, only(OptPass::GuardElim), 0, nullptr);
  EXPECT_TRUE(inBody(L1));
  EXPECT_TRUE(inBody(L2)) << "inner tree may have written slot 0";
}

// --- Induction-variable recognition ------------------------------------------

TEST_F(OptTest, OverflowCheckFoldsUnderRangeGuard) {
  // GuardT(i < n) dominates AddOvI(i, 1): i <= INT32_MAX - 1, the +1
  // cannot overflow, the check folds to AddI.
  LIns *Tar = W().ins0(LOp::ParamTar);
  LIns *I = W().insLoad(LOp::LdI, Tar, 0);
  LIns *N = W().insLoad(LOp::LdI, Tar, 8);
  LIns *C = W().ins2(LOp::LtI, I, N);
  W().insGuard(LOp::GuardT, C, exit());
  LIns *Inc = W().insOvf(LOp::AddOvI, I, W().insImmI(1), exit(ExitKind::Overflow));
  seal();

  OptResult R = optimizeTrace(F, only(OptPass::IndVar), 0, nullptr);
  EXPECT_EQ(R.OvfChecksFolded, 1u);
  EXPECT_EQ(Inc->Op, LOp::AddI);
  EXPECT_EQ(Inc->Exit, nullptr);
}

TEST_F(OptTest, OverflowCheckKeptWithoutGuard) {
  LIns *Tar = W().ins0(LOp::ParamTar);
  LIns *I = W().insLoad(LOp::LdI, Tar, 0);
  LIns *Inc = W().insOvf(LOp::AddOvI, I, W().insImmI(1), exit(ExitKind::Overflow));
  seal();

  OptResult R = optimizeTrace(F, only(OptPass::IndVar), 0, nullptr);
  EXPECT_EQ(R.OvfChecksFolded, 0u);
  EXPECT_EQ(Inc->Op, LOp::AddOvI) << "nothing bounds i; +1 may overflow";
}

TEST_F(OptTest, OverflowCheckFoldsUnderUnsignedBoundsCheck) {
  // i <u cap (cap a loaded capacity) proves 0 <= i < 2^31, so both the
  // increment and the decrement fold.
  LIns *Tar = W().ins0(LOp::ParamTar);
  LIns *Base = W().insLoad(LOp::LdQ, Tar, 16);
  LIns *I = W().insLoad(LOp::LdI, Tar, 0);
  LIns *Cap = W().insLoad(LOp::LdI, Base, 0);
  LIns *C = W().ins2(LOp::LtUI, I, Cap);
  W().insGuard(LOp::GuardT, C, exit());
  LIns *Inc = W().insOvf(LOp::AddOvI, I, W().insImmI(1), exit(ExitKind::Overflow));
  LIns *Dec = W().insOvf(LOp::SubOvI, I, W().insImmI(1), exit(ExitKind::Overflow));
  seal();

  OptResult R = optimizeTrace(F, only(OptPass::IndVar), 0, nullptr);
  EXPECT_EQ(R.OvfChecksFolded, 2u);
  EXPECT_EQ(Inc->Op, LOp::AddI);
  EXPECT_EQ(Dec->Op, LOp::SubI);
}

TEST_F(OptTest, FailedGuardDirectionGivesNoFact) {
  // A passed GuardF(i < n) establishes i >= n -- which bounds nothing for
  // an increment. The check must survive.
  LIns *Tar = W().ins0(LOp::ParamTar);
  LIns *I = W().insLoad(LOp::LdI, Tar, 0);
  LIns *N = W().insLoad(LOp::LdI, Tar, 8);
  LIns *C = W().ins2(LOp::LtI, I, N);
  W().insGuard(LOp::GuardF, C, exit());
  LIns *Inc = W().insOvf(LOp::AddOvI, I, W().insImmI(1), exit(ExitKind::Overflow));
  seal();

  OptResult R = optimizeTrace(F, only(OptPass::IndVar), 0, nullptr);
  EXPECT_EQ(R.OvfChecksFolded, 0u);
  EXPECT_EQ(Inc->Op, LOp::AddOvI);
}

TEST_F(OptTest, IndexChainStrengthReduced) {
  // addr(i) = data + 8*i exists; addr(i+1) with both i and i+1 checked
  // against the same capacity becomes addr(i) + 8.
  LIns *Tar = W().ins0(LOp::ParamTar);
  LIns *Obj = W().insLoad(LOp::LdQ, Tar, 16);
  LIns *I = W().insLoad(LOp::LdI, Tar, 0);
  LIns *Cap = W().insLoad(LOp::LdI, Obj, 0);
  LIns *Data = W().insLoad(LOp::LdQ, Obj, 8);
  W().insGuard(LOp::GuardT, W().ins2(LOp::LtUI, I, Cap), exit());
  LIns *Three = W().insImmI(3);
  LIns *A0 =
      W().ins2(LOp::AddQ, Data,
               W().ins2(LOp::ShlQ, W().ins1(LOp::UI2Q, I), Three));
  LIns *I1 = W().insOvf(LOp::AddOvI, I, W().insImmI(1), exit(ExitKind::Overflow));
  W().insGuard(LOp::GuardT, W().ins2(LOp::LtUI, I1, Cap), exit());
  LIns *A1 =
      W().ins2(LOp::AddQ, Data,
               W().ins2(LOp::ShlQ, W().ins1(LOp::UI2Q, I1), Three));
  seal();

  OptResult R = optimizeTrace(F, only(OptPass::IndVar), 0, nullptr);
  EXPECT_EQ(R.OvfChecksFolded, 1u) << "i <u cap folds the +1";
  EXPECT_EQ(R.IdxStrengthReduced, 1u);
  EXPECT_EQ(A1->Op, LOp::AddQ);
  EXPECT_EQ(A1->A, A0) << "second address chains off the first";
  ASSERT_NE(A1->B, nullptr);
  EXPECT_EQ(A1->B->Op, LOp::ImmQ);
  EXPECT_EQ(A1->B->Imm.ImmQ64, 8);
}

TEST_F(OptTest, IndexChainNotReducedWithoutSharedBound) {
  // i+1 is bounds-checked against a *different* capacity: the wrap-around
  // proof fails and the full address chain must remain.
  LIns *Tar = W().ins0(LOp::ParamTar);
  LIns *Obj = W().insLoad(LOp::LdQ, Tar, 16);
  LIns *Obj2 = W().insLoad(LOp::LdQ, Tar, 24);
  LIns *I = W().insLoad(LOp::LdI, Tar, 0);
  LIns *Cap = W().insLoad(LOp::LdI, Obj, 0);
  LIns *Cap2 = W().insLoad(LOp::LdI, Obj2, 0);
  LIns *Data = W().insLoad(LOp::LdQ, Obj, 8);
  W().insGuard(LOp::GuardT, W().ins2(LOp::LtUI, I, Cap), exit());
  LIns *Three = W().insImmI(3);
  LIns *A0 =
      W().ins2(LOp::AddQ, Data,
               W().ins2(LOp::ShlQ, W().ins1(LOp::UI2Q, I), Three));
  LIns *I1 = W().ins2(LOp::AddI, I, W().insImmI(1));
  W().insGuard(LOp::GuardT, W().ins2(LOp::LtUI, I1, Cap2), exit());
  LIns *A1 =
      W().ins2(LOp::AddQ, Data,
               W().ins2(LOp::ShlQ, W().ins1(LOp::UI2Q, I1), Three));
  seal();

  OptResult R = optimizeTrace(F, only(OptPass::IndVar), 0, nullptr);
  EXPECT_EQ(R.IdxStrengthReduced, 0u);
  EXPECT_NE(A1->A, A0);
}

// --- Loop-invariant hoisting -------------------------------------------------

namespace {

/// Root-fragment fixture with an entry exit and a Loop terminator -- the
/// preconditions runHoist requires.
struct HoistTest : OptTest {
  ExitDescriptor *Entry = nullptr;
  void makeLoopFragment() {
    F.Kind = FragmentKind::Root;
    Entry = exit(ExitKind::Deopt);
    F.EntryExit = Entry;
  }
};

} // namespace

TEST_F(HoistTest, InvariantCodeAndGuardMoveToPrologue) {
  makeLoopFragment();
  LIns *Tar = W().ins0(LOp::ParamTar);
  LIns *Inv = W().insLoad(LOp::LdQ, Tar, 16); // slot 2: never stored
  LIns *C = W().ins2(LOp::EqQ, Inv, Inv);
  LIns *G = W().insGuard(LOp::GuardT, C, exit());
  LIns *I = W().insLoad(LOp::LdI, Tar, 0); // slot 0: stored below
  LIns *One = W().insImmI(1);
  LIns *I2 = W().ins2(LOp::AddI, I, One);
  W().insStore(LOp::StI, I2, Tar, 0);
  W().insLoop();
  seal();

  OptResult R = optimizeTrace(F, only(OptPass::Hoist), 0, nullptr);
  EXPECT_EQ(R.InsHoisted, 3u) << "Inv, C, G (ParamTar doesn't count)";
  EXPECT_EQ(R.GuardsHoisted, 1u);
  ASSERT_GT(F.PrologueEnd, 0u);
  EXPECT_TRUE(inPrologue(Inv));
  EXPECT_TRUE(inPrologue(C));
  EXPECT_TRUE(inPrologue(G));
  EXPECT_FALSE(inPrologue(I)) << "its slot is stored in the loop";
  EXPECT_FALSE(inPrologue(I2));
  EXPECT_EQ(G->Exit, Entry) << "hoisted guard deopts through the entry exit";
  EXPECT_EQ(F.Body.back()->Op, LOp::Loop);
}

TEST_F(HoistTest, StoredSlotBlocksHoisting) {
  makeLoopFragment();
  LIns *Tar = W().ins0(LOp::ParamTar);
  LIns *V = W().insLoad(LOp::LdQ, Tar, 16);
  W().insStore(LOp::StQ, V, Tar, 16); // the loop writes the same slot
  W().insLoop();
  seal();

  optimizeTrace(F, only(OptPass::Hoist), 0, nullptr);
  EXPECT_EQ(F.PrologueEnd, 0u) << "nothing invariant: no prologue";
}

TEST_F(HoistTest, LoadDoesNotHoistPastUnhoistedShapeGuard) {
  // A pointer-compare guard that stays in the loop may be what makes a
  // later load safe (shape/type checks establish memory layout); loads
  // after it must not move, even if their location is never stored.
  makeLoopFragment();
  LIns *Tar = W().ins0(LOp::ParamTar);
  LIns *Inv = W().insLoad(LOp::LdQ, Tar, 16);
  LIns *P = W().insLoad(LOp::LdQ, Tar, 0); // varies (stored below)
  LIns *C = W().ins2(LOp::EqQ, P, Inv);    // shape-style Q compare
  W().insGuard(LOp::GuardT, C, exit());
  LIns *Late = W().insLoad(LOp::LdQ, Tar, 24); // never stored, but too late
  W().insStore(LOp::StQ, Inv, Tar, 0);
  W().insLoop();
  seal();

  optimizeTrace(F, only(OptPass::Hoist), 0, nullptr);
  EXPECT_TRUE(inPrologue(Inv));
  EXPECT_FALSE(inPrologue(Late)) << "must not float above the shape guard";
}

TEST_F(HoistTest, LoopConditionGuardDoesNotBlockHoisting) {
  // The i32 loop-condition guard leads every recorder trace; it checks
  // arithmetic, not memory layout, so invariant loads behind it still
  // hoist. (This is what makes hoisting fire on real traces at all.)
  makeLoopFragment();
  LIns *Tar = W().ins0(LOp::ParamTar);
  LIns *I = W().insLoad(LOp::LdI, Tar, 0); // induction variable
  LIns *C = W().ins2(LOp::LtI, I, W().insImmI(100));
  W().insGuard(LOp::GuardT, C, exit());
  LIns *Inv = W().insLoad(LOp::LdQ, Tar, 16); // invariant, after the guard
  LIns *One = W().insImmI(1);
  W().insStore(LOp::StI, W().ins2(LOp::AddI, I, One), Tar, 0);
  W().insLoop();
  seal();

  OptResult R = optimizeTrace(F, only(OptPass::Hoist), 0, nullptr);
  EXPECT_TRUE(inPrologue(Inv));
  EXPECT_FALSE(inPrologue(I));
  EXPECT_FALSE(inPrologue(C));
  EXPECT_EQ(R.GuardsHoisted, 0u) << "the loop guard itself stays";
}

TEST_F(HoistTest, BranchFragmentNeverGetsPrologue) {
  makeLoopFragment();
  F.Kind = FragmentKind::Branch;
  LIns *Tar = W().ins0(LOp::ParamTar);
  LIns *Inv = W().insLoad(LOp::LdQ, Tar, 16);
  W().ins2(LOp::EqQ, Inv, Inv);
  W().insLoop();
  seal();

  optimizeTrace(F, only(OptPass::Hoist), 0, nullptr);
  EXPECT_EQ(F.PrologueEnd, 0u);
}

TEST_F(HoistTest, PrologueSurvivesFinalDceAndPrints) {
  // Full -O2 pipeline over a body where DCE can delete part of the
  // prologue: PrologueEnd must track the surviving prefix, and the printer
  // must bracket the regions.
  makeLoopFragment();
  LIns *Tar = W().ins0(LOp::ParamTar);
  LIns *Inv = W().insLoad(LOp::LdQ, Tar, 16);
  LIns *C = W().ins2(LOp::EqQ, Inv, Inv);
  LIns *G = W().insGuard(LOp::GuardT, C, exit());
  W().ins2(LOp::EqQ, Inv, Inv); // dead duplicate: GVN merges / DCE removes
  LIns *I = W().insLoad(LOp::LdI, Tar, 0);
  LIns *One = W().insImmI(1);
  W().insStore(LOp::StI, W().ins2(LOp::AddI, I, One), Tar, 0);
  W().insLoop();
  seal();

  optimizeTrace(F, OptPipeline::level(2), 0, nullptr);
  ASSERT_GT(F.PrologueEnd, 0u);
  ASSERT_LT(F.PrologueEnd, F.Body.size());
  for (uint32_t P = 0; P < F.PrologueEnd; ++P) {
    EXPECT_FALSE(F.Body[P]->isStore());
    if (F.Body[P]->isGuard())
      EXPECT_EQ(F.Body[P]->Exit, Entry);
  }
  EXPECT_EQ(F.Body.back()->Op, LOp::Loop);
  EXPECT_TRUE(inPrologue(G));

  std::string Dump = formatBody(F.Body, F.PrologueEnd);
  EXPECT_NE(Dump.find("-- prologue --"), std::string::npos);
  EXPECT_NE(Dump.find("-- loop --"), std::string::npos);
  EXPECT_LT(Dump.find("-- prologue --"), Dump.find("-- loop --"));
  // No-prologue bodies print without markers.
  EXPECT_EQ(formatBody(F.Body, 0).find("-- prologue --"), std::string::npos);
}

// --- Pipeline flag surface ---------------------------------------------------

TEST(OptPipelineFlags, LevelsSelectDocumentedPassSets) {
  EngineOptions O;
  EXPECT_TRUE(O.applyFlag("-O0"));
  EXPECT_EQ(O.Passes, OptPipeline::level(0));
  EXPECT_TRUE(O.Passes.has(OptPass::Cse));
  EXPECT_FALSE(O.Passes.has(OptPass::GuardElim));
  EXPECT_FALSE(O.Passes.has(OptPass::Hoist));

  EXPECT_TRUE(O.applyFlag("-O1"));
  EXPECT_TRUE(O.Passes.has(OptPass::GuardElim));
  EXPECT_FALSE(O.Passes.has(OptPass::Hoist));

  EXPECT_TRUE(O.applyFlag("-O2"));
  EXPECT_TRUE(O.Passes.has(OptPass::IndVar));
  EXPECT_TRUE(O.Passes.has(OptPass::Hoist));
  EXPECT_EQ(O.Passes, EngineOptions().Passes) << "-O2 is the default";
}

TEST(OptPipelineFlags, JitOptAddsAndRemovesPasses) {
  EngineOptions O;
  EXPECT_TRUE(O.applyFlag("--jit-opt=-hoist"));
  EXPECT_FALSE(O.Passes.has(OptPass::Hoist));
  EXPECT_TRUE(O.Passes.has(OptPass::IndVar)) << "others untouched";

  EXPECT_TRUE(O.applyFlag("--jit-opt=+hoist,-cse,-dce"));
  EXPECT_TRUE(O.Passes.has(OptPass::Hoist));
  EXPECT_FALSE(O.Passes.has(OptPass::Cse));
  EXPECT_FALSE(O.Passes.has(OptPass::Dce));

  EXPECT_TRUE(O.applyFlag("--jit-opt=none"));
  EXPECT_TRUE(O.Passes.empty());
  EXPECT_EQ(O.Passes.describe(), "none");

  EXPECT_TRUE(O.applyFlag("--jit-opt=all"));
  EXPECT_EQ(O.Passes, OptPipeline::all());

  EXPECT_TRUE(O.applyFlag("--jit-opt=none,guardelim"));
  EXPECT_TRUE(O.Passes.has(OptPass::GuardElim));
  EXPECT_FALSE(O.Passes.has(OptPass::Cse));
  EXPECT_EQ(O.Passes.describe(), "guardelim");
}

TEST(OptPipelineFlags, MalformedJitOptRejected) {
  EngineOptions O;
  OptPipeline Before = O.Passes;
  EXPECT_FALSE(O.applyFlag("--jit-opt=nosuchpass"));
  EXPECT_FALSE(O.applyFlag("--jit-opt="));
  EXPECT_FALSE(O.applyFlag("--jit-opt=cse,,dce"));
  EXPECT_FALSE(O.applyFlag("-O3"));
  EXPECT_EQ(O.Passes, Before) << "failed parses must not change the set";
}

// --- End-to-end: optimization levels preserve semantics ----------------------

namespace {

struct RunInfo {
  std::string Out;
  VMStats Stats;
  bool Ok = false;
};

RunInfo runWith(const std::string &Src, EngineOptions O) {
  O.CollectStats = true;
  Engine E(O);
  RunInfo R;
  E.setPrintHook([&](const std::string &S) { R.Out += S; });
  auto Res = E.eval(Src);
  R.Ok = Res.ok();
  R.Stats = E.stats();
  return R;
}

/// Loop-heavy corpus: each exercises a different optimizer surface
/// (redundant guards, array indexing, invariant property loads, nesting,
/// type instability, overflow checks near the int32 edge).
const char *Corpus[] = {
    // Sieve: nested loops, array stores, bounds checks.
    "var N = 300; var p = Array(N);\n"
    "for (var a = 0; a < N; ++a) p[a] = true;\n"
    "for (var i = 2; i < N; ++i) {\n"
    "  if (!p[i]) continue;\n"
    "  for (var k = i + i; k < N; k += i) p[k] = false;\n"
    "}\n"
    "var c = 0;\n"
    "for (var q = 2; q < N; ++q) if (p[q]) c = c + 1;\n"
    "print(c);",
    // Invariant object property in a hot loop.
    "var o = {scale: 3, bias: 7};\n"
    "var s = 0;\n"
    "for (var i = 0; i < 2000; ++i) s += o.scale * i + o.bias;\n"
    "print(s);",
    // Array walk with neighbor access (strength-reduction shape).
    "var n = 256; var a = Array(n);\n"
    "for (var i = 0; i < n; ++i) a[i] = i * i % 97;\n"
    "var t = 0;\n"
    "for (var j = 0; j + 1 < n; ++j) t += a[j] + a[j + 1];\n"
    "print(t);",
    // Type-unstable accumulator (int -> double).\n
    "var s = 0;\n"
    "for (var i = 0; i < 1000; ++i) { s += i; if (i == 800) s += 0.5; }\n"
    "print(s);",
    // Branch-heavy body.
    "var x = 0, y = 0;\n"
    "for (var i = 0; i < 4000; ++i) {\n"
    "  if (i % 3 == 0) x += i; else if (i % 5 == 0) y += i; else x -= 1;\n"
    "}\n"
    "print(x, y);",
    // Overflow checks that must still fire.
    "var big = 2147483000; var s = 0;\n"
    "for (var i = 0; i < 500; ++i) s = (big + i) % 1000003;\n"
    "print(s);",
    // Function call in the loop (inlined by the recorder).
    "function f(v) { return v * 2 + 1; }\n"
    "var s = 0;\n"
    "for (var i = 0; i < 1500; ++i) s += f(i);\n"
    "print(s);",
};

} // namespace

TEST(OptEndToEnd, AllLevelsAndBackendsAgree) {
  for (const char *Src : Corpus) {
    EngineOptions Interp;
    Interp.EnableJit = false;
    RunInfo Ref = runWith(Src, Interp);
    ASSERT_TRUE(Ref.Ok);
    for (Backend B : {Backend::Native, Backend::Executor}) {
      for (const char *Lvl : {"-O0", "-O1", "-O2"}) {
        EngineOptions O;
        O.JitBackend = B;
        ASSERT_TRUE(O.applyFlag(Lvl));
        RunInfo R = runWith(Src, O);
        ASSERT_TRUE(R.Ok);
        EXPECT_EQ(R.Out, Ref.Out)
            << Lvl << " backend=" << (B == Backend::Native ? "native" : "exec")
            << "\n"
            << Src;
      }
    }
  }
}

TEST(OptEndToEnd, LoopPassesFireOnLoopCode) {
  // The counters are the measurable claim of this optimizer: on a loop
  // with an invariant object and redundant checks, -O2 must eliminate
  // guards, hoist code, and build at least one prologue.
  const char *Src = "var o = {scale: 3, bias: 7};\n"
                    "var s = 0;\n"
                    "for (var i = 0; i < 5000; ++i) s += o.scale * i + o.bias;\n"
                    "print(s);";
  EngineOptions O;
  O.Tier = TierMode::Trace; // the loop optimizer runs on trace bodies only
  RunInfo R = runWith(Src, O);
  ASSERT_TRUE(R.Ok);
  EXPECT_GT(R.Stats.GuardsEliminated, 0u);
  EXPECT_GT(R.Stats.InsHoisted, 0u);
  EXPECT_GT(R.Stats.GuardsHoisted, 0u);
  EXPECT_GE(R.Stats.LoopsWithPrologue, 1u);

  EngineOptions O0;
  ASSERT_TRUE(O0.applyFlag("-O0"));
  RunInfo R0 = runWith(Src, O0);
  ASSERT_TRUE(R0.Ok);
  EXPECT_EQ(R0.Out, R.Out);
  EXPECT_EQ(R0.Stats.GuardsEliminated, 0u);
  EXPECT_EQ(R0.Stats.LoopsWithPrologue, 0u);
}

TEST(OptEndToEnd, EntryDeoptRecoversWhenInvariantBreaks) {
  // The prologue speculates on o's shape. After the tree is compiled, the
  // shape changes for good: every entry attempt deopts through EntryExit,
  // the monitor backs off / retires the fragment, and the program still
  // computes the right answer.
  const char *Src = "var o = {x: 2};\n"
                    "var s = 0;\n"
                    "function burn() {\n"
                    "  for (var i = 0; i < 400; ++i) s += o.x;\n"
                    "}\n"
                    "burn();\n"
                    "o.extra = 1;\n"
                    "burn();\n"
                    "print(s);";
  EngineOptions O;
  RunInfo R = runWith(Src, O);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Out, "1600\n");
  if (R.Stats.GuardsHoisted > 0)
    EXPECT_GE(R.Stats.EntryDeopts, 1u)
        << "a hoisted shape guard must fail at entry after the shape change";
}
