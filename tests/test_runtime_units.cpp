//===- test_runtime_units.cpp - Helpers, type maps, oracle, stats ------------===//

#include <gtest/gtest.h>

#include <cmath>

#include "api/engine.h"
#include "trace/helpers.h"
#include "trace/oracle.h"
#include "trace/typemap.h"

using namespace tracejit;

TEST(TypeMaps, ObservationMatchesTags) {
  EngineOptions O;
  VMContext Ctx(O);
  EXPECT_EQ(traceTypeOf(Value::makeInt(5)), TraceType::Int);
  EXPECT_EQ(traceTypeOf(Ctx.TheHeap.boxDouble(1.5)), TraceType::Double);
  EXPECT_EQ(traceTypeOf(Value::makeBoolean(true)), TraceType::Boolean);
  EXPECT_EQ(traceTypeOf(Value::null()), TraceType::Null);
  EXPECT_EQ(traceTypeOf(Value::undefined()), TraceType::Undefined);
  Object *Obj = Object::create(Ctx.TheHeap, Ctx.Shapes);
  EXPECT_EQ(traceTypeOf(Value::makeObject(Obj)), TraceType::Object);
  String *S = String::create(Ctx.TheHeap, "x");
  EXPECT_EQ(traceTypeOf(Value::makeString(S)), TraceType::String);
}

TEST(TypeMaps, EqualityIsExact) {
  TypeMap A, B;
  A.NumGlobals = B.NumGlobals = 2;
  A.Types = {TraceType::Int, TraceType::Double, TraceType::Object};
  B.Types = A.Types;
  EXPECT_EQ(A, B);
  B.Types[1] = TraceType::Int;
  EXPECT_NE(A, B);
  B.Types = A.Types;
  B.NumGlobals = 1;
  EXPECT_NE(A, B) << "same types, different globals split";
  EXPECT_EQ(tarOffsetOfSlot(7), 56);
}

TEST(Oracle, KeysDoNotCollide) {
  Oracle O;
  uint64_t G5 = Oracle::globalKey(5);
  uint64_t L5 = Oracle::localKey(/*Script=*/0, /*Local=*/5);
  uint64_t L5b = Oracle::localKey(/*Script=*/1, /*Local=*/5);
  EXPECT_NE(G5, L5);
  EXPECT_NE(L5, L5b);
  O.markDemote(G5);
  EXPECT_TRUE(O.isDemoted(G5));
  EXPECT_FALSE(O.isDemoted(L5));
  O.clear();
  EXPECT_FALSE(O.isDemoted(G5));
}

TEST(Helpers, ToInt32MatchesEcma) {
  EXPECT_EQ(tj_ToInt32D(0.0), 0);
  EXPECT_EQ(tj_ToInt32D(3.99), 3);
  EXPECT_EQ(tj_ToInt32D(-3.99), -3);
  EXPECT_EQ(tj_ToInt32D(4294967296.0), 0);
  EXPECT_EQ(tj_ToInt32D(4294967297.0), 1);
  EXPECT_EQ(tj_ToInt32D(2147483648.0), INT32_MIN);
  EXPECT_EQ(tj_ToInt32D(std::nan("")), 0);
  EXPECT_EQ(tj_ToInt32D(1.0 / 0.0), 0);
  EXPECT_EQ(tj_ToInt32D(-1.0), -1);
}

TEST(Helpers, ShimsRoundTripAllSignatureShapes) {
  // The executor reaches helpers through signature-generic shims; check a
  // representative of each shape used by the trace runtime.
  EngineOptions EO;
  VMContext Ctx(EO);
  const HelperCalls &H = helperCalls();

  // I32(D)
  {
    uint64_t W;
    double D = 5.75;
    memcpy(&W, &D, 8);
    uint64_t Args[1] = {W};
    EXPECT_EQ((int32_t)H.ToInt32D.Shim(H.ToInt32D.Addr, Args), 5);
  }
  // D(D, D)
  {
    uint64_t A, B;
    double X = 7.5, Y = 2.0;
    memcpy(&A, &X, 8);
    memcpy(&B, &Y, 8);
    uint64_t Args[2] = {A, B};
    uint64_t R = H.ModD.Shim(H.ModD.Addr, Args);
    double Out;
    memcpy(&Out, &R, 8);
    EXPECT_EQ(Out, 1.5);
  }
  // Q(Q, D) returning a 64-bit boxed word: BoxDouble.
  {
    uint64_t DW;
    double D = 0.5;
    memcpy(&DW, &D, 8);
    uint64_t Args[2] = {(uint64_t)(uintptr_t)&Ctx, DW};
    uint64_t Bits = H.BoxDouble.Shim(H.BoxDouble.Addr, Args);
    Value V = Value::fromBits(Bits);
    ASSERT_TRUE(V.isDoubleCell());
    EXPECT_EQ(V.numberValue(), 0.5);
  }
  // Q(Q, Q, Q): string concat.
  {
    String *A = Ctx.Atoms.intern("foo");
    String *B = Ctx.Atoms.intern("bar");
    uint64_t Args[3] = {(uint64_t)(uintptr_t)&Ctx, (uint64_t)(uintptr_t)A,
                        (uint64_t)(uintptr_t)B};
    uint64_t R = H.ConcatSS.Shim(H.ConcatSS.Addr, Args);
    EXPECT_EQ(((String *)(uintptr_t)R)->view(), "foobar");
  }
}

TEST(Helpers, ArraySetGrowsAndBoxes) {
  EngineOptions EO;
  VMContext Ctx(EO);
  Object *A = Object::createArray(Ctx.TheHeap, Ctx.Shapes, 2);
  EXPECT_EQ(tj_ArraySetV(&Ctx, A, 10, Value::makeInt(42).bits()), 1);
  EXPECT_EQ(A->arrayLength(), 11u);
  EXPECT_EQ(A->getElement(10).toInt(), 42);
  EXPECT_EQ(tj_ArraySetD(&Ctx, A, 0, 2.5), 1);
  EXPECT_TRUE(A->getElement(0).isDoubleCell());
  EXPECT_EQ(A->getElement(0).numberValue(), 2.5);
  EXPECT_EQ(tj_ArraySetV(&Ctx, A, -1, 0), 0) << "negative index rejected";
}

TEST(Helpers, TruthyDMatchesJs) {
  EXPECT_EQ(tj_TruthyD(0.0), 0);
  EXPECT_EQ(tj_TruthyD(-0.0), 0);
  EXPECT_EQ(tj_TruthyD(std::nan("")), 0);
  EXPECT_EQ(tj_TruthyD(0.001), 1);
  EXPECT_EQ(tj_TruthyD(-5.0), 1);
}

TEST(Stats, ActivityScopesNestLikeTheStateMachine) {
  VMStats S;
  {
    ActivityScope Outer(S, Activity::Interpret, true);
    {
      ActivityScope Inner(S, Activity::Compile, true);
    }
  }
  S.stopTiming();
  // Only sanity: both activities saw some time, nothing negative.
  EXPECT_GE(S.ActivitySeconds[(size_t)Activity::Interpret], 0.0);
  EXPECT_GE(S.ActivitySeconds[(size_t)Activity::Compile], 0.0);
  std::string Report = S.report();
  EXPECT_NE(Report.find("interpret"), std::string::npos);
  EXPECT_NE(Report.find("compile"), std::string::npos);
}

TEST(Stats, ReportContainsFigureCounters) {
  EngineOptions O;
  O.EnableJit = true;
  O.CollectStats = true;
  O.Tier = TierMode::Trace; // asserts the Figure 11 trace counters
  Engine E(O);
  E.setPrintHook([](const std::string &) {});
  ASSERT_TRUE(E.eval("var s = 0; for (var i = 0; i < 500; ++i) s += i;").ok());
  VMStats S = E.stats();
  EXPECT_GT(S.BytecodesNative, 0u);
  EXPECT_GT(S.TraceEnters, 0u);
  EXPECT_GT(S.LirEmitted, 0u);
  EXPECT_GE(S.LirEmitted, S.LirAfterBackwardFilters)
      << "backward filters never add instructions";
}
