//===- test_tier.cpp - Compilation-tier policy and method-tier pipeline --------===//
//
// The TierPolicy state machine (trace/tier.h) and the hybrid method-
// compilation tier end to end: promotion of trace-hostile loops, the
// method-only pipeline, bit-for-bit preservation of the trace-only
// pipeline, cache-flush survival, interrupt delivery inside method code,
// and the stitched re-entry behavior of optimized trace roots.
//
// Every suite here is named `Tier` so the TSan CI leg can sweep it with
// --gtest_filter='Tier.*'.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "api/engine.h"
#include "trace/tier.h"

using namespace tracejit;

namespace {

/// Records every event it sees (same idiom as test_observability.cpp).
struct CollectingListener final : JitEventListener {
  std::vector<JitEvent> Events;
  void onEvent(const JitEvent &E) override { Events.push_back(E); }

  int64_t firstIndexOf(JitEventKind K) const {
    for (size_t I = 0; I < Events.size(); ++I)
      if (Events[I].Kind == K)
        return (int64_t)I;
    return -1;
  }
  uint64_t count(JitEventKind K) const {
    uint64_t N = 0;
    for (const JitEvent &E : Events)
      N += E.Kind == K;
    return N;
  }
};

// Megamorphic dispatch: eight shapes flow through one property site inside
// the hot loop. Trace recordings abort at the megamorphic site; under
// --tier=hybrid the loop promotes instead of blacklisting.
std::string megamorphicKernel(int Iters) {
  return R"js(
var objs = [];
for (var i = 0; i < 8; ++i) {
  var o = {};
  if (i == 0) { o.a = 1; }
  if (i == 1) { o.b = 1; o.a = 2; }
  if (i == 2) { o.c = 1; o.a = 3; }
  if (i == 3) { o.d = 1; o.a = 4; }
  if (i == 4) { o.e = 1; o.a = 5; }
  if (i == 5) { o.f = 1; o.a = 6; }
  if (i == 6) { o.g = 1; o.a = 7; }
  if (i == 7) { o.h = 1; o.a = 8; }
  objs[i] = o;
}
var t = 0;
for (var j = 0; j < )js" +
         std::to_string(Iters) + R"js(; ++j) {
  t = t + objs[j % 8].a;
}
print(t);
)js";
}

// Unbiased branches whose arms each read a polymorphic property site: the
// branch recordings abort, the side exits overflow their recording budget,
// and hybrid mode promotes the loop (branch-overflow path). All integer
// arithmetic is shift/mask so method code never overflow-deopts.
std::string branchyKernel(int Iters) {
  return R"js(
var pool = [];
for (var i = 0; i < 8; ++i) {
  var o = {};
  var s = i % 5;
  if (s == 0) { o.p0 = 1; }
  if (s == 1) { o.p1 = 1; o.q1 = 2; }
  if (s == 2) { o.p2 = 1; }
  if (s == 3) { o.p3 = 1; o.q3 = 2; }
  if (s == 4) { o.p4 = 1; }
  o.v = i + 1;
  pool[i] = o;
}
var t = 0;
var x = 12345;
for (var j = 0; j < )js" +
         std::to_string(Iters) + R"js(; ++j) {
  x = (x ^ (x << 7)) & 1048575;
  x = x ^ (x >> 3);
  var k = x & 3;
  if (k == 0) { t = t + pool[x & 7].v; }
  else { if (k == 1) { t = t + pool[(x >> 1) & 7].v * 2; }
  else { if (k == 2) { t = t - pool[(x >> 2) & 7].v; }
  else { t = t + pool[(x >> 3) & 7].v + 1; } } }
}
print(t);
)js";
}

/// Effectively infinite: only a governor can end it.
const char *InfiniteLoop = "var t = 0; for (var i = 0; i < 1e18; ++i) t += 1;";

/// Allocates strings without bound (same bomb as test_governance.cpp).
const char *AllocBomb = "function bomb() {\n"
                        "  var a = [];\n"
                        "  for (var i = 0; i < 100000000; ++i) a[i] = \"x\" + i;\n"
                        "  return a;\n"
                        "}\n"
                        "bomb();";

struct TierRun {
  std::string Out;
  VMStats Stats;
  bool Ok = true;
  std::string Err;
};

TierRun runTier(const std::string &Src, TierMode T, bool Jit = true) {
  EngineOptions O;
  O.EnableJit = Jit;
  O.Tier = T;
  O.CollectStats = true;
  Engine E(O);
  TierRun R;
  E.setPrintHook([&](const std::string &S) { R.Out += S; });
  auto Res = E.eval(Src);
  R.Ok = Res.ok();
  if (!R.Ok)
    R.Err = Res.Err.describe();
  R.Stats = E.stats();
  return R;
}

std::string interpOutput(const std::string &Src) {
  return runTier(Src, TierMode::Trace, /*Jit=*/false).Out;
}

/// Count loops across every script of \p E currently in \p T.
uint32_t loopsInTier(Engine &E, Tier T) {
  uint32_t N = 0;
  for (const auto &S : E.context().Scripts)
    for (uint16_t L = 0; L < S->Loops.size(); ++L)
      if (E.tierOf(S->Id, (uint16_t)L) == T)
        ++N;
  return N;
}

} // namespace

// --- TierPolicy unit tests -----------------------------------------------------

TEST(Tier, PolicyInitialTierFollowsMode) {
  EngineOptions O;
  O.Tier = TierMode::Trace;
  EXPECT_EQ(TierPolicy(O).initialTier(), Tier::Trace);
  O.Tier = TierMode::Hybrid;
  EXPECT_EQ(TierPolicy(O).initialTier(), Tier::Trace);
  O.Tier = TierMode::Method;
  EXPECT_EQ(TierPolicy(O).initialTier(), Tier::Method);
  EXPECT_FALSE(TierPolicy(O).tracingEnabled());
}

TEST(Tier, PolicyPromotesOnFirstMegamorphicAbortInHybrid) {
  EngineOptions O;
  O.Tier = TierMode::Hybrid;
  TierPolicy P(O);
  TierState S;
  EXPECT_EQ(P.onRootAbort(S, AbortReason::MegamorphicSite, true, 10),
            TierAction::Promote);
  // Trace mode never promotes; it backs off and eventually demotes.
  O.Tier = TierMode::Trace;
  TierPolicy PT(O);
  TierState ST;
  EXPECT_EQ(PT.onRootAbort(ST, AbortReason::MegamorphicSite, true, 10),
            TierAction::Stay);
  EXPECT_EQ(ST.Failures, 1u);
  EXPECT_EQ(ST.BackoffUntil, 10u + O.BlacklistBackoff);
  EXPECT_EQ(PT.onRootAbort(ST, AbortReason::MegamorphicSite, true, 50),
            TierAction::Demote)
      << "MaxRecordingFailures=" << O.MaxRecordingFailures;
}

TEST(Tier, PolicyRepeatedAbortsPromoteInHybridDemoteInTrace) {
  EngineOptions O;
  O.Tier = TierMode::Hybrid;
  TierPolicy P(O);
  TierState S;
  TierAction Last = TierAction::Stay;
  for (uint32_t K = 0; K < O.MaxRecordingFailures; ++K)
    Last = P.onRootAbort(S, AbortReason::NonNumericArith, true, 10 + K);
  EXPECT_EQ(Last, TierAction::Promote);

  // Forgiven aborts back off briefly but never accumulate failures.
  TierState SF;
  EXPECT_EQ(P.onRootAbort(SF, AbortReason::Interrupted, false, 7),
            TierAction::Stay);
  EXPECT_EQ(SF.Failures, 0u);
  EXPECT_EQ(SF.BackoffUntil, 11u);
}

TEST(Tier, PolicyBranchOverflowAndCompileFailure) {
  EngineOptions O;
  O.Tier = TierMode::Hybrid;
  TierPolicy P(O);
  TierState S;
  EXPECT_EQ(P.onBranchOverflow(S), TierAction::Promote);
  S.Current = Tier::Method;
  EXPECT_EQ(P.onBranchOverflow(S), TierAction::Stay);
  EXPECT_EQ(P.onMethodCompileFailed(S), TierAction::Demote);

  O.Tier = TierMode::Trace;
  TierPolicy PT(O);
  TierState ST;
  EXPECT_EQ(PT.onBranchOverflow(ST), TierAction::Stay)
      << "trace mode keeps the historical block-the-exit behavior";
}

TEST(Tier, PolicyMethodCompileGate) {
  EngineOptions O;
  O.Tier = TierMode::Method;
  O.MethodJitThreshold = 8;
  TierPolicy P(O);
  TierState S;
  S.Current = Tier::Method;
  EXPECT_FALSE(P.shouldMethodCompile(S, 7, false));
  EXPECT_TRUE(P.shouldMethodCompile(S, 8, false));
  EXPECT_FALSE(P.shouldMethodCompile(S, 8, true)) << "already has a body";
  S.MethodCompilePending = true;
  EXPECT_FALSE(P.shouldMethodCompile(S, 8, false)) << "job in flight";
  S.MethodCompilePending = false;
  S.Current = Tier::Trace;
  EXPECT_FALSE(P.shouldMethodCompile(S, 100, false));
}

// --- Hybrid promotion end to end -----------------------------------------------

TEST(Tier, MegamorphicLoopPromotesCompilesAndEnters) {
  std::string Src = megamorphicKernel(50000);
  std::string Want = interpOutput(Src);

  EngineOptions O;
  O.EnableJit = true;
  O.Tier = TierMode::Hybrid;
  O.CollectStats = true;
  Engine E(O);
  CollectingListener L;
  E.addEventListener(&L);
  std::string Out;
  E.setPrintHook([&](const std::string &S) { Out += S; });
  ASSERT_TRUE(E.eval(Src).ok());
  EXPECT_EQ(Out, Want);

  VMStats S = E.stats();
  EXPECT_GE(S.LoopsPromoted, 1u);
  EXPECT_GE(S.MethodCompiles, 1u);
  EXPECT_GE(S.MethodEnters, 1u);
  EXPECT_EQ(S.LoopsDemoted, 0u) << "hybrid promotes instead of blacklisting";

  // Event ordering: the promotion precedes the compile which precedes the
  // first entry.
  int64_t IP = L.firstIndexOf(JitEventKind::TierPromoted);
  int64_t IC = L.firstIndexOf(JitEventKind::MethodCompiled);
  int64_t IE = L.firstIndexOf(JitEventKind::MethodEntered);
  ASSERT_GE(IP, 0);
  ASSERT_GE(IC, 0);
  ASSERT_GE(IE, 0);
  EXPECT_LT(IP, IC);
  EXPECT_LT(IC, IE);
  EXPECT_EQ(L.count(JitEventKind::MethodEntered), 1u)
      << "MethodEntered fires only on the first entry";

  // The public tier probe agrees, and the profile snapshot attributes the
  // method body to its tier.
  EXPECT_GE(loopsInTier(E, Tier::Method), 1u);
  bool SawMethodProfile = false;
  for (const FragmentProfile &P : E.fragmentProfiles())
    if (P.IsMethod) {
      SawMethodProfile = true;
      EXPECT_STREQ(P.TierName, "method");
      EXPECT_GE(P.Enters, 1u);
    }
  EXPECT_TRUE(SawMethodProfile);
  E.removeEventListener(&L);
}

TEST(Tier, BranchOverflowPromotesInHybrid) {
  std::string Src = branchyKernel(50000);
  TierRun H = runTier(Src, TierMode::Hybrid);
  ASSERT_TRUE(H.Ok) << H.Err;
  EXPECT_EQ(H.Out, interpOutput(Src));
  EXPECT_GE(H.Stats.LoopsPromoted, 1u);
  EXPECT_GE(H.Stats.MethodEnters, 1u);
}

// --- Method-only pipeline -------------------------------------------------------

TEST(Tier, MethodModeCompilesWithoutTracing) {
  std::string Src = "var t = 0; for (var i = 0; i < 20000; ++i) t = t + i;"
                    "print(t);";
  TierRun M = runTier(Src, TierMode::Method);
  ASSERT_TRUE(M.Ok) << M.Err;
  EXPECT_EQ(M.Out, interpOutput(Src));
  EXPECT_EQ(M.Stats.TracesStarted, 0u) << "--tier=method never records";
  EXPECT_GE(M.Stats.MethodCompiles, 1u);
  EXPECT_GE(M.Stats.MethodEnters, 1u);
}

TEST(Tier, TierOfReportsInitialTierPerMode) {
  std::string Src = "var t = 0; for (var i = 0; i < 20000; ++i) t = t + i;";
  for (TierMode Mode : {TierMode::Trace, TierMode::Method}) {
    EngineOptions O;
    O.EnableJit = true;
    O.Tier = Mode;
    Engine E(O);
    ASSERT_TRUE(E.eval(Src).ok());
    Tier Want = Mode == TierMode::Method ? Tier::Method : Tier::Trace;
    EXPECT_GE(loopsInTier(E, Want), 1u) << tierModeName(Mode);
    // An unseen loop id reports the configured initial tier.
    EXPECT_EQ(E.tierOf(9999, 0), Want);
  }
  EngineOptions Off;
  Off.EnableJit = false;
  Engine E(Off);
  ASSERT_TRUE(E.eval(Src).ok());
  EXPECT_EQ(E.tierOf(0, 0), Tier::Interpreter) << "JIT off: everything interprets";
}

// --- Trace mode is bit-for-bit the historical pipeline --------------------------

TEST(Tier, TraceModeNeverTouchesTheMethodTier) {
  // A corpus that exercises compile success, megamorphic blacklisting, and
  // branchy trees. In trace mode the method tier must be completely inert
  // and two identical runs must produce identical pipelines.
  std::vector<std::string> Corpus = {
      "var t = 0; for (var i = 0; i < 5000; ++i) t = t + i; print(t);",
      megamorphicKernel(20000),
      branchyKernel(20000),
      "var t = 0.5; for (var i = 0; i < 3000; ++i) t = t + 0.25; print(t);",
  };
  for (const std::string &Src : Corpus) {
    std::string Want = interpOutput(Src);
    TierRun A = runTier(Src, TierMode::Trace);
    TierRun B = runTier(Src, TierMode::Trace);
    ASSERT_TRUE(A.Ok && B.Ok) << A.Err << B.Err;
    EXPECT_EQ(A.Out, Want);
    EXPECT_EQ(B.Out, Want);
    EXPECT_EQ(A.Stats.MethodCompiles, 0u);
    EXPECT_EQ(A.Stats.MethodEnters, 0u);
    EXPECT_EQ(A.Stats.LoopsPromoted, 0u);
    // Deterministic pipeline: same recordings, same aborts, same
    // blacklist verdicts on every run.
    EXPECT_EQ(A.Stats.TracesStarted, B.Stats.TracesStarted);
    EXPECT_EQ(A.Stats.TracesCompleted, B.Stats.TracesCompleted);
    EXPECT_EQ(A.Stats.TracesAborted, B.Stats.TracesAborted);
    EXPECT_EQ(A.Stats.LoopsBlacklisted, B.Stats.LoopsBlacklisted);
    EXPECT_EQ(A.Stats.TraceEnters, B.Stats.TraceEnters);
  }
  // The megamorphic kernel still takes its classic trace-mode verdict:
  // branch recordings abort at the megamorphic site and the overflowing
  // exit is blocked (the tree stays, side-exiting most iterations) --
  // exactly the outcome the hybrid tier replaces with promotion.
  TierRun M = runTier(megamorphicKernel(20000), TierMode::Trace);
  EXPECT_GE(M.Stats.AbortsByReason[(size_t)AbortReason::MegamorphicSite], 1u);
  EXPECT_GE(M.Stats.SideExits, 1000u);
}

// --- Cache lifecycle ------------------------------------------------------------

TEST(Tier, MethodCodeSurvivesCacheFlushViaGenerationDrop) {
  std::string Src = "var t = 0; for (var i = 0; i < 20000; ++i) t = t + i;"
                    "print(t);";
  std::string Want = interpOutput(Src);

  EngineOptions O;
  O.EnableJit = true;
  O.Tier = TierMode::Method;
  O.CollectStats = true;
  Engine E(O);
  std::string Out;
  E.setPrintHook([&](const std::string &S) { Out += S; });
  ASSERT_TRUE(E.eval(Src).ok());
  EXPECT_EQ(Out, Want);
  uint64_t FirstCompiles = E.stats().MethodCompiles;
  ASSERT_GE(FirstCompiles, 1u);
  uint32_t Gen = E.cacheGeneration();

  // Flush: the method body dies with its generation, but the loop keeps
  // its tier and recompiles -- a flush must not act like a demotion.
  E.flushCodeCache();
  Out.clear();
  ASSERT_TRUE(E.eval(Src).ok());
  EXPECT_EQ(Out, Want);
  EXPECT_GT(E.cacheGeneration(), Gen);
  EXPECT_GT(E.stats().MethodCompiles, FirstCompiles)
      << "the loop must recompile after the flush";
  EXPECT_GE(loopsInTier(E, Tier::Method), 1u) << "tier survives the flush";
  EXPECT_EQ(E.stats().LoopsDemoted, 0u);
}

// --- Governance inside method code ----------------------------------------------

TEST(Tier, DeadlineFiresInsideMethodCode) {
  EngineOptions O;
  O.EnableJit = true;
  O.Tier = TierMode::Method;
  O.CollectStats = true;
  O.EvalDeadlineMs = 100;
  Engine E(O);
  auto T0 = std::chrono::steady_clock::now();
  auto R = E.eval(InfiniteLoop);
  double Wall = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - T0)
                    .count();
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Err.Kind, ErrorKind::Timeout);
  EXPECT_LT(Wall, 5000.0);
  VMStats S = E.stats();
  EXPECT_GE(S.Timeouts, 1u);
  EXPECT_GE(S.MethodEnters, 1u)
      << "the loop must have been in method code when the timer fired";
}

TEST(Tier, HeapQuotaFiresUnderMethodCode) {
  EngineOptions O;
  O.EnableJit = true;
  O.Tier = TierMode::Method;
  O.CollectStats = true;
  O.MaxHeapBytes = 6u << 20;
  Engine E(O);
  auto R = E.eval(AllocBomb);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Err.Kind, ErrorKind::OutOfMemory);
  EXPECT_GE(E.stats().HeapQuotaHits, 1u);
  EXPECT_GE(E.stats().MethodEnters, 1u);
}

// --- Performance floor ----------------------------------------------------------

TEST(Tier, HybridBeatsInterpreterOnHostileKernels) {
  // The acceptance bar lives in bench/tier_hostile (>= 2x); this test
  // keeps a conservative floor so a catastrophic method-tier regression
  // fails fast in the unit suite. Interleaved best-of-3 per config.
  for (const std::string &Src :
       {megamorphicKernel(200000), branchyKernel(200000)}) {
    double BestI = 1e300, BestH = 1e300;
    std::string OutI, OutH;
    for (int K = 0; K < 3; ++K) {
      auto T0 = std::chrono::steady_clock::now();
      TierRun I = runTier(Src, TierMode::Trace, /*Jit=*/false);
      auto T1 = std::chrono::steady_clock::now();
      TierRun H = runTier(Src, TierMode::Hybrid);
      auto T2 = std::chrono::steady_clock::now();
      ASSERT_TRUE(I.Ok && H.Ok);
      OutI = I.Out;
      OutH = H.Out;
      double MsI = std::chrono::duration<double, std::milli>(T1 - T0).count();
      double MsH = std::chrono::duration<double, std::milli>(T2 - T1).count();
      BestI = std::min(BestI, MsI);
      BestH = std::min(BestH, MsH);
    }
    EXPECT_EQ(OutI, OutH);
    EXPECT_LT(BestH, BestI)
        << "hybrid slower than the interpreter on a trace-hostile kernel ("
        << BestH << "ms vs " << BestI << "ms)";
  }
}

// --- Stitched re-entry (trace tier pin) -----------------------------------------

TEST(Tier, StitchedReentryReRunsOptimizedTracePrologue) {
  // A branchy loop over an invariant object: -O2 hoists the shape guard
  // and invariant loads into an entry prologue, and the untraced arm
  // stitches back into the tree via JmpFrag. Trace-tier JmpFrag re-entry
  // must re-run that prologue (re-validating the hoisted guards) -- the
  // method tier skips prologues precisely because its bodies never have
  // one, and this pins the trace side of that asymmetry.
  std::string Src = R"js(
var o = {scale: 3, bias: 7};
var t = 0;
for (var i = 0; i < 30000; ++i) {
  if ((i & 3) == 0) { t = t + o.scale * i; }
  else { t = t + o.bias; }
}
print(t);
)js";
  TierRun T = runTier(Src, TierMode::Trace);
  ASSERT_TRUE(T.Ok) << T.Err;
  EXPECT_EQ(T.Out, interpOutput(Src));
  EXPECT_GE(T.Stats.LoopsWithPrologue, 1u)
      << "the optimizer must have built an entry prologue";
  EXPECT_GE(T.Stats.BranchesCompiled, 1u);
  EXPECT_GE(T.Stats.StitchedTransfers, 1u)
      << "the cold arm must re-enter the tree through a stitched JmpFrag";
  EXPECT_EQ(T.Stats.MethodCompiles, 0u);
}
