//===- test_ic.cpp - Property inline caches + threaded dispatch -----------------===//
//
// Covers the IC ladder (mono -> poly -> mega), both invalidation paths
// (shape-transition self-invalidation and the whole-table reset on a
// code-cache flush), bit-for-bit equivalence with ICs off, the recorder's
// consumption of IC state (mono replay, poly multi-shape guards, mega
// aborts), and switch-vs-threaded dispatch equivalence.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "api/engine.h"
#include "frontend/bytecode.h"
#include "support/events.h"
#include "trace/monitor.h"
#include "vm/ic.h"

using namespace tracejit;

namespace {

struct RunInfo {
  std::string Out;
  VMStats Stats;
  bool Ok;
  std::string Error;
};

RunInfo runWith(const std::string &Src, EngineOptions O) {
  O.CollectStats = true;
  Engine E(O);
  RunInfo R;
  E.setPrintHook([&](const std::string &S) { R.Out += S; });
  auto Res = E.eval(Src);
  R.Ok = Res.ok();
  R.Error = Res.Err.describe();
  R.Stats = E.stats();
  return R;
}

EngineOptions interpIc() {
  EngineOptions O;
  O.EnableJit = false;
  O.EnableIC = true;
  return O;
}

EngineOptions jitIc() {
  EngineOptions O;
  O.EnableJit = true;
  O.EnableIC = true;
  O.Tier = TierMode::Trace; // IC/trace interplay assertions
  return O;
}

/// Per-ICState site counts over every script the engine compiled.
void countStates(Engine &E, size_t C[4]) {
  C[0] = C[1] = C[2] = C[3] = 0;
  for (auto &S : E.context().Scripts)
    for (const PropertyIC &IC : S->ICs)
      ++C[(size_t)IC.State];
}

} // namespace

TEST(InlineCaches, MonoSiteHitsAfterOneMiss) {
  EngineOptions O = interpIc();
  O.CollectStats = true;
  Engine E(O);
  std::string Out;
  E.setPrintHook([&](const std::string &S) { Out += S; });
  ASSERT_TRUE(E.eval("var p = {}; p.a = 7; p.b = 35;\n"
                     "var s = 0;\n"
                     "for (var i = 0; i < 1000; ++i) s = s + p.a + p.b;\n"
                     "print(s);")
                  .ok());
  EXPECT_EQ(Out, "42000\n");
  size_t C[4];
  countStates(E, C);
  EXPECT_GE(C[(size_t)ICState::Mono], 2u) << "p.a / p.b sites are mono";
  EXPECT_EQ(C[(size_t)ICState::Mega], 0u);
  VMStats S = E.stats();
  EXPECT_GT(S.IcHits, 1500u) << "~2000 reads, all but the first two hit";
  EXPECT_GT(S.IcMisses, 0u);
  // The counters surface through the human-readable report.
  EXPECT_NE(S.report().find("inline caches:"), std::string::npos);
}

TEST(InlineCaches, PolyThenMegaLadder) {
  // Four shapes at one site: Poly. Eight shapes: overflow to Mega.
  std::string Mk = "function mk(k) {\n"
                   "  var o = {};\n"
                   "  if (k == 1) o.p1 = 0;\n"
                   "  if (k == 2) { o.p2 = 0; o.p3 = 0; }\n"
                   "  if (k == 3) { o.p4 = 0; o.p5 = 0; o.p6 = 0; }\n"
                   "  if (k == 4) o.p7 = 0;\n"
                   "  if (k == 5) { o.p8 = 0; o.p9 = 0; }\n"
                   "  if (k == 6) { o.pa = 0; o.pb = 0; o.pc = 0; }\n"
                   "  if (k == 7) { o.pd = 0; o.pe = 0; o.pf = 0; o.pg = 0; }\n"
                   "  o.x = k;\n"
                   "  return o;\n"
                   "}\n";
  {
    EngineOptions O = interpIc();
    O.CollectStats = true;
    Engine E(O);
    E.setPrintHook([](const std::string &) {});
    ASSERT_TRUE(E.eval(Mk + "var os = Array(4);\n"
                            "for (var k = 0; k < 4; ++k) os[k] = mk(k);\n"
                            "var s = 0;\n"
                            "for (var i = 0; i < 400; ++i) s = s + os[i % 4].x;\n"
                            "print(s);")
                    .ok());
    size_t C[4];
    countStates(E, C);
    EXPECT_GE(C[(size_t)ICState::Poly], 1u) << "the os[i%4].x site is poly";
    EXPECT_EQ(C[(size_t)ICState::Mega], 0u);
    EXPECT_EQ(E.stats().IcMegamorphicSites, 0u);
  }
  {
    EngineOptions O = interpIc();
    O.CollectStats = true;
    Engine E(O);
    E.setPrintHook([](const std::string &) {});
    ASSERT_TRUE(E.eval(Mk + "var os = Array(8);\n"
                            "for (var k = 0; k < 8; ++k) os[k] = mk(k);\n"
                            "var s = 0;\n"
                            "for (var i = 0; i < 800; ++i) s = s + os[i % 8].x;\n"
                            "print(s);")
                    .ok());
    size_t C[4];
    countStates(E, C);
    EXPECT_GE(C[(size_t)ICState::Mega], 1u) << "five-plus shapes overflow";
    EXPECT_GE(E.stats().IcMegamorphicSites, 1u);
  }
}

TEST(InlineCaches, ShapeTransitionSelfInvalidates) {
  // Train p.a on shape {a}, then transition p to {a, b}: the stale entry
  // keys on the old Shape pointer, fails to match, and the site refills --
  // reads stay correct throughout (no explicit invalidation hook needed).
  RunInfo R = runWith("var p = {}; p.a = 5;\n"
                      "var s = 0;\n"
                      "for (var i = 0; i < 100; ++i) s = s + p.a;\n"
                      "p.b = 1;\n"
                      "for (var j = 0; j < 100; ++j) s = s + p.a;\n"
                      "print(s);",
                      interpIc());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Out, "1000\n");
  EXPECT_GE(R.Stats.IcMisses, 2u) << "initial fill + post-transition refill";
}

TEST(InlineCaches, CacheFlushResetsEveryIC) {
  EngineOptions O = jitIc();
  O.CollectStats = true;
  Engine E(O);
  E.setPrintHook([](const std::string &) {});
  ASSERT_TRUE(E.eval("var p = {}; p.a = 1;\n"
                     "var s = 0;\n"
                     "for (var i = 0; i < 200; ++i) s = s + p.a;\n"
                     "print(s);")
                  .ok());
  size_t C[4];
  countStates(E, C);
  ASSERT_GE(C[(size_t)ICState::Mono], 1u);

  E.flushCodeCache(); // safe point: flush (and IC reset) run immediately
  countStates(E, C);
  EXPECT_EQ(C[(size_t)ICState::Mono], 0u);
  EXPECT_EQ(C[(size_t)ICState::Poly], 0u);
  EXPECT_EQ(C[(size_t)ICState::Mega], 0u);
  EXPECT_GE(E.stats().IcInvalidations, 1u);

  // The engine retrains and keeps answering correctly after the reset.
  std::string Out;
  E.setPrintHook([&](const std::string &S) { Out += S; });
  ASSERT_TRUE(E.eval("var t = 0;\n"
                     "for (var i = 0; i < 200; ++i) t = t + p.a;\n"
                     "print(t);")
                  .ok());
  EXPECT_EQ(Out, "200\n");
}

TEST(InlineCaches, OffModeIsBitForBitEquivalent) {
  // A corpus heavy on property traffic, including the special-case
  // receivers (array.length, string.length, absent names, transitions).
  const char *Corpus[] = {
      "var o = {}; o.a = 1; o.b = 2; var s = 0;\n"
      "for (var i = 0; i < 500; ++i) { s = s + o.a + o.b; o.a = s % 13; }\n"
      "print(s); print(o.a);",

      "var a = Array(10); for (var i = 0; i < 10; ++i) a[i] = i;\n"
      "var n = 0; for (var j = 0; j < 300; ++j) n = n + a.length;\n"
      "print(n); print('abc'.length);",

      "var q = {}; q.x = 3;\n"
      "print(q.missing); print(q.x);\n"
      "q.y = 4; print(q.y);",

      "function mk(i) { var o = {}; if (i % 2) o.pad = 0; o.v = i; return o; }\n"
      "var s = 0;\n"
      "for (var i = 0; i < 400; ++i) s = s + mk(i).v;\n"
      "print(s);",
  };
  for (const char *Src : Corpus) {
    EngineOptions On = interpIc();
    EngineOptions Off = interpIc();
    Off.EnableIC = false;
    RunInfo A = runWith(Src, On);
    RunInfo B = runWith(Src, Off);
    ASSERT_TRUE(A.Ok) << A.Error;
    ASSERT_TRUE(B.Ok) << B.Error;
    EXPECT_EQ(A.Out, B.Out) << Src;
    EXPECT_EQ(B.Stats.IcHits, 0u) << "IC-off engines never probe";
  }
}

TEST(InlineCaches, RecorderReplaysMonoSite) {
  RunInfo R = runWith("var p = {}; p.a = 2; p.b = 3;\n"
                      "var s = 0;\n"
                      "for (var i = 0; i < 2000; ++i) s = s + p.a * p.b;\n"
                      "print(s);",
                      jitIc());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Out, "12000\n");
  EXPECT_GE(R.Stats.TracesCompleted, 1u);
  EXPECT_GE(R.Stats.IcRecorderHits, 1u)
      << "the recorder consumed the interpreter-trained shape+slot";
}

TEST(InlineCaches, RecorderEmitsMultiShapeGuardForPolySite) {
  // Two shapes whose `x` lives at the same slot (slot 0 in both): the poly
  // site gets one multi-shape guard, so a single trace serves both
  // receivers instead of side-exiting every other iteration.
  RunInfo R = runWith(
      "function mk0() { var o = {}; o.x = 1; o.y = 9; return o; }\n"
      "function mk1() { var o = {}; o.x = 2; o.z = 9; return o; }\n"
      "var os = Array(2); os[0] = mk0(); os[1] = mk1();\n"
      "var s = 0;\n"
      "for (var i = 0; i < 4000; ++i) s = s + os[i % 2].x;\n"
      "print(s);",
      jitIc());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Out, "6000\n");
  EXPECT_GE(R.Stats.TracesCompleted, 1u);
  EXPECT_GE(R.Stats.IcRecorderHits, 1u);
  // The multi-shape guard keeps both shapes on trace: the dominant exit
  // pattern is the loop-condition exit, not a per-iteration shape exit.
  EXPECT_EQ(R.Stats.AbortsByReason[(size_t)AbortReason::MegamorphicSite], 0u);
}

TEST(InlineCaches, RecorderAbortsAtMegamorphicSite) {
  RunInfo R = runWith(
      "function mk(k) {\n"
      "  var o = {};\n"
      "  if (k == 1) o.p1 = 0;\n"
      "  if (k == 2) { o.p2 = 0; o.p3 = 0; }\n"
      "  if (k == 3) { o.p4 = 0; o.p5 = 0; o.p6 = 0; }\n"
      "  if (k == 4) o.p7 = 0;\n"
      "  if (k == 5) { o.p8 = 0; o.p9 = 0; }\n"
      "  if (k == 6) { o.pa = 0; o.pb = 0; o.pc = 0; }\n"
      "  if (k == 7) { o.pd = 0; o.pe = 0; o.pf = 0; o.pg = 0; }\n"
      "  o.x = k;\n"
      "  return o;\n"
      "}\n"
      "var os = Array(8);\n"
      "for (var k = 0; k < 8; ++k) os[k] = mk(k);\n"
      "var s = 0;\n"
      "for (var i = 0; i < 4000; ++i) s = s + os[i % 8].x;\n"
      "print(s);",
      jitIc());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Out, "14000\n");
  EXPECT_GE(R.Stats.AbortsByReason[(size_t)AbortReason::MegamorphicSite], 1u)
      << "recording through a megamorphic site must abort, not compile an "
         "always-exiting guard ladder";
}

TEST(ThreadedDispatch, SwitchAndThreadedAgree) {
  // Whatever harness the build selected, the runtime toggle must not
  // change observable behavior. (In builds without computed-goto support
  // both runs use the switch loop and this degenerates to determinism.)
  const char *Corpus[] = {
      "var s = 0; for (var i = 0; i < 1000; ++i) s += i; print(s);",
      "var o = {}; o.a = 1; var t = 0;\n"
      "for (var i = 0; i < 500; ++i) { t = t + o.a; o.a = t % 7; }\n"
      "print(t);",
      "function f(n) { if (n < 2) return n; return f(n - 1) + f(n - 2); }\n"
      "print(f(15));",
      "var a = Array(64); for (var i = 0; i < 64; ++i) a[i] = i * i;\n"
      "var s = 0; for (var j = 0; j < 64; ++j) s = s + a[j];\n"
      "print(s); print(a.length);",
  };
  for (const char *Src : Corpus) {
    for (bool Jit : {false, true}) {
      EngineOptions T;
      T.EnableJit = Jit;
      T.ThreadedDispatch = true;
      EngineOptions S = T;
      S.ThreadedDispatch = false;
      RunInfo A = runWith(Src, T);
      RunInfo B = runWith(Src, S);
      ASSERT_TRUE(A.Ok) << A.Error;
      ASSERT_TRUE(B.Ok) << B.Error;
      EXPECT_EQ(A.Out, B.Out) << Src;
    }
  }
  // Runtime errors unwind identically through both harnesses.
  EngineOptions T;
  T.EnableJit = false;
  T.ThreadedDispatch = true;
  EngineOptions S = T;
  S.ThreadedDispatch = false;
  RunInfo A = runWith("var u; u.x;", T);
  RunInfo B = runWith("var u; u.x;", S);
  EXPECT_FALSE(A.Ok);
  EXPECT_FALSE(B.Ok);
  EXPECT_EQ(A.Error, B.Error);
}
