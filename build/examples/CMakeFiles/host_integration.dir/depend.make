# Empty dependencies file for host_integration.
# This may be replaced when dependencies are built.
