file(REMOVE_RECURSE
  "CMakeFiles/host_integration.dir/host_integration.cpp.o"
  "CMakeFiles/host_integration.dir/host_integration.cpp.o.d"
  "host_integration"
  "host_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
