file(REMOVE_RECURSE
  "CMakeFiles/sieve_trace_anatomy.dir/sieve_trace_anatomy.cpp.o"
  "CMakeFiles/sieve_trace_anatomy.dir/sieve_trace_anatomy.cpp.o.d"
  "sieve_trace_anatomy"
  "sieve_trace_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sieve_trace_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
