# Empty dependencies file for sieve_trace_anatomy.
# This may be replaced when dependencies are built.
