file(REMOVE_RECURSE
  "libtracejit.a"
)
