# Empty compiler generated dependencies file for tracejit.
# This may be replaced when dependencies are built.
