
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/engine.cpp" "src/CMakeFiles/tracejit.dir/api/engine.cpp.o" "gcc" "src/CMakeFiles/tracejit.dir/api/engine.cpp.o.d"
  "/root/repo/src/frontend/bytecode.cpp" "src/CMakeFiles/tracejit.dir/frontend/bytecode.cpp.o" "gcc" "src/CMakeFiles/tracejit.dir/frontend/bytecode.cpp.o.d"
  "/root/repo/src/frontend/lexer.cpp" "src/CMakeFiles/tracejit.dir/frontend/lexer.cpp.o" "gcc" "src/CMakeFiles/tracejit.dir/frontend/lexer.cpp.o.d"
  "/root/repo/src/frontend/parser.cpp" "src/CMakeFiles/tracejit.dir/frontend/parser.cpp.o" "gcc" "src/CMakeFiles/tracejit.dir/frontend/parser.cpp.o.d"
  "/root/repo/src/interp/interpreter.cpp" "src/CMakeFiles/tracejit.dir/interp/interpreter.cpp.o" "gcc" "src/CMakeFiles/tracejit.dir/interp/interpreter.cpp.o.d"
  "/root/repo/src/interp/natives.cpp" "src/CMakeFiles/tracejit.dir/interp/natives.cpp.o" "gcc" "src/CMakeFiles/tracejit.dir/interp/natives.cpp.o.d"
  "/root/repo/src/jit/assembler_x64.cpp" "src/CMakeFiles/tracejit.dir/jit/assembler_x64.cpp.o" "gcc" "src/CMakeFiles/tracejit.dir/jit/assembler_x64.cpp.o.d"
  "/root/repo/src/jit/compiler_x64.cpp" "src/CMakeFiles/tracejit.dir/jit/compiler_x64.cpp.o" "gcc" "src/CMakeFiles/tracejit.dir/jit/compiler_x64.cpp.o.d"
  "/root/repo/src/jit/execmem.cpp" "src/CMakeFiles/tracejit.dir/jit/execmem.cpp.o" "gcc" "src/CMakeFiles/tracejit.dir/jit/execmem.cpp.o.d"
  "/root/repo/src/jit/executor.cpp" "src/CMakeFiles/tracejit.dir/jit/executor.cpp.o" "gcc" "src/CMakeFiles/tracejit.dir/jit/executor.cpp.o.d"
  "/root/repo/src/lir/backward.cpp" "src/CMakeFiles/tracejit.dir/lir/backward.cpp.o" "gcc" "src/CMakeFiles/tracejit.dir/lir/backward.cpp.o.d"
  "/root/repo/src/lir/filters.cpp" "src/CMakeFiles/tracejit.dir/lir/filters.cpp.o" "gcc" "src/CMakeFiles/tracejit.dir/lir/filters.cpp.o.d"
  "/root/repo/src/lir/lir.cpp" "src/CMakeFiles/tracejit.dir/lir/lir.cpp.o" "gcc" "src/CMakeFiles/tracejit.dir/lir/lir.cpp.o.d"
  "/root/repo/src/lir/printer.cpp" "src/CMakeFiles/tracejit.dir/lir/printer.cpp.o" "gcc" "src/CMakeFiles/tracejit.dir/lir/printer.cpp.o.d"
  "/root/repo/src/support/arena.cpp" "src/CMakeFiles/tracejit.dir/support/arena.cpp.o" "gcc" "src/CMakeFiles/tracejit.dir/support/arena.cpp.o.d"
  "/root/repo/src/support/stats.cpp" "src/CMakeFiles/tracejit.dir/support/stats.cpp.o" "gcc" "src/CMakeFiles/tracejit.dir/support/stats.cpp.o.d"
  "/root/repo/src/trace/helpers.cpp" "src/CMakeFiles/tracejit.dir/trace/helpers.cpp.o" "gcc" "src/CMakeFiles/tracejit.dir/trace/helpers.cpp.o.d"
  "/root/repo/src/trace/monitor.cpp" "src/CMakeFiles/tracejit.dir/trace/monitor.cpp.o" "gcc" "src/CMakeFiles/tracejit.dir/trace/monitor.cpp.o.d"
  "/root/repo/src/trace/recorder.cpp" "src/CMakeFiles/tracejit.dir/trace/recorder.cpp.o" "gcc" "src/CMakeFiles/tracejit.dir/trace/recorder.cpp.o.d"
  "/root/repo/src/vm/gc.cpp" "src/CMakeFiles/tracejit.dir/vm/gc.cpp.o" "gcc" "src/CMakeFiles/tracejit.dir/vm/gc.cpp.o.d"
  "/root/repo/src/vm/object.cpp" "src/CMakeFiles/tracejit.dir/vm/object.cpp.o" "gcc" "src/CMakeFiles/tracejit.dir/vm/object.cpp.o.d"
  "/root/repo/src/vm/shape.cpp" "src/CMakeFiles/tracejit.dir/vm/shape.cpp.o" "gcc" "src/CMakeFiles/tracejit.dir/vm/shape.cpp.o.d"
  "/root/repo/src/vm/string.cpp" "src/CMakeFiles/tracejit.dir/vm/string.cpp.o" "gcc" "src/CMakeFiles/tracejit.dir/vm/string.cpp.o.d"
  "/root/repo/src/vm/value.cpp" "src/CMakeFiles/tracejit.dir/vm/value.cpp.o" "gcc" "src/CMakeFiles/tracejit.dir/vm/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
