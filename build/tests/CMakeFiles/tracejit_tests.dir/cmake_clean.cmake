file(REMOVE_RECURSE
  "CMakeFiles/tracejit_tests.dir/test_backend.cpp.o"
  "CMakeFiles/tracejit_tests.dir/test_backend.cpp.o.d"
  "CMakeFiles/tracejit_tests.dir/test_frontend.cpp.o"
  "CMakeFiles/tracejit_tests.dir/test_frontend.cpp.o.d"
  "CMakeFiles/tracejit_tests.dir/test_fuzz.cpp.o"
  "CMakeFiles/tracejit_tests.dir/test_fuzz.cpp.o.d"
  "CMakeFiles/tracejit_tests.dir/test_interpreter.cpp.o"
  "CMakeFiles/tracejit_tests.dir/test_interpreter.cpp.o.d"
  "CMakeFiles/tracejit_tests.dir/test_jit.cpp.o"
  "CMakeFiles/tracejit_tests.dir/test_jit.cpp.o.d"
  "CMakeFiles/tracejit_tests.dir/test_lir.cpp.o"
  "CMakeFiles/tracejit_tests.dir/test_lir.cpp.o.d"
  "CMakeFiles/tracejit_tests.dir/test_runtime_units.cpp.o"
  "CMakeFiles/tracejit_tests.dir/test_runtime_units.cpp.o.d"
  "CMakeFiles/tracejit_tests.dir/test_trace_machinery.cpp.o"
  "CMakeFiles/tracejit_tests.dir/test_trace_machinery.cpp.o.d"
  "CMakeFiles/tracejit_tests.dir/test_value.cpp.o"
  "CMakeFiles/tracejit_tests.dir/test_value.cpp.o.d"
  "tracejit_tests"
  "tracejit_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracejit_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
