
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_backend.cpp" "tests/CMakeFiles/tracejit_tests.dir/test_backend.cpp.o" "gcc" "tests/CMakeFiles/tracejit_tests.dir/test_backend.cpp.o.d"
  "/root/repo/tests/test_frontend.cpp" "tests/CMakeFiles/tracejit_tests.dir/test_frontend.cpp.o" "gcc" "tests/CMakeFiles/tracejit_tests.dir/test_frontend.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/tracejit_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/tracejit_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_interpreter.cpp" "tests/CMakeFiles/tracejit_tests.dir/test_interpreter.cpp.o" "gcc" "tests/CMakeFiles/tracejit_tests.dir/test_interpreter.cpp.o.d"
  "/root/repo/tests/test_jit.cpp" "tests/CMakeFiles/tracejit_tests.dir/test_jit.cpp.o" "gcc" "tests/CMakeFiles/tracejit_tests.dir/test_jit.cpp.o.d"
  "/root/repo/tests/test_lir.cpp" "tests/CMakeFiles/tracejit_tests.dir/test_lir.cpp.o" "gcc" "tests/CMakeFiles/tracejit_tests.dir/test_lir.cpp.o.d"
  "/root/repo/tests/test_runtime_units.cpp" "tests/CMakeFiles/tracejit_tests.dir/test_runtime_units.cpp.o" "gcc" "tests/CMakeFiles/tracejit_tests.dir/test_runtime_units.cpp.o.d"
  "/root/repo/tests/test_trace_machinery.cpp" "tests/CMakeFiles/tracejit_tests.dir/test_trace_machinery.cpp.o" "gcc" "tests/CMakeFiles/tracejit_tests.dir/test_trace_machinery.cpp.o.d"
  "/root/repo/tests/test_value.cpp" "tests/CMakeFiles/tracejit_tests.dir/test_value.cpp.o" "gcc" "tests/CMakeFiles/tracejit_tests.dir/test_value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tracejit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
