# Empty dependencies file for tracejit_tests.
# This may be replaced when dependencies are built.
