# Empty dependencies file for preemption_overhead.
# This may be replaced when dependencies are built.
