file(REMOVE_RECURSE
  "CMakeFiles/preemption_overhead.dir/preemption_overhead.cpp.o"
  "CMakeFiles/preemption_overhead.dir/preemption_overhead.cpp.o.d"
  "preemption_overhead"
  "preemption_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preemption_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
