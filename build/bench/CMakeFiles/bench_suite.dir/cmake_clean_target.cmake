file(REMOVE_RECURSE
  "libbench_suite.a"
)
