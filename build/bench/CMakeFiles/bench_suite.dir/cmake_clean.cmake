file(REMOVE_RECURSE
  "CMakeFiles/bench_suite.dir/suite.cpp.o"
  "CMakeFiles/bench_suite.dir/suite.cpp.o.d"
  "libbench_suite.a"
  "libbench_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
