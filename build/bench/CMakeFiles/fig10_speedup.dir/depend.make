# Empty dependencies file for fig10_speedup.
# This may be replaced when dependencies are built.
