# Empty dependencies file for ablation_nesting.
# This may be replaced when dependencies are built.
