file(REMOVE_RECURSE
  "CMakeFiles/ablation_nesting.dir/ablation_nesting.cpp.o"
  "CMakeFiles/ablation_nesting.dir/ablation_nesting.cpp.o.d"
  "ablation_nesting"
  "ablation_nesting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nesting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
