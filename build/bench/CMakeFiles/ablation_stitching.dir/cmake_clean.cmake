file(REMOVE_RECURSE
  "CMakeFiles/ablation_stitching.dir/ablation_stitching.cpp.o"
  "CMakeFiles/ablation_stitching.dir/ablation_stitching.cpp.o.d"
  "ablation_stitching"
  "ablation_stitching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stitching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
