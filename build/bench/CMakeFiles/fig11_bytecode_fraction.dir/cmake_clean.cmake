file(REMOVE_RECURSE
  "CMakeFiles/fig11_bytecode_fraction.dir/fig11_bytecode_fraction.cpp.o"
  "CMakeFiles/fig11_bytecode_fraction.dir/fig11_bytecode_fraction.cpp.o.d"
  "fig11_bytecode_fraction"
  "fig11_bytecode_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_bytecode_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
