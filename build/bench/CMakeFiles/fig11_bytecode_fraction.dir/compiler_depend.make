# Empty compiler generated dependencies file for fig11_bytecode_fraction.
# This may be replaced when dependencies are built.
