# Empty compiler generated dependencies file for fig1_sieve.
# This may be replaced when dependencies are built.
