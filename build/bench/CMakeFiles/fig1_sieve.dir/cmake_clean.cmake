file(REMOVE_RECURSE
  "CMakeFiles/fig1_sieve.dir/fig1_sieve.cpp.o"
  "CMakeFiles/fig1_sieve.dir/fig1_sieve.cpp.o.d"
  "fig1_sieve"
  "fig1_sieve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_sieve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
