//===- oracle.h - The int->double demotion oracle -----------------------------===//
//
// "To avoid future speculative failures involving this variable, and to
// obtain a type-stable trace, we note the fact that the variable in
// question has been observed to sometimes hold non-integer values in an
// advisory data structure which we call the oracle. When compiling loops,
// we consult the oracle before specializing values to integers." (§3.2)
//
// Keys identify variables stably across traces: a global slot, or a
// (script, local-slot) pair. Operand-stack temporaries are not tracked --
// they do not survive loop edges in practice.
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_TRACE_ORACLE_H
#define TRACEJIT_TRACE_ORACLE_H

#include <cstdint>
#include <unordered_set>

namespace tracejit {

class Oracle {
public:
  static uint64_t globalKey(uint32_t Slot) { return Slot; }
  static uint64_t localKey(uint32_t ScriptId, uint32_t LocalSlot) {
    return (1ULL << 63) | ((uint64_t)ScriptId << 24) | LocalSlot;
  }

  /// Record that this variable was observed holding a double when an
  /// integer was speculated.
  void markDemote(uint64_t Key) { Demoted.insert(Key); }

  /// Should entry-type-map construction demote this variable to double?
  bool isDemoted(uint64_t Key) const { return Demoted.count(Key) != 0; }

  // --- Property-site polymorphism (vm/ic.h feedback) -------------------------
  //
  // The interpreter's inline caches report sites that left the monomorphic
  // state. Like demotion facts, these survive code-cache flushes (the ICs
  // themselves are reset): re-recording a trace through a known-megamorphic
  // site would just re-learn the same failure.

  static uint64_t propSiteKey(uint32_t ScriptId, uint32_t Pc) {
    return ((uint64_t)ScriptId << 32) | Pc;
  }

  void markPolymorphicSite(uint64_t Key) { PolySites.insert(Key); }
  void markMegamorphicSite(uint64_t Key) { MegaSites.insert(Key); }
  bool isPolymorphicSite(uint64_t Key) const {
    return PolySites.count(Key) != 0;
  }
  bool isMegamorphicSite(uint64_t Key) const {
    return MegaSites.count(Key) != 0;
  }

  size_t size() const { return Demoted.size(); }
  void clear() {
    Demoted.clear();
    PolySites.clear();
    MegaSites.clear();
  }

private:
  std::unordered_set<uint64_t> Demoted;
  std::unordered_set<uint64_t> PolySites;
  std::unordered_set<uint64_t> MegaSites;
};

} // namespace tracejit

#endif // TRACEJIT_TRACE_ORACLE_H
