//===- helpers.h - Runtime helpers callable from traces ------------------------===//
//
// C entry points the trace compiler emits calls to: boxing, array and
// string operations, allocation, and slow-path arithmetic. This is the
// trace-side half of the typed FFI (§6.5): unboxed arguments, no
// interpreter API in the hot path. Helpers that allocate never run the GC
// directly -- they raise the preempt flag and the guard at the next loop
// edge hands control back to the interpreter, which collects at a safe
// point (§6.4).
//
// Every helper has a CallInfo carrying its native address for the x86-64
// backend and an auto-generated shim for the portable LIR executor.
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_TRACE_HELPERS_H
#define TRACEJIT_TRACE_HELPERS_H

#include "lir/lir.h"

namespace tracejit {

struct VMContext;
class Interpreter;
class Object;
class String;

extern "C" {
int32_t tj_ToInt32D(double D);
int32_t tj_ModI(int32_t A, int32_t B);
double tj_ModD(double A, double B);
uint64_t tj_BoxDouble(VMContext *Ctx, double D);
int32_t tj_ArraySetV(VMContext *Ctx, Object *A, int32_t Idx, uint64_t Bits);
int32_t tj_ArraySetD(VMContext *Ctx, Object *A, int32_t Idx, double D);
uint64_t tj_ConcatSS(VMContext *Ctx, String *A, String *B);
int32_t tj_EqSS(String *A, String *B);
uint64_t tj_CharAt(VMContext *Ctx, String *S, int32_t I);
uint64_t tj_FromCharCode1(VMContext *Ctx, int32_t C);
uint64_t tj_NewArray(VMContext *Ctx, int32_t Len);
uint64_t tj_NewObject(VMContext *Ctx);
void tj_InitProp(VMContext *Ctx, Object *O, String *Name, uint64_t Bits);
int32_t tj_ArrayPushV(VMContext *Ctx, Object *A, uint64_t Bits);
int32_t tj_TruthyD(double D);

// --- Method-tier helpers (trace/tier.h) -------------------------------------
//
// The whole-method compiler lowers every bytecode it cannot inline to one
// of these. They operate on boxed value words (the method tier keeps
// everything boxed), mirror the interpreter op bodies bit-for-bit via the
// MethodOps friend, and follow a uniform error protocol: the helper sets
// the interpreter pc first (so error positions are exact), and returns
// ~0ULL -- unproducible as a real Value -- when VMContext::HasError is set.
// Method code guards the sentinel and deopts at the faulting pc; the
// dispatch harness checks HasError before executing any op, so the op is
// never re-run.
uint64_t tj_MethodBinop(Interpreter *I, uint32_t Pc, int32_t Op, uint64_t A,
                        uint64_t B);
uint64_t tj_MethodUnop(Interpreter *I, uint32_t Pc, int32_t Op, uint64_t V);
int32_t tj_MethodTruthy(uint64_t V);
uint64_t tj_MethodGetProp(Interpreter *I, uint32_t Pc, int32_t AtomIdx,
                          uint64_t Base);
uint64_t tj_MethodSetProp(Interpreter *I, uint32_t Pc, int32_t AtomIdx,
                          uint64_t Base, uint64_t V);
uint64_t tj_MethodInitProp(Interpreter *I, uint32_t Pc, int32_t AtomIdx,
                           uint64_t Base, uint64_t V);
uint64_t tj_MethodGetElem(Interpreter *I, uint32_t Pc, uint64_t Base,
                          uint64_t Idx);
uint64_t tj_MethodSetElem(Interpreter *I, uint32_t Pc, uint64_t Base,
                          uint64_t Idx, uint64_t V);
uint64_t tj_MethodNewArray(Interpreter *I, uint32_t Pc, int32_t N,
                           uint64_t *Elems);
uint64_t tj_MethodNewObject(Interpreter *I, uint32_t Pc);
uint64_t tj_MethodCall(Interpreter *I, uint32_t Pc, int32_t ArgC,
                       uint64_t *Tar, int32_t Sp);
uint64_t tj_MethodCallProp(Interpreter *I, uint32_t Pc, int32_t AtomIdx,
                           int32_t ArgC, uint64_t *Tar, int32_t Sp);
}

/// The sentinel tj_Method* helpers return when an error is pending. The
/// word has every tag bit set at once, so no boxed Value can equal it.
constexpr uint64_t MethodErrorSentinel = ~0ULL;

/// CallInfo table for the helpers above plus the typed math natives.
struct HelperCalls {
  CallInfo ToInt32D, ModI, ModD, BoxDouble, ArraySetV, ArraySetD, ConcatSS,
      EqSS, CharAt, FromCharCode1, NewArray, NewObject, InitProp, ArrayPushV,
      TruthyD;
  // Method-tier helpers (boxed-word semantics; jit/method_builder.cpp).
  CallInfo MethodBinop, MethodUnop, MethodTruthy, MethodGetProp,
      MethodSetProp, MethodInitProp, MethodGetElem, MethodSetElem,
      MethodNewArray, MethodNewObject, MethodCall, MethodCallProp;
  // Typed math natives (built from the natives.cpp registry signatures).
  CallInfo MathD_D;   ///< prototype for double(double); Addr filled per use
  CallInfo MathD_DD;  ///< prototype for double(double,double)
  CallInfo MathD_CTX; ///< prototype for double(VMContext*)
};

const HelperCalls &helperCalls();

/// Build a one-off CallInfo for a typed native with signature \p Proto but
/// a different address; the result must be arena- or statically-owned by
/// the caller. Returns Proto copied with Addr/Name/Shim replaced. The shim
/// dispatches through the address generically for the known signatures.
CallInfo makeMathCallInfo(const CallInfo &Proto, void *Addr, const char *Name);

} // namespace tracejit

#endif // TRACEJIT_TRACE_HELPERS_H
