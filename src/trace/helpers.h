//===- helpers.h - Runtime helpers callable from traces ------------------------===//
//
// C entry points the trace compiler emits calls to: boxing, array and
// string operations, allocation, and slow-path arithmetic. This is the
// trace-side half of the typed FFI (§6.5): unboxed arguments, no
// interpreter API in the hot path. Helpers that allocate never run the GC
// directly -- they raise the preempt flag and the guard at the next loop
// edge hands control back to the interpreter, which collects at a safe
// point (§6.4).
//
// Every helper has a CallInfo carrying its native address for the x86-64
// backend and an auto-generated shim for the portable LIR executor.
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_TRACE_HELPERS_H
#define TRACEJIT_TRACE_HELPERS_H

#include "lir/lir.h"

namespace tracejit {

struct VMContext;
class Object;
class String;

extern "C" {
int32_t tj_ToInt32D(double D);
int32_t tj_ModI(int32_t A, int32_t B);
double tj_ModD(double A, double B);
uint64_t tj_BoxDouble(VMContext *Ctx, double D);
int32_t tj_ArraySetV(VMContext *Ctx, Object *A, int32_t Idx, uint64_t Bits);
int32_t tj_ArraySetD(VMContext *Ctx, Object *A, int32_t Idx, double D);
uint64_t tj_ConcatSS(VMContext *Ctx, String *A, String *B);
int32_t tj_EqSS(String *A, String *B);
uint64_t tj_CharAt(VMContext *Ctx, String *S, int32_t I);
uint64_t tj_FromCharCode1(VMContext *Ctx, int32_t C);
uint64_t tj_NewArray(VMContext *Ctx, int32_t Len);
uint64_t tj_NewObject(VMContext *Ctx);
void tj_InitProp(VMContext *Ctx, Object *O, String *Name, uint64_t Bits);
int32_t tj_ArrayPushV(VMContext *Ctx, Object *A, uint64_t Bits);
int32_t tj_TruthyD(double D);
}

/// CallInfo table for the helpers above plus the typed math natives.
struct HelperCalls {
  CallInfo ToInt32D, ModI, ModD, BoxDouble, ArraySetV, ArraySetD, ConcatSS,
      EqSS, CharAt, FromCharCode1, NewArray, NewObject, InitProp, ArrayPushV,
      TruthyD;
  // Typed math natives (built from the natives.cpp registry signatures).
  CallInfo MathD_D;   ///< prototype for double(double); Addr filled per use
  CallInfo MathD_DD;  ///< prototype for double(double,double)
  CallInfo MathD_CTX; ///< prototype for double(VMContext*)
};

const HelperCalls &helperCalls();

/// Build a one-off CallInfo for a typed native with signature \p Proto but
/// a different address; the result must be arena- or statically-owned by
/// the caller. Returns Proto copied with Addr/Name/Shim replaced. The shim
/// dispatches through the address generically for the known signatures.
CallInfo makeMathCallInfo(const CallInfo &Proto, void *Addr, const char *Name);

} // namespace tracejit

#endif // TRACEJIT_TRACE_HELPERS_H
