//===- tier.h - Compilation-tier policy and per-loop tier state ------------===//
//
// The tier state machine that replaces the old boolean blacklist. Every hot
// loop is in exactly one tier:
//
//   Interpreter <------ Trace ------> Method
//        ^  (demote:      |  (promote: megamorphic abort,
//        |   blacklist)   |   branch overflow, repeated aborts
//        |                v   under --tier=hybrid)
//        +---------- Method (demote: method compile failed)
//
// TierPolicy is the pure decision function: the monitor feeds it abort and
// overflow events and it answers Stay/Promote/Demote. All mutation of
// LoopState stays in the monitor, so the policy is trivially unit-testable
// and `--tier=trace` reproduces the historical blacklist pipeline
// bit-for-bit (same counters, same backoff arithmetic, same Nop3 patch).
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_TRACE_TIER_H
#define TRACEJIT_TRACE_TIER_H

#include <cstdint>

#include "api/options.h"
#include "support/events.h"

namespace tracejit {

/// Which compilation tier a loop currently runs in.
enum class Tier : uint8_t {
  Interpreter, ///< Never compile this loop again (the old "blacklisted").
  Trace,       ///< Trace-recording pipeline (the default).
  Method,      ///< Whole-loop-body method compiler (unspecialized code).
};

const char *tierName(Tier T);

/// Why a loop last changed tier (telemetry; TierPromoted events carry the
/// equivalent AbortReason where one exists).
enum class TierChangeReason : uint8_t {
  None,                ///< Still in its initial tier.
  MegamorphicAbort,    ///< Recording aborted at a megamorphic site.
  BranchOverflow,      ///< A side exit exhausted its recording attempts.
  RepeatedAborts,      ///< The root loop exhausted its recording attempts.
  MethodByPolicy,      ///< --tier=method starts every loop here.
  MethodCompileFailed, ///< Method body would not lower or compile.
  Blacklisted,         ///< Trace mode demotion (the classic Nop3 patch).
  NumReasons,
};

const char *tierChangeReasonName(TierChangeReason R);

/// Per-loop tier state, embedded in the monitor's LoopState. Replaces the
/// old scattered {Blacklisted, Failures, BackoffUntil} fields.
struct TierState {
  Tier Current = Tier::Trace;
  TierChangeReason LastChange = TierChangeReason::None;
  /// Consecutive failed root recordings (reset on successful install).
  uint32_t Failures = 0;
  /// Do not retry recording until the loop's hit counter passes this.
  uint32_t BackoffUntil = 0;
  /// A method-tier compile job for this loop is in flight.
  bool MethodCompilePending = false;
};

/// What the monitor should do with a loop after a policy event.
enum class TierAction : uint8_t {
  Stay,    ///< No tier change.
  Promote, ///< Move Trace -> Method (build a method body).
  Demote,  ///< Move to Interpreter (patch the header to Nop3).
};

/// The tier decision function. Constructed once per monitor from
/// EngineOptions; holds no per-loop state.
class TierPolicy {
public:
  explicit TierPolicy(const EngineOptions &O)
      : Mode(O.Tier), MethodJitThreshold(O.MethodJitThreshold),
        MaxRecordingFailures(O.MaxRecordingFailures),
        BlacklistBackoff(O.BlacklistBackoff),
        BlacklistingEnabled(O.EnableBlacklisting) {}

  TierMode mode() const { return Mode; }

  /// Whether loops ever enter the trace pipeline at all.
  bool tracingEnabled() const { return Mode != TierMode::Method; }

  /// Tier a freshly discovered loop starts in.
  Tier initialTier() const {
    return Mode == TierMode::Method ? Tier::Method : Tier::Trace;
  }

  /// A root-anchored recording aborted. Mutates the failure/backoff
  /// bookkeeping exactly like the historical blacklist path and answers
  /// what the monitor should do. \p Counts is abortCounts(Why) (forgiven
  /// aborts back off briefly but never accumulate failures); \p HitCount
  /// is the loop's current hit counter.
  TierAction onRootAbort(TierState &S, AbortReason Why, bool Counts,
                         uint32_t HitCount) const {
    if (S.Current != Tier::Trace)
      return TierAction::Stay;
    // Megamorphic sites never trace well: in hybrid mode promote on first
    // sight instead of burning MaxRecordingFailures attempts.
    if (Mode == TierMode::Hybrid && Counts &&
        Why == AbortReason::MegamorphicSite)
      return TierAction::Promote;
    if (!BlacklistingEnabled)
      return TierAction::Stay;
    if (!Counts) {
      S.BackoffUntil = HitCount + 4;
      return TierAction::Stay;
    }
    ++S.Failures;
    S.BackoffUntil = HitCount + BlacklistBackoff;
    if (S.Failures >= MaxRecordingFailures)
      return Mode == TierMode::Hybrid ? TierAction::Promote
                                      : TierAction::Demote;
    return TierAction::Stay;
  }

  /// A side exit of this loop's tree crossed MaxRecordingFailures failed
  /// branch recordings. Trace mode keeps the historical behavior (block
  /// that exit, keep the tree); hybrid mode gives up on tracing the tree
  /// and promotes the whole loop.
  TierAction onBranchOverflow(TierState &S) const {
    if (Mode == TierMode::Hybrid && S.Current == Tier::Trace)
      return TierAction::Promote;
    return TierAction::Stay;
  }

  /// The method builder or backend failed for this loop. There is no
  /// lower compiled tier to fall back to, so the loop goes to the
  /// interpreter for good.
  TierAction onMethodCompileFailed(TierState &) const {
    return TierAction::Demote;
  }

  /// Whether a Method-tier loop with \p HitCount hits should compile now.
  bool shouldMethodCompile(const TierState &S, uint32_t HitCount,
                           bool HasMethodFrag) const {
    return S.Current == Tier::Method && !HasMethodFrag &&
           !S.MethodCompilePending && HitCount >= MethodJitThreshold;
  }

private:
  TierMode Mode;
  uint32_t MethodJitThreshold;
  uint32_t MaxRecordingFailures;
  uint32_t BlacklistBackoff;
  bool BlacklistingEnabled;
};

} // namespace tracejit

#endif // TRACEJIT_TRACE_TIER_H
