//===- monitor.cpp - The trace monitor (Fig. 2 state machine) -------------------===//

#include "trace/monitor.h"

#include <cassert>
#include <cstdio>

#include "api/engine.h"
#include "interp/natives.h"
#include "jit/executor.h"
#include "jit/method_builder.h"
#include "lir/opt.h"
#include "lir/verify.h"
#include "trace/helpers.h"

namespace tracejit {

TraceMonitorImpl::TraceMonitorImpl(VMContext &C, Interpreter &I)
    : Ctx(C), Interp(I), Policy(C.Opts) {
  if (Ctx.Opts.JitBackend == Backend::Native) {
    // Off-thread compilation needs the dual-mapped pool so the worker can
    // emit (write view) while this thread runs traces (exec view).
    bool OffThread = Ctx.Opts.OffThreadCompile;
    Native = std::make_unique<NativeBackend>(
        Ctx.Opts.CodeCacheBytes, &Ctx.Opts.FaultInjector, OffThread);
    if (!Native->valid()) {
      // Executable memory is unavailable (hardened kernel, no dual-map
      // support, or injected ExecMapFail): fall back to the LIR executor,
      // loudly.
      Native.reset();
      ++Ctx.Stats.BackendFallbacks;
      if (Ctx.EventListener) {
        JitEvent E;
        E.Kind = JitEventKind::BackendFallback;
        emitEvent(E);
      }
    } else if (OffThread) {
      uint32_t Depth = Ctx.Opts.CompileQueueDepth;
      if (Ctx.Opts.SharedCompileService) {
        Queue = Ctx.Opts.SharedCompileService->createClient(Depth);
      } else {
        OwnService = std::make_unique<CompileService>();
        Queue = OwnService->createClient(Depth);
      }
    }
  }
  // Root everything compiled traces point at (§6: the trace cache keeps
  // its embedded objects alive).
  Ctx.TheHeap.addRootProvider([this](Marker &M) {
    for (auto &F : Fragments)
      for (Value &V : F->EmbeddedRoots)
        M.markValue(V);
  });
}

TraceMonitorImpl::~TraceMonitorImpl() {
  // The client must die before the fragments and the backend a worker
  // compile could still be touching: its destructor pulls queued jobs and
  // waits out an in-flight one. Then the private service (if any) joins
  // its thread. Member destruction order would get this right too; being
  // explicit keeps the invariant visible and independent of declaration
  // shuffles.
  Queue.reset();
  OwnService.reset();
}

VMStats &TraceMonitorImpl::stats() { return Ctx.Stats; }

void TraceMonitorImpl::emitEvent(const JitEvent &E) { Ctx.emitEvent(E); }

void TraceMonitorImpl::collectFragmentProfiles(
    std::vector<FragmentProfile> &Out) const {
  Out.reserve(Out.size() + Fragments.size());
  for (const auto &F : Fragments) {
    if (F->CompilePending)
      continue; // the worker owns NativeSize/PatchAddrs right now
    FragmentProfile P;
    P.Id = F->Id;
    P.Generation = F->Generation;
    P.IsRoot = F->Kind == FragmentKind::Root;
    P.IsMethod = F->Kind == FragmentKind::Method;
    P.TierName = P.IsMethod ? tierName(Tier::Method) : tierName(Tier::Trace);
    P.ScriptId = F->AnchorScript ? F->AnchorScript->Id : ~0u;
    P.AnchorPc = F->AnchorPc;
    P.Enters = F->Enters;
    P.Iterations = F->Iterations;
    P.BytecodesCovered = F->BytecodesCovered;
    P.LirRecorded = F->LirRecorded;
    P.LirAfterFilters = F->LirAfterFilters;
    P.NativeBytes = F->NativeSize;
    P.Guards.reserve(F->Exits.size());
    for (const auto &E : F->Exits) {
      GuardProfile G;
      G.ExitId = E->Id;
      G.ExitKindRaw = (uint8_t)E->Kind;
      G.ExitKindName = exitKindName(E->Kind);
      G.Pc = E->Pc;
      G.Hits = E->Hits;
      G.Stitched = E->Target != nullptr;
      P.Guards.push_back(G);
    }
    Out.push_back(std::move(P));
  }
}

Fragment *TraceMonitorImpl::newFragment(FragmentKind K) {
  auto F = std::make_unique<Fragment>();
  F->Id = NextFragmentId++;
  F->Generation = CacheGeneration;
  F->Kind = K;
  // Per-fragment LIR arena: the buffer travels with the fragment (into a
  // compile job, off to the worker) and dies with it, so no global arena
  // reset can free LIR under an in-flight compile.
  F->LirArena = std::make_unique<Arena>();
  Fragment *P = F.get();
  Fragments.push_back(std::move(F));
  return P;
}

const CallInfo *TraceMonitorImpl::mathCallInfo(NativeFn Boxed) {
  auto It = MathCIs.find(Boxed);
  if (It != MathCIs.end())
    return It->second.get();
  const TraceableNative *TN = lookupTraceableNative(Boxed);
  assert(TN && "not a traceable native");
  const CallInfo *Proto = TN->Sig == TraceableSig::D_D ? &helperCalls().MathD_D
                          : TN->Sig == TraceableSig::D_DD
                              ? &helperCalls().MathD_DD
                              : &helperCalls().MathD_CTX;
  auto CI = std::make_unique<CallInfo>(
      makeMathCallInfo(*Proto, TN->RawFn, TN->Name));
  const CallInfo *P = CI.get();
  MathCIs.emplace(Boxed, std::move(CI));
  return P;
}

LoopState *TraceMonitorImpl::loopState(FunctionScript *S, uint16_t LoopId) {
  LoopRecord &L = S->Loops[LoopId];
  if (!L.State) {
    auto LS = std::make_unique<LoopState>();
    LS->Script = S;
    LS->Loop = &L;
    LS->Tier.Current = Policy.initialTier();
    if (LS->Tier.Current == Tier::Method)
      LS->Tier.LastChange = TierChangeReason::MethodByPolicy;
    L.State = LS.get();
    LoopStates.push_back(std::move(LS));
  }
  return L.State;
}

uint64_t TraceMonitorImpl::oracleKeyForSlot(
    uint32_t Slot, const std::vector<FrameEntry> &Frames) {
  uint32_t NG = Ctx.Globals.size();
  if (Slot < NG)
    return Oracle::globalKey(Slot);
  uint32_t StackIdx = Slot - NG;
  for (const FrameEntry &F : Frames) {
    if (StackIdx >= F.Base && StackIdx < F.Base + F.Script->NumLocals)
      return Oracle::localKey(F.Script->Id, StackIdx - F.Base);
  }
  return 0; // operand-stack temporary: not oracle-tracked
}

// --- Entry type maps and TAR transfer -----------------------------------------------

TypeMap TraceMonitorImpl::buildEntryTypeMap(uint32_t Sp) {
  TypeMap M;
  M.NumGlobals = Ctx.Globals.size();
  M.Types.resize(M.NumGlobals + Sp);
  std::vector<FrameEntry> Frames;
  for (const Frame &F : Interp.frames())
    Frames.push_back({F.Script, F.Base, F.ReturnPc});

  bool UseOracle = Ctx.Opts.EnableOracle;
  for (uint32_t G = 0; G < M.NumGlobals; ++G) {
    TraceType T = traceTypeOf(Ctx.Globals.Values[G]);
    if (UseOracle && T == TraceType::Int &&
        TheOracle.isDemoted(Oracle::globalKey(G)))
      T = TraceType::Double;
    M.Types[G] = T;
  }
  Value *Stack = Interp.stackData();
  for (uint32_t I = 0; I < Sp; ++I) {
    TraceType T = traceTypeOf(Stack[I]);
    if (UseOracle && T == TraceType::Int) {
      uint64_t Key = oracleKeyForSlot(M.NumGlobals + I, Frames);
      if (Key && TheOracle.isDemoted(Key))
        T = TraceType::Double;
    }
    M.Types[M.NumGlobals + I] = T;
  }
  return M;
}

static uint64_t unboxForTar(const Value &V, TraceType T) {
  switch (T) {
  case TraceType::Boxed:
    return V.bits(); // method tier: the raw tagged word travels as-is
  case TraceType::Int:
    return (uint64_t)(uint32_t)V.toInt();
  case TraceType::Double: {
    double D = V.numberValue(); // int values demoted by the oracle convert
    uint64_t W;
    __builtin_memcpy(&W, &D, 8);
    return W;
  }
  case TraceType::Object:
    return (uint64_t)(uintptr_t)V.toObject();
  case TraceType::String:
    return (uint64_t)(uintptr_t)V.toString();
  case TraceType::Boolean:
    return V.toBoolean() ? 1 : 0;
  case TraceType::Null:
  case TraceType::Undefined:
    return 0;
  }
  return 0;
}

static Value boxFromTar(VMContext &Ctx, uint64_t W, TraceType T) {
  switch (T) {
  case TraceType::Boxed:
    return Value::fromBits(W);
  case TraceType::Int:
    return Value::makeInt((int32_t)(uint32_t)W);
  case TraceType::Double: {
    double D;
    __builtin_memcpy(&D, &W, 8);
    return Ctx.TheHeap.boxDouble(D);
  }
  case TraceType::Object:
    return Value::makeObject((Object *)(uintptr_t)W);
  case TraceType::String:
    return Value::makeString((String *)(uintptr_t)W);
  case TraceType::Boolean:
    return Value::makeBoolean((W & 0xffffffff) != 0);
  case TraceType::Null:
    return Value::null();
  case TraceType::Undefined:
    return Value::undefined();
  }
  return Value::undefined();
}

void TraceMonitorImpl::fillTar(const TypeMap &Types, uint32_t Sp,
                               uint64_t *Tar) {
  uint32_t NG = Types.NumGlobals;
  for (uint32_t G = 0; G < NG; ++G)
    Tar[G] = unboxForTar(Ctx.Globals.Values[G], Types.Types[G]);
  Value *Stack = Interp.stackData();
  for (uint32_t I = 0; I < Sp; ++I)
    Tar[NG + I] = unboxForTar(Stack[I], Types.Types[NG + I]);
}

void TraceMonitorImpl::restoreFromExit(ExitDescriptor *E,
                                       const uint64_t *Tar) {
  uint32_t NG = E->Types.NumGlobals;

  // "It pops or synthesizes interpreter JavaScript call stack frames as
  // needed. Finally, it copies the imported variables back from the trace
  // activation record to the interpreter state." (§6.1)
  // Scripts and bases are static per descriptor; return pcs come from the
  // dynamic call-stack area so traces entered from different call sites
  // resume at the right place.
  auto &Frames = Interp.frames();
  Frames.clear();
  for (size_t D = 0; D < E->Frames.size(); ++D) {
    const FrameEntry &F = E->Frames[D];
    uint32_t Rp = D == 0 ? F.ReturnPc : Ctx.FrameReturnPcs[D];
    Frames.push_back({F.Script, F.Base, Rp});
  }
  Interp.setStackTop(E->Sp);
  Interp.setCurrentPc(E->Pc);

  for (uint32_t G = 0; G < NG; ++G)
    Ctx.Globals.Values[G] = boxFromTar(Ctx, Tar[G], E->Types.Types[G]);
  Value *Stack = Interp.stackData();
  for (uint32_t I = 0; I < E->Sp; ++I)
    Stack[I] = boxFromTar(Ctx, Tar[NG + I], E->Types.Types[NG + I]);
}

ExitDescriptor *TraceMonitorImpl::executeFragment(Fragment *Frag) {
  bool Stats = Ctx.Opts.CollectStats;
  // Size the TAR generously: any fragment reachable from Frag (branches,
  // peers, nested trees) fits below the monitor-wide maximum.
  uint32_t Slots = 64;
  for (auto &F : Fragments)
    if (F->RequiredTarSlots > Slots)
      Slots = F->RequiredTarSlots;

  // Re-entrant entry (a method-tier helper ran a nested call whose
  // dispatch reached another compiled loop): the outer fragment's native
  // frame still points into TarBuffer, so growing it would dangle that
  // pointer. Give the inner execution its own stack-local TAR instead.
  bool Reentrant = Ctx.OnTrace;
  std::vector<uint8_t> LocalTar;
  std::vector<uint8_t> &TarVec = Reentrant ? LocalTar : TarBuffer;
  if (TarVec.size() < (size_t)(Slots + 64) * 8)
    TarVec.resize((size_t)(Slots + 64) * 8);
  uint64_t *Tar = reinterpret_cast<uint64_t *>(TarVec.data());

  uint32_t Sp = Interp.stackTop();
  fillTar(Frag->EntryTypes, Sp, Tar);

  // Seed the dynamic call-stack area with the live frames' return pcs.
  {
    auto &Frames = Interp.frames();
    for (size_t D = 0; D < Frames.size() && D < Ctx.FrameReturnPcs.size();
         ++D)
      Ctx.FrameReturnPcs[D] = Frames[D].ReturnPc;
  }

  if (Stats)
    Ctx.Stats.switchTo(Activity::Native);
  Ctx.OnTrace = true;
  ExitDescriptor *E;
  if (Frag->NativeEntry && Native) {
    if (Native->ensureExecutable()) {
      E = Native->enter(TarVec.data(), Frag);
    } else {
      // W^X flip to RX failed: the native code exists but cannot legally
      // run. The LIR body is the reference semantics -- use it.
      ++Ctx.Stats.ProtectFaults;
      E = LirExecutor::run(Frag, TarVec.data(), &Ctx);
    }
  } else {
    E = LirExecutor::run(Frag, TarVec.data(), &Ctx);
  }
  Ctx.OnTrace = Reentrant; // restore: an outer fragment may still be live
  if (Stats)
    Ctx.Stats.switchTo(Activity::ExitOverhead);

  ++Ctx.Stats.TraceEnters;
  ++Ctx.Stats.SideExits;
  ++Frag->Enters;
  if (E && E->Kind == ExitKind::Nested) {
    assert(Ctx.LastNestedExit && "nested exit without inner descriptor");
    E = Ctx.LastNestedExit;
    Ctx.LastNestedExit = nullptr;
  }
  assert(E && "fragment returned no exit");
  ++E->Hits;
  if (Frag->EntryExit && E == Frag->EntryExit) {
    // Entry deopt: a hoisted guard in the prologue failed before the first
    // iteration ran. The prologue is side-effect-free, so semantically we
    // never entered -- but re-entering immediately would livelock. Back off
    // for a couple of header hits; retire the tree's entry permanently once
    // the deopt count shows its hoisted assumptions just don't hold here.
    ++Frag->EntryDeopts;
    ++Ctx.Stats.EntryDeopts;
    LoopState *LS = Frag->Loop ? Frag->Loop->State : nullptr;
    Frag->EnterBlockedUntil =
        Frag->EntryDeopts >= Ctx.Opts.EntryDeoptLimit
            ? UINT32_MAX
            : (LS ? LS->HitCount : 0) + 2;
  }
  if (Ctx.EventListener) {
    JitEvent Ev;
    Ev.Kind = JitEventKind::SideExit;
    Ev.FragmentId = E->Parent ? E->Parent->Id : Frag->Id;
    Ev.ScriptId = !E->Frames.empty() && E->Frames.back().Script
                      ? E->Frames.back().Script->Id
                      : ~0u;
    Ev.Pc = E->Pc;
    Ev.ExitId = E->Id;
    Ev.ExitKindRaw = (uint8_t)E->Kind;
    Ev.Arg0 = E->Hits;
    emitEvent(Ev);
  }

  restoreFromExit(E, Tar);
  if (Stats)
    Ctx.Stats.switchTo(Activity::Monitor);
  return E;
}

// --- Recording lifecycle -----------------------------------------------------------------

void TraceMonitorImpl::startRecording(TraceRecorder::Mode Mode, LoopState *LS,
                                      FunctionScript *Script,
                                      uint32_t AnchorPc,
                                      ExitDescriptor *AnchorExit) {
  assert(!Recorder);
  Fragment *F = newFragment(Mode == TraceRecorder::Mode::Root
                                ? FragmentKind::Root
                                : FragmentKind::Branch);
  F->AnchorScript = LS->Script;
  F->AnchorPc = AnchorPc;
  F->Loop = LS->Loop;
  F->EntryTypes =
      AnchorExit ? AnchorExit->Types : buildEntryTypeMap(Interp.stackTop());
  F->EntryFrameCount = (uint32_t)Interp.frames().size();
  for (const Frame &Fr : Interp.frames())
    F->EntryFrames.push_back({Fr.Script, Fr.Base, 0});
  if (Mode == TraceRecorder::Mode::Root) {
    F->Root = F;
  } else {
    F->Root = AnchorExit->Parent->Root;
  }
  Recorder = std::make_unique<TraceRecorder>(Ctx, Interp, *this, F, Mode,
                                             LS->Loop, AnchorExit);
  RecorderLoopState = LS;
  ++Ctx.Stats.TracesStarted;
  if (Ctx.EventListener) {
    JitEvent E;
    E.Kind = JitEventKind::RecordStart;
    E.FragmentId = F->Id;
    E.ScriptId = LS->Script ? LS->Script->Id : ~0u;
    E.Pc = AnchorPc;
    E.Arg0 = Mode == TraceRecorder::Mode::Root ? 0 : 1;
    emitEvent(E);
  }
  if (Ctx.Opts.CollectStats)
    Ctx.Stats.switchTo(Activity::RecordInterpret);
  (void)Script;
}

void TraceMonitorImpl::abortRecording(AbortReason Why,
                                      bool CountsTowardBlacklist) {
  if (!Recorder)
    return;
  ++Ctx.Stats.TracesAborted;
  ++Ctx.Stats.AbortsByReason[(size_t)Why];
  LoopState *LS = RecorderLoopState;
  Fragment *F = Recorder->fragment();
  bool WasBranch = Recorder->mode() == TraceRecorder::Mode::Branch;
  F->Body.clear(); // fragment stays allocated (ids/roots) but is inert
  Recorder.reset();
  RecorderLoopState = nullptr;
  if (Ctx.EventListener) {
    JitEvent E;
    E.Kind = JitEventKind::RecordAbort;
    E.Reason = Why;
    E.FragmentId = F->Id;
    E.ScriptId = F->AnchorScript ? F->AnchorScript->Id : ~0u;
    E.Pc = F->AnchorPc;
    emitEvent(E);
  }

  if (WasBranch) {
    // Branch failures are tracked per side exit, not per loop: the tree is
    // already useful and must not be blacklisted wholesale.
    if (RecorderAnchorExit && CountsTowardBlacklist)
      ++RecorderAnchorExit->FailedRecordings;
    RecorderAnchorExit = nullptr;
    if (Ctx.Opts.CollectStats)
      Ctx.Stats.switchTo(Activity::Interpret);
    return;
  }

  if (LS) {
    // The policy mutates the failure/backoff counters (identically to the
    // historical blacklist path, including §4.2 forgiveness) and answers
    // whether the loop changes tier: trace mode demotes at the failure
    // cap, hybrid mode promotes to the method compiler instead -- and
    // promotes immediately on a megamorphic-site abort, which no amount
    // of re-recording will fix.
    TierAction A =
        Policy.onRootAbort(LS->Tier, Why, CountsTowardBlacklist, LS->HitCount);
    applyTierAction(LS, A,
                    A == TierAction::Demote ? TierChangeReason::Blacklisted
                    : Why == AbortReason::MegamorphicSite
                        ? TierChangeReason::MegamorphicAbort
                        : TierChangeReason::RepeatedAborts);
  }
  if (Ctx.Opts.CollectStats)
    Ctx.Stats.switchTo(Activity::Interpret);
}

void TraceMonitorImpl::applyTierAction(LoopState *LS, TierAction A,
                                       TierChangeReason Why) {
  if (A == TierAction::Promote)
    promoteToMethod(LS, Why);
  else if (A == TierAction::Demote)
    demoteToInterpreter(LS, Why);
}

void TraceMonitorImpl::promoteToMethod(LoopState *LS, TierChangeReason Why) {
  if (LS->Tier.Current != Tier::Trace)
    return;
  LS->Tier.Current = Tier::Method;
  LS->Tier.LastChange = Why;
  ++Ctx.Stats.LoopsPromoted;
  if (Ctx.EventListener) {
    JitEvent E;
    E.Kind = JitEventKind::TierPromoted;
    E.ScriptId = LS->Script ? LS->Script->Id : ~0u;
    E.Pc = LS->Loop->HeaderPc;
    E.Arg0 = (uint32_t)Why;
    E.Arg1 = LS->Tier.Failures;
    emitEvent(E);
  }
  // Unlike demotion, the header keeps its LoopHeader op: the monitor must
  // keep seeing this loop to compile and enter the method body.
}

void TraceMonitorImpl::demoteToInterpreter(LoopState *LS,
                                           TierChangeReason Why) {
  if (LS->Tier.Current == Tier::Interpreter)
    return;
  LS->Tier.Current = Tier::Interpreter;
  LS->Tier.LastChange = Why;
  ++Ctx.Stats.LoopsBlacklisted;
  ++Ctx.Stats.LoopsDemoted;
  if (Ctx.EventListener) {
    JitEvent E;
    E.Kind = JitEventKind::Blacklisted;
    E.ScriptId = LS->Script ? LS->Script->Id : ~0u;
    E.Pc = LS->Loop->HeaderPc;
    E.Arg0 = LS->Tier.Failures;
    emitEvent(E);
  }
  // "To blacklist a fragment, we simply replace the loop header no-op with
  // a regular no-op. Thus, the interpreter will never again even call into
  // the trace monitor." (§3.3)
  LS->Script->Code[LS->Loop->HeaderPc] = (uint8_t)Op::Nop3;
}

void TraceMonitorImpl::linkUnstableExits(LoopState *LS, Fragment *NewPeer) {
  auto FramesEqual = [&](const ExitDescriptor *E) {
    if (E->Frames.size() != NewPeer->EntryFrames.size())
      return false;
    for (size_t D = 0; D < E->Frames.size(); ++D)
      if (E->Frames[D].Script != NewPeer->EntryFrames[D].Script ||
          E->Frames[D].Base != NewPeer->EntryFrames[D].Base)
        return false;
    return true;
  };
  // Existing unstable tails that match the new peer's entry: link them.
  for (ExitDescriptor *E : LS->UnstableExits) {
    if (!E->Target && E->Types == NewPeer->EntryTypes && FramesEqual(E)) {
      if (Native)
        Native->patchExitTo(E, NewPeer);
      else
        E->Target = NewPeer;
      ++Ctx.Stats.UnstableLinks;
      if (Ctx.EventListener) {
        JitEvent Ev;
        Ev.Kind = JitEventKind::StitchedTransfer;
        Ev.FragmentId = E->Parent ? E->Parent->Id : ~0u;
        Ev.ExitId = E->Id;
        Ev.Arg0 = NewPeer->Id;
        Ev.Arg1 = 1; // unstable-peer link, not a branch stitch
        emitEvent(Ev);
      }
    }
  }
}

void TraceMonitorImpl::finishRecording(const std::vector<Fragment *> &Peers) {
  assert(Recorder);
  LoopState *LS = RecorderLoopState;
  bool Stats = Ctx.Opts.CollectStats;
  if (Stats)
    Ctx.Stats.switchTo(Activity::Compile);

  std::unique_ptr<TraceRecorder> R = std::move(Recorder);
  RecorderLoopState = nullptr;

  if (R->status() == TraceRecorder::Status::Recording)
    R->closeLoop(Peers);
  if (R->status() != TraceRecorder::Status::Finished) {
    if (Stats)
      Ctx.Stats.switchTo(Activity::Interpret);
    Recorder = std::move(R); // restore so abortRecording can bookkeep
    abortRecording(Recorder->abortReason(), true);
    return;
  }

  Fragment *F = R->fragment();
  Ctx.Stats.LirEmitted += F->Body.size();

  // Whole-trace optimizer (§5.1 backward filters + loop passes). Runs here,
  // before the compile job is built, so off-thread compilation and the LIR
  // executor both see the optimized (and possibly prologue-split) body.
  optimizeTrace(*F, Ctx.Opts.Passes, F->EntryTypes.NumGlobals, &Ctx.Stats);
  F->LirAfterFilters = (uint32_t)F->Body.size();

  if (Ctx.Opts.DumpLIR) {
    fprintf(stderr, "--- fragment %u (%s) entry %s\n%s", F->Id,
            F->Kind == FragmentKind::Root ? "root" : "branch",
            F->EntryTypes.describe().c_str(),
            formatBody(F->Body, F->PrologueEnd).c_str());
  }

  if (Ctx.Opts.VerifyLir) {
    // Whole-trace verification after the backward filters, before the
    // compiler: a trace that breaks the SSA/type/guard/exit-map invariants
    // aborts and blacklists instead of compiling garbage.
    VerifyError VErr;
    if (!verifyTrace(*F, F->EntryTypes.NumGlobals, VErr, &Ctx.Stats)) {
      fprintf(stderr, "tracejit: LIR verification failed: %s\n",
              VErr.describe().c_str());
      F->Body.clear();
      Recorder = std::move(R); // restore so abortRecording can bookkeep
      RecorderLoopState = LS;
      abortRecording(AbortReason::VerifyFailed, true);
      return;
    }
  } else {
    // Legacy debug typechecker (superseded by the verifier, kept for runs
    // that explicitly turn VerifyLir off).
    std::string TypeErr = typecheckBody(F->Body);
    if (!TypeErr.empty()) {
      fprintf(stderr, "tracejit: LIR typecheck failed: %s\n", TypeErr.c_str());
      F->Body.clear();
      ++Ctx.Stats.AbortsByReason[(size_t)AbortReason::TypecheckFailed];
      if (Ctx.EventListener) {
        JitEvent E;
        E.Kind = JitEventKind::RecordAbort;
        E.Reason = AbortReason::TypecheckFailed;
        E.FragmentId = F->Id;
        E.ScriptId = F->AnchorScript ? F->AnchorScript->Id : ~0u;
        E.Pc = F->AnchorPc;
        emitEvent(E);
      }
      if (Stats)
        Ctx.Stats.switchTo(Activity::Interpret);
      return;
    }
  }

  if (Native && Queue) {
    // Off-thread pipeline: package the verified recording as a job and get
    // back to interpreting. The fragment (with its own LIR arena) stays in
    // Fragments but is owned by the worker until publication; the
    // CompilePending flags block duplicate recordings and profile reads.
    CompileJob J;
    J.Frag = F;
    J.Backend = Native.get();
    J.Ctx = &Ctx;
    J.Generation = CacheGeneration;
    J.LS = LS;
    J.IsRoot = F->Kind == FragmentKind::Root;
    J.AnchorExit = J.IsRoot ? nullptr : RecorderAnchorExit;
    J.FragmentId = F->Id;
    J.ScriptId = F->AnchorScript ? F->AnchorScript->Id : ~0u;
    J.AnchorPc = F->AnchorPc;
    if (!Queue->trySubmit(J)) {
      // Backpressure: the queue is full (or shutting down). Drop the
      // recording with the usual abort backoff rather than buffering
      // unboundedly; the loop stays hot and will re-record once the
      // backlog clears.
      Recorder = std::move(R); // restore so abortRecording can bookkeep
      RecorderLoopState = LS;
      abortRecording(AbortReason::CompileQueueFull, true);
      return;
    }
    F->CompilePending = true;
    if (J.AnchorExit)
      J.AnchorExit->CompilePending = true;
    ++LS->PendingCompiles;
    ++Ctx.Stats.CompileJobsQueued;
    if (Ctx.EventListener) {
      JitEvent E;
      E.Kind = JitEventKind::CompileJobQueued;
      E.FragmentId = F->Id;
      E.ScriptId = J.ScriptId;
      E.Pc = F->AnchorPc;
      E.Arg0 = Queue->pendingCount();
      emitEvent(E);
    }
    RecorderAnchorExit = nullptr;
    if (Stats)
      Ctx.Stats.switchTo(Activity::Interpret);
    return;
  }

  if (Native) {
    CompileResult CR = Native->compile(F, &Ctx);
    if (CR == CompileResult::Ok) {
      if (Ctx.Opts.DumpAssembly)
        fprintf(stderr, "--- fragment %u native: %u bytes at %p\n", F->Id,
                F->NativeSize, (void *)F->NativeEntry);
    } else {
      // Compile-failure governance: the failed compile already returned
      // its pool reservation; treat the recording as aborted so the
      // blacklist backoff stops a loop whose trace never fits from
      // burning recorder time forever. Pool exhaustion additionally
      // schedules a whole-cache flush, which runs at the next loop edge
      // (never here -- this stack frame still holds the doomed fragment).
      if (CR == CompileResult::PoolExhausted)
        FlushPending = true;
      Recorder = std::move(R); // restore so abortRecording can bookkeep
      RecorderLoopState = LS;
      abortRecording(compileAbortReason(CR), true);
      return;
    }
  }

  installCompiledFragment(
      F, LS, F->Kind == FragmentKind::Root ? nullptr : RecorderAnchorExit);
  RecorderAnchorExit = nullptr;

  if (Stats)
    Ctx.Stats.switchTo(Activity::Interpret);
}

void TraceMonitorImpl::installCompiledFragment(Fragment *F, LoopState *LS,
                                               ExitDescriptor *Anchor) {
  ++Ctx.Stats.TracesCompleted;
  if (Ctx.EventListener) {
    JitEvent E;
    E.Kind = F->Kind == FragmentKind::Root ? JitEventKind::TreeCompiled
                                           : JitEventKind::BranchCompiled;
    E.FragmentId = F->Id;
    E.ScriptId = F->AnchorScript ? F->AnchorScript->Id : ~0u;
    E.Pc = F->AnchorPc;
    E.Arg0 = F->LirAfterFilters;
    E.Arg1 = F->NativeSize;
    emitEvent(E);
  }
  if (F->Kind == FragmentKind::Root) {
    ++Ctx.Stats.TreesCompiled;
    LS->Peers.push_back(F);
    linkUnstableExits(LS, F);
    LS->Tier.Failures = 0; // forgiveness: the tree is making progress
  } else {
    ++Ctx.Stats.BranchesCompiled;
    // Stitch: patch the parent guard's exit to jump into this branch (§6.2).
    if (Anchor) {
      if (Native)
        Native->patchExitTo(Anchor, F);
      else
        Anchor->Target = F;
      ++Ctx.Stats.StitchedTransfers;
      if (Ctx.EventListener) {
        JitEvent E;
        E.Kind = JitEventKind::StitchedTransfer;
        E.FragmentId = Anchor->Parent ? Anchor->Parent->Id : ~0u;
        E.ExitId = Anchor->Id;
        E.Arg0 = F->Id;
        emitEvent(E);
      }
    }
  }

  // Register this fragment's unstable tail (if any) for future linking.
  for (auto &E : F->Exits)
    if (E->Kind == ExitKind::Unstable)
      LS->UnstableExits.push_back(E.get());
  // And try to link it against peers that already exist.
  for (Fragment *P : LS->Peers)
    linkUnstableExits(LS, P);
}

// --- Method tier (trace/tier.h, jit/method_builder.h) ------------------------

void TraceMonitorImpl::requestMethodCompile(LoopState *LS) {
  bool Stats = Ctx.Opts.CollectStats;
  if (Stats)
    Ctx.Stats.switchTo(Activity::Compile);
  FunctionScript *S = LS->Script;
  Fragment *F = newFragment(FragmentKind::Method);
  F->AnchorScript = S;
  F->AnchorPc = LS->Loop->HeaderPc;
  F->Loop = LS->Loop;
  F->Root = F;

  auto Fail = [&]() {
    F->Body.clear();
    applyTierAction(LS, Policy.onMethodCompileFailed(LS->Tier),
                    TierChangeReason::MethodCompileFailed);
    if (Stats)
      Ctx.Stats.switchTo(Activity::Interpret);
  };

  if (!buildMethodBody(Ctx, Interp, S, LS->Loop, F)) {
    Fail();
    return;
  }
  Ctx.Stats.LirEmitted += F->Body.size();

  if (Ctx.Opts.DumpLIR)
    fprintf(stderr, "--- fragment %u (method) entry %s\n%s", F->Id,
            F->EntryTypes.describe().c_str(), formatBody(F->Body).c_str());

  if (Ctx.Opts.VerifyLir) {
    VerifyError VErr;
    if (!verifyMethodBody(*F, F->EntryTypes.NumGlobals, VErr, &Ctx.Stats)) {
      fprintf(stderr, "tracejit: method LIR verification failed: %s\n",
              VErr.describe().c_str());
      Fail();
      return;
    }
  }

  if (Native && Queue) {
    CompileJob J;
    J.Frag = F;
    J.Backend = Native.get();
    J.Ctx = &Ctx;
    J.Generation = CacheGeneration;
    J.LS = LS;
    J.IsRoot = false;
    J.IsMethod = true;
    J.AnchorExit = nullptr;
    J.FragmentId = F->Id;
    J.ScriptId = S->Id;
    J.AnchorPc = F->AnchorPc;
    if (!Queue->trySubmit(J)) {
      // Backpressure: drop the body, keep the tier. The loop stays in the
      // method tier and retries at a later edge once the queue drains.
      F->Body.clear();
      if (Stats)
        Ctx.Stats.switchTo(Activity::Interpret);
      return;
    }
    F->CompilePending = true;
    LS->Tier.MethodCompilePending = true;
    ++LS->PendingCompiles;
    ++Ctx.Stats.CompileJobsQueued;
    if (Ctx.EventListener) {
      JitEvent E;
      E.Kind = JitEventKind::CompileJobQueued;
      E.FragmentId = F->Id;
      E.ScriptId = S->Id;
      E.Pc = F->AnchorPc;
      E.Arg0 = Queue->pendingCount();
      emitEvent(E);
    }
    if (Stats)
      Ctx.Stats.switchTo(Activity::Interpret);
    return;
  }

  if (Native) {
    CompileResult CR = Native->compile(F, &Ctx);
    if (CR != CompileResult::Ok) {
      if (CR == CompileResult::PoolExhausted)
        FlushPending = true;
      Fail();
      return;
    }
    if (Ctx.Opts.DumpAssembly)
      fprintf(stderr, "--- fragment %u native: %u bytes at %p\n", F->Id,
              F->NativeSize, (void *)F->NativeEntry);
  }

  installMethodFragment(LS, F);
  if (Stats)
    Ctx.Stats.switchTo(Activity::Interpret);
}

void TraceMonitorImpl::installMethodFragment(LoopState *LS, Fragment *F) {
  LS->MethodFrag = F;
  ++Ctx.Stats.MethodCompiles;
  if (Ctx.EventListener) {
    JitEvent E;
    E.Kind = JitEventKind::MethodCompiled;
    E.FragmentId = F->Id;
    E.ScriptId = F->AnchorScript ? F->AnchorScript->Id : ~0u;
    E.Pc = F->AnchorPc;
    E.Arg0 = F->LirRecorded;
    E.Arg1 = F->NativeSize;
    emitEvent(E);
  }
}

// --- Off-thread compile publication ------------------------------------------

void TraceMonitorImpl::drainCompileJobs() {
  if (!Queue || !Queue->hasCompleted())
    return;
  // Safe-point discipline: publication mutates LoopStates, patches code,
  // and may blacklist a loop (rewriting its header bytecode) -- none of
  // which may happen under an active recorder or a trace on the stack.
  if (Recorder || Ctx.OnTrace)
    return;
  std::vector<CompileJob> Done;
  Queue->drainCompleted(Done);
  for (CompileJob &J : Done)
    publishJob(J);
}

void TraceMonitorImpl::publishJob(CompileJob &J) {
  // Stale job: its generation was flushed (the fragment is already freed)
  // or the engine gave up on jitting. Drop it using only the copied ids --
  // Frag/LS/AnchorExit must not be dereferenced on this path (LS itself
  // survives flushes, but its pending count was reset by the flush).
  if (Disabled || J.Generation != CacheGeneration) {
    ++Ctx.Stats.CompileJobsDropped;
    if (Ctx.EventListener) {
      JitEvent E;
      E.Kind = JitEventKind::CompileJobDropped;
      E.FragmentId = J.FragmentId;
      E.ScriptId = J.ScriptId;
      E.Pc = J.AnchorPc;
      E.Arg0 = J.Generation;
      E.Arg1 = CacheGeneration;
      emitEvent(E);
    }
    return;
  }

  Fragment *F = J.Frag;
  LoopState *LS = J.LS;
  F->CompilePending = false;
  if (J.AnchorExit)
    J.AnchorExit->CompilePending = false;
  if (LS->PendingCompiles > 0)
    --LS->PendingCompiles;
  if (J.IsMethod)
    LS->Tier.MethodCompilePending = false;

  if (J.Result != CompileResult::Ok) {
    // The worker-side compile failed. Replicate the bookkeeping the inline
    // pipeline's abortRecording would have done (minus the recorder, which
    // is long gone): abort stats/event, branch-exit failure counting or
    // root blacklist backoff, and the pool-exhaustion flush request.
    AbortReason Why = compileAbortReason(J.Result);
    ++Ctx.Stats.CompileJobsDropped;
    ++Ctx.Stats.TracesAborted;
    ++Ctx.Stats.AbortsByReason[(size_t)Why];
    F->Body.clear(); // fragment stays allocated (ids/roots) but is inert
    if (Ctx.EventListener) {
      JitEvent E;
      E.Kind = JitEventKind::RecordAbort;
      E.Reason = Why;
      E.FragmentId = F->Id;
      E.ScriptId = J.ScriptId;
      E.Pc = F->AnchorPc;
      emitEvent(E);
    }
    if (J.Result == CompileResult::PoolExhausted)
      FlushPending = true;
    if (J.IsMethod) {
      applyTierAction(LS, Policy.onMethodCompileFailed(LS->Tier),
                      TierChangeReason::MethodCompileFailed);
    } else if (!J.IsRoot) {
      if (J.AnchorExit)
        ++J.AnchorExit->FailedRecordings;
    } else {
      TierAction A = Policy.onRootAbort(LS->Tier, Why, true, LS->HitCount);
      applyTierAction(LS, A,
                      A == TierAction::Demote
                          ? TierChangeReason::Blacklisted
                          : TierChangeReason::RepeatedAborts);
    }
    return;
  }

  ++Ctx.Stats.CompileJobsPublished;
  if (Ctx.Opts.DumpAssembly)
    fprintf(stderr, "--- fragment %u native: %u bytes at %p\n", F->Id,
            F->NativeSize, (void *)F->NativeEntry);
  if (J.IsMethod)
    installMethodFragment(LS, F);
  else
    installCompiledFragment(F, LS, J.IsRoot ? nullptr : J.AnchorExit);
}

void TraceMonitorImpl::waitCompileQueueIdle() {
  if (!Queue)
    return;
  Queue->waitIdle();
  drainCompileJobs();
}

void TraceMonitorImpl::flushRecorder() {
  if (Recorder)
    abortRecording(AbortReason::DispatchUnwound, false);
}

// --- Code-cache lifecycle ----------------------------------------------------

AbortReason TraceMonitorImpl::compileAbortReason(CompileResult R) {
  switch (R) {
  case CompileResult::PoolExhausted:
    return AbortReason::CompilePoolExhausted;
  case CompileResult::AssemblerOverflow:
    return AbortReason::CompileOverflow;
  case CompileResult::Unsupported:
    return AbortReason::CompileUnsupported;
  case CompileResult::Ok:
  case CompileResult::BackendUnavailable:
  case CompileResult::Fault:
    break;
  }
  return AbortReason::CompileFault;
}

size_t TraceMonitorImpl::codeCacheUsed() const {
  return Native ? Native->pool().used() : 0;
}

size_t TraceMonitorImpl::codeCacheCapacity() const {
  return Native ? Native->pool().capacity() : 0;
}

void TraceMonitorImpl::requestCacheFlush() {
  if (Disabled)
    return;
  if (Ctx.OnTrace || Recorder) {
    // Unsafe point: a trace is on the native stack (its code must not be
    // unmapped under it) or the recorder owns a live fragment. Defer; the
    // next loop edge outside both states runs the flush.
    FlushPending = true;
    return;
  }
  flushCacheNow();
}

void TraceMonitorImpl::flushCacheNow() {
  assert(!Recorder && !Ctx.OnTrace && "cache flush at an unsafe point");
  FlushPending = false;

  // Quiesce the background compiler before touching any fragment or the
  // pool: queued jobs are pulled back and dropped here (their fragments
  // are about to be freed), and an in-flight job is waited out so the pool
  // holds no reservation when reset() runs. A job that already completed
  // but was not yet drained survives in the client; the generation bump
  // below guarantees publishJob drops it at the next drain.
  if (Queue) {
    std::vector<CompileJob> Dropped;
    Queue->quiesce(&Dropped);
    for (CompileJob &J : Dropped) {
      ++Ctx.Stats.CompileJobsDropped;
      if (Ctx.EventListener) {
        JitEvent E;
        E.Kind = JitEventKind::CompileJobDropped;
        E.FragmentId = J.FragmentId;
        E.ScriptId = J.ScriptId;
        E.Pc = J.AnchorPc;
        E.Arg0 = J.Generation;
        E.Arg1 = CacheGeneration + 1; // the generation this flush creates
        emitEvent(E);
      }
    }
  }

  size_t Reclaimed = Native ? Native->flushCode() : 0;
  if (Ctx.EventListener) {
    for (auto &F : Fragments) {
      JitEvent E;
      E.Kind = JitEventKind::FragmentRetired;
      E.FragmentId = F->Id;
      E.ScriptId = F->AnchorScript ? F->AnchorScript->Id : ~0u;
      E.Pc = F->AnchorPc;
      E.Arg0 = F->NativeSize;
      E.Arg1 = F->Generation;
      emitEvent(E);
    }
  }
  Ctx.Stats.FragmentsRetired += Fragments.size();

  // Sever every path back into the retired code, then free it. LoopStates
  // survive (scripts point at them) but re-enter monitoring cold.
  for (auto &LS : LoopStates) {
    LS->Peers.clear();
    LS->UnstableExits.clear();
    LS->HitCount = 0;
    LS->Tier.BackoffUntil = 0;
    LS->Tier.Failures = 0;
    // Method bodies die with their generation like every fragment; the
    // loop stays in its tier (mirroring how demotion survives flushes)
    // and recompiles once it re-heats past MethodJitThreshold.
    LS->MethodFrag = nullptr;
    LS->Tier.MethodCompilePending = false;
    LS->PendingCompiles = 0; // in-flight jobs are stale as of this flush
  }
  RecorderAnchorExit = nullptr;
  Ctx.LastNestedExit = nullptr;
  Fragments.clear(); // each fragment's LIR arena dies with it

  // Inline caches are speculation state too: the flush contract is "reset
  // everything at once". (Oracle poly/mega-site knowledge survives, like
  // demotion facts.)
  Ctx.invalidateAllICs();

  ++CacheGeneration;
  ++FlushesThisEval;
  ++Ctx.Stats.CacheFlushes;
  Ctx.Stats.CacheBytesReclaimed += Reclaimed;
  if (Ctx.EventListener) {
    JitEvent E;
    E.Kind = JitEventKind::CacheFlush;
    E.Arg0 = CacheGeneration;
    E.Arg1 = Reclaimed;
    emitEvent(E);
  }
  if (FlushesThisEval >= Ctx.Opts.MaxCacheFlushes)
    disableJit();
}

void TraceMonitorImpl::disableJit() {
  if (Disabled)
    return;
  Disabled = true;
  FlushPending = false;
  ++Ctx.Stats.JitDisables;
  if (Ctx.EventListener) {
    JitEvent E;
    E.Kind = JitEventKind::JitDisabled;
    E.Arg0 = FlushesThisEval;
    emitEvent(E);
  }
}

void TraceMonitorImpl::syncStats() {
  // Figure 11: bytecodes "executed" natively = iterations through each
  // fragment times the bytecodes one pass covers.
  uint64_t Native64 = 0;
  for (auto &F : Fragments)
    Native64 += F->Iterations * F->BytecodesCovered;
  Ctx.Stats.BytecodesNative = Native64;
}

// --- Hooks -------------------------------------------------------------------------------------

void TraceMonitorImpl::recordOp(Interpreter &I, uint32_t Pc) {
  if (!Recorder)
    return;
  Recorder->recordOp(Pc);
  if (Recorder->status() == TraceRecorder::Status::Aborted) {
    abortRecording(Recorder->abortReason(), true);
  } else if (Recorder->status() == TraceRecorder::Status::Finished) {
    // Trace ended by leaving the loop (LoopExit tail).
    finishRecording(RecorderLoopState ? RecorderLoopState->Peers
                                      : std::vector<Fragment *>());
  }
}

uint32_t TraceMonitorImpl::handleInnerLoopHeader(uint32_t Pc,
                                                 uint16_t LoopId) {
  FunctionScript *S = Interp.currentFrame().Script;
  LoopState *InnerLS = loopState(S, LoopId);

  if (!Ctx.Opts.EnableNesting) {
    // Ablation: the "give up on outer loops" strawman (§4, Figure 7).
    abortRecording(AbortReason::NestingDisabled, true);
    return Pc; // fall through to normal handling by the caller
  }

  // §4.1: if the inner loop has a type-matching compiled tree, call it;
  // otherwise abort the outer recording and let the inner loop be recorded
  // first. The abort does not count toward blacklisting ("we should not
  // count such aborts ... as long as we are able to build up more traces
  // for the inner tree", §4.2).
  // Type-matching includes Int->Double promotion: the outer trace can
  // coerce slots the inner tree (after oracle demotion) expects as doubles.
  Fragment *Inner = nullptr;
  for (Fragment *P : InnerLS->Peers) {
    if (InnerLS->HitCount < P->EnterBlockedUntil)
      continue; // entry-deopting inner tree: treat as not ready
    if (!P->Body.empty() && Recorder->framesMatch(P->EntryFrames) &&
        Recorder->canCoerceTo(P->EntryTypes)) {
      Inner = P;
      break;
    }
  }
  if (!Inner) {
    // Hybrid: an inner loop that already lives in the method tier will
    // never grow a trace tree, so the outer recording would abort here at
    // every iteration forever. Promote the outer loop too -- the method
    // compiler handles the nesting by construction (calls and inner loops
    // are just bytecode in the body).
    LoopState *Outer = RecorderLoopState;
    abortRecording(AbortReason::InnerTreeNotReady, false);
    if (Outer && InnerLS->Tier.Current == Tier::Method)
      applyTierAction(Outer, Policy.onBranchOverflow(Outer->Tier),
                      TierChangeReason::MethodByPolicy);
    return Pc;
  }
  Recorder->coerceTo(Inner->EntryTypes);

  size_t DepthBefore = Interp.frames().size();
  ExitDescriptor *E = executeFragment(Inner);

  bool LeftInnerLoop =
      E->Frames.size() == DepthBefore &&
      E->Frames.back().Script == S &&
      (E->Pc < InnerLS->Loop->HeaderPc || E->Pc >= InnerLS->Loop->EndPc);

  if (E->Kind == ExitKind::Preempt) {
    abortRecording(AbortReason::PreemptedInInnerCall, false);
    if (!Ctx.OnTrace) // see handleExit: never service under a live trace
      Ctx.serviceInterrupts();
    return E->Pc;
  }
  if (!LeftInnerLoop) {
    // The inner tree took a side exit inside the loop: abort the outer
    // trace and grow the inner tree instead (§4.1).
    abortRecording(AbortReason::InnerTreeSideExit, false);
    handleExit(E);
    return Interp.currentPc();
  }

  Recorder->recordTreeCall(Inner, E);
  if (Recorder->status() == TraceRecorder::Status::Aborted)
    abortRecording(Recorder->abortReason(), true);
  return E->Pc;
}

void TraceMonitorImpl::handleExit(ExitDescriptor *E) {
  if (E->Kind == ExitKind::Preempt) {
    // Re-entrant case (an outer method-tier fragment is suspended on the
    // native stack under a helper call): servicing now could flush or
    // collect under it. Leave the flag raised; the outer fragment's own
    // preempt guard delivers the interrupt at its next loop edge.
    if (!Ctx.OnTrace)
      Ctx.serviceInterrupts();
    return;
  }
  // Grow the tree at hot side exits (§3.2 "Extending a tree"): only
  // control-flow/type/overflow exits that stay inside the loop and at the
  // tree's entry frame depth.
  if (!Ctx.Opts.EnableStitching)
    return;
  if (E->Kind != ExitKind::Branch && E->Kind != ExitKind::Type &&
      E->Kind != ExitKind::Overflow)
    return;
  if (E->Target || E->RecordingBlocked || E->CompilePending)
    return;
  Fragment *Root = E->Parent ? E->Parent->Root : nullptr;
  if (!Root || !Root->Loop)
    return;
  if (E->Frames.size() < Root->EntryFrameCount)
    return;
  if (E->Frames.size() == Root->EntryFrameCount &&
      (E->Frames.back().Script != Root->AnchorScript ||
       E->Pc < Root->Loop->HeaderPc || E->Pc >= Root->Loop->EndPc))
    return;
  if (E->Hits < Ctx.Opts.HotExitThreshold)
    return;
  if (E->FailedRecordings >= Ctx.Opts.MaxRecordingFailures) {
    // Branch overflow: this exit will never get a compiled continuation.
    // Trace mode blocks just the exit and keeps the tree; hybrid mode
    // treats it as evidence the loop is trace-hostile and promotes.
    E->RecordingBlocked = true;
    if (LoopState *LS = loopStateOfRoot(Root))
      applyTierAction(LS, Policy.onBranchOverflow(LS->Tier),
                      TierChangeReason::BranchOverflow);
    return;
  }
  if (Recorder)
    return; // one recorder at a time

  LoopState *LS = loopStateOfRoot(Root);
  if (!LS)
    return;
  RecorderAnchorExit = E;
  startRecording(TraceRecorder::Mode::Branch, LS, Root->AnchorScript, E->Pc,
                 E);
}

LoopState *TraceMonitorImpl::loopStateOfRoot(Fragment *Root) {
  return Root->Loop ? Root->Loop->State : nullptr;
}

uint8_t TraceMonitorImpl::tierOfLoop(uint32_t ScriptId,
                                     uint16_t LoopId) const {
  for (const auto &LS : LoopStates)
    if (LS->Script && LS->Script->Id == ScriptId &&
        LoopId < LS->Script->Loops.size() &&
        LS->Loop == &LS->Script->Loops[LoopId])
      return (uint8_t)LS->Tier.Current;
  return (uint8_t)Policy.initialTier();
}

uint32_t TraceMonitorImpl::onLoopEdge(Interpreter &I, uint32_t Pc,
                                      uint16_t LoopId) {
  if (Disabled)
    return Pc + 3; // kill switch: interpreter-only, one branch of overhead
  bool Stats = Ctx.Opts.CollectStats;
  if (Stats)
    Ctx.Stats.switchTo(Activity::Monitor);
  uint32_t NextPc = Pc + 3;
  FunctionScript *S = I.currentFrame().Script;

  // --- Active recording ------------------------------------------------------
  if (Recorder) {
    if (Recorder->atAnchor(Pc)) {
      LoopState *LS = RecorderLoopState;
      finishRecording(LS->Peers);
      // Fall through: the freshly compiled trace may be entered right now.
    } else {
      uint32_t R = handleInnerLoopHeader(Pc, LoopId);
      if (Recorder) {
        if (Stats)
          Ctx.Stats.switchTo(Activity::RecordInterpret);
        return R;
      }
      // Recording aborted; continue with normal monitoring of this header.
      NextPc = R;
      if (NextPc != Pc) {
        if (Stats)
          Ctx.Stats.switchTo(Activity::Interpret);
        return NextPc;
      }
      NextPc = Pc + 3;
      S = I.currentFrame().Script;
    }
  }

  // A flush requested at an unsafe point (trace on the native stack,
  // recorder active, or mid-compile pool exhaustion) runs here, before any
  // retired fragment could be re-entered.
  if (FlushPending && !Recorder && !Ctx.OnTrace)
    flushCacheNow();
  // Publish finished off-thread compiles before peer matching so a tree
  // that just left the compiler can be entered this very iteration.
  drainCompileJobs();
  if (Disabled) {
    if (Stats)
      Ctx.Stats.switchTo(Activity::Interpret);
    return NextPc;
  }

  LoopState *LS = loopState(S, LoopId);

  // --- Execute a matching compiled tree -------------------------------------------
  // Trace tier only: a promoted loop abandons its trees -- they are the
  // trace-hostile code the promotion is escaping, and entering them would
  // freeze the hit counter below the method-jit threshold. The peer
  // fragments stay alive for stitched branches and nested TreeCalls from
  // outer traces.
  if (LS->Tier.Current == Tier::Trace && !LS->Peers.empty() && !Recorder) {
    TypeMap Now = buildEntryTypeMap(I.stackTop());
    auto FramesMatchLive = [&](Fragment *P) {
      auto &Frames = I.frames();
      if (P->EntryFrames.size() != Frames.size())
        return false;
      for (size_t D = 0; D < Frames.size(); ++D)
        if (P->EntryFrames[D].Script != Frames[D].Script ||
            P->EntryFrames[D].Base != Frames[D].Base)
          return false;
      return true;
    };
    for (Fragment *P : LS->Peers) {
      // Entry-deopt backoff: a peer whose prologue keeps deopting is
      // skipped until the loop has hit the header a bit more (UINT32_MAX =
      // retired for good). Its body stays alive for stitched/nested links.
      if (LS->HitCount < P->EnterBlockedUntil)
        continue;
      if (P->EntryTypes == Now && !P->Body.empty() && FramesMatchLive(P)) {
        ExitDescriptor *E = executeFragment(P);
        handleExit(E);
        if (Stats)
          Ctx.Stats.switchTo(Recorder ? Activity::RecordInterpret
                                      : Activity::Interpret);
        return Interp.currentPc();
      }
    }
  }

  // --- Execute the method-tier body ----------------------------------------------
  // Mutually exclusive with the peer block above (Tier::Method there,
  // MethodFrag only under Tier::Method here). No type map to match --
  // everything is boxed -- but the frame chain and operand depth must
  // equal the entry shape (only the first frame-chain shape seen gets
  // method code).
  if (LS->MethodFrag && !Recorder) {
    Fragment *M = LS->MethodFrag;
    auto &Frames = I.frames();
    bool Match =
        !M->Body.empty() &&
        I.stackTop() + M->EntryTypes.NumGlobals == M->EntryTypes.Types.size() &&
        M->EntryFrames.size() == Frames.size();
    for (size_t D = 0; Match && D < Frames.size(); ++D)
      if (M->EntryFrames[D].Script != Frames[D].Script ||
          M->EntryFrames[D].Base != Frames[D].Base)
        Match = false;
    if (Match) {
      if (Ctx.EventListener && M->Enters == 0) {
        JitEvent Ev;
        Ev.Kind = JitEventKind::MethodEntered;
        Ev.FragmentId = M->Id;
        Ev.ScriptId = S->Id;
        Ev.Pc = Pc;
        Ev.Arg0 = LS->HitCount;
        emitEvent(Ev);
      }
      ++Ctx.Stats.MethodEnters;
      ExitDescriptor *E = executeFragment(M);
      handleExit(E);
      if (Stats)
        Ctx.Stats.switchTo(Activity::Interpret);
      return Interp.currentPc();
    }
  }

  if (Recorder) {
    // A branch recording just started inside finishRecording's fallthrough;
    // keep interpreting under the recorder.
    if (Stats)
      Ctx.Stats.switchTo(Activity::RecordInterpret);
    return NextPc;
  }

  // --- Hotness counting / starting a tree (§3.2) ------------------------------------
  ++LS->HitCount;
  if (Ctx.EventListener && LS->HitCount == Ctx.Opts.HotLoopThreshold &&
      LS->Tier.Current != Tier::Interpreter) {
    JitEvent E;
    E.Kind = JitEventKind::LoopHot;
    E.ScriptId = S->Id;
    E.Pc = Pc;
    E.Arg0 = LS->HitCount;
    emitEvent(E);
  }

  // Method-tier loop without a compiled body yet: build one once it is
  // hot enough. (Compilation may be asynchronous; the loop interprets
  // until the job publishes.)
  if (Policy.shouldMethodCompile(LS->Tier, LS->HitCount,
                                 LS->MethodFrag != nullptr)) {
    requestMethodCompile(LS);
    return NextPc;
  }

  if (LS->Tier.Current != Tier::Trace ||
      LS->HitCount < Ctx.Opts.HotLoopThreshold ||
      LS->HitCount < LS->Tier.BackoffUntil || LS->PendingCompiles > 0 ||
      LS->Peers.size() + LS->PendingCompiles >= MaxPeersPerLoop) {
    if (Stats)
      Ctx.Stats.switchTo(Activity::Interpret);
    return NextPc;
  }

  RecorderAnchorExit = nullptr;
  startRecording(TraceRecorder::Mode::Root, LS, S, Pc, nullptr);
  return NextPc;
}

// --- Factory -------------------------------------------------------------------------------------

std::unique_ptr<TraceMonitor> createTraceMonitor(VMContext &Ctx,
                                                 Interpreter &I) {
  return std::make_unique<TraceMonitorImpl>(Ctx, I);
}

} // namespace tracejit
