//===- recorder.cpp - The trace recorder ----------------------------------------===//

#include "trace/recorder.h"

#include <cassert>
#include <cmath>

#include "interp/natives.h"
#include "trace/helpers.h"
#include "trace/monitor.h"
#include "vm/object.h"
#include "vm/string.h"

namespace tracejit {

TraceRecorder::TraceRecorder(VMContext &C, Interpreter &I,
                             TraceMonitorImpl &M, Fragment *Frag, Mode Md,
                             LoopRecord *L, ExitDescriptor *AExit)
    : Ctx(C), Interp(I), Monitor(M), F(Frag), RecMode(Md), Loop(L),
      AnchorExit(AExit) {
  // Mirror the live interpreter state.
  for (const Frame &Fr : Interp.frames())
    VFrames.push_back({Fr.Script, Fr.Base, Fr.ReturnPc});
  VSp = Interp.stackTop();
  // A trace may not pop below the depth its tree is anchored at. Branch
  // traces can start deeper (at an exit inside an inlined call) but still
  // close at the root's loop header, so their floor is the root's depth.
  EntryFrameDepth = RecMode == Mode::Branch ? Frag->Root->EntryFrameCount
                                            : VFrames.size();
  FallbackTypes = F->EntryTypes.Types;
  noteSlot(numGlobals() + VSp);

  // Build the filter pipeline (§5.1): recorder -> ExprFilter -> CseFilter
  // -> buffer. Filters are toggled for the ablation benchmarks. LIR lands
  // in the fragment's own arena so the trace is self-contained when it
  // travels to the background compiler.
  Buffer = std::make_unique<LirBuffer>(*Frag->LirArena);
  LirWriter *Head = Buffer.get();
  if (Ctx.Opts.Passes.has(OptPass::Cse)) {
    Cse = std::make_unique<CseFilter>(Head);
    Head = Cse.get();
  }
  if (Ctx.Opts.Passes.has(OptPass::ExprSimp)) {
    Expr = std::make_unique<ExprFilter>(Head);
    Head = Expr.get();
  }
  if (Ctx.Opts.VerifyLir) {
    // Verifier at the very head: it sees each instruction exactly as the
    // recorder emitted it, before any filter rewrites it.
    Verify = std::make_unique<VerifyWriter>(Head, *Buffer, numGlobals(),
                                            &Ctx.Stats);
    Head = Verify.get();
  }
  W = Head;
  ParamTar = W->ins0(LOp::ParamTar);

  // Entry-state snapshot for hoisted guards (lir/opt.h): taken before any
  // other LIR exists, so a guard moved into the prologue can fail through
  // it as "we never entered" and the interpreter re-runs the iteration.
  // Only root recordings can gain a prologue, and only when the Hoist pass
  // is on -- keeping -O0/-O1 exit numbering bit-for-bit unchanged.
  if (RecMode == Mode::Root && Ctx.Opts.Passes.has(OptPass::Hoist))
    F->EntryExit = snapshot(ExitKind::Deopt, F->AnchorPc);

  // Figure 11 instrumentation: count one iteration per pass through the
  // fragment entry.
  if (Ctx.Opts.CollectStats) {
    LIns *CtrBase = immQ((int64_t)(intptr_t)&F->Iterations);
    LIns *Ctr = W->insLoad(LOp::LdQ, CtrBase, 0);
    LIns *Inc = W->ins2(LOp::AddQ, Ctr, immQ(1));
    W->insStore(LOp::StQ, Inc, CtrBase, 0);
  }
}

TraceRecorder::~TraceRecorder() = default;

FunctionScript *TraceRecorder::script() const {
  return VFrames.back().Script;
}

Value TraceRecorder::peekStack(uint32_t DepthFromTop) {
  return Interp.stackData()[Interp.stackTop() - 1 - DepthFromTop];
}

void TraceRecorder::abort(AbortReason Why) {
  if (St == Status::Recording) {
    St = Status::Aborted;
    AbortCause = Why;
  }
}

bool TraceRecorder::verifyFailed() {
  if (!Verify || !Verify->failed())
    return false;
  fprintf(stderr, "tracejit: LIR verify failed while recording: %s\n",
          Verify->error().describe().c_str());
  abort(AbortReason::VerifyFailed);
  return true;
}

bool TraceRecorder::atAnchor(uint32_t Pc) const {
  if (VFrames.size() != EntryFrameDepth)
    return false;
  if (RecMode == Mode::Root)
    return F->AnchorScript == VFrames.back().Script && Pc == F->AnchorPc;
  // Branch traces close at the root tree's anchor.
  Fragment *Root = F->Root;
  return Root->AnchorScript == VFrames.back().Script && Pc == Root->AnchorPc;
}

// --- Slot tracking -------------------------------------------------------------------

TraceType TraceRecorder::fallbackTypeOf(uint32_t Slot) {
  assert(Slot < FallbackTypes.size() && "read of a never-written slot");
  return FallbackTypes[Slot];
}

LIns *TraceRecorder::ldSlot(TraceType T, uint32_t Slot) {
  int32_t Disp = tarOffsetOfSlot(Slot);
  switch (T) {
  case TraceType::Int:
  case TraceType::Boolean:
    return W->insLoad(LOp::LdI, ParamTar, Disp);
  case TraceType::Double:
    return W->insLoad(LOp::LdD, ParamTar, Disp);
  case TraceType::Object:
  case TraceType::String:
    return W->insLoad(LOp::LdQ, ParamTar, Disp);
  case TraceType::Null:
  case TraceType::Undefined:
    return nullptr;
  }
  return nullptr;
}

void TraceRecorder::stSlot(uint32_t Slot, LIns *V, TraceType T) {
  int32_t Disp = tarOffsetOfSlot(Slot);
  switch (T) {
  case TraceType::Int:
  case TraceType::Boolean:
    W->insStore(LOp::StI, V, ParamTar, Disp);
    return;
  case TraceType::Double:
    W->insStore(LOp::StD, V, ParamTar, Disp);
    return;
  case TraceType::Object:
  case TraceType::String:
    W->insStore(LOp::StQ, V, ParamTar, Disp);
    return;
  case TraceType::Null:
  case TraceType::Undefined:
    return; // the type carries the whole value
  }
}

TraceRecorder::Tracked TraceRecorder::readSlot(uint32_t Slot) {
  noteSlot(Slot + 1);
  auto It = Tracker.find(Slot);
  if (It != Tracker.end())
    return It->second;
  if (Slot >= FallbackTypes.size()) {
    abort(AbortReason::UntrackedSlot);
    return {};
  }
  // Lazy import: "the trace imports local and global variables by unboxing
  // them and copying them to its activation record" (§3.1) -- the unboxed
  // copy was made by the monitor on entry; here we just load it typed.
  TraceType T = FallbackTypes[Slot];
  Tracked V{ldSlot(T, Slot), T};
  Tracker.emplace(Slot, V);
  return V;
}

void TraceRecorder::writeSlot(uint32_t Slot, LIns *V, TraceType T) {
  noteSlot(Slot + 1);
  stSlot(Slot, V, T);
  Tracker[Slot] = Tracked{V, T};
}

TypeMap TraceRecorder::currentTypeMap() {
  TypeMap M;
  M.NumGlobals = numGlobals();
  uint32_t N = numGlobals() + VSp;
  M.Types.resize(N, TraceType::Undefined);
  for (uint32_t S = 0; S < N; ++S) {
    auto It = Tracker.find(S);
    if (It != Tracker.end())
      M.Types[S] = It->second.Ty;
    else if (S < FallbackTypes.size())
      M.Types[S] = FallbackTypes[S];
  }
  return M;
}

// --- Exits ------------------------------------------------------------------------------

ExitDescriptor *TraceRecorder::snapshot(ExitKind Kind, uint32_t Pc) {
  ExitDescriptor *E = F->makeExit();
  E->Kind = Kind;
  E->Pc = Pc;
  E->Sp = VSp;
  for (const RecFrame &Fr : VFrames)
    E->Frames.push_back({Fr.Script, Fr.Base, Fr.ReturnPc});
  E->Types = currentTypeMap();
  return E;
}

// --- Boxing / unboxing ----------------------------------------------------------------------

LIns *TraceRecorder::unboxGuarded(LIns *Word, TraceType Expect, uint32_t Pc) {
  ExitDescriptor *E = snapshot(ExitKind::Type, Pc);
  switch (Expect) {
  case TraceType::Int: {
    LIns *Tag = W->ins2(LOp::AndQ, Word, immQ(1));
    W->insGuard(LOp::GuardT, W->ins2(LOp::EqQ, Tag, immQ(1)), E);
    return W->ins1(LOp::Q2I, W->ins2(LOp::SarQ, Word, immI(32)));
  }
  case TraceType::Double: {
    LIns *Tag = W->ins2(LOp::AndQ, Word, immQ(7));
    W->insGuard(LOp::GuardT, W->ins2(LOp::EqQ, Tag, immQ(TagDouble)), E);
    LIns *Ptr = W->ins2(LOp::AndQ, Word, immQ(~(int64_t)7));
    return W->insLoad(LOp::LdD, Ptr, DoubleCell::valueOffset());
  }
  case TraceType::Object: {
    LIns *Tag = W->ins2(LOp::AndQ, Word, immQ(7));
    W->insGuard(LOp::GuardT, W->ins2(LOp::EqQ, Tag, immQ(TagObject)), E);
    return Word; // tag 000: the word is the pointer
  }
  case TraceType::String: {
    LIns *Tag = W->ins2(LOp::AndQ, Word, immQ(7));
    W->insGuard(LOp::GuardT, W->ins2(LOp::EqQ, Tag, immQ(TagString)), E);
    return W->ins2(LOp::AndQ, Word, immQ(~(int64_t)7));
  }
  case TraceType::Boolean: {
    LIns *Tag = W->ins2(LOp::AndQ, Word, immQ(7));
    W->insGuard(LOp::GuardT, W->ins2(LOp::EqQ, Tag, immQ(TagSpecial)), E);
    LIns *Payload = W->ins1(LOp::Q2I, W->ins2(LOp::ShrQ, Word, immI(3)));
    W->insGuard(LOp::GuardT, W->ins2(LOp::LtUI, Payload, immI(2)), E);
    return Payload;
  }
  case TraceType::Null:
    W->insGuard(LOp::GuardT,
                W->ins2(LOp::EqQ, Word, immQ((int64_t)Value::null().bits())),
                E);
    return nullptr;
  case TraceType::Undefined:
    W->insGuard(
        LOp::GuardT,
        W->ins2(LOp::EqQ, Word, immQ((int64_t)Value::undefined().bits())), E);
    return nullptr;
  }
  return nullptr;
}

LIns *TraceRecorder::boxValue(LIns *V, TraceType T) {
  switch (T) {
  case TraceType::Int: {
    LIns *Wide = W->ins1(LOp::UI2Q, V);
    return W->ins2(LOp::OrQ, W->ins2(LOp::ShlQ, Wide, immI(32)), immQ(1));
  }
  case TraceType::Double: {
    LIns *Args[2] = {immQ((int64_t)(intptr_t)&Ctx), V};
    return W->insCall(&helperCalls().BoxDouble, Args, 2);
  }
  case TraceType::Object:
    return V;
  case TraceType::String:
    return W->ins2(LOp::OrQ, V, immQ(TagString));
  case TraceType::Boolean: {
    LIns *Wide = W->ins1(LOp::UI2Q, V);
    return W->ins2(LOp::OrQ, W->ins2(LOp::ShlQ, Wide, immI(3)),
                   immQ(TagSpecial));
  }
  case TraceType::Null:
    return immQ((int64_t)Value::null().bits());
  case TraceType::Undefined:
    return immQ((int64_t)Value::undefined().bits());
  }
  return nullptr;
}

LIns *TraceRecorder::promoteToD(const Tracked &V) {
  if (V.Ty == TraceType::Double)
    return V.Ins;
  return W->ins1(LOp::I2D, V.Ins); // Int and Boolean are i32 0/1
}

LIns *TraceRecorder::asInt32(const Tracked &V) {
  if (isIntLike(V.Ty))
    return V.Ins;
  assert(V.Ty == TraceType::Double);
  LIns *Args[1] = {V.Ins};
  return W->insCall(&helperCalls().ToInt32D, Args, 1);
}

LIns *TraceRecorder::truthyIns(const Tracked &V) {
  switch (V.Ty) {
  case TraceType::Int:
  case TraceType::Boolean:
    return W->ins2(LOp::NeI, V.Ins, immI(0));
  case TraceType::Double: {
    LIns *Args[1] = {V.Ins};
    return W->insCall(&helperCalls().TruthyD, Args, 1);
  }
  case TraceType::String: {
    LIns *Len = W->insLoad(LOp::LdI, V.Ins, String::lengthOffset());
    return W->ins2(LOp::NeI, Len, immI(0));
  }
  case TraceType::Object:
    return immI(1);
  case TraceType::Null:
  case TraceType::Undefined:
    return immI(0);
  }
  return immI(0);
}

void TraceRecorder::guardShape(LIns *Obj, Shape *S, uint32_t Pc) {
  ExitDescriptor *E = snapshot(ExitKind::Type, Pc);
  LIns *Ld = W->insLoad(LOp::LdQ, Obj, Object::shapeOffset());
  W->insGuard(LOp::GuardT,
              W->ins2(LOp::EqQ, Ld, immQ((int64_t)(intptr_t)S)), E);
}

void TraceRecorder::guardIsArray(LIns *Obj, uint32_t Pc) {
  ExitDescriptor *E = snapshot(ExitKind::Type, Pc);
  LIns *K = W->insLoad(LOp::LdUB, Obj, Object::kindOffset());
  W->insGuard(LOp::GuardT,
              W->ins2(LOp::EqI, K, immI((int32_t)ObjectKind::Array)), E);
}

void TraceRecorder::guardShapeMulti(LIns *Obj, Shape *const *Shapes, size_t N,
                                    uint32_t Pc) {
  if (N == 1) {
    guardShape(Obj, Shapes[0], Pc);
    return;
  }
  ExitDescriptor *E = snapshot(ExitKind::Type, Pc);
  LIns *Ld = W->insLoad(LOp::LdQ, Obj, Object::shapeOffset());
  LIns *Match = W->ins2(LOp::EqQ, Ld, immQ((int64_t)(intptr_t)Shapes[0]));
  for (size_t I = 1; I < N; ++I)
    Match = W->ins2(LOp::OrI, Match,
                    W->ins2(LOp::EqQ, Ld, immQ((int64_t)(intptr_t)Shapes[I])));
  W->insGuard(LOp::GuardT, Match, E);
}

bool TraceRecorder::icSiteMegamorphic(const PropertyIC &IC, uint32_t Pc) const {
  return IC.State == ICState::Mega ||
         Monitor.oracle().isMegamorphicSite(
             Oracle::propSiteKey(script()->Id, Pc));
}

void TraceRecorder::icShapeGuard(const PropertyIC *IC, Object *RO, LIns *Obj,
                                 uint32_t Slot, uint32_t Pc) {
  if (IC && (IC->State == ICState::Mono || IC->State == ICState::Poly)) {
    Shape *Shapes[PropertyIC::MaxEntries];
    size_t N = 0;
    bool LiveCached = false;
    uint8_t K = (uint8_t)RO->kind();
    for (uint8_t I = 0; I < IC->N; ++I) {
      const ICEntry &E = IC->Entries[I];
      // Only same-kind entries that resolve the name to the same slot can
      // share this trace's slot load.
      if (E.Kind != ICEntryKind::Slot || E.KindGuard != K || E.Slot != Slot)
        continue;
      Shapes[N++] = E.ShapePtr;
      LiveCached |= E.ShapePtr == RO->shape();
    }
    if (LiveCached) {
      ++Ctx.Stats.IcRecorderHits;
      guardShapeMulti(Obj, Shapes, N, Pc);
      return;
    }
  }
  guardShape(Obj, RO->shape(), Pc);
}

// --- Arithmetic / comparison / bit ops ------------------------------------------------------

void TraceRecorder::recordArith(Op O, uint32_t Pc) {
  if (O == Op::Neg) {
    Tracked A = top();
    if (!isNumericType(A.Ty)) {
      abort(AbortReason::NonNumericArith);
      return;
    }
    Value AV = peekStack(0);
    if (isIntLike(A.Ty) && AV.isInt() && AV.toInt() != 0 &&
        AV.toInt() != INT32_MIN) {
      ExitDescriptor *E = snapshot(ExitKind::Overflow, Pc);
      W->insGuard(LOp::GuardT, W->ins2(LOp::NeI, A.Ins, immI(0)), E);
      LIns *R = W->insOvf(LOp::SubOvI, immI(0), A.Ins,
                          snapshot(ExitKind::Overflow, Pc));
      --VSp;
      push(R, TraceType::Int);
    } else {
      LIns *R = W->ins1(LOp::NegD, promoteToD(A));
      --VSp;
      push(R, TraceType::Double);
    }
    return;
  }

  Tracked B = top(0);
  Tracked A = top(1);

  if (O == Op::Add && (A.Ty == TraceType::String || B.Ty == TraceType::String)) {
    if (A.Ty != TraceType::String || B.Ty != TraceType::String) {
      abort(AbortReason::MixedConcat);
      return;
    }
    LIns *Args[3] = {immQ((int64_t)(intptr_t)&Ctx), A.Ins, B.Ins};
    LIns *R = W->insCall(&helperCalls().ConcatSS, Args, 3);
    VSp -= 2;
    push(R, TraceType::String);
    return;
  }

  if (!isNumericType(A.Ty) || !isNumericType(B.Ty)) {
    abort(AbortReason::NonNumericArith);
    return;
  }

  bool IntPath = isIntLike(A.Ty) && isIntLike(B.Ty);
  switch (O) {
  case Op::Add:
  case Op::Sub:
  case Op::Mul: {
    if (IntPath) {
      // Peek the live operands: if this very execution overflows int32,
      // specialize to the double path instead of recording an
      // always-failing overflow guard.
      int64_t X = (int64_t)Interpreter::toNumber(peekStack(1));
      int64_t Y = (int64_t)Interpreter::toNumber(peekStack(0));
      int64_t R = O == Op::Add ? X + Y : O == Op::Sub ? X - Y : X * Y;
      if (R < INT32_MIN || R > INT32_MAX)
        IntPath = false;
    }
    if (IntPath) {
      bool ProvedNoOverflow = false;
      if (Ctx.Opts.StaticAnalysis) {
        // Interval analysis may have proven the int32 result cannot
        // overflow on any execution reaching this pc; then the checked
        // form is pure overhead.
        if (const ScriptAnalysis *SA = Ctx.analysisOf(script()))
          ProvedNoOverflow = SA->NoOverflow.count(Pc) != 0;
      }
      if (ProvedNoOverflow) {
        LOp Plain = O == Op::Add   ? LOp::AddI
                    : O == Op::Sub ? LOp::SubI
                                   : LOp::MulI;
        LIns *R = W->ins2(Plain, A.Ins, B.Ins);
        ++Ctx.Stats.StaticGuardsElided;
        VSp -= 2;
        push(R, TraceType::Int);
        return;
      }
      LOp Ov = O == Op::Add   ? LOp::AddOvI
               : O == Op::Sub ? LOp::SubOvI
                              : LOp::MulOvI;
      ExitDescriptor *E = snapshot(ExitKind::Overflow, Pc);
      LIns *R = W->insOvf(Ov, A.Ins, B.Ins, E);
      VSp -= 2;
      push(R, TraceType::Int);
    } else {
      if (Ctx.Opts.StaticAnalysis) {
        // A NoOverflow fact with a live overflowing execution means the
        // analysis is wrong; surface it rather than silently diverge.
        if (const ScriptAnalysis *SA = Ctx.analysisOf(script()))
          if (isIntLike(A.Ty) && isIntLike(B.Ty) && SA->NoOverflow.count(Pc))
            ++Ctx.Stats.StaticFactContradictions;
      }
      LOp Dop = O == Op::Add   ? LOp::AddD
                : O == Op::Sub ? LOp::SubD
                               : LOp::MulD;
      LIns *R = W->ins2(Dop, promoteToD(A), promoteToD(B));
      VSp -= 2;
      push(R, TraceType::Double);
    }
    return;
  }
  case Op::Div: {
    LIns *R = W->ins2(LOp::DivD, promoteToD(A), promoteToD(B));
    VSp -= 2;
    push(R, TraceType::Double);
    return;
  }
  case Op::Mod: {
    Value AV = peekStack(1), BV = peekStack(0);
    if (IntPath && AV.isInt() && BV.isInt() && AV.toInt() >= 0 &&
        BV.toInt() > 0) {
      // Specialize to integer modulus under non-negativity guards, exactly
      // the interpreter's int fast path.
      ExitDescriptor *E = snapshot(ExitKind::Overflow, Pc);
      W->insGuard(LOp::GuardT, W->ins2(LOp::GeI, A.Ins, immI(0)), E);
      W->insGuard(LOp::GuardT, W->ins2(LOp::GtI, B.Ins, immI(0)), E);
      LIns *Args[2] = {A.Ins, B.Ins};
      LIns *R = W->insCall(&helperCalls().ModI, Args, 2);
      VSp -= 2;
      push(R, TraceType::Int);
    } else {
      LIns *Args[2] = {promoteToD(A), promoteToD(B)};
      LIns *R = W->insCall(&helperCalls().ModD, Args, 2);
      VSp -= 2;
      push(R, TraceType::Double);
    }
    return;
  }
  default:
    abort(AbortReason::UnsupportedBytecode);
  }
}

void TraceRecorder::recordCompare(Op O, uint32_t Pc) {
  Tracked B = top(0);
  Tracked A = top(1);

  auto Push = [&](LIns *R) {
    VSp -= 2;
    push(R, TraceType::Boolean);
  };

  bool Loose = O == Op::Eq || O == Op::Ne;
  bool Equality = Loose || O == Op::StrictEq || O == Op::StrictNe;
  bool Negate = O == Op::Ne || O == Op::StrictNe;

  if (isNumericType(A.Ty) && isNumericType(B.Ty)) {
    if (isIntLike(A.Ty) && isIntLike(B.Ty)) {
      LOp IOp;
      switch (O) {
      case Op::Lt:
        IOp = LOp::LtI;
        break;
      case Op::Le:
        IOp = LOp::LeI;
        break;
      case Op::Gt:
        IOp = LOp::GtI;
        break;
      case Op::Ge:
        IOp = LOp::GeI;
        break;
      default:
        IOp = LOp::EqI;
        break;
      }
      LIns *R = W->ins2(IOp, A.Ins, B.Ins);
      if (Equality && Negate)
        R = W->ins2(LOp::XorI, R, immI(1));
      Push(R);
      return;
    }
    LOp Dop;
    switch (O) {
    case Op::Lt:
      Dop = LOp::LtD;
      break;
    case Op::Le:
      Dop = LOp::LeD;
      break;
    case Op::Gt:
      Dop = LOp::GtD;
      break;
    case Op::Ge:
      Dop = LOp::GeD;
      break;
    default:
      Dop = Negate ? LOp::NeD : LOp::EqD;
      break;
    }
    Push(W->ins2(Dop, promoteToD(A), promoteToD(B)));
    return;
  }

  if (Equality) {
    if (A.Ty == TraceType::String && B.Ty == TraceType::String) {
      LIns *Args[2] = {A.Ins, B.Ins};
      LIns *R = W->insCall(&helperCalls().EqSS, Args, 2);
      if (Negate)
        R = W->ins2(LOp::XorI, R, immI(1));
      Push(R);
      return;
    }
    if (A.Ty == TraceType::Object && B.Ty == TraceType::Object) {
      LIns *R = W->ins2(LOp::EqQ, A.Ins, B.Ins);
      if (Negate)
        R = W->ins2(LOp::XorI, R, immI(1));
      Push(R);
      return;
    }
    bool ANully = A.Ty == TraceType::Null || A.Ty == TraceType::Undefined;
    bool BNully = B.Ty == TraceType::Null || B.Ty == TraceType::Undefined;
    if (ANully || BNully) {
      // Types are static facts on trace: fold the comparison.
      bool EqResult;
      if (Loose)
        EqResult = ANully && BNully;
      else
        EqResult = A.Ty == B.Ty;
      Push(immI((EqResult != Negate) ? 1 : 0));
      return;
    }
    // Mixed types under strict equality are statically unequal.
    if (!Loose) {
      Push(immI(Negate ? 1 : 0));
      return;
    }
  }
  abort(AbortReason::UntraceableCompare);
  (void)Pc;
}

void TraceRecorder::recordBitop(Op O, uint32_t Pc) {
  if (O == Op::BitNot) {
    Tracked A = top();
    if (!isNumericType(A.Ty)) {
      abort(AbortReason::NonNumericBitop);
      return;
    }
    LIns *R = W->ins2(LOp::XorI, asInt32(A), immI(-1));
    --VSp;
    push(R, TraceType::Int);
    return;
  }

  Tracked B = top(0);
  Tracked A = top(1);
  if (!isNumericType(A.Ty) || !isNumericType(B.Ty)) {
    abort(AbortReason::NonNumericBitop);
    return;
  }
  LIns *X = asInt32(A);
  LIns *Y = asInt32(B);

  switch (O) {
  case Op::BitAnd:
  case Op::BitOr:
  case Op::BitXor:
  case Op::Shl:
  case Op::Shr: {
    LOp L = O == Op::BitAnd  ? LOp::AndI
            : O == Op::BitOr ? LOp::OrI
            : O == Op::BitXor ? LOp::XorI
            : O == Op::Shl    ? LOp::ShlI
                              : LOp::ShrI;
    LIns *R = W->ins2(L, X, Y);
    VSp -= 2;
    push(R, TraceType::Int);
    return;
  }
  case Op::Ushr: {
    LIns *R = W->ins2(LOp::UshrI, X, Y);
    // >>> produces uint32; specialize on the observed result: small
    // results stay Int under a sign guard, large ones become doubles.
    uint32_t Actual =
        (uint32_t)Interpreter::valueToInt32(peekStack(1)) >>
        (Interpreter::valueToInt32(peekStack(0)) & 31);
    if (Actual <= (uint32_t)INT32_MAX) {
      ExitDescriptor *E = snapshot(ExitKind::Overflow, Pc);
      W->insGuard(LOp::GuardT, W->ins2(LOp::GeI, R, immI(0)), E);
      VSp -= 2;
      push(R, TraceType::Int);
    } else {
      LIns *D = W->ins1(LOp::UI2D, R);
      VSp -= 2;
      push(D, TraceType::Double);
    }
    return;
  }
  default:
    abort(AbortReason::UnsupportedBytecode);
  }
}

// --- Control flow -----------------------------------------------------------------------------

void TraceRecorder::recordBranch(Op O, uint32_t Pc) {
  // Snapshot before the virtual pop so a failed guard re-executes the
  // branch with the condition still on the interpreter stack.
  Tracked C = top();
  LIns *T = truthyIns(C);
  bool ActualTruthy = peekStack(0).truthy();
  --VSp;
  if (T->Op == LOp::ImmI)
    return; // statically known: no divergence possible
  if (Ctx.Opts.StaticAnalysis) {
    // The abstract interpreter may have proven this branch single-sided
    // over every execution; if so the guard can never fire and is dead
    // weight on the trace.
    if (const ScriptAnalysis *A = Ctx.analysisOf(script())) {
      auto It = A->BranchConst.find(Pc);
      if (It != A->BranchConst.end()) {
        if (It->second == ActualTruthy) {
          ++Ctx.Stats.StaticGuardsElided;
          (void)O;
          return;
        }
        // Fact contradicts the live value: the fact is wrong. Record the
        // guard as usual; the validator counter makes the bug visible.
        ++Ctx.Stats.StaticFactContradictions;
      }
    }
  }
  VSp++; // restore for the snapshot
  ExitDescriptor *E = snapshot(ExitKind::Branch, Pc);
  VSp--;
  // Stay on trace only along the recorded direction.
  W->insGuard(ActualTruthy ? LOp::GuardT : LOp::GuardF, T, E);
  (void)O;
}

// --- Property / element access ------------------------------------------------------------------

void TraceRecorder::recordGetProp(uint32_t Pc) {
  String *Name = script()->Atoms[script()->u16At(Pc + 1)];
  const PropertyIC *IC =
      Ctx.Opts.EnableIC ? &script()->ICs[script()->u16At(Pc + 3)] : nullptr;
  if (IC && icSiteMegamorphic(*IC, Pc)) {
    // A shape guard here would fail on most iterations; don't record one.
    abort(AbortReason::MegamorphicSite);
    return;
  }
  Tracked Recv = top();
  Value RecvV = peekStack(0);

  if (Recv.Ty == TraceType::String) {
    if (Name->view() == "length") {
      LIns *Len = W->insLoad(LOp::LdI, Recv.Ins, String::lengthOffset());
      --VSp;
      push(Len, TraceType::Int);
      return;
    }
    abort(AbortReason::UnknownStringProp);
    return;
  }
  if (Recv.Ty != TraceType::Object) {
    abort(AbortReason::PropOnPrimitive);
    return;
  }
  Object *RO = RecvV.toObject();

  if (RO->isArray() && Name->view() == "length") {
    guardIsArray(Recv.Ins, Pc);
    LIns *Len = W->insLoad(LOp::LdI, Recv.Ins, Object::arrayLenOffset());
    --VSp;
    push(Len, TraceType::Int);
    return;
  }

  // "The recorder can generate LIR that reads o.x with just two or three
  // loads" (§3.1): guard the shape, then load the slot directly.
  int Slot = RO->slotOf(Name);
  if (Slot < 0) {
    guardShape(Recv.Ins, RO->shape(), Pc);
    --VSp;
    push(nullptr, TraceType::Undefined);
    return;
  }
  icShapeGuard(IC, RO, Recv.Ins, (uint32_t)Slot, Pc);
  LIns *Slots = W->insLoad(LOp::LdQ, Recv.Ins, Object::namedSlotsOffset());
  LIns *Word = W->insLoad(LOp::LdQ, Slots, Slot * 8);
  TraceType RTy = traceTypeOf(RO->slotValue((uint32_t)Slot));
  LIns *V = unboxGuarded(Word, RTy, Pc);
  --VSp;
  push(V, RTy);
}

void TraceRecorder::recordSetProp(uint32_t Pc) {
  String *Name = script()->Atoms[script()->u16At(Pc + 1)];
  const PropertyIC *IC =
      Ctx.Opts.EnableIC ? &script()->ICs[script()->u16At(Pc + 3)] : nullptr;
  if (IC && icSiteMegamorphic(*IC, Pc)) {
    abort(AbortReason::MegamorphicSite);
    return;
  }
  Tracked Val = top(0);
  Tracked Recv = top(1);
  Value RecvV = peekStack(1);
  if (Recv.Ty != TraceType::Object) {
    abort(AbortReason::PropOnPrimitive);
    return;
  }
  Object *RO = RecvV.toObject();
  int Slot = RO->slotOf(Name);
  if (Slot < 0) {
    // Adding a property transitions the shape every iteration; the shape
    // guard would never hold. Abort and let blacklisting sort it out.
    abort(AbortReason::PropAddsSlot);
    return;
  }
  icShapeGuard(IC, RO, Recv.Ins, (uint32_t)Slot, Pc);
  LIns *Slots = W->insLoad(LOp::LdQ, Recv.Ins, Object::namedSlotsOffset());
  LIns *Boxed = boxValue(Val.Ins, Val.Ty);
  W->insStore(LOp::StQ, Boxed, Slots, Slot * 8);
  // obj value -> value
  VSp -= 2;
  push(Val.Ins, Val.Ty);
}

void TraceRecorder::recordGetElem(uint32_t Pc) {
  Tracked Idx = top(0);
  Tracked Recv = top(1);
  Value IdxV = peekStack(0);
  Value RecvV = peekStack(1);

  // Normalize the index to int32 (guarded exactness for doubles).
  LIns *IdxI = nullptr;
  if (Idx.Ty == TraceType::Int) {
    IdxI = Idx.Ins;
  } else if (Idx.Ty == TraceType::Double) {
    IdxI = W->ins1(LOp::D2I, Idx.Ins);
    ExitDescriptor *E = snapshot(ExitKind::Type, Pc);
    W->insGuard(LOp::GuardT,
                W->ins2(LOp::EqD, W->ins1(LOp::I2D, IdxI), Idx.Ins), E);
  } else {
    abort(AbortReason::NonNumericIndex);
    return;
  }

  if (Recv.Ty == TraceType::String) {
    String *S = RecvV.toString();
    double D = Interpreter::toNumber(IdxV);
    bool InBounds = D >= 0 && D < S->length() && D == std::floor(D);
    LIns *Len = W->insLoad(LOp::LdI, Recv.Ins, String::lengthOffset());
    LIns *InB = W->ins2(LOp::LtUI, IdxI, Len);
    ExitDescriptor *E = snapshot(ExitKind::Branch, Pc);
    if (!InBounds) {
      W->insGuard(LOp::GuardF, InB, E);
      VSp -= 2;
      push(nullptr, TraceType::Undefined);
      return;
    }
    W->insGuard(LOp::GuardT, InB, E);
    LIns *Args[3] = {immQ((int64_t)(intptr_t)&Ctx), Recv.Ins, IdxI};
    LIns *R = W->insCall(&helperCalls().CharAt, Args, 3);
    VSp -= 2;
    push(R, TraceType::String);
    return;
  }

  if (Recv.Ty != TraceType::Object || !RecvV.toObject()->isArray()) {
    abort(AbortReason::ElemOnNonArray);
    return;
  }
  Object *RO = RecvV.toObject();
  guardIsArray(Recv.Ins, Pc);

  double D = Interpreter::toNumber(IdxV);
  bool InCapacity = D >= 0 && D < RO->elementsCapacity() && D == std::floor(D);
  LIns *Cap = W->insLoad(LOp::LdI, Recv.Ins, Object::elemCapacityOffset());
  LIns *InB = W->ins2(LOp::LtUI, IdxI, Cap);
  ExitDescriptor *E = snapshot(ExitKind::Branch, Pc);
  if (!InCapacity) {
    // Reading a hole beyond the dense storage: undefined.
    W->insGuard(LOp::GuardF, InB, E);
    VSp -= 2;
    push(nullptr, TraceType::Undefined);
    return;
  }
  W->insGuard(LOp::GuardT, InB, E);
  LIns *Data = W->insLoad(LOp::LdQ, Recv.Ins, Object::elemDataOffset());
  LIns *Addr = W->ins2(
      LOp::AddQ, Data, W->ins2(LOp::ShlQ, W->ins1(LOp::UI2Q, IdxI), immI(3)));
  LIns *Word = W->insLoad(LOp::LdQ, Addr, 0);
  TraceType ETy = traceTypeOf(RO->getElement((uint32_t)D));
  LIns *V = unboxGuarded(Word, ETy, Pc);
  VSp -= 2;
  push(V, ETy);
}

void TraceRecorder::recordSetElem(uint32_t Pc) {
  Tracked Val = top(0);
  Tracked Idx = top(1);
  Tracked Recv = top(2);
  Value IdxV = peekStack(1);
  Value RecvV = peekStack(2);

  if (Recv.Ty != TraceType::Object || !RecvV.toObject()->isArray()) {
    abort(AbortReason::ElemOnNonArray);
    return;
  }
  Object *RO = RecvV.toObject();

  LIns *IdxI = nullptr;
  if (Idx.Ty == TraceType::Int) {
    IdxI = Idx.Ins;
  } else if (Idx.Ty == TraceType::Double) {
    IdxI = W->ins1(LOp::D2I, Idx.Ins);
    ExitDescriptor *E = snapshot(ExitKind::Type, Pc);
    W->insGuard(LOp::GuardT,
                W->ins2(LOp::EqD, W->ins1(LOp::I2D, IdxI), Idx.Ins), E);
  } else {
    abort(AbortReason::NonNumericIndex);
    return;
  }

  guardIsArray(Recv.Ins, Pc);

  double D = Interpreter::toNumber(IdxV);
  bool InLen = D >= 0 && D < RO->arrayLength() && D == std::floor(D);

  if (Val.Ty == TraceType::Double) {
    // Doubles always go through the helper (it boxes a fresh double cell,
    // the same allocation the interpreter would perform).
    LIns *Args[4] = {immQ((int64_t)(intptr_t)&Ctx), Recv.Ins, IdxI, Val.Ins};
    LIns *Ok = W->insCall(&helperCalls().ArraySetD, Args, 4);
    ExitDescriptor *E = snapshot(ExitKind::Branch, Pc);
    W->insGuard(LOp::GuardT, Ok, E);
  } else if (InLen) {
    // In-bounds store: "js_Array_set" fast path as direct stores (Fig. 3's
    // slow path is the call below).
    LIns *Len = W->insLoad(LOp::LdI, Recv.Ins, Object::arrayLenOffset());
    ExitDescriptor *E = snapshot(ExitKind::Branch, Pc);
    W->insGuard(LOp::GuardT, W->ins2(LOp::LtUI, IdxI, Len), E);
    LIns *Data = W->insLoad(LOp::LdQ, Recv.Ins, Object::elemDataOffset());
    LIns *Addr = W->ins2(
        LOp::AddQ, Data,
        W->ins2(LOp::ShlQ, W->ins1(LOp::UI2Q, IdxI), immI(3)));
    W->insStore(LOp::StQ, boxValue(Val.Ins, Val.Ty), Addr, 0);
  } else {
    // Appending/growing store: call the runtime (paper Fig. 3).
    LIns *Args[4] = {immQ((int64_t)(intptr_t)&Ctx), Recv.Ins, IdxI,
                     boxValue(Val.Ins, Val.Ty)};
    LIns *Ok = W->insCall(&helperCalls().ArraySetV, Args, 4);
    ExitDescriptor *E = snapshot(ExitKind::Branch, Pc);
    W->insGuard(LOp::GuardT, Ok, E);
  }

  // obj idx value -> value
  VSp -= 3;
  push(Val.Ins, Val.Ty);
}

// --- Calls ------------------------------------------------------------------------------------------

bool TraceRecorder::recordTraceableNative(Object *Callee, uint32_t ArgC,
                                          uint32_t Pc) {
  const TraceableNative *TN = lookupTraceableNative(Callee->native());
  if (!TN)
    return false;
  const CallInfo *CI = Monitor.mathCallInfo(Callee->native());

  uint32_t Expected = TN->Sig == TraceableSig::D_DD  ? 2
                      : TN->Sig == TraceableSig::D_D ? 1
                                                     : 0;
  if (ArgC != Expected)
    return false;

  LIns *Args[2] = {nullptr, nullptr};
  for (uint32_t K = 0; K < Expected; ++K) {
    Tracked AK = top(Expected - 1 - K);
    if (!isNumericType(AK.Ty))
      return false;
    Args[K] = promoteToD(AK);
  }
  LIns *CtxArg = immQ((int64_t)(intptr_t)&Ctx);
  LIns *R;
  if (TN->Sig == TraceableSig::D_CTX) {
    LIns *A1[1] = {CtxArg};
    R = W->insCall(CI, A1, 1);
  } else {
    R = W->insCall(CI, Args, Expected);
  }
  VSp -= ArgC + 1;
  push(R, TraceType::Double);
  (void)Pc;
  return true;
}

void TraceRecorder::recordScriptedCall(Object *Callee, uint32_t ArgC,
                                       uint32_t ReturnPc, uint32_t Pc) {
  FunctionScript *S = Callee->script();
  // Recursion is not traced (matches TraceMonkey's published behavior).
  for (const RecFrame &Fr : VFrames) {
    if (Fr.Script == S) {
      abort(AbortReason::RecursiveCall);
      return;
    }
  }
  if (VFrames.size() - EntryFrameDepth >= Ctx.Opts.MaxInlineDepth) {
    abort(AbortReason::InlineDepthLimit);
    return;
  }

  // Mirror Interpreter::pushFrameForCall exactly.
  while (ArgC < S->Arity) {
    push(nullptr, TraceType::Undefined);
    ++ArgC;
  }
  while (ArgC > S->Arity) {
    --VSp;
    --ArgC;
  }
  uint32_t Base = VSp - ArgC;
  for (uint32_t K = S->Arity; K < S->NumLocals; ++K)
    writeSlot(slotOfStack(Base + K), nullptr, TraceType::Undefined);
  // Record this call site's return pc into the call-stack area: the same
  // tree may later be entered from a different call site, so return pcs
  // must be dynamic, not baked into exit descriptors.
  uint32_t Depth = (uint32_t)VFrames.size();
  W->insStore(LOp::StI, immI((int32_t)ReturnPc),
              immQ((int64_t)(intptr_t)&Ctx.FrameReturnPcs[Depth]), 0);
  VFrames.push_back({S, Base, ReturnPc});
  VSp = Base + S->NumLocals;
  noteSlot(numGlobals() + VSp);
  (void)Pc;
}

void TraceRecorder::recordCall(uint32_t Pc) {
  uint32_t ArgC = script()->Code[Pc + 1];
  Tracked Callee = readStack(VSp - ArgC - 1);
  Value CalleeV = peekStack(ArgC);

  if (Callee.Ty != TraceType::Object || !CalleeV.isObject() ||
      !CalleeV.toObject()->isFunction()) {
    abort(AbortReason::CallOfNonFunction);
    return;
  }
  Object *FO = CalleeV.toObject();

  // Guard callee identity: one pointer compare covers both the type and
  // the target ("the recorder must also emit LIR to guard that the
  // function is the same", §3.1).
  ExitDescriptor *E = snapshot(ExitKind::Type, Pc);
  W->insGuard(LOp::GuardT,
              W->ins2(LOp::EqQ, Callee.Ins,
                      immQ((int64_t)CalleeV.bits())),
              E);
  F->EmbeddedRoots.push_back(CalleeV);

  if (FO->native()) {
    if (!recordTraceableNative(FO, ArgC, Pc))
      abort(AbortReason::UntraceableNative);
    return;
  }
  recordScriptedCall(FO, ArgC, Pc + 2, Pc);
}

void TraceRecorder::recordCallProp(uint32_t Pc) {
  String *Name = script()->Atoms[script()->u16At(Pc + 1)];
  uint32_t ArgC = script()->Code[Pc + 3];
  Tracked Recv = readStack(VSp - ArgC - 1);
  Value RecvV = peekStack(ArgC);

  if (Recv.Ty == TraceType::String) {
    if (Name->view() == "charCodeAt" && ArgC == 1) {
      Tracked Idx = top(0);
      Value IdxV = peekStack(0);
      LIns *IdxI;
      if (Idx.Ty == TraceType::Int) {
        IdxI = Idx.Ins;
      } else if (Idx.Ty == TraceType::Double) {
        IdxI = W->ins1(LOp::D2I, Idx.Ins);
        ExitDescriptor *E = snapshot(ExitKind::Type, Pc);
        W->insGuard(LOp::GuardT,
                    W->ins2(LOp::EqD, W->ins1(LOp::I2D, IdxI), Idx.Ins), E);
      } else {
        abort(AbortReason::UntraceableNative);
        return;
      }
      double D = Interpreter::toNumber(IdxV);
      String *S = RecvV.toString();
      if (!(D >= 0 && D < S->length())) {
        abort(AbortReason::UntraceableNative);
        return;
      }
      LIns *Len = W->insLoad(LOp::LdI, Recv.Ins, String::lengthOffset());
      ExitDescriptor *E = snapshot(ExitKind::Branch, Pc);
      W->insGuard(LOp::GuardT, W->ins2(LOp::LtUI, IdxI, Len), E);
      LIns *Addr = W->ins2(LOp::AddQ, Recv.Ins, W->ins1(LOp::UI2Q, IdxI));
      LIns *Byte = W->insLoad(LOp::LdUB, Addr, String::dataOffset());
      VSp -= 2;
      push(Byte, TraceType::Int);
      return;
    }
    if (Name->view() == "charAt" && ArgC == 1 &&
        top(0).Ty == TraceType::Int) {
      Tracked Idx = top(0);
      LIns *Args[3] = {immQ((int64_t)(intptr_t)&Ctx), Recv.Ins, Idx.Ins};
      LIns *R = W->insCall(&helperCalls().CharAt, Args, 3);
      VSp -= 2;
      push(R, TraceType::String);
      return;
    }
    abort(AbortReason::UntraceableNative);
    return;
  }

  if (Recv.Ty == TraceType::Object && RecvV.toObject()->isArray()) {
    Object *RO = RecvV.toObject();
    (void)RO;
    if (Name->view() == "push" && ArgC == 1) {
      guardIsArray(Recv.Ins, Pc);
      Tracked Arg = top(0);
      LIns *Args[3] = {immQ((int64_t)(intptr_t)&Ctx), Recv.Ins,
                       boxValue(Arg.Ins, Arg.Ty)};
      LIns *R = W->insCall(&helperCalls().ArrayPushV, Args, 3);
      VSp -= 2;
      push(R, TraceType::Int);
      return;
    }
    abort(AbortReason::UntraceableNative);
    return;
  }

  if (Recv.Ty == TraceType::Object) {
    Object *RO = RecvV.toObject();
    Value Method = RO->getProperty(Name);
    if (!Method.isObject() || !Method.toObject()->isFunction()) {
      abort(AbortReason::CallOfNonFunction);
      return;
    }
    Object *FO = Method.toObject();
    // Shape guard + slot load + identity guard on the method value.
    int Slot = RO->slotOf(Name);
    guardShape(Recv.Ins, RO->shape(), Pc);
    LIns *Slots = W->insLoad(LOp::LdQ, Recv.Ins, Object::namedSlotsOffset());
    LIns *Word = W->insLoad(LOp::LdQ, Slots, Slot * 8);
    ExitDescriptor *E = snapshot(ExitKind::Type, Pc);
    W->insGuard(LOp::GuardT,
                W->ins2(LOp::EqQ, Word, immQ((int64_t)Method.bits())), E);
    F->EmbeddedRoots.push_back(Method);

    if (FO->native()) {
      if (!recordTraceableNative(FO, ArgC, Pc))
        abort(AbortReason::UntraceableNative);
      return;
    }
    // The interpreter overwrites the receiver slot with the callee.
    writeSlot(slotOfStack(VSp - ArgC - 1), Word, TraceType::Object);
    recordScriptedCall(FO, ArgC, Pc + 4, Pc);
    return;
  }

  abort(AbortReason::UnsupportedReceiver);
}

void TraceRecorder::recordReturn(Op O, uint32_t Pc) {
  if (VFrames.size() <= EntryFrameDepth) {
    abort(AbortReason::ReturnBelowEntryFrame);
    return;
  }
  Tracked R{nullptr, TraceType::Undefined};
  if (O == Op::Return) {
    R = top();
    --VSp;
  }
  RecFrame Done = VFrames.back();
  VFrames.pop_back();
  VSp = Done.Base - 1;
  push(R.Ins, R.Ty);
  (void)Pc;
}

// --- Tree calls (§4.1) ------------------------------------------------------------------------------

void TraceRecorder::recordTreeCall(Fragment *Inner, ExitDescriptor *Taken) {
  ExitDescriptor *Mismatch = snapshot(ExitKind::Nested, Inner->AnchorPc);
  W->insTreeCall(Inner, Taken, Mismatch);
  ++Ctx.Stats.TreeCalls;
  if (Ctx.EventListener) {
    JitEvent E;
    E.Kind = JitEventKind::TreeCall;
    E.FragmentId = Inner->Id;
    E.ScriptId = Inner->AnchorScript ? Inner->AnchorScript->Id : ~0u;
    E.Pc = Inner->AnchorPc;
    E.Arg0 = F->Id;
    Ctx.emitEvent(E);
  }

  // The inner tree rewrote the TAR; drop all cached knowledge and adopt
  // the exit state it returned through.
  Tracker.clear();
  VFrames.clear();
  for (const FrameEntry &Fr : Taken->Frames)
    VFrames.push_back({Fr.Script, Fr.Base, Fr.ReturnPc});
  VSp = Taken->Sp;
  FallbackTypes = Taken->Types.Types;
  if (Inner->RequiredTarSlots > MaxSlot)
    MaxSlot = Inner->RequiredTarSlots;
  noteSlot(numGlobals() + VSp);
  verifyFailed(); // a bad stitch point aborts before recording continues
}

bool TraceRecorder::framesMatch(const std::vector<FrameEntry> &Entry) const {
  if (Entry.size() != VFrames.size())
    return false;
  for (size_t D = 0; D < VFrames.size(); ++D)
    if (Entry[D].Script != VFrames[D].Script ||
        Entry[D].Base != VFrames[D].Base)
      return false;
  return true;
}

bool TraceRecorder::canCoerceTo(const TypeMap &Entry) {
  TypeMap Now = currentTypeMap();
  if (Now.size() != Entry.size() || Now.NumGlobals != Entry.NumGlobals)
    return false;
  for (uint32_t S = 0; S < Now.size(); ++S) {
    if (Now.Types[S] == Entry.Types[S])
      continue;
    if (Now.Types[S] == TraceType::Int &&
        Entry.Types[S] == TraceType::Double)
      continue; // promotable
    return false;
  }
  return true;
}

void TraceRecorder::coerceTo(const TypeMap &Entry) {
  TypeMap Now = currentTypeMap();
  for (uint32_t S = 0; S < Now.size(); ++S) {
    if (Now.Types[S] == TraceType::Int &&
        Entry.Types[S] == TraceType::Double) {
      Tracked V = readSlot(S);
      writeSlot(S, W->ins1(LOp::I2D, V.Ins), TraceType::Double);
    }
  }
}

// --- Loop closing -----------------------------------------------------------------------------------

bool TraceRecorder::closeLoop(const std::vector<Fragment *> &Peers) {
  if (St != Status::Recording)
    return false;

  // Preempt/GC guard at the loop edge (§6.4).
  if (Ctx.Opts.EnablePreemptGuard) {
    LIns *Flag = W->insLoad(
        LOp::LdI, immQ((int64_t)(intptr_t)&Ctx.PreemptFlag), 0);
    ExitDescriptor *E = snapshot(ExitKind::Preempt,
                                 RecMode == Mode::Root ? F->AnchorPc
                                                       : F->Root->AnchorPc);
    W->insGuard(LOp::GuardT, W->ins2(LOp::EqI, Flag, immI(0)), E);
  }

  TypeMap Now = currentTypeMap();
  Fragment *Root = RecMode == Mode::Root ? F : F->Root;

  if (RecMode == Mode::Root && Now == F->EntryTypes) {
    // Type-stable: close the loop onto ourselves.
    W->insLoop();
  } else if (RecMode == Mode::Root && canCoerceTo(F->EntryTypes)) {
    // Close onto ourselves by promoting Int slots to the Double our own
    // entry map (typically oracle-demoted) expects.
    coerceTo(F->EntryTypes);
    W->insLoop();
  } else {
    // Look for a peer whose entry types match ours (Fig. 6: connect the
    // loop edges of complementary type-unstable traces). Int slots may be
    // promoted to Double to reach a peer.
    Fragment *Match = nullptr;
    for (Fragment *P : Peers) {
      if (P->EntryTypes == Now && framesMatch(P->EntryFrames)) {
        Match = P;
        break;
      }
    }
    if (!Match && RecMode == Mode::Branch && Root->EntryTypes == Now &&
        framesMatch(Root->EntryFrames))
      Match = Root;
    if (!Match) {
      for (Fragment *P : Peers) {
        if (!P->Body.empty() && canCoerceTo(P->EntryTypes) &&
            framesMatch(P->EntryFrames)) {
          Match = P;
          break;
        }
      }
      if (Match)
        coerceTo(Match->EntryTypes);
    }
    if (Match) {
      W->insJmpFrag(Match);
    } else {
      // Note integer mis-speculations in the oracle (§3.2) so the next
      // recording starts type-stable.
      const TypeMap &Ref = Root->EntryTypes;
      for (uint32_t S = 0; S < Now.size() && S < Ref.size(); ++S) {
        if (Now.Types[S] == TraceType::Double &&
            Ref.Types[S] == TraceType::Int) {
          std::vector<FrameEntry> Frames;
          for (const RecFrame &Fr : VFrames)
            Frames.push_back({Fr.Script, Fr.Base, Fr.ReturnPc});
          uint64_t Key = Monitor.oracleKeyForSlot(S, Frames);
          if (Key) {
            Monitor.oracle().markDemote(Key);
            ++Ctx.Stats.OracleDemotions;
          }
        }
      }
      ExitDescriptor *E =
          snapshot(ExitKind::Unstable,
                   RecMode == Mode::Root ? F->AnchorPc : Root->AnchorPc);
      W->insExit(E);
    }
  }

  if (verifyFailed())
    return false;
  F->Body = std::move(Buffer->instructions());
  F->LirRecorded = (uint32_t)F->Body.size();
  F->RequiredTarSlots = MaxSlot + 8;
  St = Status::Finished;
  return true;
}

// --- Main dispatch ------------------------------------------------------------------------------------

void TraceRecorder::recordOp(uint32_t Pc) {
  if (St != Status::Recording)
    return;

  // The previous bytecode's emissions (or the entry instrumentation) may
  // have tripped the streaming verifier; stop before recording on top of a
  // malformed trace.
  if (verifyFailed())
    return;

  assert(VSp == Interp.stackTop() && "recorder out of sync with interpreter");
  assert(VFrames.size() == Interp.frames().size());

  if (++OpsRecorded > Ctx.Opts.MaxTraceLength ||
      Buffer->size() > Ctx.Opts.MaxTraceLength * 4) {
    abort(AbortReason::TraceTooLong);
    return;
  }

  FunctionScript *S = script();
  Op O = S->opAt(Pc);

  // Leaving the traced loop at the entry frame level ends the trace with a
  // plain exit to the monitor ("the VM simply ends the trace with an exit
  // to the trace monitor", §3.2).
  Fragment *Root = RecMode == Mode::Root ? F : F->Root;
  if (VFrames.size() == EntryFrameDepth && S == Root->AnchorScript && Loop &&
      (Pc < Loop->HeaderPc || Pc >= Loop->EndPc)) {
    ExitDescriptor *E = snapshot(ExitKind::LoopExit, Pc);
    W->insExit(E);
    if (verifyFailed())
      return;
    F->Body = std::move(Buffer->instructions());
    F->LirRecorded = (uint32_t)F->Body.size();
    F->RequiredTarSlots = MaxSlot + 8;
    St = Status::Finished;
    return;
  }

  ++F->BytecodesCovered;

  switch (O) {
  case Op::Nop:
  case Op::Nop3:
    return;
  case Op::LoopHeader:
    assert(false && "loop headers are handled by the monitor");
    return;

  case Op::PushConst: {
    Value V = S->Consts[S->u16At(Pc + 1)];
    if (V.isInt()) {
      push(immI(V.toInt()), TraceType::Int);
    } else if (V.isDoubleCell()) {
      push(immD(V.toDoubleCell()->Val), TraceType::Double);
    } else if (V.isString()) {
      push(immQ((int64_t)(intptr_t)V.toString()), TraceType::String);
      F->EmbeddedRoots.push_back(V);
    } else if (V.isBoolean()) {
      push(immI(V.toBoolean() ? 1 : 0), TraceType::Boolean);
    } else if (V.isNull()) {
      push(nullptr, TraceType::Null);
    } else {
      push(nullptr, TraceType::Undefined);
    }
    return;
  }
  case Op::PushUndefined:
    push(nullptr, TraceType::Undefined);
    return;
  case Op::Pop:
    --VSp;
    return;
  case Op::PopResult:
    // Emitted only for top-level statements, which sit outside any loop;
    // a trace should never reach one. Bail rather than lose the result.
    abort(AbortReason::UnsupportedBytecode);
    return;
  case Op::Dup: {
    Tracked T = top();
    push(T.Ins, T.Ty);
    return;
  }
  case Op::Dup2: {
    Tracked A = top(1), B = top(0);
    push(A.Ins, A.Ty);
    push(B.Ins, B.Ty);
    return;
  }

  case Op::GetLocal: {
    uint32_t SlotIdx = slotOfStack(VFrames.back().Base + S->u16At(Pc + 1));
    Tracked V = readSlot(SlotIdx);
    push(V.Ins, V.Ty);
    return;
  }
  case Op::SetLocal: {
    Tracked V = top();
    writeSlot(slotOfStack(VFrames.back().Base + S->u16At(Pc + 1)), V.Ins,
              V.Ty);
    return;
  }
  case Op::GetGlobal: {
    Tracked V = readSlot(slotOfGlobal(S->u16At(Pc + 1)));
    push(V.Ins, V.Ty);
    return;
  }
  case Op::SetGlobal: {
    Tracked V = top();
    writeSlot(slotOfGlobal(S->u16At(Pc + 1)), V.Ins, V.Ty);
    return;
  }

  case Op::GetProp:
    recordGetProp(Pc);
    return;
  case Op::SetProp:
    recordSetProp(Pc);
    return;
  case Op::InitProp: {
    Tracked V = top(0);
    Tracked O2 = top(1);
    if (O2.Ty != TraceType::Object) {
      abort(AbortReason::InitPropOnNonObject);
      return;
    }
    String *Name = S->Atoms[S->u16At(Pc + 1)];
    LIns *Args[4] = {immQ((int64_t)(intptr_t)&Ctx), O2.Ins,
                     immQ((int64_t)(intptr_t)Name), boxValue(V.Ins, V.Ty)};
    W->insCall(&helperCalls().InitProp, Args, 4);
    --VSp;
    return;
  }
  case Op::GetElem:
    recordGetElem(Pc);
    return;
  case Op::SetElem:
    recordSetElem(Pc);
    return;

  case Op::Add:
  case Op::Sub:
  case Op::Mul:
  case Op::Div:
  case Op::Mod:
  case Op::Neg:
    recordArith(O, Pc);
    return;

  case Op::BitAnd:
  case Op::BitOr:
  case Op::BitXor:
  case Op::Shl:
  case Op::Shr:
  case Op::Ushr:
  case Op::BitNot:
    recordBitop(O, Pc);
    return;

  case Op::Lt:
  case Op::Le:
  case Op::Gt:
  case Op::Ge:
  case Op::Eq:
  case Op::Ne:
  case Op::StrictEq:
  case Op::StrictNe:
    recordCompare(O, Pc);
    return;

  case Op::LogicalNot: {
    Tracked V = top();
    LIns *T = truthyIns(V);
    --VSp;
    push(W->ins2(LOp::XorI, T, immI(1)), TraceType::Boolean);
    return;
  }

  case Op::Jump:
    return;
  case Op::JumpIfFalse:
  case Op::JumpIfTrue:
    recordBranch(O, Pc);
    return;

  case Op::Call:
    recordCall(Pc);
    return;
  case Op::CallProp:
    recordCallProp(Pc);
    return;

  case Op::Return:
  case Op::ReturnUndefined:
    recordReturn(O, Pc);
    return;

  case Op::NewArray: {
    uint16_t N = S->u16At(Pc + 1);
    LIns *Args[2] = {immQ((int64_t)(intptr_t)&Ctx), immI(N)};
    LIns *Arr = W->insCall(&helperCalls().NewArray, Args, 2);
    for (uint16_t K = 0; K < N; ++K) {
      Tracked EV = top(N - 1 - K);
      LIns *SetArgs[4] = {immQ((int64_t)(intptr_t)&Ctx), Arr, immI(K),
                          boxValue(EV.Ins, EV.Ty)};
      W->insCall(&helperCalls().ArraySetV, SetArgs, 4);
    }
    VSp -= N;
    push(Arr, TraceType::Object);
    return;
  }
  case Op::NewObject: {
    LIns *Args[1] = {immQ((int64_t)(intptr_t)&Ctx)};
    LIns *Obj = W->insCall(&helperCalls().NewObject, Args, 1);
    push(Obj, TraceType::Object);
    return;
  }

  case Op::NumOps:
    abort(AbortReason::UnsupportedBytecode);
    return;
  }
}

} // namespace tracejit
