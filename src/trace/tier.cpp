//===- tier.cpp - Tier name tables ------------------------------------------===//

#include "trace/tier.h"

namespace tracejit {

const char *tierName(Tier T) {
  switch (T) {
  case Tier::Interpreter:
    return "interpreter";
  case Tier::Trace:
    return "trace";
  case Tier::Method:
    return "method";
  }
  return "?";
}

const char *tierChangeReasonName(TierChangeReason R) {
  switch (R) {
  case TierChangeReason::None:
    return "none";
  case TierChangeReason::MegamorphicAbort:
    return "megamorphic-abort";
  case TierChangeReason::BranchOverflow:
    return "branch-overflow";
  case TierChangeReason::RepeatedAborts:
    return "repeated-aborts";
  case TierChangeReason::MethodByPolicy:
    return "method-by-policy";
  case TierChangeReason::MethodCompileFailed:
    return "method-compile-failed";
  case TierChangeReason::Blacklisted:
    return "blacklisted";
  case TierChangeReason::NumReasons:
    break;
  }
  return "?";
}

} // namespace tracejit
