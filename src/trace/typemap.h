//===- typemap.h - Trace type maps ------------------------------------------===//
//
// "A typed trace also has an entry type map giving the required types for
// variables used on the trace... The entry type map is much like the
// signature of a function." (§3.1)
//
// Our type maps cover a fixed slot domain that mirrors the interpreter
// state 1:1:
//
//   slot 0 .. NumGlobals-1            the global table
//   slot NumGlobals .. NumGlobals+Sp  the interpreter value stack (all
//                                     active frames' locals and operand
//                                     stacks, exactly as laid out by the
//                                     interpreter)
//
// The trace activation record (TAR) uses the same indexing with 8-byte
// slots, so identical type maps imply identical activation-record layouts
// ("identical type maps yield identical activation record layouts, so the
// trace activation record can be reused immediately by the branch trace",
// §6.2) and an outer tree can call an inner tree by passing its own TAR.
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_TRACE_TYPEMAP_H
#define TRACEJIT_TRACE_TYPEMAP_H

#include <cstdint>
#include <string>
#include <vector>

#include "vm/value.h"

namespace tracejit {

/// The unboxed on-trace type of one slot.
enum class TraceType : uint8_t {
  Int,       ///< int32 in the low half of the slot
  Double,    ///< IEEE double
  Object,    ///< Object*
  String,    ///< String*
  Boolean,   ///< int32 0/1
  Null,      ///< no payload
  Undefined, ///< no payload
  /// Method-tier slots: the raw boxed Value word, untouched. A map of all
  /// Boxed slots never equals any trace-recorded map, so method fragments
  /// can never be linked or peer-matched against typed traces.
  Boxed,
};

const char *traceTypeName(TraceType T);

/// Observe the trace type of a boxed value.
inline TraceType traceTypeOf(const Value &V) {
  if (V.isInt())
    return TraceType::Int;
  if (V.isDoubleCell())
    return TraceType::Double;
  if (V.isObject())
    return TraceType::Object;
  if (V.isString())
    return TraceType::String;
  if (V.isNull())
    return TraceType::Null;
  if (V.isUndefined())
    return TraceType::Undefined;
  return TraceType::Boolean;
}

struct TypeMap {
  uint32_t NumGlobals = 0;
  /// Types for slots [0, NumGlobals + StackSlots).
  std::vector<TraceType> Types;

  uint32_t size() const { return (uint32_t)Types.size(); }
  uint32_t stackSlots() const { return size() - NumGlobals; }

  bool operator==(const TypeMap &O) const {
    return NumGlobals == O.NumGlobals && Types == O.Types;
  }
  bool operator!=(const TypeMap &O) const { return !(*this == O); }

  std::string describe() const;
};

/// Byte offset of slot \p I within the TAR.
inline int32_t tarOffsetOfSlot(uint32_t I) { return (int32_t)(I * 8); }

} // namespace tracejit

#endif // TRACEJIT_TRACE_TYPEMAP_H
