//===- recorder.h - The trace recorder -----------------------------------------===//
//
// Shadows the interpreter bytecode-by-bytecode while recording, emitting
// type-specialized LIR through the forward filter pipeline (§3.1, §6.3).
// The recorder:
//
//  * tracks interpreter slots (globals + the whole value stack) as LIR
//    values with trace types, importing lazily with typed loads from the
//    TAR and materializing every write as a TAR store (the backward
//    dead-store filters remove the unobservable ones, §5.1);
//  * peeks at the live interpreter state (which has not yet executed the
//    bytecode) to specialize on observed types, shapes, callee identity,
//    bounds, and branch directions, emitting a guard for each speculation;
//  * inlines scripted calls by mirroring the interpreter's frame layout
//    (function inlining, §3.1), and calls typed natives directly (§6.5);
//  * snapshots an ExitDescriptor per guard: resume pc, stack depth, frame
//    chain, and the type map needed to rebox the TAR into the interpreter.
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_TRACE_RECORDER_H
#define TRACEJIT_TRACE_RECORDER_H

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "interp/interpreter.h"
#include "jit/fragment.h"
#include "lir/filters.h"
#include "lir/lir.h"
#include "lir/verify.h"
#include "trace/oracle.h"

namespace tracejit {

class TraceMonitorImpl;

class TraceRecorder {
public:
  /// What recording is extending.
  enum class Mode : uint8_t {
    Root,   ///< New tree (or new type-unstable peer) at a loop header.
    Branch, ///< Branch trace from a hot side exit of an existing tree.
  };

  TraceRecorder(VMContext &Ctx, Interpreter &I, TraceMonitorImpl &M,
                Fragment *F, Mode Mode, LoopRecord *Loop,
                ExitDescriptor *AnchorExit);
  ~TraceRecorder();

  enum class Status : uint8_t { Recording, Finished, Aborted };
  Status status() const { return St; }
  /// Why the recording aborted (AbortReason::None while recording).
  AbortReason abortReason() const { return AbortCause; }
  Fragment *fragment() { return F; }
  Mode mode() const { return RecMode; }
  LoopRecord *loop() { return Loop; }

  /// Pre-execution hook for every bytecode except LoopHeader.
  void recordOp(uint32_t Pc);

  /// Called by the monitor at a loop header. \p AtAnchor: this is the
  /// header the trace must close at (same pc and frame depth).
  bool atAnchor(uint32_t Pc) const;

  /// Close the loop at the anchor header: emit the preempt guard and
  /// either the Loop back edge (type-stable), a JmpFrag to a matching peer
  /// (branch traces / linked peers), or an unstable Exit. Moves the LIR
  /// body into the fragment. Returns false if the trace had to be aborted.
  bool closeLoop(const std::vector<Fragment *> &Peers);

  /// Record a call to a nested tree that the monitor just executed
  /// successfully, then adopt the inner tree's exit state (§4.1).
  void recordTreeCall(Fragment *Inner, ExitDescriptor *TakenExit);

  /// Do the recorder's current frames (scripts, bases) match a fragment's
  /// entry chain? Required in addition to type-map equality.
  bool framesMatch(const std::vector<FrameEntry> &Entry) const;

  /// Can the current state be adapted to \p Entry by promoting Int slots
  /// to Double (the only legal coercion)? Exact matches return true too.
  bool canCoerceTo(const TypeMap &Entry);
  /// Emit the promotions so the current state matches \p Entry exactly.
  void coerceTo(const TypeMap &Entry);

  /// The recorder's current view of slot types, as a full type map over
  /// [0, NumGlobals + vSp) -- used to select nested trees.
  TypeMap currentTypeMap();

  /// Current virtual frame depth (for anchor identification).
  size_t frameDepth() const { return VFrames.size(); }

  void abort(AbortReason Why);

private:
  // --- Slot tracking -----------------------------------------------------------
  struct Tracked {
    LIns *Ins = nullptr; ///< Null for Null/Undefined (type carries all).
    TraceType Ty = TraceType::Undefined;
  };

  uint32_t numGlobals() const { return F->EntryTypes.NumGlobals; }
  uint32_t slotOfGlobal(uint32_t G) const { return G; }
  uint32_t slotOfStack(uint32_t StackIdx) const {
    return numGlobals() + StackIdx;
  }

  TraceType fallbackTypeOf(uint32_t Slot);
  Tracked readSlot(uint32_t Slot);
  void writeSlot(uint32_t Slot, LIns *V, TraceType T);
  void noteSlot(uint32_t Slot) {
    if (Slot + 1 > MaxSlot)
      MaxSlot = Slot + 1;
  }

  // Virtual operand stack of the top frame (indices are interpreter
  // value-stack positions).
  Tracked readStack(uint32_t StackIdx) { return readSlot(slotOfStack(StackIdx)); }
  void push(LIns *V, TraceType T) {
    writeSlot(slotOfStack(VSp), V, T);
    ++VSp;
  }
  Tracked pop() {
    --VSp;
    return readSlot(slotOfStack(VSp));
  }
  Tracked top(uint32_t Depth = 0) { return readSlot(slotOfStack(VSp - 1 - Depth)); }

  // --- Exits ---------------------------------------------------------------------
  ExitDescriptor *snapshot(ExitKind Kind, uint32_t Pc);

  // --- Emission helpers -------------------------------------------------------------
  LIns *tarBase() { return ParamTar; }
  LIns *immI(int32_t V) { return W->insImmI(V); }
  LIns *immQ(int64_t V) { return W->insImmQ(V); }
  LIns *immD(double V) { return W->insImmD(V); }
  LIns *ldSlot(TraceType T, uint32_t Slot);
  void stSlot(uint32_t Slot, LIns *V, TraceType T);

  /// Unbox a boxed value word under a type guard (heap loads).
  LIns *unboxGuarded(LIns *Word, TraceType Expect, uint32_t Pc);
  /// Build a boxed value word from an unboxed value (may emit a BoxDouble
  /// call for doubles).
  LIns *boxValue(LIns *V, TraceType T);

  LIns *promoteToD(const Tracked &V);
  LIns *asInt32(const Tracked &V);
  LIns *truthyIns(const Tracked &V);
  bool isNumericType(TraceType T) const {
    return T == TraceType::Int || T == TraceType::Double ||
           T == TraceType::Boolean;
  }
  bool isIntLike(TraceType T) const {
    return T == TraceType::Int || T == TraceType::Boolean;
  }

  /// Guard that object \p Obj (unboxed ptr) has shape \p S.
  void guardShape(LIns *Obj, class Shape *S, uint32_t Pc);
  void guardIsArray(LIns *Obj, uint32_t Pc);
  /// Guard that \p Obj's shape is one of \p Shapes[0..N): one shape load,
  /// per-shape EqQ compares OR-ed into a single GuardT. N == 1 degenerates
  /// to guardShape.
  void guardShapeMulti(LIns *Obj, class Shape *const *Shapes, size_t N,
                       uint32_t Pc);
  /// Shape guard for a named-slot property site, preferring IC knowledge:
  /// a mono site replays the interpreter-proven (shape, slot) pair; a poly
  /// site whose entries agree on \p Slot gets one multi-shape guard so a
  /// single trace serves every cached shape. Falls back to a plain
  /// guardShape on the live shape.
  void icShapeGuard(const PropertyIC *IC, Object *RO, LIns *Obj, uint32_t Slot,
                    uint32_t Pc);
  /// True when the IC or the oracle says this property site is megamorphic
  /// (the oracle remembers across IC invalidation).
  bool icSiteMegamorphic(const PropertyIC &IC, uint32_t Pc) const;

  // --- Bytecode recording ------------------------------------------------------------
  void recordArith(Op O, uint32_t Pc);
  void recordCompare(Op O, uint32_t Pc);
  void recordBitop(Op O, uint32_t Pc);
  void recordBranch(Op O, uint32_t Pc);
  void recordGetProp(uint32_t Pc);
  void recordSetProp(uint32_t Pc);
  void recordGetElem(uint32_t Pc);
  void recordSetElem(uint32_t Pc);
  void recordCall(uint32_t Pc);
  void recordCallProp(uint32_t Pc);
  void recordReturn(Op O, uint32_t Pc);
  void recordScriptedCall(Object *Callee, uint32_t ArgC, uint32_t ReturnPc,
                          uint32_t Pc);
  bool recordTraceableNative(Object *Callee, uint32_t ArgC, uint32_t Pc);

  /// Interpreter peeking: the op has not executed yet, so the operand
  /// values are on the live interpreter stack.
  Value peekStack(uint32_t DepthFromTop);
  FunctionScript *script() const;

  VMContext &Ctx;
  Interpreter &Interp;
  TraceMonitorImpl &Monitor;
  Fragment *F;
  Mode RecMode;
  LoopRecord *Loop; ///< Extent of the loop being traced (root tree's loop).
  ExitDescriptor *AnchorExit; ///< Branch mode: the exit being extended.

  // Virtual mirror of the interpreter.
  struct RecFrame {
    FunctionScript *Script;
    uint32_t Base;
    uint32_t ReturnPc;
  };
  std::vector<RecFrame> VFrames;
  uint32_t VSp = 0;
  size_t EntryFrameDepth = 0;

  std::unordered_map<uint32_t, Tracked> Tracker;
  /// Fallback types for unimported slots (entry map, updated after tree
  /// calls).
  std::vector<TraceType> FallbackTypes;

  // LIR pipeline.
  std::unique_ptr<LirBuffer> Buffer;
  std::unique_ptr<CseFilter> Cse;
  std::unique_ptr<ExprFilter> Expr;
  std::unique_ptr<VerifyWriter> Verify; ///< Head when Opts.VerifyLir.
  LirWriter *W = nullptr;
  LIns *ParamTar = nullptr;

  /// Latched-verifier check: true (and aborts with VerifyFailed, printing
  /// the diagnostic) when the streaming verifier has rejected an emission.
  bool verifyFailed();

  Status St = Status::Recording;
  AbortReason AbortCause = AbortReason::None;
  uint32_t MaxSlot = 0;
  uint32_t OpsRecorded = 0;
};

} // namespace tracejit

#endif // TRACEJIT_TRACE_RECORDER_H
