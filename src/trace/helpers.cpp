//===- helpers.cpp - Runtime helpers callable from traces ----------------------===//

#include "trace/helpers.h"

#include <cmath>
#include <cstring>
#include <utility>

#include "interp/interpreter.h"
#include "interp/vmcontext.h"
#include "vm/object.h"
#include "vm/string.h"

namespace tracejit {

// --- Helper bodies ----------------------------------------------------------------

extern "C" {

int32_t tj_ToInt32D(double D) { return Interpreter::toInt32(D); }

int32_t tj_ModI(int32_t A, int32_t B) { return A % B; }

double tj_ModD(double A, double B) { return std::fmod(A, B); }

uint64_t tj_BoxDouble(VMContext *Ctx, double D) {
  Value V = Ctx->TheHeap.boxDouble(D);
  Ctx->maybeScheduleGC();
  return V.bits();
}

int32_t tj_ArraySetV(VMContext *Ctx, Object *A, int32_t Idx, uint64_t Bits) {
  if (Idx < 0)
    return 0;
  A->setElement(Ctx->TheHeap, (uint32_t)Idx, Value::fromBits(Bits));
  return 1;
}

int32_t tj_ArraySetD(VMContext *Ctx, Object *A, int32_t Idx, double D) {
  if (Idx < 0)
    return 0;
  Value V = Ctx->TheHeap.boxDouble(D);
  Ctx->maybeScheduleGC();
  A->setElement(Ctx->TheHeap, (uint32_t)Idx, V);
  return 1;
}

uint64_t tj_ConcatSS(VMContext *Ctx, String *A, String *B) {
  std::string S;
  S.reserve(A->length() + B->length());
  S.append(A->view());
  S.append(B->view());
  String *R = String::create(Ctx->TheHeap, S);
  Ctx->maybeScheduleGC();
  return (uint64_t)(uintptr_t)R;
}

int32_t tj_EqSS(String *A, String *B) { return A->view() == B->view(); }

uint64_t tj_CharAt(VMContext *Ctx, String *S, int32_t I) {
  if (I < 0 || (uint32_t)I >= S->length()) {
    String *R = String::create(Ctx->TheHeap, "");
    Ctx->maybeScheduleGC();
    return (uint64_t)(uintptr_t)R;
  }
  String *R =
      String::create(Ctx->TheHeap, std::string_view(S->data() + I, 1));
  Ctx->maybeScheduleGC();
  return (uint64_t)(uintptr_t)R;
}

uint64_t tj_FromCharCode1(VMContext *Ctx, int32_t C) {
  char Ch = (char)(C & 0xff);
  String *R = String::create(Ctx->TheHeap, std::string_view(&Ch, 1));
  Ctx->maybeScheduleGC();
  return (uint64_t)(uintptr_t)R;
}

uint64_t tj_NewArray(VMContext *Ctx, int32_t Len) {
  Object *A = Object::createArray(Ctx->TheHeap, Ctx->Shapes,
                                  Len < 0 ? 0 : (uint32_t)Len);
  Ctx->maybeScheduleGC();
  return (uint64_t)(uintptr_t)A;
}

uint64_t tj_NewObject(VMContext *Ctx) {
  Object *O = Object::create(Ctx->TheHeap, Ctx->Shapes);
  Ctx->maybeScheduleGC();
  return (uint64_t)(uintptr_t)O;
}

void tj_InitProp(VMContext *Ctx, Object *O, String *Name, uint64_t Bits) {
  O->setProperty(Ctx->Shapes, Name, Value::fromBits(Bits));
}

int32_t tj_ArrayPushV(VMContext *Ctx, Object *A, uint64_t Bits) {
  A->setElement(Ctx->TheHeap, A->arrayLength(), Value::fromBits(Bits));
  return (int32_t)A->arrayLength();
}

int32_t tj_TruthyD(double D) { return D != 0 && !std::isnan(D); }

} // extern "C"

// --- CallInfo construction ----------------------------------------------------------

namespace {

template <typename T> constexpr LTy ltyOf() {
  if constexpr (std::is_void_v<T>)
    return LTy::Void;
  else if constexpr (std::is_same_v<T, double>)
    return LTy::D;
  else if constexpr (std::is_same_v<T, int32_t> || std::is_same_v<T, uint32_t>)
    return LTy::I32;
  else
    return LTy::Q;
}

template <typename T> T fromWord(uint64_t W) {
  if constexpr (std::is_same_v<T, double>) {
    double D;
    std::memcpy(&D, &W, 8);
    return D;
  } else if constexpr (std::is_pointer_v<T>) {
    return (T)(uintptr_t)W;
  } else {
    return (T)W;
  }
}

template <typename T> uint64_t toWord(T V) {
  if constexpr (std::is_same_v<T, double>) {
    uint64_t W;
    std::memcpy(&W, &V, 8);
    return W;
  } else if constexpr (std::is_pointer_v<T>) {
    return (uint64_t)(uintptr_t)V;
  } else if constexpr (sizeof(T) == 8) {
    return (uint64_t)V;
  } else {
    return (uint64_t)(uint32_t)V; // int32 results zero-extended
  }
}

template <typename R, typename... As>
uint64_t sigShim(void *Addr, const uint64_t *W) {
  auto *Fn = (R (*)(As...))Addr;
  return [&]<size_t... Is>(std::index_sequence<Is...>) -> uint64_t {
    if constexpr (std::is_void_v<R>) {
      Fn(fromWord<As>(W[Is])...);
      return 0;
    } else {
      return toWord<R>(Fn(fromWord<As>(W[Is])...));
    }
  }(std::index_sequence_for<As...>{});
}

template <typename R, typename... As>
CallInfo makeCI(R (*Fn)(As...), const char *Name, bool Pure) {
  CallInfo CI;
  CI.Addr = (void *)Fn;
  CI.Name = Name;
  CI.Ret = ltyOf<R>();
  CI.NArgs = (uint8_t)sizeof...(As);
  LTy Tys[] = {ltyOf<As>()..., LTy::Void};
  for (uint32_t K = 0; K < sizeof...(As); ++K)
    CI.Args[K] = Tys[K];
  CI.Pure = Pure;
  CI.Shim = sigShim<R, As...>;
  return CI;
}

} // namespace

const HelperCalls &helperCalls() {
  static HelperCalls H = [] {
    HelperCalls C;
    C.ToInt32D = makeCI(tj_ToInt32D, "js_ToInt32", /*Pure=*/true);
    C.ModI = makeCI(tj_ModI, "js_imod", /*Pure=*/true);
    C.ModD = makeCI(tj_ModD, "js_dmod", /*Pure=*/true);
    C.BoxDouble = makeCI(tj_BoxDouble, "js_BoxDouble", /*Pure=*/false);
    C.ArraySetV = makeCI(tj_ArraySetV, "js_Array_set", /*Pure=*/false);
    C.ArraySetD = makeCI(tj_ArraySetD, "js_Array_setd", /*Pure=*/false);
    C.ConcatSS = makeCI(tj_ConcatSS, "js_ConcatStrings", /*Pure=*/false);
    C.EqSS = makeCI(tj_EqSS, "js_EqualStrings", /*Pure=*/true);
    C.CharAt = makeCI(tj_CharAt, "js_String_charAt", /*Pure=*/false);
    C.FromCharCode1 =
        makeCI(tj_FromCharCode1, "js_String_fromCharCode", /*Pure=*/false);
    C.NewArray = makeCI(tj_NewArray, "js_NewArray", /*Pure=*/false);
    C.NewObject = makeCI(tj_NewObject, "js_NewObject", /*Pure=*/false);
    C.InitProp = makeCI(tj_InitProp, "js_InitProp", /*Pure=*/false);
    C.ArrayPushV = makeCI(tj_ArrayPushV, "js_Array_push", /*Pure=*/false);
    C.TruthyD = makeCI(tj_TruthyD, "js_TruthyD", /*Pure=*/true);
    C.MathD_D = makeCI((double (*)(double))nullptr, "math1", /*Pure=*/true);
    C.MathD_DD =
        makeCI((double (*)(double, double))nullptr, "math2", /*Pure=*/true);
    C.MathD_CTX =
        makeCI((double (*)(VMContext *))nullptr, "mathctx", /*Pure=*/false);
    return C;
  }();
  return H;
}

CallInfo makeMathCallInfo(const CallInfo &Proto, void *Addr,
                          const char *Name) {
  CallInfo CI = Proto;
  CI.Addr = Addr;
  CI.Name = Name;
  return CI;
}

} // namespace tracejit
