//===- helpers.cpp - Runtime helpers callable from traces ----------------------===//

#include "trace/helpers.h"

#include <cmath>
#include <cstring>
#include <utility>

#include "interp/interpreter.h"
#include "interp/vmcontext.h"
#include "trace/monitor.h"
#include "vm/object.h"
#include "vm/string.h"

namespace tracejit {

// --- Helper bodies ----------------------------------------------------------------

extern "C" {

int32_t tj_ToInt32D(double D) { return Interpreter::toInt32(D); }

int32_t tj_ModI(int32_t A, int32_t B) { return A % B; }

double tj_ModD(double A, double B) { return std::fmod(A, B); }

uint64_t tj_BoxDouble(VMContext *Ctx, double D) {
  Value V = Ctx->TheHeap.boxDouble(D);
  Ctx->maybeScheduleGC();
  return V.bits();
}

int32_t tj_ArraySetV(VMContext *Ctx, Object *A, int32_t Idx, uint64_t Bits) {
  if (Idx < 0)
    return 0;
  A->setElement(Ctx->TheHeap, (uint32_t)Idx, Value::fromBits(Bits));
  return 1;
}

int32_t tj_ArraySetD(VMContext *Ctx, Object *A, int32_t Idx, double D) {
  if (Idx < 0)
    return 0;
  Value V = Ctx->TheHeap.boxDouble(D);
  Ctx->maybeScheduleGC();
  A->setElement(Ctx->TheHeap, (uint32_t)Idx, V);
  return 1;
}

uint64_t tj_ConcatSS(VMContext *Ctx, String *A, String *B) {
  std::string S;
  S.reserve(A->length() + B->length());
  S.append(A->view());
  S.append(B->view());
  String *R = String::create(Ctx->TheHeap, S);
  Ctx->maybeScheduleGC();
  return (uint64_t)(uintptr_t)R;
}

int32_t tj_EqSS(String *A, String *B) { return A->view() == B->view(); }

uint64_t tj_CharAt(VMContext *Ctx, String *S, int32_t I) {
  if (I < 0 || (uint32_t)I >= S->length()) {
    String *R = String::create(Ctx->TheHeap, "");
    Ctx->maybeScheduleGC();
    return (uint64_t)(uintptr_t)R;
  }
  String *R =
      String::create(Ctx->TheHeap, std::string_view(S->data() + I, 1));
  Ctx->maybeScheduleGC();
  return (uint64_t)(uintptr_t)R;
}

uint64_t tj_FromCharCode1(VMContext *Ctx, int32_t C) {
  char Ch = (char)(C & 0xff);
  String *R = String::create(Ctx->TheHeap, std::string_view(&Ch, 1));
  Ctx->maybeScheduleGC();
  return (uint64_t)(uintptr_t)R;
}

uint64_t tj_NewArray(VMContext *Ctx, int32_t Len) {
  Object *A = Object::createArray(Ctx->TheHeap, Ctx->Shapes,
                                  Len < 0 ? 0 : (uint32_t)Len);
  Ctx->maybeScheduleGC();
  return (uint64_t)(uintptr_t)A;
}

uint64_t tj_NewObject(VMContext *Ctx) {
  Object *O = Object::create(Ctx->TheHeap, Ctx->Shapes);
  Ctx->maybeScheduleGC();
  return (uint64_t)(uintptr_t)O;
}

void tj_InitProp(VMContext *Ctx, Object *O, String *Name, uint64_t Bits) {
  O->setProperty(Ctx->Shapes, Name, Value::fromBits(Bits));
}

int32_t tj_ArrayPushV(VMContext *Ctx, Object *A, uint64_t Bits) {
  A->setElement(Ctx->TheHeap, A->arrayLength(), Value::fromBits(Bits));
  return (int32_t)A->arrayLength();
}

int32_t tj_TruthyD(double D) { return D != 0 && !std::isnan(D); }

} // extern "C"

// --- Method-tier helper bodies ------------------------------------------------------
//
// MethodOps is a friend of the Interpreter so the method tier can reuse the
// exact op semantics (getPropValue, callPropValue, nested dispatch) instead
// of reimplementing them. Protocol: set the interpreter pc first (error
// positions come from Frames.back().Script->lineAt(Pc)), run the
// interpreter semantics, and return MethodErrorSentinel when an error is
// pending -- the method code guards the sentinel and deopts at this pc,
// where the dispatch harness unwinds without re-executing the op.

struct MethodOps {
  static String *atom(Interpreter &I, uint32_t Idx) {
    return I.Frames.back().Script->Atoms[Idx];
  }

  static uint64_t finish(Interpreter &I, Value R) {
    return I.Ctx.HasError ? MethodErrorSentinel : R.bits();
  }

  static uint64_t binop(Interpreter &I, uint32_t Pc, Op O, uint64_t Aw,
                        uint64_t Bw) {
    I.Pc = Pc;
    VMContext &C = I.Ctx;
    Value A = Value::fromBits(Aw), B = Value::fromBits(Bw);
    Value R;
    switch (O) {
    case Op::Add:
      if (A.isInt() && B.isInt()) {
        int64_t S = (int64_t)A.toInt() + B.toInt();
        R = Value::fitsInt31(S) ? Value::makeInt((int32_t)S)
                                : C.TheHeap.boxDouble((double)S);
      } else if (A.isString() || B.isString()) {
        R = I.concatValues(A, B);
      } else {
        R = C.TheHeap.boxNumber(Interpreter::toNumber(A) +
                                Interpreter::toNumber(B));
      }
      break;
    case Op::Sub:
      if (A.isInt() && B.isInt()) {
        int64_t S = (int64_t)A.toInt() - B.toInt();
        R = Value::fitsInt31(S) ? Value::makeInt((int32_t)S)
                                : C.TheHeap.boxDouble((double)S);
      } else {
        R = C.TheHeap.boxNumber(Interpreter::toNumber(A) -
                                Interpreter::toNumber(B));
      }
      break;
    case Op::Mul:
      if (A.isInt() && B.isInt()) {
        int64_t S = (int64_t)A.toInt() * B.toInt();
        R = Value::fitsInt31(S) ? Value::makeInt((int32_t)S)
                                : C.TheHeap.boxDouble((double)S);
      } else {
        R = C.TheHeap.boxNumber(Interpreter::toNumber(A) *
                                Interpreter::toNumber(B));
      }
      break;
    case Op::Div:
      R = C.TheHeap.boxNumber(Interpreter::toNumber(A) /
                              Interpreter::toNumber(B));
      break;
    case Op::Mod:
      if (A.isInt() && B.isInt() && A.toInt() >= 0 && B.toInt() > 0)
        R = Value::makeInt(A.toInt() % B.toInt());
      else
        R = C.TheHeap.boxNumber(
            std::fmod(Interpreter::toNumber(A), Interpreter::toNumber(B)));
      break;
    case Op::BitAnd:
    case Op::BitOr:
    case Op::BitXor:
    case Op::Shl:
    case Op::Shr: {
      int32_t X = A.isInt() ? A.toInt() : Interpreter::valueToInt32(A);
      int32_t Y = B.isInt() ? B.toInt() : Interpreter::valueToInt32(B);
      int32_t V;
      switch (O) {
      case Op::BitAnd:
        V = X & Y;
        break;
      case Op::BitOr:
        V = X | Y;
        break;
      case Op::BitXor:
        V = X ^ Y;
        break;
      case Op::Shl:
        V = (int32_t)((uint32_t)X << (Y & 31));
        break;
      default:
        V = X >> (Y & 31);
        break;
      }
      R = Value::makeInt(V);
      break;
    }
    case Op::Ushr: {
      uint32_t X = (uint32_t)(A.isInt() ? A.toInt()
                                        : Interpreter::valueToInt32(A));
      int32_t Y = B.isInt() ? B.toInt() : Interpreter::valueToInt32(B);
      uint32_t V = X >> (Y & 31);
      R = V <= (uint32_t)INT32_MAX ? Value::makeInt((int32_t)V)
                                   : C.TheHeap.boxDouble((double)V);
      break;
    }
    case Op::Lt:
    case Op::Le:
    case Op::Gt:
    case Op::Ge: {
      bool V;
      if (A.isInt() && B.isInt()) {
        int32_t X = A.toInt(), Y = B.toInt();
        V = O == Op::Lt   ? X < Y
            : O == Op::Le ? X <= Y
            : O == Op::Gt ? X > Y
                          : X >= Y;
      } else {
        int Cv = Interpreter::compareValues(A, B);
        if (Cv == 2)
          V = false;
        else
          V = O == Op::Lt   ? Cv < 0
              : O == Op::Le ? Cv <= 0
              : O == Op::Gt ? Cv > 0
                            : Cv >= 0;
      }
      R = Value::makeBoolean(V);
      break;
    }
    case Op::Eq:
      R = Value::makeBoolean(Interpreter::looseEquals(A, B));
      break;
    case Op::Ne:
      R = Value::makeBoolean(!Interpreter::looseEquals(A, B));
      break;
    case Op::StrictEq:
      R = Value::makeBoolean(Interpreter::strictEquals(A, B));
      break;
    case Op::StrictNe:
      R = Value::makeBoolean(!Interpreter::strictEquals(A, B));
      break;
    default:
      I.rtError("unsupported method-tier binop");
      break;
    }
    return finish(I, R);
  }

  static uint64_t unop(Interpreter &I, uint32_t Pc, Op O, uint64_t Vw) {
    I.Pc = Pc;
    Value A = Value::fromBits(Vw);
    Value R;
    switch (O) {
    case Op::Neg:
      if (A.isInt() && A.toInt() != 0 && A.toInt() != INT32_MIN)
        R = Value::makeInt(-A.toInt());
      else
        R = I.Ctx.TheHeap.boxDouble(-Interpreter::toNumber(A));
      break;
    case Op::BitNot:
      R = Value::makeInt(~(A.isInt() ? A.toInt()
                                     : Interpreter::valueToInt32(A)));
      break;
    case Op::LogicalNot:
      R = Value::makeBoolean(!A.truthy());
      break;
    default:
      I.rtError("unsupported method-tier unop");
      break;
    }
    return finish(I, R);
  }

  static uint64_t getProp(Interpreter &I, uint32_t Pc, uint32_t AtomIdx,
                          uint64_t Base) {
    I.Pc = Pc;
    return finish(I, I.getPropValue(Value::fromBits(Base), atom(I, AtomIdx)));
  }

  static uint64_t setProp(Interpreter &I, uint32_t Pc, uint32_t AtomIdx,
                          uint64_t Base, uint64_t Vw) {
    I.Pc = Pc;
    Value B = Value::fromBits(Base);
    if (!B.isObject()) {
      I.rtError("property store on a non-object");
      return MethodErrorSentinel;
    }
    B.toObject()->setProperty(I.Ctx.Shapes, atom(I, AtomIdx),
                              Value::fromBits(Vw));
    return finish(I, Value::undefined());
  }

  static uint64_t initProp(Interpreter &I, uint32_t Pc, uint32_t AtomIdx,
                           uint64_t Base, uint64_t Vw) {
    I.Pc = Pc;
    Value::fromBits(Base).toObject()->setProperty(
        I.Ctx.Shapes, atom(I, AtomIdx), Value::fromBits(Vw));
    return finish(I, Value::undefined());
  }

  static uint64_t getElem(Interpreter &I, uint32_t Pc, uint64_t Base,
                          uint64_t Idx) {
    I.Pc = Pc;
    return finish(
        I, I.getElemValue(Value::fromBits(Base), Value::fromBits(Idx)));
  }

  static uint64_t setElem(Interpreter &I, uint32_t Pc, uint64_t Base,
                          uint64_t Idx, uint64_t Vw) {
    I.Pc = Pc;
    I.setElemValue(Value::fromBits(Base), Value::fromBits(Idx),
                   Value::fromBits(Vw));
    return finish(I, Value::undefined());
  }

  static uint64_t newArray(Interpreter &I, uint32_t Pc, uint32_t N,
                           const uint64_t *Elems) {
    I.Pc = Pc;
    VMContext &C = I.Ctx;
    Object *A = Object::createArray(C.TheHeap, C.Shapes, N);
    for (uint32_t K = 0; K < N; ++K)
      A->setElement(C.TheHeap, K, Value::fromBits(Elems[K]));
    C.maybeScheduleGC();
    return finish(I, Value::makeObject(A));
  }

  static uint64_t newObject(Interpreter &I, uint32_t Pc) {
    I.Pc = Pc;
    VMContext &C = I.Ctx;
    Object *O = Object::create(C.TheHeap, C.Shapes);
    C.maybeScheduleGC();
    return finish(I, Value::makeObject(O));
  }

  /// Mirror the TAR back into the live interpreter state before a nested
  /// call: globals into the global table, the shadowed stack region into
  /// the value stack, and Sp above it. Nested execution (and any GC it
  /// runs -- the stack and globals are GC roots, the TAR is not) then sees
  /// exactly the method's current state.
  static void mirrorTarToInterp(Interpreter &I, uint64_t *Tar, uint32_t Sp) {
    VMContext &C = I.Ctx;
    uint32_t NG = C.Globals.size();
    for (uint32_t G = 0; G < NG; ++G)
      C.Globals.Values[G] = Value::fromBits(Tar[G]);
    for (uint32_t J = 0; J < Sp; ++J)
      I.Stack[J] = Value::fromBits(Tar[NG + J]);
    I.Sp = Sp;
  }

  /// After a nested call: flush any recording the callee started (it
  /// cannot continue once method code resumes), propagate global stores
  /// back into the TAR, and apply the sentinel protocol to the result.
  static uint64_t finishNestedCall(Interpreter &I, uint64_t *Tar, Value R) {
    VMContext &C = I.Ctx;
    if (C.Monitor)
      C.Monitor->flushRecorder();
    if (C.HasError)
      return MethodErrorSentinel;
    uint32_t NG = C.Globals.size();
    for (uint32_t G = 0; G < NG; ++G)
      Tar[G] = C.Globals.Values[G].bits();
    return R.bits();
  }

  static uint64_t call(Interpreter &I, uint32_t Pc, uint32_t ArgC,
                       uint64_t *Tar, uint32_t Sp) {
    I.Pc = Pc;
    mirrorTarToInterp(I, Tar, Sp);
    Value Callee = I.Stack[Sp - ArgC - 1];
    if (!Callee.isObject() || !Callee.toObject()->isFunction()) {
      I.rtError("calling a non-function");
      return MethodErrorSentinel;
    }
    Object *FnObj = Callee.toObject();
    Value R;
    if (FnObj->native()) {
      R = I.callNative(FnObj, Value::undefined(), &I.Stack[Sp - ArgC], ArgC);
    } else {
      size_t SavedFrames = I.Frames.size();
      if (!I.pushFrameForCall(FnObj, ArgC))
        return MethodErrorSentinel;
      R = I.dispatchUntil(SavedFrames);
      I.Pc = Pc;
    }
    return finishNestedCall(I, Tar, R);
  }

  static uint64_t callProp(Interpreter &I, uint32_t Pc, uint32_t AtomIdx,
                           uint32_t ArgC, uint64_t *Tar, uint32_t Sp) {
    I.Pc = Pc;
    mirrorTarToInterp(I, Tar, Sp);
    String *Name = atom(I, AtomIdx);
    Value Recv = I.Stack[Sp - ArgC - 1];
    Value R;
    bool Done = false;
    if (Recv.isObject() && !Recv.toObject()->isArray()) {
      Value M = Recv.toObject()->getProperty(Name);
      if (M.isObject() && M.toObject()->isFunction()) {
        Object *FnObj = M.toObject();
        if (FnObj->native()) {
          R = I.callNative(FnObj, Recv, &I.Stack[Sp - ArgC], ArgC);
        } else {
          I.Stack[Sp - ArgC - 1] = M;
          size_t SavedFrames = I.Frames.size();
          if (!I.pushFrameForCall(FnObj, ArgC))
            return MethodErrorSentinel;
          R = I.dispatchUntil(SavedFrames);
          I.Pc = Pc;
        }
        Done = true;
      }
    }
    if (!Done)
      R = I.callPropValue(Recv, Name, &I.Stack[Sp - ArgC], ArgC);
    return finishNestedCall(I, Tar, R);
  }
};

extern "C" {

uint64_t tj_MethodBinop(Interpreter *I, uint32_t Pc, int32_t O, uint64_t A,
                        uint64_t B) {
  return MethodOps::binop(*I, Pc, (Op)O, A, B);
}

uint64_t tj_MethodUnop(Interpreter *I, uint32_t Pc, int32_t O, uint64_t V) {
  return MethodOps::unop(*I, Pc, (Op)O, V);
}

int32_t tj_MethodTruthy(uint64_t V) { return Value::fromBits(V).truthy(); }

uint64_t tj_MethodGetProp(Interpreter *I, uint32_t Pc, int32_t AtomIdx,
                          uint64_t Base) {
  return MethodOps::getProp(*I, Pc, (uint32_t)AtomIdx, Base);
}

uint64_t tj_MethodSetProp(Interpreter *I, uint32_t Pc, int32_t AtomIdx,
                          uint64_t Base, uint64_t V) {
  return MethodOps::setProp(*I, Pc, (uint32_t)AtomIdx, Base, V);
}

uint64_t tj_MethodInitProp(Interpreter *I, uint32_t Pc, int32_t AtomIdx,
                           uint64_t Base, uint64_t V) {
  return MethodOps::initProp(*I, Pc, (uint32_t)AtomIdx, Base, V);
}

uint64_t tj_MethodGetElem(Interpreter *I, uint32_t Pc, uint64_t Base,
                          uint64_t Idx) {
  return MethodOps::getElem(*I, Pc, Base, Idx);
}

uint64_t tj_MethodSetElem(Interpreter *I, uint32_t Pc, uint64_t Base,
                          uint64_t Idx, uint64_t V) {
  return MethodOps::setElem(*I, Pc, Base, Idx, V);
}

uint64_t tj_MethodNewArray(Interpreter *I, uint32_t Pc, int32_t N,
                           uint64_t *Elems) {
  return MethodOps::newArray(*I, Pc, (uint32_t)N, Elems);
}

uint64_t tj_MethodNewObject(Interpreter *I, uint32_t Pc) {
  return MethodOps::newObject(*I, Pc);
}

uint64_t tj_MethodCall(Interpreter *I, uint32_t Pc, int32_t ArgC,
                       uint64_t *Tar, int32_t Sp) {
  return MethodOps::call(*I, Pc, (uint32_t)ArgC, Tar, (uint32_t)Sp);
}

uint64_t tj_MethodCallProp(Interpreter *I, uint32_t Pc, int32_t AtomIdx,
                           int32_t ArgC, uint64_t *Tar, int32_t Sp) {
  return MethodOps::callProp(*I, Pc, (uint32_t)AtomIdx, (uint32_t)ArgC, Tar,
                             (uint32_t)Sp);
}

} // extern "C"

// --- CallInfo construction ----------------------------------------------------------

namespace {

template <typename T> constexpr LTy ltyOf() {
  if constexpr (std::is_void_v<T>)
    return LTy::Void;
  else if constexpr (std::is_same_v<T, double>)
    return LTy::D;
  else if constexpr (std::is_same_v<T, int32_t> || std::is_same_v<T, uint32_t>)
    return LTy::I32;
  else
    return LTy::Q;
}

template <typename T> T fromWord(uint64_t W) {
  if constexpr (std::is_same_v<T, double>) {
    double D;
    std::memcpy(&D, &W, 8);
    return D;
  } else if constexpr (std::is_pointer_v<T>) {
    return (T)(uintptr_t)W;
  } else {
    return (T)W;
  }
}

template <typename T> uint64_t toWord(T V) {
  if constexpr (std::is_same_v<T, double>) {
    uint64_t W;
    std::memcpy(&W, &V, 8);
    return W;
  } else if constexpr (std::is_pointer_v<T>) {
    return (uint64_t)(uintptr_t)V;
  } else if constexpr (sizeof(T) == 8) {
    return (uint64_t)V;
  } else {
    return (uint64_t)(uint32_t)V; // int32 results zero-extended
  }
}

template <typename R, typename... As>
uint64_t sigShim(void *Addr, const uint64_t *W) {
  auto *Fn = (R (*)(As...))Addr;
  return [&]<size_t... Is>(std::index_sequence<Is...>) -> uint64_t {
    if constexpr (std::is_void_v<R>) {
      Fn(fromWord<As>(W[Is])...);
      return 0;
    } else {
      return toWord<R>(Fn(fromWord<As>(W[Is])...));
    }
  }(std::index_sequence_for<As...>{});
}

template <typename R, typename... As>
CallInfo makeCI(R (*Fn)(As...), const char *Name, bool Pure) {
  CallInfo CI;
  CI.Addr = (void *)Fn;
  CI.Name = Name;
  CI.Ret = ltyOf<R>();
  CI.NArgs = (uint8_t)sizeof...(As);
  LTy Tys[] = {ltyOf<As>()..., LTy::Void};
  for (uint32_t K = 0; K < sizeof...(As); ++K)
    CI.Args[K] = Tys[K];
  CI.Pure = Pure;
  CI.Shim = sigShim<R, As...>;
  return CI;
}

} // namespace

const HelperCalls &helperCalls() {
  static HelperCalls H = [] {
    HelperCalls C;
    C.ToInt32D = makeCI(tj_ToInt32D, "js_ToInt32", /*Pure=*/true);
    C.ModI = makeCI(tj_ModI, "js_imod", /*Pure=*/true);
    C.ModD = makeCI(tj_ModD, "js_dmod", /*Pure=*/true);
    C.BoxDouble = makeCI(tj_BoxDouble, "js_BoxDouble", /*Pure=*/false);
    C.ArraySetV = makeCI(tj_ArraySetV, "js_Array_set", /*Pure=*/false);
    C.ArraySetD = makeCI(tj_ArraySetD, "js_Array_setd", /*Pure=*/false);
    C.ConcatSS = makeCI(tj_ConcatSS, "js_ConcatStrings", /*Pure=*/false);
    C.EqSS = makeCI(tj_EqSS, "js_EqualStrings", /*Pure=*/true);
    C.CharAt = makeCI(tj_CharAt, "js_String_charAt", /*Pure=*/false);
    C.FromCharCode1 =
        makeCI(tj_FromCharCode1, "js_String_fromCharCode", /*Pure=*/false);
    C.NewArray = makeCI(tj_NewArray, "js_NewArray", /*Pure=*/false);
    C.NewObject = makeCI(tj_NewObject, "js_NewObject", /*Pure=*/false);
    C.InitProp = makeCI(tj_InitProp, "js_InitProp", /*Pure=*/false);
    C.ArrayPushV = makeCI(tj_ArrayPushV, "js_Array_push", /*Pure=*/false);
    C.TruthyD = makeCI(tj_TruthyD, "js_TruthyD", /*Pure=*/true);
    C.MethodBinop = makeCI(tj_MethodBinop, "js_MethodBinop", /*Pure=*/false);
    C.MethodUnop = makeCI(tj_MethodUnop, "js_MethodUnop", /*Pure=*/false);
    C.MethodTruthy = makeCI(tj_MethodTruthy, "js_MethodTruthy", /*Pure=*/true);
    C.MethodGetProp =
        makeCI(tj_MethodGetProp, "js_MethodGetProp", /*Pure=*/false);
    C.MethodSetProp =
        makeCI(tj_MethodSetProp, "js_MethodSetProp", /*Pure=*/false);
    C.MethodInitProp =
        makeCI(tj_MethodInitProp, "js_MethodInitProp", /*Pure=*/false);
    C.MethodGetElem =
        makeCI(tj_MethodGetElem, "js_MethodGetElem", /*Pure=*/false);
    C.MethodSetElem =
        makeCI(tj_MethodSetElem, "js_MethodSetElem", /*Pure=*/false);
    C.MethodNewArray =
        makeCI(tj_MethodNewArray, "js_MethodNewArray", /*Pure=*/false);
    C.MethodNewObject =
        makeCI(tj_MethodNewObject, "js_MethodNewObject", /*Pure=*/false);
    C.MethodCall = makeCI(tj_MethodCall, "js_MethodCall", /*Pure=*/false);
    C.MethodCallProp =
        makeCI(tj_MethodCallProp, "js_MethodCallProp", /*Pure=*/false);
    C.MathD_D = makeCI((double (*)(double))nullptr, "math1", /*Pure=*/true);
    C.MathD_DD =
        makeCI((double (*)(double, double))nullptr, "math2", /*Pure=*/true);
    C.MathD_CTX =
        makeCI((double (*)(VMContext *))nullptr, "mathctx", /*Pure=*/false);
    return C;
  }();
  return H;
}

CallInfo makeMathCallInfo(const CallInfo &Proto, void *Addr,
                          const char *Name) {
  CallInfo CI = Proto;
  CI.Addr = Addr;
  CI.Name = Name;
  return CI;
}

} // namespace tracejit
