//===- monitor.h - The trace monitor -------------------------------------------===//
//
// The Figure 2 state machine. The monitor is invoked at every loop edge
// (LoopHeader bytecode) and decides whether to interpret, record, execute
// a compiled trace, extend a tree at a hot side exit, blacklist, or nest
// trees. It owns the trace cache (all fragments and their LIR arenas),
// the oracle, the loop hotness/blacklist state, and the compilation
// pipeline (forward-filtered recording -> backward filters -> backend).
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_TRACE_MONITOR_H
#define TRACEJIT_TRACE_MONITOR_H

#include <memory>
#include <unordered_map>
#include <vector>

#include "interp/interpreter.h"
#include "interp/tracehooks.h"
#include "jit/compile_queue.h"
#include "jit/compiler_x64.h"
#include "jit/fragment.h"
#include "support/arena.h"
#include "trace/oracle.h"
#include "trace/recorder.h"
#include "trace/tier.h"

namespace tracejit {

/// Per-loop-header monitor state: hotness counter, tier state (trace/
/// tier.h; subsumes the old §3.3 blacklist), and the compiled trees for
/// this header (one per entry type map -- "there may be several trees for
/// a given loop header", §3.2).
struct LoopState {
  FunctionScript *Script = nullptr;
  LoopRecord *Loop = nullptr;
  uint32_t HitCount = 0;
  /// Which tier this loop runs in plus the recording failure/backoff
  /// counters (Tier::Interpreter is the old Blacklisted).
  TierState Tier;
  /// Compiled method-tier body (Tier::Method only; survives as long as
  /// its cache generation).
  Fragment *MethodFrag = nullptr;
  std::vector<Fragment *> Peers; ///< Compiled root fragments (trees).
  /// Type-unstable loop tails waiting for a complementary peer (Fig. 6).
  std::vector<ExitDescriptor *> UnstableExits;
  /// Compile jobs in flight for this header (OffThreadCompile): blocks
  /// duplicate root recordings and counts toward the peer cap until the
  /// job publishes or drops.
  uint32_t PendingCompiles = 0;
};

class TraceMonitorImpl : public TraceMonitor {
public:
  TraceMonitorImpl(VMContext &Ctx, Interpreter &I);
  ~TraceMonitorImpl() override;

  // --- TraceMonitor interface -----------------------------------------------
  uint32_t onLoopEdge(Interpreter &I, uint32_t Pc, uint16_t LoopId) override;
  bool recording() const override { return Recorder != nullptr; }
  void recordOp(Interpreter &I, uint32_t Pc) override;
  void notePropSite(uint32_t ScriptId, uint32_t Pc, bool Megamorphic) override {
    uint64_t Key = Oracle::propSiteKey(ScriptId, Pc);
    if (Megamorphic)
      TheOracle.markMegamorphicSite(Key);
    else
      TheOracle.markPolymorphicSite(Key);
  }
  void noteStaticDemotion(uint64_t Key) override { TheOracle.markDemote(Key); }
  void flushRecorder() override;
  void abortForInterrupt() override {
    // Forgiven abort: the loop is fine, the script ran out of budget.
    // Without blacklist pressure it re-records once the engine is reused.
    if (Recorder)
      abortRecording(AbortReason::Interrupted, false);
  }
  void syncStats() override;
  void collectFragmentProfiles(std::vector<FragmentProfile> &Out) const override;
  uint8_t tierOfLoop(uint32_t ScriptId, uint16_t LoopId) const override;
  void onEvalStart() override { FlushesThisEval = 0; }
  void requestCacheFlush() override;
  uint32_t cacheGeneration() const override { return CacheGeneration; }
  bool jitDisabled() const override { return Disabled; }
  size_t codeCacheUsed() const override;
  size_t codeCacheCapacity() const override;
  uint32_t pendingCompileJobs() const override {
    return Queue ? Queue->pendingCount() : 0;
  }
  void pumpCompileQueue() override { drainCompileJobs(); }
  void waitCompileQueueIdle() override;

  // --- Services for the recorder ----------------------------------------------
  Oracle &oracle() { return TheOracle; }
  VMStats &stats();
  /// CallInfo for a typed math native (cached per boxed entry point).
  const CallInfo *mathCallInfo(NativeFn Boxed);
  Fragment *newFragment(FragmentKind K);

  /// Oracle key for a TAR slot under the current frame chain, or 0 when
  /// the slot is an operand-stack temporary.
  uint64_t oracleKeyForSlot(uint32_t Slot,
                            const std::vector<FrameEntry> &Frames);

  // --- Introspection (tests, benchmarks, diagnostics) ----------------------------
  const std::vector<std::unique_ptr<Fragment>> &fragments() const {
    return Fragments;
  }
  LoopState *loopState(FunctionScript *S, uint16_t LoopId);

private:
  /// Build the current entry type map from live interpreter state,
  /// consulting the oracle for integer demotion (§3.2).
  TypeMap buildEntryTypeMap(uint32_t Sp);

  /// Unbox interpreter state into the TAR at \p Tar per \p Types.
  void fillTar(const TypeMap &Types, uint32_t Sp, uint64_t *Tar);
  /// Rebox the TAR at \p Tar into interpreter state per the descriptor.
  void restoreFromExit(ExitDescriptor *E, const uint64_t *Tar);

  /// Execute a compiled fragment against the current interpreter state;
  /// returns the exit taken (never null). Handles Nested unwrapping.
  ExitDescriptor *executeFragment(Fragment *Frag);

  /// Post-exit policy: stitch-recording, unstable linking, preemption.
  void handleExit(ExitDescriptor *E);

  /// Start recording (root or branch). Aborts any active recording first.
  void startRecording(TraceRecorder::Mode Mode, LoopState *LS,
                      FunctionScript *Script, uint32_t AnchorPc,
                      ExitDescriptor *AnchorExit);

  /// Recording ended at its anchor: run backward filters, compile (inline
  /// or by submitting a compile job), link.
  void finishRecording(const std::vector<Fragment *> &Peers);
  void abortRecording(AbortReason Why, bool CountsTowardBlacklist);

  // --- Off-thread compile pipeline (jit/compile_queue.h) --------------------
  // Submit happens in finishRecording; these run the publication side.

  /// Publish/drop every finished compile job. Safe-point only (no recorder
  /// active, no trace on the native stack); called from loop edges and the
  /// Engine-facing pump/wait entry points.
  void drainCompileJobs();

  /// Wire one finished job into the trace cache -- or drop it (stale
  /// generation, disabled engine) or turn a worker-side compile failure
  /// into the abort/backoff bookkeeping the inline pipeline would have
  /// done. Stale jobs must not dereference Frag/LS/AnchorExit: the
  /// fragment died with its generation's flush.
  void publishJob(CompileJob &J);

  /// Success bookkeeping shared by the inline pipeline and publishJob:
  /// stats/events, peer registration, unstable-exit linking, and the
  /// anchor-exit stitch for branch fragments.
  void installCompiledFragment(Fragment *F, LoopState *LS,
                               ExitDescriptor *Anchor);

  /// Stamp and deliver a JitEvent (call sites gate on Ctx.EventListener).
  void emitEvent(const JitEvent &E);

  /// Try to link type-unstable exits of peers in \p LS to \p NewPeer and
  /// vice versa ("we attempt to connect their loop edges", §3.2/Fig. 6).
  void linkUnstableExits(LoopState *LS, Fragment *NewPeer);

  /// Nested trees (§4.1): recorder hit an inner loop header.
  uint32_t handleInnerLoopHeader(uint32_t Pc, uint16_t LoopId);

  // --- Tier transitions (trace/tier.h) --------------------------------------

  /// Apply a TierPolicy verdict: Promote moves the loop to the method
  /// tier (TierPromoted event), Demote retires it to the interpreter --
  /// the classic blacklist: Blacklisted event plus the §3.3 Nop3 patch.
  void applyTierAction(LoopState *LS, TierAction A, TierChangeReason Why);
  void promoteToMethod(LoopState *LS, TierChangeReason Why);
  void demoteToInterpreter(LoopState *LS, TierChangeReason Why);

  /// Build, verify, and compile a method-tier body for \p LS (inline or
  /// via an IsMethod compile job). Failures demote the loop.
  void requestMethodCompile(LoopState *LS);
  /// Publication side: wire a compiled method body into its loop.
  void installMethodFragment(LoopState *LS, Fragment *F);

  LoopState *loopStateOfRoot(Fragment *Root);

  // --- Code-cache lifecycle (see DESIGN.md "Code-cache lifecycle") ----------

  /// Execute a pending or immediate flush. Preconditions: no recorder
  /// active, no trace on the native stack. Retires every fragment and
  /// LoopState link, resets the executable pool to its floor, bumps the
  /// generation, and re-enters monitoring cold. Trips the kill switch when
  /// the per-eval flush budget is exhausted.
  void flushCacheNow();

  /// Map a backend CompileResult to its AbortReason (never Ok).
  static AbortReason compileAbortReason(CompileResult R);

  /// Permanently disable the JIT for this engine (interpreter fallback).
  void disableJit();

  VMContext &Ctx;
  Interpreter &Interp;
  std::unique_ptr<NativeBackend> Native; ///< Null => executor backend.
  /// Off-thread compilation (null pair when OffThreadCompile is off).
  /// Declaration order matters: Queue (the client) must be destroyed
  /// before OwnService joins its worker, and both before Native/Fragments
  /// die -- ~TraceMonitorImpl resets them explicitly.
  std::unique_ptr<CompileService> OwnService; ///< Engine-private worker.
  std::unique_ptr<CompileClient> Queue; ///< Portal (own or shared service).
  std::vector<std::unique_ptr<Fragment>> Fragments;
  std::vector<std::unique_ptr<LoopState>> LoopStates;
  std::unique_ptr<TraceRecorder> Recorder;
  LoopState *RecorderLoopState = nullptr;
  /// Branch recordings: the side exit being extended (stitched on finish).
  ExitDescriptor *RecorderAnchorExit = nullptr;
  Oracle TheOracle;
  /// The tier decision function (pure; built once from EngineOptions).
  TierPolicy Policy;
  std::unordered_map<NativeFn, std::unique_ptr<CallInfo>> MathCIs;
  /// Top-level TAR. Re-entrant fragment executions (a method-tier helper
  /// ran a nested call whose dispatch hit another compiled loop) use a
  /// stack-local buffer instead: resizing this one would move it out from
  /// under the suspended outer fragment.
  std::vector<uint8_t> TarBuffer;
  uint32_t NextFragmentId = 0;
  uint32_t MaxPeersPerLoop = 8;

  // --- Code-cache lifecycle state -------------------------------------------
  uint32_t CacheGeneration = 0;  ///< Bumped by every completed flush.
  uint32_t FlushesThisEval = 0;  ///< Reset by onEvalStart(); kill-switch fuel.
  bool FlushPending = false;     ///< A flush was requested at an unsafe point.
  bool Disabled = false;         ///< Kill switch: interpreter-only from here.
};

} // namespace tracejit

#endif // TRACEJIT_TRACE_MONITOR_H
