//===- analysis.h - Bytecode abstract interpreter ---------------------------===//
//
// A whole-script static analysis over the frontend bytecode: CFG
// construction (basic blocks split at jump targets and loop headers) plus a
// worklist-driven, flow-sensitive abstract interpretation over a type
// lattice, with integer ranges and allocation-site sets riding along.
//
// The dynamic trace compiler pays for every type fact with a runtime guard;
// this pass proves a subset of those facts ahead of time, so that:
//
//  * the recorder can skip guards the lattice already proves (a branch
//    whose condition is constant on every path, an int add whose operand
//    ranges cannot overflow int32) -- counted as StaticGuardsElided;
//  * the oracle can be pre-seeded: slots that are provably int-and-double
//    at a loop header get demotion facts before the first recording (§3.2
//    without the record/fail/re-record churn), and property sites whose
//    receiver set is statically unbounded are pre-marked megamorphic;
//  * the repl gains a `--analyze` lint mode reporting unreachable code,
//    use-before-def, constant conditions, and guaranteed type errors.
//
// Soundness contract with the recorder: a fact recorded for (script, pc)
// is an invariant over *every* interpreter execution reaching that pc --
// function entry states are worst-case (parameters unknown, globals
// unknown) and every Call/CallProp clobbers all global facts, so facts
// remain valid for root traces, branch traces, and inlined frames alike.
// The analysis is advisory: when it is disabled (or absent for a script)
// the pipeline behaves bit-for-bit as before.
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_ANALYSIS_ANALYSIS_H
#define TRACEJIT_ANALYSIS_ANALYSIS_H

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "frontend/bytecode.h"
#include "vm/value.h"

namespace tracejit {

// --- The type lattice ---------------------------------------------------------
//
// One bit per runtime representation (trace/typemap.h's TraceType, plus an
// explicit bottom). Join is bitwise OR; 0 is bottom (no value / unreachable)
// and MaskTop is the lattice top.

enum : uint8_t {
  MaskInt = 1u << 0,
  MaskDouble = 1u << 1,
  MaskBool = 1u << 2,
  MaskString = 1u << 3,
  MaskObject = 1u << 4,
  MaskNull = 1u << 5,
  MaskUndefined = 1u << 6,
  MaskTop = 0x7F,
  MaskNumber = MaskInt | MaskDouble,
};
using TypeMask = uint8_t;

/// The lattice bit a boxed value observes to (the static analog of
/// traceTypeOf).
TypeMask maskOfValue(const Value &V);

/// Render a mask for diagnostics ("int|double", "top", "bottom").
std::string typeMaskName(TypeMask M);

// --- Diagnostics ----------------------------------------------------------------

enum class AnalysisDiagKind : uint8_t {
  UnreachableCode,   ///< Basic block no execution can reach.
  UseBeforeDef,      ///< Local read while provably still undefined.
  ConstantCondition, ///< Branch condition proven always true/false.
  TypeError,         ///< Operation guaranteed to raise a runtime type error.
};

const char *analysisDiagKindName(AnalysisDiagKind K);

/// One lint finding, positioned via the script's LineNote table.
struct AnalysisDiagnostic {
  AnalysisDiagKind Kind = AnalysisDiagKind::UnreachableCode;
  uint32_t Pc = 0;
  uint32_t Line = 0; ///< 1-based; 0 when no note covers the pc.
  uint32_t Col = 0;
  std::string Message;
  std::string Function; ///< Enclosing function name; empty at top level.
};

// --- Per-script results ----------------------------------------------------------

/// Everything the consumers need, extracted after the fixpoint. All facts
/// are keyed by pc within one script and hold on every execution path.
struct ScriptAnalysis {
  uint32_t ScriptId = 0;
  /// Globals covered by header masks (the table size at analysis time;
  /// slots added by later parses are simply not covered).
  uint32_t NumGlobals = 0;
  /// False when the fixpoint hit its safety bound; no facts are published.
  bool Converged = true;

  /// JumpIfFalse/JumpIfTrue pcs whose *condition* truthiness is constant.
  std::unordered_map<uint32_t, bool> BranchConst;

  /// Add/Sub/Mul pcs where both operands are proven Int and the result
  /// range cannot leave int32: the overflow check is redundant.
  std::unordered_set<uint32_t> NoOverflow;

  /// Per-slot type masks proven at each LoopHeader/Nop3 pc (the facts the
  /// ValidateStaticFacts cross-check and the oracle seeding consume).
  struct HeaderFacts {
    std::vector<TypeMask> Globals; ///< [0, NumGlobals)
    std::vector<TypeMask> Locals;  ///< [0, Script.NumLocals)
  };
  std::unordered_map<uint32_t, HeaderFacts> Headers;

  /// GetProp/SetProp pcs whose receiver draws from more distinct literal
  /// allocation sites than a polymorphic IC can serve (and from nothing
  /// unknown, so the bound is real). Pre-marked megamorphic in the oracle.
  std::vector<uint32_t> MegamorphicSites;

  /// Slots whose mask at some loop header is exactly Int|Double: seeds for
  /// the §3.2 demotion oracle (global slots / local slots of this script).
  std::vector<uint32_t> DemoteGlobals;
  std::vector<uint32_t> DemoteLocals;

  std::vector<AnalysisDiagnostic> Diags;

  uint32_t factCount() const {
    return (uint32_t)(BranchConst.size() + NoOverflow.size() + Headers.size() +
                      MegamorphicSites.size() + DemoteGlobals.size() +
                      DemoteLocals.size());
  }
};

/// Analyze one compiled script. \p NumGlobals is the global-table size at
/// analysis time. Never fails: a script the fixpoint cannot settle (safety
/// bound) returns with Converged=false and no facts.
std::unique_ptr<ScriptAnalysis> analyzeScript(const FunctionScript &S,
                                              uint32_t NumGlobals);

/// Testing hook (EngineOptions::ValidateStaticFacts): at an interpreted
/// loop header, check every live global/local against the static header
/// mask. Bumps \p Checks per slot compared and \p Contradictions for any
/// value outside its proven mask -- a contradiction means the analysis (or
/// the engine) is unsound, and the differential fuzz suite asserts zero.
void validateHeaderFacts(const ScriptAnalysis &A, const Value *Globals,
                         uint32_t NumGlobals, const Value *Locals,
                         uint32_t NumLocals, uint32_t Pc, uint64_t &Checks,
                         uint64_t &Contradictions);

} // namespace tracejit

#endif // TRACEJIT_ANALYSIS_ANALYSIS_H
