//===- analysis.cpp - Bytecode abstract interpreter -------------------------===//
//
// Implementation notes.
//
// The abstract domain per state slot is a product of:
//   * a type mask (one bit per runtime representation, join = OR);
//   * an int32 interval, meaningful only while the mask stays within
//     Int/Bool (booleans live as 0/1 so truthiness shares the machinery);
//   * a definite-assignment bit (for the use-before-def lint);
//   * an allocation-site set (<= 4 literal NewObject/NewArray pcs, with
//     Unknown / Overflow escape hatches) for the megamorphic pre-marking;
//   * provenance: which state slot the value aliases (so a branch on
//     `GetLocal x` can refine x itself), and -- for compare results --
//     the relation plus both operands' compare-time ranges.
//
// The state vector is [globals | locals | operand stack]. Globals are
// tracked flow-sensitively inside one script but start at top and are
// clobbered back to top at every Call/CallProp, which is what makes the
// facts invariants over arbitrary interleavings with other scripts,
// callees, recursion, and natives. Locals of a frame cannot be rebound by
// a callee, so they survive calls.
//
// Widening: every cycle in the bytecode runs through a LoopHeader (the
// parser emits one per source loop), so blocks that begin with
// LoopHeader/Nop3 are the widening points -- any interval bound that grew
// since the last visit is snapped to the int32 extreme. Masks, site sets,
// and the assignment bit live in finite lattices and need no widening.
// A per-analysis visit budget backstops convergence; exceeding it
// publishes no facts (Converged = false), which is always sound.
//
//===----------------------------------------------------------------------===//

#include "analysis/analysis.h"

#include "vm/gc.h" // Value::numberValue is defined with DoubleCell in view

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <deque>
#include <map>
#include <optional>
#include <set>

namespace tracejit {

TypeMask maskOfValue(const Value &V) {
  if (V.isInt())
    return MaskInt;
  if (V.isDoubleCell())
    return MaskDouble;
  if (V.isBoolean())
    return MaskBool;
  if (V.isString())
    return MaskString;
  if (V.isObject())
    return MaskObject;
  if (V.isNull())
    return MaskNull;
  return MaskUndefined;
}

std::string typeMaskName(TypeMask M) {
  if (M == 0)
    return "bottom";
  if (M == MaskTop)
    return "top";
  static const struct {
    TypeMask Bit;
    const char *Name;
  } Bits[] = {
      {MaskInt, "int"},       {MaskDouble, "double"},
      {MaskBool, "boolean"},  {MaskString, "string"},
      {MaskObject, "object"}, {MaskNull, "null"},
      {MaskUndefined, "undefined"},
  };
  std::string Out;
  for (const auto &B : Bits) {
    if (!(M & B.Bit))
      continue;
    if (!Out.empty())
      Out += '|';
    Out += B.Name;
  }
  return Out;
}

const char *analysisDiagKindName(AnalysisDiagKind K) {
  switch (K) {
  case AnalysisDiagKind::UnreachableCode:
    return "unreachable-code";
  case AnalysisDiagKind::UseBeforeDef:
    return "use-before-def";
  case AnalysisDiagKind::ConstantCondition:
    return "constant-condition";
  case AnalysisDiagKind::TypeError:
    return "type-error";
  }
  return "?";
}

namespace {

// --- Abstract values -------------------------------------------------------

/// Distinct literal allocation sites a value may originate from.
struct SiteSet {
  static constexpr unsigned Cap = 4;
  uint32_t Pcs[Cap] = {0, 0, 0, 0};
  uint8_t N = 0;
  bool Unknown = false;  ///< Drew from a non-literal source (call, global...).
  bool Overflow = false; ///< More than Cap distinct sites joined.

  static SiteSet unknown() {
    SiteSet S;
    S.Unknown = true;
    return S;
  }
  static SiteSet literal(uint32_t Pc) {
    SiteSet S;
    S.Pcs[0] = Pc;
    S.N = 1;
    return S;
  }
  void add(uint32_t Pc) {
    for (unsigned I = 0; I < N; ++I)
      if (Pcs[I] == Pc)
        return;
    if (N < Cap) {
      Pcs[N++] = Pc;
      return;
    }
    Overflow = true;
  }
  void join(const SiteSet &O) {
    Unknown |= O.Unknown;
    Overflow |= O.Overflow;
    for (unsigned I = 0; I < O.N; ++I)
      add(O.Pcs[I]);
  }
  bool operator==(const SiteSet &O) const {
    if (N != O.N || Unknown != O.Unknown || Overflow != O.Overflow)
      return false;
    for (unsigned I = 0; I < N; ++I)
      if (Pcs[I] != O.Pcs[I])
        return false;
    return true;
  }
};

enum class CmpRel : uint8_t { None, Lt, Le, Gt, Ge, Eq, Ne };

CmpRel negateRel(CmpRel R) {
  switch (R) {
  case CmpRel::Lt:
    return CmpRel::Ge;
  case CmpRel::Le:
    return CmpRel::Gt;
  case CmpRel::Gt:
    return CmpRel::Le;
  case CmpRel::Ge:
    return CmpRel::Lt;
  case CmpRel::Eq:
    return CmpRel::Ne;
  case CmpRel::Ne:
    return CmpRel::Eq;
  case CmpRel::None:
    break;
  }
  return CmpRel::None;
}

struct AbstractValue {
  TypeMask Mask = MaskTop;
  int32_t Lo = INT32_MIN; ///< Interval; meaningful when Mask subset of Int|Bool.
  int32_t Hi = INT32_MAX;
  bool Literal = false;  ///< Pushed directly by PushConst/PushUndefined.
  bool Frac = false;     ///< Certainly a double with a nonzero fractional
                         ///< part (survives +/- with int-valued operands, so
                         ///< boxNumber can never renormalize it to Int).
  bool OvfD = false;     ///< The Double bit of Mask is present only because
                         ///< int arithmetic might overflow -- no genuine
                         ///< double source reaches this value. Demotion
                         ///< facts ignore such slots: seeding them would
                         ///< pessimize loops that never overflow at runtime.
  bool Assigned = false; ///< Definitely written (use-before-def lint).
  int32_t RefSlot = -1;  ///< State slot this value aliases, or -1.
  CmpRel Rel = CmpRel::None; ///< Compare provenance (value is `A Rel B`).
  int32_t CmpA = -1, CmpB = -1;
  int32_t ALo = INT32_MIN, AHi = INT32_MAX; ///< Operand ranges at compare time.
  int32_t BLo = INT32_MIN, BHi = INT32_MAX;
  SiteSet Sites;

  bool rangeMeaningful() const {
    return Mask != 0 && !(Mask & ~(MaskInt | MaskBool));
  }
  void clearRange() {
    Lo = INT32_MIN;
    Hi = INT32_MAX;
  }
  void clearProvenance() {
    RefSlot = -1;
    Rel = CmpRel::None;
    CmpA = CmpB = -1;
  }

  static AbstractValue top() {
    AbstractValue V;
    V.Assigned = true;
    V.Sites = SiteSet::unknown();
    return V;
  }
  static AbstractValue ofMask(TypeMask M) {
    AbstractValue V = top();
    V.Mask = M;
    if (!V.rangeMeaningful())
      V.clearRange();
    if (!(M & MaskObject))
      V.Sites = SiteSet();
    return V;
  }
  static AbstractValue intRange(int32_t Lo, int32_t Hi) {
    AbstractValue V = top();
    V.Mask = MaskInt;
    V.Lo = Lo;
    V.Hi = Hi;
    V.Sites = SiteSet();
    return V;
  }
  static AbstractValue boolVal(int Truth /* 0, 1, or -1 unknown */) {
    AbstractValue V = top();
    V.Mask = MaskBool;
    V.Lo = Truth < 0 ? 0 : Truth;
    V.Hi = Truth < 0 ? 1 : Truth;
    V.Sites = SiteSet();
    return V;
  }

  void join(const AbstractValue &O) {
    bool Genuine = ((Mask & MaskDouble) && !OvfD) ||
                   ((O.Mask & MaskDouble) && !O.OvfD);
    Mask |= O.Mask;
    OvfD = (Mask & MaskDouble) != 0 && !Genuine;
    Lo = std::min(Lo, O.Lo);
    Hi = std::max(Hi, O.Hi);
    if (!rangeMeaningful())
      clearRange();
    Literal = Literal && O.Literal;
    Frac = Frac && O.Frac;
    Assigned = Assigned && O.Assigned;
    if (RefSlot != O.RefSlot)
      RefSlot = -1;
    if (Rel != O.Rel || CmpA != O.CmpA || CmpB != O.CmpB) {
      Rel = CmpRel::None;
      CmpA = CmpB = -1;
    } else if (Rel != CmpRel::None) {
      ALo = std::min(ALo, O.ALo);
      AHi = std::max(AHi, O.AHi);
      BLo = std::min(BLo, O.BLo);
      BHi = std::max(BHi, O.BHi);
    }
    Sites.join(O.Sites);
  }

  bool operator==(const AbstractValue &O) const {
    return Mask == O.Mask && Lo == O.Lo && Hi == O.Hi &&
           Literal == O.Literal && Frac == O.Frac && OvfD == O.OvfD &&
           Assigned == O.Assigned &&
           RefSlot == O.RefSlot && Rel == O.Rel && CmpA == O.CmpA &&
           CmpB == O.CmpB && ALo == O.ALo && AHi == O.AHi && BLo == O.BLo &&
           BHi == O.BHi && Sites == O.Sites;
  }
};

/// Truthiness of an abstract value: 1 definitely true, 0 definitely false,
/// -1 unknown. Mirrors Value::truthy: null/undefined false, objects true,
/// ints/bools by value; doubles (NaN, 0.0) and strings ("") stay unknown.
int truthiness(const AbstractValue &V) {
  TypeMask M = V.Mask;
  if (M == 0)
    return -1;
  if (!(M & ~(MaskNull | MaskUndefined)))
    return 0;
  if (!(M & ~MaskObject))
    return 1;
  if (!(M & ~(MaskInt | MaskBool))) {
    if (V.Lo > 0 || V.Hi < 0)
      return 1;
    if (V.Lo == 0 && V.Hi == 0)
      return 0;
  }
  return -1;
}

// --- Abstract state --------------------------------------------------------

struct AbsState {
  std::vector<AbstractValue> Slots; ///< [globals | locals | stack]
  uint32_t Sp = 0;                  ///< Live operand-stack depth.

  bool operator==(const AbsState &O) const {
    return Sp == O.Sp && Slots == O.Slots;
  }
};

// --- The analyzer ----------------------------------------------------------

class Analyzer {
public:
  Analyzer(const FunctionScript &S, uint32_t NumGlobals)
      : S(S), NumGlobals(NumGlobals), LocalBase(NumGlobals),
        StackBase(NumGlobals + S.NumLocals) {
    // Widening thresholds: the int literals of the script. A loop bound
    // almost always appears as a compare constant, so snapping a growing
    // range to the next literal (instead of straight to infinity) keeps
    // induction variables finite and their increments overflow-free.
    for (const Value &C : S.Consts)
      if (C.isInt())
        Thresholds.push_back(C.toInt());
    std::sort(Thresholds.begin(), Thresholds.end());
    Thresholds.erase(std::unique(Thresholds.begin(), Thresholds.end()),
                     Thresholds.end());
  }

  std::unique_ptr<ScriptAnalysis> run();

private:
  const FunctionScript &S;
  uint32_t NumGlobals;
  uint32_t LocalBase;
  uint32_t StackBase;

  struct Block {
    uint32_t Start = 0;
    uint32_t End = 0; ///< Exclusive; one past the last op's bytes.
    uint32_t Visits = 0;
    uint32_t GrowJoins = 0; ///< Joins that changed this block's in-state.
  };
  std::vector<Block> Blocks;
  std::map<uint32_t, uint32_t> BlockAt; ///< Start pc -> block index.
  std::vector<std::optional<AbsState>> In;
  /// Per header block: slots observed carrying a genuine (non-overflow)
  /// double on some backedge into it. A slot whose double-ness arrives
  /// only through the preheader -- a one-time double initializer that the
  /// loop immediately overwrites with ints -- must not seed a demotion,
  /// or the specialized loop runs permanently double-boxed for a value
  /// that is int from the second iteration on.
  std::vector<std::vector<uint8_t>> BackDouble;
  std::vector<int32_t> Thresholds; ///< Sorted int literals; widening landmarks.

  /// Smallest threshold >= \p V, or INT32_MAX when none exists.
  int32_t snapHi(int32_t V) const {
    auto It = std::lower_bound(Thresholds.begin(), Thresholds.end(), V);
    return It != Thresholds.end() ? *It : INT32_MAX;
  }
  /// Largest threshold <= \p V, or INT32_MIN when none exists.
  int32_t snapLo(int32_t V) const {
    auto It = std::upper_bound(Thresholds.begin(), Thresholds.end(), V);
    return It != Thresholds.begin() ? *(It - 1) : INT32_MIN;
  }

  std::unique_ptr<ScriptAnalysis> A;
  bool Failed = false;

  // -- helpers --
  uint32_t opLen(uint32_t Pc) const {
    return 1 + opInfo(S.opAt(Pc)).OperandBytes;
  }
  bool isHeaderBlock(const Block &B) const {
    Op O = S.opAt(B.Start);
    return O == Op::LoopHeader || O == Op::Nop3;
  }
  AbstractValue &stackTop(AbsState &St, uint32_t Depth = 0) {
    return St.Slots[StackBase + St.Sp - 1 - Depth];
  }
  void push(AbsState &St, AbstractValue V) {
    if (StackBase + St.Sp >= St.Slots.size()) {
      Failed = true;
      St.Sp = 0;
      return;
    }
    St.Slots[StackBase + St.Sp++] = std::move(V);
  }
  AbstractValue pop(AbsState &St) {
    if (St.Sp == 0) {
      Failed = true;
      return AbstractValue::top();
    }
    return St.Slots[StackBase + --St.Sp];
  }
  /// A state slot is being overwritten: any value whose provenance points
  /// at it would otherwise refine/alias a stale binding.
  void invalidateRefsTo(AbsState &St, int32_t Slot) {
    for (auto &V : St.Slots) {
      if (V.RefSlot == Slot)
        V.RefSlot = -1;
      if (V.Rel != CmpRel::None && (V.CmpA == Slot || V.CmpB == Slot)) {
        V.Rel = CmpRel::None;
        V.CmpA = V.CmpB = -1;
      }
    }
  }
  void clobberGlobals(AbsState &St) {
    for (uint32_t G = 0; G < NumGlobals; ++G) {
      invalidateRefsTo(St, (int32_t)G);
      St.Slots[G] = AbstractValue::top();
    }
  }

  void buildCfg();
  AbsState entryState() const;
  bool joinInto(uint32_t BlockIdx, const AbsState &New, bool Widen);
  /// Interpret one block from its in-state; successor edges are reported
  /// through \p Edge. When \p Collect is set, facts and diagnostics are
  /// recorded into the result (the post-fixpoint replay).
  template <typename EdgeFn>
  void stepBlock(uint32_t BlockIdx, AbsState St, bool Collect, EdgeFn Edge);

  void refineEdge(AbsState &St, const AbstractValue &Cond, bool CondTruthy,
                  bool &Feasible);
  void diagnose(AnalysisDiagKind K, uint32_t Pc, std::string Msg);
  void collectUnreachable();
  void collectHeaderFacts();

  std::set<std::pair<uint8_t, uint32_t>> Reported;
};

void Analyzer::buildCfg() {
  std::set<uint32_t> Starts;
  Starts.insert(0);
  uint32_t Size = (uint32_t)S.Code.size();
  for (uint32_t Pc = 0; Pc < Size; Pc += opLen(Pc)) {
    Op O = S.opAt(Pc);
    if (opIsJump(O)) {
      Starts.insert(S.u32At(Pc + 1));
      Starts.insert(Pc + opLen(Pc));
      continue;
    }
    switch (O) {
    case Op::Return:
    case Op::ReturnUndefined:
      if (Pc + opLen(Pc) < Size)
        Starts.insert(Pc + opLen(Pc));
      break;
    case Op::LoopHeader:
    case Op::Nop3:
      Starts.insert(Pc); // widening point: always its own block
      break;
    default:
      break;
    }
  }
  std::vector<uint32_t> Sorted(Starts.begin(), Starts.end());
  for (size_t I = 0; I < Sorted.size(); ++I) {
    Block B;
    B.Start = Sorted[I];
    B.End = I + 1 < Sorted.size() ? Sorted[I + 1] : Size;
    BlockAt[B.Start] = (uint32_t)Blocks.size();
    Blocks.push_back(B);
  }
  In.resize(Blocks.size());
  BackDouble.resize(Blocks.size());
}

AbsState Analyzer::entryState() const {
  AbsState St;
  St.Slots.resize(StackBase + S.MaxStack);
  for (uint32_t G = 0; G < NumGlobals; ++G)
    St.Slots[G] = AbstractValue::top();
  for (uint32_t L = 0; L < S.NumLocals; ++L) {
    if (L < S.Arity) {
      St.Slots[LocalBase + L] = AbstractValue::top();
    } else {
      AbstractValue V = AbstractValue::ofMask(MaskUndefined);
      V.Assigned = false; // the use-before-def lint keys off this
      St.Slots[LocalBase + L] = V;
    }
  }
  return St;
}

bool Analyzer::joinInto(uint32_t BlockIdx, const AbsState &New, bool Widen) {
  auto &Slot = In[BlockIdx];
  if (!Slot) {
    Slot = New;
    return true;
  }
  AbsState &Old = *Slot;
  if (Old.Sp != New.Sp) {
    // Stack-unbalanced join: the parser never emits this; bail soundly.
    Failed = true;
    return false;
  }
  AbsState Joined = Old;
  uint32_t Live = StackBase + Old.Sp;
  for (uint32_t I = 0; I < Live; ++I)
    Joined.Slots[I].join(New.Slots[I]);
  // Delayed widening: let the first couple of changing joins stay precise
  // so a bound established outside this loop (an outer induction variable
  // reaching an inner header, say) settles at its real range instead of
  // snapping on first contact. Once the delay is spent a growing bound
  // jumps to the next script literal (widening with thresholds) -- a loop
  // bound nearly always appears as a compare constant, so an induction
  // variable lands on its true bound and its increment stays provably
  // overflow-free -- and to infinity when no literal covers it. The
  // threshold ladder is finite, so termination is untouched, and the
  // visit budget backstops pathological shapes.
  if (Widen && Blocks[BlockIdx].GrowJoins >= 2) {
    for (uint32_t I = 0; I < Live; ++I) {
      AbstractValue &J = Joined.Slots[I];
      const AbstractValue &O = Old.Slots[I];
      if (!J.rangeMeaningful())
        continue;
      if (J.Lo < O.Lo)
        J.Lo = snapLo(J.Lo);
      if (J.Hi > O.Hi)
        J.Hi = snapHi(J.Hi);
    }
  }
  if (Joined == Old)
    return false;
  ++Blocks[BlockIdx].GrowJoins;
  Old = std::move(Joined);
  return true;
}

void Analyzer::diagnose(AnalysisDiagKind K, uint32_t Pc, std::string Msg) {
  if (!Reported.insert({(uint8_t)K, Pc}).second)
    return;
  AnalysisDiagnostic D;
  D.Kind = K;
  D.Pc = Pc;
  LineNote N = S.lineAt(Pc);
  D.Line = N.Line;
  D.Col = N.Col;
  D.Message = std::move(Msg);
  D.Function = S.Name;
  A->Diags.push_back(std::move(D));
}

/// Range refinement for `A Rel B` known to hold, where \p V is the state
/// slot holding A and [OLo,OHi] is B's compare-time range (swap the
/// relation to refine B). Returns false when the refined range is empty,
/// i.e. the edge is infeasible.
static bool refineByRel(AbstractValue &V, CmpRel Rel, int32_t OLo,
                        int32_t OHi) {
  if (!V.rangeMeaningful() || (V.Mask & ~MaskInt))
    return true; // only refine proven-int slots
  switch (Rel) {
  case CmpRel::Lt:
    if (OHi > INT32_MIN)
      V.Hi = std::min(V.Hi, OHi - 1);
    break;
  case CmpRel::Le:
    V.Hi = std::min(V.Hi, OHi);
    break;
  case CmpRel::Gt:
    if (OLo < INT32_MAX)
      V.Lo = std::max(V.Lo, OLo + 1);
    break;
  case CmpRel::Ge:
    V.Lo = std::max(V.Lo, OLo);
    break;
  case CmpRel::Eq:
    V.Lo = std::max(V.Lo, OLo);
    V.Hi = std::min(V.Hi, OHi);
    break;
  case CmpRel::Ne:
    if (OLo == OHi && V.Lo == V.Hi && V.Lo == OLo)
      return false;
    break;
  case CmpRel::None:
    break;
  }
  return V.Lo <= V.Hi;
}

static CmpRel swapRel(CmpRel R) {
  switch (R) {
  case CmpRel::Lt:
    return CmpRel::Gt;
  case CmpRel::Le:
    return CmpRel::Ge;
  case CmpRel::Gt:
    return CmpRel::Lt;
  case CmpRel::Ge:
    return CmpRel::Le;
  default:
    return R;
  }
}

void Analyzer::refineEdge(AbsState &St, const AbstractValue &Cond,
                          bool CondTruthy, bool &Feasible) {
  Feasible = true;
  // Truthy refinement on the aliased slot.
  if (Cond.RefSlot >= 0) {
    AbstractValue &T = St.Slots[Cond.RefSlot];
    if (CondTruthy) {
      T.Mask &= ~(MaskNull | MaskUndefined);
      if (T.rangeMeaningful()) {
        if (T.Lo == 0 && T.Hi == 0) {
          Feasible = false;
          return;
        }
        if (T.Lo == 0)
          T.Lo = 1;
        if (T.Hi == 0)
          T.Hi = -1;
      }
      if (T.Mask == 0) {
        Feasible = false;
        return;
      }
    } else {
      T.Mask &= ~MaskObject;
      if (T.rangeMeaningful()) {
        if (T.Lo > 0 || T.Hi < 0) {
          Feasible = false;
          return;
        }
        T.Lo = T.Hi = 0;
      }
      if (T.Mask == 0) {
        Feasible = false;
        return;
      }
    }
  }
  // Relational refinement from compare provenance.
  if (Cond.Rel != CmpRel::None) {
    CmpRel R = CondTruthy ? Cond.Rel : negateRel(Cond.Rel);
    if (Cond.CmpA >= 0) {
      if (!refineByRel(St.Slots[Cond.CmpA], R, Cond.BLo, Cond.BHi)) {
        Feasible = false;
        return;
      }
    }
    if (Cond.CmpB >= 0) {
      if (!refineByRel(St.Slots[Cond.CmpB], swapRel(R), Cond.ALo, Cond.AHi)) {
        Feasible = false;
        return;
      }
    }
  }
}

template <typename EdgeFn>
void Analyzer::stepBlock(uint32_t BlockIdx, AbsState St, bool Collect,
                         EdgeFn Edge) {
  const Block &B = Blocks[BlockIdx];
  uint32_t Pc = B.Start;
  bool FallsThrough = true;
  while (Pc < B.End && !Failed) {
    Op O = S.opAt(Pc);
    uint32_t Next = Pc + opLen(Pc);
    switch (O) {
    case Op::Nop:
    case Op::LoopHeader:
    case Op::Nop3:
      break;
    case Op::PushConst: {
      const Value &C = S.Consts[S.u16At(Pc + 1)];
      AbstractValue V = AbstractValue::ofMask(maskOfValue(C));
      if (C.isInt())
        V.Lo = V.Hi = C.toInt();
      else if (C.isBoolean())
        V.Lo = V.Hi = C.truthy() ? 1 : 0;
      else if (C.isDoubleCell()) {
        double D = C.numberValue();
        V.Frac = D == D && D != std::floor(D);
      }
      V.Literal = true;
      push(St, std::move(V));
      break;
    }
    case Op::PushUndefined: {
      AbstractValue V = AbstractValue::ofMask(MaskUndefined);
      V.Literal = true;
      push(St, std::move(V));
      break;
    }
    case Op::Pop:
    case Op::PopResult:
      pop(St);
      break;
    case Op::Dup:
      push(St, stackTop(St));
      break;
    case Op::Dup2: {
      AbstractValue A2 = stackTop(St, 1), A1 = stackTop(St);
      push(St, A2);
      push(St, A1);
      break;
    }
    case Op::GetLocal: {
      uint32_t L = S.u16At(Pc + 1);
      AbstractValue V = St.Slots[LocalBase + L];
      if (Collect && L >= S.Arity && V.Mask == MaskUndefined && !V.Assigned) {
        char Buf[96];
        snprintf(Buf, sizeof(Buf),
                 "local slot %u is read before it is assigned", L);
        diagnose(AnalysisDiagKind::UseBeforeDef, Pc, Buf);
      }
      V.RefSlot = (int32_t)(LocalBase + L);
      V.Literal = false;
      push(St, std::move(V));
      break;
    }
    case Op::SetLocal: {
      uint32_t L = S.u16At(Pc + 1);
      int32_t Slot = (int32_t)(LocalBase + L);
      invalidateRefsTo(St, Slot);
      AbstractValue V = stackTop(St); // store peeks; value stays pushed
      V.clearProvenance();
      V.Assigned = true;
      St.Slots[Slot] = std::move(V);
      stackTop(St).RefSlot = Slot;
      break;
    }
    case Op::GetGlobal: {
      uint32_t G = S.u16At(Pc + 1);
      AbstractValue V =
          G < NumGlobals ? St.Slots[G] : AbstractValue::top();
      if (G < NumGlobals)
        V.RefSlot = (int32_t)G;
      V.Literal = false;
      push(St, std::move(V));
      break;
    }
    case Op::SetGlobal: {
      uint32_t G = S.u16At(Pc + 1);
      if (G < NumGlobals) {
        invalidateRefsTo(St, (int32_t)G);
        AbstractValue V = stackTop(St);
        V.clearProvenance();
        V.Assigned = true;
        St.Slots[G] = std::move(V);
        stackTop(St).RefSlot = (int32_t)G;
      }
      break;
    }
    case Op::GetProp: {
      AbstractValue R = pop(St);
      if (Collect) {
        if (R.Mask && !(R.Mask & (MaskObject | MaskString)))
          diagnose(AnalysisDiagKind::TypeError, Pc,
                   "cannot read property of non-object (receiver is " +
                       typeMaskName(R.Mask) + ")");
        if ((R.Mask & MaskObject) && R.Sites.Overflow && !R.Sites.Unknown)
          A->MegamorphicSites.push_back(Pc);
      }
      push(St, AbstractValue::top());
      break;
    }
    case Op::SetProp: {
      AbstractValue V = pop(St);
      AbstractValue R = pop(St);
      if (Collect) {
        if (R.Mask && !(R.Mask & MaskObject))
          diagnose(AnalysisDiagKind::TypeError, Pc,
                   "property store on a non-object (receiver is " +
                       typeMaskName(R.Mask) + ")");
        if ((R.Mask & MaskObject) && R.Sites.Overflow && !R.Sites.Unknown)
          A->MegamorphicSites.push_back(Pc);
      }
      V.clearProvenance();
      push(St, std::move(V)); // the stored value is the expression result
      break;
    }
    case Op::InitProp: {
      AbstractValue V = pop(St); // object literal element; object stays
      (void)V;
      break;
    }
    case Op::GetElem: {
      pop(St); // index
      AbstractValue Base = pop(St);
      if (Collect && Base.Mask && !(Base.Mask & (MaskObject | MaskString)))
        diagnose(AnalysisDiagKind::TypeError, Pc,
                 "indexing a non-object (base is " + typeMaskName(Base.Mask) +
                     ")");
      push(St, AbstractValue::top());
      break;
    }
    case Op::SetElem: {
      AbstractValue V = pop(St);
      pop(St); // index
      AbstractValue Base = pop(St);
      if (Collect && Base.Mask && !(Base.Mask & MaskObject))
        diagnose(AnalysisDiagKind::TypeError, Pc,
                 "element store on a non-array (base is " +
                     typeMaskName(Base.Mask) + ")");
      V.clearProvenance();
      push(St, std::move(V));
      break;
    }
    case Op::Add:
    case Op::Sub:
    case Op::Mul: {
      AbstractValue Rhs = pop(St);
      AbstractValue Lhs = pop(St);
      bool MayString =
          O == Op::Add && ((Lhs.Mask | Rhs.Mask) & MaskString) != 0;
      bool BothInt = Lhs.Mask == MaskInt && Rhs.Mask == MaskInt;
      if (BothInt) {
        int64_t Cands[4];
        int64_t R0, R1;
        if (O == Op::Add) {
          R0 = (int64_t)Lhs.Lo + Rhs.Lo;
          R1 = (int64_t)Lhs.Hi + Rhs.Hi;
        } else if (O == Op::Sub) {
          R0 = (int64_t)Lhs.Lo - Rhs.Hi;
          R1 = (int64_t)Lhs.Hi - Rhs.Lo;
        } else {
          Cands[0] = (int64_t)Lhs.Lo * Rhs.Lo;
          Cands[1] = (int64_t)Lhs.Lo * Rhs.Hi;
          Cands[2] = (int64_t)Lhs.Hi * Rhs.Lo;
          Cands[3] = (int64_t)Lhs.Hi * Rhs.Hi;
          R0 = *std::min_element(Cands, Cands + 4);
          R1 = *std::max_element(Cands, Cands + 4);
        }
        if (R0 >= INT32_MIN && R1 <= INT32_MAX) {
          if (Collect)
            A->NoOverflow.insert(Pc);
          push(St, AbstractValue::intRange((int32_t)R0, (int32_t)R1));
          break;
        }
        AbstractValue V = AbstractValue::ofMask(MaskNumber);
        V.OvfD = true; // the only double source here is int overflow
        push(St, std::move(V));
        break;
      }
      if (MayString) {
        bool CertainString =
            !(Lhs.Mask & ~MaskString) || !(Rhs.Mask & ~MaskString);
        push(St, AbstractValue::ofMask(CertainString
                                           ? MaskString
                                           : (MaskString | MaskNumber)));
        break;
      }
      if (O != Op::Mul) {
        // An int-valued operand plus/minus a fractional double keeps the
        // fraction, so boxNumber cannot renormalize the result: certainly
        // Double. This is what lets `x = x + 0.5` publish a demotion fact.
        auto IntValued = [](const AbstractValue &V) {
          return V.Mask != 0 && !(V.Mask & ~(MaskInt | MaskBool));
        };
        if ((IntValued(Lhs) && Rhs.Frac) || (IntValued(Rhs) && Lhs.Frac)) {
          AbstractValue V = AbstractValue::ofMask(MaskDouble);
          V.Frac = true;
          push(St, std::move(V));
          break;
        }
      }
      // toNumber never throws (objects/strings become NaN), and boxNumber
      // re-normalizes integral doubles, so the result is int-or-double.
      {
        // The result can only be a genuine (non-overflow) double if some
        // operand brings one: a genuine Double bit, or a non-numeric type
        // whose toNumber may be fractional/NaN.
        auto OvfOnlySource = [](const AbstractValue &V) {
          if (V.Mask & ~(MaskInt | MaskBool | MaskDouble))
            return false;
          return (V.Mask & MaskDouble) ? V.OvfD : true;
        };
        AbstractValue V = AbstractValue::ofMask(MaskNumber);
        V.OvfD = OvfOnlySource(Lhs) && OvfOnlySource(Rhs);
        push(St, std::move(V));
      }
      break;
    }
    case Op::Div:
      pop(St);
      pop(St);
      push(St, AbstractValue::ofMask(MaskNumber));
      break;
    case Op::Mod: {
      AbstractValue Rhs = pop(St);
      AbstractValue Lhs = pop(St);
      if (Lhs.Mask == MaskInt && Rhs.Mask == MaskInt && Lhs.Lo >= 0 &&
          Rhs.Lo > 0) {
        push(St, AbstractValue::intRange(0, Rhs.Hi - 1));
        break;
      }
      push(St, AbstractValue::ofMask(MaskNumber));
      break;
    }
    case Op::Neg: {
      AbstractValue V = pop(St);
      if (V.Mask == MaskInt && (V.Lo > 0 || V.Hi < 0) && V.Lo > INT32_MIN) {
        push(St, AbstractValue::intRange(-V.Hi, -V.Lo));
        break;
      }
      push(St, AbstractValue::ofMask(MaskNumber));
      break;
    }
    case Op::BitAnd:
    case Op::BitOr:
    case Op::BitXor:
    case Op::Shl:
    case Op::Shr:
      pop(St);
      pop(St);
      push(St, AbstractValue::ofMask(MaskInt));
      break;
    case Op::BitNot:
      pop(St);
      push(St, AbstractValue::ofMask(MaskInt));
      break;
    case Op::Ushr:
      pop(St);
      pop(St);
      // Result is in [0, 2^32): ints when <= INT32_MAX, doubles above.
      push(St, AbstractValue::ofMask(MaskNumber));
      break;
    case Op::Lt:
    case Op::Le:
    case Op::Gt:
    case Op::Ge:
    case Op::Eq:
    case Op::Ne:
    case Op::StrictEq:
    case Op::StrictNe: {
      AbstractValue Rhs = pop(St);
      AbstractValue Lhs = pop(St);
      bool BothInt = Lhs.Mask == MaskInt && Rhs.Mask == MaskInt;
      int Truth = -1;
      CmpRel Rel = CmpRel::None;
      if (BothInt) {
        switch (O) {
        case Op::Lt:
          Rel = CmpRel::Lt;
          if (Lhs.Hi < Rhs.Lo)
            Truth = 1;
          else if (Lhs.Lo >= Rhs.Hi)
            Truth = 0;
          break;
        case Op::Le:
          Rel = CmpRel::Le;
          if (Lhs.Hi <= Rhs.Lo)
            Truth = 1;
          else if (Lhs.Lo > Rhs.Hi)
            Truth = 0;
          break;
        case Op::Gt:
          Rel = CmpRel::Gt;
          if (Lhs.Lo > Rhs.Hi)
            Truth = 1;
          else if (Lhs.Hi <= Rhs.Lo)
            Truth = 0;
          break;
        case Op::Ge:
          Rel = CmpRel::Ge;
          if (Lhs.Lo >= Rhs.Hi)
            Truth = 1;
          else if (Lhs.Hi < Rhs.Lo)
            Truth = 0;
          break;
        case Op::Eq:
        case Op::StrictEq:
          Rel = CmpRel::Eq;
          if (Lhs.Lo == Lhs.Hi && Rhs.Lo == Rhs.Hi && Lhs.Lo == Rhs.Lo)
            Truth = 1;
          else if (Lhs.Hi < Rhs.Lo || Lhs.Lo > Rhs.Hi)
            Truth = 0;
          break;
        case Op::Ne:
        case Op::StrictNe:
          Rel = CmpRel::Ne;
          if (Lhs.Hi < Rhs.Lo || Lhs.Lo > Rhs.Hi)
            Truth = 1;
          else if (Lhs.Lo == Lhs.Hi && Rhs.Lo == Rhs.Hi && Lhs.Lo == Rhs.Lo)
            Truth = 0;
          break;
        default:
          break;
        }
      }
      AbstractValue V = AbstractValue::boolVal(Truth);
      if (BothInt && Rel != CmpRel::None) {
        V.Rel = Rel;
        V.CmpA = Lhs.RefSlot;
        V.CmpB = Rhs.RefSlot;
        V.ALo = Lhs.Lo;
        V.AHi = Lhs.Hi;
        V.BLo = Rhs.Lo;
        V.BHi = Rhs.Hi;
      }
      push(St, std::move(V));
      break;
    }
    case Op::LogicalNot: {
      AbstractValue V = pop(St);
      int T = truthiness(V);
      push(St, AbstractValue::boolVal(T < 0 ? -1 : (T ? 0 : 1)));
      break;
    }
    case Op::Jump:
      Edge(S.u32At(Pc + 1), St);
      FallsThrough = false;
      Pc = Next;
      continue;
    case Op::JumpIfFalse:
    case Op::JumpIfTrue: {
      AbstractValue Cond = pop(St);
      int T = truthiness(Cond);
      if (Collect) {
        if (T >= 0)
          A->BranchConst[Pc] = T != 0;
        if (T >= 0 && !Cond.Literal)
          diagnose(AnalysisDiagKind::ConstantCondition, Pc,
                   T ? "condition is always true"
                     : "condition is always false");
      }
      uint32_t Target = S.u32At(Pc + 1);
      bool TakenWhenTruthy = O == Op::JumpIfTrue;
      // Truthy direction.
      if (T != 0) {
        AbsState SN = St;
        bool Feasible = true;
        refineEdge(SN, Cond, /*CondTruthy=*/true, Feasible);
        if (Feasible)
          Edge(TakenWhenTruthy ? Target : Next, SN);
      }
      // Falsy direction.
      if (T != 1) {
        AbsState SN = std::move(St);
        bool Feasible = true;
        refineEdge(SN, Cond, /*CondTruthy=*/false, Feasible);
        if (Feasible)
          Edge(TakenWhenTruthy ? Next : Target, SN);
      }
      FallsThrough = false;
      Pc = Next;
      continue;
    }
    case Op::Call: {
      uint32_t Argc = S.Code[Pc + 1];
      AbstractValue Callee = stackTop(St, Argc);
      if (Collect && Callee.Mask && !(Callee.Mask & MaskObject))
        diagnose(AnalysisDiagKind::TypeError, Pc,
                 "calling a non-function (callee is " +
                     typeMaskName(Callee.Mask) + ")");
      for (uint32_t I = 0; I <= Argc; ++I)
        pop(St);
      clobberGlobals(St);
      push(St, AbstractValue::top());
      break;
    }
    case Op::CallProp: {
      uint32_t Argc = S.Code[Pc + 3];
      AbstractValue Recv = stackTop(St, Argc);
      if (Collect && Recv.Mask && !(Recv.Mask & (MaskObject | MaskString)))
        diagnose(AnalysisDiagKind::TypeError, Pc,
                 "cannot read property of non-object (receiver is " +
                     typeMaskName(Recv.Mask) + ")");
      for (uint32_t I = 0; I <= Argc; ++I)
        pop(St);
      clobberGlobals(St);
      push(St, AbstractValue::top());
      break;
    }
    case Op::Return:
      pop(St);
      FallsThrough = false;
      Pc = Next;
      continue;
    case Op::ReturnUndefined:
      FallsThrough = false;
      Pc = Next;
      continue;
    case Op::NewArray: {
      uint32_t N = S.u16At(Pc + 1);
      for (uint32_t I = 0; I < N; ++I)
        pop(St);
      AbstractValue V = AbstractValue::ofMask(MaskObject);
      V.Sites = SiteSet::literal(Pc);
      push(St, std::move(V));
      break;
    }
    case Op::NewObject: {
      AbstractValue V = AbstractValue::ofMask(MaskObject);
      V.Sites = SiteSet::literal(Pc);
      push(St, std::move(V));
      break;
    }
    default:
      // Unknown opcode: give up on this script rather than guess.
      Failed = true;
      return;
    }
    if (Failed)
      return;
    Pc = Next;
  }
  if (FallsThrough && Pc < (uint32_t)S.Code.size())
    Edge(Pc, St);
}

void Analyzer::collectHeaderFacts() {
  std::set<uint32_t> DemoteG, DemoteL;
  for (uint32_t BI = 0; BI < Blocks.size(); ++BI) {
    if (!In[BI] || !isHeaderBlock(Blocks[BI]))
      continue;
    const AbsState &St = *In[BI];
    ScriptAnalysis::HeaderFacts HF;
    HF.Globals.resize(NumGlobals);
    HF.Locals.resize(S.NumLocals);
    // Demote only slots a genuine double reaches around the loop: an
    // Int|Double mask whose Double bit exists purely because of possible
    // int overflow would demote (and so pessimize) loops that never
    // overflow, and a double that arrives only from the preheader (a
    // one-time initializer the first iteration replaces with an int)
    // describes a loop that is int in steady state.
    const std::vector<uint8_t> &BD = BackDouble[BI];
    auto RecursDouble = [&](uint32_t Slot) {
      return Slot < BD.size() && BD[Slot];
    };
    for (uint32_t G = 0; G < NumGlobals; ++G) {
      HF.Globals[G] = St.Slots[G].Mask;
      if (St.Slots[G].Mask == MaskNumber && !St.Slots[G].OvfD &&
          RecursDouble(G))
        DemoteG.insert(G);
    }
    for (uint32_t L = 0; L < S.NumLocals; ++L) {
      HF.Locals[L] = St.Slots[LocalBase + L].Mask;
      if (St.Slots[LocalBase + L].Mask == MaskNumber &&
          !St.Slots[LocalBase + L].OvfD && RecursDouble(LocalBase + L))
        DemoteL.insert(L);
    }
    A->Headers.emplace(Blocks[BI].Start, std::move(HF));
  }
  A->DemoteGlobals.assign(DemoteG.begin(), DemoteG.end());
  A->DemoteLocals.assign(DemoteL.begin(), DemoteL.end());
}

void Analyzer::collectUnreachable() {
  // Ops a dead region may consist of entirely without being worth a
  // warning: compiler-synthesized epilogues (the implicit trailing
  // ReturnUndefined after an explicit return) and loop scaffolding.
  auto Synthetic = [](Op O) {
    return O == Op::Nop || O == Op::ReturnUndefined || O == Op::Jump ||
           O == Op::LoopHeader || O == Op::Nop3 || O == Op::Pop;
  };
  uint32_t BI = 0;
  while (BI < Blocks.size()) {
    if (In[BI]) {
      ++BI;
      continue;
    }
    uint32_t First = BI;
    while (BI < Blocks.size() && !In[BI])
      ++BI;
    uint32_t Start = Blocks[First].Start, End = Blocks[BI - 1].End;
    bool AllSynthetic = true;
    for (uint32_t Pc = Start; Pc < End; Pc += opLen(Pc))
      if (!Synthetic(S.opAt(Pc))) {
        AllSynthetic = false;
        break;
      }
    if (!AllSynthetic)
      diagnose(AnalysisDiagKind::UnreachableCode, Start, "unreachable code");
  }
}

std::unique_ptr<ScriptAnalysis> Analyzer::run() {
  A = std::make_unique<ScriptAnalysis>();
  A->ScriptId = S.Id;
  A->NumGlobals = NumGlobals;
  if (S.Code.empty())
    return std::move(A);

  buildCfg();

  // Fixpoint.
  std::deque<uint32_t> Work;
  In[0] = entryState();
  Work.push_back(0);
  const uint32_t VisitBudget = (uint32_t)Blocks.size() * 96 + 256;
  uint32_t Visits = 0;
  while (!Work.empty() && !Failed) {
    uint32_t BI = Work.front();
    Work.pop_front();
    if (++Visits > VisitBudget) {
      Failed = true;
      break;
    }
    stepBlock(BI, *In[BI], /*Collect=*/false,
              [&](uint32_t TargetPc, const AbsState &Out) {
                auto It = BlockAt.find(TargetPc);
                if (It == BlockAt.end()) {
                  Failed = true;
                  return;
                }
                uint32_t TBI = It->second;
                bool Widen = isHeaderBlock(Blocks[TBI]);
                // A backward edge into a loop header: remember which slots
                // carry a genuine double around the loop. (Intermediate
                // fixpoint states only grow toward the final ones, so
                // accumulating across iterations over-approximates the
                // settled backedge state -- fine for a demotion hint.)
                if (Widen && Blocks[BI].Start >= TargetPc) {
                  auto &BD = BackDouble[TBI];
                  if (BD.size() < Out.Slots.size())
                    BD.resize(Out.Slots.size(), 0);
                  for (size_t K = 0; K < Out.Slots.size(); ++K)
                    if ((Out.Slots[K].Mask & MaskDouble) && !Out.Slots[K].OvfD)
                      BD[K] = 1;
                }
                if (joinInto(TBI, Out, Widen))
                  if (std::find(Work.begin(), Work.end(), TBI) == Work.end())
                    Work.push_back(TBI);
              });
  }

  if (Failed) {
    auto Empty = std::make_unique<ScriptAnalysis>();
    Empty->ScriptId = S.Id;
    Empty->NumGlobals = NumGlobals;
    Empty->Converged = false;
    return Empty;
  }

  // Post-fixpoint replay over reachable blocks: collect diagnostics and
  // the published facts from the settled in-states.
  for (uint32_t BI = 0; BI < Blocks.size(); ++BI) {
    if (!In[BI])
      continue;
    stepBlock(BI, *In[BI], /*Collect=*/true,
              [](uint32_t, const AbsState &) {});
  }
  collectHeaderFacts();
  collectUnreachable();

  std::sort(A->MegamorphicSites.begin(), A->MegamorphicSites.end());
  A->MegamorphicSites.erase(
      std::unique(A->MegamorphicSites.begin(), A->MegamorphicSites.end()),
      A->MegamorphicSites.end());
  std::sort(A->Diags.begin(), A->Diags.end(),
            [](const AnalysisDiagnostic &X, const AnalysisDiagnostic &Y) {
              if (X.Line != Y.Line)
                return X.Line < Y.Line;
              if (X.Col != Y.Col)
                return X.Col < Y.Col;
              return X.Pc < Y.Pc;
            });
  return std::move(A);
}

} // namespace

std::unique_ptr<ScriptAnalysis> analyzeScript(const FunctionScript &S,
                                              uint32_t NumGlobals) {
  return Analyzer(S, NumGlobals).run();
}

void validateHeaderFacts(const ScriptAnalysis &A, const Value *Globals,
                         uint32_t NumGlobals, const Value *Locals,
                         uint32_t NumLocals, uint32_t Pc, uint64_t &Checks,
                         uint64_t &Contradictions) {
  auto It = A.Headers.find(Pc);
  if (It == A.Headers.end())
    return;
  const ScriptAnalysis::HeaderFacts &HF = It->second;
  uint32_t NG = std::min((uint32_t)HF.Globals.size(), NumGlobals);
  for (uint32_t G = 0; G < NG; ++G) {
    ++Checks;
    if (!(maskOfValue(Globals[G]) & HF.Globals[G]))
      ++Contradictions;
  }
  uint32_t NL = std::min((uint32_t)HF.Locals.size(), NumLocals);
  for (uint32_t L = 0; L < NL; ++L) {
    ++Checks;
    if (!(maskOfValue(Locals[L]) & HF.Locals[L]))
      ++Contradictions;
  }
}

} // namespace tracejit
