//===- compiler_x64.cpp - LIR -> x86-64 compiler --------------------------------===//

#include "jit/compiler_x64.h"

#include <cassert>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "interp/vmcontext.h"
#include "jit/assembler_x64.h"
#include "lir/lir.h"

namespace tracejit {

// --- Runtime stubs -------------------------------------------------------------

NativeBackend::NativeBackend(size_t CacheBytes, const FaultHook *FI,
                             bool DualMap)
    : Pool(CacheBytes, FI, DualMap), Faults(FI) {
  if (!Pool.valid())
    return;
  emitRuntimeStubs();
  Pool.setFloor(); // whole-cache flushes keep the stubs
  Ready = Trampoline != nullptr;
}

void NativeBackend::emitRuntimeStubs() {
  uint8_t *Mem = Pool.reserve(128);
  if (!Mem)
    return;
  Assembler A(Mem, 128);

  // EnterFn(rdi = TAR, rsi = fragment code).
  uint8_t *Entry = A.pc();
  A.push(RBP);
  A.push(RBX);
  A.push(R12);
  A.push(R13);
  A.push(R14);
  A.push(R15);
  A.movRR64(RBX, RDI);
  A.addRI64(RSP, -SpillAreaBytes);
  A.jmpReg(RSI);

  // Shared epilogue: rax = ExitDescriptor*.
  SharedEpilogue = A.pc();
  A.addRI64(RSP, SpillAreaBytes);
  A.pop(R15);
  A.pop(R14);
  A.pop(R13);
  A.pop(R12);
  A.pop(RBX);
  A.pop(RBP);
  A.ret();

  if (A.overflowed()) {
    Pool.rewind();
    return;
  }
  Pool.commit(A.size());
  // The trampoline is called, so it must be an exec-view address (identity
  // in single-map mode). Everything else in the pool stays write-view.
  Trampoline = (EnterFn)Pool.execAddr(Entry);
}

void NativeBackend::patchExitTo(ExitDescriptor *E, Fragment *Target) {
  E->Target = Target;
  if (E->PatchAddr && Target->NativeEntry && Pool.makeWritable()) {
    // Overwrite the stub's `mov rax, imm64` with `jmp rel32`. If the W^X
    // flip fails, Target alone still routes the transfer: the stub keeps
    // returning to the monitor, which sees E->Target and resumes there.
    uint8_t *P = E->PatchAddr;
    P[0] = 0xE9;
    Assembler::patchRel32(P + 1, Target->NativeEntry);
  }
}

// --- Fragment compiler ------------------------------------------------------------

namespace {

/// Where a value currently lives.
enum class LocKind : uint8_t { None, Reg, Spill };

struct ValState {
  LocKind Loc = LocKind::None;
  uint8_t Reg = 0;     ///< Gpr or Xmm number depending on type.
  int32_t Slot = -1;   ///< Spill slot index, once assigned.
  uint32_t UseCursor = 0;
  std::vector<uint32_t> Uses; ///< Instruction positions that read this value.
  bool Fused = false;  ///< Compare folded into the following guard.
};

constexpr Gpr GprPool[] = {RCX, RDX, RSI, RDI, R8,  R9,  R10,
                           R11, RBP, R12, R13, R14, R15};
constexpr int NumGprPool = (int)(sizeof(GprPool) / sizeof(GprPool[0]));
constexpr bool isCallerSavedGpr(Gpr R) {
  return R == RCX || R == RDX || R == RSI || R == RDI || R == R8 || R == R9 ||
         R == R10 || R == R11;
}
constexpr Gpr IntArgRegs[] = {RDI, RSI, RDX, RCX, R8, R9};

constexpr int NumXmmPool = 15; // XMM1..XMM15; XMM0 is scratch/return

class FragmentCompiler {
public:
  FragmentCompiler(NativeBackend &BE, Fragment *F, VMContext *Ctx,
                   Assembler &A)
      : BE(BE), F(F), Ctx(Ctx), A(A), Body(F->Body) {}

  bool run();

private:
  // --- Value metadata --------------------------------------------------------
  ValState &st(LIns *I) { return States[I->Id]; }
  bool isXmmVal(LIns *I) const { return I->Ty == LTy::D; }

  uint32_t nextUse(LIns *V, uint32_t After) {
    ValState &S = st(V);
    for (uint32_t K = S.UseCursor; K < S.Uses.size(); ++K)
      if (S.Uses[K] > After)
        return S.Uses[K];
    return UINT32_MAX;
  }

  // --- Register file ----------------------------------------------------------
  LIns *GprHeld[16] = {};
  LIns *XmmHeld[16] = {};

  void freeReg(LIns *V) {
    ValState &S = st(V);
    if (S.Loc != LocKind::Reg)
      return;
    if (isXmmVal(V))
      XmmHeld[S.Reg] = nullptr;
    else
      GprHeld[S.Reg] = nullptr;
    S.Loc = S.Slot >= 0 ? LocKind::Spill : LocKind::None;
  }

  int32_t assignSlot(LIns *V) {
    ValState &S = st(V);
    if (S.Slot < 0) {
      S.Slot = NextSlot++;
      if (NextSlot > MaxSpillSlots)
        Failed = true;
    }
    return S.Slot;
  }

  void spill(LIns *V) {
    ValState &S = st(V);
    assert(S.Loc == LocKind::Reg);
    // Immediates are rematerialized, never spilled.
    if (!V->isImm() && V->Op != LOp::ParamTar) {
      int32_t Slot = assignSlot(V);
      if (isXmmVal(V))
        A.movsdMR(RSP, Slot * 8, (Xmm)S.Reg);
      else
        A.movMR64(RSP, Slot * 8, (Gpr)S.Reg);
      S.Loc = LocKind::Spill;
    } else {
      S.Loc = LocKind::None;
    }
    if (isXmmVal(V))
      XmmHeld[S.Reg] = nullptr;
    else
      GprHeld[S.Reg] = nullptr;
  }

  /// Paper §5.2: evict the value whose next reference is furthest away.
  Gpr allocGpr(uint32_t Pos, uint32_t AvoidMask) {
    for (int K = 0; K < NumGprPool; ++K) {
      Gpr R = GprPool[K];
      if (!GprHeld[R] && !(AvoidMask & (1u << R)))
        return R;
    }
    Gpr Victim = RCX;
    uint32_t Furthest = 0;
    bool Found = false;
    for (int K = 0; K < NumGprPool; ++K) {
      Gpr R = GprPool[K];
      if (AvoidMask & (1u << R))
        continue;
      uint32_t NU = nextUse(GprHeld[R], CurPos);
      if (!Found || NU > Furthest) {
        Furthest = NU;
        Victim = R;
        Found = true;
      }
    }
    if (!Found) {
      Failed = true;
      return RCX;
    }
    spill(GprHeld[Victim]);
    (void)Pos;
    return Victim;
  }

  Xmm allocXmm(uint32_t Pos, uint32_t AvoidMask) {
    for (int K = 1; K <= NumXmmPool; ++K) {
      if (!XmmHeld[K] && !(AvoidMask & (1u << K)))
        return (Xmm)K;
    }
    int Victim = 1;
    uint32_t Furthest = 0;
    bool Found = false;
    for (int K = 1; K <= NumXmmPool; ++K) {
      if (AvoidMask & (1u << K))
        continue;
      uint32_t NU = nextUse(XmmHeld[K], CurPos);
      if (!Found || NU > Furthest) {
        Furthest = NU;
        Victim = K;
        Found = true;
      }
    }
    if (!Found) {
      Failed = true;
      return XMM1;
    }
    spill(XmmHeld[Victim]);
    (void)Pos;
    return (Xmm)Victim;
  }

  void bindGpr(LIns *V, Gpr R) {
    GprHeld[R] = V;
    ValState &S = st(V);
    S.Loc = LocKind::Reg;
    S.Reg = R;
  }
  void bindXmm(LIns *V, Xmm R) {
    XmmHeld[R] = V;
    ValState &S = st(V);
    S.Loc = LocKind::Reg;
    S.Reg = R;
  }

  /// Materialize/reload \p V into a register, avoiding AvoidMask.
  Gpr ensureGpr(LIns *V, uint32_t AvoidMask = 0) {
    if (V->Op == LOp::ParamTar)
      return RBX;
    ValState &S = st(V);
    if (S.Loc == LocKind::Reg)
      return (Gpr)S.Reg;
    Gpr R = allocGpr(CurPos, AvoidMask);
    if (S.Loc == LocKind::Spill) {
      A.movRM64(R, RSP, S.Slot * 8);
    } else {
      switch (V->Op) {
      case LOp::ImmI:
        A.movRI32(R, V->Imm.ImmI32);
        break;
      case LOp::ImmQ:
        A.movRI64(R, (uint64_t)V->Imm.ImmQ64);
        break;
      default:
        Failed = true; // value was never defined: compiler bug
        break;
      }
    }
    bindGpr(V, R);
    return R;
  }

  Xmm ensureXmm(LIns *V, uint32_t AvoidMask = 0) {
    ValState &S = st(V);
    if (S.Loc == LocKind::Reg)
      return (Xmm)S.Reg;
    Xmm R = allocXmm(CurPos, AvoidMask);
    if (S.Loc == LocKind::Spill) {
      A.movsdRM(R, RSP, S.Slot * 8);
    } else if (V->Op == LOp::ImmD) {
      uint64_t Bits;
      std::memcpy(&Bits, &V->Imm.ImmDbl, 8);
      A.movRI64(RAX, Bits);
      A.movqXmmGpr(R, RAX);
    } else {
      Failed = true;
    }
    bindXmm(V, R);
    return R;
  }

  /// Release operand registers whose last use this was.
  void consume(LIns *V) {
    if (!V || V->Op == LOp::ParamTar)
      return;
    ValState &S = st(V);
    while (S.UseCursor < S.Uses.size() && S.Uses[S.UseCursor] <= CurPos)
      ++S.UseCursor;
    if (S.UseCursor >= S.Uses.size())
      freeReg(V);
  }

  Gpr defGpr(LIns *I, uint32_t AvoidMask = 0) {
    Gpr R = allocGpr(CurPos, AvoidMask);
    bindGpr(I, R);
    return R;
  }
  Xmm defXmm(LIns *I, uint32_t AvoidMask = 0) {
    Xmm R = allocXmm(CurPos, AvoidMask);
    bindXmm(I, R);
    return R;
  }

  static uint32_t maskOf(Gpr R) { return 1u << R; }
  static uint32_t maskOfX(Xmm R) { return 1u << R; }

  /// Spill every live caller-saved GPR and every live XMM (C call clobbers).
  void flushForCall() {
    for (int R = 0; R < 16; ++R)
      if (GprHeld[R] && isCallerSavedGpr((Gpr)R))
        spill(GprHeld[R]);
    for (int R = 0; R < 16; ++R)
      if (XmmHeld[R])
        spill(XmmHeld[R]);
  }

  /// Spill every live register at the prologue/loop boundary. The back edge
  /// jumps to LoopEntryPc, so any value computed in the prologue (or still
  /// in a register from the previous iteration) must live in its spill slot
  /// there: slots are per-value and never recycled, so a prologue value's
  /// slot stays valid for the whole trace. Immediates and ParamTar go to
  /// LocKind::None and are rematerialized on demand.
  void flushPrologue() {
    for (int R = 0; R < 16; ++R)
      if (GprHeld[R])
        spill(GprHeld[R]);
    for (int R = 0; R < 16; ++R)
      if (XmmHeld[R])
        spill(XmmHeld[R]);
  }

  /// Back-edge target: just past the hoisted prologue (set when the body
  /// has one; otherwise Loop jumps to NativeEntry).
  uint8_t *LoopEntryPc = nullptr;

  /// Load a call argument into a specific register from wherever it lives.
  void loadArgGpr(Gpr Dst, LIns *V);
  void loadArgXmm(Xmm Dst, LIns *V);

  // --- Exits ------------------------------------------------------------------
  struct PendingStub {
    uint8_t *Fixup;
    ExitDescriptor *Exit;
  };
  std::vector<PendingStub> Stubs;

  void jccToExit(Cond C, ExitDescriptor *E) {
    Stubs.push_back({A.jccFwd(C), E});
  }
  void jmpToExit(ExitDescriptor *E) { Stubs.push_back({A.jmpFwd(), E}); }

  // --- Intra-body branches (method-tier bodies) -------------------------------
  // The register model must be identical on every edge into a label, so
  // every label bind and every branch site runs flushPrologue() first:
  // the model is "nothing held, every live value in its never-recycled
  // spill slot" -- the same invariant the Loop back edge relies on.
  struct PendingBranch {
    uint8_t *Fixup;
    LIns *Label;
  };
  std::vector<PendingBranch> BranchFixups;
  std::unordered_map<LIns *, uint8_t *> LabelPc;

  // --- Instruction emission ------------------------------------------------------
  void emitIns(uint32_t Pos, LIns *I);
  void emitBinGpr32(LIns *I, void (Assembler::*Op)(Gpr, Gpr));
  void emitBinXmm(LIns *I, uint8_t SseOp);
  void emitCmpSet(LIns *I);
  void emitGuard(LIns *I);
  void emitShift(LIns *I);
  void emitCall(LIns *I);
  void emitTreeCall(LIns *I);

  /// Try to fuse a compare whose single use is the immediately following
  /// guard; returns true when handled at the guard site instead.
  bool fuseWithNextGuard(uint32_t Pos, LIns *I);
  void emitFusedGuard(LIns *Guard, LIns *Cmp);
  Cond intCondFor(LOp Op, bool *SwapOperands);

  NativeBackend &BE;
  Fragment *F;
  VMContext *Ctx;
  Assembler &A;
  std::vector<LIns *> &Body;
  std::vector<ValState> States;
  int32_t NextSlot = 0;
  uint32_t CurPos = 0;
  bool Failed = false;
};

void FragmentCompiler::loadArgGpr(Gpr Dst, LIns *V) {
  if (V->Op == LOp::ParamTar) {
    A.movRR64(Dst, RBX);
    return;
  }
  ValState &S = st(V);
  if (S.Loc == LocKind::Reg) {
    A.movRR64(Dst, (Gpr)S.Reg);
  } else if (S.Loc == LocKind::Spill) {
    A.movRM64(Dst, RSP, S.Slot * 8);
  } else if (V->Op == LOp::ImmI) {
    A.movRI32(Dst, V->Imm.ImmI32);
  } else if (V->Op == LOp::ImmQ) {
    A.movRI64(Dst, (uint64_t)V->Imm.ImmQ64);
  } else {
    Failed = true;
  }
}

void FragmentCompiler::loadArgXmm(Xmm Dst, LIns *V) {
  ValState &S = st(V);
  if (S.Loc == LocKind::Reg) {
    A.movsdRR(Dst, (Xmm)S.Reg);
  } else if (S.Loc == LocKind::Spill) {
    A.movsdRM(Dst, RSP, S.Slot * 8);
  } else if (V->Op == LOp::ImmD) {
    uint64_t Bits;
    std::memcpy(&Bits, &V->Imm.ImmDbl, 8);
    A.movRI64(RAX, Bits);
    A.movqXmmGpr(Dst, RAX);
  } else {
    Failed = true;
  }
}

Cond FragmentCompiler::intCondFor(LOp Op, bool *Swap) {
  *Swap = false;
  switch (Op) {
  case LOp::EqI:
  case LOp::EqQ:
    return CondE;
  case LOp::NeI:
    return CondNE;
  case LOp::LtI:
    return CondL;
  case LOp::LeI:
    return CondLE;
  case LOp::GtI:
    return CondG;
  case LOp::GeI:
    return CondGE;
  case LOp::LtUI:
    return CondB;
  default:
    assert(false);
    return CondE;
  }
}

static Cond invert(Cond C) { return (Cond)(C ^ 1); }

bool FragmentCompiler::fuseWithNextGuard(uint32_t Pos, LIns *I) {
  ValState &S = st(I);
  if (S.Uses.size() != 1 || S.Uses[0] != Pos + 1)
    return false;
  LIns *Next = Body[Pos + 1];
  if ((Next->Op != LOp::GuardT && Next->Op != LOp::GuardF) || Next->A != I)
    return false;
  S.Fused = true;
  return true;
}

void FragmentCompiler::emitFusedGuard(LIns *G, LIns *C) {
  bool ExitIfTrue = G->Op == LOp::GuardF;
  switch (C->Op) {
  case LOp::EqI:
  case LOp::NeI:
  case LOp::LtI:
  case LOp::LeI:
  case LOp::GtI:
  case LOp::GeI:
  case LOp::LtUI: {
    Gpr Ra = ensureGpr(C->A);
    Gpr Rb = ensureGpr(C->B, maskOf(Ra));
    A.cmpRR32(Ra, Rb);
    consume(C->A);
    consume(C->B);
    bool Swap;
    Cond CC = intCondFor(C->Op, &Swap);
    jccToExit(ExitIfTrue ? CC : invert(CC), G->Exit);
    return;
  }
  case LOp::EqQ: {
    Gpr Ra = ensureGpr(C->A);
    Gpr Rb = ensureGpr(C->B, maskOf(Ra));
    A.cmpRR64(Ra, Rb);
    consume(C->A);
    consume(C->B);
    jccToExit(ExitIfTrue ? CondE : CondNE, G->Exit);
    return;
  }
  case LOp::LtD:
  case LOp::LeD:
  case LOp::GtD:
  case LOp::GeD: {
    // a < b  <=>  b `above` a under ucomisd(b, a); NaN compares false.
    Xmm Xa = ensureXmm(C->A);
    Xmm Xb = ensureXmm(C->B, maskOfX(Xa));
    bool Reverse = C->Op == LOp::LtD || C->Op == LOp::LeD;
    if (Reverse)
      A.ucomisd(Xb, Xa);
    else
      A.ucomisd(Xa, Xb);
    consume(C->A);
    consume(C->B);
    bool Strict = C->Op == LOp::LtD || C->Op == LOp::GtD;
    Cond CC = Strict ? CondA : CondAE; // true-condition; unordered -> false
    jccToExit(ExitIfTrue ? CC : invert(CC), G->Exit);
    return;
  }
  case LOp::EqD:
  case LOp::NeD: {
    Xmm Xa = ensureXmm(C->A);
    Xmm Xb = ensureXmm(C->B, maskOfX(Xa));
    A.ucomisd(Xa, Xb);
    consume(C->A);
    consume(C->B);
    bool CondIsEq = C->Op == LOp::EqD;
    // cond==true means: EqD -> (ZF && !PF); NeD -> (!ZF || PF).
    bool ExitOnEqual = (CondIsEq == ExitIfTrue);
    if (ExitOnEqual) {
      // exit iff ZF && !PF: skip on parity, then exit on equal.
      uint8_t *Skip = A.jccFwd(CondP);
      jccToExit(CondE, G->Exit);
      Assembler::patchRel32(Skip, A.pc());
    } else {
      // exit iff !ZF || PF.
      jccToExit(CondP, G->Exit);
      jccToExit(CondNE, G->Exit);
    }
    return;
  }
  default:
    assert(false && "unfusable compare");
  }
}

void FragmentCompiler::emitCmpSet(LIns *I) {
  switch (I->Op) {
  case LOp::EqI:
  case LOp::NeI:
  case LOp::LtI:
  case LOp::LeI:
  case LOp::GtI:
  case LOp::GeI:
  case LOp::LtUI: {
    Gpr Ra = ensureGpr(I->A);
    Gpr Rb = ensureGpr(I->B, maskOf(Ra));
    A.cmpRR32(Ra, Rb);
    consume(I->A);
    consume(I->B);
    Gpr Rd = defGpr(I);
    bool Swap;
    A.setcc(intCondFor(I->Op, &Swap), Rd);
    A.movzxByteRR(Rd, Rd);
    return;
  }
  case LOp::EqQ: {
    Gpr Ra = ensureGpr(I->A);
    Gpr Rb = ensureGpr(I->B, maskOf(Ra));
    A.cmpRR64(Ra, Rb);
    consume(I->A);
    consume(I->B);
    Gpr Rd = defGpr(I);
    A.setcc(CondE, Rd);
    A.movzxByteRR(Rd, Rd);
    return;
  }
  case LOp::LtD:
  case LOp::LeD:
  case LOp::GtD:
  case LOp::GeD: {
    Xmm Xa = ensureXmm(I->A);
    Xmm Xb = ensureXmm(I->B, maskOfX(Xa));
    bool Reverse = I->Op == LOp::LtD || I->Op == LOp::LeD;
    if (Reverse)
      A.ucomisd(Xb, Xa);
    else
      A.ucomisd(Xa, Xb);
    consume(I->A);
    consume(I->B);
    Gpr Rd = defGpr(I);
    bool Strict = I->Op == LOp::LtD || I->Op == LOp::GtD;
    A.setcc(Strict ? CondA : CondAE, Rd);
    A.movzxByteRR(Rd, Rd);
    return;
  }
  case LOp::EqD:
  case LOp::NeD: {
    Xmm Xa = ensureXmm(I->A);
    Xmm Xb = ensureXmm(I->B, maskOfX(Xa));
    A.ucomisd(Xa, Xb);
    consume(I->A);
    consume(I->B);
    Gpr Rd = defGpr(I);
    // EqD: sete && setnp; NeD: setne || setp. Use RAX as the second flag.
    if (I->Op == LOp::EqD) {
      A.setcc(CondE, Rd);
      A.setcc(CondNP, RAX);
      A.andRR32(Rd, RAX);
    } else {
      A.setcc(CondNE, Rd);
      A.setcc(CondP, RAX);
      A.orRR32(Rd, RAX);
    }
    A.movzxByteRR(Rd, Rd);
    return;
  }
  default:
    assert(false);
  }
}

void FragmentCompiler::emitBinGpr32(LIns *I, void (Assembler::*Op)(Gpr, Gpr)) {
  Gpr Ra = ensureGpr(I->A);
  Gpr Rb = ensureGpr(I->B, maskOf(Ra));
  Gpr Rd = defGpr(I, maskOf(Ra) | maskOf(Rb));
  if (Rd != Ra)
    A.movRR32(Rd, Ra);
  (A.*Op)(Rd, Rb);
  consume(I->A);
  consume(I->B);
}

void FragmentCompiler::emitBinXmm(LIns *I, uint8_t SseOp) {
  Xmm Xa = ensureXmm(I->A);
  Xmm Xb = ensureXmm(I->B, maskOfX(Xa));
  Xmm Xd = defXmm(I, maskOfX(Xa) | maskOfX(Xb));
  if (Xd != Xa)
    A.movsdRR(Xd, Xa);
  A.sseRR(SseOp, Xd, Xb);
  consume(I->A);
  consume(I->B);
}

void FragmentCompiler::emitShift(LIns *I) {
  bool Is64 = I->Op == LOp::ShlQ || I->Op == LOp::ShrQ || I->Op == LOp::SarQ;
  // Immediate count fast path.
  if (I->B->Op == LOp::ImmI) {
    uint8_t N = (uint8_t)(I->B->Imm.ImmI32 & (Is64 ? 63 : 31));
    Gpr Ra = ensureGpr(I->A);
    Gpr Rd = defGpr(I, maskOf(Ra));
    if (Is64) {
      if (Rd != Ra)
        A.movRR64(Rd, Ra);
      if (I->Op == LOp::ShlQ)
        A.shlI64(Rd, N);
      else if (I->Op == LOp::ShrQ)
        A.shrI64(Rd, N);
      else
        A.sarI64(Rd, N);
    } else {
      if (Rd != Ra)
        A.movRR32(Rd, Ra);
      if (I->Op == LOp::ShlI)
        A.shlI32(Rd, N);
      else if (I->Op == LOp::UshrI)
        A.shrI32(Rd, N);
      else
        A.sarI32(Rd, N);
    }
    consume(I->A);
    consume(I->B);
    return;
  }
  // Variable count must be in CL.
  assert(!Is64 && "64-bit shifts always have immediate counts");
  Gpr Ra = ensureGpr(I->A);
  Gpr Rb = ensureGpr(I->B, maskOf(Ra));
  // Relocate whatever currently holds RCX (unless it is the count itself):
  // a plain spill would leave a stale register assignment for A.
  if (GprHeld[RCX] && GprHeld[RCX] != I->B) {
    LIns *V = GprHeld[RCX];
    Gpr NR = allocGpr(CurPos, maskOf(RCX) | maskOf(Ra) | maskOf(Rb));
    if (Failed)
      return;
    A.movRR64(NR, RCX);
    GprHeld[RCX] = nullptr;
    bindGpr(V, NR);
    if (V == I->A)
      Ra = NR;
  }
  if (Rb != RCX)
    A.movRR32(RCX, Rb);
  Gpr Rd = defGpr(I, maskOf(Ra) | maskOf(Rb) | maskOf(RCX));
  if (Rd != Ra)
    A.movRR32(Rd, Ra);
  if (I->Op == LOp::ShlI)
    A.shlCl32(Rd);
  else if (I->Op == LOp::UshrI)
    A.shrCl32(Rd);
  else
    A.sarCl32(Rd);
  consume(I->A);
  consume(I->B);
}

void FragmentCompiler::emitGuard(LIns *I) {
  LIns *C = I->A;
  if (st(C).Fused) {
    emitFusedGuard(I, C);
    return;
  }
  Gpr Rc = ensureGpr(C);
  A.testRR32(Rc, Rc);
  consume(C);
  // GuardT exits when the condition is FALSE.
  jccToExit(I->Op == LOp::GuardT ? CondE : CondNE, I->Exit);
}

void FragmentCompiler::emitCall(LIns *I) {
  const CallInfo *CI = I->CI;
  flushForCall();
  uint32_t IntIdx = 0, DblIdx = 0;
  for (uint32_t K = 0; K < I->NCallArgs; ++K) {
    LIns *Arg = I->CallArgs[K];
    if (CI->Args[K] == LTy::D)
      loadArgXmm((Xmm)(DblIdx++), Arg);
    else
      loadArgGpr(IntArgRegs[IntIdx++], Arg);
  }
  for (uint32_t K = 0; K < I->NCallArgs; ++K)
    consume(I->CallArgs[K]);
  A.movRI64(RAX, (uint64_t)(uintptr_t)CI->Addr);
  A.callReg(RAX);
  if (CI->Ret == LTy::D) {
    Xmm Xd = defXmm(I);
    A.movsdRR(Xd, XMM0);
  } else if (CI->Ret != LTy::Void) {
    Gpr Rd = defGpr(I);
    A.movRR64(Rd, RAX);
  }
}

void FragmentCompiler::emitTreeCall(LIns *I) {
  flushForCall();
  A.movRR64(RDI, RBX);
  // imm64 code addresses must point into the executable view; rel32 jumps
  // within the pool are view-agnostic, absolute embeds are not.
  A.movRI64(RSI,
            (uint64_t)(uintptr_t)BE.pool().execAddr(I->Target->NativeEntry));
  A.movRI64(RAX, (uint64_t)(uintptr_t)BE.trampolineAddr());
  A.callReg(RAX);
  // Guard: did the inner tree return through the expected exit?
  A.movRI64(RCX, (uint64_t)(uintptr_t)I->ExpectedExit);
  A.cmpRR64(RAX, RCX);
  uint8_t *Ok = A.jccFwd(CondE);
  A.movRI64(RCX, (uint64_t)(uintptr_t)&Ctx->LastNestedExit);
  A.movMR64(RCX, 0, RAX);
  jmpToExit(I->Exit);
  Assembler::patchRel32(Ok, A.pc());
}

void FragmentCompiler::emitIns(uint32_t Pos, LIns *I) {
  CurPos = Pos;
  switch (I->Op) {
  case LOp::ParamTar:
    return; // pinned in RBX
  case LOp::ImmI:
  case LOp::ImmQ:
  case LOp::ImmD:
    return; // rematerialized at use sites

  case LOp::LdI: {
    Gpr Rb = ensureGpr(I->A);
    Gpr Rd = defGpr(I, maskOf(Rb));
    A.movRM32(Rd, Rb, I->Disp);
    consume(I->A);
    return;
  }
  case LOp::LdQ: {
    Gpr Rb = ensureGpr(I->A);
    Gpr Rd = defGpr(I, maskOf(Rb));
    A.movRM64(Rd, Rb, I->Disp);
    consume(I->A);
    return;
  }
  case LOp::LdUB: {
    Gpr Rb = ensureGpr(I->A);
    Gpr Rd = defGpr(I, maskOf(Rb));
    A.movzxByteRM(Rd, Rb, I->Disp);
    consume(I->A);
    return;
  }
  case LOp::LdD: {
    Gpr Rb = ensureGpr(I->A);
    Xmm Xd = defXmm(I);
    A.movsdRM(Xd, Rb, I->Disp);
    consume(I->A);
    return;
  }

  case LOp::StI: {
    Gpr Rv = ensureGpr(I->A);
    Gpr Rb = ensureGpr(I->B, maskOf(Rv));
    A.movMR32(Rb, I->Disp, Rv);
    consume(I->A);
    consume(I->B);
    return;
  }
  case LOp::StQ: {
    Gpr Rv = ensureGpr(I->A);
    Gpr Rb = ensureGpr(I->B, maskOf(Rv));
    A.movMR64(Rb, I->Disp, Rv);
    consume(I->A);
    consume(I->B);
    return;
  }
  case LOp::StD: {
    Xmm Xv = ensureXmm(I->A);
    Gpr Rb = ensureGpr(I->B);
    A.movsdMR(Rb, I->Disp, Xv);
    consume(I->A);
    consume(I->B);
    return;
  }

  case LOp::AddI:
    emitBinGpr32(I, &Assembler::addRR32);
    return;
  case LOp::SubI:
    emitBinGpr32(I, &Assembler::subRR32);
    return;
  case LOp::MulI:
    emitBinGpr32(I, &Assembler::imulRR32);
    return;
  case LOp::AndI:
    emitBinGpr32(I, &Assembler::andRR32);
    return;
  case LOp::OrI:
    emitBinGpr32(I, &Assembler::orRR32);
    return;
  case LOp::XorI:
    emitBinGpr32(I, &Assembler::xorRR32);
    return;
  case LOp::ShlI:
  case LOp::ShrI:
  case LOp::UshrI:
  case LOp::ShlQ:
  case LOp::ShrQ:
  case LOp::SarQ:
    emitShift(I);
    return;

  case LOp::AddOvI:
  case LOp::SubOvI:
  case LOp::MulOvI: {
    Gpr Ra = ensureGpr(I->A);
    Gpr Rb = ensureGpr(I->B, maskOf(Ra));
    Gpr Rd = defGpr(I, maskOf(Ra) | maskOf(Rb));
    if (Rd != Ra)
      A.movRR32(Rd, Ra);
    if (I->Op == LOp::AddOvI)
      A.addRR32(Rd, Rb);
    else if (I->Op == LOp::SubOvI)
      A.subRR32(Rd, Rb);
    else
      A.imulRR32(Rd, Rb);
    consume(I->A);
    consume(I->B);
    jccToExit(CondO, I->Exit);
    return;
  }

  case LOp::AddQ:
    // 64-bit add (address arithmetic).
    {
      Gpr Ra = ensureGpr(I->A);
      Gpr Rb = ensureGpr(I->B, maskOf(Ra));
      Gpr Rd = defGpr(I, maskOf(Ra) | maskOf(Rb));
      if (Rd != Ra)
        A.movRR64(Rd, Ra);
      A.addRR64(Rd, Rb);
      consume(I->A);
      consume(I->B);
      return;
    }
  case LOp::AndQ:
  case LOp::OrQ: {
    Gpr Ra = ensureGpr(I->A);
    Gpr Rb = ensureGpr(I->B, maskOf(Ra));
    Gpr Rd = defGpr(I, maskOf(Ra) | maskOf(Rb));
    if (Rd != Ra)
      A.movRR64(Rd, Ra);
    if (I->Op == LOp::AndQ)
      A.andRR64(Rd, Rb);
    else
      A.orRR64(Rd, Rb);
    consume(I->A);
    consume(I->B);
    return;
  }
  case LOp::Q2I:
  case LOp::UI2Q: {
    Gpr Ra = ensureGpr(I->A);
    Gpr Rd = defGpr(I, maskOf(Ra));
    A.movRR32(Rd, Ra); // zero-extending 32-bit move
    consume(I->A);
    return;
  }

  case LOp::EqI:
  case LOp::NeI:
  case LOp::LtI:
  case LOp::LeI:
  case LOp::GtI:
  case LOp::GeI:
  case LOp::LtUI:
  case LOp::EqQ:
  case LOp::EqD:
  case LOp::NeD:
  case LOp::LtD:
  case LOp::LeD:
  case LOp::GtD:
  case LOp::GeD:
    if (fuseWithNextGuard(Pos, I))
      return;
    emitCmpSet(I);
    return;

  case LOp::AddD:
    emitBinXmm(I, 0x58);
    return;
  case LOp::SubD:
    emitBinXmm(I, 0x5C);
    return;
  case LOp::MulD:
    emitBinXmm(I, 0x59);
    return;
  case LOp::DivD:
    emitBinXmm(I, 0x5E);
    return;
  case LOp::NegD: {
    Xmm Xa = ensureXmm(I->A);
    Xmm Xd = defXmm(I, maskOfX(Xa));
    A.movRI64(RAX, 0x8000000000000000ULL);
    A.movqXmmGpr(XMM0, RAX);
    if (Xd != Xa)
      A.movsdRR(Xd, Xa);
    A.xorpd(Xd, XMM0);
    consume(I->A);
    return;
  }

  case LOp::I2D: {
    Gpr Ra = ensureGpr(I->A);
    Xmm Xd = defXmm(I);
    A.cvtsi2sd(Xd, Ra, /*Src64=*/false);
    consume(I->A);
    return;
  }
  case LOp::UI2D: {
    Gpr Ra = ensureGpr(I->A);
    A.movRR32(RAX, Ra); // zero-extend into RAX
    Xmm Xd = defXmm(I);
    A.cvtsi2sd(Xd, RAX, /*Src64=*/true);
    consume(I->A);
    return;
  }
  case LOp::D2I: {
    Xmm Xa = ensureXmm(I->A);
    Gpr Rd = defGpr(I);
    A.cvttsd2si(Rd, Xa);
    consume(I->A);
    return;
  }

  case LOp::GuardT:
  case LOp::GuardF:
    emitGuard(I);
    return;

  case LOp::Exit:
    jmpToExit(I->Exit);
    return;

  case LOp::Call:
    emitCall(I);
    return;

  case LOp::TreeCall:
    emitTreeCall(I);
    return;

  case LOp::Loop:
    // With a hoisted prologue the back edge lands at LoopEntryPc, where the
    // register model is "nothing held" (flushPrologue parked every value in
    // its spill slot, and slots are never recycled) -- so arbitrary register
    // state at the jump is fine. Without a prologue the whole body
    // re-executes and re-defines everything, so NativeEntry needs no fixup
    // either.
    A.jmp(LoopEntryPc ? LoopEntryPc : F->NativeEntry);
    return;

  case LOp::JmpFrag:
    A.jmp(I->Target->NativeEntry);
    return;

  case LOp::Label:
    // Join point: park everything so every incoming edge (fallthrough and
    // branches) sees the same empty register model.
    flushPrologue();
    LabelPc[I] = A.pc();
    return;

  case LOp::Jmp:
    flushPrologue();
    if (auto It = LabelPc.find(I->A); It != LabelPc.end())
      A.jmp(It->second);
    else
      BranchFixups.push_back({A.jmpFwd(), I->A});
    return;

  case LOp::JmpIfT:
  case LOp::JmpIfF: {
    // Park live values first (both edges must see the empty model), then
    // reload the condition from its slot -- slots survive flushPrologue.
    flushPrologue();
    loadArgGpr(RAX, I->A);
    A.testRR32(RAX, RAX);
    Cond C = I->Op == LOp::JmpIfT ? CondNE : CondE;
    if (auto It = LabelPc.find(I->B); It != LabelPc.end())
      A.jcc(C, It->second);
    else
      BranchFixups.push_back({A.jccFwd(C), I->B});
    consume(I->A);
    return;
  }

  case LOp::NumOps:
    Failed = true;
    return;
  }
}

bool FragmentCompiler::run() {
  // Pass 1: use positions.
  uint32_t MaxId = 0;
  for (LIns *I : Body)
    if (I->Id > MaxId)
      MaxId = I->Id;
  States.assign(MaxId + 1, ValState());
  for (uint32_t P = 0; P < Body.size(); ++P) {
    LIns *I = Body[P];
    if (I->A)
      st(I->A).Uses.push_back(P);
    if (I->B)
      st(I->B).Uses.push_back(P);
    for (uint32_t K = 0; K < I->NCallArgs; ++K)
      st(I->CallArgs[K]).Uses.push_back(P);
  }

  // Pass 2: emit.
  F->NativeEntry = A.pc();
  for (uint32_t P = 0; P < Body.size() && !Failed && !A.overflowed(); ++P) {
    if (F->PrologueEnd && P == F->PrologueEnd) {
      // Prologue/loop boundary: park every live value in its spill slot so
      // the back edge can land here with no register assumptions.
      flushPrologue();
      LoopEntryPc = A.pc();
    }
    emitIns(P, Body[P]);
  }

  // Resolve forward intra-body branches now that every label is placed.
  for (PendingBranch &B : BranchFixups) {
    auto It = LabelPc.find(B.Label);
    if (It == LabelPc.end()) {
      Failed = true;
      break;
    }
    Assembler::patchRel32(B.Fixup, It->second);
  }

  // Exit stubs: one per descriptor so stitching can retarget every jump to
  // that exit by patching a single site.
  std::unordered_map<ExitDescriptor *, uint8_t *> StubAt;
  for (PendingStub &S : Stubs) {
    auto It = StubAt.find(S.Exit);
    if (It != StubAt.end()) {
      Assembler::patchRel32(S.Fixup, It->second);
      continue;
    }
    uint8_t *Stub = A.pc();
    StubAt.emplace(S.Exit, Stub);
    Assembler::patchRel32(S.Fixup, Stub);
    S.Exit->PatchAddr = Stub;
    A.movRI64(RAX, (uint64_t)(uintptr_t)S.Exit);
    A.jmp(BE.sharedEpilogue());
  }

  F->NativeSize = (uint32_t)A.size();
  return !Failed && !A.overflowed();
}

} // namespace

CompileResult NativeBackend::compile(Fragment *F, VMContext *Ctx) {
  if (!Ready)
    return CompileResult::BackendUnavailable;
  if (inject(FaultSite::CompileFail))
    return CompileResult::Fault;
  if (!Pool.makeWritable())
    return CompileResult::Fault; // W^X flip failed; cannot emit
  // Method bodies spill-all at every label/branch, so budget more bytes
  // per instruction than straight-line traces need.
  size_t PerIns = F->Kind == FragmentKind::Method ? 96 : 48;
  size_t Estimate = F->Body.size() * PerIns + F->Exits.size() * 24 + 512;
  uint8_t *Mem = Pool.reserve(Estimate);
  if (!Mem)
    return CompileResult::PoolExhausted;
  Assembler A(Mem, Estimate);
  FragmentCompiler FC(*this, F, Ctx, A);
  if (!FC.run()) {
    bool Overflow = A.overflowed();
    F->NativeEntry = nullptr;
    F->NativeSize = 0;
    Pool.rewind(); // a failed compile returns its bytes
    return Overflow ? CompileResult::AssemblerOverflow
                    : CompileResult::Unsupported;
  }
  Pool.commit(F->NativeSize); // keep only what was emitted, not Estimate
  return CompileResult::Ok;
}

} // namespace tracejit
