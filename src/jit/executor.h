//===- executor.h - Portable LIR executor backend ------------------------------===//
//
// A reference implementation of fragment execution: interprets the LIR
// body directly. Used (a) as a portable backend on hosts without x86-64
// codegen, and (b) for differential testing -- the native compiler must
// produce exactly the behavior this executor defines.
//
// Fragment transfer semantics mirror the native backend: Loop restarts the
// body, a guard whose exit was stitched (Exit->Target) transfers into the
// branch fragment, JmpFrag tail-jumps, and TreeCall runs the inner tree and
// compares its exit against the expectation.
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_JIT_EXECUTOR_H
#define TRACEJIT_JIT_EXECUTOR_H

#include <cstdint>

#include "jit/fragment.h"

namespace tracejit {

struct VMContext;

class LirExecutor {
public:
  /// Execute \p F against the TAR at \p Tar. Returns the exit taken.
  static ExitDescriptor *run(Fragment *F, uint8_t *Tar, VMContext *Ctx);
};

} // namespace tracejit

#endif // TRACEJIT_JIT_EXECUTOR_H
