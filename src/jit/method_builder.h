//===- method_builder.h - Bytecode -> LIR whole-loop-body compiler ---------===//
//
// The method-tier front end (trace/tier.h): lowers one loop body
// [HeaderPc, EndPc) directly from bytecode to LIR, with real control flow
// (Label/Jmp/JmpIfT/JmpIfF) instead of recorded straight-line traces.
//
// Shape of the generated code:
//   - every value stays boxed; the TAR holds raw Value words (the
//     all-Boxed entry map, so method fragments never peer-match traces),
//   - each bytecode loads its operands from the TAR and stores its result
//     back eagerly, so no SSA value needs to live across a control-flow
//     join -- the TAR is the register file at every label,
//   - int-int fast paths are inlined with tag tests and branch to a
//     helper-call slow path where the recorder would have guarded,
//   - everything else calls a tj_Method* helper that reuses the exact
//     interpreter semantics and deopts at the faulting pc on error,
//   - jumps that leave the loop body become LoopExit exits; Return
//     becomes a Deopt at the return pc; loop headers in the body keep
//     their preempt guards so deadlines/GC/quotas still fire (§6.4).
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_JIT_METHOD_BUILDER_H
#define TRACEJIT_JIT_METHOD_BUILDER_H

namespace tracejit {

class Fragment;
class Interpreter;
struct FunctionScript;
struct LoopRecord;
struct VMContext;

/// Populate \p F (kind Method) with a compiled body for \p Loop of
/// \p Script, anchored at the current interpreter state (the live frame
/// chain becomes the fragment's entry shape). Fills EntryTypes,
/// EntryFrames, Body, RequiredTarSlots, BytecodesCovered, and LirRecorded.
/// Returns false when the loop cannot be method-compiled (malformed or
/// stack-inconsistent bytecode); the fragment is then dead.
bool buildMethodBody(VMContext &Ctx, Interpreter &Interp,
                     FunctionScript *Script, LoopRecord *Loop, Fragment *F);

} // namespace tracejit

#endif // TRACEJIT_JIT_METHOD_BUILDER_H
