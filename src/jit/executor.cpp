//===- executor.cpp - Portable LIR executor backend ----------------------------===//

#include "jit/executor.h"

#include <cmath>
#include <cstring>
#include <vector>

#include "interp/vmcontext.h"
#include "lir/lir.h"

namespace tracejit {

namespace {

inline double asD(uint64_t W) {
  double D;
  std::memcpy(&D, &W, 8);
  return D;
}
inline uint64_t fromD(double D) {
  uint64_t W;
  std::memcpy(&W, &D, 8);
  return W;
}
inline int32_t asI(uint64_t W) { return (int32_t)(uint32_t)W; }
inline uint64_t fromI(int32_t I) { return (uint64_t)(uint32_t)I; }

} // namespace

ExitDescriptor *LirExecutor::run(Fragment *F, uint8_t *Tar, VMContext *Ctx) {
  std::vector<uint64_t> Vals;

restart_fragment:
  {
    uint32_t MaxId = 0;
    for (LIns *I : F->Body)
      if (I->Id > MaxId)
        MaxId = I->Id;
    Vals.assign((size_t)MaxId + 1, 0);
  }

  size_t P = 0;
restart_body:
  for (; P < F->Body.size(); ++P) {
    LIns *I = F->Body[P];
    uint64_t &R = Vals[I->Id];
    auto V = [&](LIns *X) -> uint64_t { return Vals[X->Id]; };

    // Take a guard exit: transfer to a stitched branch or return.
    auto TakeExit = [&](ExitDescriptor *E) -> Fragment * {
      if (E->Target) {
        // Stitched: continue in the branch fragment with the same TAR.
        return E->Target;
      }
      return nullptr;
    };

    switch (I->Op) {
    case LOp::ParamTar:
      R = (uint64_t)(uintptr_t)Tar;
      break;
    case LOp::ImmI:
      R = fromI(I->Imm.ImmI32);
      break;
    case LOp::ImmQ:
      R = (uint64_t)I->Imm.ImmQ64;
      break;
    case LOp::ImmD:
      R = fromD(I->Imm.ImmDbl);
      break;

    case LOp::LdI:
      R = fromI(*(int32_t *)((uint8_t *)(uintptr_t)V(I->A) + I->Disp));
      break;
    case LOp::LdQ:
      R = *(uint64_t *)((uint8_t *)(uintptr_t)V(I->A) + I->Disp);
      break;
    case LOp::LdD:
      R = *(uint64_t *)((uint8_t *)(uintptr_t)V(I->A) + I->Disp);
      break;
    case LOp::LdUB:
      R = *(uint8_t *)((uint8_t *)(uintptr_t)V(I->A) + I->Disp);
      break;
    case LOp::StI:
      *(int32_t *)((uint8_t *)(uintptr_t)V(I->B) + I->Disp) = asI(V(I->A));
      break;
    case LOp::StQ:
    case LOp::StD:
      *(uint64_t *)((uint8_t *)(uintptr_t)V(I->B) + I->Disp) = V(I->A);
      break;

    case LOp::AddI:
      R = fromI(asI(V(I->A)) + asI(V(I->B)));
      break;
    case LOp::SubI:
      R = fromI(asI(V(I->A)) - asI(V(I->B)));
      break;
    case LOp::MulI:
      R = fromI((int32_t)((int64_t)asI(V(I->A)) * asI(V(I->B))));
      break;
    case LOp::AndI:
      R = fromI(asI(V(I->A)) & asI(V(I->B)));
      break;
    case LOp::OrI:
      R = fromI(asI(V(I->A)) | asI(V(I->B)));
      break;
    case LOp::XorI:
      R = fromI(asI(V(I->A)) ^ asI(V(I->B)));
      break;
    case LOp::ShlI:
      R = fromI((int32_t)((uint32_t)asI(V(I->A)) << (asI(V(I->B)) & 31)));
      break;
    case LOp::ShrI:
      R = fromI(asI(V(I->A)) >> (asI(V(I->B)) & 31));
      break;
    case LOp::UshrI:
      R = fromI((int32_t)((uint32_t)asI(V(I->A)) >> (asI(V(I->B)) & 31)));
      break;

    case LOp::AddOvI:
    case LOp::SubOvI:
    case LOp::MulOvI: {
      int64_t X = asI(V(I->A)), Y = asI(V(I->B));
      int64_t Full = I->Op == LOp::AddOvI   ? X + Y
                     : I->Op == LOp::SubOvI ? X - Y
                                            : X * Y;
      if (Full < INT32_MIN || Full > INT32_MAX) {
        if (Fragment *T = TakeExit(I->Exit)) {
          F = T;
          goto restart_fragment;
        }
        return I->Exit;
      }
      R = fromI((int32_t)Full);
      break;
    }

    case LOp::AddQ:
      R = V(I->A) + V(I->B);
      break;
    case LOp::AndQ:
      R = V(I->A) & V(I->B);
      break;
    case LOp::OrQ:
      R = V(I->A) | V(I->B);
      break;
    case LOp::ShlQ:
      R = V(I->A) << (asI(V(I->B)) & 63);
      break;
    case LOp::ShrQ:
      R = V(I->A) >> (asI(V(I->B)) & 63);
      break;
    case LOp::SarQ:
      R = (uint64_t)((int64_t)V(I->A) >> (asI(V(I->B)) & 63));
      break;
    case LOp::Q2I:
    case LOp::UI2Q:
      R = (uint32_t)V(I->A);
      break;

    case LOp::EqI:
      R = asI(V(I->A)) == asI(V(I->B));
      break;
    case LOp::NeI:
      R = asI(V(I->A)) != asI(V(I->B));
      break;
    case LOp::LtI:
      R = asI(V(I->A)) < asI(V(I->B));
      break;
    case LOp::LeI:
      R = asI(V(I->A)) <= asI(V(I->B));
      break;
    case LOp::GtI:
      R = asI(V(I->A)) > asI(V(I->B));
      break;
    case LOp::GeI:
      R = asI(V(I->A)) >= asI(V(I->B));
      break;
    case LOp::LtUI:
      R = (uint32_t)asI(V(I->A)) < (uint32_t)asI(V(I->B));
      break;
    case LOp::EqQ:
      R = V(I->A) == V(I->B);
      break;

    case LOp::AddD:
      R = fromD(asD(V(I->A)) + asD(V(I->B)));
      break;
    case LOp::SubD:
      R = fromD(asD(V(I->A)) - asD(V(I->B)));
      break;
    case LOp::MulD:
      R = fromD(asD(V(I->A)) * asD(V(I->B)));
      break;
    case LOp::DivD:
      R = fromD(asD(V(I->A)) / asD(V(I->B)));
      break;
    case LOp::NegD:
      R = fromD(-asD(V(I->A)));
      break;
    case LOp::EqD:
      R = asD(V(I->A)) == asD(V(I->B));
      break;
    case LOp::NeD:
      R = asD(V(I->A)) != asD(V(I->B));
      break;
    case LOp::LtD:
      R = asD(V(I->A)) < asD(V(I->B));
      break;
    case LOp::LeD:
      R = asD(V(I->A)) <= asD(V(I->B));
      break;
    case LOp::GtD:
      R = asD(V(I->A)) > asD(V(I->B));
      break;
    case LOp::GeD:
      R = asD(V(I->A)) >= asD(V(I->B));
      break;

    case LOp::I2D:
      R = fromD((double)asI(V(I->A)));
      break;
    case LOp::UI2D:
      R = fromD((double)(uint32_t)asI(V(I->A)));
      break;
    case LOp::D2I:
      R = fromI((int32_t)asD(V(I->A)));
      break;

    case LOp::Call: {
      uint64_t Args[6] = {};
      for (uint32_t K = 0; K < I->NCallArgs; ++K)
        Args[K] = V(I->CallArgs[K]);
      R = I->CI->Shim ? I->CI->Shim(I->CI->Addr, Args) : 0;
      break;
    }

    case LOp::GuardT:
    case LOp::GuardF: {
      bool C = asI(V(I->A)) != 0;
      bool Exits = I->Op == LOp::GuardT ? !C : C;
      if (Exits) {
        if (Fragment *T = TakeExit(I->Exit)) {
          F = T;
          goto restart_fragment;
        }
        return I->Exit;
      }
      break;
    }

    case LOp::Exit: {
      if (Fragment *T = TakeExit(I->Exit)) {
        F = T;
        goto restart_fragment;
      }
      return I->Exit;
    }

    case LOp::TreeCall: {
      ExitDescriptor *Inner = run(I->Target, Tar, Ctx);
      if (Inner != I->ExpectedExit) {
        Ctx->LastNestedExit = Inner;
        if (Fragment *T = TakeExit(I->Exit)) {
          F = T;
          goto restart_fragment;
        }
        return I->Exit;
      }
      break;
    }

    case LOp::Loop:
      // Back edge re-enters after the hoisted prologue (PrologueEnd == 0
      // when the loop optimizer did not split this body). Vals persist, so
      // prologue-computed values remain live across iterations.
      P = F->PrologueEnd;
      goto restart_body;

    case LOp::JmpFrag:
      // Method-tier targets have no per-entry typemap prologue, so there
      // is nothing to re-run: enter directly at PrologueEnd (always 0 for
      // method bodies -- asserted at compile time). Trace-tier targets
      // keep re-entering at 0 so hoisted entry guards re-validate state.
      F = I->Target;
      if (F->Kind == FragmentKind::Method) {
        uint32_t MaxId = 0;
        for (LIns *X : F->Body)
          if (X->Id > MaxId)
            MaxId = X->Id;
        Vals.assign((size_t)MaxId + 1, 0);
        P = F->PrologueEnd;
        goto restart_body;
      }
      goto restart_fragment;

    case LOp::Label:
      // Join-point marker; no effect at runtime.
      break;

    case LOp::Jmp:
      P = (size_t)(uint32_t)I->A->Imm.ImmI32;
      goto restart_body;

    case LOp::JmpIfT:
    case LOp::JmpIfF: {
      bool C = asI(V(I->A)) != 0;
      if (I->Op == LOp::JmpIfT ? C : !C) {
        P = (size_t)(uint32_t)I->B->Imm.ImmI32;
        goto restart_body;
      }
      break;
    }

    case LOp::NumOps:
      return nullptr;
    }
  }
  // Falling off the end should not happen (traces end in Loop/Exit/JmpFrag),
  // but be safe: report the first exit or nullptr.
  return F->Exits.empty() ? nullptr : F->Exits[0].get();
}

} // namespace tracejit
