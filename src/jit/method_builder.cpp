//===- method_builder.cpp - Bytecode -> LIR whole-loop-body compiler -------===//

#include "jit/method_builder.h"

#include <memory>
#include <unordered_map>
#include <vector>

#include "frontend/bytecode.h"
#include "interp/interpreter.h"
#include "interp/vmcontext.h"
#include "jit/fragment.h"
#include "lir/lir.h"
#include "support/arena.h"
#include "trace/helpers.h"
#include "trace/typemap.h"

namespace tracejit {

namespace {

/// One build. The abstract state is a single integer per pc: the absolute
/// value-stack top ("sp") the interpreter would have there. Pass 1 solves
/// sp for every reachable pc with a worklist (joins must agree); pass 2
/// lowers linearly, binding a label at every jump target.
class MethodBuilder {
public:
  MethodBuilder(VMContext &Ctx, Interpreter &Interp, FunctionScript *Script,
                LoopRecord *Loop, Fragment *F)
      : Ctx(Ctx), Interp(Interp), Script(Script), Loop(Loop), F(F),
        NG(Ctx.Globals.size()), Base(Interp.currentFrame().Base),
        EntrySp(Interp.stackTop()), Buf(*F->LirArena) {}

  bool build();

private:
  // --- Pass 1: abstract interpretation of sp -------------------------------

  bool solveStackDepths();
  /// Stack-top after executing the op at \p Pc with stack-top \p Sp; false
  /// when the op is unsupported or would underflow.
  bool spAfter(Op O, uint32_t Pc, int64_t Sp, int64_t &Out) const;
  bool inRange(uint32_t Pc) const {
    return Pc >= Loop->HeaderPc && Pc < Loop->EndPc;
  }

  // --- Pass 2: lowering ----------------------------------------------------

  bool lowerOp(Op O, uint32_t Pc, int64_t Sp);
  void lowerArith(Op O, uint32_t Pc, int64_t Sp);
  void lowerCompare(Op O, uint32_t Pc, int64_t Sp);
  void lowerBitop(Op O, uint32_t Pc, int64_t Sp);
  void lowerNeg(uint32_t Pc, int64_t Sp);
  void lowerBitNot(uint32_t Pc, int64_t Sp);
  void lowerLogicalNot(uint32_t Pc, int64_t Sp);
  void lowerCondJump(Op O, uint32_t Pc, int64_t Sp);

  // --- Emission helpers ----------------------------------------------------

  LIns *immI(int32_t V) { return Buf.insImmI(V); }
  LIns *immQ(int64_t V) { return Buf.insImmQ(V); }
  LIns *interpPtr() { return immQ((int64_t)(intptr_t)&Interp); }

  void noteSlot(uint32_t TarSlot) {
    if (TarSlot + 1 > MaxTarSlots)
      MaxTarSlots = TarSlot + 1;
  }
  /// Load/store the boxed word of absolute stack index \p Idx.
  LIns *ldStack(int64_t Idx) {
    noteSlot(NG + (uint32_t)Idx);
    return Buf.insLoad(LOp::LdQ, ParamTar, tarOffsetOfSlot(NG + (uint32_t)Idx));
  }
  void stStack(int64_t Idx, LIns *V) {
    noteSlot(NG + (uint32_t)Idx);
    Buf.insStore(LOp::StQ, V, ParamTar, tarOffsetOfSlot(NG + (uint32_t)Idx));
  }
  LIns *ldGlobal(uint32_t G) {
    return Buf.insLoad(LOp::LdQ, ParamTar, tarOffsetOfSlot(G));
  }
  void stGlobal(uint32_t G, LIns *V) {
    Buf.insStore(LOp::StQ, V, ParamTar, tarOffsetOfSlot(G));
  }

  /// v must be a boxed int word: extract the int32 payload.
  LIns *unboxInt(LIns *W) {
    return Buf.ins1(LOp::Q2I, Buf.ins2(LOp::SarQ, W, immI(32)));
  }
  /// Box an int32 back into a value word.
  LIns *boxInt(LIns *I) {
    return Buf.ins2(LOp::OrQ,
                    Buf.ins2(LOp::ShlQ, Buf.ins1(LOp::UI2Q, I), immI(32)),
                    immQ(1));
  }
  /// Box an i32 0/1 into a boolean value word ((payload << 3) | Special).
  LIns *boxBool(LIns *B) {
    return Buf.ins2(LOp::OrQ,
                    Buf.ins2(LOp::ShlQ, Buf.ins1(LOp::UI2Q, B), immI(3)),
                    immQ((int64_t)TagSpecial));
  }
  /// I32 1 iff both words carry the int tag bit.
  LIns *bothInt(LIns *A, LIns *B) {
    return Buf.ins2(LOp::EqQ,
                    Buf.ins2(LOp::AndQ, Buf.ins2(LOp::AndQ, A, B), immQ(1)),
                    immQ(1));
  }
  /// I32 1 iff the word is a boolean (bits 6 or 14).
  LIns *isBoolean(LIns *W) {
    return Buf.ins2(LOp::EqQ, Buf.ins2(LOp::AndQ, W, immQ(~(int64_t)8)),
                    immQ((int64_t)TagSpecial));
  }

  ExitDescriptor *makeExit(ExitKind Kind, uint32_t Pc, int64_t Sp);
  /// Guard that a helper result is not the error sentinel; deopt at \p Pc
  /// (where the pending error unwinds the interpreter) otherwise.
  void guardNotSentinel(LIns *R, uint32_t Pc, int64_t Sp) {
    Buf.insGuard(LOp::GuardF,
                 Buf.ins2(LOp::EqQ, R, immQ((int64_t)MethodErrorSentinel)),
                 makeExit(ExitKind::Deopt, Pc, Sp));
  }
  void emitPreemptGuard(uint32_t Pc, int64_t Sp) {
    LIns *Flag = Buf.insLoad(
        LOp::LdI, immQ((int64_t)(intptr_t)&Ctx.PreemptFlag), 0);
    Buf.insGuard(LOp::GuardT, Buf.ins2(LOp::EqI, Flag, immI(0)),
                 makeExit(ExitKind::Preempt, Pc, Sp));
  }
  LIns *callHelper(const CallInfo *CI, std::initializer_list<LIns *> Args) {
    LIns *A[6];
    uint32_t N = 0;
    for (LIns *X : Args)
      A[N++] = X;
    return Buf.insCall(CI, A, N);
  }
  /// Label for a branch to \p Target: the in-body label, or a fresh label
  /// whose block (an exit) is emitted after the main lowering.
  LIns *labelForTarget(uint32_t Target, int64_t SpAtTarget) {
    if (inRange(Target))
      return Labels.at(Target);
    LIns *L = Buf.makeLabel();
    PendingExits.push_back({L, Target, SpAtTarget});
    return L;
  }

  VMContext &Ctx;
  Interpreter &Interp;
  FunctionScript *Script;
  LoopRecord *Loop;
  Fragment *F;
  uint32_t NG;      ///< Global-table size (TAR slots [0, NG)).
  uint32_t Base;    ///< Entry frame's local-0 stack index.
  uint32_t EntrySp; ///< Absolute stack top at the loop header.

  LirBuffer Buf;
  LIns *ParamTar = nullptr;
  uint32_t MaxTarSlots = 0;
  uint32_t OpsLowered = 0;

  std::unordered_map<uint32_t, int64_t> SpAt; ///< Reachable pc -> stack top.
  std::unordered_map<uint32_t, LIns *> Labels; ///< Jump-target pc -> label.
  struct PendingExit {
    LIns *Label;
    uint32_t Pc;
    int64_t Sp;
  };
  std::vector<PendingExit> PendingExits;
};

ExitDescriptor *MethodBuilder::makeExit(ExitKind Kind, uint32_t Pc,
                                        int64_t Sp) {
  ExitDescriptor *E = F->makeExit();
  E->Kind = Kind;
  E->Pc = Pc;
  E->Sp = (uint32_t)Sp;
  E->Frames = F->EntryFrames;
  E->Types.NumGlobals = NG;
  E->Types.Types.assign(NG + (size_t)Sp, TraceType::Boxed);
  return E;
}

bool MethodBuilder::spAfter(Op O, uint32_t Pc, int64_t Sp,
                            int64_t &Out) const {
  int64_t D = 0;
  switch (O) {
  case Op::Nop:
  case Op::Nop3:
  case Op::LoopHeader:
  case Op::SetLocal:
  case Op::SetGlobal:
  case Op::GetProp:
  case Op::Neg:
  case Op::BitNot:
  case Op::LogicalNot:
  case Op::Jump:
    D = 0;
    break;
  case Op::PushConst:
  case Op::PushUndefined:
  case Op::Dup:
  case Op::GetLocal:
  case Op::GetGlobal:
  case Op::NewObject:
    D = 1;
    break;
  case Op::Dup2:
    D = 2;
    break;
  case Op::Pop:
  case Op::PopResult:
  case Op::SetProp:
  case Op::InitProp:
  case Op::GetElem:
  case Op::Add:
  case Op::Sub:
  case Op::Mul:
  case Op::Div:
  case Op::Mod:
  case Op::BitAnd:
  case Op::BitOr:
  case Op::BitXor:
  case Op::Shl:
  case Op::Shr:
  case Op::Ushr:
  case Op::Lt:
  case Op::Le:
  case Op::Gt:
  case Op::Ge:
  case Op::Eq:
  case Op::Ne:
  case Op::StrictEq:
  case Op::StrictNe:
  case Op::JumpIfFalse:
  case Op::JumpIfTrue:
  case Op::Return:
    D = -1;
    break;
  case Op::SetElem:
    D = -2;
    break;
  case Op::Call:
    D = -(int64_t)Script->Code[Pc + 1];
    break;
  case Op::CallProp:
    D = -(int64_t)Script->Code[Pc + 3];
    break;
  case Op::NewArray:
    D = 1 - (int64_t)Script->u16At(Pc + 1);
    break;
  case Op::ReturnUndefined:
    D = 0;
    break;
  default:
    return false; // unknown op: refuse to method-compile
  }
  Out = Sp + D;
  // The operand stack never dips below the entry frame's locals inside a
  // loop body; anything else is malformed input.
  return Out >= (int64_t)Base;
}

bool MethodBuilder::solveStackDepths() {
  std::vector<uint32_t> Work;
  SpAt[Loop->HeaderPc] = EntrySp;
  Work.push_back(Loop->HeaderPc);
  Labels[Loop->HeaderPc] = nullptr; // back-edge target, always a label

  while (!Work.empty()) {
    uint32_t Pc = Work.back();
    Work.pop_back();
    int64_t Sp = SpAt.at(Pc);
    Op O = Script->opAt(Pc);
    uint32_t Len = 1 + opInfo(O).OperandBytes;
    if (Pc + Len > Loop->EndPc && O != Op::Jump && O != Op::Return &&
        O != Op::ReturnUndefined) {
      // An op straddling the loop end can only be a terminator.
      if (!(Pc + Len <= Script->Code.size()))
        return false;
    }

    int64_t SpOut;
    if (!spAfter(O, Pc, Sp, SpOut))
      return false;

    auto Flow = [&](uint32_t Succ, int64_t S) {
      if (!inRange(Succ))
        return true; // leaves the loop: handled as an exit at lowering
      auto It = SpAt.find(Succ);
      if (It == SpAt.end()) {
        SpAt[Succ] = S;
        Work.push_back(Succ);
        return true;
      }
      return It->second == S; // joins must agree on stack depth
    };

    switch (O) {
    case Op::Jump: {
      uint32_t T = Script->u32At(Pc + 1);
      if (inRange(T))
        Labels.emplace(T, nullptr);
      if (!Flow(T, SpOut))
        return false;
      break;
    }
    case Op::JumpIfFalse:
    case Op::JumpIfTrue: {
      uint32_t T = Script->u32At(Pc + 1);
      if (inRange(T))
        Labels.emplace(T, nullptr);
      if (!Flow(T, SpOut) || !Flow(Pc + Len, SpOut))
        return false;
      break;
    }
    case Op::Return:
    case Op::ReturnUndefined:
      break; // terminal (lowered as a deopt)
    default:
      if (!Flow(Pc + Len, SpOut))
        return false;
      break;
    }
  }
  return true;
}

void MethodBuilder::lowerArith(Op O, uint32_t Pc, int64_t Sp) {
  LIns *A = ldStack(Sp - 2), *B = ldStack(Sp - 1);
  LIns *Slow = Buf.makeLabel(), *Cont = Buf.makeLabel();
  Buf.insJmpIf(LOp::JmpIfF, bothInt(A, B), Slow);
  // Fast path: unbox, overflow-checked op, rebox. Overflow deopts: the
  // interpreter re-runs the op and boxes a double.
  LOp Ov = O == Op::Add   ? LOp::AddOvI
           : O == Op::Sub ? LOp::SubOvI
                          : LOp::MulOvI;
  LIns *R = Buf.insOvf(Ov, unboxInt(A), unboxInt(B),
                       makeExit(ExitKind::Deopt, Pc, Sp));
  stStack(Sp - 2, boxInt(R));
  Buf.insJmp(Cont);
  Buf.bindLabel(Slow);
  LIns *A2 = ldStack(Sp - 2), *B2 = ldStack(Sp - 1);
  LIns *R2 = callHelper(&helperCalls().MethodBinop,
                        {interpPtr(), immI((int32_t)Pc), immI((int32_t)O), A2,
                         B2});
  guardNotSentinel(R2, Pc, Sp);
  stStack(Sp - 2, R2);
  Buf.bindLabel(Cont);
}

void MethodBuilder::lowerCompare(Op O, uint32_t Pc, int64_t Sp) {
  LIns *A = ldStack(Sp - 2), *B = ldStack(Sp - 1);
  LIns *Slow = Buf.makeLabel(), *Cont = Buf.makeLabel();
  Buf.insJmpIf(LOp::JmpIfF, bothInt(A, B), Slow);
  LOp C = O == Op::Lt         ? LOp::LtI
          : O == Op::Le       ? LOp::LeI
          : O == Op::Gt       ? LOp::GtI
          : O == Op::Ge       ? LOp::GeI
          : O == Op::Ne       ? LOp::NeI
          : O == Op::StrictNe ? LOp::NeI
                              : LOp::EqI; // Eq / StrictEq
  stStack(Sp - 2, boxBool(Buf.ins2(C, unboxInt(A), unboxInt(B))));
  Buf.insJmp(Cont);
  Buf.bindLabel(Slow);
  LIns *A2 = ldStack(Sp - 2), *B2 = ldStack(Sp - 1);
  LIns *R2 = callHelper(&helperCalls().MethodBinop,
                        {interpPtr(), immI((int32_t)Pc), immI((int32_t)O), A2,
                         B2});
  guardNotSentinel(R2, Pc, Sp);
  stStack(Sp - 2, R2);
  Buf.bindLabel(Cont);
}

void MethodBuilder::lowerBitop(Op O, uint32_t Pc, int64_t Sp) {
  LIns *A = ldStack(Sp - 2), *B = ldStack(Sp - 1);
  LIns *Slow = Buf.makeLabel(), *Cont = Buf.makeLabel();
  Buf.insJmpIf(LOp::JmpIfF, bothInt(A, B), Slow);
  LIns *Ai = unboxInt(A), *Bi = unboxInt(B);
  LIns *R;
  switch (O) {
  case Op::BitAnd:
    R = Buf.ins2(LOp::AndI, Ai, Bi);
    break;
  case Op::BitOr:
    R = Buf.ins2(LOp::OrI, Ai, Bi);
    break;
  case Op::BitXor:
    R = Buf.ins2(LOp::XorI, Ai, Bi);
    break;
  case Op::Shl:
    R = Buf.ins2(LOp::ShlI, Ai, Buf.ins2(LOp::AndI, Bi, immI(31)));
    break;
  default: // Shr
    R = Buf.ins2(LOp::ShrI, Ai, Buf.ins2(LOp::AndI, Bi, immI(31)));
    break;
  }
  stStack(Sp - 2, boxInt(R));
  Buf.insJmp(Cont);
  Buf.bindLabel(Slow);
  LIns *A2 = ldStack(Sp - 2), *B2 = ldStack(Sp - 1);
  LIns *R2 = callHelper(&helperCalls().MethodBinop,
                        {interpPtr(), immI((int32_t)Pc), immI((int32_t)O), A2,
                         B2});
  guardNotSentinel(R2, Pc, Sp);
  stStack(Sp - 2, R2);
  Buf.bindLabel(Cont);
}

void MethodBuilder::lowerNeg(uint32_t Pc, int64_t Sp) {
  LIns *A = ldStack(Sp - 1);
  LIns *Slow = Buf.makeLabel(), *Cont = Buf.makeLabel();
  Buf.insJmpIf(LOp::JmpIfF,
               Buf.ins2(LOp::EqQ, Buf.ins2(LOp::AndQ, A, immQ(1)), immQ(1)),
               Slow);
  LIns *Ai = unboxInt(A);
  // -0 must box a double: send zero to the helper. SubOvI catches
  // INT32_MIN (the only overflowing negation) with a deopt.
  Buf.insJmpIf(LOp::JmpIfF, Buf.ins2(LOp::NeI, Ai, immI(0)), Slow);
  LIns *R = Buf.insOvf(LOp::SubOvI, immI(0), Buf.ins1(LOp::Q2I,
                                                      Buf.ins2(LOp::SarQ,
                                                               ldStack(Sp - 1),
                                                               immI(32))),
                       makeExit(ExitKind::Deopt, Pc, Sp));
  stStack(Sp - 1, boxInt(R));
  Buf.insJmp(Cont);
  Buf.bindLabel(Slow);
  LIns *R2 = callHelper(&helperCalls().MethodUnop,
                        {interpPtr(), immI((int32_t)Pc),
                         immI((int32_t)Op::Neg), ldStack(Sp - 1)});
  guardNotSentinel(R2, Pc, Sp);
  stStack(Sp - 1, R2);
  Buf.bindLabel(Cont);
}

void MethodBuilder::lowerBitNot(uint32_t Pc, int64_t Sp) {
  LIns *A = ldStack(Sp - 1);
  LIns *Slow = Buf.makeLabel(), *Cont = Buf.makeLabel();
  Buf.insJmpIf(LOp::JmpIfF,
               Buf.ins2(LOp::EqQ, Buf.ins2(LOp::AndQ, A, immQ(1)), immQ(1)),
               Slow);
  stStack(Sp - 1, boxInt(Buf.ins2(LOp::XorI, unboxInt(A), immI(-1))));
  Buf.insJmp(Cont);
  Buf.bindLabel(Slow);
  LIns *R2 = callHelper(&helperCalls().MethodUnop,
                        {interpPtr(), immI((int32_t)Pc),
                         immI((int32_t)Op::BitNot), ldStack(Sp - 1)});
  guardNotSentinel(R2, Pc, Sp);
  stStack(Sp - 1, R2);
  Buf.bindLabel(Cont);
}

void MethodBuilder::lowerLogicalNot(uint32_t Pc, int64_t Sp) {
  LIns *A = ldStack(Sp - 1);
  LIns *Slow = Buf.makeLabel(), *Cont = Buf.makeLabel();
  Buf.insJmpIf(LOp::JmpIfF, isBoolean(A), Slow);
  // Booleans are bits 6 / 14: toggle bit 3 to negate.
  stStack(Sp - 1,
          Buf.ins1(LOp::UI2Q,
                   Buf.ins2(LOp::XorI, Buf.ins1(LOp::Q2I, A), immI(8))));
  Buf.insJmp(Cont);
  Buf.bindLabel(Slow);
  LIns *R2 = callHelper(&helperCalls().MethodUnop,
                        {interpPtr(), immI((int32_t)Pc),
                         immI((int32_t)Op::LogicalNot), ldStack(Sp - 1)});
  guardNotSentinel(R2, Pc, Sp);
  stStack(Sp - 1, R2);
  Buf.bindLabel(Cont);
}

void MethodBuilder::lowerCondJump(Op O, uint32_t Pc, int64_t Sp) {
  uint32_t T = Script->u32At(Pc + 1);
  int64_t SpOut = Sp - 1;
  LIns *Target = labelForTarget(T, SpOut);
  LIns *V = ldStack(Sp - 1);
  LIns *Slow = Buf.makeLabel(), *Cont = Buf.makeLabel();
  Buf.insJmpIf(LOp::JmpIfF, isBoolean(V), Slow);
  LIns *Truthy = Buf.ins2(LOp::EqQ, V, immQ((int64_t)Value::makeBoolean(true)
                                                .bits()));
  Buf.insJmpIf(O == Op::JumpIfTrue ? LOp::JmpIfT : LOp::JmpIfF, Truthy,
               Target);
  Buf.insJmp(Cont);
  Buf.bindLabel(Slow);
  LIns *R = callHelper(&helperCalls().MethodTruthy, {ldStack(Sp - 1)});
  Buf.insJmpIf(O == Op::JumpIfTrue ? LOp::JmpIfT : LOp::JmpIfF, R, Target);
  Buf.bindLabel(Cont);
}

bool MethodBuilder::lowerOp(Op O, uint32_t Pc, int64_t Sp) {
  const HelperCalls &H = helperCalls();
  switch (O) {
  case Op::Nop:
    break;
  case Op::Nop3:
  case Op::LoopHeader:
    // Loop edges stay safe points in method code: the preempt guard
    // delivers GC requests, deadlines, and quota terminations (§6.4).
    emitPreemptGuard(Pc, Sp);
    break;
  case Op::PushConst:
    stStack(Sp, immQ((int64_t)Script->Consts[Script->u16At(Pc + 1)].bits()));
    break;
  case Op::PushUndefined:
    stStack(Sp, immQ((int64_t)Value::undefined().bits()));
    break;
  case Op::Pop:
    break;
  case Op::PopResult:
    Buf.insStore(LOp::StQ, ldStack(Sp - 1),
                 immQ((int64_t)(intptr_t)&Ctx.LastResult), 0);
    break;
  case Op::Dup:
    stStack(Sp, ldStack(Sp - 1));
    break;
  case Op::Dup2:
    stStack(Sp, ldStack(Sp - 2));
    stStack(Sp + 1, ldStack(Sp - 1));
    break;
  case Op::GetLocal:
    stStack(Sp, ldStack((int64_t)Base + Script->u16At(Pc + 1)));
    break;
  case Op::SetLocal:
    stStack((int64_t)Base + Script->u16At(Pc + 1), ldStack(Sp - 1));
    break;
  case Op::GetGlobal:
    stStack(Sp, ldGlobal(Script->u16At(Pc + 1)));
    break;
  case Op::SetGlobal:
    stGlobal(Script->u16At(Pc + 1), ldStack(Sp - 1));
    break;
  case Op::GetProp: {
    LIns *R = callHelper(&H.MethodGetProp,
                         {interpPtr(), immI((int32_t)Pc),
                          immI((int32_t)Script->u16At(Pc + 1)),
                          ldStack(Sp - 1)});
    guardNotSentinel(R, Pc, Sp);
    stStack(Sp - 1, R);
    break;
  }
  case Op::SetProp: {
    LIns *V = ldStack(Sp - 1);
    LIns *R = callHelper(&H.MethodSetProp,
                         {interpPtr(), immI((int32_t)Pc),
                          immI((int32_t)Script->u16At(Pc + 1)),
                          ldStack(Sp - 2), V});
    guardNotSentinel(R, Pc, Sp);
    stStack(Sp - 2, V);
    break;
  }
  case Op::InitProp: {
    LIns *R = callHelper(&H.MethodInitProp,
                         {interpPtr(), immI((int32_t)Pc),
                          immI((int32_t)Script->u16At(Pc + 1)),
                          ldStack(Sp - 2), ldStack(Sp - 1)});
    guardNotSentinel(R, Pc, Sp);
    break;
  }
  case Op::GetElem: {
    LIns *R = callHelper(&H.MethodGetElem,
                         {interpPtr(), immI((int32_t)Pc), ldStack(Sp - 2),
                          ldStack(Sp - 1)});
    guardNotSentinel(R, Pc, Sp);
    stStack(Sp - 2, R);
    break;
  }
  case Op::SetElem: {
    LIns *V = ldStack(Sp - 1);
    LIns *R = callHelper(&H.MethodSetElem,
                         {interpPtr(), immI((int32_t)Pc), ldStack(Sp - 3),
                          ldStack(Sp - 2), V});
    guardNotSentinel(R, Pc, Sp);
    stStack(Sp - 3, V);
    break;
  }
  case Op::Add:
  case Op::Sub:
  case Op::Mul:
    lowerArith(O, Pc, Sp);
    break;
  case Op::Div:
  case Op::Mod:
  case Op::Ushr: {
    LIns *R = callHelper(&H.MethodBinop,
                         {interpPtr(), immI((int32_t)Pc), immI((int32_t)O),
                          ldStack(Sp - 2), ldStack(Sp - 1)});
    guardNotSentinel(R, Pc, Sp);
    stStack(Sp - 2, R);
    break;
  }
  case Op::BitAnd:
  case Op::BitOr:
  case Op::BitXor:
  case Op::Shl:
  case Op::Shr:
    lowerBitop(O, Pc, Sp);
    break;
  case Op::Lt:
  case Op::Le:
  case Op::Gt:
  case Op::Ge:
  case Op::Eq:
  case Op::Ne:
  case Op::StrictEq:
  case Op::StrictNe:
    lowerCompare(O, Pc, Sp);
    break;
  case Op::Neg:
    lowerNeg(Pc, Sp);
    break;
  case Op::BitNot:
    lowerBitNot(Pc, Sp);
    break;
  case Op::LogicalNot:
    lowerLogicalNot(Pc, Sp);
    break;
  case Op::Jump: {
    uint32_t T = Script->u32At(Pc + 1);
    if (inRange(T))
      Buf.insJmp(Labels.at(T));
    else
      Buf.insExit(makeExit(ExitKind::LoopExit, T, Sp));
    break;
  }
  case Op::JumpIfFalse:
  case Op::JumpIfTrue:
    lowerCondJump(O, Pc, Sp);
    break;
  case Op::Call: {
    uint32_t ArgC = Script->Code[Pc + 1];
    LIns *R = callHelper(&H.MethodCall,
                         {interpPtr(), immI((int32_t)Pc), immI((int32_t)ArgC),
                          ParamTar, immI((int32_t)Sp)});
    guardNotSentinel(R, Pc, Sp);
    stStack(Sp - (int64_t)ArgC - 1, R);
    break;
  }
  case Op::CallProp: {
    uint32_t ArgC = Script->Code[Pc + 3];
    LIns *R = callHelper(&H.MethodCallProp,
                         {interpPtr(), immI((int32_t)Pc),
                          immI((int32_t)Script->u16At(Pc + 1)),
                          immI((int32_t)ArgC), ParamTar, immI((int32_t)Sp)});
    guardNotSentinel(R, Pc, Sp);
    stStack(Sp - (int64_t)ArgC - 1, R);
    break;
  }
  case Op::Return:
  case Op::ReturnUndefined:
    // Leaving the frame ends the loop: hand the whole return back to the
    // interpreter (it resumes at this pc and pops the frame itself).
    Buf.insExit(makeExit(ExitKind::Deopt, Pc, Sp));
    break;
  case Op::NewArray: {
    uint32_t N = Script->u16At(Pc + 1);
    noteSlot(NG + (uint32_t)Sp); // elements live at [Sp-N, Sp)
    LIns *Elems = Buf.ins2(
        LOp::AddQ, ParamTar,
        immQ((int64_t)tarOffsetOfSlot(NG + (uint32_t)(Sp - N))));
    LIns *R = callHelper(&H.MethodNewArray, {interpPtr(), immI((int32_t)Pc),
                                             immI((int32_t)N), Elems});
    guardNotSentinel(R, Pc, Sp);
    stStack(Sp - N, R);
    break;
  }
  case Op::NewObject: {
    LIns *R = callHelper(&H.MethodNewObject, {interpPtr(), immI((int32_t)Pc)});
    guardNotSentinel(R, Pc, Sp);
    stStack(Sp, R);
    break;
  }
  default:
    return false;
  }
  ++OpsLowered;
  return true;
}

bool MethodBuilder::build() {
  if (Loop->EndPc <= Loop->HeaderPc || Loop->EndPc > Script->Code.size())
    return false;
  if (Script->opAt(Loop->HeaderPc) != Op::LoopHeader &&
      Script->opAt(Loop->HeaderPc) != Op::Nop3)
    return false;

  // The entry shape: live frame chain and stack top at the header. Every
  // exit restores this chain (the body never pushes or pops frames --
  // calls run re-entrantly under the tj_MethodCall helpers).
  for (const Frame &Fr : Interp.frames())
    F->EntryFrames.push_back({Fr.Script, Fr.Base, Fr.ReturnPc});
  F->EntryFrameCount = (uint32_t)Interp.frames().size();
  F->EntryTypes.NumGlobals = NG;
  F->EntryTypes.Types.assign(NG + EntrySp, TraceType::Boxed);
  MaxTarSlots = NG + EntrySp;

  if (!solveStackDepths())
    return false;

  ParamTar = Buf.ins0(LOp::ParamTar);
  for (auto &KV : Labels)
    KV.second = Buf.makeLabel();

  // Linear lowering in pc order. Unreachable stretches (no solved sp) are
  // decoded but not lowered; labels only exist at reachable pcs.
  uint32_t Pc = Loop->HeaderPc;
  bool FellThrough = false; // reachable fall-through into EndPc
  while (Pc < Loop->EndPc) {
    Op O = Script->opAt(Pc);
    uint32_t Len = 1 + opInfo(O).OperandBytes;
    auto SpIt = SpAt.find(Pc);
    if (SpIt != SpAt.end()) {
      auto LIt = Labels.find(Pc);
      if (LIt != Labels.end())
        Buf.bindLabel(LIt->second);
      int64_t Sp = SpIt->second;
      if (!lowerOp(O, Pc, Sp))
        return false;
      if (O != Op::Jump && O != Op::Return && O != Op::ReturnUndefined) {
        int64_t SpOut;
        spAfter(O, Pc, Sp, SpOut);
        if (Pc + Len >= Loop->EndPc) {
          // Reachable fall-through out of the body: a normal loop exit.
          Buf.insExit(makeExit(ExitKind::LoopExit, Pc + Len, SpOut));
          FellThrough = true;
        }
      }
    }
    Pc += Len;
  }
  (void)FellThrough;

  // Exit blocks for conditional branches that leave the body.
  for (const PendingExit &P : PendingExits) {
    Buf.bindLabel(P.Label);
    Buf.insExit(makeExit(ExitKind::LoopExit, P.Pc, P.Sp));
  }

  if (Buf.size() == 0)
    return false;
  // The body must end in an unconditional transfer; the back-edge Jmp or
  // an exit block satisfies this for every well-formed loop.
  LIns *Last = Buf.instructions().back();
  if (Last->Op != LOp::Exit && Last->Op != LOp::Jmp)
    return false;

  F->Body = std::move(Buf.instructions());
  F->RequiredTarSlots = MaxTarSlots;
  F->BytecodesCovered = OpsLowered;
  F->LirRecorded = (uint32_t)F->Body.size();
  F->LirAfterFilters = (uint32_t)F->Body.size();
  F->PrologueEnd = 0;
  F->EntryExit = nullptr;
  return true;
}

} // namespace

bool buildMethodBody(VMContext &Ctx, Interpreter &Interp,
                     FunctionScript *Script, LoopRecord *Loop, Fragment *F) {
  if (!F->LirArena)
    F->LirArena = std::make_unique<Arena>();
  return MethodBuilder(Ctx, Interp, Script, Loop, F).build();
}

} // namespace tracejit
