//===- assembler_x64.cpp - Minimal x86-64 encoder -------------------------------===//

#include "jit/assembler_x64.h"

#include <cstring>

namespace tracejit {

void Assembler::emit32(uint32_t V) {
  for (int I = 0; I < 4; ++I)
    emit8((uint8_t)(V >> (8 * I)));
}

void Assembler::emit64(uint64_t V) {
  for (int I = 0; I < 8; ++I)
    emit8((uint8_t)(V >> (8 * I)));
}

void Assembler::rex(bool W, uint8_t Reg, uint8_t Rm, bool Force) {
  uint8_t B = 0x40;
  if (W)
    B |= 8;
  if (Reg & 8)
    B |= 4;
  if (Rm & 8)
    B |= 1;
  if (B != 0x40 || Force)
    emit8(B);
}

void Assembler::modRMReg(uint8_t Reg, uint8_t Rm) {
  emit8((uint8_t)(0xC0 | ((Reg & 7) << 3) | (Rm & 7)));
}

void Assembler::modRMMem(uint8_t Reg, uint8_t Base, int32_t Disp) {
  uint8_t BaseLow = Base & 7;
  bool NeedSib = BaseLow == 4; // rsp/r12
  bool Disp8 = Disp >= -128 && Disp <= 127;
  // rbp/r13 as base cannot use mod=00.
  uint8_t Mod;
  if (Disp == 0 && BaseLow != 5)
    Mod = 0;
  else
    Mod = Disp8 ? 1 : 2;
  emit8((uint8_t)((Mod << 6) | ((Reg & 7) << 3) | (NeedSib ? 4 : BaseLow)));
  if (NeedSib)
    emit8((uint8_t)(0x24)); // scale=1, index=none(100), base=100
  if (Mod == 1)
    emit8((uint8_t)Disp);
  else if (Mod == 2)
    emit32((uint32_t)Disp);
}

// --- Moves ---------------------------------------------------------------------

void Assembler::movRR64(Gpr Dst, Gpr Src) {
  rex(true, Src, Dst);
  emit8(0x89);
  modRMReg(Src, Dst);
}

void Assembler::movRR32(Gpr Dst, Gpr Src) {
  rex(false, Src, Dst);
  emit8(0x89);
  modRMReg(Src, Dst);
}

void Assembler::movRI64(Gpr Dst, uint64_t Imm) {
  rex(true, 0, Dst);
  emit8((uint8_t)(0xB8 | (Dst & 7)));
  emit64(Imm);
}

void Assembler::movRI32(Gpr Dst, int32_t Imm) {
  rex(false, 0, Dst);
  emit8((uint8_t)(0xB8 | (Dst & 7)));
  emit32((uint32_t)Imm);
}

void Assembler::movRM64(Gpr Dst, Gpr Base, int32_t Disp) {
  rex(true, Dst, Base);
  emit8(0x8B);
  modRMMem(Dst, Base, Disp);
}

void Assembler::movMR64(Gpr Base, int32_t Disp, Gpr Src) {
  rex(true, Src, Base);
  emit8(0x89);
  modRMMem(Src, Base, Disp);
}

void Assembler::movRM32(Gpr Dst, Gpr Base, int32_t Disp) {
  rex(false, Dst, Base);
  emit8(0x8B);
  modRMMem(Dst, Base, Disp);
}

void Assembler::movMR32(Gpr Base, int32_t Disp, Gpr Src) {
  rex(false, Src, Base);
  emit8(0x89);
  modRMMem(Src, Base, Disp);
}

void Assembler::movzxByteRM(Gpr Dst, Gpr Base, int32_t Disp) {
  rex(false, Dst, Base);
  emit8(0x0F);
  emit8(0xB6);
  modRMMem(Dst, Base, Disp);
}

// --- ALU ------------------------------------------------------------------------

void Assembler::aluRR32(uint8_t OpcodeRM, Gpr Dst, Gpr Src) {
  rex(false, Dst, Src);
  emit8(OpcodeRM);
  modRMReg(Dst, Src);
}

void Assembler::aluRR64(uint8_t OpcodeRM, Gpr Dst, Gpr Src) {
  rex(true, Dst, Src);
  emit8(OpcodeRM);
  modRMReg(Dst, Src);
}

void Assembler::imulRR32(Gpr Dst, Gpr Src) {
  rex(false, Dst, Src);
  emit8(0x0F);
  emit8(0xAF);
  modRMReg(Dst, Src);
}

void Assembler::testRR32(Gpr A, Gpr B) {
  rex(false, B, A);
  emit8(0x85);
  modRMReg(B, A);
}

void Assembler::addRI32(Gpr Dst, int32_t Imm) {
  rex(false, 0, Dst);
  emit8(0x81);
  modRMReg(0, Dst);
  emit32((uint32_t)Imm);
}

void Assembler::cmpRI32(Gpr Reg, int32_t Imm) {
  rex(false, 7, Reg);
  emit8(0x81);
  modRMReg(7, Reg);
  emit32((uint32_t)Imm);
}

void Assembler::shlCl32(Gpr Dst) {
  rex(false, 4, Dst);
  emit8(0xD3);
  modRMReg(4, Dst);
}
void Assembler::sarCl32(Gpr Dst) {
  rex(false, 7, Dst);
  emit8(0xD3);
  modRMReg(7, Dst);
}
void Assembler::shrCl32(Gpr Dst) {
  rex(false, 5, Dst);
  emit8(0xD3);
  modRMReg(5, Dst);
}
void Assembler::shlI32(Gpr Dst, uint8_t N) {
  rex(false, 4, Dst);
  emit8(0xC1);
  modRMReg(4, Dst);
  emit8(N);
}
void Assembler::sarI32(Gpr Dst, uint8_t N) {
  rex(false, 7, Dst);
  emit8(0xC1);
  modRMReg(7, Dst);
  emit8(N);
}
void Assembler::shrI32(Gpr Dst, uint8_t N) {
  rex(false, 5, Dst);
  emit8(0xC1);
  modRMReg(5, Dst);
  emit8(N);
}

void Assembler::shlI64(Gpr Dst, uint8_t N) {
  rex(true, 4, Dst);
  emit8(0xC1);
  modRMReg(4, Dst);
  emit8(N);
}
void Assembler::shrI64(Gpr Dst, uint8_t N) {
  rex(true, 5, Dst);
  emit8(0xC1);
  modRMReg(5, Dst);
  emit8(N);
}
void Assembler::sarI64(Gpr Dst, uint8_t N) {
  rex(true, 7, Dst);
  emit8(0xC1);
  modRMReg(7, Dst);
  emit8(N);
}

void Assembler::addRI64(Gpr Dst, int32_t Imm) {
  rex(true, 0, Dst);
  emit8(0x81);
  modRMReg(0, Dst);
  emit32((uint32_t)Imm);
}

void Assembler::movsxdRR(Gpr Dst, Gpr Src) {
  rex(true, Dst, Src);
  emit8(0x63);
  modRMReg(Dst, Src);
}

// --- SSE2 ------------------------------------------------------------------------

void Assembler::movsdRM(Xmm Dst, Gpr Base, int32_t Disp) {
  emit8(0xF2);
  rex(false, Dst, Base);
  emit8(0x0F);
  emit8(0x10);
  modRMMem(Dst, Base, Disp);
}

void Assembler::movsdMR(Gpr Base, int32_t Disp, Xmm Src) {
  emit8(0xF2);
  rex(false, Src, Base);
  emit8(0x0F);
  emit8(0x11);
  modRMMem(Src, Base, Disp);
}

void Assembler::movsdRR(Xmm Dst, Xmm Src) {
  emit8(0xF2);
  rex(false, Dst, Src);
  emit8(0x0F);
  emit8(0x10);
  modRMReg(Dst, Src);
}

void Assembler::sseRR(uint8_t Opcode, Xmm Dst, Xmm Src) {
  emit8(0xF2);
  rex(false, Dst, Src);
  emit8(0x0F);
  emit8(Opcode);
  modRMReg(Dst, Src);
}

void Assembler::ucomisd(Xmm A, Xmm B) {
  emit8(0x66);
  rex(false, A, B);
  emit8(0x0F);
  emit8(0x2E);
  modRMReg(A, B);
}

void Assembler::xorpd(Xmm D, Xmm S) {
  emit8(0x66);
  rex(false, D, S);
  emit8(0x0F);
  emit8(0x57);
  modRMReg(D, S);
}

void Assembler::cvtsi2sd(Xmm Dst, Gpr Src, bool Src64) {
  emit8(0xF2);
  rex(Src64, Dst, Src, /*Force=*/false);
  emit8(0x0F);
  emit8(0x2A);
  modRMReg(Dst, Src);
}

void Assembler::cvttsd2si(Gpr Dst, Xmm Src) {
  emit8(0xF2);
  rex(false, Dst, Src);
  emit8(0x0F);
  emit8(0x2C);
  modRMReg(Dst, Src);
}

void Assembler::movqXmmGpr(Xmm Dst, Gpr Src) {
  emit8(0x66);
  rex(true, Dst, Src, /*Force=*/true);
  emit8(0x0F);
  emit8(0x6E);
  modRMReg(Dst, Src);
}

void Assembler::movqGprXmm(Gpr Dst, Xmm Src) {
  emit8(0x66);
  rex(true, Src, Dst, /*Force=*/true);
  emit8(0x0F);
  emit8(0x7E);
  modRMReg(Src, Dst);
}

// --- Control flow -----------------------------------------------------------------

void Assembler::setcc(Cond C, Gpr Dst) {
  // REX (possibly empty-meaning) is required to address sil/dil/spl/bpl.
  rex(false, 0, Dst, /*Force=*/Dst >= 4);
  emit8(0x0F);
  emit8((uint8_t)(0x90 | C));
  modRMReg(0, Dst);
}

void Assembler::movzxByteRR(Gpr Dst, Gpr Src) {
  rex(false, Dst, Src, /*Force=*/Src >= 4);
  emit8(0x0F);
  emit8(0xB6);
  modRMReg(Dst, Src);
}

uint8_t *Assembler::jccFwd(Cond C) {
  emit8(0x0F);
  emit8((uint8_t)(0x80 | C));
  uint8_t *Fix = Cur;
  emit32(0);
  return Fix;
}

void Assembler::jcc(Cond C, uint8_t *Target) {
  emit8(0x0F);
  emit8((uint8_t)(0x80 | C));
  int64_t Rel = Target - (Cur + 4);
  emit32((uint32_t)(int32_t)Rel);
}

uint8_t *Assembler::jmpFwd() {
  emit8(0xE9);
  uint8_t *Fix = Cur;
  emit32(0);
  return Fix;
}

void Assembler::jmp(uint8_t *Target) {
  emit8(0xE9);
  int64_t Rel = Target - (Cur + 4);
  emit32((uint32_t)(int32_t)Rel);
}

void Assembler::jmpReg(Gpr R) {
  rex(false, 4, R);
  emit8(0xFF);
  modRMReg(4, R);
}

void Assembler::callReg(Gpr R) {
  rex(false, 2, R);
  emit8(0xFF);
  modRMReg(2, R);
}

void Assembler::push(Gpr R) {
  rex(false, 0, R);
  emit8((uint8_t)(0x50 | (R & 7)));
}

void Assembler::pop(Gpr R) {
  rex(false, 0, R);
  emit8((uint8_t)(0x58 | (R & 7)));
}

void Assembler::ret() { emit8(0xC3); }
void Assembler::int3() { emit8(0xCC); }

void Assembler::patchRel32(uint8_t *FixupPos, uint8_t *Target) {
  int64_t Rel = Target - (FixupPos + 4);
  int32_t R32 = (int32_t)Rel;
  std::memcpy(FixupPos, &R32, 4);
}

} // namespace tracejit
