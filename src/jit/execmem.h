//===- execmem.h - Executable code memory ------------------------------------===//
//
// One contiguous reservation for all generated code ("the trace cache" code
// side). A single pool keeps every fragment within rel32 range of every
// other, so trace stitching can patch a side-exit stub into a direct
// 5-byte jump to the branch fragment (§6.2).
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_JIT_EXECMEM_H
#define TRACEJIT_JIT_EXECMEM_H

#include <cstddef>
#include <cstdint>

namespace tracejit {

class ExecMemPool {
public:
  /// Reserve \p Bytes of RWX memory. Check valid() before use.
  explicit ExecMemPool(size_t Bytes = 32 * 1024 * 1024);
  ~ExecMemPool();
  ExecMemPool(const ExecMemPool &) = delete;
  ExecMemPool &operator=(const ExecMemPool &) = delete;

  bool valid() const { return Base != nullptr; }

  /// Bump-allocate \p Bytes (16-byte aligned); nullptr when exhausted.
  uint8_t *allocate(size_t Bytes);

  size_t used() const { return Used; }
  size_t capacity() const { return Cap; }

private:
  uint8_t *Base = nullptr;
  size_t Cap = 0;
  size_t Used = 0;
};

} // namespace tracejit

#endif // TRACEJIT_JIT_EXECMEM_H
