//===- execmem.h - Executable code memory ------------------------------------===//
//
// One contiguous reservation for all generated code ("the trace cache" code
// side). A single pool keeps every fragment within rel32 range of every
// other, so trace stitching can patch a side-exit stub into a direct
// 5-byte jump to the branch fragment (§6.2).
//
// The pool is a bounded, rewindable bump allocator with W^X hygiene:
//
//  * reserve()/commit()/rewind(): a compile reserves its worst-case
//    estimate, then either commits the bytes actually emitted or rewinds
//    the whole reservation, so failed or over-estimated compiles never
//    leak executable memory.
//  * setFloor()/reset(): the backend marks the end of its permanent
//    runtime stubs as the floor; a whole-cache flush resets the bump
//    pointer to the floor, reclaiming every fragment at once.
//  * makeWritable()/makeExecutable(): the mapping is RW while code is
//    emitted or patched and RX while traces run; never both (W^X). The
//    flip is lazy and idempotent -- one mprotect per phase change, a
//    single branch when the pool is already in the right state.
//
// Two mapping modes:
//
//  * Single-map (default): one private anonymous mapping whose protection
//    flips RW<->RX as above. Correct when one thread both emits and runs
//    code (the inline-compile pipeline).
//  * Dual-map (OffThreadCompile): the same physical pages mapped twice via
//    a memfd -- a permanently-RW write view the compiler thread emits and
//    patches through, and a permanently-RX exec view traces run from. W^X
//    holds per view, and no mprotect ever races a running trace.
//    execAddr() translates a write-view pointer to its exec-view twin
//    (identity in single-map mode). All pointers stored in Fragment /
//    ExitDescriptor / NativeBackend are write-view; translation happens
//    only at the two places code is entered (the trampoline) or embedded
//    as an absolute target in generated code (nested tree calls).
//
// Bump-allocator state (reserve/commit/rewind/reset/used) is guarded by a
// mutex so the compiler thread can allocate while the owning thread reads
// occupancy. The reserve->commit protocol still assumes a single compiling
// thread at a time, which both pipelines guarantee (one inline compiler or
// one background worker per backend; a whole-cache flush quiesces the
// worker before reset()).
//
// Every OS-facing failure path (map, reservation, protect) can be forced
// through the EngineOptions::FaultInjector hook for deterministic tests.
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_JIT_EXECMEM_H
#define TRACEJIT_JIT_EXECMEM_H

#include <cstddef>
#include <cstdint>
#include <mutex>

#include "api/options.h"

namespace tracejit {

class ExecMemPool {
public:
  /// Map \p Bytes (rounded up to a page) of RW memory. Check valid()
  /// before use. \p Faults, when non-null, points at the engine's fault
  /// injector (borrowed; must outlive the pool). \p DualMap selects the
  /// write-view/exec-view double mapping (see file comment); when the OS
  /// cannot provide it the pool is left invalid and the engine falls back
  /// to the LIR executor, loudly.
  explicit ExecMemPool(size_t Bytes = 32 * 1024 * 1024,
                       const FaultHook *Faults = nullptr,
                       bool DualMap = false);
  ~ExecMemPool();
  ExecMemPool(const ExecMemPool &) = delete;
  ExecMemPool &operator=(const ExecMemPool &) = delete;

  bool valid() const { return Base != nullptr; }

  /// Reserve \p Bytes (16-byte aligned); nullptr when exhausted or when a
  /// fault is injected at ExecAllocFail. At most one reservation is
  /// outstanding at a time; it must be resolved by commit() or rewind().
  uint8_t *reserve(size_t Bytes);

  /// Keep only \p Actual bytes of the outstanding reservation (the bytes
  /// the assembler really emitted); the rest returns to the pool.
  void commit(size_t Actual);

  /// Return the entire outstanding reservation to the pool (failed
  /// compile).
  void rewind();

  /// Convenience for tests and one-shot stubs: reserve + commit(Bytes).
  uint8_t *allocate(size_t Bytes) {
    uint8_t *P = reserve(Bytes);
    if (P)
      commit(Bytes);
    return P;
  }

  /// Mark everything allocated so far (the backend's permanent runtime
  /// stubs) as the floor reset() rewinds to.
  void setFloor() { Floor = Used; }

  /// Whole-cache flush: rewind the bump pointer to the floor and make the
  /// pool writable again. Returns the number of bytes reclaimed. With a
  /// background compiler, the owner must quiesce it first (no reservation
  /// may be outstanding).
  size_t reset();

  /// Flip the mapping to RX (before running traces). Idempotent; returns
  /// false when mprotect fails or a ProtectFail fault is injected, in
  /// which case the mapping stays RW and nothing in it may be executed.
  /// Dual-map mode: the exec view is always RX -- trivially true, and no
  /// fault is injectable (there is no syscall to fail).
  bool makeExecutable();

  /// Flip the mapping to RW (before emitting or patching code).
  /// Idempotent; returns false on mprotect failure / injected fault.
  /// Dual-map mode: the write view is always RW -- trivially true.
  bool makeWritable();

  bool executable() const { return Exec; }
  bool dualMapped() const { return ExecView != nullptr; }

  /// Translate a write-view pointer into the executable view (identity in
  /// single-map mode). Null passes through.
  uint8_t *execAddr(uint8_t *W) const {
    if (!W || !ExecView)
      return W;
    return ExecView + (W - Base);
  }

  size_t used() const;
  size_t capacity() const { return Cap; }
  size_t floorBytes() const { return Floor; }

private:
  bool inject(FaultSite S) const {
    return Faults && *Faults && (*Faults)(S);
  }

  uint8_t *Base = nullptr;     ///< Write view (the only view, single-map).
  uint8_t *ExecView = nullptr; ///< RX twin of Base (dual-map mode only).
  size_t Cap = 0;
  size_t Used = 0;
  size_t Floor = 0;
  size_t ResvStart = 0;
  bool HasReservation = false;
  bool Exec = false; ///< Single-map protection: true = RX, false = RW.
  const FaultHook *Faults = nullptr;
  /// Guards Used/ResvStart/HasReservation: the background compiler
  /// allocates while the engine thread reads used().
  mutable std::mutex Mu;
};

} // namespace tracejit

#endif // TRACEJIT_JIT_EXECMEM_H
