//===- execmem.h - Executable code memory ------------------------------------===//
//
// One contiguous reservation for all generated code ("the trace cache" code
// side). A single pool keeps every fragment within rel32 range of every
// other, so trace stitching can patch a side-exit stub into a direct
// 5-byte jump to the branch fragment (§6.2).
//
// The pool is a bounded, rewindable bump allocator with W^X hygiene:
//
//  * reserve()/commit()/rewind(): a compile reserves its worst-case
//    estimate, then either commits the bytes actually emitted or rewinds
//    the whole reservation, so failed or over-estimated compiles never
//    leak executable memory.
//  * setFloor()/reset(): the backend marks the end of its permanent
//    runtime stubs as the floor; a whole-cache flush resets the bump
//    pointer to the floor, reclaiming every fragment at once.
//  * makeWritable()/makeExecutable(): the mapping is RW while code is
//    emitted or patched and RX while traces run; never both (W^X). The
//    flip is lazy and idempotent -- one mprotect per phase change, a
//    single branch when the pool is already in the right state.
//
// Every OS-facing failure path (map, reservation, protect) can be forced
// through the EngineOptions::FaultInjector hook for deterministic tests.
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_JIT_EXECMEM_H
#define TRACEJIT_JIT_EXECMEM_H

#include <cstddef>
#include <cstdint>

#include "api/options.h"

namespace tracejit {

class ExecMemPool {
public:
  /// Map \p Bytes (rounded up to a page) of RW memory. Check valid()
  /// before use. \p Faults, when non-null, points at the engine's fault
  /// injector (borrowed; must outlive the pool).
  explicit ExecMemPool(size_t Bytes = 32 * 1024 * 1024,
                       const FaultHook *Faults = nullptr);
  ~ExecMemPool();
  ExecMemPool(const ExecMemPool &) = delete;
  ExecMemPool &operator=(const ExecMemPool &) = delete;

  bool valid() const { return Base != nullptr; }

  /// Reserve \p Bytes (16-byte aligned); nullptr when exhausted or when a
  /// fault is injected at ExecAllocFail. At most one reservation is
  /// outstanding at a time; it must be resolved by commit() or rewind().
  uint8_t *reserve(size_t Bytes);

  /// Keep only \p Actual bytes of the outstanding reservation (the bytes
  /// the assembler really emitted); the rest returns to the pool.
  void commit(size_t Actual);

  /// Return the entire outstanding reservation to the pool (failed
  /// compile).
  void rewind();

  /// Convenience for tests and one-shot stubs: reserve + commit(Bytes).
  uint8_t *allocate(size_t Bytes) {
    uint8_t *P = reserve(Bytes);
    if (P)
      commit(Bytes);
    return P;
  }

  /// Mark everything allocated so far (the backend's permanent runtime
  /// stubs) as the floor reset() rewinds to.
  void setFloor() { Floor = Used; }

  /// Whole-cache flush: rewind the bump pointer to the floor and make the
  /// pool writable again. Returns the number of bytes reclaimed.
  size_t reset();

  /// Flip the mapping to RX (before running traces). Idempotent; returns
  /// false when mprotect fails or a ProtectFail fault is injected, in
  /// which case the mapping stays RW and nothing in it may be executed.
  bool makeExecutable();

  /// Flip the mapping to RW (before emitting or patching code).
  /// Idempotent; returns false on mprotect failure / injected fault.
  bool makeWritable();

  bool executable() const { return Exec; }

  size_t used() const { return Used; }
  size_t capacity() const { return Cap; }
  size_t floorBytes() const { return Floor; }

private:
  bool inject(FaultSite S) const {
    return Faults && *Faults && (*Faults)(S);
  }

  uint8_t *Base = nullptr;
  size_t Cap = 0;
  size_t Used = 0;
  size_t Floor = 0;
  size_t ResvStart = 0;
  bool HasReservation = false;
  bool Exec = false; ///< Current protection: true = RX, false = RW.
  const FaultHook *Faults = nullptr;
};

} // namespace tracejit

#endif // TRACEJIT_JIT_EXECMEM_H
