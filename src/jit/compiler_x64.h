//===- compiler_x64.h - LIR -> x86-64 (the nanojit analog) --------------------===//
//
// Compiles LIR fragments to native code:
//
//  * One shared entry trampoline saves callee-saved registers, pins the TAR
//    pointer in RBX, reserves a shared spill area, and tail-jumps into the
//    fragment; one shared exit epilogue unwinds and returns the
//    ExitDescriptor* (paper §6.1: traces "may be called as functions using
//    standard native calling conventions").
//
//  * Register allocation is a greedy single pass with the paper's spill
//    heuristic (§5.2): when no register is free, evict the register-carried
//    value whose next reference is furthest away, which "frees up a
//    register for as long as possible given a single spill".
//
//  * Each guard compiles to a test + jcc to a per-exit stub
//    (mov rax, exit; jmp shared_epilogue). Trace stitching overwrites the
//    stub with a direct jump to the branch fragment (§6.2); because all
//    code lives in one pool, rel32 always reaches.
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_JIT_COMPILER_X64_H
#define TRACEJIT_JIT_COMPILER_X64_H

#include <cstdint>
#include <string>

#include "jit/execmem.h"
#include "jit/fragment.h"

namespace tracejit {

struct VMContext;

/// Outcome of NativeBackend::compile. Everything except Ok leaves the
/// fragment uncompiled and the code cache exactly as it was (the
/// reservation is rewound); the monitor maps each failure to an
/// AbortReason and decides whether to flush the cache.
enum class CompileResult : uint8_t {
  Ok,
  BackendUnavailable, ///< No executable memory (valid() is false).
  PoolExhausted,      ///< The code cache could not satisfy the reservation.
  AssemblerOverflow,  ///< Emitted code overflowed the size estimate.
  Unsupported,        ///< LIR the backend cannot compile (opcode/spills).
  Fault,              ///< Injected CompileFail or a W^X protect failure.
};

class NativeBackend {
public:
  /// \p CacheBytes bounds all generated code; \p Faults (borrowed,
  /// nullable) is the engine's deterministic fault injector. \p DualMap
  /// selects the write-view/exec-view code pool (execmem.h) so a
  /// background compiler thread can emit while traces run; required for
  /// OffThreadCompile, unnecessary (and unused) otherwise.
  explicit NativeBackend(size_t CacheBytes = 32 * 1024 * 1024,
                         const FaultHook *Faults = nullptr,
                         bool DualMap = false);

  /// False when executable memory is unavailable (hardened kernels or an
  /// injected ExecMapFail); the engine then falls back to the
  /// LIR-executor backend.
  bool valid() const { return Ready; }

  /// Compile \p F->Body into native code; fills F->NativeEntry and each
  /// exit's PatchAddr. On anything but Ok the fragment is left uncompiled
  /// and the pool reservation is returned.
  CompileResult compile(Fragment *F, VMContext *Ctx);

  /// Flip the code cache to RX so traces can run. Must be checked before
  /// every enter(); returns false when the W^X flip fails (the caller
  /// falls back to the LIR executor for this run).
  bool ensureExecutable() { return Pool.makeExecutable(); }

  /// Run a compiled fragment on \p Tar; returns the taken exit. The pool
  /// must be executable (ensureExecutable()). NativeEntry is a write-view
  /// address; this is one of the two places it is translated to the
  /// executable view (the other is the nested-tree-call imm64 embed).
  ExitDescriptor *enter(void *Tar, Fragment *F) {
    return Trampoline(Tar, Pool.execAddr(F->NativeEntry));
  }

  /// Whole-cache flush: discard every fragment's code, keeping only the
  /// permanent runtime stubs. Returns the bytes reclaimed. All
  /// Fragment::NativeEntry pointers into the pool are invalid afterwards;
  /// the monitor retires the fragments in the same motion.
  size_t flushCode() { return Pool.reset(); }

  /// Stitch: retarget \p E's exit stub to jump directly into \p Target
  /// (which must be compiled). Also records E->Target.
  void patchExitTo(ExitDescriptor *E, Fragment *Target);

  ExecMemPool &pool() { return Pool; }
  const ExecMemPool &pool() const { return Pool; }

  /// Address generated code uses to reenter the trampoline for nested tree
  /// calls.
  void *trampolineAddr() const { return (void *)Trampoline; }

  /// Shared exit epilogue all exit stubs jump to.
  uint8_t *sharedEpilogue() const { return SharedEpilogue; }

private:
  using EnterFn = ExitDescriptor *(*)(void *Tar, const uint8_t *Code);

  void emitRuntimeStubs();

  bool inject(FaultSite S) const {
    return Faults && *Faults && (*Faults)(S);
  }

  ExecMemPool Pool;
  const FaultHook *Faults = nullptr;
  EnterFn Trampoline = nullptr;
  uint8_t *SharedEpilogue = nullptr;
  bool Ready = false;

  friend class FragmentCompiler;
};

/// Size of the shared spill area. 4104 (not 4096) keeps RSP 16-byte
/// aligned at in-fragment call sites given the trampoline's six pushes.
constexpr int32_t SpillAreaBytes = 4104;
constexpr int32_t MaxSpillSlots = SpillAreaBytes / 8 - 1;

} // namespace tracejit

#endif // TRACEJIT_JIT_COMPILER_X64_H
