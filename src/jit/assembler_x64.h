//===- assembler_x64.h - Minimal x86-64 encoder --------------------------------===//
//
// A small hand-written x86-64 instruction encoder covering exactly what the
// trace compiler emits. Addressing is register-direct or [base + disp32];
// the compiler lowers indexed addressing to explicit address arithmetic.
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_JIT_ASSEMBLER_X64_H
#define TRACEJIT_JIT_ASSEMBLER_X64_H

#include <cstddef>
#include <cstdint>

namespace tracejit {

enum Gpr : uint8_t {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RSP = 4,
  RBP = 5,
  RSI = 6,
  RDI = 7,
  R8 = 8,
  R9 = 9,
  R10 = 10,
  R11 = 11,
  R12 = 12,
  R13 = 13,
  R14 = 14,
  R15 = 15,
};

enum Xmm : uint8_t {
  XMM0 = 0,
  XMM1,
  XMM2,
  XMM3,
  XMM4,
  XMM5,
  XMM6,
  XMM7,
  XMM8,
  XMM9,
  XMM10,
  XMM11,
  XMM12,
  XMM13,
  XMM14,
  XMM15,
};

/// x86 condition codes (for jcc/setcc).
enum Cond : uint8_t {
  CondO = 0x0,  // overflow
  CondNO = 0x1,
  CondB = 0x2,  // unsigned <
  CondAE = 0x3, // unsigned >=
  CondE = 0x4,
  CondNE = 0x5,
  CondBE = 0x6, // unsigned <=
  CondA = 0x7,  // unsigned >
  CondS = 0x8,
  CondNS = 0x9,
  CondP = 0xA,  // parity (unordered)
  CondNP = 0xB,
  CondL = 0xC,
  CondGE = 0xD,
  CondLE = 0xE,
  CondG = 0xF,
};

/// Emits into caller-provided memory. The caller sizes the region; emit
/// never writes past Limit (overflow sets a flag checked at the end).
class Assembler {
public:
  Assembler(uint8_t *Buf, size_t Cap) : Begin(Buf), Cur(Buf),
                                        Limit(Buf + Cap) {}

  uint8_t *pc() const { return Cur; }
  uint8_t *begin() const { return Begin; }
  size_t size() const { return (size_t)(Cur - Begin); }
  bool overflowed() const { return Overflow; }

  // --- Moves -----------------------------------------------------------------
  void movRR64(Gpr Dst, Gpr Src);
  void movRR32(Gpr Dst, Gpr Src); ///< Zero-extends to 64 bits.
  void movRI64(Gpr Dst, uint64_t Imm);
  void movRI32(Gpr Dst, int32_t Imm);
  void movRM64(Gpr Dst, Gpr Base, int32_t Disp); ///< dst = [base+disp]
  void movMR64(Gpr Base, int32_t Disp, Gpr Src); ///< [base+disp] = src
  void movRM32(Gpr Dst, Gpr Base, int32_t Disp);
  void movMR32(Gpr Base, int32_t Disp, Gpr Src);
  void movzxByteRM(Gpr Dst, Gpr Base, int32_t Disp);

  // --- 32-bit ALU ---------------------------------------------------------------
  void aluRR32(uint8_t OpcodeRM, Gpr Dst, Gpr Src); ///< e.g. 0x03 = add r,rm
  void addRR32(Gpr D, Gpr S) { aluRR32(0x03, D, S); }
  void subRR32(Gpr D, Gpr S) { aluRR32(0x2B, D, S); }
  void andRR32(Gpr D, Gpr S) { aluRR32(0x23, D, S); }
  void orRR32(Gpr D, Gpr S) { aluRR32(0x0B, D, S); }
  void xorRR32(Gpr D, Gpr S) { aluRR32(0x33, D, S); }
  void cmpRR32(Gpr A, Gpr B) { aluRR32(0x3B, A, B); }
  void imulRR32(Gpr Dst, Gpr Src);
  void testRR32(Gpr A, Gpr B);
  void addRI32(Gpr Dst, int32_t Imm);
  void cmpRI32(Gpr Reg, int32_t Imm);
  void shlCl32(Gpr Dst);
  void sarCl32(Gpr Dst);
  void shrCl32(Gpr Dst);
  void shlI32(Gpr Dst, uint8_t N);
  void sarI32(Gpr Dst, uint8_t N);
  void shrI32(Gpr Dst, uint8_t N);

  // --- 64-bit ALU ---------------------------------------------------------------
  void aluRR64(uint8_t OpcodeRM, Gpr Dst, Gpr Src);
  void addRR64(Gpr D, Gpr S) { aluRR64(0x03, D, S); }
  void andRR64(Gpr D, Gpr S) { aluRR64(0x23, D, S); }
  void orRR64(Gpr D, Gpr S) { aluRR64(0x0B, D, S); }
  void cmpRR64(Gpr A, Gpr B) { aluRR64(0x3B, A, B); }
  void shlI64(Gpr Dst, uint8_t N);
  void shrI64(Gpr Dst, uint8_t N);
  void sarI64(Gpr Dst, uint8_t N);
  void addRI64(Gpr Dst, int32_t Imm);
  void movsxdRR(Gpr Dst, Gpr Src); ///< sign-extend 32 -> 64

  // --- SSE2 ------------------------------------------------------------------------
  void movsdRM(Xmm Dst, Gpr Base, int32_t Disp);
  void movsdMR(Gpr Base, int32_t Disp, Xmm Src);
  void movsdRR(Xmm Dst, Xmm Src);
  void sseRR(uint8_t Opcode, Xmm Dst, Xmm Src); ///< F2 0F <op> family
  void addsd(Xmm D, Xmm S) { sseRR(0x58, D, S); }
  void subsd(Xmm D, Xmm S) { sseRR(0x5C, D, S); }
  void mulsd(Xmm D, Xmm S) { sseRR(0x59, D, S); }
  void divsd(Xmm D, Xmm S) { sseRR(0x5E, D, S); }
  void ucomisd(Xmm A, Xmm B);
  void xorpd(Xmm D, Xmm S);
  void cvtsi2sd(Xmm Dst, Gpr Src, bool Src64 = false);
  void cvttsd2si(Gpr Dst, Xmm Src);
  void movqXmmGpr(Xmm Dst, Gpr Src);
  void movqGprXmm(Gpr Dst, Xmm Src);

  // --- Control flow -------------------------------------------------------------------
  void setcc(Cond C, Gpr Dst); ///< Sets low byte; caller zero-extends.
  void movzxByteRR(Gpr Dst, Gpr Src);
  /// jcc rel32 with a target known later; returns the fixup position.
  uint8_t *jccFwd(Cond C);
  void jcc(Cond C, uint8_t *Target);
  uint8_t *jmpFwd();
  void jmp(uint8_t *Target);
  void jmpReg(Gpr R);
  void callReg(Gpr R);
  void push(Gpr R);
  void pop(Gpr R);
  void ret();
  void int3();

  /// Patch a previously emitted rel32 at \p FixupPos to jump to \p Target.
  static void patchRel32(uint8_t *FixupPos, uint8_t *Target);

private:
  void emit8(uint8_t B) {
    if (Cur < Limit)
      *Cur++ = B;
    else
      Overflow = true;
  }
  void emit32(uint32_t V);
  void emit64(uint64_t V);
  void rex(bool W, uint8_t Reg, uint8_t Rm, bool Force = false);
  void modRMReg(uint8_t Reg, uint8_t Rm);
  void modRMMem(uint8_t Reg, uint8_t Base, int32_t Disp);

  uint8_t *Begin;
  uint8_t *Cur;
  uint8_t *Limit;
  bool Overflow = false;
};

} // namespace tracejit

#endif // TRACEJIT_JIT_ASSEMBLER_X64_H
