//===- fragment.h - Compiled trace fragments and side exits ----------------===//
//
// A Fragment is one compiled trace: the trunk of a tree, a branch trace, or
// a type-unstable peer. Fragments are entered with a trace activation
// record (TAR) and leave through an ExitDescriptor that tells the monitor
// how to rebuild interpreter state (paper §3.1 "Guards and side exits",
// §6.1 "Calling compiled traces").
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_JIT_FRAGMENT_H
#define TRACEJIT_JIT_FRAGMENT_H

#include <cstdint>
#include <memory>
#include <vector>

#include "support/arena.h"
#include "trace/typemap.h"

namespace tracejit {

struct FunctionScript;
struct LIns;
class Fragment;

/// Why a guard exits (drives the monitor's post-exit policy).
enum class ExitKind : uint8_t {
  Branch,   ///< Control flow diverged from the recording (stitchable).
  Type,     ///< A value had a different type than recorded (stitchable).
  Overflow, ///< Integer speculation failed (stitchable).
  LoopExit, ///< The loop condition ended the loop (normal completion).
  Unstable, ///< Type-unstable loop tail; linkable to a peer trace.
  Nested,   ///< An inner tree returned through an unexpected exit.
  Preempt,  ///< The preempt/GC flag was set (§6.4).
  Deopt,    ///< Give up on this iteration (e.g. would-reenter natives).
};

const char *exitKindName(ExitKind K);

/// One entry of the interpreter frame chain captured at an exit; enough to
/// re-synthesize interpreter call frames ("it pops or synthesizes
/// interpreter JavaScript call stack frames as needed", §6.1).
struct FrameEntry {
  FunctionScript *Script;
  uint32_t Base;     ///< Value-stack index of local 0.
  uint32_t ReturnPc; ///< Caller resume pc (0 for the bottom frame).
};

/// Everything the monitor needs to resume the interpreter at a side exit.
struct ExitDescriptor {
  uint32_t Id = 0;
  ExitKind Kind = ExitKind::Branch;
  uint32_t Pc = 0; ///< Resume pc within the top frame.
  uint32_t Sp = 0; ///< Interpreter value-stack top at the exit.
  std::vector<FrameEntry> Frames; ///< Bottom-to-top frame chain.
  TypeMap Types; ///< Types of slots [0, NumGlobals + Sp): how to rebox.

  // --- Runtime state ---------------------------------------------------------
  Fragment *Parent = nullptr;  ///< Fragment this exit belongs to.
  uint32_t Hits = 0;           ///< Executions of this exit (hotness).
  uint32_t FailedRecordings = 0;
  bool RecordingBlocked = false; ///< Stop trying to extend here.
  Fragment *Target = nullptr;  ///< Stitched branch fragment, if any.
  uint8_t *PatchAddr = nullptr; ///< Native stub address for stitching.
  /// A branch recording anchored at this exit is queued for off-thread
  /// compilation; blocks duplicate recordings until the job publishes.
  bool CompilePending = false;
};

/// What kind of trace a fragment holds.
enum class FragmentKind : uint8_t {
  Root,   ///< Tree trunk, anchored at a loop header.
  Branch, ///< Attached to a side exit of the same tree.
  Method, ///< Whole-loop-body method-tier code: unspecialized (all-Boxed
          ///< entry map), inline type dispatch instead of guards, real
          ///< control flow (Label/Jmp*). Never stitched or peer-linked.
};

/// A compiled trace.
class Fragment {
public:
  uint32_t Id = 0;
  /// Code-cache generation this fragment was recorded in. A whole-cache
  /// flush retires every fragment and bumps the monitor's generation;
  /// fragments never outlive their generation.
  uint32_t Generation = 0;
  FragmentKind Kind = FragmentKind::Root;
  FunctionScript *AnchorScript = nullptr;
  uint32_t AnchorPc = 0; ///< Loop header pc (roots) / exit pc (branches).
  TypeMap EntryTypes;
  /// The static shape of the frame chain at entry (scripts and bases;
  /// return pcs are dynamic -- see VMContext::FrameReturnPcs). Entry
  /// matching compares this along with the type map: two call chains with
  /// identical slot types but different scripts must not share a trace.
  std::vector<FrameEntry> EntryFrames;

  /// Root fragment of the tree this fragment belongs to.
  Fragment *Root = nullptr;

  /// The loop this tree is anchored at (static extent; root fragments).
  struct LoopRecord *Loop = nullptr;

  /// Interpreter frame depth at trace entry (branch traces are only grown
  /// from exits at the same depth).
  uint32_t EntryFrameCount = 0;

  /// Exits owned by this fragment (stable addresses).
  std::vector<std::unique_ptr<ExitDescriptor>> Exits;

  /// Arena owning this fragment's LIR (instructions, operand lists, type
  /// maps). Per-fragment rather than monitor-wide so a compile job is
  /// self-contained: the LIR travels with the fragment to the compiler
  /// thread and dies with the fragment, not with a global reset.
  std::unique_ptr<Arena> LirArena;

  /// LIR body (arena-owned instructions; kept for the executor backend and
  /// for diagnostics).
  std::vector<LIns *> Body;

  // --- Loop-optimizer prologue region (lir/opt.h, Hoist pass) ---------------
  /// Body[0, PrologueEnd) is the trace prologue: loop-invariant code and
  /// hoisted guards executed once per tree entry. The Loop back edge
  /// re-enters at Body[PrologueEnd], not 0. Zero = no prologue (the whole
  /// body is the loop, today's default shape).
  uint32_t PrologueEnd = 0;
  /// Exit every hoisted guard fails through: a Deopt snapshot of the exact
  /// entry state (taken before any LIR ran), so a prologue guard failure
  /// means "pretend we never entered". Null until the recorder creates it
  /// (root fragments recorded with the Hoist pass enabled).
  ExitDescriptor *EntryExit = nullptr;
  /// Times EntryExit fired (hoisted-guard failure at entry).
  uint32_t EntryDeopts = 0;
  /// Monitor-side thrash control: skip entering this fragment until the
  /// loop's hit counter passes this (a failed entry resumes at the header,
  /// which would otherwise immediately re-enter the same fragment).
  /// UINT32_MAX = retired from entry for good (EntryDeoptLimit reached).
  uint32_t EnterBlockedUntil = 0;

  /// Values embedded as constants in the code; the trace cache roots them
  /// so the GC cannot collect objects compiled traces point at.
  std::vector<Value> EmbeddedRoots;

  /// Native entry point (native backend) or nullptr (executor backend).
  /// Write-view address; translate through ExecMemPool::execAddr() to run.
  uint8_t *NativeEntry = nullptr;
  uint32_t NativeSize = 0;

  /// Owned by a compile job in flight on the compiler thread. The engine
  /// thread must not read NativeEntry/NativeSize/PatchAddrs or profile
  /// this fragment until publication clears the flag.
  bool CompilePending = false;

  /// TAR slots this fragment may touch (monitor sizes the TAR buffer).
  uint32_t RequiredTarSlots = 0;

  /// Bytecodes covered by one pass through this fragment (Figure 11).
  uint32_t BytecodesCovered = 0;

  /// Executor-backend link targets: exits linked to other fragments when
  /// stitching without native patching.
  // (Exit->Target serves both backends; PatchAddr is native-only.)

  /// Iterations executed (entries via trampoline or internal loop edges).
  /// Counted by LIR instrumentation, so only in CollectStats builds.
  uint64_t Iterations = 0;

  // --- Telemetry (FragmentProfile sources; see support/events.h) -----------
  /// Monitor-mediated entries (trampoline calls); always counted.
  uint64_t Enters = 0;
  /// LIR instruction counts as recorded and after the backward filters.
  uint32_t LirRecorded = 0;
  uint32_t LirAfterFilters = 0;

  ExitDescriptor *makeExit() {
    Exits.push_back(std::make_unique<ExitDescriptor>());
    ExitDescriptor *E = Exits.back().get();
    E->Id = (uint32_t)Exits.size() - 1;
    E->Parent = this;
    return E;
  }
};

} // namespace tracejit

#endif // TRACEJIT_JIT_FRAGMENT_H
