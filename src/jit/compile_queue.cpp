//===- compile_queue.cpp - Background trace compilation -----------------------===//

#include "jit/compile_queue.h"

#include <algorithm>
#include <cassert>

namespace tracejit {

CompileService::CompileService() : Worker([this] { workerMain(); }) {}

CompileService::~CompileService() {
  {
    std::lock_guard<std::mutex> L(Mu);
    ShuttingDown = true;
    // Jobs still queued belong to clients that skipped the destroy-client-
    // first protocol (never the monitor's; its dtor quiesces). Drop them.
    for (Entry &E : Queue)
      if (E.Client)
        --E.Client->Pending;
    Queue.clear();
  }
  WorkCv.notify_all();
  Worker.join();
}

std::unique_ptr<CompileClient> CompileService::createClient(uint32_t Depth) {
  if (Depth == 0)
    Depth = 1;
  // Not make_unique: the constructor is private to keep registration here.
  return std::unique_ptr<CompileClient>(new CompileClient(*this, Depth));
}

void CompileService::setPausedForTest(bool P) {
  {
    std::lock_guard<std::mutex> L(Mu);
    Paused = P;
  }
  WorkCv.notify_all();
}

void CompileService::workerMain() {
  std::unique_lock<std::mutex> L(Mu);
  for (;;) {
    WorkCv.wait(L, [this] {
      return ShuttingDown || (!Paused && !Queue.empty());
    });
    if (ShuttingDown)
      return;
    Entry E = std::move(Queue.front());
    Queue.pop_front();
    Active = E.Client;
    L.unlock();

    // The only code that runs off the engine thread. It writes the job's
    // fragment (NativeEntry/NativeSize/exit PatchAddrs) and allocates from
    // the backend's mutexed pool; the mutex reacquired below publishes
    // those writes to the engine thread that drains the job.
    E.Job.Result = E.Job.Backend
                       ? E.Job.Backend->compile(E.Job.Frag, E.Job.Ctx)
                       : CompileResult::BackendUnavailable;
    E.Job.Compiled = true;

    L.lock();
    CompileClient *C = Active;
    Active = nullptr;
    assert(C->Pending > 0);
    --C->Pending;
    C->Completed.push_back(std::move(E.Job));
    C->CompletedFlag.store(true, std::memory_order_release);
    IdleCv.notify_all();
  }
}

CompileClient::~CompileClient() { quiesce(nullptr); }

bool CompileClient::trySubmit(CompileJob J) {
  {
    std::lock_guard<std::mutex> L(Svc.Mu);
    if (Svc.ShuttingDown || Pending >= Depth)
      return false;
    ++Pending;
    Svc.Queue.push_back(CompileService::Entry{this, std::move(J)});
  }
  Svc.WorkCv.notify_one();
  return true;
}

void CompileClient::drainCompleted(std::vector<CompileJob> &Out) {
  std::lock_guard<std::mutex> L(Svc.Mu);
  for (CompileJob &J : Completed)
    Out.push_back(std::move(J));
  Completed.clear();
  CompletedFlag.store(false, std::memory_order_release);
}

void CompileClient::quiesce(std::vector<CompileJob> *Dropped) {
  std::unique_lock<std::mutex> L(Svc.Mu);
  // Pull our queued entries back; they never reach the worker.
  auto Mine = std::stable_partition(
      Svc.Queue.begin(), Svc.Queue.end(),
      [this](const CompileService::Entry &E) { return E.Client != this; });
  for (auto It = Mine; It != Svc.Queue.end(); ++It) {
    assert(Pending > 0);
    --Pending;
    if (Dropped)
      Dropped->push_back(std::move(It->Job));
  }
  Svc.Queue.erase(Mine, Svc.Queue.end());
  // Wait out the job the worker may hold right now (it will complete into
  // Completed, where the caller can still drain-and-drop it).
  Svc.IdleCv.wait(L, [this] { return Svc.Active != this; });
}

void CompileClient::waitIdle() {
  std::unique_lock<std::mutex> L(Svc.Mu);
  Svc.IdleCv.wait(L, [this] { return Pending == 0; });
}

uint32_t CompileClient::pendingCount() const {
  std::lock_guard<std::mutex> L(Svc.Mu);
  return Pending;
}

} // namespace tracejit
