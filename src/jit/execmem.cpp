//===- execmem.cpp - Executable code memory -----------------------------------===//

#include "jit/execmem.h"

#include <cassert>
#include <sys/mman.h>
#include <unistd.h>

namespace tracejit {

ExecMemPool::ExecMemPool(size_t Bytes, const FaultHook *FI) : Faults(FI) {
  size_t Page = (size_t)sysconf(_SC_PAGESIZE);
  Bytes = (Bytes + Page - 1) & ~(Page - 1);
  if (inject(FaultSite::ExecMapFail))
    return; // simulated mmap failure: pool stays invalid
  // W^X: map RW; makeExecutable() flips to RX before traces run.
  void *P = mmap(nullptr, Bytes, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (P == MAP_FAILED)
    return;
  Base = static_cast<uint8_t *>(P);
  Cap = Bytes;
}

ExecMemPool::~ExecMemPool() {
  if (Base)
    munmap(Base, Cap);
}

uint8_t *ExecMemPool::reserve(size_t Bytes) {
  assert(!HasReservation && "unresolved reservation");
  if (!Base || inject(FaultSite::ExecAllocFail))
    return nullptr;
  size_t Aligned = (Used + 15) & ~(size_t)15;
  if (Aligned + Bytes > Cap)
    return nullptr;
  ResvStart = Aligned;
  HasReservation = true;
  Used = Aligned + Bytes;
  return Base + Aligned;
}

void ExecMemPool::commit(size_t Actual) {
  assert(HasReservation && "commit without reserve");
  assert(ResvStart + Actual <= Used && "commit exceeds reservation");
  Used = ResvStart + Actual;
  HasReservation = false;
}

void ExecMemPool::rewind() {
  assert(HasReservation && "rewind without reserve");
  Used = ResvStart;
  HasReservation = false;
}

size_t ExecMemPool::reset() {
  assert(!HasReservation && "flush with a compile in flight");
  size_t Reclaimed = Used - Floor;
  Used = Floor;
  makeWritable(); // next generation starts emitting immediately
  return Reclaimed;
}

bool ExecMemPool::makeExecutable() {
  if (!Base)
    return false;
  if (Exec)
    return true;
  if (inject(FaultSite::ProtectFail))
    return false;
  if (mprotect(Base, Cap, PROT_READ | PROT_EXEC) != 0)
    return false;
  Exec = true;
  return true;
}

bool ExecMemPool::makeWritable() {
  if (!Base)
    return false;
  if (!Exec)
    return true;
  if (inject(FaultSite::ProtectFail))
    return false;
  if (mprotect(Base, Cap, PROT_READ | PROT_WRITE) != 0)
    return false;
  Exec = false;
  return true;
}

} // namespace tracejit
