//===- execmem.cpp - Executable code memory -----------------------------------===//

#include "jit/execmem.h"

#include <cassert>
#include <sys/mman.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/syscall.h>
#ifndef MFD_CLOEXEC
#define MFD_CLOEXEC 0x0001U
#endif
#endif

namespace tracejit {

#if defined(__linux__)
static int codeMemFd() {
  // Raw syscall keeps us independent of the libc wrapper's availability.
  return (int)syscall(SYS_memfd_create, "tracejit-code", MFD_CLOEXEC);
}
#endif

ExecMemPool::ExecMemPool(size_t Bytes, const FaultHook *FI, bool DualMap)
    : Faults(FI) {
  size_t Page = (size_t)sysconf(_SC_PAGESIZE);
  Bytes = (Bytes + Page - 1) & ~(Page - 1);
  if (inject(FaultSite::ExecMapFail))
    return; // simulated mmap failure: pool stays invalid

  if (DualMap) {
#if defined(__linux__)
    // Same physical pages, two views: RW for the compiler thread, RX for
    // execution. Protections never change, so emitting code can never race
    // a running trace through an mprotect of the whole pool.
    int Fd = codeMemFd();
    if (Fd < 0)
      return;
    if (ftruncate(Fd, (off_t)Bytes) != 0) {
      close(Fd);
      return;
    }
    void *W =
        mmap(nullptr, Bytes, PROT_READ | PROT_WRITE, MAP_SHARED, Fd, 0);
    void *X = mmap(nullptr, Bytes, PROT_READ | PROT_EXEC, MAP_SHARED, Fd, 0);
    close(Fd); // the mappings keep the memfd's pages alive
    if (W == MAP_FAILED || X == MAP_FAILED) {
      if (W != MAP_FAILED)
        munmap(W, Bytes);
      if (X != MAP_FAILED)
        munmap(X, Bytes);
      return;
    }
    Base = static_cast<uint8_t *>(W);
    ExecView = static_cast<uint8_t *>(X);
    Cap = Bytes;
    Exec = true; // the exec view is born executable
#endif
    // Non-Linux: no dual mapping; the pool stays invalid and the engine
    // falls back to the LIR executor (BackendFallback event).
    return;
  }

  // W^X: map RW; makeExecutable() flips to RX before traces run.
  void *P = mmap(nullptr, Bytes, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (P == MAP_FAILED)
    return;
  Base = static_cast<uint8_t *>(P);
  Cap = Bytes;
}

ExecMemPool::~ExecMemPool() {
  if (Base)
    munmap(Base, Cap);
  if (ExecView)
    munmap(ExecView, Cap);
}

uint8_t *ExecMemPool::reserve(size_t Bytes) {
  std::lock_guard<std::mutex> L(Mu);
  assert(!HasReservation && "unresolved reservation");
  if (!Base || inject(FaultSite::ExecAllocFail))
    return nullptr;
  size_t Aligned = (Used + 15) & ~(size_t)15;
  if (Aligned + Bytes > Cap)
    return nullptr;
  ResvStart = Aligned;
  HasReservation = true;
  Used = Aligned + Bytes;
  return Base + Aligned;
}

void ExecMemPool::commit(size_t Actual) {
  std::lock_guard<std::mutex> L(Mu);
  assert(HasReservation && "commit without reserve");
  assert(ResvStart + Actual <= Used && "commit exceeds reservation");
  Used = ResvStart + Actual;
  HasReservation = false;
}

void ExecMemPool::rewind() {
  std::lock_guard<std::mutex> L(Mu);
  assert(HasReservation && "rewind without reserve");
  Used = ResvStart;
  HasReservation = false;
}

size_t ExecMemPool::reset() {
  size_t Reclaimed;
  {
    std::lock_guard<std::mutex> L(Mu);
    assert(!HasReservation && "flush with a compile in flight");
    Reclaimed = Used - Floor;
    Used = Floor;
  }
  makeWritable(); // next generation starts emitting immediately
  return Reclaimed;
}

size_t ExecMemPool::used() const {
  std::lock_guard<std::mutex> L(Mu);
  return Used;
}

bool ExecMemPool::makeExecutable() {
  if (!Base)
    return false;
  if (ExecView)
    return true; // dual-map: the exec view is always RX
  if (Exec)
    return true;
  if (inject(FaultSite::ProtectFail))
    return false;
  if (mprotect(Base, Cap, PROT_READ | PROT_EXEC) != 0)
    return false;
  Exec = true;
  return true;
}

bool ExecMemPool::makeWritable() {
  if (!Base)
    return false;
  if (ExecView)
    return true; // dual-map: the write view is always RW
  if (!Exec)
    return true;
  if (inject(FaultSite::ProtectFail))
    return false;
  if (mprotect(Base, Cap, PROT_READ | PROT_WRITE) != 0)
    return false;
  Exec = false;
  return true;
}

} // namespace tracejit
