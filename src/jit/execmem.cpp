//===- execmem.cpp - Executable code memory -----------------------------------===//

#include "jit/execmem.h"

#include <sys/mman.h>

namespace tracejit {

ExecMemPool::ExecMemPool(size_t Bytes) {
  void *P = mmap(nullptr, Bytes, PROT_READ | PROT_WRITE | PROT_EXEC,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (P == MAP_FAILED)
    return;
  Base = static_cast<uint8_t *>(P);
  Cap = Bytes;
}

ExecMemPool::~ExecMemPool() {
  if (Base)
    munmap(Base, Cap);
}

uint8_t *ExecMemPool::allocate(size_t Bytes) {
  size_t Aligned = (Used + 15) & ~(size_t)15;
  if (Aligned + Bytes > Cap)
    return nullptr;
  Used = Aligned + Bytes;
  return Base + Aligned;
}

} // namespace tracejit
