//===- compile_queue.h - Background trace compilation ------------------------===//
//
// Off-thread compilation (EngineOptions::OffThreadCompile). The paper's
// pipeline compiles a completed recording inline at the loop edge, stalling
// the interpreter for the whole backend run. Here the monitor instead
// packages the verified, backward-filtered LIR as a self-contained
// CompileJob and hands it to a single background compiler thread through a
// bounded queue; the interpreter keeps running unjitted until the finished
// fragment is published back at a later loop edge.
//
// Roles and ownership:
//
//  * CompileService owns the compiler thread. One service can serve many
//    engines (the serving harness runs N contexts against one compiler),
//    draining their jobs FIFO.
//  * CompileClient is one engine's bounded portal to the service. The
//    monitor owns it; it registers with the service on construction and
//    quiesces + unregisters on destruction, so a dying engine never leaves
//    jobs aimed at freed state.
//  * CompileJob owns nothing but borrows carefully: Frag stays alive
//    because the monitor never frees fragments while jobs referencing them
//    are in flight (flush quiesces first), and the job carries the LIR
//    via the fragment's own arena (Fragment::LirArena), not the monitor's.
//
// Threading contract (see DESIGN.md "Threading model"):
//
//  * The worker touches ONLY the job's fragment (NativeEntry / NativeSize /
//    exit PatchAddrs), the backend's ExecMemPool (internally mutexed), and
//    the job's Result. It never touches VMStats, JitEvents, LoopStates, or
//    interpreter state -- those belong to the engine thread and are
//    updated at publication.
//  * A job is in exactly one place at a time: the queue (submitted), the
//    worker (active), or the client's completed list. Handoffs happen
//    under the service mutex, which provides the happens-before edge that
//    makes the worker's fragment writes visible to the publishing thread.
//  * Stale results are not the queue's problem: the client returns
//    completed jobs verbatim and the monitor drops them by generation at
//    publication (CompileJobDropped).
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_JIT_COMPILE_QUEUE_H
#define TRACEJIT_JIT_COMPILE_QUEUE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "jit/compiler_x64.h"

namespace tracejit {

struct LoopState;
struct VMContext;

/// One trace compilation, self-contained enough to run on the worker and
/// to be dropped without dereferencing anything (the Id/Pc copies exist so
/// a stale job can still be reported after its fragment was flushed).
struct CompileJob {
  Fragment *Frag = nullptr;
  NativeBackend *Backend = nullptr;
  VMContext *Ctx = nullptr; ///< Stable-address context (LastNestedExit embed).

  // --- Publication bookkeeping (engine thread only) -------------------------
  uint32_t Generation = 0;          ///< Cache generation at submit time.
  LoopState *LS = nullptr;          ///< Owning loop header state.
  ExitDescriptor *AnchorExit = nullptr; ///< Branch jobs: the exit to stitch.
  bool IsRoot = true;
  bool IsMethod = false; ///< Method-tier body (trace/tier.h), not a trace.

  // --- Drop-path-safe copies (valid even when Frag is gone) -----------------
  uint32_t FragmentId = 0;
  uint32_t ScriptId = 0;
  uint32_t AnchorPc = 0;

  // --- Filled in by the worker ----------------------------------------------
  bool Compiled = false; ///< False on jobs dropped before reaching the worker.
  CompileResult Result = CompileResult::BackendUnavailable;
};

class CompileClient;

/// The background compiler: one worker thread draining jobs from all
/// registered clients in FIFO order.
class CompileService {
public:
  CompileService();
  ~CompileService(); ///< Joins the worker; queued jobs are dropped.
  CompileService(const CompileService &) = delete;
  CompileService &operator=(const CompileService &) = delete;

  /// Register a client whose trySubmit() accepts at most \p QueueDepth
  /// unfinished jobs at a time (queued + active).
  std::unique_ptr<CompileClient> createClient(uint32_t QueueDepth);

  /// Test hook: freeze/unfreeze the worker so tests can fill the queue
  /// deterministically (backpressure, shutdown-with-jobs-in-flight).
  void setPausedForTest(bool Paused);

private:
  friend class CompileClient;

  struct Entry {
    CompileClient *Client;
    CompileJob Job;
  };

  void workerMain();

  std::mutex Mu;
  std::condition_variable WorkCv; ///< Worker waits for jobs / unpause.
  std::condition_variable IdleCv; ///< Clients wait for drain / quiesce.
  std::deque<Entry> Queue;
  CompileClient *Active = nullptr; ///< Client whose job the worker holds.
  bool Paused = false;
  bool ShuttingDown = false;
  std::thread Worker; ///< Last member: starts after state is ready.
};

/// One engine's portal to the shared compiler thread. All methods are
/// called from the owning engine thread only.
class CompileClient {
public:
  ~CompileClient(); ///< quiesce(nullptr) + unregister.
  CompileClient(const CompileClient &) = delete;
  CompileClient &operator=(const CompileClient &) = delete;

  /// Enqueue \p J. False (job not taken) when the client's bound is hit or
  /// the service is shutting down -- the monitor treats that as a compile
  /// abort (CompileQueueFull) with the usual backoff.
  bool trySubmit(CompileJob J);

  /// Cheap poll (single atomic load): does drainCompleted() have work?
  /// Checked at every loop edge, so it must not take the service lock.
  bool hasCompleted() const {
    return CompletedFlag.load(std::memory_order_acquire);
  }

  /// Move all finished jobs into \p Out (appended, submit order).
  void drainCompleted(std::vector<CompileJob> &Out);

  /// Pull this client's queued (not yet started) jobs back out of the
  /// service -- appended to \p Dropped with Compiled=false when non-null,
  /// discarded otherwise -- then wait for any active job to finish.
  /// Afterwards no worker touches this client's fragments; completed jobs
  /// (including the one that just finished) remain for drainCompleted().
  void quiesce(std::vector<CompileJob> *Dropped);

  /// Block until every submitted job has completed (tests, benchmarks,
  /// engine teardown; the queue keeps draining -- nothing is dropped).
  void waitIdle();

  /// Jobs submitted but not yet completed (queued + active).
  uint32_t pendingCount() const;

  CompileService &service() { return Svc; }

private:
  friend class CompileService;
  CompileClient(CompileService &S, uint32_t Depth) : Svc(S), Depth(Depth) {}

  CompileService &Svc;
  uint32_t Depth;
  uint32_t Pending = 0;             ///< Guarded by Svc.Mu.
  std::vector<CompileJob> Completed; ///< Guarded by Svc.Mu.
  std::atomic<bool> CompletedFlag{false};
};

} // namespace tracejit

#endif // TRACEJIT_JIT_COMPILE_QUEUE_H
