//===- server.cpp - Multi-context script serving harness ----------------------===//

#include "serve/server.h"

#include <cassert>
#include <chrono>

#include "api/engine.h"
#include "jit/compile_queue.h"

namespace tracejit {
namespace serve {

static double msBetween(std::chrono::steady_clock::time_point A,
                        std::chrono::steady_clock::time_point B) {
  return std::chrono::duration<double, std::milli>(B - A).count();
}

ScriptServer::ScriptServer(const ServerConfig &C) : Cfg(C) {
  if (Cfg.Workers == 0)
    Cfg.Workers = 1;
  if (Cfg.QueueDepth == 0)
    Cfg.QueueDepth = 1;
  WorkerStats.resize(Cfg.Workers);
  if (Cfg.Engine.OffThreadCompile && !Cfg.Engine.SharedCompileService)
    CompileSvc = std::make_unique<CompileService>();
  Threads.reserve(Cfg.Workers);
  for (uint32_t W = 0; W < Cfg.Workers; ++W)
    Threads.emplace_back([this, W] { workerMain(W); });
}

ScriptServer::~ScriptServer() { stop(); }

uint64_t ScriptServer::submit(std::string Source) {
  uint64_t Id;
  {
    std::unique_lock<std::mutex> L(Mu);
    assert(!Stopping && "submit after stop");
    SubmitCv.wait(L, [this] { return Requests.size() < Cfg.QueueDepth; });
    Id = NextId++;
    Requests.push_back(
        {Id, std::move(Source), std::chrono::steady_clock::now()});
  }
  WorkCv.notify_one();
  return Id;
}

void ScriptServer::drain() {
  std::unique_lock<std::mutex> L(Mu);
  IdleCv.wait(L, [this] { return Requests.empty() && BusyWorkers == 0; });
}

void ScriptServer::stop() {
  {
    std::unique_lock<std::mutex> L(Mu);
    if (Stopped)
      return;
    // Serve out the backlog first: stop() is a graceful shutdown.
    IdleCv.wait(L, [this] { return Requests.empty() && BusyWorkers == 0; });
    Stopping = true;
  }
  WorkCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
  Stopped = true;
  // The shared compiler dies after every engine that could reference it
  // (engines live on the worker threads just joined).
  CompileSvc.reset();
}

std::vector<RequestResult> ScriptServer::takeResults() {
  std::lock_guard<std::mutex> L(Mu);
  std::vector<RequestResult> Out;
  Out.swap(Results);
  return Out;
}

void ScriptServer::workerMain(uint32_t Index) {
  // The engine is born, used, and destroyed on this thread; nothing inside
  // it is ever touched from another thread. The only shared machinery is
  // the compile service, which has its own locking discipline.
  EngineOptions EO = Cfg.Engine;
  if (EO.OffThreadCompile && !EO.SharedCompileService)
    EO.SharedCompileService = CompileSvc.get();
  Engine E(EO);

  std::string Captured;
  E.setPrintHook([&Captured](const std::string &S) { Captured += S; });

  for (;;) {
    PendingRequest Req;
    {
      std::unique_lock<std::mutex> L(Mu);
      WorkCv.wait(L, [this] { return Stopping || !Requests.empty(); });
      if (Requests.empty())
        break; // Stopping and no work left
      Req = std::move(Requests.front());
      Requests.pop_front();
      ++BusyWorkers;
    }
    SubmitCv.notify_one(); // a queue slot freed up

    RequestResult RR;
    RR.Id = Req.Id;
    RR.Worker = Index;
    auto Start = std::chrono::steady_clock::now();
    RR.QueueMs = msBetween(Req.Submitted, Start);
    Captured.clear();
    EvalResult ER = E.eval(Req.Source);
    auto End = std::chrono::steady_clock::now();
    RR.EvalMs = msBetween(Start, End);
    RR.TotalMs = msBetween(Req.Submitted, End);
    RR.Ok = ER.ok();
    if (!RR.Ok)
      RR.Error = ER.Err.describe();
    RR.Output = Captured;
    // Publish any finished compiles now so the next request on this
    // context starts with the freshest trace cache.
    E.pumpCompileQueue();

    {
      std::lock_guard<std::mutex> L(Mu);
      Results.push_back(std::move(RR));
      --BusyWorkers;
    }
    IdleCv.notify_all();
  }

  // Settle the compile pipeline before the stats snapshot so queued/
  // published/dropped counters add up for the caller.
  E.waitForCompileQueue();
  VMStats Snapshot = E.stats();
  {
    std::lock_guard<std::mutex> L(Mu);
    WorkerStats[Index] = Snapshot;
  }
}

} // namespace serve
} // namespace tracejit
