//===- server.cpp - Multi-context script serving harness ----------------------===//

#include "serve/server.h"

#include <algorithm>
#include <chrono>

#include "api/engine.h"
#include "interp/vmcontext.h"
#include "jit/compile_queue.h"

namespace tracejit {
namespace serve {

static double msBetween(std::chrono::steady_clock::time_point A,
                        std::chrono::steady_clock::time_point B) {
  return std::chrono::duration<double, std::milli>(B - A).count();
}

ScriptServer::ScriptServer(const ServerConfig &C) : Cfg(C) {
  if (Cfg.Workers == 0)
    Cfg.Workers = 1;
  if (Cfg.QueueDepth == 0)
    Cfg.QueueDepth = 1;
  WorkerStats.resize(Cfg.Workers);
  WorkerRecycles.assign(Cfg.Workers, 0);
  Active.resize(Cfg.Workers);
  if (Cfg.Engine.OffThreadCompile && !Cfg.Engine.SharedCompileService)
    CompileSvc = std::make_unique<CompileService>();
  Threads.reserve(Cfg.Workers);
  for (uint32_t W = 0; W < Cfg.Workers; ++W)
    Threads.emplace_back([this, W] { workerMain(W); });
}

ScriptServer::~ScriptServer() { stop(); }

uint64_t ScriptServer::submit(std::string Source) {
  return submit(std::move(Source), Cfg.DeadlineMs);
}

uint64_t ScriptServer::submit(std::string Source, uint64_t DeadlineMs) {
  uint64_t Id;
  {
    std::unique_lock<std::mutex> L(Mu);
    // A stopping/stopped server refuses work instead of corrupting state:
    // the workers are (being) joined, so the request could never be
    // served. 0 is never a valid request id.
    if (Stopping || Stopped)
      return 0;
    SubmitCv.wait(L, [this] { return Requests.size() < Cfg.QueueDepth; });
    Id = NextId++;
    Requests.push_back({Id, std::move(Source),
                        std::chrono::steady_clock::now(), DeadlineMs});
  }
  WorkCv.notify_one();
  return Id;
}

void ScriptServer::drain() {
  std::unique_lock<std::mutex> L(Mu);
  IdleCv.wait(L, [this] { return Requests.empty() && BusyWorkers == 0; });
}

void ScriptServer::stop() {
  {
    std::unique_lock<std::mutex> L(Mu);
    if (Stopped)
      return;
    // Serve out the backlog first: stop() is a graceful shutdown.
    IdleCv.wait(L, [this] { return Requests.empty() && BusyWorkers == 0; });
    Stopping = true;
  }
  WorkCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
  {
    std::lock_guard<std::mutex> L(Mu);
    Stopped = true;
    WatchdogStop = true;
  }
  WatchdogCv.notify_all();
  // Workers are joined, so no new watchdog can spawn under our feet.
  if (Watchdog.joinable())
    Watchdog.join();
  // The shared compiler dies after every engine that could reference it
  // (engines live on the worker threads just joined).
  CompileSvc.reset();
}

std::vector<RequestResult> ScriptServer::takeResults() {
  std::lock_guard<std::mutex> L(Mu);
  std::vector<RequestResult> Out;
  Out.swap(Results);
  return Out;
}

std::vector<uint32_t> ScriptServer::workerRecycles() const {
  std::lock_guard<std::mutex> L(Mu);
  return WorkerRecycles;
}

void ScriptServer::watchdogMain() {
  std::unique_lock<std::mutex> L(Mu);
  while (!WatchdogStop) {
    auto Now = std::chrono::steady_clock::now();
    auto Next = Now + std::chrono::hours(1);
    bool AnyOverdue = false;
    for (ActiveEval &A : Active) {
      if (!A.Armed)
        continue;
      if (A.Deadline <= Now) {
        // Overdue: raise the termination bit. Keep re-raising on later
        // passes while the eval stays active -- a benign GC service on the
        // worker consumes the whole interrupt word and could otherwise
        // swallow a raise that raced with it.
        A.Ctx->requestInterrupt(InterruptDeadline);
        AnyOverdue = true;
      } else if (A.Deadline < Next) {
        Next = A.Deadline;
      }
    }
    if (AnyOverdue)
      Next = std::min(Next, Now + std::chrono::milliseconds(2));
    WatchdogCv.wait_until(L, Next);
  }
}

void ScriptServer::workerMain(uint32_t Index) {
  // The engine is born, used, and destroyed on this thread; nothing inside
  // it is ever touched from another thread except the atomic interrupt
  // word (the watchdog's one sanctioned cross-thread signal). The only
  // other shared machinery is the compile service, which has its own
  // locking discipline.
  EngineOptions EO = Cfg.Engine;
  if (EO.OffThreadCompile && !EO.SharedCompileService)
    EO.SharedCompileService = CompileSvc.get();

  std::string Captured;
  auto makeEngine = [&] {
    auto E = std::make_unique<Engine>(EO);
    E->setPrintHook([&Captured](const std::string &S) { Captured += S; });
    return E;
  };
  std::unique_ptr<Engine> E = makeEngine();

  VMStats Accum; // Banked counters from recycled engines.
  uint32_t ConsecFailures = 0;

  for (;;) {
    PendingRequest Req;
    {
      std::unique_lock<std::mutex> L(Mu);
      WorkCv.wait(L, [this] { return Stopping || !Requests.empty(); });
      if (Requests.empty())
        break; // Stopping and no work left
      Req = std::move(Requests.front());
      Requests.pop_front();
      ++BusyWorkers;
      if (Req.DeadlineMs) {
        Active[Index] = {&E->context(),
                         std::chrono::steady_clock::now() +
                             std::chrono::milliseconds(Req.DeadlineMs),
                         true};
        if (!Watchdog.joinable())
          Watchdog = std::thread([this] { watchdogMain(); });
      }
    }
    SubmitCv.notify_one(); // a queue slot freed up
    if (Req.DeadlineMs)
      WatchdogCv.notify_all();

    RequestResult RR;
    RR.Id = Req.Id;
    RR.Worker = Index;
    auto Start = std::chrono::steady_clock::now();
    RR.QueueMs = msBetween(Req.Submitted, Start);
    Captured.clear();
    EvalResult ER = E->eval(Req.Source);
    auto End = std::chrono::steady_clock::now();
    RR.EvalMs = msBetween(Start, End);
    RR.TotalMs = msBetween(Req.Submitted, End);
    RR.Ok = ER.ok();
    if (!RR.Ok) {
      RR.ErrKind = ER.Err.Kind;
      RR.TimedOut = ER.Err.Kind == ErrorKind::Timeout;
      RR.Error = ER.Err.describe();
    }
    RR.Output = Captured;
    // Publish any finished compiles now so the next request on this
    // context starts with the freshest trace cache.
    E->pumpCompileQueue();

    bool Recycle = false;
    if (!RR.Ok) {
      ++ConsecFailures;
      Recycle = RR.ErrKind == ErrorKind::OutOfMemory ||
                (Cfg.RecycleAfterFailures &&
                 ConsecFailures >= Cfg.RecycleAfterFailures);
    } else {
      ConsecFailures = 0;
    }

    {
      std::lock_guard<std::mutex> L(Mu);
      Active[Index].Armed = false; // before the engine can be recycled
      Results.push_back(std::move(RR));
      if (!Recycle)
        --BusyWorkers;
    }

    if (Recycle) {
      // Retire the poisoned engine on its own thread: settle its compile
      // pipeline, bank its statistics, rebuild from scratch. BusyWorkers
      // stays held so drain()/stop() wait out the rebuild.
      uint32_t Failures = ConsecFailures;
      ConsecFailures = 0;
      E->waitForCompileQueue();
      Accum.accumulate(E->stats());
      E.reset();
      E = makeEngine();
      VMContext &NC = E->context();
      if (NC.EventListener) {
        JitEvent Ev;
        Ev.Kind = JitEventKind::EngineRecycled;
        Ev.Arg0 = Index;
        Ev.Arg1 = Failures;
        NC.EventListener->onEvent(Ev);
      }
      {
        std::lock_guard<std::mutex> L(Mu);
        ++WorkerRecycles[Index];
        --BusyWorkers;
      }
    }
    IdleCv.notify_all();
  }

  // Settle the compile pipeline before the stats snapshot so queued/
  // published/dropped counters add up for the caller.
  E->waitForCompileQueue();
  Accum.accumulate(E->stats());
  {
    std::lock_guard<std::mutex> L(Mu);
    WorkerStats[Index] = Accum;
  }
}

} // namespace serve
} // namespace tracejit
