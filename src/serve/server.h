//===- server.h - Multi-context script serving harness -----------------------===//
//
// The ROADMAP north star is heavy multi-user traffic; the paper's engine is
// one thread in one VMContext. This layer bridges the two: a ScriptServer
// runs N isolated Engine contexts on a worker pool consuming a stream of
// eval requests.
//
// Isolation and sharing (see DESIGN.md "Threading model"):
//
//  * Each worker thread owns one Engine outright -- heap, globals, trace
//    cache, code pool (its own CodeCacheBytes quota), statistics. Engines
//    are constructed and destroyed on their worker's thread and no engine
//    state ever crosses threads; requests are distributed by whichever
//    worker is free (there is no session affinity -- a request is one
//    self-contained script).
//  * With EngineOptions::OffThreadCompile set, all workers share ONE
//    background compiler thread: the server owns a CompileService and
//    wires it into every engine via SharedCompileService. N contexts get
//    off-main-thread compilation for the price of one extra core.
//
// The request queue is bounded (ServerConfig::QueueDepth): submit() blocks
// the producer when the pool is saturated, which is the backpressure a
// real front door would apply.
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_SERVE_SERVER_H
#define TRACEJIT_SERVE_SERVER_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/options.h"
#include "support/stats.h"

namespace tracejit {

class CompileService;

namespace serve {

struct ServerConfig {
  uint32_t Workers = 1;     ///< Engine contexts (one per worker thread).
  uint32_t QueueDepth = 1024; ///< Bound on requests waiting for a worker.
  EngineOptions Engine;     ///< Options every context is created with.
};

/// Outcome of one served request.
struct RequestResult {
  uint64_t Id = 0;
  uint32_t Worker = 0;   ///< Index of the context that served it.
  bool Ok = false;
  double QueueMs = 0;    ///< submit() -> worker pickup.
  double EvalMs = 0;     ///< Engine::eval wall time.
  double TotalMs = 0;    ///< submit() -> result recorded.
  std::string Error;     ///< EngineError::describe() when !Ok.
  std::string Output;    ///< Everything the script print()ed.
};

/// N engines, one request stream. Not copyable; owns its threads.
class ScriptServer {
public:
  explicit ScriptServer(const ServerConfig &Cfg);
  ~ScriptServer(); ///< stop()s if still running.
  ScriptServer(const ScriptServer &) = delete;
  ScriptServer &operator=(const ScriptServer &) = delete;

  /// Enqueue one script; returns its request id. Blocks while the queue is
  /// at QueueDepth (producer-side backpressure). Must not be called after
  /// stop().
  uint64_t submit(std::string Source);

  /// Block until every submitted request has been served.
  void drain();

  /// drain(), then shut the workers down (each settles its compile queue
  /// and snapshots its stats first). Idempotent.
  void stop();

  /// Move out the results collected so far (unordered across workers).
  std::vector<RequestResult> takeResults();

  /// Per-context statistics snapshots; valid after stop().
  const std::vector<VMStats> &workerStats() const { return WorkerStats; }

  /// The shared background compiler (null unless OffThreadCompile).
  CompileService *compileService() { return CompileSvc.get(); }

private:
  struct PendingRequest {
    uint64_t Id;
    std::string Source;
    std::chrono::steady_clock::time_point Submitted;
  };

  void workerMain(uint32_t Index);

  ServerConfig Cfg;
  std::unique_ptr<CompileService> CompileSvc;

  std::mutex Mu;
  std::condition_variable WorkCv;   ///< Workers wait for requests/stop.
  std::condition_variable SubmitCv; ///< Producers wait for queue space.
  std::condition_variable IdleCv;   ///< drain() waits for quiescence.
  std::deque<PendingRequest> Requests;
  std::vector<RequestResult> Results;
  std::vector<VMStats> WorkerStats;
  uint32_t BusyWorkers = 0;
  uint64_t NextId = 1;
  bool Stopping = false;
  bool Stopped = false;

  std::vector<std::thread> Threads; ///< Last: started after state is ready.
};

} // namespace serve
} // namespace tracejit

#endif // TRACEJIT_SERVE_SERVER_H
