//===- server.h - Multi-context script serving harness -----------------------===//
//
// The ROADMAP north star is heavy multi-user traffic; the paper's engine is
// one thread in one VMContext. This layer bridges the two: a ScriptServer
// runs N isolated Engine contexts on a worker pool consuming a stream of
// eval requests.
//
// Isolation and sharing (see DESIGN.md "Threading model"):
//
//  * Each worker thread owns one Engine outright -- heap, globals, trace
//    cache, code pool (its own CodeCacheBytes quota), statistics. Engines
//    are constructed and destroyed on their worker's thread and no engine
//    state ever crosses threads; requests are distributed by whichever
//    worker is free (there is no session affinity -- a request is one
//    self-contained script).
//  * With EngineOptions::OffThreadCompile set, all workers share ONE
//    background compiler thread: the server owns a CompileService and
//    wires it into every engine via SharedCompileService. N contexts get
//    off-main-thread compilation for the price of one extra core.
//
// The request queue is bounded (ServerConfig::QueueDepth): submit() blocks
// the producer when the pool is saturated, which is the backpressure a
// real front door would apply.
//
// Resource governance (see DESIGN.md "Resource governance & interruption"):
// each request may carry a deadline (per-request override or the
// ServerConfig::DeadlineMs default). A single watchdog thread tracks every
// in-flight eval and raises InterruptDeadline on overdue contexts -- the
// interrupt word is the one sanctioned cross-thread touch of engine state.
// A worker whose engine dies of OutOfMemory (or fails RecycleAfterFailures
// requests in a row) destroys and rebuilds its Engine on its own thread,
// banking the old engine's statistics, so one poisoned context cannot
// degrade the rest of a long-lived serving process.
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_SERVE_SERVER_H
#define TRACEJIT_SERVE_SERVER_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/options.h"
#include "api/result.h"
#include "support/stats.h"

namespace tracejit {

class CompileService;
class Engine;
class VMContext;

namespace serve {

struct ServerConfig {
  uint32_t Workers = 1;     ///< Engine contexts (one per worker thread).
  uint32_t QueueDepth = 1024; ///< Bound on requests waiting for a worker.
  EngineOptions Engine;     ///< Options every context is created with.
  /// Default per-request deadline in milliseconds (0 = none). The watchdog
  /// thread terminates any request still running past its deadline; the
  /// result comes back with TimedOut set and the worker serves on.
  uint64_t DeadlineMs = 0;
  /// Recycle a worker's engine after this many consecutive failed requests
  /// (0 = only recycle on OutOfMemory). An OOM result always recycles: the
  /// heap that hit its quota starts over empty.
  uint32_t RecycleAfterFailures = 0;
};

/// Outcome of one served request.
struct RequestResult {
  uint64_t Id = 0;
  uint32_t Worker = 0;   ///< Index of the context that served it.
  bool Ok = false;
  bool TimedOut = false; ///< Terminated by the deadline watchdog.
  ErrorKind ErrKind = ErrorKind::None; ///< Error taxonomy when !Ok.
  double QueueMs = 0;    ///< submit() -> worker pickup.
  double EvalMs = 0;     ///< Engine::eval wall time.
  double TotalMs = 0;    ///< submit() -> result recorded.
  std::string Error;     ///< EngineError::describe() when !Ok.
  std::string Output;    ///< Everything the script print()ed.
};

/// N engines, one request stream. Not copyable; owns its threads.
class ScriptServer {
public:
  explicit ScriptServer(const ServerConfig &Cfg);
  ~ScriptServer(); ///< stop()s if still running.
  ScriptServer(const ScriptServer &) = delete;
  ScriptServer &operator=(const ScriptServer &) = delete;

  /// Enqueue one script; returns its request id. Blocks while the queue is
  /// at QueueDepth (producer-side backpressure). The request runs under the
  /// ServerConfig::DeadlineMs default deadline. After stop() the server
  /// refuses work: submit returns 0 (never a valid id) and enqueues
  /// nothing.
  uint64_t submit(std::string Source);

  /// Same, with an explicit per-request deadline (milliseconds; 0 = no
  /// deadline, overriding the config default).
  uint64_t submit(std::string Source, uint64_t DeadlineMs);

  /// Block until every submitted request has been served.
  void drain();

  /// drain(), then shut the workers down (each settles its compile queue
  /// and snapshots its stats first). Idempotent.
  void stop();

  /// Move out the results collected so far (unordered across workers).
  std::vector<RequestResult> takeResults();

  /// Per-context statistics snapshots; valid after stop(). Counters
  /// accumulate across engine recycles, so one worker's snapshot covers
  /// every engine it ever ran.
  const std::vector<VMStats> &workerStats() const { return WorkerStats; }

  /// How many times each worker rebuilt its engine (OOM / failure policy).
  std::vector<uint32_t> workerRecycles() const;

  /// The shared background compiler (null unless OffThreadCompile).
  CompileService *compileService() { return CompileSvc.get(); }

private:
  struct PendingRequest {
    uint64_t Id;
    std::string Source;
    std::chrono::steady_clock::time_point Submitted;
    uint64_t DeadlineMs = 0; ///< Resolved at submit (override or default).
  };

  /// One worker's in-flight eval, as the watchdog sees it. Registered
  /// under Mu before eval and disarmed (still under Mu) before the result
  /// is published -- and in particular before the engine can be recycled,
  /// so the watchdog never holds a context pointer into a dead engine.
  struct ActiveEval {
    VMContext *Ctx = nullptr;
    std::chrono::steady_clock::time_point Deadline{};
    bool Armed = false;
  };

  void workerMain(uint32_t Index);
  void watchdogMain();

  ServerConfig Cfg;
  std::unique_ptr<CompileService> CompileSvc;

  mutable std::mutex Mu;
  std::condition_variable WorkCv;   ///< Workers wait for requests/stop.
  std::condition_variable SubmitCv; ///< Producers wait for queue space.
  std::condition_variable IdleCv;   ///< drain() waits for quiescence.
  std::condition_variable WatchdogCv; ///< Watchdog waits for deadlines.
  std::deque<PendingRequest> Requests;
  std::vector<RequestResult> Results;
  std::vector<VMStats> WorkerStats;
  std::vector<uint32_t> WorkerRecycles; ///< Per-worker rebuild count.
  std::vector<ActiveEval> Active;       ///< Indexed by worker; watchdog feed.
  uint32_t BusyWorkers = 0;
  uint64_t NextId = 1;
  bool Stopping = false;
  bool Stopped = false;
  bool WatchdogStop = false;

  std::thread Watchdog; ///< Spawned lazily by the first deadlined request.
  std::vector<std::thread> Threads; ///< Last: started after state is ready.
};

} // namespace serve
} // namespace tracejit

#endif // TRACEJIT_SERVE_SERVER_H
