//===- string.h - Immutable GC strings and the atom table -----------------===//
//
// Strings are immutable, GC-managed byte strings. Property names are
// interned into an atom table so that name identity is pointer identity;
// shapes and the trace recorder rely on this for cheap guards.
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_VM_STRING_H
#define TRACEJIT_VM_STRING_H

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "vm/gc.h"

namespace tracejit {

/// An immutable string cell. Character data is allocated inline after the
/// header.
class String : public GCCell {
public:
  /// Allocate a new string in \p H copying \p Data.
  static String *create(Heap &H, std::string_view Data);

  uint32_t length() const { return Len; }
  const char *data() const {
    return reinterpret_cast<const char *>(this + 1);
  }
  std::string_view view() const { return {data(), Len}; }

  /// True for strings that are interned atoms (never collected while the
  /// atom table lives).
  bool isAtom() const { return Atom; }

  char charAt(uint32_t I) const { return data()[I]; }

  // JIT-visible layout.
  static int32_t lengthOffset();
  static int32_t dataOffset() { return (int32_t)sizeof(String); }

private:
  friend class AtomTable;
  explicit String(uint32_t L) : GCCell(CellKind::String), Len(L) {}

  uint32_t Len;
  bool Atom = false;
};

/// Interns property-name strings. Atoms are permanently rooted.
class AtomTable {
public:
  explicit AtomTable(Heap &H);

  /// Get or create the unique atom for \p Name.
  String *intern(std::string_view Name);

private:
  Heap &TheHeap;
  std::unordered_map<std::string, String *> Map;
};

} // namespace tracejit

#endif // TRACEJIT_VM_STRING_H
