//===- value.h - Tagged jsval-style values (paper Figure 9) ---------------===//
//
// SpiderMonkey-era tagged value words, reproduced from Figure 9 of the
// paper:
//
//   Tag   Type      Description
//   xx1   number    31-bit integer representation
//   000   object    pointer to Object handle
//   010   number    pointer to double handle
//   100   string    pointer to String handle
//   110   special   enumeration for boolean, null, undefined
//
// "Testing tags, unboxing (extracting the untagged value) and boxing
// (creating tagged values) are significant costs. Avoiding these costs is a
// key benefit of tracing." -- we deliberately keep this representation in
// the interpreter so that the tracer has exactly those costs to eliminate.
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_VM_VALUE_H
#define TRACEJIT_VM_VALUE_H

#include <cassert>
#include <cstdint>
#include <string>

namespace tracejit {

class Object;
class String;
struct DoubleCell;

/// Tag assignments (low 3 bits of the value word). Pointers to GC cells are
/// 8-byte aligned so the low 3 bits are free.
enum ValueTag : uint64_t {
  TagObject = 0b000,
  TagDouble = 0b010,
  TagString = 0b100,
  TagSpecial = 0b110,
  TagIntBit = 0b001, ///< Any word with the low bit set is a 31-bit int.
};

/// Payloads for TagSpecial.
enum SpecialPayload : uint64_t {
  SpecialFalse = 0,
  SpecialTrue = 1,
  SpecialNull = 2,
  SpecialUndefined = 3,
};

/// A boxed dynamic value: one machine word with a low-bit tag.
class Value {
public:
  Value() : Bits(makeSpecialBits(SpecialUndefined)) {}

  static Value fromBits(uint64_t B) {
    Value V;
    V.Bits = B;
    return V;
  }
  uint64_t bits() const { return Bits; }

  // --- Constructors --------------------------------------------------------

  /// The tagged integer representation. The paper's 32-bit jsvals hold a
  /// 31-bit payload; on our 64-bit words the natural analog is a full int32
  /// payload in the upper half with the low tag bit set. The mechanism
  /// (low-bit tag test, shift to unbox) is identical.
  static Value makeInt(int32_t I) {
    return fromBits(((uint64_t)(uint32_t)I << 32) | TagIntBit);
  }
  static bool fitsInt31(int64_t I) { return I >= Int31Min && I <= Int31Max; }
  static constexpr int64_t Int31Min = INT32_MIN;
  static constexpr int64_t Int31Max = INT32_MAX;

  static Value makeObject(Object *O) {
    assert(((uintptr_t)O & 7) == 0 && "misaligned object");
    return fromBits((uint64_t)(uintptr_t)O | TagObject);
  }
  static Value makeDoubleCell(DoubleCell *D) {
    assert(((uintptr_t)D & 7) == 0 && "misaligned double cell");
    return fromBits((uint64_t)(uintptr_t)D | TagDouble);
  }
  static Value makeString(String *S) {
    assert(((uintptr_t)S & 7) == 0 && "misaligned string");
    return fromBits((uint64_t)(uintptr_t)S | TagString);
  }
  static Value makeBoolean(bool B) {
    return fromBits(makeSpecialBits(B ? SpecialTrue : SpecialFalse));
  }
  static Value null() { return fromBits(makeSpecialBits(SpecialNull)); }
  static Value undefined() {
    return fromBits(makeSpecialBits(SpecialUndefined));
  }

  // --- Tag tests ------------------------------------------------------------

  bool isInt() const { return (Bits & TagIntBit) != 0; }
  bool isObject() const { return (Bits & 7) == TagObject && Bits != 0; }
  bool isDoubleCell() const { return (Bits & 7) == TagDouble; }
  bool isString() const { return (Bits & 7) == TagString && (Bits >> 3) != 0; }
  bool isSpecial() const { return (Bits & 7) == TagSpecial; }
  bool isBoolean() const {
    return isSpecial() && specialPayload() <= SpecialTrue;
  }
  bool isNull() const { return Bits == makeSpecialBits(SpecialNull); }
  bool isUndefined() const { return Bits == makeSpecialBits(SpecialUndefined); }
  bool isNumber() const { return isInt() || isDoubleCell(); }

  // --- Unboxing --------------------------------------------------------------

  int32_t toInt() const {
    assert(isInt());
    return (int32_t)(Bits >> 32);
  }
  Object *toObject() const {
    assert(isObject());
    return reinterpret_cast<Object *>(Bits & ~(uint64_t)7);
  }
  DoubleCell *toDoubleCell() const {
    assert(isDoubleCell());
    return reinterpret_cast<DoubleCell *>(Bits & ~(uint64_t)7);
  }
  String *toString() const {
    assert(isString());
    return reinterpret_cast<String *>(Bits & ~(uint64_t)7);
  }
  bool toBoolean() const {
    assert(isBoolean());
    return specialPayload() == SpecialTrue;
  }
  uint64_t specialPayload() const {
    assert(isSpecial());
    return Bits >> 3;
  }

  /// Numeric value of an int or double box.
  double numberValue() const;

  /// JS ToBoolean.
  bool truthy() const;

  bool operator==(const Value &O) const { return Bits == O.Bits; }
  bool operator!=(const Value &O) const { return Bits != O.Bits; }

private:
  static constexpr uint64_t makeSpecialBits(uint64_t Payload) {
    return (Payload << 3) | TagSpecial;
  }

  uint64_t Bits;
};

static_assert(sizeof(Value) == 8, "Value must be one machine word");

/// Format a number the way JavaScript's ToString does for the cases we
/// support (integral doubles print without a fraction; shortest round-trip
/// representation otherwise).
std::string numberToString(double D);

/// Render any value for `print` and string concatenation.
std::string valueToString(const Value &V);

} // namespace tracejit

#endif // TRACEJIT_VM_VALUE_H
