//===- object.h - Shape-based objects, dense arrays, functions ------------===//
//
// Objects map interned property names to value slots through a shared Shape
// (paper §6). Dense arrays keep elements in a contiguous boxed vector with
// an explicit length, matching the "dense array" fast path the paper's
// getprop/setelem bytecodes special-case. Function objects wrap either a
// compiled script or a native (FFI) entry point.
//
// Slot and element storage are raw arrays (not std::vector) because the
// trace compiler emits direct loads at fixed byte offsets from the object
// pointer, guarded on the shape -- exactly the "two or three loads" the
// paper describes for a specialized property read (§3.1).
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_VM_OBJECT_H
#define TRACEJIT_VM_OBJECT_H

#include <cstddef>
#include <cstdint>

#include "vm/gc.h"
#include "vm/shape.h"
#include "vm/string.h"

namespace tracejit {

struct FunctionScript;
class Interpreter;

/// Signature of an untraceable native: operates on boxed values through the
/// interpreter API (the paper's classic FFI).
using NativeFn = Value (*)(Interpreter &I, Value ThisV, const Value *Args,
                           uint32_t ArgC);

/// What an Object is.
enum class ObjectKind : uint8_t {
  Plain,    ///< Shape-based property map.
  Array,    ///< Dense array: elements + length, plus shape for names.
  Function, ///< Callable; script or native.
};

class Object : public GCCell {
public:
  static Object *create(Heap &H, ShapeTree &Shapes);
  static Object *createArray(Heap &H, ShapeTree &Shapes, uint32_t Length);
  static Object *createFunction(Heap &H, ShapeTree &Shapes,
                                FunctionScript *Script);
  static Object *createNativeFunction(Heap &H, ShapeTree &Shapes, NativeFn Fn,
                                      String *Name);
  ~Object();

  ObjectKind kind() const { return OKind; }
  bool isArray() const { return OKind == ObjectKind::Array; }
  bool isFunction() const { return OKind == ObjectKind::Function; }

  Shape *shape() const { return TheShape; }
  uint32_t shapeId() const { return TheShape->id(); }

  // --- Named properties ----------------------------------------------------

  /// Read own property \p Name; returns undefined if absent (we do not model
  /// prototype chains on plain data objects -- see DESIGN.md).
  Value getProperty(String *Name) const {
    int Slot = TheShape->lookup(Name);
    return Slot < 0 ? Value::undefined() : NamedSlots[Slot];
  }

  bool hasProperty(String *Name) const { return TheShape->lookup(Name) >= 0; }

  /// Create or update property \p Name. Creating transitions the shape.
  void setProperty(ShapeTree &Shapes, String *Name, Value V);

  /// Slot index for \p Name or -1; used by the tracer to compile direct
  /// slot loads guarded on the shape.
  int slotOf(String *Name) const { return TheShape->lookup(Name); }
  Value slotValue(uint32_t Slot) const { return NamedSlots[Slot]; }
  const Value *namedSlotsData() const { return NamedSlots; }

  /// Overwrite an existing slot. IC fast path for a SetProp whose cached
  /// shape matched: the slot is known in-bounds because the shape owns it.
  void setSlotValue(uint32_t Slot, Value V) { NamedSlots[Slot] = V; }

  /// Apply a memoized shape transition: grow storage to \p To's slot count,
  /// install \p To, write the new property's value into \p Slot. Valid only
  /// when \p To == ShapeTree::transition(shape(), Name) and
  /// \p Slot == shape()->slotCount() -- which the SetProp IC guarantees by
  /// caching (From, To, Slot) triples observed from the generic path.
  void applyTransition(Shape *To, uint32_t Slot, Value V);

  // --- Dense array elements --------------------------------------------------

  uint32_t arrayLength() const { return ArrayLen; }
  /// Read element \p I; undefined out of bounds ("holes" read as undefined).
  Value getElement(uint32_t I) const {
    if (I < ElemCapacity)
      return ElemData[I];
    return Value::undefined();
  }
  /// Write element \p I, growing the dense storage and length as needed.
  void setElement(Heap &H, uint32_t I, Value V);

  const Value *elementsData() const { return ElemData; }
  uint32_t elementsCapacity() const { return ElemCapacity; }

  // --- Functions --------------------------------------------------------------

  FunctionScript *script() const { return Script; }
  NativeFn native() const { return Native; }
  String *functionName() const { return FnName; }

  /// GC tracing: mark everything this object references.
  void trace(Marker &M) const;

  // --- JIT-visible layout -----------------------------------------------------
  // The trace compiler loads these fields directly from native code.
  static int32_t kindOffset();
  static int32_t shapeOffset();
  static int32_t namedSlotsOffset();
  static int32_t elemDataOffset();
  static int32_t elemCapacityOffset();
  static int32_t arrayLenOffset();

private:
  Object(ObjectKind K, Shape *S) : GCCell(CellKind::Object), OKind(K),
                                   TheShape(S) {}
  static Object *alloc(Heap &H, ObjectKind K, Shape *S);
  void growNamedSlots(uint32_t Count);

  ObjectKind OKind;
  Shape *TheShape;
  Value *NamedSlots = nullptr;
  uint32_t NamedCapacity = 0;
  Value *ElemData = nullptr;
  uint32_t ElemCapacity = 0;
  uint32_t ArrayLen = 0;
  FunctionScript *Script = nullptr;
  NativeFn Native = nullptr;
  String *FnName = nullptr;
};

} // namespace tracejit

#endif // TRACEJIT_VM_OBJECT_H
