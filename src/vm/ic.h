//===- ic.h - Per-site property inline caches -------------------------------===//
//
// Polymorphic inline caches for the interpreter's property accesses. Every
// GetProp/SetProp bytecode carries a u16 index into its script's IC table;
// the interpreter consults the cache before falling back to the dictionary
// (shape hash) lookup, and the trace recorder reads the same cache to emit
// shape guards without re-deriving facts the interpreter already proved.
//
// An IC walks the classic mono -> poly -> mega ladder:
//
//   Uninit: never executed. The first miss fills one entry (Mono).
//   Mono:   one (shape, kind) pair seen; the hit path is two compares and
//           a slot load.
//   Poly:   up to MaxEntries pairs, probed linearly.
//   Mega:   more receivers than entries. The site stops learning (misses
//           no longer refill) but keeps serving its frozen entries --
//           they stay valid forever, see below -- and the oracle remembers
//           the megamorphism so the recorder aborts instead of recording
//           an always-failing guard.
//
// Entries key on the Shape pointer. Shapes are immutable and engine-
// lifetime (vm/shape.h), so adding a property moves the object to a
// *different* shape and stale entries self-invalidate by simply failing to
// match; no per-transition invalidation hook is needed. Explicit whole-
// table invalidation (VMContext::invalidateAllICs) exists for the code-
// cache flush path, which resets all speculation state at once.
//
// Entries also key on the ObjectKind: plain objects and arrays share the
// empty root shape, but `arr.length` is not a named slot -- without the
// kind guard a length site trained on an array could wrongly hit a plain
// object of the same shape (and vice versa).
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_VM_IC_H
#define TRACEJIT_VM_IC_H

#include <cstdint>

namespace tracejit {

class Shape;

enum class ICState : uint8_t {
  Uninit, ///< Site never executed with a cacheable receiver.
  Mono,   ///< Exactly one entry.
  Poly,   ///< 2..MaxEntries entries.
  Mega,   ///< Overflowed; entries frozen, misses stop refilling.
};

inline const char *icStateName(ICState S) {
  switch (S) {
  case ICState::Uninit:
    return "uninit";
  case ICState::Mono:
    return "mono";
  case ICState::Poly:
    return "poly";
  case ICState::Mega:
    return "mega";
  }
  return "?";
}

/// What a matching entry means for this site. The property name is static
/// per bytecode, so it is not stored: every entry of one IC is about the
/// same name.
enum class ICEntryKind : uint8_t {
  Slot,         ///< Named slot present: read/write NamedSlots[Slot].
  Absent,       ///< GetProp of a name this shape lacks: undefined.
  ArrayLength,  ///< GetProp "length" on an array: read ArrayLen.
  StringLength, ///< GetProp "length" on a string receiver.
  Transition,   ///< SetProp adding the name: ShapePtr -> Target, slot Slot.
};

struct ICEntry {
  Shape *ShapePtr = nullptr; ///< Receiver shape guard (objects).
  Shape *Target = nullptr;   ///< Transition: destination shape.
  uint32_t Slot = 0;         ///< Named slot index (Slot/Transition).
  ICEntryKind Kind = ICEntryKind::Slot;
  uint8_t KindGuard = 0; ///< Receiver ObjectKind, as its raw value.
};

struct PropertyIC {
  static constexpr uint8_t MaxEntries = 4;

  ICState State = ICState::Uninit;
  uint8_t N = 0;
  ICEntry Entries[MaxEntries];

  void reset() {
    State = ICState::Uninit;
    N = 0;
  }
};

} // namespace tracejit

#endif // TRACEJIT_VM_IC_H
