//===- string.cpp - Immutable GC strings and atoms ------------------------===//

#include "vm/string.h"

#include <cstdlib>
#include <cstring>

namespace tracejit {

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winvalid-offsetof"
int32_t String::lengthOffset() { return (int32_t)offsetof(String, Len); }
#pragma GCC diagnostic pop

String *String::create(Heap &H, std::string_view Data) {
  void *Mem = std::malloc(sizeof(String) + Data.size() + 1);
  auto *S = new (Mem) String((uint32_t)Data.size());
  char *Chars = reinterpret_cast<char *>(S + 1);
  std::memcpy(Chars, Data.data(), Data.size());
  Chars[Data.size()] = 0;
  H.registerCell(S, sizeof(String) + Data.size() + 1);
  return S;
}

AtomTable::AtomTable(Heap &H) : TheHeap(H) {
  H.addRootProvider([this](Marker &M) {
    for (auto &[_, S] : Map)
      M.markCell(S);
  });
}

String *AtomTable::intern(std::string_view Name) {
  auto It = Map.find(std::string(Name));
  if (It != Map.end())
    return It->second;
  String *S = String::create(TheHeap, Name);
  S->Atom = true;
  Map.emplace(std::string(Name), S);
  return S;
}

} // namespace tracejit
