//===- gc.cpp - Exact stop-the-world mark-and-sweep -----------------------===//

#include "vm/gc.h"

#include <cmath>
#include <cstdlib>

#include "vm/object.h"
#include "vm/string.h"

namespace tracejit {

Heap::Heap() = default;

Heap::~Heap() {
  for (GCCell *C : Cells) {
    switch (C->Kind) {
    case CellKind::Object:
      static_cast<Object *>(C)->~Object();
      break;
    case CellKind::String:
      static_cast<String *>(C)->~String();
      break;
    case CellKind::Double:
      static_cast<DoubleCell *>(C)->~DoubleCell();
      break;
    }
    std::free(C);
  }
}

DoubleCell *Heap::allocDouble(double D) {
  void *Mem = std::malloc(sizeof(DoubleCell));
  auto *Cell = new (Mem) DoubleCell(D);
  registerCell(Cell, sizeof(DoubleCell));
  return Cell;
}

Value Heap::boxNumber(double D) {
  // Interpreter policy: keep integers in the 31-bit tagged representation
  // whenever possible (paper §3.1, "representation specialization: numbers").
  if (D >= Value::Int31Min && D <= Value::Int31Max) {
    int32_t I = (int32_t)D;
    if ((double)I == D && !(D == 0 && std::signbit(D)))
      return Value::makeInt(I);
  }
  return boxDouble(D);
}

void Heap::registerCell(GCCell *C, size_t Bytes) {
  Cells.push_back(C);
  BytesAllocated += Bytes;
}

void Marker::markValue(const Value &V) {
  if (V.isObject())
    markCell(V.toObject());
  else if (V.isString())
    markCell(V.toString());
  else if (V.isDoubleCell())
    markCell(V.toDoubleCell());
}

void Marker::markCell(GCCell *C) {
  if (!C || C->Marked)
    return;
  C->Marked = true;
  WorkList.push_back(C);
}

void Heap::collect() {
  ++NumCollections;
  Marker M;
  for (auto &Provider : RootProviders)
    Provider(M);
  while (!M.WorkList.empty()) {
    GCCell *C = M.WorkList.back();
    M.WorkList.pop_back();
    if (C->Kind == CellKind::Object)
      static_cast<Object *>(C)->trace(M);
  }
  sweep();
}

void Heap::sweep() {
  size_t Live = 0;
  size_t LiveBytes = 0;
  for (GCCell *C : Cells) {
    if (C->Marked) {
      C->Marked = false;
      Cells[Live++] = C;
      switch (C->Kind) {
      case CellKind::Object:
        LiveBytes += sizeof(Object);
        break;
      case CellKind::String:
        LiveBytes += sizeof(String) + static_cast<String *>(C)->length();
        break;
      case CellKind::Double:
        LiveBytes += sizeof(DoubleCell);
        break;
      }
      continue;
    }
    switch (C->Kind) {
    case CellKind::Object:
      static_cast<Object *>(C)->~Object();
      break;
    case CellKind::String:
      static_cast<String *>(C)->~String();
      break;
    case CellKind::Double:
      static_cast<DoubleCell *>(C)->~DoubleCell();
      break;
    }
    std::free(C);
  }
  Cells.resize(Live);
  BytesAllocated = LiveBytes;
  // Grow the trigger so steady-state heaps do not thrash.
  size_t MinTrigger = 4 * 1024 * 1024;
  GCTrigger = LiveBytes * 2 > MinTrigger ? LiveBytes * 2 : MinTrigger;
}

} // namespace tracejit
