//===- value.cpp - Tagged value helpers ------------------------------------===//

#include "vm/value.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "vm/gc.h"
#include "vm/object.h"
#include "vm/string.h"

namespace tracejit {

bool Value::truthy() const {
  if (isInt())
    return toInt() != 0;
  if (isDoubleCell()) {
    double D = toDoubleCell()->Val;
    return D != 0 && !std::isnan(D);
  }
  if (isString())
    return toString()->length() != 0;
  if (isSpecial())
    return specialPayload() == SpecialTrue;
  return true; // objects
}

std::string numberToString(double D) {
  if (std::isnan(D))
    return "NaN";
  if (std::isinf(D))
    return D > 0 ? "Infinity" : "-Infinity";
  // Integral values in the safe range print without a fraction, as in JS.
  if (D == std::floor(D) && std::fabs(D) < 1e15) {
    char Buf[32];
    snprintf(Buf, sizeof(Buf), "%.0f", D);
    return Buf;
  }
  // Shortest round-trip representation.
  char Buf[64];
  auto [P, Ec] = std::to_chars(Buf, Buf + sizeof(Buf), D);
  (void)Ec;
  return std::string(Buf, P);
}

std::string valueToString(const Value &V) {
  if (V.isInt())
    return std::to_string(V.toInt());
  if (V.isDoubleCell())
    return numberToString(V.toDoubleCell()->Val);
  if (V.isString())
    return std::string(V.toString()->view());
  if (V.isSpecial()) {
    switch (V.specialPayload()) {
    case SpecialFalse:
      return "false";
    case SpecialTrue:
      return "true";
    case SpecialNull:
      return "null";
    default:
      return "undefined";
    }
  }
  Object *O = V.toObject();
  if (O->isFunction())
    return "[function]";
  if (O->isArray()) {
    std::string S;
    for (uint32_t I = 0; I < O->arrayLength(); ++I) {
      if (I)
        S += ",";
      Value E = O->getElement(I);
      if (!E.isUndefined() && !E.isNull())
        S += valueToString(E);
    }
    return S;
  }
  return "[object Object]";
}

} // namespace tracejit
