//===- gc.h - Exact stop-the-world mark-and-sweep heap --------------------===//
//
// "The garbage collector is an exact, non-generational, stop-the-world
// mark-and-sweep collector." (paper §6). Cells are objects, strings, and
// boxed double handles. Collection is scheduled through the VM's preempt
// flag and runs only at interpreter safe points (loop edges and allocation
// sites in the interpreter); traces never collect directly -- allocating
// helpers called from native code merely request a collection, which the
// preemption guard at the next loop edge then services (paper §6.4).
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_VM_GC_H
#define TRACEJIT_VM_GC_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "vm/value.h"

namespace tracejit {

/// Kinds of heap cells.
enum class CellKind : uint8_t {
  Object,
  String,
  Double,
};

/// Common header of every GC-managed cell.
struct GCCell {
  CellKind Kind;
  bool Marked = false;

  explicit GCCell(CellKind K) : Kind(K) {}
};

/// A heap-boxed double ("double handle", paper Fig. 9 tag 010).
struct DoubleCell : GCCell {
  double Val;
  explicit DoubleCell(double D) : GCCell(CellKind::Double), Val(D) {}

  /// JIT-visible offset of the payload (compiled unbox loads).
  static int32_t valueOffset() { return 8; }
};
static_assert(sizeof(DoubleCell) == 16, "double handle layout");

inline double Value::numberValue() const {
  if (isInt())
    return (double)toInt();
  return toDoubleCell()->Val;
}

/// The heap. Owns all cells; exposes allocation, rooting hooks, and
/// collection. Non-moving, so raw pointers embedded in compiled traces stay
/// valid as long as the trace cache roots them.
class Heap {
public:
  Heap();
  ~Heap();
  Heap(const Heap &) = delete;
  Heap &operator=(const Heap &) = delete;

  DoubleCell *allocDouble(double D);
  Value boxDouble(double D) { return Value::makeDoubleCell(allocDouble(D)); }

  /// Box a numeric result: 31-bit-representable integers get the int tag,
  /// everything else a double handle. This is the interpreter's "use integer
  /// representations as much as it can" rule (paper §3.1).
  Value boxNumber(double D);

  /// Register a cell allocated by a sibling module (Object/String know their
  /// own layout; they call this from their factory functions).
  void registerCell(GCCell *C, size_t Bytes);

  /// Root providers are callbacks that mark live cells; the interpreter,
  /// global table, atom table, and trace cache each install one.
  void addRootProvider(std::function<void(class Marker &)> Fn) {
    RootProviders.push_back(std::move(Fn));
  }

  /// True when allocation pressure wants a collection; the VM mirrors this
  /// into the preempt flag.
  bool wantsGC() const { return BytesAllocated > GCTrigger; }

  /// Run a full mark-and-sweep collection. Caller must be at a safe point.
  void collect();

  size_t bytesAllocated() const { return BytesAllocated; }
  uint64_t collections() const { return NumCollections; }

  /// Test hook: force the next wantsGC() to be true.
  void forceGCNext() { GCTrigger = 0; }

private:
  void sweep();

  std::vector<GCCell *> Cells;
  size_t BytesAllocated = 0;
  size_t GCTrigger = 4 * 1024 * 1024;
  uint64_t NumCollections = 0;
  std::vector<std::function<void(class Marker &)>> RootProviders;
};

/// Marking interface handed to root providers and cell tracers.
class Marker {
public:
  void markValue(const Value &V);
  void markCell(GCCell *C);

private:
  friend class Heap;
  std::vector<GCCell *> WorkList;
};

} // namespace tracejit

#endif // TRACEJIT_VM_GC_H
