//===- object.cpp - Shape-based objects and dense arrays ------------------===//

#include "vm/object.h"

#include <cstdlib>
#include <cstring>

namespace tracejit {

Object *Object::alloc(Heap &H, ObjectKind K, Shape *S) {
  void *Mem = std::malloc(sizeof(Object));
  auto *O = new (Mem) Object(K, S);
  H.registerCell(O, sizeof(Object));
  return O;
}

Object::~Object() {
  std::free(NamedSlots);
  std::free(ElemData);
}

Object *Object::create(Heap &H, ShapeTree &Shapes) {
  return Object::alloc(H, ObjectKind::Plain, Shapes.emptyShape());
}

Object *Object::createArray(Heap &H, ShapeTree &Shapes, uint32_t Length) {
  Object *O = Object::alloc(H, ObjectKind::Array, Shapes.emptyShape());
  if (Length) {
    O->ElemData = static_cast<Value *>(std::malloc(sizeof(Value) * Length));
    for (uint32_t I = 0; I < Length; ++I)
      O->ElemData[I] = Value::undefined();
    O->ElemCapacity = Length;
  }
  O->ArrayLen = Length;
  return O;
}

Object *Object::createFunction(Heap &H, ShapeTree &Shapes,
                               FunctionScript *Script) {
  Object *O = Object::alloc(H, ObjectKind::Function, Shapes.emptyShape());
  O->Script = Script;
  return O;
}

Object *Object::createNativeFunction(Heap &H, ShapeTree &Shapes, NativeFn Fn,
                                     String *Name) {
  Object *O = Object::alloc(H, ObjectKind::Function, Shapes.emptyShape());
  O->Native = Fn;
  O->FnName = Name;
  return O;
}

void Object::growNamedSlots(uint32_t Count) {
  if (Count <= NamedCapacity)
    return;
  uint32_t NewCap = NamedCapacity ? NamedCapacity * 2 : 4;
  if (NewCap < Count)
    NewCap = Count;
  auto *NewSlots = static_cast<Value *>(std::malloc(sizeof(Value) * NewCap));
  if (NamedSlots)
    std::memcpy(NewSlots, NamedSlots, sizeof(Value) * NamedCapacity);
  for (uint32_t I = NamedCapacity; I < NewCap; ++I)
    NewSlots[I] = Value::undefined();
  std::free(NamedSlots);
  NamedSlots = NewSlots;
  NamedCapacity = NewCap;
}

void Object::setProperty(ShapeTree &Shapes, String *Name, Value V) {
  int Slot = TheShape->lookup(Name);
  if (Slot < 0) {
    Slot = (int)TheShape->slotCount();
    TheShape = Shapes.transition(TheShape, Name);
    growNamedSlots(TheShape->slotCount());
  }
  NamedSlots[Slot] = V;
}

void Object::applyTransition(Shape *To, uint32_t Slot, Value V) {
  growNamedSlots(To->slotCount());
  TheShape = To;
  NamedSlots[Slot] = V;
}

void Object::setElement(Heap &H, uint32_t I, Value V) {
  (void)H;
  if (I >= ElemCapacity) {
    uint32_t NewCap = ElemCapacity ? ElemCapacity * 2 : 8;
    if (NewCap < I + 1)
      NewCap = I + 1;
    auto *NewData = static_cast<Value *>(std::malloc(sizeof(Value) * NewCap));
    if (ElemData)
      std::memcpy(NewData, ElemData, sizeof(Value) * ElemCapacity);
    for (uint32_t J = ElemCapacity; J < NewCap; ++J)
      NewData[J] = Value::undefined();
    std::free(ElemData);
    ElemData = NewData;
    ElemCapacity = NewCap;
  }
  ElemData[I] = V;
  if (I >= ArrayLen)
    ArrayLen = I + 1;
}

void Object::trace(Marker &M) const {
  for (uint32_t I = 0; I < NamedCapacity; ++I)
    M.markValue(NamedSlots[I]);
  for (uint32_t I = 0; I < ElemCapacity; ++I)
    M.markValue(ElemData[I]);
  if (FnName)
    M.markCell(FnName);
}

// offsetof on a non-standard-layout type is conditionally supported; GCC and
// Clang both support it for this layout. Silence the pedantic warning.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winvalid-offsetof"
int32_t Object::kindOffset() { return (int32_t)offsetof(Object, OKind); }
int32_t Object::shapeOffset() { return (int32_t)offsetof(Object, TheShape); }
int32_t Object::namedSlotsOffset() {
  return (int32_t)offsetof(Object, NamedSlots);
}
int32_t Object::elemDataOffset() { return (int32_t)offsetof(Object, ElemData); }
int32_t Object::elemCapacityOffset() {
  return (int32_t)offsetof(Object, ElemCapacity);
}
int32_t Object::arrayLenOffset() { return (int32_t)offsetof(Object, ArrayLen); }
#pragma GCC diagnostic pop

} // namespace tracejit
