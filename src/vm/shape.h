//===- shape.h - Shared object shapes (hidden classes) --------------------===//
//
// "Most objects are represented by a shared structural description, called
// the object shape, that maps property names to array indexes" (paper §6).
// Shapes form a transition tree: adding property P to an object with shape
// S yields the unique child shape S.P, so objects created the same way
// share a shape. Each shape carries a small integer id; a trace guard on a
// property access "is a simple equality check on the object shape" (§3.1).
//
// Shapes are engine-lifetime (never collected): the tree is monotonic and
// small in practice, and compiled traces embed shape ids.
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_VM_SHAPE_H
#define TRACEJIT_VM_SHAPE_H

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace tracejit {

class String;

/// One node of the shape transition tree.
class Shape {
public:
  /// Slot index of property \p Name, or -1 if absent.
  int lookup(String *Name) const {
    auto It = Slots.find(Name);
    return It == Slots.end() ? -1 : (int)It->second;
  }

  uint32_t id() const { return Id; }
  uint32_t slotCount() const { return (uint32_t)Slots.size(); }

private:
  friend class ShapeTree;
  Shape(uint32_t Id) : Id(Id) {}

  uint32_t Id;
  std::unordered_map<String *, uint32_t> Slots;
  std::unordered_map<String *, Shape *> Transitions;
};

/// Owns all shapes; hands out the empty root shape and transition children.
class ShapeTree {
public:
  ShapeTree();
  ~ShapeTree();
  ShapeTree(const ShapeTree &) = delete;
  ShapeTree &operator=(const ShapeTree &) = delete;

  Shape *emptyShape() const { return Root; }

  /// The shape reached from \p From by defining a new property \p Name. The
  /// new property's slot index is From->slotCount().
  Shape *transition(Shape *From, String *Name);

  uint32_t shapeCount() const { return (uint32_t)All.size(); }

private:
  Shape *Root;
  std::vector<Shape *> All;
  uint32_t NextId = 1;
};

} // namespace tracejit

#endif // TRACEJIT_VM_SHAPE_H
