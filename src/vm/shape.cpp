//===- shape.cpp - Shared object shapes ------------------------------------===//

#include "vm/shape.h"

namespace tracejit {

ShapeTree::ShapeTree() {
  Root = new Shape(NextId++);
  All.push_back(Root);
}

ShapeTree::~ShapeTree() {
  for (Shape *S : All)
    delete S;
}

Shape *ShapeTree::transition(Shape *From, String *Name) {
  auto It = From->Transitions.find(Name);
  if (It != From->Transitions.end())
    return It->second;
  Shape *Child = new Shape(NextId++);
  Child->Slots = From->Slots;
  Child->Slots.emplace(Name, From->slotCount());
  From->Transitions.emplace(Name, Child);
  All.push_back(Child);
  return Child;
}

} // namespace tracejit
