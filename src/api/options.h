//===- options.h - Engine configuration ------------------------------------===//
//
// Every tunable the paper names is exposed here with the paper's default:
// hot-loop threshold 2 (§3.2 "Starting a tree"), blacklist backoff 32 and
// attempt limit 2 (§3.3), plus switches used by the ablation benchmarks.
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_API_OPTIONS_H
#define TRACEJIT_API_OPTIONS_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace tracejit {

class CompileService;

/// Which backend compiles/executes LIR fragments.
enum class Backend : uint8_t {
  Native,   ///< x86-64 machine code (the nanojit analog).
  Executor, ///< Portable LIR interpreter; reference semantics.
};

/// Which compilation tiers the engine may use (see trace/tier.h for the
/// per-loop state machine and DESIGN.md "Compilation tiers").
enum class TierMode : uint8_t {
  Trace,  ///< Tracing JIT only -- bit-for-bit the paper's pipeline,
          ///< including terminal blacklisting (§3.3).
  Method, ///< Whole-loop-body method compiler only; no tracing.
  Hybrid, ///< Trace first; trace-hostile loops (megamorphic sites, branch
          ///< overflow, repeated aborts) promote to the method tier
          ///< instead of blacklisting.
};

const char *tierModeName(TierMode M);
/// Parse a tier mode name ("trace", "method", "hybrid"); false if unknown.
bool parseTierMode(std::string_view Name, TierMode &Out);
/// Default tier mode for new EngineOptions: TierMode::Trace unless the
/// TRACEJIT_TIER environment variable (trace|method|hybrid) overrides it.
/// The CI method-forced leg runs the whole test suite this way.
TierMode defaultTierMode();

/// Failure sites the deterministic fault injector can trigger. Each site
/// corresponds to one real-world failure mode of the code-cache lifecycle
/// or the heap-quota governor.
enum class FaultSite : uint8_t {
  ExecMapFail,   ///< mmap of the executable pool fails (hardened kernels).
  ExecAllocFail, ///< A code-cache reservation cannot be satisfied.
  ProtectFail,   ///< mprotect W^X flip fails.
  CompileFail,   ///< The backend fails to compile a fragment.
  HeapAllocFail, ///< An allocation site acts as if collection could not get
                 ///< the heap under quota: the HeapQuota interrupt is raised
                 ///< and the script terminates as OutOfMemory.
};

const char *faultSiteName(FaultSite S);

/// Deterministic fault-injection hook: return true to force the named
/// failure path. Stateful callbacks (fail the Nth allocation, fail once)
/// are the caller's business; the engine only asks. Empty = no injection.
using FaultHook = std::function<bool(FaultSite)>;

/// Default for EngineOptions::VerifyLir: always-on wherever assertions are
/// live (this project strips NDEBUG from optimized builds, so that includes
/// the default RelWithDebInfo tier) or a sanitizer is active; opt-in in
/// true Release (-DNDEBUG) builds, where speculation bugs are instead
/// caught by guards at runtime.
#if !defined(NDEBUG) || defined(__SANITIZE_ADDRESS__)
#define TRACEJIT_VERIFY_LIR_DEFAULT true
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(undefined_behavior_sanitizer)
#define TRACEJIT_VERIFY_LIR_DEFAULT true
#else
#define TRACEJIT_VERIFY_LIR_DEFAULT false
#endif
#else
#define TRACEJIT_VERIFY_LIR_DEFAULT false
#endif

/// Default for EngineOptions::EnableIC. CMake exposes it as the cache
/// variable TRACEJIT_IC_DEFAULT so the CI fallback leg can build a tree
/// whose engines run IC-less unless a test opts back in.
#if !defined(TRACEJIT_IC_DEFAULT)
#define TRACEJIT_IC_DEFAULT 1
#endif

/// One named stage of the LIR optimization pipeline: the paper's §5.1
/// forward/backward filters plus the loop-optimizer passes (lir/opt.h).
/// The enum is a registry, not an order -- execution order is fixed by the
/// pipeline (forward filters stream during recording; trace passes run in
/// optimizeTrace(): DeadStore, Dce, GuardElim, IndVar, Hoist, Dce).
enum class OptPass : uint8_t {
  ExprSimp,  ///< Forward: constant folding + algebraic identities.
  Cse,       ///< Forward: common subexpression elimination.
  DeadStore, ///< Backward: dead data-stack / call-stack store elim.
  Dce,       ///< Backward: dead code elimination.
  GuardElim, ///< Trace: dominating-guard elimination (GVN with memory
             ///< generations; drops re-checks of already-guarded facts).
  IndVar,    ///< Trace: induction-variable recognition; folds per-iteration
             ///< overflow checks under dominating range guards.
  Hoist,     ///< Trace: loop-invariant code + guard hoisting into a
             ///< once-per-entry prologue region (LuaJIT-style).
  NumPasses
};

const char *optPassName(OptPass P);
/// Parse a pass name ("cse", "guardelim", ...); false when unknown.
bool parseOptPass(std::string_view Name, OptPass &Out);

/// The set of enabled passes. Construct from an -O level and adjust with
/// add/remove (the `--jit-opt=[+|-]pass,...` surface); the pipeline itself
/// decides ordering. Level 0 is exactly the paper's §5.1 filter set (the
/// pre-optimizer default, bit-for-bit); 1 adds guard elimination; 2 adds
/// the loop passes.
class OptPipeline {
public:
  constexpr OptPipeline() = default; ///< Empty: no passes at all.

  static constexpr OptPipeline level(uint32_t OLevel) {
    uint32_t B = bit(OptPass::ExprSimp) | bit(OptPass::Cse) |
                 bit(OptPass::DeadStore) | bit(OptPass::Dce);
    if (OLevel >= 1)
      B |= bit(OptPass::GuardElim);
    if (OLevel >= 2)
      B |= bit(OptPass::IndVar) | bit(OptPass::Hoist);
    return OptPipeline(B);
  }
  static constexpr OptPipeline all() {
    return OptPipeline((1u << (uint32_t)OptPass::NumPasses) - 1);
  }

  constexpr bool has(OptPass P) const { return (Bits & bit(P)) != 0; }
  constexpr OptPipeline &add(OptPass P) {
    Bits |= bit(P);
    return *this;
  }
  constexpr OptPipeline &remove(OptPass P) {
    Bits &= ~bit(P);
    return *this;
  }
  constexpr bool empty() const { return Bits == 0; }
  constexpr bool operator==(const OptPipeline &O) const {
    return Bits == O.Bits;
  }
  constexpr bool operator!=(const OptPipeline &O) const {
    return Bits != O.Bits;
  }

  /// Comma-separated enabled pass names ("exprsimp,cse,..."), or "none".
  std::string describe() const;

private:
  explicit constexpr OptPipeline(uint32_t B) : Bits(B) {}
  static constexpr uint32_t bit(OptPass P) { return 1u << (uint32_t)P; }
  uint32_t Bits = 0;
};

struct EngineOptions {
  /// Master switch; off = pure interpreter (the Figure 10 baseline).
  bool EnableJit = true;

  Backend JitBackend = Backend::Native;

  /// Iterations before a loop header becomes hot ("2 in the current
  /// implementation", §3.2).
  uint32_t HotLoopThreshold = 2;

  /// Side-exit executions before a branch trace is recorded (§3.2
  /// "Extending a tree").
  uint32_t HotExitThreshold = 2;

  /// Passes skipped after a failed recording ("32 in our implementation").
  uint32_t BlacklistBackoff = 32;

  /// Failures before a loop header is blacklisted for good ("2 in our
  /// implementation").
  uint32_t MaxRecordingFailures = 2;

  /// §4: nested trace trees. Off = abort any trace that reaches an inner
  /// loop header (the "give up on outer loops" strawman).
  bool EnableNesting = true;

  /// §6.2: patch hot side exits to jump directly to branch traces.
  /// Off = every transfer goes through the monitor.
  bool EnableStitching = true;

  /// §3.3: blacklisting. Off reproduces the pathological re-record loop.
  /// (Deprecated spelling kept for compatibility: under TierMode::Trace
  /// this is the terminal blacklist; under Hybrid it gates whether
  /// trace-hostile loops may leave the trace tier at all.)
  bool EnableBlacklisting = true;

  // --- Compilation tiers (trace/tier.h) ---------------------------------------

  /// Which tiers the engine may use. Trace (the default) is bit-for-bit
  /// today's pipeline. Hybrid promotes trace-hostile loops to the method
  /// tier where Trace would have blacklisted them; Method skips tracing
  /// entirely. Overridable with the TRACEJIT_TIER environment variable
  /// (trace|method|hybrid), which seeds the default for every engine --
  /// the CI method-forced leg uses this.
  TierMode Tier = defaultTierMode();

  /// Loop-header hits before a Method-mode loop is compiled (TierMode::
  /// Method), and the extra hits a Hybrid promotion waits after promoting
  /// before compiling. Low like HotLoopThreshold, but slightly above it:
  /// method compiles are bigger than trace recordings.
  uint32_t MethodJitThreshold = 8;

  /// §6.4: guard the preempt/GC flag at every loop edge.
  bool EnablePreemptGuard = true;

  /// Enabled LIR optimization passes. Defaults to the full -O2 pipeline;
  /// OptPipeline::level(0) restores the pre-optimizer §5.1 filter set
  /// bit-for-bit. Adjust via "-O0/-O1/-O2" or "--jit-opt=[+|-]pass,...".
  OptPipeline Passes = OptPipeline::level(2);

  /// Hoisted-guard failures at tree entry (ExitKind::Deopt through the
  /// fragment's entry exit) tolerated before the monitor permanently stops
  /// entering that fragment; the loop then re-records against the current
  /// shapes. Guards against enter/deopt thrash when an invariant the
  /// prologue checks (e.g. an object's shape) has changed for good.
  uint32_t EntryDeoptLimit = 8;

  /// §3.2: consult/maintain the oracle for int->double demotion.
  bool EnableOracle = true;

  /// Abort recording beyond this many LIR instructions.
  uint32_t MaxTraceLength = 16384;

  /// Abort recording beyond this scripted-call inline depth.
  uint32_t MaxInlineDepth = 8;

  /// Collect Figure 11 counters (adds a counter increment per fragment
  /// entry and per interpreted bytecode).
  bool CollectStats = false;

  /// Diagnostics: dump recorded LIR / filtered LIR / native code sizes.
  bool DumpLIR = false;
  bool DumpAssembly = false;

  /// LIR verifier (lir/verify.h): a streaming VerifyWriter at the head of
  /// the forward filter pipeline plus a whole-trace pass after the backward
  /// filters, enforcing the straight-line-SSA/type/guard/exit-map
  /// invariants the paper's correctness story rests on. A verifier hit
  /// aborts the recording (AbortReason::VerifyFailed) and blacklists
  /// instead of compiling garbage. On by default in assertion-enabled and
  /// sanitizer builds; opt-in under -DNDEBUG.
  bool VerifyLir = TRACEJIT_VERIFY_LIR_DEFAULT;

  /// Observability: install the built-in stderr log listener (one line per
  /// JIT event; see support/events.h).
  bool LogJitEvents = false;

  /// Observability: buffer the JIT event stream so
  /// Engine::exportTraceEvents() can write Chrome trace-event JSON.
  bool CaptureTraceEvents = false;

  // --- Code-cache lifecycle governance --------------------------------------

  /// Size of the executable code cache (native backend). One contiguous
  /// mapping keeps every fragment within rel32 range for stitching (§6.2);
  /// when a reservation cannot be satisfied the monitor flushes the whole
  /// cache and re-enters monitoring cold.
  size_t CodeCacheBytes = 32 * 1024 * 1024;

  /// Whole-cache flushes tolerated within one eval before the kill switch
  /// permanently disables the JIT for this engine, falling back to the pure
  /// interpreter (the Figure 10 baseline). Guards against flush thrash when
  /// the working set of hot traces can never fit in CodeCacheBytes.
  uint32_t MaxCacheFlushes = 8;

  /// Deterministic fault injection for the code-cache lifecycle; see
  /// FaultSite. Tests use this to force every failure path (map, alloc,
  /// protect, compile) without real memory pressure.
  FaultHook FaultInjector;

  // --- Off-thread compilation (jit/compile_queue.h) ---------------------------

  /// Compile completed traces on a background thread instead of inline at
  /// the loop edge. The interpreter keeps running unjitted until the
  /// fragment is published back at a later loop edge; stale results
  /// (flush, shutdown) are dropped by cache generation. Off (the default)
  /// is bit-for-bit the paper's single-threaded pipeline. Native backend
  /// only; the executor backend ignores this.
  bool OffThreadCompile = false;

  /// Bound on unfinished compile jobs one engine may have in flight
  /// (queued + compiling). At the bound, finished recordings are dropped
  /// with the usual abort backoff (AbortReason::CompileQueueFull) rather
  /// than queued -- backpressure, not an unbounded buffer.
  uint32_t CompileQueueDepth = 8;

  /// Share an external compiler thread instead of spawning one per engine
  /// (the serving harness runs N contexts against one CompileService).
  /// Borrowed; must outlive the engine. Null + OffThreadCompile = the
  /// engine owns a private service.
  CompileService *SharedCompileService = nullptr;

  // --- Interpreter hot path ---------------------------------------------------

  /// Per-site property inline caches (vm/ic.h): GetProp/SetProp probe a
  /// mono/poly shape cache before the dictionary lookup, and the trace
  /// recorder reuses the cached shape+slot when emitting guards. Off
  /// reproduces the seed interpreter's lookup path bit-for-bit.
  bool EnableIC = TRACEJIT_IC_DEFAULT != 0;

  /// Computed-goto threaded dispatch for the interpreter loop. Only
  /// effective when the build detected compiler support (CMake defines
  /// TRACEJIT_COMPUTED_GOTO); otherwise the switch loop runs regardless.
  bool ThreadedDispatch = true;

  // --- Resource governance ----------------------------------------------------

  /// Wall-clock budget for one Engine::eval, in milliseconds; 0 = no
  /// deadline. Enforced cooperatively: the interpreter polls a monotonic
  /// clock every few loop edges and hot traces reach the same check through
  /// their §6.4 preempt guard, so an expired deadline terminates the script
  /// as ErrorKind::Timeout at the next safe point. The engine stays fully
  /// reusable afterwards (heap, trace cache, and ICs intact).
  uint64_t EvalDeadlineMs = 0;

  /// Heap quota, in bytes; 0 = unlimited. When live allocation stays above
  /// the quota even after a collection, the script terminates as
  /// ErrorKind::OutOfMemory instead of growing without bound.
  size_t MaxHeapBytes = 0;

  /// Interpreter call-frame limit; exceeding it raises a structured
  /// ErrorKind::StackOverflow ("too much recursion").
  uint32_t MaxFrames = 2048;

  // --- Static analysis (analysis/analysis.h) ----------------------------------

  /// Run the bytecode abstract interpreter on every parsed script and let
  /// its facts seed the oracle and elide recorder guards. Off restores the
  /// dynamic-only pipeline bit-for-bit ("--no-static-types").
  bool StaticAnalysis = true;

  /// Lint mode ("--analyze"): parse + static analysis only, no execution.
  /// Consumed by the repl; Engine::analyze() is the API surface.
  bool AnalyzeOnly = false;

  /// Testing: at every interpreted loop header, cross-check live slot
  /// types against the static header facts (StaticFactChecks /
  /// StaticFactContradictions counters). The differential fuzz suite runs
  /// with this on and asserts zero contradictions.
  bool ValidateStaticFacts = false;

  /// Apply one command-line style flag ("--ic", "--no-jit", ...) to this
  /// options struct. The single source of truth for engine flags: the repl
  /// and the bench harness both parse through it. Returns false when the
  /// flag is not recognized.
  bool applyFlag(std::string_view Flag);
};

} // namespace tracejit

#endif // TRACEJIT_API_OPTIONS_H
