//===- engine.cpp - Public embedding API ------------------------------------===//

#include "api/engine.h"

#include "frontend/parser.h"
#include "interp/natives.h"
#include "interp/tracehooks.h"

namespace tracejit {

Engine::Engine(const EngineOptions &Opts) : Ctx(Opts) {
  Interp = std::make_unique<Interpreter>(Ctx);
  installStandardGlobals(*Interp);
  // Built-in listeners go live before the monitor exists so construction-
  // time events (e.g. BackendFallback when executable memory is denied)
  // reach them.
  if (Opts.LogJitEvents) {
    LogListener = std::make_unique<LogJitEventListener>();
    Mux.add(LogListener.get());
  }
  if (Opts.CaptureTraceEvents) {
    TraceCapture = std::make_unique<ChromeTraceCollector>();
    Mux.add(TraceCapture.get());
  }
  refreshListenerGate();
  if (Opts.EnableJit) {
    Monitor = createTraceMonitor(Ctx, *Interp);
    Ctx.Monitor = Monitor.get();
  }
}

Engine::~Engine() {
  Ctx.EventListener = nullptr;
  Ctx.Monitor = nullptr; // monitor dies before the context it observes
}

void Engine::refreshListenerGate() {
  Ctx.EventListener = Mux.empty() ? nullptr : &Mux;
}

EvalResult Engine::eval(std::string_view Source) {
  EvalResult R;
  Ctx.HasError = false;
  Ctx.ErrorMessage.clear();
  Ctx.LastResult = Value::undefined();
  if (Monitor)
    Monitor->onEvalStart(); // fresh per-eval cache-flush budget

  EngineError ParseErr;
  FunctionScript *Top = compileSource(Ctx, Source, &ParseErr);
  if (!Top) {
    R.Err = std::move(ParseErr);
    return R;
  }

  {
    ActivityScope T(Ctx.Stats, Activity::Interpret, Ctx.Opts.CollectStats);
    Interp->run(Top);
  }
  Ctx.Stats.stopTiming();
  if (Ctx.HasError) {
    R.Err.Kind = ErrorKind::Runtime;
    R.Err.Message = Ctx.ErrorMessage;
    Ctx.HasError = false;
    return R;
  }
  R.LastValue = Ctx.LastResult;
  return R;
}

EvalResult Engine::eval(std::string_view Source, std::string_view FileName) {
  EvalResult R = eval(Source);
  if (!R.ok())
    R.Err.File = FileName;
  return R;
}

void Engine::setPrintHook(std::function<void(const std::string &)> Hook) {
  Ctx.PrintHook = std::move(Hook);
}

Value Engine::getGlobal(std::string_view Name) {
  String *A = Ctx.Atoms.intern(Name);
  auto It = Ctx.Globals.Index.find(A);
  if (It == Ctx.Globals.Index.end())
    return Value::undefined();
  return Ctx.Globals.Values[It->second];
}

void Engine::setGlobalNumber(std::string_view Name, double V) {
  uint32_t Slot = Ctx.Globals.slotFor(Ctx.Atoms.intern(Name));
  Ctx.Globals.Values[Slot] = Ctx.TheHeap.boxNumber(V);
}

void Engine::registerNative(std::string_view Name, NativeFn Fn) {
  String *A = Ctx.Atoms.intern(Name);
  Object *F = Object::createNativeFunction(Ctx.TheHeap, Ctx.Shapes, Fn, A);
  Ctx.Globals.Values[Ctx.Globals.slotFor(A)] = Value::makeObject(F);
}

VMStats Engine::stats() const {
  if (Monitor)
    Monitor->syncStats();
  return Ctx.Stats;
}

void Engine::addEventListener(JitEventListener *L) {
  Mux.add(L);
  refreshListenerGate();
}

void Engine::removeEventListener(JitEventListener *L) {
  Mux.remove(L);
  refreshListenerGate();
}

std::vector<FragmentProfile> Engine::fragmentProfiles() const {
  std::vector<FragmentProfile> Out;
  if (Monitor)
    Monitor->collectFragmentProfiles(Out);
  return Out;
}

bool Engine::exportTraceEvents(const std::string &Path) const {
  if (!TraceCapture)
    return false;
  return TraceCapture->writeJson(Path);
}

void Engine::flushCodeCache() {
  if (Monitor)
    Monitor->requestCacheFlush();
}

uint32_t Engine::cacheGeneration() const {
  return Monitor ? Monitor->cacheGeneration() : 0;
}

bool Engine::jitDisabled() const {
  return Monitor ? Monitor->jitDisabled() : false;
}

size_t Engine::codeCacheUsed() const {
  return Monitor ? Monitor->codeCacheUsed() : 0;
}

size_t Engine::codeCacheCapacity() const {
  return Monitor ? Monitor->codeCacheCapacity() : 0;
}

uint32_t Engine::pendingCompileJobs() const {
  return Monitor ? Monitor->pendingCompileJobs() : 0;
}

void Engine::pumpCompileQueue() {
  if (Monitor)
    Monitor->pumpCompileQueue();
}

void Engine::waitForCompileQueue() {
  if (Monitor)
    Monitor->waitCompileQueueIdle();
}

} // namespace tracejit
