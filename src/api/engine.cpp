//===- engine.cpp - Public embedding API ------------------------------------===//

#include "api/engine.h"

#include "frontend/parser.h"
#include "interp/natives.h"
#include "interp/tracehooks.h"

namespace tracejit {

Engine::Engine(const EngineOptions &Opts) : Ctx(Opts) {
  Interp = std::make_unique<Interpreter>(Ctx);
  installStandardGlobals(*Interp);
  if (Opts.EnableJit) {
    Monitor = createTraceMonitor(Ctx, *Interp);
    Ctx.Monitor = Monitor.get();
  }
}

Engine::~Engine() {
  Ctx.Monitor = nullptr; // monitor dies before the context it observes
}

Engine::Result Engine::eval(std::string_view Source) {
  Result R;
  Ctx.HasError = false;
  Ctx.ErrorMessage.clear();

  std::string ParseError;
  FunctionScript *Top = compileSource(Ctx, Source, &ParseError);
  if (!Top) {
    R.Ok = false;
    R.Error = "SyntaxError: " + ParseError;
    return R;
  }

  {
    ActivityScope T(Ctx.Stats, Activity::Interpret, Ctx.Opts.CollectStats);
    Interp->run(Top);
  }
  Ctx.Stats.stopTiming();
  if (Ctx.HasError) {
    R.Ok = false;
    R.Error = "RuntimeError: " + Ctx.ErrorMessage;
    Ctx.HasError = false;
  }
  return R;
}

void Engine::setPrintHook(std::function<void(const std::string &)> Hook) {
  Ctx.PrintHook = std::move(Hook);
}

Value Engine::getGlobal(std::string_view Name) {
  String *A = Ctx.Atoms.intern(Name);
  auto It = Ctx.Globals.Index.find(A);
  if (It == Ctx.Globals.Index.end())
    return Value::undefined();
  return Ctx.Globals.Values[It->second];
}

void Engine::setGlobalNumber(std::string_view Name, double V) {
  uint32_t Slot = Ctx.Globals.slotFor(Ctx.Atoms.intern(Name));
  Ctx.Globals.Values[Slot] = Ctx.TheHeap.boxNumber(V);
}

void Engine::registerNative(std::string_view Name, NativeFn Fn) {
  String *A = Ctx.Atoms.intern(Name);
  Object *F = Object::createNativeFunction(Ctx.TheHeap, Ctx.Shapes, Fn, A);
  Ctx.Globals.Values[Ctx.Globals.slotFor(A)] = Value::makeObject(F);
}

} // namespace tracejit
