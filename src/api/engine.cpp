//===- engine.cpp - Public embedding API ------------------------------------===//

#include "api/engine.h"

#include <algorithm>

#include "frontend/parser.h"
#include "interp/natives.h"
#include "interp/tracehooks.h"
#include "trace/oracle.h"

namespace tracejit {

Engine::Engine(const EngineOptions &Opts) : Ctx(Opts) {
  Interp = std::make_unique<Interpreter>(Ctx);
  installStandardGlobals(*Interp);
  // Built-in listeners go live before the monitor exists so construction-
  // time events (e.g. BackendFallback when executable memory is denied)
  // reach them.
  if (Opts.LogJitEvents) {
    LogListener = std::make_unique<LogJitEventListener>();
    Mux.add(LogListener.get());
  }
  if (Opts.CaptureTraceEvents) {
    TraceCapture = std::make_unique<ChromeTraceCollector>();
    Mux.add(TraceCapture.get());
  }
  refreshListenerGate();
  if (Opts.EnableJit) {
    Monitor = createTraceMonitor(Ctx, *Interp);
    Ctx.Monitor = Monitor.get();
  }
}

Engine::~Engine() {
  if (TimerThread.joinable()) {
    {
      std::lock_guard<std::mutex> L(TimerMu);
      TimerStop = true;
    }
    TimerCv.notify_all();
    TimerThread.join();
  }
  Ctx.EventListener = nullptr;
  Ctx.Monitor = nullptr; // monitor dies before the context it observes
}

// --- Deadline timer -----------------------------------------------------------

void Engine::armDeadlineTimer(std::chrono::steady_clock::time_point At) {
  {
    std::lock_guard<std::mutex> L(TimerMu);
    TimerDeadline = At;
    TimerArmed = true;
    if (!TimerThread.joinable())
      TimerThread = std::thread([this] { deadlineTimerMain(); });
  }
  TimerCv.notify_all();
}

void Engine::disarmDeadlineTimer() {
  {
    std::lock_guard<std::mutex> L(TimerMu);
    TimerArmed = false;
  }
  TimerCv.notify_all();
}

void Engine::deadlineTimerMain() {
  std::unique_lock<std::mutex> L(TimerMu);
  while (!TimerStop) {
    if (!TimerArmed) {
      TimerCv.wait(L);
      continue;
    }
    auto Now = std::chrono::steady_clock::now();
    if (Now < TimerDeadline) {
      TimerCv.wait_until(L, TimerDeadline);
      continue;
    }
    // Expired: raise, then keep re-raising every few ms while armed, so a
    // benign safe-point service that consumed the bit alongside a GC
    // request cannot swallow the termination.
    Ctx.requestInterrupt(InterruptDeadline);
    TimerCv.wait_for(L, std::chrono::milliseconds(5));
  }
}

void Engine::refreshListenerGate() {
  Ctx.EventListener = Mux.empty() ? nullptr : &Mux;
}

EvalResult Engine::eval(std::string_view Source) {
  EvalResult R;
  Ctx.HasError = false;
  Ctx.ErrorMessage.clear();
  Ctx.ErrorCode = ErrorKind::Runtime;
  Ctx.ErrorLine = Ctx.ErrorCol = 0;
  Ctx.LastResult = Value::undefined();
  // Drop termination bits left over from a previous request (a watchdog
  // raise that lost the race with request completion) but keep a pending
  // GC request -- the heap's needs outlive any one script.
  Ctx.PreemptFlag.fetch_and(~InterruptTermination, std::memory_order_acq_rel);
  if (Monitor)
    Monitor->onEvalStart(); // fresh per-eval cache-flush budget

  EngineError ParseErr;
  size_t FirstScript = Ctx.Scripts.size();
  FunctionScript *Top = compileSource(Ctx, Source, &ParseErr);
  if (!Top) {
    R.Err = std::move(ParseErr);
    return R;
  }
  // Static facts must exist before execution: with HotLoopThreshold=2 the
  // first recording can start within this very eval.
  if (Ctx.Opts.StaticAnalysis)
    analyzeNewScripts(FirstScript);

  const bool Deadline = Ctx.Opts.EvalDeadlineMs > 0;
  if (Deadline) {
    auto At = std::chrono::steady_clock::now() +
              std::chrono::milliseconds(Ctx.Opts.EvalDeadlineMs);
    Ctx.DeadlineArmed = true;
    Ctx.DeadlineAt = At;
    Ctx.DeadlinePollCountdown = 0;
    armDeadlineTimer(At);
  }
  {
    ActivityScope T(Ctx.Stats, Activity::Interpret, Ctx.Opts.CollectStats);
    Interp->run(Top);
  }
  if (Deadline) {
    disarmDeadlineTimer();
    Ctx.DeadlineArmed = false;
    // A raise that landed after the script finished must not leak into the
    // next request.
    Ctx.PreemptFlag.fetch_and(~InterruptDeadline, std::memory_order_acq_rel);
  }
  Ctx.Stats.stopTiming();
  if (Ctx.HasError) {
    R.Err.Kind = Ctx.ErrorCode == ErrorKind::None ? ErrorKind::Runtime
                                                  : Ctx.ErrorCode;
    R.Err.Line = Ctx.ErrorLine;
    R.Err.Col = Ctx.ErrorCol;
    R.Err.Message = Ctx.ErrorMessage;
    Ctx.HasError = false;
    return R;
  }
  R.LastValue = Ctx.LastResult;
  return R;
}

EvalResult Engine::eval(std::string_view Source, std::string_view FileName) {
  EvalResult R = eval(Source);
  if (!R.ok())
    R.Err.File = FileName;
  return R;
}

void Engine::analyzeNewScripts(size_t FirstScript) {
  for (size_t I = FirstScript; I < Ctx.Scripts.size(); ++I) {
    FunctionScript *S = Ctx.Scripts[I].get();
    if (Ctx.Analyses.count(S))
      continue;
    std::unique_ptr<ScriptAnalysis> A = analyzeScript(*S, Ctx.Globals.size());
    ++Ctx.Stats.AnalysisRuns;
    Ctx.Stats.AnalysisFacts += A->factCount();
    Ctx.Stats.AnalysisDiagnostics += A->Diags.size();
    if (Monitor && A->Converged) {
      // Seed the oracle before any recording sees this script: proven
      // int-and-double slots get their §3.2 demotion fact up front, and
      // statically unbounded property sites never get a doomed first
      // recording.
      for (uint32_t G : A->DemoteGlobals) {
        Monitor->noteStaticDemotion(Oracle::globalKey(G));
        ++Ctx.Stats.StaticDemotionsSeeded;
      }
      for (uint32_t L : A->DemoteLocals) {
        Monitor->noteStaticDemotion(Oracle::localKey(S->Id, L));
        ++Ctx.Stats.StaticDemotionsSeeded;
      }
      for (uint32_t Pc : A->MegamorphicSites) {
        Monitor->notePropSite(S->Id, Pc, /*Megamorphic=*/true);
        ++Ctx.Stats.StaticMegaSeeded;
      }
    }
    if (Ctx.EventListener) {
      JitEvent E;
      E.Kind = JitEventKind::AnalysisRan;
      E.ScriptId = S->Id;
      E.Arg0 = A->factCount();
      E.Arg1 = A->Diags.size();
      Ctx.emitEvent(E);
    }
    Ctx.Analyses[S] = std::move(A);
  }
}

Engine::AnalysisReport Engine::analyze(std::string_view Source,
                                       std::string_view FileName) {
  AnalysisReport R;
  EngineError ParseErr;
  size_t FirstScript = Ctx.Scripts.size();
  FunctionScript *Top = compileSource(Ctx, Source, &ParseErr);
  if (!Top) {
    R.Err = std::move(ParseErr);
    if (!FileName.empty())
      R.Err.File = FileName;
    return R;
  }
  R.Ok = true;
  analyzeNewScripts(FirstScript);
  for (size_t I = FirstScript; I < Ctx.Scripts.size(); ++I) {
    auto It = Ctx.Analyses.find(Ctx.Scripts[I].get());
    if (It == Ctx.Analyses.end())
      continue;
    for (const AnalysisDiagnostic &D : It->second->Diags)
      R.Diagnostics.push_back(D);
  }
  std::sort(R.Diagnostics.begin(), R.Diagnostics.end(),
            [](const AnalysisDiagnostic &X, const AnalysisDiagnostic &Y) {
              if (X.Line != Y.Line)
                return X.Line < Y.Line;
              return X.Col < Y.Col;
            });
  return R;
}

void Engine::setPrintHook(std::function<void(const std::string &)> Hook) {
  Ctx.PrintHook = std::move(Hook);
}

Value Engine::getGlobal(std::string_view Name) {
  String *A = Ctx.Atoms.intern(Name);
  auto It = Ctx.Globals.Index.find(A);
  if (It == Ctx.Globals.Index.end())
    return Value::undefined();
  return Ctx.Globals.Values[It->second];
}

void Engine::setGlobalNumber(std::string_view Name, double V) {
  uint32_t Slot = Ctx.Globals.slotFor(Ctx.Atoms.intern(Name));
  Ctx.Globals.Values[Slot] = Ctx.TheHeap.boxNumber(V);
}

void Engine::registerNative(std::string_view Name, NativeFn Fn) {
  String *A = Ctx.Atoms.intern(Name);
  Object *F = Object::createNativeFunction(Ctx.TheHeap, Ctx.Shapes, Fn, A);
  Ctx.Globals.Values[Ctx.Globals.slotFor(A)] = Value::makeObject(F);
}

VMStats Engine::stats() const {
  if (Monitor)
    Monitor->syncStats();
  return Ctx.Stats;
}

void Engine::addEventListener(JitEventListener *L) {
  Mux.add(L);
  refreshListenerGate();
}

void Engine::removeEventListener(JitEventListener *L) {
  Mux.remove(L);
  refreshListenerGate();
}

std::vector<FragmentProfile> Engine::fragmentProfiles() const {
  std::vector<FragmentProfile> Out;
  if (Monitor)
    Monitor->collectFragmentProfiles(Out);
  return Out;
}

Tier Engine::tierOf(uint32_t ScriptId, uint16_t LoopId) const {
  if (!Monitor)
    return Tier::Interpreter; // JIT off: everything interprets
  return (Tier)Monitor->tierOfLoop(ScriptId, LoopId);
}

bool Engine::exportTraceEvents(const std::string &Path) const {
  if (!TraceCapture)
    return false;
  return TraceCapture->writeJson(Path);
}

void Engine::flushCodeCache() {
  if (Monitor)
    Monitor->requestCacheFlush();
}

uint32_t Engine::cacheGeneration() const {
  return Monitor ? Monitor->cacheGeneration() : 0;
}

bool Engine::jitDisabled() const {
  return Monitor ? Monitor->jitDisabled() : false;
}

size_t Engine::codeCacheUsed() const {
  return Monitor ? Monitor->codeCacheUsed() : 0;
}

size_t Engine::codeCacheCapacity() const {
  return Monitor ? Monitor->codeCacheCapacity() : 0;
}

uint32_t Engine::pendingCompileJobs() const {
  return Monitor ? Monitor->pendingCompileJobs() : 0;
}

void Engine::pumpCompileQueue() {
  if (Monitor)
    Monitor->pumpCompileQueue();
}

void Engine::waitForCompileQueue() {
  if (Monitor)
    Monitor->waitCompileQueueIdle();
}

} // namespace tracejit
