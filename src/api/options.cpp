//===- options.cpp - Engine flag table --------------------------------------===//

#include "api/options.h"

#include <cstdlib>

namespace tracejit {

namespace {

/// One boolean engine flag: "--name" sets the field to Value.
struct BoolFlag {
  std::string_view Name;
  bool EngineOptions::*Field;
  bool Value;
};

constexpr BoolFlag BoolFlags[] = {
    {"--jit", &EngineOptions::EnableJit, true},
    {"--no-jit", &EngineOptions::EnableJit, false},
    {"--ic", &EngineOptions::EnableIC, true},
    {"--no-ic", &EngineOptions::EnableIC, false},
    {"--threaded-dispatch", &EngineOptions::ThreadedDispatch, true},
    {"--no-threaded-dispatch", &EngineOptions::ThreadedDispatch, false},
    {"--verify-lir", &EngineOptions::VerifyLir, true},
    {"--no-verify-lir", &EngineOptions::VerifyLir, false},
    {"--stats", &EngineOptions::CollectStats, true},
    {"--no-stats", &EngineOptions::CollectStats, false},
    {"--dump-lir", &EngineOptions::DumpLIR, true},
    {"--dump-asm", &EngineOptions::DumpAssembly, true},
    {"--log-jit-events", &EngineOptions::LogJitEvents, true},
    {"--trace-events", &EngineOptions::CaptureTraceEvents, true},
    {"--nesting", &EngineOptions::EnableNesting, true},
    {"--no-nesting", &EngineOptions::EnableNesting, false},
    {"--stitching", &EngineOptions::EnableStitching, true},
    {"--no-stitching", &EngineOptions::EnableStitching, false},
    {"--blacklisting", &EngineOptions::EnableBlacklisting, true},
    {"--no-blacklisting", &EngineOptions::EnableBlacklisting, false},
    {"--oracle", &EngineOptions::EnableOracle, true},
    {"--no-oracle", &EngineOptions::EnableOracle, false},
    {"--off-thread-compile", &EngineOptions::OffThreadCompile, true},
    {"--no-off-thread-compile", &EngineOptions::OffThreadCompile, false},
    {"--static-types", &EngineOptions::StaticAnalysis, true},
    {"--no-static-types", &EngineOptions::StaticAnalysis, false},
    {"--analyze", &EngineOptions::AnalyzeOnly, true},
    {"--validate-static-facts", &EngineOptions::ValidateStaticFacts, true},
};

/// Parse the value of a "--flag=N" style option; false on bad digits.
bool parseU32(std::string_view Text, uint32_t &Out) {
  if (Text.empty())
    return false;
  uint64_t V = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + (uint64_t)(C - '0');
    if (V > 0xFFFFFFFFull)
      return false;
  }
  Out = (uint32_t)V;
  return true;
}

} // namespace

const char *optPassName(OptPass P) {
  switch (P) {
  case OptPass::ExprSimp:
    return "exprsimp";
  case OptPass::Cse:
    return "cse";
  case OptPass::DeadStore:
    return "deadstore";
  case OptPass::Dce:
    return "dce";
  case OptPass::GuardElim:
    return "guardelim";
  case OptPass::IndVar:
    return "indvar";
  case OptPass::Hoist:
    return "hoist";
  case OptPass::NumPasses:
    break;
  }
  return "?";
}

bool parseOptPass(std::string_view Name, OptPass &Out) {
  for (uint32_t K = 0; K < (uint32_t)OptPass::NumPasses; ++K) {
    if (Name == optPassName((OptPass)K)) {
      Out = (OptPass)K;
      return true;
    }
  }
  return false;
}

std::string OptPipeline::describe() const {
  std::string Out;
  for (uint32_t K = 0; K < (uint32_t)OptPass::NumPasses; ++K) {
    if (!has((OptPass)K))
      continue;
    if (!Out.empty())
      Out += ",";
    Out += optPassName((OptPass)K);
  }
  return Out.empty() ? "none" : Out;
}

const char *tierModeName(TierMode M) {
  switch (M) {
  case TierMode::Trace:
    return "trace";
  case TierMode::Method:
    return "method";
  case TierMode::Hybrid:
    return "hybrid";
  }
  return "?";
}

bool parseTierMode(std::string_view Name, TierMode &Out) {
  if (Name == "trace") {
    Out = TierMode::Trace;
    return true;
  }
  if (Name == "method") {
    Out = TierMode::Method;
    return true;
  }
  if (Name == "hybrid") {
    Out = TierMode::Hybrid;
    return true;
  }
  return false;
}

TierMode defaultTierMode() {
  static TierMode Cached = [] {
    TierMode M = TierMode::Trace;
    if (const char *Env = std::getenv("TRACEJIT_TIER"))
      parseTierMode(Env, M); // unknown values keep the Trace default
    return M;
  }();
  return Cached;
}

bool EngineOptions::applyFlag(std::string_view Flag) {
  for (const BoolFlag &F : BoolFlags) {
    if (Flag == F.Name) {
      this->*F.Field = F.Value;
      return true;
    }
  }
  // Non-boolean flags.
  if (Flag == "--native") {
    JitBackend = Backend::Native;
    return true;
  }
  if (Flag == "--executor") {
    JitBackend = Backend::Executor;
    return true;
  }
  // Optimization levels and the named-pass surface over OptPipeline.
  if (Flag == "-O0" || Flag == "-O1" || Flag == "-O2") {
    Passes = OptPipeline::level((uint32_t)(Flag[2] - '0'));
    return true;
  }
  constexpr std::string_view OptPrefix = "--jit-opt=";
  if (Flag.substr(0, OptPrefix.size()) == OptPrefix) {
    // Comma-separated items, each "[+|-]pass" (bare = "+"), applied to the
    // current pipeline in order; "none" clears, "all" enables everything.
    OptPipeline P = Passes;
    std::string_view List = Flag.substr(OptPrefix.size());
    if (List.empty())
      return false;
    while (!List.empty()) {
      size_t Comma = List.find(',');
      std::string_view Item = List.substr(0, Comma);
      List = Comma == std::string_view::npos ? std::string_view()
                                             : List.substr(Comma + 1);
      if (Item.empty())
        return false;
      bool Remove = Item[0] == '-';
      if (Item[0] == '+' || Item[0] == '-')
        Item = Item.substr(1);
      if (Item == "none" && !Remove) {
        P = OptPipeline();
        continue;
      }
      if (Item == "all" && !Remove) {
        P = OptPipeline::all();
        continue;
      }
      OptPass Pass;
      if (!parseOptPass(Item, Pass))
        return false;
      if (Remove)
        P.remove(Pass);
      else
        P.add(Pass);
    }
    Passes = P;
    return true;
  }
  constexpr std::string_view DepthPrefix = "--compile-queue-depth=";
  if (Flag.substr(0, DepthPrefix.size()) == DepthPrefix) {
    uint32_t Depth = 0;
    if (!parseU32(Flag.substr(DepthPrefix.size()), Depth) || Depth == 0)
      return false;
    CompileQueueDepth = Depth;
    return true;
  }
  // Resource governance: deadlines, heap quota, frame limit.
  constexpr std::string_view DeadlinePrefix = "--deadline-ms=";
  if (Flag.substr(0, DeadlinePrefix.size()) == DeadlinePrefix) {
    uint32_t Ms = 0;
    if (!parseU32(Flag.substr(DeadlinePrefix.size()), Ms))
      return false;
    EvalDeadlineMs = Ms;
    return true;
  }
  constexpr std::string_view HeapPrefix = "--max-heap=";
  if (Flag.substr(0, HeapPrefix.size()) == HeapPrefix) {
    uint32_t Bytes = 0;
    if (!parseU32(Flag.substr(HeapPrefix.size()), Bytes))
      return false;
    MaxHeapBytes = Bytes;
    return true;
  }
  constexpr std::string_view FramesPrefix = "--max-frames=";
  if (Flag.substr(0, FramesPrefix.size()) == FramesPrefix) {
    uint32_t Frames = 0;
    if (!parseU32(Flag.substr(FramesPrefix.size()), Frames) || Frames == 0)
      return false;
    MaxFrames = Frames;
    return true;
  }
  // Compilation tiers (trace/tier.h).
  constexpr std::string_view TierPrefix = "--tier=";
  if (Flag.substr(0, TierPrefix.size()) == TierPrefix)
    return parseTierMode(Flag.substr(TierPrefix.size()), Tier);
  constexpr std::string_view MethodThreshPrefix = "--method-jit-threshold=";
  if (Flag.substr(0, MethodThreshPrefix.size()) == MethodThreshPrefix) {
    uint32_t N = 0;
    if (!parseU32(Flag.substr(MethodThreshPrefix.size()), N) || N == 0)
      return false;
    MethodJitThreshold = N;
    return true;
  }
  return false;
}

} // namespace tracejit
