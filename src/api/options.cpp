//===- options.cpp - Engine flag table --------------------------------------===//

#include "api/options.h"

namespace tracejit {

namespace {

/// One boolean engine flag: "--name" sets the field to Value.
struct BoolFlag {
  std::string_view Name;
  bool EngineOptions::*Field;
  bool Value;
};

constexpr BoolFlag BoolFlags[] = {
    {"--jit", &EngineOptions::EnableJit, true},
    {"--no-jit", &EngineOptions::EnableJit, false},
    {"--ic", &EngineOptions::EnableIC, true},
    {"--no-ic", &EngineOptions::EnableIC, false},
    {"--threaded-dispatch", &EngineOptions::ThreadedDispatch, true},
    {"--no-threaded-dispatch", &EngineOptions::ThreadedDispatch, false},
    {"--verify-lir", &EngineOptions::VerifyLir, true},
    {"--no-verify-lir", &EngineOptions::VerifyLir, false},
    {"--stats", &EngineOptions::CollectStats, true},
    {"--no-stats", &EngineOptions::CollectStats, false},
    {"--dump-lir", &EngineOptions::DumpLIR, true},
    {"--dump-asm", &EngineOptions::DumpAssembly, true},
    {"--log-jit-events", &EngineOptions::LogJitEvents, true},
    {"--trace-events", &EngineOptions::CaptureTraceEvents, true},
    {"--nesting", &EngineOptions::EnableNesting, true},
    {"--no-nesting", &EngineOptions::EnableNesting, false},
    {"--stitching", &EngineOptions::EnableStitching, true},
    {"--no-stitching", &EngineOptions::EnableStitching, false},
    {"--blacklisting", &EngineOptions::EnableBlacklisting, true},
    {"--no-blacklisting", &EngineOptions::EnableBlacklisting, false},
    {"--oracle", &EngineOptions::EnableOracle, true},
    {"--no-oracle", &EngineOptions::EnableOracle, false},
    {"--off-thread-compile", &EngineOptions::OffThreadCompile, true},
    {"--no-off-thread-compile", &EngineOptions::OffThreadCompile, false},
};

/// Parse the value of a "--flag=N" style option; false on bad digits.
bool parseU32(std::string_view Text, uint32_t &Out) {
  if (Text.empty())
    return false;
  uint64_t V = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + (uint64_t)(C - '0');
    if (V > 0xFFFFFFFFull)
      return false;
  }
  Out = (uint32_t)V;
  return true;
}

} // namespace

bool EngineOptions::applyFlag(std::string_view Flag) {
  for (const BoolFlag &F : BoolFlags) {
    if (Flag == F.Name) {
      this->*F.Field = F.Value;
      return true;
    }
  }
  // Non-boolean flags.
  if (Flag == "--native") {
    JitBackend = Backend::Native;
    return true;
  }
  if (Flag == "--executor") {
    JitBackend = Backend::Executor;
    return true;
  }
  constexpr std::string_view DepthPrefix = "--compile-queue-depth=";
  if (Flag.substr(0, DepthPrefix.size()) == DepthPrefix) {
    uint32_t Depth = 0;
    if (!parseU32(Flag.substr(DepthPrefix.size()), Depth) || Depth == 0)
      return false;
    CompileQueueDepth = Depth;
    return true;
  }
  return false;
}

} // namespace tracejit
