//===- options.cpp - Engine flag table --------------------------------------===//

#include "api/options.h"

namespace tracejit {

namespace {

/// One boolean engine flag: "--name" sets the field to Value.
struct BoolFlag {
  std::string_view Name;
  bool EngineOptions::*Field;
  bool Value;
};

constexpr BoolFlag BoolFlags[] = {
    {"--jit", &EngineOptions::EnableJit, true},
    {"--no-jit", &EngineOptions::EnableJit, false},
    {"--ic", &EngineOptions::EnableIC, true},
    {"--no-ic", &EngineOptions::EnableIC, false},
    {"--threaded-dispatch", &EngineOptions::ThreadedDispatch, true},
    {"--no-threaded-dispatch", &EngineOptions::ThreadedDispatch, false},
    {"--verify-lir", &EngineOptions::VerifyLir, true},
    {"--no-verify-lir", &EngineOptions::VerifyLir, false},
    {"--stats", &EngineOptions::CollectStats, true},
    {"--no-stats", &EngineOptions::CollectStats, false},
    {"--dump-lir", &EngineOptions::DumpLIR, true},
    {"--dump-asm", &EngineOptions::DumpAssembly, true},
    {"--log-jit-events", &EngineOptions::LogJitEvents, true},
    {"--trace-events", &EngineOptions::CaptureTraceEvents, true},
    {"--nesting", &EngineOptions::EnableNesting, true},
    {"--no-nesting", &EngineOptions::EnableNesting, false},
    {"--stitching", &EngineOptions::EnableStitching, true},
    {"--no-stitching", &EngineOptions::EnableStitching, false},
    {"--blacklisting", &EngineOptions::EnableBlacklisting, true},
    {"--no-blacklisting", &EngineOptions::EnableBlacklisting, false},
    {"--oracle", &EngineOptions::EnableOracle, true},
    {"--no-oracle", &EngineOptions::EnableOracle, false},
};

} // namespace

bool EngineOptions::applyFlag(std::string_view Flag) {
  for (const BoolFlag &F : BoolFlags) {
    if (Flag == F.Name) {
      this->*F.Field = F.Value;
      return true;
    }
  }
  // Non-boolean flags.
  if (Flag == "--native") {
    JitBackend = Backend::Native;
    return true;
  }
  if (Flag == "--executor") {
    JitBackend = Backend::Executor;
    return true;
  }
  return false;
}

} // namespace tracejit
