//===- result.h - Structured evaluation results -----------------------------===//
//
// Error/result types for the embedding API. Kept separate from engine.h so
// the frontend can report structured errors without depending on the Engine.
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_API_RESULT_H
#define TRACEJIT_API_RESULT_H

#include <cstdint>
#include <string>

#include "vm/value.h"

namespace tracejit {

/// Which stage of evaluation produced an error -- or, for the resource-
/// governance kinds, which governor terminated the script. The governance
/// kinds (StackOverflow, Timeout, Interrupted, OutOfMemory) all leave the
/// engine fully reusable: heap, trace cache, and ICs survive the unwind.
enum class ErrorKind : uint8_t {
  None,
  Lex,
  Parse,
  Runtime,
  StackOverflow, ///< EngineOptions::MaxFrames (or the value stack) exceeded.
  Timeout,       ///< A deadline fired (EvalDeadlineMs or a server watchdog).
  Interrupted,   ///< The host asked for termination (Engine::requestInterrupt).
  OutOfMemory,   ///< Collection could not get under EngineOptions::MaxHeapBytes.
};

inline const char *errorKindName(ErrorKind K) {
  switch (K) {
  case ErrorKind::None:
    return "none";
  case ErrorKind::Lex:
    return "lex";
  case ErrorKind::Parse:
    return "parse";
  case ErrorKind::Runtime:
    return "runtime";
  case ErrorKind::StackOverflow:
    return "stack-overflow";
  case ErrorKind::Timeout:
    return "timeout";
  case ErrorKind::Interrupted:
    return "interrupted";
  case ErrorKind::OutOfMemory:
    return "out-of-memory";
  }
  return "?";
}

struct EngineError {
  ErrorKind Kind = ErrorKind::None;
  uint32_t Line = 0; ///< 1-based; 0 when unknown (typical for runtime errors).
  uint32_t Col = 0;  ///< 1-based; 0 when unknown.
  std::string File; ///< Source name from Engine::eval(Source, FileName); may
                    ///< be empty (anonymous eval).
  std::string Message;

  explicit operator bool() const { return Kind != ErrorKind::None; }

  /// One-line rendering, e.g. "SyntaxError: line 3, col 7: expected ';'"
  /// or, with a file name, "SyntaxError: fib.js:3:7: expected ';'".
  std::string describe() const {
    if (Kind == ErrorKind::None)
      return "";
    const char *Prefix = "SyntaxError: ";
    switch (Kind) {
    case ErrorKind::Runtime:
      Prefix = "RuntimeError: ";
      break;
    case ErrorKind::StackOverflow:
      Prefix = "StackOverflowError: ";
      break;
    case ErrorKind::Timeout:
      Prefix = "TimeoutError: ";
      break;
    case ErrorKind::Interrupted:
      Prefix = "InterruptedError: ";
      break;
    case ErrorKind::OutOfMemory:
      Prefix = "OutOfMemoryError: ";
      break;
    default:
      break;
    }
    std::string Out = Prefix;
    if (!File.empty()) {
      Out += File;
      if (Line) {
        Out += ":" + std::to_string(Line);
        if (Col)
          Out += ":" + std::to_string(Col);
      }
      Out += ": ";
    } else if (Line) {
      Out += "line " + std::to_string(Line);
      if (Col)
        Out += ", col " + std::to_string(Col);
      Out += ": ";
    }
    Out += Message;
    return Out;
  }
};

/// Result of Engine::eval. On success LastValue holds the value of the
/// program's last top-level expression statement (undefined when there is
/// none); on failure Err describes what went wrong and where.
struct EvalResult {
  EngineError Err;
  Value LastValue = Value::undefined();

  bool ok() const { return Err.Kind == ErrorKind::None; }
};

} // namespace tracejit

#endif // TRACEJIT_API_RESULT_H
