//===- engine.h - Public embedding API --------------------------------------===//
//
// The tracejit public API: create an Engine, eval MiniJS source, observe
// results through globals/print, and inspect VM statistics. One Engine is
// one VM: heap, globals, trace cache.
//
// Example:
//   tracejit::EngineOptions Opts;
//   tracejit::Engine E(Opts);
//   E.setPrintHook([](const std::string &S) { std::cout << S; });
//   auto R = E.eval("var t = 0; for (var i = 0; i < 1e6; ++i) t += i;"
//                   "print(t);");
//   if (!R.Ok) std::cerr << R.Error << "\n";
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_API_ENGINE_H
#define TRACEJIT_API_ENGINE_H

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "api/options.h"
#include "interp/interpreter.h"
#include "interp/tracehooks.h"
#include "interp/vmcontext.h"

namespace tracejit {

class Engine {
public:
  explicit Engine(const EngineOptions &Opts = EngineOptions());
  ~Engine();
  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  struct Result {
    bool Ok = true;
    std::string Error;
  };

  /// Compile and run a program. Compilation and runtime errors are
  /// reported in the result; the engine stays usable afterwards.
  Result eval(std::string_view Source);

  /// Where `print` output goes (default: stdout).
  void setPrintHook(std::function<void(const std::string &)> Hook);

  /// Read a global by name (undefined if absent); handy in tests/examples.
  Value getGlobal(std::string_view Name);
  /// Define/overwrite a numeric global.
  void setGlobalNumber(std::string_view Name, double V);
  /// Register a host function as a global (classic boxed FFI, §6.5).
  void registerNative(std::string_view Name, NativeFn Fn);

  VMStats &stats() {
    if (Monitor)
      Monitor->syncStats();
    return Ctx.Stats;
  }
  const EngineOptions &options() const { return Ctx.Opts; }

  /// Raise the preempt flag, as the host would to interrupt a hot loop
  /// (§6.4); the next loop edge -- interpreted or native -- services it.
  void requestPreempt() { Ctx.PreemptFlag = 1; }

  /// Internal access for tests and benchmarks.
  VMContext &context() { return Ctx; }
  Interpreter &interpreter() { return *Interp; }

private:
  VMContext Ctx;
  std::unique_ptr<Interpreter> Interp;
  std::unique_ptr<TraceMonitor> Monitor;
};

/// Factory defined by the trace engine; returns nullptr when \p Opts
/// disables the JIT.
std::unique_ptr<TraceMonitor> createTraceMonitor(VMContext &Ctx,
                                                 Interpreter &I);

} // namespace tracejit

#endif // TRACEJIT_API_ENGINE_H
