//===- engine.h - Public embedding API --------------------------------------===//
//
// The tracejit public API: create an Engine, eval MiniJS source, observe
// results through globals/print, and inspect the JIT through statistics,
// per-fragment telemetry, and a structured event stream. One Engine is one
// VM: heap, globals, trace cache.
//
// Example:
//   tracejit::EngineOptions Opts;
//   tracejit::Engine E(Opts);
//   E.setPrintHook([](const std::string &S) { std::cout << S; });
//   auto R = E.eval("var t = 0; for (var i = 0; i < 1e6; ++i) t += i; t;");
//   if (!R.ok()) std::cerr << R.Err.describe() << "\n";
//   else         std::cout << R.LastValue.asNumber() << "\n";
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_API_ENGINE_H
#define TRACEJIT_API_ENGINE_H

#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "api/options.h"
#include "api/result.h"
#include "interp/interpreter.h"
#include "interp/tracehooks.h"
#include "interp/vmcontext.h"
#include "support/events.h"
#include "trace/tier.h"

namespace tracejit {

class Engine {
public:
  explicit Engine(const EngineOptions &Opts = EngineOptions());
  ~Engine();
  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  /// Compile and run a program. Lex/parse/runtime errors are reported in
  /// the result (with line/column where known); the engine stays usable
  /// afterwards. On success, EvalResult::LastValue is the value of the
  /// program's last top-level expression statement.
  EvalResult eval(std::string_view Source);

  /// Same, but errors carry \p FileName so EngineError::describe() renders
  /// "file:line:col" diagnostics (what the repl uses for script files).
  EvalResult eval(std::string_view Source, std::string_view FileName);

  /// Result of Engine::analyze: parse + static analysis, no execution.
  struct AnalysisReport {
    bool Ok = false;    ///< False = parse error (Err is filled in).
    EngineError Err;
    /// Lint findings across every script of the source, ordered by
    /// line/column. See analysis/analysis.h for the diagnostic taxonomy.
    std::vector<AnalysisDiagnostic> Diagnostics;
  };

  /// Lint mode (the repl's `--analyze`): compile \p Source and run the
  /// bytecode abstract interpreter over every script in it, returning the
  /// diagnostics instead of executing. Runs even when
  /// EngineOptions::StaticAnalysis is off (the flag gates the *pipeline*
  /// consumers, not the explicit request). The compiled scripts stay in
  /// the context, so a later eval of the same source reuses their facts.
  AnalysisReport analyze(std::string_view Source,
                         std::string_view FileName = {});

  /// Where `print` output goes (default: stdout).
  void setPrintHook(std::function<void(const std::string &)> Hook);

  /// Read a global by name (undefined if absent); handy in tests/examples.
  Value getGlobal(std::string_view Name);
  /// Define/overwrite a numeric global.
  void setGlobalNumber(std::string_view Name, double V);
  /// Register a host function as a global (classic boxed FFI, §6.5).
  void registerNative(std::string_view Name, NativeFn Fn);

  /// Snapshot of the VM statistics (trace-monitor counters synced first).
  /// Returned by value: the snapshot stays frozen as the engine runs on.
  VMStats stats() const;

  const EngineOptions &options() const { return Ctx.Opts; }

  // --- Observability ---------------------------------------------------------

  /// Attach/detach a listener for the structured JIT event stream. The
  /// listener is borrowed, not owned, and runs synchronously on the VM's
  /// hot path; with no listeners attached each event site costs one
  /// predictable branch.
  void addEventListener(JitEventListener *L);
  void removeEventListener(JitEventListener *L);

  /// Per-fragment telemetry snapshot for every fragment in the trace
  /// cache: enters, iterations, per-guard side-exit histogram, LIR sizes
  /// before/after filters, native code bytes. Each profile carries its
  /// tier attribution (IsMethod/TierName). Empty when the JIT is off.
  std::vector<FragmentProfile> fragmentProfiles() const;

  /// Current compilation tier (trace/tier.h) of loop \p LoopId of the
  /// script with id \p ScriptId -- Interpreter after demotion (the old
  /// "blacklisted"), Method after promotion or under --tier=method.
  /// Loops the monitor has never seen report the configured initial tier;
  /// with the JIT disabled everything reports Tier::Interpreter.
  Tier tierOf(uint32_t ScriptId, uint16_t LoopId) const;

  /// Write the event stream recorded so far as Chrome trace-event JSON
  /// (chrome://tracing, ui.perfetto.dev). Requires
  /// EngineOptions::CaptureTraceEvents; returns false when capture is off
  /// or the file cannot be written.
  bool exportTraceEvents(const std::string &Path) const;

  /// Raise the benign GC-request bit, as the heap does under pressure; the
  /// next loop edge -- interpreted or native -- services it (§6.4) and the
  /// script continues. Kept for tests/hosts that want to force a safe-point
  /// visit without terminating anything.
  void requestPreempt() { Ctx.requestInterrupt(InterruptGC); }

  /// Cooperatively terminate the running script: raises the HostInterrupt
  /// bit, which the next safe point (interpreter loop edge or trace preempt
  /// exit) turns into ErrorKind::Interrupted. Safe to call from any thread;
  /// the engine stays fully reusable afterwards. A no-op if nothing is
  /// running by the time the bit would be serviced (eval clears stale
  /// termination bits on entry).
  void requestInterrupt() { Ctx.requestInterrupt(InterruptHost); }

  // --- Code-cache lifecycle ---------------------------------------------------

  /// Request a whole-code-cache flush: retire every compiled trace, reset
  /// the executable pool, bump the cache generation, and re-enter
  /// monitoring cold. Deferred (not dropped) while a trace is on the
  /// native stack or a recording is active; it then runs at the next safe
  /// loop edge. No-op when the JIT is off or kill-switched.
  void flushCodeCache();

  /// Monotonic code-cache generation; bumped by every completed flush.
  uint32_t cacheGeneration() const;

  /// True once the kill switch (EngineOptions::MaxCacheFlushes exceeded in
  /// one eval) permanently disabled the JIT; the engine keeps evaluating
  /// correctly on the interpreter.
  bool jitDisabled() const;

  /// Executable-pool occupancy in bytes (0 with the executor backend or
  /// the JIT off); capacity reflects EngineOptions::CodeCacheBytes rounded
  /// to a page.
  size_t codeCacheUsed() const;
  size_t codeCacheCapacity() const;

  // --- Off-thread compilation (EngineOptions::OffThreadCompile) ---------------

  /// Compile jobs submitted to the background compiler but not yet
  /// published or dropped (always 0 with off-thread compile off).
  uint32_t pendingCompileJobs() const;

  /// Publish/drop any compile jobs the background compiler has finished.
  /// Loop edges do this automatically; hosts serving many short scripts
  /// call it between requests so results land promptly.
  void pumpCompileQueue();

  /// Block until the background compiler has drained every submitted job,
  /// then publish the results. Deterministic settling point for tests,
  /// benchmarks, and graceful shutdown.
  void waitForCompileQueue();

  /// Internal access for tests and benchmarks.
  VMContext &context() { return Ctx; }
  Interpreter &interpreter() { return *Interp; }

private:
  /// Point Ctx.EventListener at the mux, or null when no sinks remain, so
  /// the disabled path stays a single null check.
  void refreshListenerGate();

  /// Run the static analyzer over Ctx.Scripts[FirstScript..): cache the
  /// results, seed the oracle (demotions, megamorphic sites), and emit one
  /// AnalysisRan event per script.
  void analyzeNewScripts(size_t FirstScript);

  // Deadline timer thread (EvalDeadlineMs): spawned lazily on the first
  // deadline-armed eval, it raises InterruptDeadline at expiry so traces
  // that never reach the interpreter's clock poll still exit through their
  // §6.4 guard. Joined in ~Engine before Ctx dies (Ctx is the first member,
  // so it outlives the join regardless).
  void armDeadlineTimer(std::chrono::steady_clock::time_point At);
  void disarmDeadlineTimer();
  void deadlineTimerMain();

  VMContext Ctx;
  std::unique_ptr<Interpreter> Interp;
  std::unique_ptr<TraceMonitor> Monitor;
  JitEventMux Mux;
  std::unique_ptr<LogJitEventListener> LogListener;   ///< Opts.LogJitEvents.
  std::unique_ptr<ChromeTraceCollector> TraceCapture; ///< CaptureTraceEvents.

  std::thread TimerThread;
  std::mutex TimerMu;
  std::condition_variable TimerCv;
  std::chrono::steady_clock::time_point TimerDeadline{};
  bool TimerArmed = false; ///< Guarded by TimerMu.
  bool TimerStop = false;  ///< Guarded by TimerMu; set once in ~Engine.
};

/// Factory defined by the trace engine; returns nullptr when \p Opts
/// disables the JIT.
std::unique_ptr<TraceMonitor> createTraceMonitor(VMContext &Ctx,
                                                 Interpreter &I);

} // namespace tracejit

#endif // TRACEJIT_API_ENGINE_H
