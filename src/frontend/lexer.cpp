//===- lexer.cpp - MiniJS tokenizer ----------------------------------------===//

#include "frontend/lexer.h"

#include <cctype>
#include <cstdlib>

namespace tracejit {

void Lexer::skipTrivia() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r') {
      ++Pos;
    } else if (C == '\n') {
      ++Pos;
      ++Line;
      LineStart = Pos;
    } else if (C == '/' && peek(1) == '/') {
      while (peek() && peek() != '\n')
        ++Pos;
    } else if (C == '/' && peek(1) == '*') {
      Pos += 2;
      while (peek() && !(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\n') {
          ++Line;
          LineStart = Pos + 1;
        }
        ++Pos;
      }
      if (peek())
        Pos += 2;
    } else {
      return;
    }
  }
}

Token Lexer::makeToken(Tok K, size_t Start) {
  Token T;
  T.Kind = K;
  T.Text = Src.substr(Start, Pos - Start);
  T.Line = TokLine;
  T.Col = TokCol;
  return T;
}

Token Lexer::identifierOrKeyword() {
  size_t Start = Pos;
  while (std::isalnum((unsigned char)peek()) || peek() == '_' || peek() == '$')
    ++Pos;
  std::string_view S = Src.substr(Start, Pos - Start);
  Tok K = Tok::Identifier;
  if (S == "var")
    K = Tok::KwVar;
  else if (S == "function")
    K = Tok::KwFunction;
  else if (S == "if")
    K = Tok::KwIf;
  else if (S == "else")
    K = Tok::KwElse;
  else if (S == "while")
    K = Tok::KwWhile;
  else if (S == "for")
    K = Tok::KwFor;
  else if (S == "do")
    K = Tok::KwDo;
  else if (S == "break")
    K = Tok::KwBreak;
  else if (S == "continue")
    K = Tok::KwContinue;
  else if (S == "return")
    K = Tok::KwReturn;
  else if (S == "true")
    K = Tok::KwTrue;
  else if (S == "false")
    K = Tok::KwFalse;
  else if (S == "null")
    K = Tok::KwNull;
  else if (S == "undefined")
    K = Tok::KwUndefined;
  return makeToken(K, Start);
}

Token Lexer::number() {
  size_t Start = Pos;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    Pos += 2;
    while (std::isxdigit((unsigned char)peek()))
      ++Pos;
    Token T = makeToken(Tok::Number, Start);
    T.NumValue =
        (double)std::strtoull(std::string(T.Text.substr(2)).c_str(), nullptr,
                              16);
    return T;
  }
  while (std::isdigit((unsigned char)peek()))
    ++Pos;
  if (peek() == '.' && std::isdigit((unsigned char)peek(1))) {
    ++Pos;
    while (std::isdigit((unsigned char)peek()))
      ++Pos;
  }
  if (peek() == 'e' || peek() == 'E') {
    size_t Save = Pos;
    ++Pos;
    if (peek() == '+' || peek() == '-')
      ++Pos;
    if (std::isdigit((unsigned char)peek())) {
      while (std::isdigit((unsigned char)peek()))
        ++Pos;
    } else {
      Pos = Save;
    }
  }
  Token T = makeToken(Tok::Number, Start);
  T.NumValue = std::strtod(std::string(T.Text).c_str(), nullptr);
  return T;
}

Token Lexer::stringLiteral(char Quote) {
  size_t Start = Pos; // after the opening quote
  while (peek() && peek() != Quote) {
    if (peek() == '\\')
      ++Pos;
    if (peek() == '\n') {
      ++Line;
      LineStart = Pos + 1;
    }
    ++Pos;
  }
  Token T;
  T.Kind = peek() == Quote ? Tok::StringLit : Tok::Error;
  T.Text = Src.substr(Start, Pos - Start);
  T.Line = TokLine;
  T.Col = TokCol;
  if (peek() == Quote)
    ++Pos;
  return T;
}

std::string decodeStringLiteral(std::string_view Raw) {
  std::string Out;
  Out.reserve(Raw.size());
  for (size_t I = 0; I < Raw.size(); ++I) {
    char C = Raw[I];
    if (C != '\\' || I + 1 >= Raw.size()) {
      Out.push_back(C);
      continue;
    }
    char E = Raw[++I];
    switch (E) {
    case 'n':
      Out.push_back('\n');
      break;
    case 't':
      Out.push_back('\t');
      break;
    case 'r':
      Out.push_back('\r');
      break;
    case '0':
      Out.push_back('\0');
      break;
    case 'x': {
      if (I + 2 < Raw.size()) {
        auto Hex = [](char H) -> int {
          if (H >= '0' && H <= '9')
            return H - '0';
          if (H >= 'a' && H <= 'f')
            return H - 'a' + 10;
          if (H >= 'A' && H <= 'F')
            return H - 'A' + 10;
          return 0;
        };
        Out.push_back((char)(Hex(Raw[I + 1]) * 16 + Hex(Raw[I + 2])));
        I += 2;
      }
      break;
    }
    default:
      Out.push_back(E);
      break;
    }
  }
  return Out;
}

Token Lexer::next() {
  skipTrivia();
  size_t Start = Pos;
  TokLine = Line;
  TokCol = (uint32_t)(Pos - LineStart) + 1;
  if (Pos >= Src.size())
    return makeToken(Tok::Eof, Start);

  char C = peek();
  if (std::isalpha((unsigned char)C) || C == '_' || C == '$')
    return identifierOrKeyword();
  if (std::isdigit((unsigned char)C))
    return number();
  if (C == '"' || C == '\'') {
    ++Pos;
    return stringLiteral(C);
  }

  advance();
  switch (C) {
  case '(':
    return makeToken(Tok::LParen, Start);
  case ')':
    return makeToken(Tok::RParen, Start);
  case '{':
    return makeToken(Tok::LBrace, Start);
  case '}':
    return makeToken(Tok::RBrace, Start);
  case '[':
    return makeToken(Tok::LBracket, Start);
  case ']':
    return makeToken(Tok::RBracket, Start);
  case ';':
    return makeToken(Tok::Semicolon, Start);
  case ',':
    return makeToken(Tok::Comma, Start);
  case '.':
    return makeToken(Tok::Dot, Start);
  case ':':
    return makeToken(Tok::Colon, Start);
  case '?':
    return makeToken(Tok::Question, Start);
  case '~':
    return makeToken(Tok::Tilde, Start);
  case '+':
    if (match('+'))
      return makeToken(Tok::PlusPlus, Start);
    if (match('='))
      return makeToken(Tok::PlusAssign, Start);
    return makeToken(Tok::Plus, Start);
  case '-':
    if (match('-'))
      return makeToken(Tok::MinusMinus, Start);
    if (match('='))
      return makeToken(Tok::MinusAssign, Start);
    return makeToken(Tok::Minus, Start);
  case '*':
    if (match('='))
      return makeToken(Tok::StarAssign, Start);
    return makeToken(Tok::Star, Start);
  case '/':
    if (match('='))
      return makeToken(Tok::SlashAssign, Start);
    return makeToken(Tok::Slash, Start);
  case '%':
    if (match('='))
      return makeToken(Tok::PercentAssign, Start);
    return makeToken(Tok::Percent, Start);
  case '&':
    if (match('&'))
      return makeToken(Tok::AmpAmp, Start);
    if (match('='))
      return makeToken(Tok::AmpAssign, Start);
    return makeToken(Tok::Amp, Start);
  case '|':
    if (match('|'))
      return makeToken(Tok::PipePipe, Start);
    if (match('='))
      return makeToken(Tok::PipeAssign, Start);
    return makeToken(Tok::Pipe, Start);
  case '^':
    if (match('='))
      return makeToken(Tok::CaretAssign, Start);
    return makeToken(Tok::Caret, Start);
  case '!':
    if (match('=')) {
      if (match('='))
        return makeToken(Tok::StrictNe, Start);
      return makeToken(Tok::NotEq, Start);
    }
    return makeToken(Tok::Bang, Start);
  case '=':
    if (match('=')) {
      if (match('='))
        return makeToken(Tok::StrictEq, Start);
      return makeToken(Tok::EqEq, Start);
    }
    return makeToken(Tok::Assign, Start);
  case '<':
    if (match('<')) {
      if (match('='))
        return makeToken(Tok::ShlAssign, Start);
      return makeToken(Tok::Shl, Start);
    }
    if (match('='))
      return makeToken(Tok::Le, Start);
    return makeToken(Tok::Lt, Start);
  case '>':
    if (match('>')) {
      if (match('>')) {
        if (match('='))
          return makeToken(Tok::UshrAssign, Start);
        return makeToken(Tok::Ushr, Start);
      }
      if (match('='))
        return makeToken(Tok::ShrAssign, Start);
      return makeToken(Tok::Shr, Start);
    }
    if (match('='))
      return makeToken(Tok::Ge, Start);
    return makeToken(Tok::Gt, Start);
  default:
    return makeToken(Tok::Error, Start);
  }
}

} // namespace tracejit
