//===- bytecode.cpp - Opcode metadata and disassembler ---------------------===//

#include "frontend/bytecode.h"

#include <cstdio>

#include "vm/string.h"

namespace tracejit {

static const OpInfo OpTable[] = {
    {"nop", 0},          {"loopheader", 2}, {"nop3", 2},
    {"pushconst", 2},    {"pushundef", 0},  {"pop", 0},
    {"popresult", 0},
    {"dup", 0},          {"dup2", 0},       {"getlocal", 2},
    {"setlocal", 2},     {"getglobal", 2},  {"setglobal", 2},
    {"getprop", 4},      {"setprop", 4},    {"initprop", 2},
    {"getelem", 0},      {"setelem", 0},    {"add", 0},
    {"sub", 0},          {"mul", 0},        {"div", 0},
    {"mod", 0},          {"neg", 0},        {"bitand", 0},
    {"bitor", 0},        {"bitxor", 0},     {"shl", 0},
    {"shr", 0},          {"ushr", 0},       {"bitnot", 0},
    {"lt", 0},           {"le", 0},         {"gt", 0},
    {"ge", 0},           {"eq", 0},         {"ne", 0},
    {"stricteq", 0},     {"strictne", 0},   {"lognot", 0},
    {"jump", 4},         {"jumpiffalse", 4},{"jumpiftrue", 4},
    {"call", 1},         {"callprop", 3},   {"return", 0},
    {"returnundef", 0},  {"newarray", 2},   {"newobject", 0},
};
static_assert(sizeof(OpTable) / sizeof(OpTable[0]) == (size_t)Op::NumOps,
              "opcode table out of sync");

const OpInfo &opInfo(Op O) { return OpTable[(size_t)O]; }

std::string FunctionScript::disassemble() const {
  std::string Out;
  char Buf[256];
  snprintf(Buf, sizeof(Buf), "function %s (arity=%u locals=%u maxstack=%u)\n",
           Name.empty() ? "<toplevel>" : Name.c_str(), Arity, NumLocals,
           MaxStack);
  Out += Buf;
  uint32_t Pc = 0;
  while (Pc < Code.size()) {
    Op O = opAt(Pc);
    const OpInfo &Info = opInfo(O);
    snprintf(Buf, sizeof(Buf), "%5u  %-12s", Pc, Info.Name);
    Out += Buf;
    switch (O) {
    case Op::PushConst: {
      Value V = Consts[u16At(Pc + 1)];
      snprintf(Buf, sizeof(Buf), " %s", valueToString(V).c_str());
      Out += Buf;
      break;
    }
    case Op::GetProp:
    case Op::SetProp: {
      String *A = Atoms[u16At(Pc + 1)];
      snprintf(Buf, sizeof(Buf), " .%s ic=%u", std::string(A->view()).c_str(),
               u16At(Pc + 3));
      Out += Buf;
      break;
    }
    case Op::InitProp: {
      String *A = Atoms[u16At(Pc + 1)];
      snprintf(Buf, sizeof(Buf), " .%s", std::string(A->view()).c_str());
      Out += Buf;
      break;
    }
    case Op::CallProp: {
      String *A = Atoms[u16At(Pc + 1)];
      snprintf(Buf, sizeof(Buf), " .%s argc=%u",
               std::string(A->view()).c_str(), Code[Pc + 3]);
      Out += Buf;
      break;
    }
    case Op::Jump:
    case Op::JumpIfFalse:
    case Op::JumpIfTrue:
      snprintf(Buf, sizeof(Buf), " -> %u", u32At(Pc + 1));
      Out += Buf;
      break;
    case Op::Call:
      snprintf(Buf, sizeof(Buf), " argc=%u", Code[Pc + 1]);
      Out += Buf;
      break;
    default:
      if (Info.OperandBytes == 2) {
        snprintf(Buf, sizeof(Buf), " %u", u16At(Pc + 1));
        Out += Buf;
      }
      break;
    }
    Out += "\n";
    Pc += 1 + Info.OperandBytes;
  }
  return Out;
}

} // namespace tracejit
