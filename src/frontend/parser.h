//===- parser.h - One-pass parser / bytecode compiler ----------------------===//
//
// A single-pass recursive-descent + precedence-climbing compiler from
// MiniJS source to bytecode. There is no separate AST: like SpiderMonkey's
// bytecode compiler, we emit code while parsing, which also makes it easy
// to guarantee the paper's invariant that every backward branch targets a
// LoopHeader bytecode.
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_FRONTEND_PARSER_H
#define TRACEJIT_FRONTEND_PARSER_H

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "api/result.h"
#include "frontend/bytecode.h"
#include "frontend/lexer.h"
#include "interp/vmcontext.h"

namespace tracejit {

class Parser {
public:
  Parser(VMContext &Ctx, std::string_view Source);

  /// Compile a whole program. Function declarations are compiled to their
  /// own scripts and bound to globals; the returned script is the top-level
  /// code. Returns nullptr on error.
  FunctionScript *parseProgram();

  bool hadError() const { return HadError; }
  const std::string &errorMessage() const { return ErrorMsg; }
  /// Structured form of the first error (Kind is Lex for bad characters /
  /// unterminated strings, Parse otherwise), with the token's line/column.
  const EngineError &error() const { return Err; }

private:
  // --- Token plumbing -------------------------------------------------------
  void advance();
  bool check(Tok K) const { return Cur.Kind == K; }
  bool accept(Tok K);
  void expect(Tok K, const char *What);
  void errorAt(const Token &T, const std::string &Msg);

  // --- Function compilation state -------------------------------------------
  struct LoopCtx {
    uint32_t HeaderPc;
    uint32_t LoopIndex;
    std::vector<uint32_t> BreakPatches;
    std::vector<uint32_t> ContinuePatches;
    bool ContinueTargetsHeader; ///< while/do: continue jumps to the header.
  };

  FunctionScript *Script = nullptr;
  bool InFunction = false;
  std::unordered_map<std::string, uint16_t> Locals;
  std::vector<LoopCtx> LoopStack;
  int StackDepth = 0;
  /// Statement nesting depth; 1 = directly at program/function top level.
  /// Top-level (depth-1, non-function) expression statements emit PopResult
  /// so the engine can report the program's last expression value.
  int StmtDepth = 0;

  // --- Emission ---------------------------------------------------------------
  void emitOp(Op O, int StackDelta);
  void emitU8(uint8_t B) { Script->Code.push_back(B); }
  void emitU16(uint16_t V);
  void emitU32(uint32_t V);
  uint32_t here() const { return (uint32_t)Script->Code.size(); }
  /// Emit a jump with a placeholder target; returns the operand pc to patch.
  uint32_t emitJump(Op O, int StackDelta);
  void patchJump(uint32_t OperandPc, uint32_t Target);
  void adjustStack(int Delta);

  uint16_t addConst(Value V);
  uint16_t addNumberConst(double D);
  uint16_t addAtom(std::string_view Name);
  /// Reserve a fresh property inline-cache slot for a GetProp/SetProp site.
  uint16_t allocIC();

  // --- References (assignable expressions) ------------------------------------
  enum class RefKind : uint8_t { None, Local, Global, Prop, Elem };
  struct Ref {
    RefKind Kind = RefKind::None;
    uint16_t Slot = 0; ///< Local/Global slot or Prop atom index.
  };
  void loadRef(const Ref &R);
  void storeRef(const Ref &R); ///< Stack: [ref-operands] value -> value.
  void dupRefOperands(const Ref &R);

  // --- Grammar -----------------------------------------------------------------
  void statement();
  void block();
  void varStatement();
  void functionDeclaration();
  void ifStatement();
  void whileStatement();
  void doWhileStatement();
  void forStatement();
  void breakStatement();
  void continueStatement();
  void returnStatement();
  void expressionStatement();

  void expression() { parsePrecedence(PrecAssignment); }
  enum Precedence {
    PrecNone,
    PrecAssignment, // = += ...
    PrecTernary,    // ?:
    PrecOr,         // ||
    PrecAnd,        // &&
    PrecBitOr,      // |
    PrecBitXor,     // ^
    PrecBitAnd,     // &
    PrecEquality,   // == != === !==
    PrecRelational, // < > <= >=
    PrecShift,      // << >> >>>
    PrecAdditive,   // + -
    PrecMultiplicative, // * / %
    PrecUnary,
  };
  void parsePrecedence(int MinPrec);
  Ref parseUnaryRef();
  Ref parsePostfixChain(Ref R);
  void parsePrimaryInto(Ref &R);
  void callArguments(uint8_t &ArgC);

  static int binaryPrecedence(Tok T);
  static Op binaryOp(Tok T);
  static bool isAssignToken(Tok T);
  static Op compoundOp(Tok T);

  uint16_t localSlot(std::string_view Name, bool Declare);
  uint16_t globalSlot(std::string_view Name);

  VMContext &Ctx;
  Lexer Lex;
  Token Cur;
  Token Prev;
  bool HadError = false;
  std::string ErrorMsg;
  EngineError Err;
};

/// Convenience entry point: compile \p Source, returning the top-level
/// script or nullptr (structured error in the out-param).
FunctionScript *compileSource(VMContext &Ctx, std::string_view Source,
                              EngineError *ErrorOut);

/// Legacy convenience overload: error as a flat message string.
FunctionScript *compileSource(VMContext &Ctx, std::string_view Source,
                              std::string *ErrorOut);

} // namespace tracejit

#endif // TRACEJIT_FRONTEND_PARSER_H
