//===- bytecode.h - Bytecode opcodes and compiled scripts -----------------===//
//
// A compact stack bytecode for the MiniJS subset. Design points taken from
// the paper:
//
//  * Loop headers are explicit no-op bytecodes ("We define an extra no-op
//    bytecode that indicates a loop header. The VM calls into the trace
//    monitor every time the interpreter executes a loop header no-op. To
//    blacklist a fragment, we simply replace the loop header no-op with a
//    regular no-op." §3.3). `LoopHeader` carries a loop id; blacklisting
//    patches the opcode byte to `Nop3`, which skips the same operand bytes.
//
//  * "A bytecode is a loop header iff it is the target of a backward
//    branch" -- the compiler guarantees every backward Jump targets a
//    LoopHeader.
//
//  * Unlike SpiderMonkey's fat bytecodes, ours are deliberately thin (§6.3
//    discusses why fat bytecodes complicate recording); each bytecode maps
//    to a small recording routine.
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_FRONTEND_BYTECODE_H
#define TRACEJIT_FRONTEND_BYTECODE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "vm/ic.h"
#include "vm/value.h"

namespace tracejit {

class String;
struct LoopState; // Owned by the trace monitor (hot counters, trees, ...).

enum class Op : uint8_t {
  Nop,
  /// Loop header no-op; operand: u16 loop id. The interpreter invokes the
  /// trace monitor when executing this (the loop edge hook).
  LoopHeader,
  /// Replacement for a blacklisted LoopHeader: same size, no monitor call.
  Nop3,

  PushConst, // u16 const-pool index
  PushUndefined,
  Pop,
  /// Pop like Pop, but also latch the value as the program result
  /// (VMContext::LastResult). Emitted only for top-level expression
  /// statements, so it never appears inside a traceable loop body.
  PopResult,
  Dup,
  Dup2, // duplicate the top two stack slots (member compound assignment)

  GetLocal, // u16 slot
  SetLocal, // u16 slot; stores stack top into the local, value stays pushed
  GetGlobal, // u16 slot
  SetGlobal, // u16 slot; peeks like SetLocal

  GetProp,  // u16 atom index, u16 IC index; obj -> value
  SetProp,  // u16 atom index, u16 IC index; obj value -> value
  InitProp, // u16 atom index; obj value -> obj (object literal init)
  GetElem,  // obj index -> value
  SetElem,  // obj index value -> value

  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Neg,
  BitAnd,
  BitOr,
  BitXor,
  Shl,
  Shr,
  Ushr,
  BitNot,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  StrictEq,
  StrictNe,
  LogicalNot,

  Jump,        // u32 absolute target
  JumpIfFalse, // u32 absolute target; pops condition
  JumpIfTrue,  // u32 absolute target; pops condition

  Call,     // u8 argc; callee arg0..argN-1 -> result
  CallProp, // u16 atom index, u8 argc; receiver arg0..argN-1 -> result

  Return,          // pops return value
  ReturnUndefined, // implicit return

  NewArray,  // u16 element count; pops elements
  NewObject, // pushes empty object

  NumOps
};

/// Static metadata about an opcode.
struct OpInfo {
  const char *Name;
  uint8_t OperandBytes;
};
const OpInfo &opInfo(Op O);

// CFG-shape predicates: the analysis pass (analysis/analysis.h) builds
// basic blocks from these, so they are the single source of truth for
// "which ops redirect or end control flow".

/// Ops carrying a u32 absolute branch target at Pc+1.
inline bool opIsJump(Op O) {
  return O == Op::Jump || O == Op::JumpIfFalse || O == Op::JumpIfTrue;
}

/// Ops after which execution never falls through to the next pc.
inline bool opIsTerminator(Op O) {
  return O == Op::Jump || O == Op::Return || O == Op::ReturnUndefined;
}

/// Static description of one loop in a script: the header pc and the
/// half-open pc range of the loop body (header included). Used by the
/// monitor to decide whether a pc is still inside the loop being recorded
/// (nesting, §4.1: "given two loop edges, the system can easily determine
/// whether they are nested and which is the inner loop").
struct LoopRecord {
  uint32_t HeaderPc = 0;
  uint32_t EndPc = 0; ///< First pc after the loop (exclusive).
  LoopState *State = nullptr;
};

/// Sparse pc -> source position note. The parser records one note per
/// bytecode whose position differs from the previous note's, so runtime
/// errors (stack overflow, type errors) can report where they happened.
struct LineNote {
  uint32_t Pc = 0;
  uint32_t Line = 0; ///< 1-based.
  uint32_t Col = 0;  ///< 1-based.
};

/// A compiled function (or the top-level script).
struct FunctionScript {
  uint32_t Id = 0;
  std::string Name;
  uint32_t Arity = 0;
  uint32_t NumLocals = 0; ///< Includes parameters (slots [0, Arity)).
  uint32_t MaxStack = 0;
  std::vector<uint8_t> Code;
  std::vector<Value> Consts;
  std::vector<String *> Atoms;
  std::vector<LoopRecord> Loops;
  /// Property inline caches, one per GetProp/SetProp site (indexed by the
  /// bytecode's second u16 operand). Mutable execution state, not code:
  /// reset wholesale by VMContext::invalidateAllICs().
  std::vector<PropertyIC> ICs;
  /// Sparse source positions, ascending by Pc (see LineNote).
  std::vector<LineNote> LineNotes;

  Op opAt(uint32_t Pc) const { return (Op)Code[Pc]; }
  uint16_t u16At(uint32_t Pc) const {
    return (uint16_t)(Code[Pc] | (Code[Pc + 1] << 8));
  }
  uint32_t u32At(uint32_t Pc) const {
    return (uint32_t)Code[Pc] | ((uint32_t)Code[Pc + 1] << 8) |
           ((uint32_t)Code[Pc + 2] << 16) | ((uint32_t)Code[Pc + 3] << 24);
  }

  /// Total slots an interpreter frame needs.
  uint32_t frameSlots() const { return NumLocals + MaxStack; }

  /// Source position of the bytecode at \p Pc: the last LineNote at or
  /// before it. {0, 0, 0} when no notes cover the pc.
  LineNote lineAt(uint32_t Pc) const {
    LineNote Best;
    size_t Lo = 0, Hi = LineNotes.size();
    while (Lo < Hi) {
      size_t Mid = Lo + (Hi - Lo) / 2;
      if (LineNotes[Mid].Pc <= Pc) {
        Best = LineNotes[Mid];
        Lo = Mid + 1;
      } else {
        Hi = Mid;
      }
    }
    return Best;
  }

  /// Human-readable disassembly (tests and diagnostics).
  std::string disassemble() const;
};

} // namespace tracejit

#endif // TRACEJIT_FRONTEND_BYTECODE_H
