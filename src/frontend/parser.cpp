//===- parser.cpp - One-pass parser / bytecode compiler --------------------===//

#include "frontend/parser.h"

#include <cassert>
#include <cmath>

namespace tracejit {

Parser::Parser(VMContext &C, std::string_view Source) : Ctx(C), Lex(Source) {
  advance();
}

void Parser::advance() {
  Prev = Cur;
  Cur = Lex.next();
  if (Cur.Kind == Tok::Error)
    errorAt(Cur, "unexpected character");
}

bool Parser::accept(Tok K) {
  if (!check(K))
    return false;
  advance();
  return true;
}

void Parser::expect(Tok K, const char *What) {
  if (check(K)) {
    advance();
    return;
  }
  errorAt(Cur, std::string("expected ") + What);
}

void Parser::errorAt(const Token &T, const std::string &Msg) {
  if (HadError)
    return;
  HadError = true;
  Err.Kind = T.Kind == Tok::Error ? ErrorKind::Lex : ErrorKind::Parse;
  Err.Line = T.Line;
  Err.Col = T.Col;
  Err.Message = Msg;
  if (!T.Text.empty())
    Err.Message += " (at '" + std::string(T.Text) + "')";
  ErrorMsg = "line " + std::to_string(T.Line) + ": " + Err.Message;
}

// --- Emission ----------------------------------------------------------------

void Parser::emitOp(Op O, int StackDelta) {
  // Source position for runtime errors: one sparse note per position change
  // (most consecutive bytecodes share a line/col, so the table stays small).
  const Token &T = Prev.Line ? Prev : Cur;
  if (T.Line &&
      (Script->LineNotes.empty() || Script->LineNotes.back().Line != T.Line ||
       Script->LineNotes.back().Col != T.Col))
    Script->LineNotes.push_back({(uint32_t)Script->Code.size(), T.Line, T.Col});
  Script->Code.push_back((uint8_t)O);
  adjustStack(StackDelta);
}

void Parser::emitU16(uint16_t V) {
  Script->Code.push_back((uint8_t)(V & 0xff));
  Script->Code.push_back((uint8_t)(V >> 8));
}

void Parser::emitU32(uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Script->Code.push_back((uint8_t)(V >> (8 * I)));
}

uint32_t Parser::emitJump(Op O, int StackDelta) {
  emitOp(O, StackDelta);
  uint32_t At = here();
  emitU32(0xffffffff);
  return At;
}

void Parser::patchJump(uint32_t OperandPc, uint32_t Target) {
  for (int I = 0; I < 4; ++I)
    Script->Code[OperandPc + I] = (uint8_t)(Target >> (8 * I));
}

void Parser::adjustStack(int Delta) {
  StackDepth += Delta;
  if (StackDepth > (int)Script->MaxStack)
    Script->MaxStack = (uint32_t)StackDepth;
  // After a syntax error, recovery paths may emit unbalanced code that is
  // never run; only assert the invariant on clean parses.
  assert((HadError || StackDepth >= 0) && "stack underflow in compiler");
  if (StackDepth < 0)
    StackDepth = 0;
}

uint16_t Parser::addConst(Value V) {
  for (size_t I = 0; I < Script->Consts.size(); ++I)
    if (Script->Consts[I] == V)
      return (uint16_t)I;
  Script->Consts.push_back(V);
  return (uint16_t)(Script->Consts.size() - 1);
}

uint16_t Parser::addNumberConst(double D) {
  if (D == std::floor(D) && Value::fitsInt31((int64_t)D) && !std::isinf(D) &&
      !(D == 0 && std::signbit(D)))
    return addConst(Value::makeInt((int32_t)D));
  // Compare double constants by bits to dedupe.
  for (size_t I = 0; I < Script->Consts.size(); ++I) {
    Value V = Script->Consts[I];
    if (V.isDoubleCell() && V.toDoubleCell()->Val == D)
      return (uint16_t)I;
  }
  Script->Consts.push_back(Ctx.TheHeap.boxDouble(D));
  return (uint16_t)(Script->Consts.size() - 1);
}

uint16_t Parser::addAtom(std::string_view Name) {
  String *A = Ctx.Atoms.intern(Name);
  for (size_t I = 0; I < Script->Atoms.size(); ++I)
    if (Script->Atoms[I] == A)
      return (uint16_t)I;
  Script->Atoms.push_back(A);
  return (uint16_t)(Script->Atoms.size() - 1);
}

uint16_t Parser::allocIC() {
  Script->ICs.emplace_back();
  return (uint16_t)(Script->ICs.size() - 1);
}

uint16_t Parser::localSlot(std::string_view Name, bool Declare) {
  auto It = Locals.find(std::string(Name));
  if (It != Locals.end())
    return It->second;
  assert(Declare);
  uint16_t Slot = (uint16_t)Script->NumLocals++;
  Locals.emplace(std::string(Name), Slot);
  return Slot;
}

uint16_t Parser::globalSlot(std::string_view Name) {
  return (uint16_t)Ctx.Globals.slotFor(Ctx.Atoms.intern(Name));
}

// --- References -----------------------------------------------------------------

void Parser::loadRef(const Ref &R) {
  switch (R.Kind) {
  case RefKind::None:
    break; // value already on the stack
  case RefKind::Local:
    emitOp(Op::GetLocal, +1);
    emitU16(R.Slot);
    break;
  case RefKind::Global:
    emitOp(Op::GetGlobal, +1);
    emitU16(R.Slot);
    break;
  case RefKind::Prop:
    emitOp(Op::GetProp, 0); // obj -> value
    emitU16(R.Slot);
    emitU16(allocIC());
    break;
  case RefKind::Elem:
    emitOp(Op::GetElem, -1); // obj idx -> value
    break;
  }
}

void Parser::storeRef(const Ref &R) {
  switch (R.Kind) {
  case RefKind::None:
    errorAt(Prev, "invalid assignment target");
    break;
  case RefKind::Local:
    emitOp(Op::SetLocal, 0); // peeks
    emitU16(R.Slot);
    break;
  case RefKind::Global:
    emitOp(Op::SetGlobal, 0);
    emitU16(R.Slot);
    break;
  case RefKind::Prop:
    emitOp(Op::SetProp, -1); // obj value -> value
    emitU16(R.Slot);
    emitU16(allocIC());
    break;
  case RefKind::Elem:
    emitOp(Op::SetElem, -2); // obj idx value -> value
    break;
  }
}

void Parser::dupRefOperands(const Ref &R) {
  switch (R.Kind) {
  case RefKind::Prop:
    emitOp(Op::Dup, +1);
    break;
  case RefKind::Elem:
    emitOp(Op::Dup2, +2);
    break;
  default:
    break;
  }
}

// --- Expressions ------------------------------------------------------------------

int Parser::binaryPrecedence(Tok T) {
  switch (T) {
  case Tok::PipePipe:
    return PrecOr;
  case Tok::AmpAmp:
    return PrecAnd;
  case Tok::Pipe:
    return PrecBitOr;
  case Tok::Caret:
    return PrecBitXor;
  case Tok::Amp:
    return PrecBitAnd;
  case Tok::EqEq:
  case Tok::NotEq:
  case Tok::StrictEq:
  case Tok::StrictNe:
    return PrecEquality;
  case Tok::Lt:
  case Tok::Le:
  case Tok::Gt:
  case Tok::Ge:
    return PrecRelational;
  case Tok::Shl:
  case Tok::Shr:
  case Tok::Ushr:
    return PrecShift;
  case Tok::Plus:
  case Tok::Minus:
    return PrecAdditive;
  case Tok::Star:
  case Tok::Slash:
  case Tok::Percent:
    return PrecMultiplicative;
  case Tok::Question:
    return PrecTernary;
  default:
    return PrecNone;
  }
}

Op Parser::binaryOp(Tok T) {
  switch (T) {
  case Tok::Pipe:
    return Op::BitOr;
  case Tok::Caret:
    return Op::BitXor;
  case Tok::Amp:
    return Op::BitAnd;
  case Tok::EqEq:
    return Op::Eq;
  case Tok::NotEq:
    return Op::Ne;
  case Tok::StrictEq:
    return Op::StrictEq;
  case Tok::StrictNe:
    return Op::StrictNe;
  case Tok::Lt:
    return Op::Lt;
  case Tok::Le:
    return Op::Le;
  case Tok::Gt:
    return Op::Gt;
  case Tok::Ge:
    return Op::Ge;
  case Tok::Shl:
    return Op::Shl;
  case Tok::Shr:
    return Op::Shr;
  case Tok::Ushr:
    return Op::Ushr;
  case Tok::Plus:
    return Op::Add;
  case Tok::Minus:
    return Op::Sub;
  case Tok::Star:
    return Op::Mul;
  case Tok::Slash:
    return Op::Div;
  case Tok::Percent:
    return Op::Mod;
  default:
    assert(false && "not a binary operator");
    return Op::Nop;
  }
}

bool Parser::isAssignToken(Tok T) {
  switch (T) {
  case Tok::Assign:
  case Tok::PlusAssign:
  case Tok::MinusAssign:
  case Tok::StarAssign:
  case Tok::SlashAssign:
  case Tok::PercentAssign:
  case Tok::AmpAssign:
  case Tok::PipeAssign:
  case Tok::CaretAssign:
  case Tok::ShlAssign:
  case Tok::ShrAssign:
  case Tok::UshrAssign:
    return true;
  default:
    return false;
  }
}

Op Parser::compoundOp(Tok T) {
  switch (T) {
  case Tok::PlusAssign:
    return Op::Add;
  case Tok::MinusAssign:
    return Op::Sub;
  case Tok::StarAssign:
    return Op::Mul;
  case Tok::SlashAssign:
    return Op::Div;
  case Tok::PercentAssign:
    return Op::Mod;
  case Tok::AmpAssign:
    return Op::BitAnd;
  case Tok::PipeAssign:
    return Op::BitOr;
  case Tok::CaretAssign:
    return Op::BitXor;
  case Tok::ShlAssign:
    return Op::Shl;
  case Tok::ShrAssign:
    return Op::Shr;
  case Tok::UshrAssign:
    return Op::Ushr;
  default:
    assert(false && "not a compound assignment");
    return Op::Nop;
  }
}

void Parser::parsePrecedence(int MinPrec) {
  if (HadError)
    return;
  Ref R = parseUnaryRef();

  // Assignment: only permitted when this level accepts it and the left side
  // was a plain reference.
  if (MinPrec <= PrecAssignment && isAssignToken(Cur.Kind)) {
    Tok AssignTok = Cur.Kind;
    advance();
    if (AssignTok == Tok::Assign) {
      parsePrecedence(PrecAssignment); // right associative
      storeRef(R);
    } else {
      dupRefOperands(R);
      loadRef(R);
      parsePrecedence(PrecAssignment);
      emitOp(compoundOp(AssignTok), -1);
      storeRef(R);
    }
    return;
  }

  loadRef(R);

  for (;;) {
    int Prec = binaryPrecedence(Cur.Kind);
    if (Prec == PrecNone || Prec < MinPrec)
      return;
    Tok OpTok = Cur.Kind;
    advance();

    if (OpTok == Tok::Question) {
      // cond ? a : b
      uint32_t Else = emitJump(Op::JumpIfFalse, -1);
      parsePrecedence(PrecAssignment);
      uint32_t End = emitJump(Op::Jump, 0);
      adjustStack(-1); // the two arms merge to one value
      patchJump(Else, here());
      expect(Tok::Colon, "':'");
      parsePrecedence(PrecTernary);
      patchJump(End, here());
      continue;
    }
    if (OpTok == Tok::AmpAmp) {
      emitOp(Op::Dup, +1);
      uint32_t End = emitJump(Op::JumpIfFalse, -1);
      emitOp(Op::Pop, -1);
      parsePrecedence(PrecAnd + 1);
      patchJump(End, here());
      continue;
    }
    if (OpTok == Tok::PipePipe) {
      emitOp(Op::Dup, +1);
      uint32_t End = emitJump(Op::JumpIfTrue, -1);
      emitOp(Op::Pop, -1);
      parsePrecedence(PrecOr + 1);
      patchJump(End, here());
      continue;
    }

    parsePrecedence(Prec + 1);
    emitOp(binaryOp(OpTok), -1);
  }
}

Parser::Ref Parser::parseUnaryRef() {
  switch (Cur.Kind) {
  case Tok::Minus:
    advance();
    parsePrecedence(PrecUnary);
    emitOp(Op::Neg, 0);
    return {};
  case Tok::Plus:
    advance();
    // Unary plus: ToNumber. Our operands are already numbers in the subset;
    // compile as x - 0 to force a numeric context errorlessly.
    parsePrecedence(PrecUnary);
    return {};
  case Tok::Bang:
    advance();
    parsePrecedence(PrecUnary);
    emitOp(Op::LogicalNot, 0);
    return {};
  case Tok::Tilde:
    advance();
    parsePrecedence(PrecUnary);
    emitOp(Op::BitNot, 0);
    return {};
  case Tok::PlusPlus:
  case Tok::MinusMinus: {
    bool Inc = Cur.Kind == Tok::PlusPlus;
    advance();
    Ref R = parseUnaryRef();
    R = parsePostfixChain(R);
    if (R.Kind == RefKind::None) {
      errorAt(Prev, "invalid increment target");
      return {};
    }
    dupRefOperands(R);
    loadRef(R);
    emitOp(Op::PushConst, +1);
    emitU16(addConst(Value::makeInt(1)));
    emitOp(Inc ? Op::Add : Op::Sub, -1);
    storeRef(R);
    return {};
  }
  default: {
    Ref R;
    parsePrimaryInto(R);
    R = parsePostfixChain(R);
    // Postfix ++/--: compute the new value, store it, and recover the old
    // value arithmetically (new -/+ 1); ++/-- are always numeric.
    if (check(Tok::PlusPlus) || check(Tok::MinusMinus)) {
      bool Inc = check(Tok::PlusPlus);
      advance();
      if (R.Kind == RefKind::None) {
        errorAt(Prev, "invalid increment target");
        return {};
      }
      dupRefOperands(R);
      loadRef(R);
      emitOp(Op::PushConst, +1);
      emitU16(addConst(Value::makeInt(1)));
      emitOp(Inc ? Op::Add : Op::Sub, -1);
      storeRef(R);
      emitOp(Op::PushConst, +1);
      emitU16(addConst(Value::makeInt(1)));
      emitOp(Inc ? Op::Sub : Op::Add, -1);
      return {};
    }
    return R;
  }
  }
}

void Parser::parsePrimaryInto(Ref &R) {
  switch (Cur.Kind) {
  case Tok::Number: {
    uint16_t K = addNumberConst(Cur.NumValue);
    advance();
    emitOp(Op::PushConst, +1);
    emitU16(K);
    return;
  }
  case Tok::StringLit: {
    std::string Decoded = decodeStringLiteral(Cur.Text);
    advance();
    String *S = Ctx.Atoms.intern(Decoded); // interned: stable + rooted
    uint16_t K = addConst(Value::makeString(S));
    emitOp(Op::PushConst, +1);
    emitU16(K);
    return;
  }
  case Tok::KwTrue:
  case Tok::KwFalse: {
    bool B = Cur.Kind == Tok::KwTrue;
    advance();
    emitOp(Op::PushConst, +1);
    emitU16(addConst(Value::makeBoolean(B)));
    return;
  }
  case Tok::KwNull:
    advance();
    emitOp(Op::PushConst, +1);
    emitU16(addConst(Value::null()));
    return;
  case Tok::KwUndefined:
    advance();
    emitOp(Op::PushUndefined, +1);
    return;
  case Tok::Identifier: {
    std::string Name(Cur.Text);
    advance();
    if (InFunction && Locals.count(Name)) {
      R.Kind = RefKind::Local;
      R.Slot = Locals[Name];
    } else {
      R.Kind = RefKind::Global;
      R.Slot = globalSlot(Name);
    }
    return;
  }
  case Tok::LParen:
    advance();
    expression();
    expect(Tok::RParen, "')'");
    return;
  case Tok::LBracket: {
    advance();
    uint16_t N = 0;
    if (!check(Tok::RBracket)) {
      do {
        expression();
        ++N;
      } while (accept(Tok::Comma));
    }
    expect(Tok::RBracket, "']'");
    emitOp(Op::NewArray, 1 - (int)N);
    emitU16(N);
    return;
  }
  case Tok::LBrace: {
    advance();
    emitOp(Op::NewObject, +1);
    if (!check(Tok::RBrace)) {
      do {
        if (!check(Tok::Identifier) && !check(Tok::StringLit)) {
          errorAt(Cur, "expected property name");
          return;
        }
        uint16_t A = check(Tok::StringLit)
                         ? addAtom(decodeStringLiteral(Cur.Text))
                         : addAtom(Cur.Text);
        advance();
        expect(Tok::Colon, "':'");
        expression();
        emitOp(Op::InitProp, -1);
        emitU16(A);
      } while (accept(Tok::Comma));
    }
    expect(Tok::RBrace, "'}'");
    return;
  }
  default:
    errorAt(Cur, "expected expression");
    return;
  }
}

void Parser::callArguments(uint8_t &ArgC) {
  ArgC = 0;
  if (!check(Tok::RParen)) {
    do {
      expression();
      ++ArgC;
    } while (accept(Tok::Comma));
  }
  expect(Tok::RParen, "')'");
}

Parser::Ref Parser::parsePostfixChain(Ref R) {
  for (;;) {
    if (HadError)
      return R;
    if (check(Tok::Dot)) {
      advance();
      if (!check(Tok::Identifier)) {
        errorAt(Cur, "expected property name after '.'");
        return R;
      }
      uint16_t A = addAtom(Cur.Text);
      advance();
      if (check(Tok::LParen)) {
        // Method call: receiver stays on the stack for CallProp.
        loadRef(R);
        advance();
        uint8_t ArgC;
        callArguments(ArgC);
        emitOp(Op::CallProp, -(int)ArgC); // recv argN -> result
        emitU16(A);
        emitU8(ArgC);
        R = Ref{};
      } else {
        loadRef(R);
        R.Kind = RefKind::Prop;
        R.Slot = A;
      }
      continue;
    }
    if (check(Tok::LBracket)) {
      loadRef(R);
      advance();
      expression();
      expect(Tok::RBracket, "']'");
      R = Ref{};
      R.Kind = RefKind::Elem;
      continue;
    }
    if (check(Tok::LParen)) {
      loadRef(R);
      advance();
      uint8_t ArgC;
      callArguments(ArgC);
      emitOp(Op::Call, -(int)ArgC); // callee argN -> result
      emitU8(ArgC);
      R = Ref{};
      continue;
    }
    return R;
  }
}

// --- Statements -----------------------------------------------------------------

void Parser::statement() {
  if (HadError)
    return;
  ++StmtDepth;
  switch (Cur.Kind) {
  case Tok::LBrace:
    advance();
    block();
    break;
  case Tok::KwVar:
    varStatement();
    break;
  case Tok::KwFunction:
    functionDeclaration();
    break;
  case Tok::KwIf:
    ifStatement();
    break;
  case Tok::KwWhile:
    whileStatement();
    break;
  case Tok::KwDo:
    doWhileStatement();
    break;
  case Tok::KwFor:
    forStatement();
    break;
  case Tok::KwBreak:
    breakStatement();
    break;
  case Tok::KwContinue:
    continueStatement();
    break;
  case Tok::KwReturn:
    returnStatement();
    break;
  case Tok::Semicolon:
    advance();
    break;
  default:
    expressionStatement();
    break;
  }
  --StmtDepth;
}

void Parser::block() {
  while (!check(Tok::RBrace) && !check(Tok::Eof) && !HadError)
    statement();
  expect(Tok::RBrace, "'}'");
}

void Parser::varStatement() {
  advance(); // var
  do {
    if (!check(Tok::Identifier)) {
      errorAt(Cur, "expected variable name");
      return;
    }
    std::string Name(Cur.Text);
    advance();
    Ref R;
    if (InFunction) {
      R.Kind = RefKind::Local;
      R.Slot = localSlot(Name, /*Declare=*/true);
    } else {
      R.Kind = RefKind::Global;
      R.Slot = globalSlot(Name);
    }
    if (accept(Tok::Assign)) {
      expression();
      storeRef(R);
      emitOp(Op::Pop, -1);
    }
  } while (accept(Tok::Comma));
  expect(Tok::Semicolon, "';'");
}

void Parser::functionDeclaration() {
  advance(); // function
  if (InFunction) {
    errorAt(Cur, "nested functions are not supported");
    return;
  }
  if (!check(Tok::Identifier)) {
    errorAt(Cur, "expected function name");
    return;
  }
  std::string Name(Cur.Text);
  advance();

  // Swap in a fresh compilation context for the function body.
  auto *Fn = new FunctionScript();
  Fn->Id = (uint32_t)Ctx.Scripts.size();
  Fn->Name = Name;
  Ctx.Scripts.emplace_back(Fn);

  FunctionScript *SavedScript = Script;
  auto SavedLocals = std::move(Locals);
  auto SavedLoops = std::move(LoopStack);
  int SavedDepth = StackDepth;
  Script = Fn;
  Locals.clear();
  LoopStack.clear();
  StackDepth = 0;
  InFunction = true;

  expect(Tok::LParen, "'('");
  if (!check(Tok::RParen)) {
    do {
      if (!check(Tok::Identifier)) {
        errorAt(Cur, "expected parameter name");
        break;
      }
      localSlot(Cur.Text, /*Declare=*/true);
      ++Fn->Arity;
      advance();
    } while (accept(Tok::Comma));
  }
  expect(Tok::RParen, "')'");
  expect(Tok::LBrace, "'{'");
  block();
  emitOp(Op::ReturnUndefined, 0);

  InFunction = false;
  Script = SavedScript;
  Locals = std::move(SavedLocals);
  LoopStack = std::move(SavedLoops);
  StackDepth = SavedDepth;

  // Bind the function object now (function declarations are hoisted).
  Object *FnObj = Object::createFunction(Ctx.TheHeap, Ctx.Shapes, Fn);
  uint16_t Slot = globalSlot(Name);
  Ctx.Globals.Values[Slot] = Value::makeObject(FnObj);
}

void Parser::ifStatement() {
  advance();
  expect(Tok::LParen, "'('");
  expression();
  expect(Tok::RParen, "')'");
  uint32_t Else = emitJump(Op::JumpIfFalse, -1);
  statement();
  if (accept(Tok::KwElse)) {
    uint32_t End = emitJump(Op::Jump, 0);
    patchJump(Else, here());
    statement();
    patchJump(End, here());
  } else {
    patchJump(Else, here());
  }
}

void Parser::whileStatement() {
  advance();
  uint32_t Header = here();
  uint32_t LoopIndex = (uint32_t)Script->Loops.size();
  Script->Loops.push_back({Header, 0, nullptr});
  emitOp(Op::LoopHeader, 0);
  emitU16((uint16_t)LoopIndex);

  expect(Tok::LParen, "'('");
  expression();
  expect(Tok::RParen, "')'");
  uint32_t Exit = emitJump(Op::JumpIfFalse, -1);

  LoopStack.push_back({Header, LoopIndex, {}, {}, true});
  statement();
  LoopCtx L = std::move(LoopStack.back());
  LoopStack.pop_back();

  emitOp(Op::Jump, 0);
  emitU32(Header);
  patchJump(Exit, here());
  for (uint32_t P : L.BreakPatches)
    patchJump(P, here());
  Script->Loops[LoopIndex].EndPc = here();
}

void Parser::doWhileStatement() {
  advance();
  uint32_t Header = here();
  uint32_t LoopIndex = (uint32_t)Script->Loops.size();
  Script->Loops.push_back({Header, 0, nullptr});
  emitOp(Op::LoopHeader, 0);
  emitU16((uint16_t)LoopIndex);

  LoopStack.push_back({Header, LoopIndex, {}, {}, false});
  statement();
  LoopCtx L = std::move(LoopStack.back());
  LoopStack.pop_back();

  for (uint32_t P : L.ContinuePatches)
    patchJump(P, here());
  expect(Tok::KwWhile, "'while'");
  expect(Tok::LParen, "'('");
  expression();
  expect(Tok::RParen, "')'");
  accept(Tok::Semicolon);
  emitOp(Op::JumpIfTrue, -1);
  emitU32(Header);
  for (uint32_t P : L.BreakPatches)
    patchJump(P, here());
  Script->Loops[LoopIndex].EndPc = here();
}

void Parser::forStatement() {
  advance();
  expect(Tok::LParen, "'('");

  // Init clause.
  if (check(Tok::KwVar)) {
    varStatement(); // consumes the ';'
  } else if (check(Tok::Semicolon)) {
    advance();
  } else {
    expression();
    emitOp(Op::Pop, -1);
    expect(Tok::Semicolon, "';'");
  }

  uint32_t Header = here();
  uint32_t LoopIndex = (uint32_t)Script->Loops.size();
  Script->Loops.push_back({Header, 0, nullptr});
  emitOp(Op::LoopHeader, 0);
  emitU16((uint16_t)LoopIndex);

  // Condition clause.
  uint32_t Exit = 0;
  bool HasCond = false;
  if (!check(Tok::Semicolon)) {
    expression();
    Exit = emitJump(Op::JumpIfFalse, -1);
    HasCond = true;
  }
  expect(Tok::Semicolon, "';'");

  // Increment clause: compiled after the body; remember its source span by
  // buffering the tokens? Simpler: compile it now into a scratch script and
  // splice. We instead use the classic jump shuffle:
  //   header: cond; jf exit; jump body; incr_label: incr; jump header;
  //   body: ...; jump incr_label
  uint32_t ToBody = 0;
  uint32_t IncrLabel = 0;
  bool HasIncr = !check(Tok::RParen);
  if (HasIncr) {
    ToBody = emitJump(Op::Jump, 0);
    IncrLabel = here();
    expression();
    emitOp(Op::Pop, -1);
    emitOp(Op::Jump, 0);
    emitU32(Header);
  }
  expect(Tok::RParen, "')'");
  if (HasIncr)
    patchJump(ToBody, here());

  LoopStack.push_back({HasIncr ? IncrLabel : Header, LoopIndex, {}, {},
                       /*ContinueTargetsHeader=*/true});
  statement();
  LoopCtx L = std::move(LoopStack.back());
  LoopStack.pop_back();

  emitOp(Op::Jump, 0);
  emitU32(HasIncr ? IncrLabel : Header);
  if (HasCond)
    patchJump(Exit, here());
  for (uint32_t P : L.BreakPatches)
    patchJump(P, here());
  Script->Loops[LoopIndex].EndPc = here();
}

void Parser::breakStatement() {
  advance();
  expect(Tok::Semicolon, "';'");
  if (LoopStack.empty()) {
    errorAt(Prev, "'break' outside of a loop");
    return;
  }
  LoopStack.back().BreakPatches.push_back(emitJump(Op::Jump, 0));
}

void Parser::continueStatement() {
  advance();
  expect(Tok::Semicolon, "';'");
  if (LoopStack.empty()) {
    errorAt(Prev, "'continue' outside of a loop");
    return;
  }
  LoopCtx &L = LoopStack.back();
  if (L.ContinueTargetsHeader) {
    emitOp(Op::Jump, 0);
    emitU32(L.HeaderPc);
  } else {
    L.ContinuePatches.push_back(emitJump(Op::Jump, 0));
  }
}

void Parser::returnStatement() {
  advance();
  if (!InFunction) {
    errorAt(Prev, "'return' outside of a function");
    return;
  }
  if (check(Tok::Semicolon)) {
    advance();
    emitOp(Op::ReturnUndefined, 0);
    return;
  }
  expression();
  expect(Tok::Semicolon, "';'");
  emitOp(Op::Return, -1);
}

void Parser::expressionStatement() {
  expression();
  expect(Tok::Semicolon, "';'");
  // Top-level expression statements feed the program's result value. Loop
  // bodies and nested blocks sit at depth >= 2, so hot code keeps the plain
  // Pop and traces never contain PopResult.
  if (!InFunction && StmtDepth == 1)
    emitOp(Op::PopResult, -1);
  else
    emitOp(Op::Pop, -1);
}

FunctionScript *Parser::parseProgram() {
  auto *Top = new FunctionScript();
  Top->Id = (uint32_t)Ctx.Scripts.size();
  Top->Name = "";
  Ctx.Scripts.emplace_back(Top);
  Script = Top;
  InFunction = false;
  StackDepth = 0;

  while (!check(Tok::Eof) && !HadError)
    statement();
  emitOp(Op::ReturnUndefined, 0);
  return HadError ? nullptr : Top;
}

FunctionScript *compileSource(VMContext &Ctx, std::string_view Source,
                              EngineError *ErrorOut) {
  Parser P(Ctx, Source);
  FunctionScript *S = P.parseProgram();
  if (!S && ErrorOut)
    *ErrorOut = P.error();
  return S;
}

FunctionScript *compileSource(VMContext &Ctx, std::string_view Source,
                              std::string *ErrorOut) {
  Parser P(Ctx, Source);
  FunctionScript *S = P.parseProgram();
  if (!S && ErrorOut)
    *ErrorOut = P.errorMessage();
  return S;
}

} // namespace tracejit
