//===- lexer.h - MiniJS tokenizer -------------------------------------------===//

#ifndef TRACEJIT_FRONTEND_LEXER_H
#define TRACEJIT_FRONTEND_LEXER_H

#include <cstdint>
#include <string>
#include <string_view>

namespace tracejit {

enum class Tok : uint8_t {
  Eof,
  Error,
  Identifier,
  Number,
  StringLit,
  // Keywords.
  KwVar,
  KwFunction,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwDo,
  KwBreak,
  KwContinue,
  KwReturn,
  KwTrue,
  KwFalse,
  KwNull,
  KwUndefined,
  // Punctuation / operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semicolon,
  Comma,
  Dot,
  Colon,
  Question,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  Pipe,
  Caret,
  Tilde,
  Bang,
  Shl,
  Shr,
  Ushr,
  Lt,
  Le,
  Gt,
  Ge,
  EqEq,
  NotEq,
  StrictEq,
  StrictNe,
  AmpAmp,
  PipePipe,
  Assign,
  PlusAssign,
  MinusAssign,
  StarAssign,
  SlashAssign,
  PercentAssign,
  AmpAssign,
  PipeAssign,
  CaretAssign,
  ShlAssign,
  ShrAssign,
  UshrAssign,
  PlusPlus,
  MinusMinus,
};

struct Token {
  Tok Kind = Tok::Eof;
  std::string_view Text;
  double NumValue = 0;
  uint32_t Line = 1;
  uint32_t Col = 1; ///< 1-based column of the token's first character.
};

/// Hand-written scanner for the MiniJS subset: //- and /*-comments, decimal
/// and hex numbers, single/double-quoted strings with the common escapes.
class Lexer {
public:
  explicit Lexer(std::string_view Source) : Src(Source) {}

  Token next();

private:
  void skipTrivia();
  Token makeToken(Tok K, size_t Start);
  Token identifierOrKeyword();
  Token number();
  Token stringLiteral(char Quote);

  char peek(size_t Off = 0) const {
    return Pos + Off < Src.size() ? Src[Pos + Off] : 0;
  }
  char advance() { return Src[Pos++]; }
  bool match(char C) {
    if (peek() != C)
      return false;
    ++Pos;
    return true;
  }

  std::string_view Src;
  size_t Pos = 0;
  uint32_t Line = 1;
  size_t LineStart = 0; ///< Pos of the first character of the current line.
  // Line/column of the token being scanned (latched by next()).
  uint32_t TokLine = 1;
  uint32_t TokCol = 1;
};

/// Decode the escapes in a raw string literal body (without quotes).
std::string decodeStringLiteral(std::string_view Raw);

} // namespace tracejit

#endif // TRACEJIT_FRONTEND_LEXER_H
