//===- stats.cpp - VM activity counters and timers ------------------------===//

#include "support/stats.h"

#include <cstdio>

namespace tracejit {

const char *activityName(Activity A) {
  switch (A) {
  case Activity::Interpret:
    return "interpret";
  case Activity::Monitor:
    return "monitor";
  case Activity::RecordInterpret:
    return "record";
  case Activity::Compile:
    return "compile";
  case Activity::Native:
    return "native";
  case Activity::ExitOverhead:
    return "exit-overhead";
  case Activity::NumActivities:
    break;
  }
  return "?";
}

std::string VMStats::report() const {
  char Buf[512];
  std::string Out;
  snprintf(Buf, sizeof(Buf),
           "bytecodes: interpreted=%llu recorded=%llu native=%llu\n",
           (unsigned long long)BytecodesInterpreted,
           (unsigned long long)BytecodesRecorded,
           (unsigned long long)BytecodesNative);
  Out += Buf;
  snprintf(Buf, sizeof(Buf),
           "traces: started=%llu completed=%llu aborted=%llu trees=%llu "
           "branches=%llu\n",
           (unsigned long long)TracesStarted,
           (unsigned long long)TracesCompleted,
           (unsigned long long)TracesAborted, (unsigned long long)TreesCompiled,
           (unsigned long long)BranchesCompiled);
  Out += Buf;
  snprintf(Buf, sizeof(Buf),
           "transfers: enters=%llu exits=%llu stitched=%llu treecalls=%llu "
           "unstable-links=%llu blacklisted=%llu\n",
           (unsigned long long)TraceEnters, (unsigned long long)SideExits,
           (unsigned long long)StitchedTransfers,
           (unsigned long long)TreeCalls, (unsigned long long)UnstableLinks,
           (unsigned long long)LoopsBlacklisted);
  Out += Buf;
  if (LoopsPromoted || LoopsDemoted || MethodCompiles || MethodEnters) {
    snprintf(Buf, sizeof(Buf),
             "tiers: promoted=%llu demoted=%llu method-compiles=%llu "
             "method-enters=%llu\n",
             (unsigned long long)LoopsPromoted,
             (unsigned long long)LoopsDemoted,
             (unsigned long long)MethodCompiles,
             (unsigned long long)MethodEnters);
    Out += Buf;
  }
  if (IcHits || IcMisses || IcInvalidations || IcMegamorphicSites ||
      IcRecorderHits) {
    snprintf(Buf, sizeof(Buf),
             "inline caches: hits=%llu misses=%llu invalidated=%llu "
             "megamorphic-sites=%llu recorder-hits=%llu\n",
             (unsigned long long)IcHits, (unsigned long long)IcMisses,
             (unsigned long long)IcInvalidations,
             (unsigned long long)IcMegamorphicSites,
             (unsigned long long)IcRecorderHits);
    Out += Buf;
  }
  if (CacheFlushes || FragmentsRetired || BackendFallbacks || ProtectFaults ||
      JitDisables) {
    snprintf(Buf, sizeof(Buf),
             "code cache: flushes=%llu retired=%llu reclaimed-bytes=%llu "
             "backend-fallbacks=%llu protect-faults=%llu jit-disabled=%llu\n",
             (unsigned long long)CacheFlushes,
             (unsigned long long)FragmentsRetired,
             (unsigned long long)CacheBytesReclaimed,
             (unsigned long long)BackendFallbacks,
             (unsigned long long)ProtectFaults,
             (unsigned long long)JitDisables);
    Out += Buf;
  }
  if (CompileJobsQueued || CompileJobsPublished || CompileJobsDropped) {
    snprintf(Buf, sizeof(Buf),
             "compile queue: queued=%llu published=%llu dropped=%llu\n",
             (unsigned long long)CompileJobsQueued,
             (unsigned long long)CompileJobsPublished,
             (unsigned long long)CompileJobsDropped);
    Out += Buf;
  }
  if (GuardsEliminated || OverflowChecksFolded || IdxStrengthReduced ||
      InsHoisted || LoopsWithPrologue || EntryDeopts) {
    snprintf(Buf, sizeof(Buf),
             "loop optimizer: guards-elim=%llu ovf-folded=%llu "
             "idx-reduced=%llu hoisted=%llu (guards=%llu) prologues=%llu "
             "entry-deopts=%llu\n",
             (unsigned long long)GuardsEliminated,
             (unsigned long long)OverflowChecksFolded,
             (unsigned long long)IdxStrengthReduced,
             (unsigned long long)InsHoisted,
             (unsigned long long)GuardsHoisted,
             (unsigned long long)LoopsWithPrologue,
             (unsigned long long)EntryDeopts);
    Out += Buf;
  }
  if (Timeouts || HostInterrupts || HeapQuotaHits || StackOverflows) {
    snprintf(Buf, sizeof(Buf),
             "resource governance: timeouts=%llu host-interrupts=%llu "
             "heap-quota-hits=%llu stack-overflows=%llu\n",
             (unsigned long long)Timeouts, (unsigned long long)HostInterrupts,
             (unsigned long long)HeapQuotaHits,
             (unsigned long long)StackOverflows);
    Out += Buf;
  }
  if (AnalysisRuns || StaticGuardsElided || StaticDemotionsSeeded ||
      StaticMegaSeeded || StaticFactChecks) {
    snprintf(Buf, sizeof(Buf),
             "static analysis: runs=%llu facts=%llu diagnostics=%llu "
             "guards-elided=%llu demotions-seeded=%llu mega-seeded=%llu "
             "fact-checks=%llu contradictions=%llu\n",
             (unsigned long long)AnalysisRuns,
             (unsigned long long)AnalysisFacts,
             (unsigned long long)AnalysisDiagnostics,
             (unsigned long long)StaticGuardsElided,
             (unsigned long long)StaticDemotionsSeeded,
             (unsigned long long)StaticMegaSeeded,
             (unsigned long long)StaticFactChecks,
             (unsigned long long)StaticFactContradictions);
    Out += Buf;
  }
  if (TracesVerified || LirInsVerified || VerifyFailures) {
    snprintf(Buf, sizeof(Buf),
             "lir verifier: traces=%llu instructions=%llu failures=%llu\n",
             (unsigned long long)TracesVerified,
             (unsigned long long)LirInsVerified,
             (unsigned long long)VerifyFailures);
    Out += Buf;
  }
  if (VerifyFailures > 0) {
    Out += "verify failures by rule:\n";
    for (size_t R = 0; R < (size_t)VerifyRule::NumRules; ++R) {
      if (VerifyFailuresByRule[R] == 0)
        continue;
      snprintf(Buf, sizeof(Buf), "  %-24s %llu\n",
               verifyRuleName((VerifyRule)R),
               (unsigned long long)VerifyFailuresByRule[R]);
      Out += Buf;
    }
  }
  if (TracesAborted > 0) {
    Out += "aborts by reason:\n";
    for (size_t R = 0; R < (size_t)AbortReason::NumReasons; ++R) {
      if (AbortsByReason[R] == 0)
        continue;
      snprintf(Buf, sizeof(Buf), "  %-24s %llu\n",
               abortReasonName((AbortReason)R),
               (unsigned long long)AbortsByReason[R]);
      Out += Buf;
    }
  }
  double Total = totalSeconds();
  for (size_t I = 0; I < (size_t)Activity::NumActivities; ++I) {
    double S = ActivitySeconds[I];
    snprintf(Buf, sizeof(Buf), "time %-14s %8.3f ms (%5.1f%%)\n",
             activityName((Activity)I), S * 1e3,
             Total > 0 ? 100.0 * S / Total : 0.0);
    Out += Buf;
  }
  return Out;
}

} // namespace tracejit
