//===- arena.cpp - Bump-pointer arena allocator ---------------------------===//

#include "support/arena.h"

#include <cstdlib>

namespace tracejit {

void Arena::grow(size_t Need) {
  size_t Size = NextChunkSize;
  if (Size < Need)
    Size = Need;
  NextChunkSize = NextChunkSize * 2;
  if (NextChunkSize > 1024 * 1024)
    NextChunkSize = 1024 * 1024;
  char *Chunk = static_cast<char *>(std::malloc(Size));
  Chunks.push_back(Chunk);
  Cur = reinterpret_cast<uintptr_t>(Chunk);
  End = Cur + Size;
}

void Arena::reset() {
  for (char *C : Chunks)
    std::free(C);
  Chunks.clear();
  Cur = End = 0;
  NextChunkSize = 16 * 1024;
  TotalAllocated = 0;
}

} // namespace tracejit
