//===- events.cpp - Structured JIT observability ----------------------------===//

#include "support/events.h"

#include <algorithm>
#include <cinttypes>

#include "api/options.h"
#include "jit/fragment.h"
#include "trace/tier.h"
#include "vm/ic.h"

namespace tracejit {

// --- Name tables ---------------------------------------------------------------
//
// Each enum's names live in one X-macro list. The static_asserts below pin
// both the count (a new enumerator without a name entry fails to compile)
// and the position (a reordered entry fails to compile), so a name can
// never silently print as "?". tests/test_name_tables.cpp re-checks the
// same properties at runtime across the public lookup functions.

#define TJ_FOR_EACH_ABORT_REASON(M)                                            \
  M(None, "none")                                                              \
  M(UntrackedSlot, "untracked-slot")                                           \
  M(NonNumericArith, "non-numeric-arith")                                      \
  M(MixedConcat, "mixed-concat")                                               \
  M(UntraceableCompare, "untraceable-compare")                                 \
  M(NonNumericBitop, "non-numeric-bitop")                                      \
  M(NonNumericIndex, "non-numeric-index")                                      \
  M(PropOnPrimitive, "prop-on-primitive")                                      \
  M(PropAddsSlot, "prop-adds-slot")                                            \
  M(UnknownStringProp, "unknown-string-prop")                                  \
  M(ElemOnNonArray, "elem-on-non-array")                                       \
  M(InitPropOnNonObject, "initprop-on-non-object")                             \
  M(MegamorphicSite, "megamorphic-site")                                       \
  M(RecursiveCall, "recursive-call")                                           \
  M(InlineDepthLimit, "inline-depth-limit")                                    \
  M(CallOfNonFunction, "call-of-non-function")                                 \
  M(UntraceableNative, "untraceable-native")                                   \
  M(UnsupportedReceiver, "unsupported-receiver")                               \
  M(ReturnBelowEntryFrame, "return-below-entry-frame")                         \
  M(TraceTooLong, "trace-too-long")                                            \
  M(UnsupportedBytecode, "unsupported-bytecode")                               \
  M(NestingDisabled, "nesting-disabled")                                       \
  M(InnerTreeNotReady, "inner-tree-not-ready")                                 \
  M(InnerTreeSideExit, "inner-tree-side-exit")                                 \
  M(PreemptedInInnerCall, "preempted-in-inner-call")                           \
  M(DispatchUnwound, "dispatch-unwound")                                       \
  M(TypecheckFailed, "typecheck-failed")                                       \
  M(CompilePoolExhausted, "compile-pool-exhausted")                            \
  M(CompileOverflow, "compile-overflow")                                       \
  M(CompileUnsupported, "compile-unsupported")                                 \
  M(CompileFault, "compile-fault")                                             \
  M(CompileQueueFull, "compile-queue-full")                                    \
  M(VerifyFailed, "verify-failed")                                             \
  M(Interrupted, "interrupted")

#define TJ_FOR_EACH_VERIFY_RULE(M)                                             \
  M(None, "none")                                                              \
  M(MissingOperand, "missing-operand")                                         \
  M(UseBeforeDef, "use-before-def")                                            \
  M(DanglingOperand, "dangling-operand")                                       \
  M(OperandType, "operand-type")                                               \
  M(ResultType, "result-type")                                                 \
  M(CallSignature, "call-signature")                                           \
  M(GuardWithoutExit, "guard-without-exit")                                    \
  M(ShiftCountNotImm, "shift-count-not-imm")                                   \
  M(TarAddressing, "tar-addressing")                                           \
  M(ExitTypeMapLength, "exit-type-map-length")                                 \
  M(ExitFrameBounds, "exit-frame-bounds")                                      \
  M(TransferTarget, "transfer-target")                                         \
  M(TreeCallTypeMaps, "tree-call-type-maps")                                   \
  M(Terminator, "terminator")                                                  \
  M(PrologueShape, "prologue-shape")                                           \
  M(PrologueEffect, "prologue-effect")                                         \
  M(PrologueExit, "prologue-exit")

#define TJ_FOR_EACH_JIT_EVENT_KIND(M)                                          \
  M(LoopHot, "LoopHot")                                                        \
  M(RecordStart, "RecordStart")                                                \
  M(RecordAbort, "RecordAbort")                                                \
  M(TreeCompiled, "TreeCompiled")                                              \
  M(BranchCompiled, "BranchCompiled")                                          \
  M(SideExit, "SideExit")                                                      \
  M(Blacklisted, "Blacklisted")                                                \
  M(TreeCall, "TreeCall")                                                      \
  M(StitchedTransfer, "StitchedTransfer")                                      \
  M(GC, "GC")                                                                  \
  M(CacheFlush, "CacheFlush")                                                  \
  M(FragmentRetired, "FragmentRetired")                                        \
  M(JitDisabled, "JitDisabled")                                                \
  M(BackendFallback, "BackendFallback")                                        \
  M(IcTransition, "IcTransition")                                              \
  M(IcInvalidateAll, "IcInvalidateAll")                                        \
  M(CompileJobQueued, "CompileJobQueued")                                      \
  M(CompileJobDropped, "CompileJobDropped")                                    \
  M(ScriptInterrupted, "ScriptInterrupted")                                    \
  M(EngineRecycled, "EngineRecycled")                                          \
  M(AnalysisRan, "AnalysisRan")                                                \
  M(TierPromoted, "TierPromoted")                                              \
  M(MethodCompiled, "MethodCompiled")                                          \
  M(MethodEntered, "MethodEntered")

namespace {

#define TJ_NAME_ENTRY(N, S) S,
constexpr const char *AbortReasonNames[] = {
    TJ_FOR_EACH_ABORT_REASON(TJ_NAME_ENTRY)};
constexpr const char *VerifyRuleNames[] = {
    TJ_FOR_EACH_VERIFY_RULE(TJ_NAME_ENTRY)};
constexpr const char *JitEventKindNames[] = {
    TJ_FOR_EACH_JIT_EVENT_KIND(TJ_NAME_ENTRY)};
#undef TJ_NAME_ENTRY

static_assert(sizeof(AbortReasonNames) / sizeof(const char *) ==
                  (size_t)AbortReason::NumReasons,
              "AbortReason gained a value without a name-table entry");
static_assert(sizeof(VerifyRuleNames) / sizeof(const char *) ==
                  (size_t)VerifyRule::NumRules,
              "VerifyRule gained a value without a name-table entry");
static_assert(sizeof(JitEventKindNames) / sizeof(const char *) ==
                  (size_t)JitEventKind::NumKinds,
              "JitEventKind gained a value without a name-table entry");

// Positional checks: each list entry must sit at its enumerator's index.
#define TJ_IDX_ENTRY(N, S) Idx_##N,
enum : size_t { TJ_FOR_EACH_ABORT_REASON(TJ_IDX_ENTRY) };
#undef TJ_IDX_ENTRY
#define TJ_IDX_CHECK(N, S)                                                     \
  static_assert(Idx_##N == (size_t)AbortReason::N,                             \
                "AbortReason name-table order mismatch: " #N);
TJ_FOR_EACH_ABORT_REASON(TJ_IDX_CHECK)
#undef TJ_IDX_CHECK

#define TJ_IDX_ENTRY(N, S) RuleIdx_##N,
enum : size_t { TJ_FOR_EACH_VERIFY_RULE(TJ_IDX_ENTRY) };
#undef TJ_IDX_ENTRY
#define TJ_IDX_CHECK(N, S)                                                     \
  static_assert(RuleIdx_##N == (size_t)VerifyRule::N,                          \
                "VerifyRule name-table order mismatch: " #N);
TJ_FOR_EACH_VERIFY_RULE(TJ_IDX_CHECK)
#undef TJ_IDX_CHECK

#define TJ_IDX_ENTRY(N, S) KindIdx_##N,
enum : size_t { TJ_FOR_EACH_JIT_EVENT_KIND(TJ_IDX_ENTRY) };
#undef TJ_IDX_ENTRY
#define TJ_IDX_CHECK(N, S)                                                     \
  static_assert(KindIdx_##N == (size_t)JitEventKind::N,                        \
                "JitEventKind name-table order mismatch: " #N);
TJ_FOR_EACH_JIT_EVENT_KIND(TJ_IDX_CHECK)
#undef TJ_IDX_CHECK

} // namespace

const char *abortReasonName(AbortReason R) {
  return (size_t)R < (size_t)AbortReason::NumReasons
             ? AbortReasonNames[(size_t)R]
             : "?";
}

const char *verifyRuleName(VerifyRule R) {
  return (size_t)R < (size_t)VerifyRule::NumRules ? VerifyRuleNames[(size_t)R]
                                                  : "?";
}

const char *faultSiteName(FaultSite S) {
  switch (S) {
  case FaultSite::ExecMapFail:
    return "exec-map-fail";
  case FaultSite::ExecAllocFail:
    return "exec-alloc-fail";
  case FaultSite::ProtectFail:
    return "protect-fail";
  case FaultSite::CompileFail:
    return "compile-fail";
  case FaultSite::HeapAllocFail:
    return "heap-alloc-fail";
  }
  return "?";
}

const char *jitEventKindName(JitEventKind K) {
  return (size_t)K < (size_t)JitEventKind::NumKinds
             ? JitEventKindNames[(size_t)K]
             : "?";
}

// --- JitEventMux ---------------------------------------------------------------

void JitEventMux::add(JitEventListener *L) {
  if (L && std::find(Sinks.begin(), Sinks.end(), L) == Sinks.end())
    Sinks.push_back(L);
}

bool JitEventMux::remove(JitEventListener *L) {
  auto It = std::find(Sinks.begin(), Sinks.end(), L);
  if (It == Sinks.end())
    return false;
  Sinks.erase(It);
  return true;
}

void JitEventMux::onEvent(const JitEvent &E) {
  for (JitEventListener *L : Sinks)
    L->onEvent(E);
}

// --- LogJitEventListener -------------------------------------------------------

std::string LogJitEventListener::format(const JitEvent &E) {
  char Buf[256];
  std::string Out;
  snprintf(Buf, sizeof(Buf), "%-16s", jitEventKindName(E.Kind));
  Out += Buf;
  if (E.FragmentId != ~0u) {
    snprintf(Buf, sizeof(Buf), " frag=%u", E.FragmentId);
    Out += Buf;
  }
  if (E.ScriptId != ~0u) {
    snprintf(Buf, sizeof(Buf), " script=%u pc=%u", E.ScriptId, E.Pc);
    Out += Buf;
  }
  switch (E.Kind) {
  case JitEventKind::LoopHot:
    snprintf(Buf, sizeof(Buf), " hits=%" PRIu64, E.Arg0);
    Out += Buf;
    break;
  case JitEventKind::RecordAbort:
    snprintf(Buf, sizeof(Buf), " reason=%s", abortReasonName(E.Reason));
    Out += Buf;
    break;
  case JitEventKind::TreeCompiled:
  case JitEventKind::BranchCompiled:
    snprintf(Buf, sizeof(Buf), " lir=%" PRIu64 " native-bytes=%" PRIu64,
             E.Arg0, E.Arg1);
    Out += Buf;
    break;
  case JitEventKind::SideExit:
    snprintf(Buf, sizeof(Buf), " guard=%u kind=%s hits=%" PRIu64, E.ExitId,
             exitKindName((ExitKind)E.ExitKindRaw), E.Arg0);
    Out += Buf;
    break;
  case JitEventKind::StitchedTransfer:
    snprintf(Buf, sizeof(Buf), " guard=%u -> frag=%" PRIu64 "%s", E.ExitId,
             E.Arg0, E.Arg1 ? " (unstable-link)" : "");
    Out += Buf;
    break;
  case JitEventKind::TreeCall:
    snprintf(Buf, sizeof(Buf), " outer-frag=%" PRIu64, E.Arg0);
    Out += Buf;
    break;
  case JitEventKind::GC:
    snprintf(Buf, sizeof(Buf), " collections=%" PRIu64, E.Arg0);
    Out += Buf;
    break;
  case JitEventKind::CacheFlush:
    snprintf(Buf, sizeof(Buf), " generation=%" PRIu64 " reclaimed=%" PRIu64,
             E.Arg0, E.Arg1);
    Out += Buf;
    break;
  case JitEventKind::FragmentRetired:
    snprintf(Buf, sizeof(Buf), " native-bytes=%" PRIu64 " generation=%" PRIu64,
             E.Arg0, E.Arg1);
    Out += Buf;
    break;
  case JitEventKind::JitDisabled:
    snprintf(Buf, sizeof(Buf), " flushes=%" PRIu64, E.Arg0);
    Out += Buf;
    break;
  case JitEventKind::BackendFallback:
    Out += " backend=executor";
    break;
  case JitEventKind::IcTransition:
    snprintf(Buf, sizeof(Buf), " state=%s entries=%" PRIu64,
             icStateName((ICState)E.Arg0), E.Arg1);
    Out += Buf;
    break;
  case JitEventKind::IcInvalidateAll:
    snprintf(Buf, sizeof(Buf), " cleared=%" PRIu64, E.Arg0);
    Out += Buf;
    break;
  case JitEventKind::CompileJobQueued:
    snprintf(Buf, sizeof(Buf), " pending=%" PRIu64, E.Arg0);
    Out += Buf;
    break;
  case JitEventKind::CompileJobDropped:
    snprintf(Buf, sizeof(Buf), " job-generation=%" PRIu64 " generation=%" PRIu64,
             E.Arg0, E.Arg1);
    Out += Buf;
    break;
  case JitEventKind::ScriptInterrupted:
    snprintf(Buf, sizeof(Buf), " bits=0x%" PRIx64 " kind=%" PRIu64, E.Arg0,
             E.Arg1);
    Out += Buf;
    break;
  case JitEventKind::EngineRecycled:
    snprintf(Buf, sizeof(Buf), " worker=%" PRIu64 " failures=%" PRIu64, E.Arg0,
             E.Arg1);
    Out += Buf;
    break;
  case JitEventKind::AnalysisRan:
    snprintf(Buf, sizeof(Buf), " facts=%" PRIu64 " diagnostics=%" PRIu64,
             E.Arg0, E.Arg1);
    Out += Buf;
    break;
  case JitEventKind::TierPromoted:
    snprintf(Buf, sizeof(Buf), " reason=%s failures=%" PRIu64,
             tierChangeReasonName((TierChangeReason)E.Arg0), E.Arg1);
    Out += Buf;
    break;
  case JitEventKind::MethodCompiled:
    snprintf(Buf, sizeof(Buf), " lir=%" PRIu64 " native-bytes=%" PRIu64,
             E.Arg0, E.Arg1);
    Out += Buf;
    break;
  case JitEventKind::MethodEntered:
    snprintf(Buf, sizeof(Buf), " hits=%" PRIu64, E.Arg0);
    Out += Buf;
    break;
  default:
    break;
  }
  return Out;
}

void LogJitEventListener::onEvent(const JitEvent &E) {
  fprintf(Out, "[jit +%08" PRIu64 "us] %s\n", E.TimeUs, format(E).c_str());
}

// --- ChromeTraceCollector ------------------------------------------------------

/// Append one trace-event object. \p Ph is the Chrome phase ("i", "B",
/// "E"); instant events get the thread scope required by the viewer.
static void appendChromeEvent(std::string &Out, const char *Name,
                              const char *Ph, uint64_t Ts,
                              const std::string &Args, bool First) {
  char Buf[256];
  if (!First)
    Out += ",\n";
  snprintf(Buf, sizeof(Buf),
           "    {\"name\": \"%s\", \"ph\": \"%s\", \"ts\": %" PRIu64
           ", \"pid\": 1, \"tid\": 1",
           Name, Ph, Ts);
  Out += Buf;
  if (Ph[0] == 'i')
    Out += ", \"s\": \"t\"";
  if (!Args.empty())
    Out += ", \"args\": {" + Args + "}";
  Out += "}";
}

static std::string numArg(const char *Key, uint64_t V, bool First = false) {
  char Buf[96];
  snprintf(Buf, sizeof(Buf), "%s\"%s\": %" PRIu64, First ? "" : ", ", Key, V);
  return Buf;
}

static std::string strArg(const char *Key, const char *V, bool First = false) {
  std::string Out = First ? "" : ", ";
  Out += "\"";
  Out += Key;
  Out += "\": \"";
  Out += V; // all producers pass identifier-safe static strings
  Out += "\"";
  return Out;
}

std::string ChromeTraceCollector::renderJson() const {
  std::string Out = "{\n  \"displayTimeUnit\": \"ms\",\n"
                    "  \"traceEvents\": [\n";
  bool First = true;
  char Name[64];
  for (const JitEvent &E : Events) {
    std::string Args;
    if (E.FragmentId != ~0u)
      Args += numArg("fragment", E.FragmentId, Args.empty());
    if (E.ScriptId != ~0u) {
      Args += numArg("script", E.ScriptId, Args.empty());
      Args += numArg("pc", E.Pc);
    }
    switch (E.Kind) {
    case JitEventKind::RecordStart:
      // Recording sessions render as duration slices: B here, E at the
      // matching TreeCompiled/BranchCompiled/RecordAbort.
      snprintf(Name, sizeof(Name), "record frag %u", E.FragmentId);
      appendChromeEvent(Out, Name, "B", E.TimeUs, Args, First);
      First = false;
      continue;
    case JitEventKind::TreeCompiled:
    case JitEventKind::BranchCompiled:
      Args += numArg("lir", E.Arg0);
      Args += numArg("nativeBytes", E.Arg1);
      snprintf(Name, sizeof(Name), "record frag %u", E.FragmentId);
      appendChromeEvent(Out, Name, "E", E.TimeUs, "", First);
      First = false;
      break;
    case JitEventKind::RecordAbort:
      Args += strArg("reason", abortReasonName(E.Reason), Args.empty());
      snprintf(Name, sizeof(Name), "record frag %u", E.FragmentId);
      appendChromeEvent(Out, Name, "E", E.TimeUs, "", First);
      First = false;
      break;
    case JitEventKind::SideExit:
      Args += numArg("guard", E.ExitId, Args.empty());
      Args += strArg("exitKind", exitKindName((ExitKind)E.ExitKindRaw));
      Args += numArg("hits", E.Arg0);
      break;
    case JitEventKind::LoopHot:
      Args += numArg("hits", E.Arg0, Args.empty());
      break;
    case JitEventKind::StitchedTransfer:
      Args += numArg("guard", E.ExitId, Args.empty());
      Args += numArg("target", E.Arg0);
      break;
    case JitEventKind::TreeCall:
      Args += numArg("outerFragment", E.Arg0, Args.empty());
      break;
    case JitEventKind::GC:
      Args += numArg("collections", E.Arg0, Args.empty());
      break;
    case JitEventKind::CacheFlush:
      Args += numArg("generation", E.Arg0, Args.empty());
      Args += numArg("reclaimedBytes", E.Arg1);
      break;
    case JitEventKind::FragmentRetired:
      Args += numArg("nativeBytes", E.Arg0, Args.empty());
      Args += numArg("generation", E.Arg1);
      break;
    case JitEventKind::JitDisabled:
      Args += numArg("flushes", E.Arg0, Args.empty());
      break;
    case JitEventKind::IcTransition:
      Args += strArg("state", icStateName((ICState)E.Arg0), Args.empty());
      Args += numArg("entries", E.Arg1);
      break;
    case JitEventKind::IcInvalidateAll:
      Args += numArg("cleared", E.Arg0, Args.empty());
      break;
    case JitEventKind::CompileJobQueued:
      Args += numArg("pending", E.Arg0, Args.empty());
      break;
    case JitEventKind::CompileJobDropped:
      Args += numArg("jobGeneration", E.Arg0, Args.empty());
      Args += numArg("generation", E.Arg1);
      break;
    case JitEventKind::ScriptInterrupted:
      Args += numArg("bits", E.Arg0, Args.empty());
      Args += numArg("errorKind", E.Arg1);
      break;
    case JitEventKind::EngineRecycled:
      Args += numArg("worker", E.Arg0, Args.empty());
      Args += numArg("failures", E.Arg1);
      break;
    case JitEventKind::AnalysisRan:
      Args += numArg("facts", E.Arg0, Args.empty());
      Args += numArg("diagnostics", E.Arg1);
      break;
    case JitEventKind::TierPromoted:
      Args += strArg("reason", abortReasonName(E.Reason), Args.empty());
      break;
    case JitEventKind::MethodCompiled:
      Args += numArg("lir", E.Arg0, Args.empty());
      Args += numArg("nativeBytes", E.Arg1);
      break;
    case JitEventKind::MethodEntered:
      Args += numArg("hits", E.Arg0, Args.empty());
      break;
    default:
      break;
    }
    appendChromeEvent(Out, jitEventKindName(E.Kind), "i", E.TimeUs, Args,
                      First);
    First = false;
  }
  Out += "\n  ]\n}\n";
  return Out;
}

bool ChromeTraceCollector::writeJson(const std::string &Path) const {
  FILE *F = fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string J = renderJson();
  size_t W = fwrite(J.data(), 1, J.size(), F);
  return fclose(F) == 0 && W == J.size();
}

} // namespace tracejit
