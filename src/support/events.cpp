//===- events.cpp - Structured JIT observability ----------------------------===//

#include "support/events.h"

#include <algorithm>
#include <cinttypes>

#include "api/options.h"
#include "jit/fragment.h"
#include "vm/ic.h"

namespace tracejit {

const char *abortReasonName(AbortReason R) {
  switch (R) {
  case AbortReason::None:
    return "none";
  case AbortReason::UntrackedSlot:
    return "untracked-slot";
  case AbortReason::NonNumericArith:
    return "non-numeric-arith";
  case AbortReason::MixedConcat:
    return "mixed-concat";
  case AbortReason::UntraceableCompare:
    return "untraceable-compare";
  case AbortReason::NonNumericBitop:
    return "non-numeric-bitop";
  case AbortReason::NonNumericIndex:
    return "non-numeric-index";
  case AbortReason::PropOnPrimitive:
    return "prop-on-primitive";
  case AbortReason::PropAddsSlot:
    return "prop-adds-slot";
  case AbortReason::UnknownStringProp:
    return "unknown-string-prop";
  case AbortReason::ElemOnNonArray:
    return "elem-on-non-array";
  case AbortReason::InitPropOnNonObject:
    return "initprop-on-non-object";
  case AbortReason::MegamorphicSite:
    return "megamorphic-site";
  case AbortReason::RecursiveCall:
    return "recursive-call";
  case AbortReason::InlineDepthLimit:
    return "inline-depth-limit";
  case AbortReason::CallOfNonFunction:
    return "call-of-non-function";
  case AbortReason::UntraceableNative:
    return "untraceable-native";
  case AbortReason::UnsupportedReceiver:
    return "unsupported-receiver";
  case AbortReason::ReturnBelowEntryFrame:
    return "return-below-entry-frame";
  case AbortReason::TraceTooLong:
    return "trace-too-long";
  case AbortReason::UnsupportedBytecode:
    return "unsupported-bytecode";
  case AbortReason::NestingDisabled:
    return "nesting-disabled";
  case AbortReason::InnerTreeNotReady:
    return "inner-tree-not-ready";
  case AbortReason::InnerTreeSideExit:
    return "inner-tree-side-exit";
  case AbortReason::PreemptedInInnerCall:
    return "preempted-in-inner-call";
  case AbortReason::DispatchUnwound:
    return "dispatch-unwound";
  case AbortReason::TypecheckFailed:
    return "typecheck-failed";
  case AbortReason::CompilePoolExhausted:
    return "compile-pool-exhausted";
  case AbortReason::CompileOverflow:
    return "compile-overflow";
  case AbortReason::CompileUnsupported:
    return "compile-unsupported";
  case AbortReason::CompileFault:
    return "compile-fault";
  case AbortReason::CompileQueueFull:
    return "compile-queue-full";
  case AbortReason::VerifyFailed:
    return "verify-failed";
  case AbortReason::Interrupted:
    return "interrupted";
  case AbortReason::NumReasons:
    break;
  }
  return "?";
}

const char *verifyRuleName(VerifyRule R) {
  switch (R) {
  case VerifyRule::None:
    return "none";
  case VerifyRule::MissingOperand:
    return "missing-operand";
  case VerifyRule::UseBeforeDef:
    return "use-before-def";
  case VerifyRule::DanglingOperand:
    return "dangling-operand";
  case VerifyRule::OperandType:
    return "operand-type";
  case VerifyRule::ResultType:
    return "result-type";
  case VerifyRule::CallSignature:
    return "call-signature";
  case VerifyRule::GuardWithoutExit:
    return "guard-without-exit";
  case VerifyRule::ShiftCountNotImm:
    return "shift-count-not-imm";
  case VerifyRule::TarAddressing:
    return "tar-addressing";
  case VerifyRule::ExitTypeMapLength:
    return "exit-type-map-length";
  case VerifyRule::ExitFrameBounds:
    return "exit-frame-bounds";
  case VerifyRule::TransferTarget:
    return "transfer-target";
  case VerifyRule::TreeCallTypeMaps:
    return "tree-call-type-maps";
  case VerifyRule::Terminator:
    return "terminator";
  case VerifyRule::PrologueShape:
    return "prologue-shape";
  case VerifyRule::PrologueEffect:
    return "prologue-effect";
  case VerifyRule::PrologueExit:
    return "prologue-exit";
  case VerifyRule::NumRules:
    break;
  }
  return "?";
}

const char *faultSiteName(FaultSite S) {
  switch (S) {
  case FaultSite::ExecMapFail:
    return "exec-map-fail";
  case FaultSite::ExecAllocFail:
    return "exec-alloc-fail";
  case FaultSite::ProtectFail:
    return "protect-fail";
  case FaultSite::CompileFail:
    return "compile-fail";
  case FaultSite::HeapAllocFail:
    return "heap-alloc-fail";
  }
  return "?";
}

const char *jitEventKindName(JitEventKind K) {
  switch (K) {
  case JitEventKind::LoopHot:
    return "LoopHot";
  case JitEventKind::RecordStart:
    return "RecordStart";
  case JitEventKind::RecordAbort:
    return "RecordAbort";
  case JitEventKind::TreeCompiled:
    return "TreeCompiled";
  case JitEventKind::BranchCompiled:
    return "BranchCompiled";
  case JitEventKind::SideExit:
    return "SideExit";
  case JitEventKind::Blacklisted:
    return "Blacklisted";
  case JitEventKind::TreeCall:
    return "TreeCall";
  case JitEventKind::StitchedTransfer:
    return "StitchedTransfer";
  case JitEventKind::GC:
    return "GC";
  case JitEventKind::CacheFlush:
    return "CacheFlush";
  case JitEventKind::FragmentRetired:
    return "FragmentRetired";
  case JitEventKind::JitDisabled:
    return "JitDisabled";
  case JitEventKind::BackendFallback:
    return "BackendFallback";
  case JitEventKind::IcTransition:
    return "IcTransition";
  case JitEventKind::IcInvalidateAll:
    return "IcInvalidateAll";
  case JitEventKind::CompileJobQueued:
    return "CompileJobQueued";
  case JitEventKind::CompileJobDropped:
    return "CompileJobDropped";
  case JitEventKind::ScriptInterrupted:
    return "ScriptInterrupted";
  case JitEventKind::EngineRecycled:
    return "EngineRecycled";
  case JitEventKind::NumKinds:
    break;
  }
  return "?";
}

// --- JitEventMux ---------------------------------------------------------------

void JitEventMux::add(JitEventListener *L) {
  if (L && std::find(Sinks.begin(), Sinks.end(), L) == Sinks.end())
    Sinks.push_back(L);
}

bool JitEventMux::remove(JitEventListener *L) {
  auto It = std::find(Sinks.begin(), Sinks.end(), L);
  if (It == Sinks.end())
    return false;
  Sinks.erase(It);
  return true;
}

void JitEventMux::onEvent(const JitEvent &E) {
  for (JitEventListener *L : Sinks)
    L->onEvent(E);
}

// --- LogJitEventListener -------------------------------------------------------

std::string LogJitEventListener::format(const JitEvent &E) {
  char Buf[256];
  std::string Out;
  snprintf(Buf, sizeof(Buf), "%-16s", jitEventKindName(E.Kind));
  Out += Buf;
  if (E.FragmentId != ~0u) {
    snprintf(Buf, sizeof(Buf), " frag=%u", E.FragmentId);
    Out += Buf;
  }
  if (E.ScriptId != ~0u) {
    snprintf(Buf, sizeof(Buf), " script=%u pc=%u", E.ScriptId, E.Pc);
    Out += Buf;
  }
  switch (E.Kind) {
  case JitEventKind::LoopHot:
    snprintf(Buf, sizeof(Buf), " hits=%" PRIu64, E.Arg0);
    Out += Buf;
    break;
  case JitEventKind::RecordAbort:
    snprintf(Buf, sizeof(Buf), " reason=%s", abortReasonName(E.Reason));
    Out += Buf;
    break;
  case JitEventKind::TreeCompiled:
  case JitEventKind::BranchCompiled:
    snprintf(Buf, sizeof(Buf), " lir=%" PRIu64 " native-bytes=%" PRIu64,
             E.Arg0, E.Arg1);
    Out += Buf;
    break;
  case JitEventKind::SideExit:
    snprintf(Buf, sizeof(Buf), " guard=%u kind=%s hits=%" PRIu64, E.ExitId,
             exitKindName((ExitKind)E.ExitKindRaw), E.Arg0);
    Out += Buf;
    break;
  case JitEventKind::StitchedTransfer:
    snprintf(Buf, sizeof(Buf), " guard=%u -> frag=%" PRIu64 "%s", E.ExitId,
             E.Arg0, E.Arg1 ? " (unstable-link)" : "");
    Out += Buf;
    break;
  case JitEventKind::TreeCall:
    snprintf(Buf, sizeof(Buf), " outer-frag=%" PRIu64, E.Arg0);
    Out += Buf;
    break;
  case JitEventKind::GC:
    snprintf(Buf, sizeof(Buf), " collections=%" PRIu64, E.Arg0);
    Out += Buf;
    break;
  case JitEventKind::CacheFlush:
    snprintf(Buf, sizeof(Buf), " generation=%" PRIu64 " reclaimed=%" PRIu64,
             E.Arg0, E.Arg1);
    Out += Buf;
    break;
  case JitEventKind::FragmentRetired:
    snprintf(Buf, sizeof(Buf), " native-bytes=%" PRIu64 " generation=%" PRIu64,
             E.Arg0, E.Arg1);
    Out += Buf;
    break;
  case JitEventKind::JitDisabled:
    snprintf(Buf, sizeof(Buf), " flushes=%" PRIu64, E.Arg0);
    Out += Buf;
    break;
  case JitEventKind::BackendFallback:
    Out += " backend=executor";
    break;
  case JitEventKind::IcTransition:
    snprintf(Buf, sizeof(Buf), " state=%s entries=%" PRIu64,
             icStateName((ICState)E.Arg0), E.Arg1);
    Out += Buf;
    break;
  case JitEventKind::IcInvalidateAll:
    snprintf(Buf, sizeof(Buf), " cleared=%" PRIu64, E.Arg0);
    Out += Buf;
    break;
  case JitEventKind::CompileJobQueued:
    snprintf(Buf, sizeof(Buf), " pending=%" PRIu64, E.Arg0);
    Out += Buf;
    break;
  case JitEventKind::CompileJobDropped:
    snprintf(Buf, sizeof(Buf), " job-generation=%" PRIu64 " generation=%" PRIu64,
             E.Arg0, E.Arg1);
    Out += Buf;
    break;
  case JitEventKind::ScriptInterrupted:
    snprintf(Buf, sizeof(Buf), " bits=0x%" PRIx64 " kind=%" PRIu64, E.Arg0,
             E.Arg1);
    Out += Buf;
    break;
  case JitEventKind::EngineRecycled:
    snprintf(Buf, sizeof(Buf), " worker=%" PRIu64 " failures=%" PRIu64, E.Arg0,
             E.Arg1);
    Out += Buf;
    break;
  default:
    break;
  }
  return Out;
}

void LogJitEventListener::onEvent(const JitEvent &E) {
  fprintf(Out, "[jit +%08" PRIu64 "us] %s\n", E.TimeUs, format(E).c_str());
}

// --- ChromeTraceCollector ------------------------------------------------------

/// Append one trace-event object. \p Ph is the Chrome phase ("i", "B",
/// "E"); instant events get the thread scope required by the viewer.
static void appendChromeEvent(std::string &Out, const char *Name,
                              const char *Ph, uint64_t Ts,
                              const std::string &Args, bool First) {
  char Buf[256];
  if (!First)
    Out += ",\n";
  snprintf(Buf, sizeof(Buf),
           "    {\"name\": \"%s\", \"ph\": \"%s\", \"ts\": %" PRIu64
           ", \"pid\": 1, \"tid\": 1",
           Name, Ph, Ts);
  Out += Buf;
  if (Ph[0] == 'i')
    Out += ", \"s\": \"t\"";
  if (!Args.empty())
    Out += ", \"args\": {" + Args + "}";
  Out += "}";
}

static std::string numArg(const char *Key, uint64_t V, bool First = false) {
  char Buf[96];
  snprintf(Buf, sizeof(Buf), "%s\"%s\": %" PRIu64, First ? "" : ", ", Key, V);
  return Buf;
}

static std::string strArg(const char *Key, const char *V, bool First = false) {
  std::string Out = First ? "" : ", ";
  Out += "\"";
  Out += Key;
  Out += "\": \"";
  Out += V; // all producers pass identifier-safe static strings
  Out += "\"";
  return Out;
}

std::string ChromeTraceCollector::renderJson() const {
  std::string Out = "{\n  \"displayTimeUnit\": \"ms\",\n"
                    "  \"traceEvents\": [\n";
  bool First = true;
  char Name[64];
  for (const JitEvent &E : Events) {
    std::string Args;
    if (E.FragmentId != ~0u)
      Args += numArg("fragment", E.FragmentId, Args.empty());
    if (E.ScriptId != ~0u) {
      Args += numArg("script", E.ScriptId, Args.empty());
      Args += numArg("pc", E.Pc);
    }
    switch (E.Kind) {
    case JitEventKind::RecordStart:
      // Recording sessions render as duration slices: B here, E at the
      // matching TreeCompiled/BranchCompiled/RecordAbort.
      snprintf(Name, sizeof(Name), "record frag %u", E.FragmentId);
      appendChromeEvent(Out, Name, "B", E.TimeUs, Args, First);
      First = false;
      continue;
    case JitEventKind::TreeCompiled:
    case JitEventKind::BranchCompiled:
      Args += numArg("lir", E.Arg0);
      Args += numArg("nativeBytes", E.Arg1);
      snprintf(Name, sizeof(Name), "record frag %u", E.FragmentId);
      appendChromeEvent(Out, Name, "E", E.TimeUs, "", First);
      First = false;
      break;
    case JitEventKind::RecordAbort:
      Args += strArg("reason", abortReasonName(E.Reason), Args.empty());
      snprintf(Name, sizeof(Name), "record frag %u", E.FragmentId);
      appendChromeEvent(Out, Name, "E", E.TimeUs, "", First);
      First = false;
      break;
    case JitEventKind::SideExit:
      Args += numArg("guard", E.ExitId, Args.empty());
      Args += strArg("exitKind", exitKindName((ExitKind)E.ExitKindRaw));
      Args += numArg("hits", E.Arg0);
      break;
    case JitEventKind::LoopHot:
      Args += numArg("hits", E.Arg0, Args.empty());
      break;
    case JitEventKind::StitchedTransfer:
      Args += numArg("guard", E.ExitId, Args.empty());
      Args += numArg("target", E.Arg0);
      break;
    case JitEventKind::TreeCall:
      Args += numArg("outerFragment", E.Arg0, Args.empty());
      break;
    case JitEventKind::GC:
      Args += numArg("collections", E.Arg0, Args.empty());
      break;
    case JitEventKind::CacheFlush:
      Args += numArg("generation", E.Arg0, Args.empty());
      Args += numArg("reclaimedBytes", E.Arg1);
      break;
    case JitEventKind::FragmentRetired:
      Args += numArg("nativeBytes", E.Arg0, Args.empty());
      Args += numArg("generation", E.Arg1);
      break;
    case JitEventKind::JitDisabled:
      Args += numArg("flushes", E.Arg0, Args.empty());
      break;
    case JitEventKind::IcTransition:
      Args += strArg("state", icStateName((ICState)E.Arg0), Args.empty());
      Args += numArg("entries", E.Arg1);
      break;
    case JitEventKind::IcInvalidateAll:
      Args += numArg("cleared", E.Arg0, Args.empty());
      break;
    case JitEventKind::CompileJobQueued:
      Args += numArg("pending", E.Arg0, Args.empty());
      break;
    case JitEventKind::CompileJobDropped:
      Args += numArg("jobGeneration", E.Arg0, Args.empty());
      Args += numArg("generation", E.Arg1);
      break;
    case JitEventKind::ScriptInterrupted:
      Args += numArg("bits", E.Arg0, Args.empty());
      Args += numArg("errorKind", E.Arg1);
      break;
    case JitEventKind::EngineRecycled:
      Args += numArg("worker", E.Arg0, Args.empty());
      Args += numArg("failures", E.Arg1);
      break;
    default:
      break;
    }
    appendChromeEvent(Out, jitEventKindName(E.Kind), "i", E.TimeUs, Args,
                      First);
    First = false;
  }
  Out += "\n  ]\n}\n";
  return Out;
}

bool ChromeTraceCollector::writeJson(const std::string &Path) const {
  FILE *F = fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string J = renderJson();
  size_t W = fwrite(J.data(), 1, J.size(), F);
  return fclose(F) == 0 && W == J.size();
}

} // namespace tracejit
