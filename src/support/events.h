//===- events.h - Structured JIT observability ------------------------------===//
//
// A typed event stream over the Figure 2 state machine. Every interesting
// transition the trace engine makes -- a loop turning hot, a recording
// starting/aborting, a tree or branch being compiled, a side exit firing,
// a loop being blacklisted -- is reported as a JitEvent to an installed
// JitEventListener. Emission is gated on a single listener-pointer branch,
// so an engine with no listener pays one predictable branch per event site
// and builds no event objects.
//
// The abort-reason taxonomy lives here too: every recorder/monitor abort
// site names an AbortReason enumerator, VMStats counts aborts per reason,
// and RecordAbort events carry the reason. Free-text abort strings are
// gone; human-readable text comes from abortReasonName().
//
// Two listeners ship built in:
//  * LogJitEventListener -- one human-readable line per event (FILE*).
//  * ChromeTraceCollector -- buffers events and writes them as Chrome
//    trace-event JSON (load in chrome://tracing or Perfetto) so a whole
//    eval can be inspected on a timeline.
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_SUPPORT_EVENTS_H
#define TRACEJIT_SUPPORT_EVENTS_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace tracejit {

/// Why a recording was aborted. Grouped by which layer detected the
/// problem; keep abortReasonName() in sync.
enum class AbortReason : uint8_t {
  None = 0,

  // --- Recorder: type-speculation failures ---------------------------------
  UntrackedSlot,      ///< Read of a slot the trace never imported.
  NonNumericArith,    ///< Arithmetic (incl. negation) on non-numbers.
  MixedConcat,        ///< String/number mix reaching `+`.
  UntraceableCompare, ///< Comparison operand types unsupported.
  NonNumericBitop,    ///< Bitwise op on non-numbers.
  NonNumericIndex,    ///< Element index is not a number.

  // --- Recorder: object-model failures -------------------------------------
  PropOnPrimitive,    ///< Property read/store on a non-object.
  PropAddsSlot,       ///< Property store would grow the shape.
  UnknownStringProp,  ///< Unsupported property of a string.
  ElemOnNonArray,     ///< Element read/store on a non-array object.
  InitPropOnNonObject,
  MegamorphicSite,    ///< Property site's IC went megamorphic; a shape
                      ///< guard here would fail on most iterations.

  // --- Recorder: call failures ----------------------------------------------
  RecursiveCall,        ///< Callee already on the virtual frame chain.
  InlineDepthLimit,     ///< MaxInlineDepth exceeded.
  CallOfNonFunction,    ///< Callee is not callable.
  UntraceableNative,    ///< Native/method with no traceable fast path.
  UnsupportedReceiver,  ///< Method call on an unsupported receiver.
  ReturnBelowEntryFrame,///< Return would pop below the trace entry frame.

  // --- Recorder: structural limits ------------------------------------------
  TraceTooLong,        ///< MaxTraceLength exceeded.
  UnsupportedBytecode, ///< Opcode with no recording routine / corrupt code.

  // --- Monitor-level aborts ---------------------------------------------------
  NestingDisabled,     ///< Hit an inner loop header with nesting off.
  InnerTreeNotReady,   ///< Inner tree not yet compiled (§4.2, forgiven).
  InnerTreeSideExit,   ///< Inner tree side-exited mid-call (forgiven).
  PreemptedInInnerCall,///< Preempt flag fired during a nested tree call.
  DispatchUnwound,     ///< Interpreter dispatch returned while recording.
  TypecheckFailed,     ///< Post-filter LIR failed the typechecker.

  // --- Backend compile failures (code-cache lifecycle governance) -----------
  CompilePoolExhausted,///< The code cache could not satisfy the reservation.
  CompileOverflow,     ///< Emitted code overflowed the assembler estimate.
  CompileUnsupported,  ///< LIR the backend cannot compile (opcode/spills).
  CompileFault,        ///< Injected CompileFail or a W^X protect failure.
  CompileQueueFull,    ///< Off-thread compile queue at capacity (backpressure);
                       ///< the recording is dropped with the usual backoff.

  // --- LIR verifier (lir/verify.h) -------------------------------------------
  VerifyFailed,        ///< The verifier rejected the trace; the failed rule
                       ///< is counted in VMStats::VerifyFailuresByRule.

  // --- Resource governance ----------------------------------------------------
  Interrupted,         ///< The script was terminated (deadline / host
                       ///< interrupt / heap quota) while recording; the
                       ///< recording is discarded without blacklisting.

  NumReasons
};

const char *abortReasonName(AbortReason R);

/// Invariant catalogue of the LIR verifier (src/lir/verify.h). Each rule is
/// one mechanically checkable clause of the paper's correctness story:
/// straight-line SSA LIR (§3.1), typed guards with exit maps (§2, §4), and
/// filter pipelines that preserve both (§5.1). Keep verifyRuleName() in
/// sync.
enum class VerifyRule : uint8_t {
  None = 0,
  MissingOperand,    ///< A required operand slot is null.
  UseBeforeDef,      ///< Operand defined later than its use (SSA order).
  DanglingOperand,   ///< Operand is not in the trace body (e.g. DCE victim).
  OperandType,       ///< Operand type does not match the op signature.
  ResultType,        ///< Instruction result type disagrees with the opcode.
  CallSignature,     ///< Call arity/argument types disagree with CallInfo.
  GuardWithoutExit,  ///< Guard/overflow/exit op lacks an ExitDescriptor.
  ShiftCountNotImm,  ///< 64-bit shift count is not an ImmI.
  TarAddressing,     ///< TAR access disp negative, unaligned, or outside
                     ///< the fragment's slot domain.
  ExitTypeMapLength, ///< Exit type map length != NumGlobals + Sp.
  ExitFrameBounds,   ///< Exit Sp/frame chain inconsistent (bases, pcs).
  TransferTarget,    ///< TreeCall/JmpFrag target linkage broken.
  TreeCallTypeMaps,  ///< Call-site and inner-entry type maps disagree.
  Terminator,        ///< Trace does not end in exactly one terminator.
  PrologueShape,     ///< PrologueEnd out of range, or a prologue on a
                     ///< fragment that does not end in Loop.
  PrologueEffect,    ///< Prologue contains a side effect (store, impure
                     ///< call, TreeCall, Exit, JmpFrag) -- entry deopt
                     ///< would not be transparent.
  PrologueExit,      ///< A hoisted guard's exit is not the fragment's
                     ///< entry-state Deopt exit.
  NumRules
};

const char *verifyRuleName(VerifyRule R);

/// What happened. Keep jitEventKindName() in sync.
enum class JitEventKind : uint8_t {
  LoopHot,          ///< A loop header crossed the hot threshold.
  RecordStart,      ///< The recorder attached at a loop header / side exit.
  RecordAbort,      ///< Recording aborted; Reason says why.
  TreeCompiled,     ///< A root trace finished compiling.
  BranchCompiled,   ///< A branch trace finished compiling.
  SideExit,         ///< A compiled trace exited through a guard.
  Blacklisted,      ///< A loop header was blacklisted (§3.3).
  TreeCall,         ///< An outer recording called into an inner tree (§4.1).
  StitchedTransfer, ///< A side exit was patched to jump to a trace (§6.2).
  GC,               ///< The heap was collected at a safe point.
  CacheFlush,       ///< Whole code cache flushed; Arg0 = new generation,
                    ///< Arg1 = native bytes reclaimed.
  FragmentRetired,  ///< One fragment retired by a flush; Arg0 = its native
                    ///< bytes, Arg1 = its generation.
  JitDisabled,      ///< Kill switch: too many flushes in one eval; the
                    ///< engine is interpreter-only from here. Arg0 = flush
                    ///< count that tripped it.
  BackendFallback,  ///< Native backend unavailable at startup (mmap denied
                    ///< or injected); the LIR executor serves instead.
  IcTransition,     ///< A property IC changed state (vm/ic.h ladder).
                    ///< Arg0 = new ICState raw value, Arg1 = entry count.
  IcInvalidateAll,  ///< Every property IC was reset (cache flush).
                    ///< Arg0 = ICs that were non-empty.
  CompileJobQueued, ///< A recording was handed to the background compiler
                    ///< (OffThreadCompile). Arg0 = jobs now pending.
  CompileJobDropped,///< A finished/queued compile job was discarded instead
                    ///< of published (stale generation, flush, shutdown).
                    ///< Arg0 = job generation, Arg1 = current generation.
  ScriptInterrupted,///< A governor terminated the running script at a safe
                    ///< point. Arg0 = the interrupt bits that were pending,
                    ///< Arg1 = the resulting ErrorKind raw value.
  EngineRecycled,   ///< A serving worker destroyed and rebuilt its Engine
                    ///< (after OOM or too many consecutive failures).
                    ///< Arg0 = worker index, Arg1 = consecutive failures.
  AnalysisRan,      ///< The static analyzer processed a parsed script
                    ///< (analysis/analysis.h). Arg0 = published fact count,
                    ///< Arg1 = diagnostic count.
  TierPromoted,     ///< A loop left the trace tier for the method tier
                    ///< (trace/tier.h). Reason = the abort that triggered
                    ///< it (None for Method-mode compiles); Arg0 = the
                    ///< TierChangeReason raw value.
  MethodCompiled,   ///< A method-tier body finished compiling. Arg0 = LIR
                    ///< size, Arg1 = native code bytes (0 for executor).
  MethodEntered,    ///< First entry into a method-tier body after its
                    ///< publication. Arg0 = loop hit count at entry.
  NumKinds
};

const char *jitEventKindName(JitEventKind K);

/// One event. Fixed-size POD so emission never allocates; fields that do
/// not apply to a kind are left at their defaults.
struct JitEvent {
  JitEventKind Kind = JitEventKind::LoopHot;
  AbortReason Reason = AbortReason::None; ///< RecordAbort.
  uint8_t ExitKindRaw = 0;  ///< SideExit: the ExitKind, as its raw value.
  uint64_t TimeUs = 0;      ///< Microseconds since engine creation.
  uint32_t FragmentId = ~0u;///< Fragment involved, if any.
  uint32_t ScriptId = ~0u;  ///< Script of the loop header, if any.
  uint32_t Pc = 0;          ///< Loop header / resume pc, if any.
  uint32_t ExitId = ~0u;    ///< SideExit: guard (exit descriptor) id.
  /// Kind-specific payload:
  ///  TreeCompiled/BranchCompiled: Arg0 = final LIR size, Arg1 = native
  ///  code bytes (0 for the executor backend). SideExit: Arg0 = cumulative
  ///  hits of this guard. StitchedTransfer: Arg0 = target fragment id,
  ///  Arg1 = 1 for an unstable-peer link. LoopHot: Arg0 = hit count.
  ///  GC: Arg0 = collections so far. TreeCall: Arg0 = outer fragment id.
  uint64_t Arg0 = 0;
  uint64_t Arg1 = 0;
};

/// The listener interface. Implementations must not re-enter the engine
/// (no eval, no stats mutation) from onEvent; they run synchronously on
/// the VM's hot path.
class JitEventListener {
public:
  virtual ~JitEventListener() = default;
  virtual void onEvent(const JitEvent &E) = 0;
};

/// Fan-out to any number of listeners. The engine installs this as the
/// context's single listener slot when more than zero sinks are attached,
/// keeping the disabled path a null-pointer check.
class JitEventMux final : public JitEventListener {
public:
  void add(JitEventListener *L);
  bool remove(JitEventListener *L);
  bool empty() const { return Sinks.empty(); }
  void onEvent(const JitEvent &E) override;

private:
  std::vector<JitEventListener *> Sinks;
};

/// Human-readable log: one line per event, e.g.
///   [jit +001234us] record-abort frag=3 script=0 pc=42 reason=trace-too-long
class LogJitEventListener final : public JitEventListener {
public:
  explicit LogJitEventListener(FILE *Out = stderr) : Out(Out) {}
  void onEvent(const JitEvent &E) override;

  /// Render one event as the log line body (no trailing newline); exposed
  /// for tests and custom sinks.
  static std::string format(const JitEvent &E);

private:
  FILE *Out;
};

/// Buffers the event stream and renders it in the Chrome trace-event JSON
/// format (the `{"traceEvents": [...]}` object form). Recording sessions
/// become B/E duration slices named after the fragment; everything else is
/// an instant event. Load the file in chrome://tracing or ui.perfetto.dev.
class ChromeTraceCollector final : public JitEventListener {
public:
  void onEvent(const JitEvent &E) override { Events.push_back(E); }

  const std::vector<JitEvent> &events() const { return Events; }
  void clear() { Events.clear(); }

  /// Render the buffered stream as JSON.
  std::string renderJson() const;
  /// Write renderJson() to \p Path. Returns false on I/O failure.
  bool writeJson(const std::string &Path) const;

private:
  std::vector<JitEvent> Events;
};

// --- Per-fragment telemetry ---------------------------------------------------
//
// Snapshots of the trace cache's per-fragment counters, exposed through
// Engine::fragmentProfiles(). Plain value types: safe to hold after the
// engine mutates or discards the underlying fragments.

/// One guard of a fragment and how often it fired.
struct GuardProfile {
  uint32_t ExitId = 0;
  uint8_t ExitKindRaw = 0;        ///< ExitKind as its raw value.
  const char *ExitKindName = "?"; ///< Static string; never dangles.
  uint32_t Pc = 0;                ///< Interpreter resume pc.
  uint64_t Hits = 0;              ///< Times this guard side-exited.
  bool Stitched = false;          ///< A branch trace is attached here.
};

/// Telemetry for one compiled (or attempted) fragment.
struct FragmentProfile {
  uint32_t Id = 0;
  uint32_t Generation = 0;      ///< Code-cache generation it was born in.
  bool IsRoot = true;           ///< Root tree trunk vs. branch trace.
  bool IsMethod = false;        ///< Method-tier body (tier attribution).
  const char *TierName = "trace"; ///< "trace" or "method"; static string.
  uint32_t ScriptId = ~0u;      ///< Anchor script.
  uint32_t AnchorPc = 0;        ///< Loop header pc (root) / exit pc (branch).
  uint64_t Enters = 0;          ///< Monitor-mediated entries (trampoline).
  uint64_t Iterations = 0;      ///< Loop passes (CollectStats builds only).
  uint32_t BytecodesCovered = 0;///< Bytecodes one pass covers (Fig. 11).
  uint32_t LirRecorded = 0;     ///< LIR instructions as recorded.
  uint32_t LirAfterFilters = 0; ///< After the backward filter pipeline.
  uint32_t NativeBytes = 0;     ///< 0 for the executor backend.
  std::vector<GuardProfile> Guards; ///< Per-guard side-exit histogram.
};

} // namespace tracejit

#endif // TRACEJIT_SUPPORT_EVENTS_H
