//===- stats.h - VM activity counters and timers --------------------------===//
//
// Counters and per-activity timers backing the paper's Figure 11 (fraction
// of bytecodes executed by interpreter vs. native traces) and Figure 12
// (fraction of runtime per VM activity, keyed to the Figure 2 state
// machine).
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_SUPPORT_STATS_H
#define TRACEJIT_SUPPORT_STATS_H

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

#include "support/events.h"

namespace tracejit {

/// The activities of the Figure 2 state machine. `Native` is the dark box;
/// `Interpret` and `RecordInterpret` are the light gray boxes; the rest is
/// overhead (white boxes).
enum class Activity : uint8_t {
  Interpret,       ///< Standard bytecode interpretation.
  Monitor,         ///< Trace monitor decisions at loop edges.
  RecordInterpret, ///< Interpreting while the recorder shadows execution.
  Compile,         ///< LIR filtering + native code generation.
  Native,          ///< Executing compiled traces.
  ExitOverhead,    ///< Boxing values and rebuilding interpreter state on exit.
  NumActivities
};

const char *activityName(Activity A);

/// Aggregated counters/timers for one Engine. All counting is optional and
/// gated by Engine options so Figure 10 timing runs pay nothing for it.
struct VMStats {
  // --- Figure 11 counters -------------------------------------------------
  uint64_t BytecodesInterpreted = 0;
  uint64_t BytecodesRecorded = 0;
  /// Bytecodes covered by native execution: sum over fragments of
  /// (iterations executed * bytecodes recorded in the fragment body).
  uint64_t BytecodesNative = 0;

  // --- Trace lifecycle counters -------------------------------------------
  uint64_t TracesStarted = 0;
  uint64_t TracesCompleted = 0;
  uint64_t TracesAborted = 0;
  /// TracesAborted broken down by the taxonomy in events.h.
  std::array<uint64_t, (size_t)AbortReason::NumReasons> AbortsByReason{};
  uint64_t TreesCompiled = 0;
  uint64_t BranchesCompiled = 0;
  uint64_t SideExits = 0;
  uint64_t TreeCalls = 0;
  uint64_t LoopsBlacklisted = 0;
  uint64_t TraceEnters = 0;
  uint64_t StitchedTransfers = 0;
  uint64_t UnstableLinks = 0;
  uint64_t OracleDemotions = 0;
  uint64_t GCs = 0;

  // --- Compilation-tier counters (trace/tier.h) -----------------------------
  uint64_t LoopsPromoted = 0;  ///< Loops promoted to the method tier.
  uint64_t LoopsDemoted = 0;   ///< Loops demoted to interpreter-only.
  uint64_t MethodCompiles = 0; ///< Method-tier bodies published.
  uint64_t MethodEnters = 0;   ///< Entries into method-tier code.

  // --- Property inline caches (vm/ic.h) -------------------------------------
  uint64_t IcHits = 0;             ///< Fast-path hits (CollectStats builds).
  uint64_t IcMisses = 0;           ///< Generic-path falls (CollectStats).
  uint64_t IcInvalidations = 0;    ///< ICs reset by invalidateAllICs().
  uint64_t IcMegamorphicSites = 0; ///< Sites that overflowed to Mega.
  uint64_t IcRecorderHits = 0;     ///< Recorder guards taken from IC state.

  // --- Code-cache lifecycle counters ----------------------------------------
  uint64_t CacheFlushes = 0;        ///< Whole-cache flushes.
  uint64_t CacheBytesReclaimed = 0; ///< Native bytes returned by flushes.
  uint64_t FragmentsRetired = 0;    ///< Fragments discarded by flushes.
  uint64_t BackendFallbacks = 0;    ///< Native backend unavailable at start.
  uint64_t ProtectFaults = 0;       ///< W^X flips that failed (enter/compile).
  uint64_t JitDisables = 0;         ///< Kill switch trips (0 or 1).

  // --- Off-thread compile pipeline counters ---------------------------------
  // Mutated on the engine thread only: queueing happens at finishRecording,
  // publication/drop at the loop-edge drain. The compiler thread never
  // touches VMStats (see DESIGN.md "Threading model").
  uint64_t CompileJobsQueued = 0;    ///< Recordings handed to the worker.
  uint64_t CompileJobsPublished = 0; ///< Finished jobs wired into the cache.
  uint64_t CompileJobsDropped = 0;   ///< Stale/failed jobs discarded instead.

  // --- LIR verifier counters ------------------------------------------------
  uint64_t TracesVerified = 0;    ///< Whole-trace verifyTrace() passes run.
  uint64_t LirInsVerified = 0;    ///< Instructions checked (both entry points).
  uint64_t VerifyFailures = 0;    ///< Traces rejected by any rule.
  /// VerifyFailures broken down by the rule taxonomy in events.h.
  std::array<uint64_t, (size_t)VerifyRule::NumRules> VerifyFailuresByRule{};

  // --- LIR pipeline counters ----------------------------------------------
  uint64_t LirEmitted = 0;
  uint64_t LirAfterForwardFilters = 0;
  uint64_t LirAfterBackwardFilters = 0;

  // --- Loop optimizer counters (lir/opt.h) ----------------------------------
  uint64_t GuardsEliminated = 0;     ///< Dominated guards/ovf checks dropped.
  uint64_t OverflowChecksFolded = 0; ///< AddOvI/SubOvI -> AddI/SubI.
  uint64_t IdxStrengthReduced = 0;   ///< Indexing address chains simplified.
  uint64_t InsHoisted = 0;           ///< Instructions moved to prologues.
  uint64_t GuardsHoisted = 0;        ///< ... of which guards/ovf checks.
  uint64_t LoopsWithPrologue = 0;    ///< Fragments that gained a prologue.
  uint64_t EntryDeopts = 0;          ///< Hoisted-guard failures at entry.

  // --- Resource governance counters -----------------------------------------
  uint64_t Timeouts = 0;       ///< Scripts terminated by a deadline.
  uint64_t HostInterrupts = 0; ///< Scripts terminated by requestInterrupt.
  uint64_t HeapQuotaHits = 0;  ///< Scripts terminated as OutOfMemory.
  uint64_t StackOverflows = 0; ///< Frame/stack limit hits.

  // --- Static analysis counters (analysis/analysis.h) -------------------------
  uint64_t AnalysisRuns = 0;         ///< Scripts analyzed.
  uint64_t AnalysisFacts = 0;        ///< Published facts, summed over scripts.
  uint64_t AnalysisDiagnostics = 0;  ///< Lint findings, summed over scripts.
  uint64_t StaticGuardsElided = 0;   ///< Recorder guards proven redundant.
  uint64_t StaticDemotionsSeeded = 0; ///< Oracle demotion facts pre-seeded.
  uint64_t StaticMegaSeeded = 0;      ///< Property sites pre-marked megamorphic.
  uint64_t StaticFactChecks = 0; ///< ValidateStaticFacts slot comparisons.
  uint64_t StaticFactContradictions = 0; ///< ... that failed (must stay 0).

  // --- Figure 12 timers ----------------------------------------------------
  std::array<double, (size_t)Activity::NumActivities> ActivitySeconds{};

  /// The currently-charged activity (Fig. 2 state machine position).
  Activity Current = Activity::Interpret;
  std::chrono::steady_clock::time_point LastStamp{};
  bool TimingActive = false;

  /// Transition the state machine: charge elapsed time to the previous
  /// activity and start charging \p A.
  Activity switchTo(Activity A) {
    auto Now = std::chrono::steady_clock::now();
    if (TimingActive)
      ActivitySeconds[(size_t)Current] +=
          std::chrono::duration<double>(Now - LastStamp).count();
    Activity Prev = Current;
    Current = A;
    LastStamp = Now;
    TimingActive = true;
    return Prev;
  }
  void stopTiming() {
    if (TimingActive)
      switchTo(Current);
    TimingActive = false;
  }

  void reset() { *this = VMStats(); }

  /// Fold another snapshot's counters and timers into this one. The serving
  /// harness uses this to keep a worker's totals across engine recycles.
  void accumulate(const VMStats &O) {
    BytecodesInterpreted += O.BytecodesInterpreted;
    BytecodesRecorded += O.BytecodesRecorded;
    BytecodesNative += O.BytecodesNative;
    TracesStarted += O.TracesStarted;
    TracesCompleted += O.TracesCompleted;
    TracesAborted += O.TracesAborted;
    for (size_t I = 0; I < AbortsByReason.size(); ++I)
      AbortsByReason[I] += O.AbortsByReason[I];
    TreesCompiled += O.TreesCompiled;
    BranchesCompiled += O.BranchesCompiled;
    SideExits += O.SideExits;
    TreeCalls += O.TreeCalls;
    LoopsBlacklisted += O.LoopsBlacklisted;
    TraceEnters += O.TraceEnters;
    StitchedTransfers += O.StitchedTransfers;
    UnstableLinks += O.UnstableLinks;
    OracleDemotions += O.OracleDemotions;
    GCs += O.GCs;
    LoopsPromoted += O.LoopsPromoted;
    LoopsDemoted += O.LoopsDemoted;
    MethodCompiles += O.MethodCompiles;
    MethodEnters += O.MethodEnters;
    IcHits += O.IcHits;
    IcMisses += O.IcMisses;
    IcInvalidations += O.IcInvalidations;
    IcMegamorphicSites += O.IcMegamorphicSites;
    IcRecorderHits += O.IcRecorderHits;
    CacheFlushes += O.CacheFlushes;
    CacheBytesReclaimed += O.CacheBytesReclaimed;
    FragmentsRetired += O.FragmentsRetired;
    BackendFallbacks += O.BackendFallbacks;
    ProtectFaults += O.ProtectFaults;
    JitDisables += O.JitDisables;
    CompileJobsQueued += O.CompileJobsQueued;
    CompileJobsPublished += O.CompileJobsPublished;
    CompileJobsDropped += O.CompileJobsDropped;
    TracesVerified += O.TracesVerified;
    LirInsVerified += O.LirInsVerified;
    VerifyFailures += O.VerifyFailures;
    for (size_t I = 0; I < VerifyFailuresByRule.size(); ++I)
      VerifyFailuresByRule[I] += O.VerifyFailuresByRule[I];
    LirEmitted += O.LirEmitted;
    LirAfterForwardFilters += O.LirAfterForwardFilters;
    LirAfterBackwardFilters += O.LirAfterBackwardFilters;
    GuardsEliminated += O.GuardsEliminated;
    OverflowChecksFolded += O.OverflowChecksFolded;
    IdxStrengthReduced += O.IdxStrengthReduced;
    InsHoisted += O.InsHoisted;
    GuardsHoisted += O.GuardsHoisted;
    LoopsWithPrologue += O.LoopsWithPrologue;
    EntryDeopts += O.EntryDeopts;
    Timeouts += O.Timeouts;
    HostInterrupts += O.HostInterrupts;
    HeapQuotaHits += O.HeapQuotaHits;
    StackOverflows += O.StackOverflows;
    AnalysisRuns += O.AnalysisRuns;
    AnalysisFacts += O.AnalysisFacts;
    AnalysisDiagnostics += O.AnalysisDiagnostics;
    StaticGuardsElided += O.StaticGuardsElided;
    StaticDemotionsSeeded += O.StaticDemotionsSeeded;
    StaticMegaSeeded += O.StaticMegaSeeded;
    StaticFactChecks += O.StaticFactChecks;
    StaticFactContradictions += O.StaticFactContradictions;
    for (size_t I = 0; I < ActivitySeconds.size(); ++I)
      ActivitySeconds[I] += O.ActivitySeconds[I];
  }

  double totalSeconds() const {
    double T = 0;
    for (double S : ActivitySeconds)
      T += S;
    return T;
  }

  /// Render a multi-line human-readable report.
  std::string report() const;
};

/// Scoped activity switch: charges wall-clock time to one activity while in
/// scope and restores the previous activity on destruction. Nesting follows
/// the Fig. 2 state machine: exactly one activity is charged at a time.
class ActivityScope {
public:
  ActivityScope(VMStats &S, Activity A, bool Enabled) : Stats(S), On(Enabled) {
    if (On)
      Prev = Stats.switchTo(A);
  }
  ~ActivityScope() {
    if (On)
      Stats.switchTo(Prev);
  }
  ActivityScope(const ActivityScope &) = delete;
  ActivityScope &operator=(const ActivityScope &) = delete;

private:
  VMStats &Stats;
  bool On;
  Activity Prev = Activity::Interpret;
};

} // namespace tracejit

#endif // TRACEJIT_SUPPORT_STATS_H
