//===- arena.h - Bump-pointer arena allocator -----------------------------===//
//
// Part of tracejit, a reproduction of "Trace-based Just-in-Time Type
// Specialization for Dynamic Languages" (Gal et al., PLDI 2009).
//
//===----------------------------------------------------------------------===//
//
// LIR instructions, shapes, and other compile-time-ish data structures are
// allocated from arenas so that whole traces can be discarded in O(1).
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_SUPPORT_ARENA_H
#define TRACEJIT_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace tracejit {

/// A simple bump-pointer arena. Individual objects are never freed; the
/// whole arena is released at once. Objects allocated here must be
/// trivially destructible (the arena never runs destructors).
class Arena {
public:
  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;
  ~Arena() { reset(); }

  /// Allocate \p Size bytes aligned to \p Align.
  void *allocate(size_t Size, size_t Align = alignof(std::max_align_t)) {
    uintptr_t P = (Cur + Align - 1) & ~(uintptr_t)(Align - 1);
    if (P + Size > End) {
      grow(Size + Align);
      P = (Cur + Align - 1) & ~(uintptr_t)(Align - 1);
    }
    Cur = P + Size;
    TotalAllocated += Size;
    return reinterpret_cast<void *>(P);
  }

  /// Allocate and default-construct a \p T.
  template <typename T, typename... Args> T *make(Args &&...A) {
    void *P = allocate(sizeof(T), alignof(T));
    return new (P) T(static_cast<Args &&>(A)...);
  }

  /// Allocate an uninitialized array of \p N elements of \p T.
  template <typename T> T *makeArray(size_t N) {
    return static_cast<T *>(allocate(sizeof(T) * N, alignof(T)));
  }

  /// Release all memory.
  void reset();

  /// Total bytes handed out since construction or the last reset.
  size_t bytesAllocated() const { return TotalAllocated; }

private:
  void grow(size_t Need);

  std::vector<char *> Chunks;
  uintptr_t Cur = 0;
  uintptr_t End = 0;
  size_t NextChunkSize = 16 * 1024;
  size_t TotalAllocated = 0;
};

} // namespace tracejit

#endif // TRACEJIT_SUPPORT_ARENA_H
