//===- interpreter.cpp - Boxed-value bytecode interpreter ------------------===//

#include "interp/interpreter.h"

#include <cassert>
#include <cmath>
#include <cstring>

#include "interp/natives.h"
#include "interp/tracehooks.h"

namespace tracejit {

Interpreter::Interpreter(VMContext &C) : Ctx(C) {
  Stack.resize(StackSlots, Value::undefined());
  Frames.reserve(MaxFrames);
  // Root the live portion of the value stack.
  Ctx.TheHeap.addRootProvider([this](Marker &M) {
    for (uint32_t I = 0; I < Sp; ++I)
      M.markValue(Stack[I]);
  });
}

Interpreter::~Interpreter() = default;

// --- Semantic helpers ---------------------------------------------------------

double Interpreter::toNumber(const Value &V) {
  if (V.isInt())
    return (double)V.toInt();
  if (V.isDoubleCell())
    return V.toDoubleCell()->Val;
  if (V.isSpecial()) {
    switch (V.specialPayload()) {
    case SpecialFalse:
      return 0;
    case SpecialTrue:
      return 1;
    case SpecialNull:
      return 0;
    default:
      return std::nan("");
    }
  }
  if (V.isString()) {
    // Minimal ToNumber on strings: empty -> 0, decimal literal -> value.
    std::string S(V.toString()->view());
    if (S.empty())
      return 0;
    char *End = nullptr;
    double D = std::strtod(S.c_str(), &End);
    if (End && *End == 0)
      return D;
    return std::nan("");
  }
  return std::nan(""); // objects (no valueOf in the subset)
}

int32_t Interpreter::toInt32(double D) {
  // ECMA-262 ToInt32: modular reduction into the int32 range.
  if (std::isnan(D) || std::isinf(D))
    return 0;
  double T = std::trunc(D);
  double M = std::fmod(T, 4294967296.0);
  if (M < 0)
    M += 4294967296.0;
  uint32_t U = (uint32_t)M;
  return (int32_t)U;
}

bool Interpreter::strictEquals(const Value &A, const Value &B) {
  if (A.isNumber() && B.isNumber())
    return A.numberValue() == B.numberValue();
  if (A.isString() && B.isString())
    return A.toString()->view() == B.toString()->view();
  return A.bits() == B.bits();
}

bool Interpreter::looseEquals(const Value &A, const Value &B) {
  if (A.isNumber() && B.isNumber())
    return A.numberValue() == B.numberValue();
  if (A.isString() && B.isString())
    return A.toString()->view() == B.toString()->view();
  if ((A.isNull() || A.isUndefined()) && (B.isNull() || B.isUndefined()))
    return true;
  if (A.isBoolean() || B.isBoolean()) {
    if (A.isObject() || B.isObject())
      return false;
    return toNumber(A) == toNumber(B);
  }
  if (A.isNumber() && B.isString())
    return A.numberValue() == toNumber(B);
  if (A.isString() && B.isNumber())
    return toNumber(A) == B.numberValue();
  return A.bits() == B.bits(); // object identity / mixed -> false
}

int Interpreter::compareValues(const Value &A, const Value &B) {
  if (A.isString() && B.isString()) {
    int C = A.toString()->view().compare(B.toString()->view());
    return C < 0 ? -1 : C > 0 ? 1 : 0;
  }
  double X = toNumber(A), Y = toNumber(B);
  if (std::isnan(X) || std::isnan(Y))
    return 2; // unordered: all relational comparisons false
  return X < Y ? -1 : X > Y ? 1 : 0;
}

Value Interpreter::concatValues(const Value &A, const Value &B) {
  std::string S = valueToString(A) + valueToString(B);
  Value R = Value::makeString(String::create(Ctx.TheHeap, S));
  Ctx.maybeScheduleGC();
  return R;
}

void Interpreter::rtError(const char *Msg) {
  std::string Full = Msg;
  if (!Frames.empty() && Frames.back().Script &&
      !Frames.back().Script->Name.empty())
    Full += " (in function " + Frames.back().Script->Name + ")";
  Ctx.raiseError(Full);
}

// --- Property / element / call semantics ----------------------------------------

Value Interpreter::getPropValue(const Value &Base, String *Name) {
  if (Base.isString()) {
    if (Name->view() == "length")
      return Value::makeInt((int32_t)Base.toString()->length());
    rtError("unknown string property");
    return Value::undefined();
  }
  if (!Base.isObject()) {
    rtError("cannot read property of non-object");
    return Value::undefined();
  }
  Object *O = Base.toObject();
  if (O->isArray() && Name->view() == "length")
    return Value::makeInt((int32_t)O->arrayLength());
  return O->getProperty(Name);
}

Value Interpreter::getElemValue(const Value &Base, const Value &Index) {
  if (Base.isObject()) {
    Object *O = Base.toObject();
    if (O->isArray()) {
      double D = toNumber(Index);
      int64_t I = (int64_t)D;
      if ((double)I != D || I < 0) {
        rtError("non-integer array index");
        return Value::undefined();
      }
      return O->getElement((uint32_t)I);
    }
    rtError("indexing a non-array object");
    return Value::undefined();
  }
  if (Base.isString()) {
    String *S = Base.toString();
    double D = toNumber(Index);
    int64_t I = (int64_t)D;
    if ((double)I != D || I < 0 || I >= (int64_t)S->length())
      return Value::undefined();
    Value R = Value::makeString(
        String::create(Ctx.TheHeap, std::string_view(S->data() + I, 1)));
    Ctx.maybeScheduleGC();
    return R;
  }
  rtError("indexing a non-object");
  return Value::undefined();
}

bool Interpreter::setElemValue(const Value &Base, const Value &Index,
                               const Value &V) {
  if (!Base.isObject() || !Base.toObject()->isArray()) {
    rtError("element store on a non-array");
    return false;
  }
  double D = toNumber(Index);
  int64_t I = (int64_t)D;
  if ((double)I != D || I < 0) {
    rtError("non-integer array index");
    return false;
  }
  Base.toObject()->setElement(Ctx.TheHeap, (uint32_t)I, V);
  return true;
}

Value Interpreter::callNative(Object *Callee, Value ThisV, const Value *Args,
                              uint32_t N) {
  Value R = Callee->native()(*this, ThisV, Args, N);
  Ctx.maybeScheduleGC();
  return R;
}

bool Interpreter::pushFrameForCall(Object *Callee, uint32_t ArgC) {
  FunctionScript *S = Callee->script();
  // Normalize the argument count to the arity.
  while (ArgC < S->Arity) {
    Stack[Sp++] = Value::undefined();
    ++ArgC;
  }
  while (ArgC > S->Arity) {
    --Sp;
    --ArgC;
  }
  uint32_t Base = Sp - ArgC;
  if (Base + S->frameSlots() + 64 > StackSlots) {
    rtError("stack overflow");
    return false;
  }
  if (Frames.size() >= MaxFrames) {
    rtError("too much recursion");
    return false;
  }
  // Initialize non-parameter locals.
  for (uint32_t I = S->Arity; I < S->NumLocals; ++I)
    Stack[Base + I] = Value::undefined();
  Frame F;
  F.Script = S;
  F.Base = Base;
  F.ReturnPc = Pc;
  Frames.push_back(F);
  Sp = Base + S->NumLocals;
  Pc = 0;
  return true;
}

Value Interpreter::callValue(Value Callee, Value ThisV, const Value *Args,
                             uint32_t N) {
  if (!Callee.isObject() || !Callee.toObject()->isFunction()) {
    rtError("calling a non-function");
    return Value::undefined();
  }
  Object *F = Callee.toObject();
  if (F->native())
    return callNative(F, ThisV, Args, N);

  // Re-entrant scripted call: set up [callee args...] and run a nested
  // dispatch until this frame returns.
  uint32_t SavedPc = Pc;
  size_t SavedFrames = Frames.size();
  Stack[Sp++] = Callee;
  for (uint32_t I = 0; I < N; ++I)
    Stack[Sp++] = Args[I];
  if (!pushFrameForCall(F, N))
    return Value::undefined();
  Value R = dispatchUntil(SavedFrames);
  Pc = SavedPc;
  return R;
}

// --- Dispatch -------------------------------------------------------------------

Value Interpreter::run(FunctionScript *Top) {
  Frame F;
  F.Script = Top;
  F.Base = Sp;
  F.ReturnPc = 0;
  Frames.push_back(F);
  Sp += Top->NumLocals;
  Pc = 0;
  Value R = dispatchUntil(Frames.size() - 1);
  if (Ctx.Monitor)
    Ctx.Monitor->flushRecorder();
  return R;
}

Value Interpreter::dispatch() { return dispatchUntil(Frames.size() - 1); }

Value Interpreter::dispatchUntil(size_t StopDepth) {
  VMContext &C = Ctx;
  bool Stats = C.Opts.CollectStats;

  while (true) {
    if (C.HasError) {
      // Unwind everything this dispatch owns.
      while (Frames.size() > StopDepth)
        Frames.pop_back();
      return Value::undefined();
    }
    Frame &F = Frames.back();
    FunctionScript *Script = F.Script;
    Op O = (Op)Script->Code[Pc];

    if (C.Monitor && C.Monitor->recording() && O != Op::LoopHeader) {
      C.Monitor->recordOp(*this, Pc);
      if (Stats)
        ++C.Stats.BytecodesRecorded;
    } else if (Stats) {
      ++C.Stats.BytecodesInterpreted;
    }

    switch (O) {
    case Op::Nop:
      ++Pc;
      break;
    case Op::Nop3:
      Pc += 3;
      break;

    case Op::LoopHeader: {
      if (C.PreemptFlag && !C.OnTrace)
        C.servicePreempt();
      if (C.Monitor) {
        uint16_t LoopId = Script->u16At(Pc + 1);
        uint32_t NewPc = C.Monitor->onLoopEdge(*this, Pc, LoopId);
        Pc = NewPc;
      } else {
        Pc += 3;
      }
      break;
    }

    case Op::PushConst:
      Stack[Sp++] = Script->Consts[Script->u16At(Pc + 1)];
      Pc += 3;
      break;
    case Op::PushUndefined:
      Stack[Sp++] = Value::undefined();
      ++Pc;
      break;
    case Op::Pop:
      --Sp;
      ++Pc;
      break;
    case Op::PopResult:
      Ctx.LastResult = Stack[--Sp];
      ++Pc;
      break;
    case Op::Dup:
      Stack[Sp] = Stack[Sp - 1];
      ++Sp;
      ++Pc;
      break;
    case Op::Dup2:
      Stack[Sp] = Stack[Sp - 2];
      Stack[Sp + 1] = Stack[Sp - 1];
      Sp += 2;
      ++Pc;
      break;

    case Op::GetLocal:
      Stack[Sp++] = Stack[F.Base + Script->u16At(Pc + 1)];
      Pc += 3;
      break;
    case Op::SetLocal:
      Stack[F.Base + Script->u16At(Pc + 1)] = Stack[Sp - 1];
      Pc += 3;
      break;
    case Op::GetGlobal:
      Stack[Sp++] = C.Globals.Values[Script->u16At(Pc + 1)];
      Pc += 3;
      break;
    case Op::SetGlobal:
      C.Globals.Values[Script->u16At(Pc + 1)] = Stack[Sp - 1];
      Pc += 3;
      break;

    case Op::GetProp: {
      Value B = Stack[Sp - 1];
      Stack[Sp - 1] = getPropValue(B, Script->Atoms[Script->u16At(Pc + 1)]);
      Pc += 3;
      break;
    }
    case Op::SetProp: {
      Value V = Stack[Sp - 1];
      Value B = Stack[Sp - 2];
      if (!B.isObject()) {
        rtError("property store on a non-object");
        break;
      }
      B.toObject()->setProperty(C.Shapes, Script->Atoms[Script->u16At(Pc + 1)],
                                V);
      Stack[Sp - 2] = V;
      --Sp;
      Pc += 3;
      break;
    }
    case Op::InitProp: {
      Value V = Stack[Sp - 1];
      Value B = Stack[Sp - 2];
      B.toObject()->setProperty(C.Shapes, Script->Atoms[Script->u16At(Pc + 1)],
                                V);
      --Sp;
      Pc += 3;
      break;
    }
    case Op::GetElem: {
      Value I = Stack[Sp - 1];
      Value B = Stack[Sp - 2];
      Stack[Sp - 2] = getElemValue(B, I);
      --Sp;
      ++Pc;
      break;
    }
    case Op::SetElem: {
      Value V = Stack[Sp - 1];
      Value I = Stack[Sp - 2];
      Value B = Stack[Sp - 3];
      setElemValue(B, I, V);
      Stack[Sp - 3] = V;
      Sp -= 2;
      ++Pc;
      break;
    }

    case Op::Add: {
      Value B = Stack[Sp - 1];
      Value A = Stack[Sp - 2];
      --Sp;
      if (A.isInt() && B.isInt()) {
        int64_t R = (int64_t)A.toInt() + B.toInt();
        Stack[Sp - 1] = Value::fitsInt31(R)
                            ? Value::makeInt((int32_t)R)
                            : C.TheHeap.boxDouble((double)R);
      } else if (A.isString() || B.isString()) {
        Stack[Sp - 1] = concatValues(A, B);
      } else {
        Stack[Sp - 1] = C.TheHeap.boxNumber(toNumber(A) + toNumber(B));
      }
      ++Pc;
      break;
    }
    case Op::Sub: {
      Value B = Stack[Sp - 1];
      Value A = Stack[Sp - 2];
      --Sp;
      if (A.isInt() && B.isInt()) {
        int64_t R = (int64_t)A.toInt() - B.toInt();
        Stack[Sp - 1] = Value::fitsInt31(R)
                            ? Value::makeInt((int32_t)R)
                            : C.TheHeap.boxDouble((double)R);
      } else {
        Stack[Sp - 1] = C.TheHeap.boxNumber(toNumber(A) - toNumber(B));
      }
      ++Pc;
      break;
    }
    case Op::Mul: {
      Value B = Stack[Sp - 1];
      Value A = Stack[Sp - 2];
      --Sp;
      if (A.isInt() && B.isInt()) {
        int64_t R = (int64_t)A.toInt() * B.toInt();
        Stack[Sp - 1] = Value::fitsInt31(R)
                            ? Value::makeInt((int32_t)R)
                            : C.TheHeap.boxDouble((double)R);
      } else {
        Stack[Sp - 1] = C.TheHeap.boxNumber(toNumber(A) * toNumber(B));
      }
      ++Pc;
      break;
    }
    case Op::Div: {
      Value B = Stack[Sp - 1];
      Value A = Stack[Sp - 2];
      --Sp;
      Stack[Sp - 1] = C.TheHeap.boxNumber(toNumber(A) / toNumber(B));
      ++Pc;
      break;
    }
    case Op::Mod: {
      Value B = Stack[Sp - 1];
      Value A = Stack[Sp - 2];
      --Sp;
      if (A.isInt() && B.isInt() && A.toInt() >= 0 && B.toInt() > 0) {
        Stack[Sp - 1] = Value::makeInt(A.toInt() % B.toInt());
      } else {
        Stack[Sp - 1] =
            C.TheHeap.boxNumber(std::fmod(toNumber(A), toNumber(B)));
      }
      ++Pc;
      break;
    }
    case Op::Neg: {
      Value A = Stack[Sp - 1];
      if (A.isInt() && A.toInt() != 0 && A.toInt() != INT32_MIN)
        Stack[Sp - 1] = Value::makeInt(-A.toInt());
      else
        Stack[Sp - 1] = C.TheHeap.boxDouble(-toNumber(A));
      ++Pc;
      break;
    }

    case Op::BitAnd:
    case Op::BitOr:
    case Op::BitXor:
    case Op::Shl:
    case Op::Shr: {
      Value B = Stack[Sp - 1];
      Value A = Stack[Sp - 2];
      --Sp;
      int32_t X = A.isInt() ? A.toInt() : valueToInt32(A);
      int32_t Y = B.isInt() ? B.toInt() : valueToInt32(B);
      int32_t R;
      switch (O) {
      case Op::BitAnd:
        R = X & Y;
        break;
      case Op::BitOr:
        R = X | Y;
        break;
      case Op::BitXor:
        R = X ^ Y;
        break;
      case Op::Shl:
        R = (int32_t)((uint32_t)X << (Y & 31));
        break;
      default:
        R = X >> (Y & 31);
        break;
      }
      Stack[Sp - 1] = Value::makeInt(R);
      ++Pc;
      break;
    }
    case Op::Ushr: {
      Value B = Stack[Sp - 1];
      Value A = Stack[Sp - 2];
      --Sp;
      uint32_t X = (uint32_t)(A.isInt() ? A.toInt() : valueToInt32(A));
      int32_t Y = B.isInt() ? B.toInt() : valueToInt32(B);
      uint32_t R = X >> (Y & 31);
      Stack[Sp - 1] = R <= (uint32_t)INT32_MAX
                          ? Value::makeInt((int32_t)R)
                          : C.TheHeap.boxDouble((double)R);
      ++Pc;
      break;
    }
    case Op::BitNot: {
      Value A = Stack[Sp - 1];
      int32_t X = A.isInt() ? A.toInt() : valueToInt32(A);
      Stack[Sp - 1] = Value::makeInt(~X);
      ++Pc;
      break;
    }

    case Op::Lt:
    case Op::Le:
    case Op::Gt:
    case Op::Ge: {
      Value B = Stack[Sp - 1];
      Value A = Stack[Sp - 2];
      --Sp;
      bool R;
      if (A.isInt() && B.isInt()) {
        int32_t X = A.toInt(), Y = B.toInt();
        R = O == Op::Lt   ? X < Y
            : O == Op::Le ? X <= Y
            : O == Op::Gt ? X > Y
                          : X >= Y;
      } else {
        int Cv = compareValues(A, B);
        if (Cv == 2)
          R = false;
        else
          R = O == Op::Lt   ? Cv < 0
              : O == Op::Le ? Cv <= 0
              : O == Op::Gt ? Cv > 0
                            : Cv >= 0;
      }
      Stack[Sp - 1] = Value::makeBoolean(R);
      ++Pc;
      break;
    }
    case Op::Eq:
    case Op::Ne: {
      Value B = Stack[Sp - 1];
      Value A = Stack[Sp - 2];
      --Sp;
      bool R = looseEquals(A, B);
      Stack[Sp - 1] = Value::makeBoolean(O == Op::Eq ? R : !R);
      ++Pc;
      break;
    }
    case Op::StrictEq:
    case Op::StrictNe: {
      Value B = Stack[Sp - 1];
      Value A = Stack[Sp - 2];
      --Sp;
      bool R = strictEquals(A, B);
      Stack[Sp - 1] = Value::makeBoolean(O == Op::StrictEq ? R : !R);
      ++Pc;
      break;
    }
    case Op::LogicalNot:
      Stack[Sp - 1] = Value::makeBoolean(!Stack[Sp - 1].truthy());
      ++Pc;
      break;

    case Op::Jump:
      Pc = Script->u32At(Pc + 1);
      break;
    case Op::JumpIfFalse: {
      Value V = Stack[--Sp];
      Pc = V.truthy() ? Pc + 5 : Script->u32At(Pc + 1);
      break;
    }
    case Op::JumpIfTrue: {
      Value V = Stack[--Sp];
      Pc = V.truthy() ? Script->u32At(Pc + 1) : Pc + 5;
      break;
    }

    case Op::Call: {
      uint8_t ArgC = Script->Code[Pc + 1];
      Value Callee = Stack[Sp - ArgC - 1];
      if (!Callee.isObject() || !Callee.toObject()->isFunction()) {
        rtError("calling a non-function");
        break;
      }
      Object *FnObj = Callee.toObject();
      if (FnObj->native()) {
        Value R = callNative(FnObj, Value::undefined(), &Stack[Sp - ArgC],
                             ArgC);
        Sp -= ArgC + 1;
        Stack[Sp++] = R;
        Pc += 2;
        break;
      }
      Pc += 2; // resume point after the call
      if (!pushFrameForCall(FnObj, ArgC))
        break;
      break;
    }

    case Op::CallProp: {
      String *Name = Script->Atoms[Script->u16At(Pc + 1)];
      uint8_t ArgC = Script->Code[Pc + 3];
      Value Recv = Stack[Sp - ArgC - 1];
      // Scripted method on an object property: rewrite into a normal call.
      if (Recv.isObject() && !Recv.toObject()->isArray()) {
        Value M = Recv.toObject()->getProperty(Name);
        if (M.isObject() && M.toObject()->isFunction()) {
          Object *FnObj = M.toObject();
          if (FnObj->native()) {
            Value R = callNative(FnObj, Recv, &Stack[Sp - ArgC], ArgC);
            Sp -= ArgC + 1;
            Stack[Sp++] = R;
            Pc += 4;
            break;
          }
          Stack[Sp - ArgC - 1] = M;
          Pc += 4;
          if (!pushFrameForCall(FnObj, ArgC))
            break;
          break;
        }
      }
      Value R = callPropValue(Recv, Name, &Stack[Sp - ArgC], ArgC);
      Sp -= ArgC + 1;
      Stack[Sp++] = R;
      Pc += 4;
      break;
    }

    case Op::Return:
    case Op::ReturnUndefined: {
      Value R = O == Op::Return ? Stack[--Sp] : Value::undefined();
      Frame Done = Frames.back();
      Frames.pop_back();
      if (Frames.size() == StopDepth) {
        Sp = Done.Base;
        if (Done.Base > 0)
          --Sp; // drop the callee slot pushed by callValue
        return R;
      }
      Sp = Done.Base - 1; // drop args, locals, and the callee slot
      Stack[Sp++] = R;
      Pc = Done.ReturnPc;
      break;
    }

    case Op::NewArray: {
      uint16_t N = Script->u16At(Pc + 1);
      Object *A = Object::createArray(C.TheHeap, C.Shapes, N);
      for (uint16_t I = 0; I < N; ++I)
        A->setElement(C.TheHeap, I, Stack[Sp - N + I]);
      Sp -= N;
      Stack[Sp++] = Value::makeObject(A);
      C.maybeScheduleGC();
      Pc += 3;
      break;
    }
    case Op::NewObject: {
      Object *Obj = Object::create(C.TheHeap, C.Shapes);
      Stack[Sp++] = Value::makeObject(Obj);
      C.maybeScheduleGC();
      ++Pc;
      break;
    }

    case Op::NumOps:
      rtError("corrupt bytecode");
      break;
    }
  }
}

} // namespace tracejit
