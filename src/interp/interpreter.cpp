//===- interpreter.cpp - Boxed-value bytecode interpreter ------------------===//

#include "interp/interpreter.h"

#include <cassert>
#include <cmath>
#include <cstring>

#include "interp/natives.h"
#include "interp/tracehooks.h"

namespace tracejit {

Interpreter::Interpreter(VMContext &C) : Ctx(C) {
  Stack.resize(StackSlots, Value::undefined());
  Frames.reserve(C.Opts.MaxFrames);
  // Root the live portion of the value stack.
  Ctx.TheHeap.addRootProvider([this](Marker &M) {
    for (uint32_t I = 0; I < Sp; ++I)
      M.markValue(Stack[I]);
  });
}

Interpreter::~Interpreter() = default;

// --- Semantic helpers ---------------------------------------------------------

double Interpreter::toNumber(const Value &V) {
  if (V.isInt())
    return (double)V.toInt();
  if (V.isDoubleCell())
    return V.toDoubleCell()->Val;
  if (V.isSpecial()) {
    switch (V.specialPayload()) {
    case SpecialFalse:
      return 0;
    case SpecialTrue:
      return 1;
    case SpecialNull:
      return 0;
    default:
      return std::nan("");
    }
  }
  if (V.isString()) {
    // Minimal ToNumber on strings: empty -> 0, decimal literal -> value.
    std::string S(V.toString()->view());
    if (S.empty())
      return 0;
    char *End = nullptr;
    double D = std::strtod(S.c_str(), &End);
    if (End && *End == 0)
      return D;
    return std::nan("");
  }
  return std::nan(""); // objects (no valueOf in the subset)
}

int32_t Interpreter::toInt32(double D) {
  // ECMA-262 ToInt32: modular reduction into the int32 range.
  if (std::isnan(D) || std::isinf(D))
    return 0;
  double T = std::trunc(D);
  double M = std::fmod(T, 4294967296.0);
  if (M < 0)
    M += 4294967296.0;
  uint32_t U = (uint32_t)M;
  return (int32_t)U;
}

bool Interpreter::strictEquals(const Value &A, const Value &B) {
  if (A.isNumber() && B.isNumber())
    return A.numberValue() == B.numberValue();
  if (A.isString() && B.isString())
    return A.toString()->view() == B.toString()->view();
  return A.bits() == B.bits();
}

bool Interpreter::looseEquals(const Value &A, const Value &B) {
  if (A.isNumber() && B.isNumber())
    return A.numberValue() == B.numberValue();
  if (A.isString() && B.isString())
    return A.toString()->view() == B.toString()->view();
  if ((A.isNull() || A.isUndefined()) && (B.isNull() || B.isUndefined()))
    return true;
  if (A.isBoolean() || B.isBoolean()) {
    if (A.isObject() || B.isObject())
      return false;
    return toNumber(A) == toNumber(B);
  }
  if (A.isNumber() && B.isString())
    return A.numberValue() == toNumber(B);
  if (A.isString() && B.isNumber())
    return toNumber(A) == B.numberValue();
  return A.bits() == B.bits(); // object identity / mixed -> false
}

int Interpreter::compareValues(const Value &A, const Value &B) {
  if (A.isString() && B.isString()) {
    int C = A.toString()->view().compare(B.toString()->view());
    return C < 0 ? -1 : C > 0 ? 1 : 0;
  }
  double X = toNumber(A), Y = toNumber(B);
  if (std::isnan(X) || std::isnan(Y))
    return 2; // unordered: all relational comparisons false
  return X < Y ? -1 : X > Y ? 1 : 0;
}

Value Interpreter::concatValues(const Value &A, const Value &B) {
  std::string S = valueToString(A) + valueToString(B);
  Value R = Value::makeString(String::create(Ctx.TheHeap, S));
  Ctx.maybeScheduleGC();
  return R;
}

void Interpreter::rtError(const char *Msg) {
  rtError(ErrorKind::Runtime, Msg);
}

void Interpreter::rtError(ErrorKind Kind, const char *Msg) {
  std::string Full = Msg;
  LineNote Where;
  if (!Frames.empty() && Frames.back().Script) {
    FunctionScript *S = Frames.back().Script;
    if (!S->Name.empty())
      Full += " (in function " + S->Name + ")";
    Where = S->lineAt(Pc);
  }
  Ctx.raiseError(Kind, Full, Where.Line, Where.Col);
  if (Kind == ErrorKind::StackOverflow)
    ++Ctx.Stats.StackOverflows;
}

// --- Property / element / call semantics ----------------------------------------

Value Interpreter::getPropValue(const Value &Base, String *Name) {
  if (Base.isString()) {
    if (Name->view() == "length")
      return Value::makeInt((int32_t)Base.toString()->length());
    rtError("unknown string property");
    return Value::undefined();
  }
  if (!Base.isObject()) {
    rtError("cannot read property of non-object");
    return Value::undefined();
  }
  Object *O = Base.toObject();
  if (O->isArray() && Name->view() == "length")
    return Value::makeInt((int32_t)O->arrayLength());
  return O->getProperty(Name);
}

Value Interpreter::getElemValue(const Value &Base, const Value &Index) {
  if (Base.isObject()) {
    Object *O = Base.toObject();
    if (O->isArray()) {
      double D = toNumber(Index);
      int64_t I = (int64_t)D;
      if ((double)I != D || I < 0) {
        rtError("non-integer array index");
        return Value::undefined();
      }
      return O->getElement((uint32_t)I);
    }
    rtError("indexing a non-array object");
    return Value::undefined();
  }
  if (Base.isString()) {
    String *S = Base.toString();
    double D = toNumber(Index);
    int64_t I = (int64_t)D;
    if ((double)I != D || I < 0 || I >= (int64_t)S->length())
      return Value::undefined();
    Value R = Value::makeString(
        String::create(Ctx.TheHeap, std::string_view(S->data() + I, 1)));
    Ctx.maybeScheduleGC();
    return R;
  }
  rtError("indexing a non-object");
  return Value::undefined();
}

bool Interpreter::setElemValue(const Value &Base, const Value &Index,
                               const Value &V) {
  if (!Base.isObject() || !Base.toObject()->isArray()) {
    rtError("element store on a non-array");
    return false;
  }
  double D = toNumber(Index);
  int64_t I = (int64_t)D;
  if ((double)I != D || I < 0) {
    rtError("non-integer array index");
    return false;
  }
  Base.toObject()->setElement(Ctx.TheHeap, (uint32_t)I, V);
  return true;
}

Value Interpreter::callNative(Object *Callee, Value ThisV, const Value *Args,
                              uint32_t N) {
  Value R = Callee->native()(*this, ThisV, Args, N);
  Ctx.maybeScheduleGC();
  return R;
}

bool Interpreter::pushFrameForCall(Object *Callee, uint32_t ArgC) {
  FunctionScript *S = Callee->script();
  // Normalize the argument count to the arity.
  while (ArgC < S->Arity) {
    Stack[Sp++] = Value::undefined();
    ++ArgC;
  }
  while (ArgC > S->Arity) {
    --Sp;
    --ArgC;
  }
  uint32_t Base = Sp - ArgC;
  if (Base + S->frameSlots() + 64 > StackSlots) {
    rtError(ErrorKind::StackOverflow, "stack overflow");
    return false;
  }
  if (Frames.size() >= Ctx.Opts.MaxFrames) {
    rtError(ErrorKind::StackOverflow, "too much recursion");
    return false;
  }
  // Initialize non-parameter locals.
  for (uint32_t I = S->Arity; I < S->NumLocals; ++I)
    Stack[Base + I] = Value::undefined();
  Frame F;
  F.Script = S;
  F.Base = Base;
  F.ReturnPc = Pc;
  Frames.push_back(F);
  Sp = Base + S->NumLocals;
  Pc = 0;
  return true;
}

Value Interpreter::callValue(Value Callee, Value ThisV, const Value *Args,
                             uint32_t N) {
  if (!Callee.isObject() || !Callee.toObject()->isFunction()) {
    rtError("calling a non-function");
    return Value::undefined();
  }
  Object *F = Callee.toObject();
  if (F->native())
    return callNative(F, ThisV, Args, N);

  // Re-entrant scripted call: set up [callee args...] and run a nested
  // dispatch until this frame returns.
  uint32_t SavedPc = Pc;
  size_t SavedFrames = Frames.size();
  Stack[Sp++] = Callee;
  for (uint32_t I = 0; I < N; ++I)
    Stack[Sp++] = Args[I];
  if (!pushFrameForCall(F, N))
    return Value::undefined();
  Value R = dispatchUntil(SavedFrames);
  Pc = SavedPc;
  return R;
}

// --- Dispatch -------------------------------------------------------------------

Value Interpreter::run(FunctionScript *Top) {
  uint32_t EntrySp = Sp;
  Frame F;
  F.Script = Top;
  F.Base = Sp;
  F.ReturnPc = 0;
  Frames.push_back(F);
  Sp += Top->NumLocals;
  Pc = 0;
  Value R = dispatchUntil(Frames.size() - 1);
  if (Ctx.Monitor)
    Ctx.Monitor->flushRecorder();
  // An error unwind pops frames without restoring Sp; reset it so the dead
  // frames' values stop rooting garbage (an aborted allocation bomb must be
  // collectable, or the engine would stay over quota forever).
  if (Ctx.HasError)
    Sp = EntrySp;
  return R;
}

Value Interpreter::dispatch() { return dispatchUntil(Frames.size() - 1); }

// --- Shared op bodies (multi-label cases in the seed switch) --------------------

void Interpreter::execBitop(Op O) {
  Value B = Stack[Sp - 1];
  Value A = Stack[Sp - 2];
  --Sp;
  int32_t X = A.isInt() ? A.toInt() : valueToInt32(A);
  int32_t Y = B.isInt() ? B.toInt() : valueToInt32(B);
  int32_t R;
  switch (O) {
  case Op::BitAnd:
    R = X & Y;
    break;
  case Op::BitOr:
    R = X | Y;
    break;
  case Op::BitXor:
    R = X ^ Y;
    break;
  case Op::Shl:
    R = (int32_t)((uint32_t)X << (Y & 31));
    break;
  default:
    R = X >> (Y & 31);
    break;
  }
  Stack[Sp - 1] = Value::makeInt(R);
  ++Pc;
}

void Interpreter::execCompare(Op O) {
  Value B = Stack[Sp - 1];
  Value A = Stack[Sp - 2];
  --Sp;
  bool R;
  if (A.isInt() && B.isInt()) {
    int32_t X = A.toInt(), Y = B.toInt();
    R = O == Op::Lt   ? X < Y
        : O == Op::Le ? X <= Y
        : O == Op::Gt ? X > Y
                      : X >= Y;
  } else {
    int Cv = compareValues(A, B);
    if (Cv == 2)
      R = false;
    else
      R = O == Op::Lt   ? Cv < 0
          : O == Op::Le ? Cv <= 0
          : O == Op::Gt ? Cv > 0
                        : Cv >= 0;
  }
  Stack[Sp - 1] = Value::makeBoolean(R);
  ++Pc;
}

void Interpreter::execEquality(bool Negate) {
  Value B = Stack[Sp - 1];
  Value A = Stack[Sp - 2];
  --Sp;
  bool R = looseEquals(A, B);
  Stack[Sp - 1] = Value::makeBoolean(Negate ? !R : R);
  ++Pc;
}

void Interpreter::execStrictEquality(bool Negate) {
  Value B = Stack[Sp - 1];
  Value A = Stack[Sp - 2];
  --Sp;
  bool R = strictEquals(A, B);
  Stack[Sp - 1] = Value::makeBoolean(Negate ? !R : R);
  ++Pc;
}

bool Interpreter::popReturnFrame(size_t StopDepth, Value R) {
  Frame Done = Frames.back();
  Frames.pop_back();
  if (Frames.size() == StopDepth) {
    Sp = Done.Base;
    if (Done.Base > 0)
      --Sp; // drop the callee slot pushed by callValue
    return true;
  }
  Sp = Done.Base - 1; // drop args, locals, and the callee slot
  Stack[Sp++] = R;
  Pc = Done.ReturnPc;
  return false;
}

// --- Property inline caches -----------------------------------------------------

bool Interpreter::icGetProp(PropertyIC &IC, const Value &B, Value &Out) {
  // No ICState check: entries stay valid for the engine's lifetime (shapes
  // are immutable, transitions memoized), so even a Mega site keeps
  // serving its frozen entries -- it just stopped learning. Uninit has
  // N == 0 and falls through the scan.
  if (B.isObject()) {
    Object *O = B.toObject();
    Shape *S = O->shape();
    uint8_t K = (uint8_t)O->kind();
    for (uint8_t I = 0; I < IC.N; ++I) {
      const ICEntry &E = IC.Entries[I];
      if (E.ShapePtr != S || E.KindGuard != K)
        continue;
      if (E.Kind == ICEntryKind::Slot) { // hot case first
        Out = O->slotValue(E.Slot);
        return true;
      }
      if (E.Kind == ICEntryKind::Absent) {
        Out = Value::undefined();
        return true;
      }
      if (E.Kind == ICEntryKind::ArrayLength) {
        Out = Value::makeInt((int32_t)O->arrayLength());
        return true;
      }
      return false; // StringLength/Transition never match an object probe
    }
    return false;
  }
  if (B.isString()) {
    for (uint8_t I = 0; I < IC.N; ++I) {
      if (IC.Entries[I].Kind == ICEntryKind::StringLength) {
        Out = Value::makeInt((int32_t)B.toString()->length());
        return true;
      }
    }
  }
  return false;
}

void Interpreter::icFillGetProp(PropertyIC &IC, const Value &B, String *Name,
                                FunctionScript *Script, uint32_t Pc) {
  ICEntry E;
  if (B.isString()) {
    // getPropValue succeeded on a string, so the name was "length".
    E.Kind = ICEntryKind::StringLength;
  } else if (B.isObject()) {
    Object *O = B.toObject();
    E.ShapePtr = O->shape();
    E.KindGuard = (uint8_t)O->kind();
    // Mirror getPropValue's resolution order: array length shadows any
    // named slot that happens to be called "length".
    if (O->isArray() && Name->view() == "length") {
      E.Kind = ICEntryKind::ArrayLength;
    } else {
      int Slot = O->slotOf(Name);
      if (Slot >= 0) {
        E.Kind = ICEntryKind::Slot;
        E.Slot = (uint32_t)Slot;
      } else {
        E.Kind = ICEntryKind::Absent;
      }
    }
  } else {
    return; // primitive receivers error out before reaching the fill
  }
  icInsert(IC, E, Script, Pc);
}

bool Interpreter::icSetProp(PropertyIC &IC, Object *O, Value V) {
  Shape *S = O->shape();
  uint8_t K = (uint8_t)O->kind();
  for (uint8_t I = 0; I < IC.N; ++I) {
    const ICEntry &E = IC.Entries[I];
    if (E.ShapePtr != S || E.KindGuard != K)
      continue;
    if (E.Kind == ICEntryKind::Slot) {
      O->setSlotValue(E.Slot, V);
      return true;
    }
    if (E.Kind == ICEntryKind::Transition) {
      O->applyTransition(E.Target, E.Slot, V);
      return true;
    }
    return false;
  }
  return false;
}

void Interpreter::icFillSetProp(PropertyIC &IC, Object *O, Shape *OldShape,
                                String *Name, FunctionScript *Script,
                                uint32_t Pc) {
  ICEntry E;
  E.ShapePtr = OldShape;
  E.KindGuard = (uint8_t)O->kind();
  if (O->shape() == OldShape) {
    int Slot = O->slotOf(Name);
    if (Slot < 0)
      return;
    E.Kind = ICEntryKind::Slot;
    E.Slot = (uint32_t)Slot;
  } else {
    // setProperty transitioned. ShapeTree::transition is memoized, so the
    // (From, Name) -> (To, Slot) triple is stable and safe to replay.
    E.Kind = ICEntryKind::Transition;
    E.Target = O->shape();
    E.Slot = OldShape->slotCount();
  }
  icInsert(IC, E, Script, Pc);
}

void Interpreter::icInsert(PropertyIC &IC, const ICEntry &E,
                           FunctionScript *Script, uint32_t Pc) {
  if (IC.State == ICState::Mega)
    return;
  for (uint8_t I = 0; I < IC.N; ++I) {
    const ICEntry &X = IC.Entries[I];
    if (X.ShapePtr == E.ShapePtr && X.KindGuard == E.KindGuard &&
        X.Kind == E.Kind)
      return; // already cached
  }
  ICState NewState;
  if (IC.N < PropertyIC::MaxEntries) {
    IC.Entries[IC.N++] = E;
    NewState = IC.N == 1 ? ICState::Mono : ICState::Poly;
  } else {
    NewState = ICState::Mega;
    ++Ctx.Stats.IcMegamorphicSites; // rare, counted unconditionally like GCs
  }
  if (NewState == IC.State)
    return;
  IC.State = NewState;
  // Polymorphism observed at this site is speculation feedback, exactly
  // like an oracle demotion (§5): the recorder consults it to choose
  // multi-shape guards (poly) or to abort recording (mega).
  if (Ctx.Monitor && NewState != ICState::Mono)
    Ctx.Monitor->notePropSite(Script->Id, Pc, NewState == ICState::Mega);
  if (Ctx.EventListener) {
    JitEvent Ev;
    Ev.Kind = JitEventKind::IcTransition;
    Ev.ScriptId = Script->Id;
    Ev.Pc = Pc;
    Ev.Arg0 = (uint64_t)NewState;
    Ev.Arg1 = IC.N;
    Ctx.emitEvent(Ev);
  }
}

// --- Dispatch harnesses ---------------------------------------------------------

Value Interpreter::dispatchUntil(size_t StopDepth) {
#if defined(TRACEJIT_COMPUTED_GOTO)
  if (Ctx.Opts.ThreadedDispatch)
    return dispatchThreaded(StopDepth);
#endif
  return dispatchSwitch(StopDepth);
}

/// X-macro over every opcode, in Op enum order. Drives the threaded-dispatch
/// label table; must stay in sync with enum Op (static_asserted below).
#define TJ_FOR_EACH_OP(X)                                                      \
  X(Nop) X(LoopHeader) X(Nop3) X(PushConst) X(PushUndefined) X(Pop)            \
  X(PopResult) X(Dup) X(Dup2) X(GetLocal) X(SetLocal) X(GetGlobal)             \
  X(SetGlobal) X(GetProp) X(SetProp) X(InitProp) X(GetElem) X(SetElem)         \
  X(Add) X(Sub) X(Mul) X(Div) X(Mod) X(Neg) X(BitAnd) X(BitOr) X(BitXor)       \
  X(Shl) X(Shr) X(Ushr) X(BitNot) X(Lt) X(Le) X(Gt) X(Ge) X(Eq) X(Ne)          \
  X(StrictEq) X(StrictNe) X(LogicalNot) X(Jump) X(JumpIfFalse) X(JumpIfTrue)   \
  X(Call) X(CallProp) X(Return) X(ReturnUndefined) X(NewArray) X(NewObject)

#define TJ_COUNT(name) +1
static_assert(0 TJ_FOR_EACH_OP(TJ_COUNT) == (int)Op::NumOps,
              "TJ_FOR_EACH_OP out of sync with enum Op");
#undef TJ_COUNT

Value Interpreter::dispatchSwitch(size_t StopDepth) {
  VMContext &C = Ctx;
  const bool Stats = C.Opts.CollectStats;
  const bool IcOn = C.Opts.EnableIC;
  Frame *F;
  FunctionScript *Script;
  Op O;

  while (true) {
    if (C.HasError) {
      // Unwind everything this dispatch owns.
      while (Frames.size() > StopDepth)
        Frames.pop_back();
      return Value::undefined();
    }
    F = &Frames.back();
    Script = F->Script;
    O = (Op)Script->Code[Pc];

    if (C.Monitor && C.Monitor->recording() && O != Op::LoopHeader) {
      C.Monitor->recordOp(*this, Pc);
      if (Stats)
        ++C.Stats.BytecodesRecorded;
    } else if (Stats) {
      ++C.Stats.BytecodesInterpreted;
    }

    switch (O) {
#define TJ_OP(name) case Op::name: {
#define TJ_NEXT() } break;
#include "interp/dispatch.inc"
#undef TJ_OP
#undef TJ_NEXT
    case Op::NumOps:
      rtError("corrupt bytecode");
      break;
    }
  }
}

#if defined(TRACEJIT_COMPUTED_GOTO)
Value Interpreter::dispatchThreaded(size_t StopDepth) {
  VMContext &C = Ctx;
  const bool Stats = C.Opts.CollectStats;
  const bool IcOn = C.Opts.EnableIC;
  Frame *F;
  FunctionScript *Script;
  Op O;

  // One label per opcode, indexed by the opcode byte. A single shared
  // prologue (error unwind + recording hook) keeps the op bodies identical
  // to the switch harness; each body jumps back to TjDispatch.
  static const void *const Table[] = {
#define TJ_LABEL(name) &&L_##name,
      TJ_FOR_EACH_OP(TJ_LABEL)
#undef TJ_LABEL
  };

TjDispatch:
  if (C.HasError) {
    while (Frames.size() > StopDepth)
      Frames.pop_back();
    return Value::undefined();
  }
  F = &Frames.back();
  Script = F->Script;
  O = (Op)Script->Code[Pc];

  if (C.Monitor && C.Monitor->recording() && O != Op::LoopHeader) {
    C.Monitor->recordOp(*this, Pc);
    if (Stats)
      ++C.Stats.BytecodesRecorded;
  } else if (Stats) {
    ++C.Stats.BytecodesInterpreted;
  }

  if ((uint8_t)O >= (uint8_t)Op::NumOps)
    goto L_Corrupt;
  goto *Table[(uint8_t)O];

#define TJ_OP(name) L_##name: {
#define TJ_NEXT() } goto TjDispatch;
#include "interp/dispatch.inc"
#undef TJ_OP
#undef TJ_NEXT

L_Corrupt:
  rtError("corrupt bytecode");
  goto TjDispatch;
}
#endif // TRACEJIT_COMPUTED_GOTO

} // namespace tracejit
