//===- interpreter.h - Boxed-value bytecode interpreter --------------------===//
//
// The baseline execution engine: a stack-based bytecode interpreter over
// boxed, tag-dispatched values -- deliberately shaped like the SpiderMonkey
// interpreter the paper starts from. Every operator checks tags,
// dispatches, unboxes, computes, and reboxes; eliminating exactly these
// costs is what trace compilation is for.
//
// The interpreter exposes its frame/stack state to the trace monitor: the
// monitor reads it to build type maps and trace activation records, and
// writes it back when a compiled trace side-exits (paper §6.1).
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_INTERP_INTERPRETER_H
#define TRACEJIT_INTERP_INTERPRETER_H

#include <cstdint>
#include <vector>

#include "frontend/bytecode.h"
#include "interp/vmcontext.h"

namespace tracejit {

class TraceMonitor;

/// One interpreter call frame. Locals live in the shared value stack at
/// [Base, Base+NumLocals); the operand stack follows.
struct Frame {
  FunctionScript *Script = nullptr;
  uint32_t Base = 0;     ///< Value-stack index of local slot 0.
  uint32_t ReturnPc = 0; ///< Caller pc to resume at (pc after the call op).
};

class Interpreter {
public:
  explicit Interpreter(VMContext &C);
  ~Interpreter();

  /// Run a top-level script to completion. Errors land in Ctx.
  Value run(FunctionScript *Top);

  /// Call a callable value with boxed arguments (used by natives and by the
  /// trace engine when it needs to run script re-entrantly).
  Value callValue(Value Callee, Value ThisV, const Value *Args, uint32_t N);

  VMContext &context() { return Ctx; }

  // --- State access for the trace engine -----------------------------------
  std::vector<Frame> &frames() { return Frames; }
  Value *stackData() { return Stack.data(); }
  uint32_t stackTop() const { return Sp; }
  void setStackTop(uint32_t S) { Sp = S; }
  uint32_t currentPc() const { return Pc; }
  void setCurrentPc(uint32_t P) { Pc = P; }
  Frame &currentFrame() { return Frames.back(); }

  /// Value-stack slot index of operand-stack depth \p D in the top frame.
  uint32_t operandBase() const {
    const Frame &F = Frames.back();
    return F.Base + F.Script->NumLocals;
  }

  // --- Semantic helpers shared with the trace runtime ----------------------
  static double toNumber(const Value &V);
  static int32_t toInt32(double D);
  static int32_t valueToInt32(const Value &V) { return toInt32(toNumber(V)); }
  static bool looseEquals(const Value &A, const Value &B);
  static bool strictEquals(const Value &A, const Value &B);
  /// Numeric-or-string relational compare; returns <0, 0, >0, or 2 for
  /// unordered (NaN involved).
  static int compareValues(const Value &A, const Value &B);

  Value concatValues(const Value &A, const Value &B);

private:
  friend class TraceMonitor;
  friend class TraceRecorder;
  friend struct MethodOps; ///< Method-tier helper bodies (trace/helpers.cpp).

  /// The dispatch loop. Executes until the entry frame returns or an error
  /// is raised.
  Value dispatch();
  /// Dispatch until the frame stack shrinks back to \p StopDepth. Picks the
  /// threaded (computed-goto) harness when the build supports it and
  /// EngineOptions::ThreadedDispatch is set; both harnesses stamp out the
  /// same op bodies from interp/dispatch.inc.
  Value dispatchUntil(size_t StopDepth);
  Value dispatchSwitch(size_t StopDepth);
#if defined(TRACEJIT_COMPUTED_GOTO)
  Value dispatchThreaded(size_t StopDepth);
#endif

  // Op bodies the seed interpreter shared between several case labels,
  // factored out so each opcode keeps its own dispatch label (dispatch.inc).
  void execBitop(Op O);
  void execCompare(Op O);
  void execEquality(bool Negate);
  void execStrictEquality(bool Negate);
  /// Pop the returning frame; true means dispatchUntil should return \p R.
  bool popReturnFrame(size_t StopDepth, Value R);

  // Property inline caches (vm/ic.h). icGetProp/icSetProp are the probe
  // fast paths; the fill helpers run after a generic-path miss succeeded.
  bool icGetProp(PropertyIC &IC, const Value &B, Value &Out);
  void icFillGetProp(PropertyIC &IC, const Value &B, String *Name,
                     FunctionScript *Script, uint32_t Pc);
  bool icSetProp(PropertyIC &IC, Object *O, Value V);
  void icFillSetProp(PropertyIC &IC, Object *O, Shape *OldShape, String *Name,
                     FunctionScript *Script, uint32_t Pc);
  void icInsert(PropertyIC &IC, const ICEntry &E, FunctionScript *Script,
                uint32_t Pc);

  bool pushFrameForCall(Object *Callee, uint32_t ArgC);
  Value callNative(Object *Callee, Value ThisV, const Value *Args, uint32_t N);

  /// Property/element/call helpers (shared boxed semantics).
  Value getPropValue(const Value &Base, String *Name);
  Value getElemValue(const Value &Base, const Value &Index);
  bool setElemValue(const Value &Base, const Value &Index, const Value &V);
  Value callPropValue(Value Recv, String *Name, const Value *Args, uint32_t N);

  /// Raise a runtime error at the current pc (kind defaults to Runtime;
  /// pushFrameForCall raises StackOverflow). Source position comes from the
  /// current script's line notes.
  void rtError(const char *Msg);
  void rtError(ErrorKind Kind, const char *Msg);

  VMContext &Ctx;
  std::vector<Value> Stack;
  std::vector<Frame> Frames;
  uint32_t Sp = 0; ///< Next free value-stack slot.
  uint32_t Pc = 0; ///< Current pc within Frames.back().

  static constexpr uint32_t StackSlots = 1 << 16;
};

} // namespace tracejit

#endif // TRACEJIT_INTERP_INTERPRETER_H
