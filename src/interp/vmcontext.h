//===- vmcontext.h - Shared VM state ---------------------------------------===//
//
// The state shared by the interpreter, the trace engine, and the public
// Engine facade: heap, atoms, shapes, compiled scripts, the global table,
// options, statistics, and the preempt flag the paper guards at every loop
// edge (§6.4).
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_INTERP_VMCONTEXT_H
#define TRACEJIT_INTERP_VMCONTEXT_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/options.h"
#include "frontend/bytecode.h"
#include "support/stats.h"
#include "vm/gc.h"
#include "vm/object.h"
#include "vm/shape.h"
#include "vm/string.h"

namespace tracejit {

class TraceMonitor;
struct ExitDescriptor;

/// The global variable table. The bytecode compiler resolves global names
/// to slot indices at compile time, so the interpreter indexes an array and
/// compiled traces import globals by slot ("the trace imports local and
/// global variables by unboxing them and copying them to its activation
/// record", §3.1).
struct GlobalTable {
  std::vector<String *> Names;
  std::vector<Value> Values;
  std::unordered_map<String *, uint32_t> Index;

  uint32_t slotFor(String *Name) {
    auto It = Index.find(Name);
    if (It != Index.end())
      return It->second;
    uint32_t Slot = (uint32_t)Values.size();
    Names.push_back(Name);
    Values.push_back(Value::undefined());
    Index.emplace(Name, Slot);
    return Slot;
  }
  uint32_t size() const { return (uint32_t)Values.size(); }
};

struct VMContext {
  explicit VMContext(const EngineOptions &O)
      : Opts(O), Atoms(TheHeap), RandomState(0x2545F4914F6CDD1DULL) {
    TheHeap.addRootProvider([this](Marker &M) {
      for (Value &V : Globals.Values)
        M.markValue(V);
      for (auto &S : Scripts)
        for (Value &V : S->Consts)
          M.markValue(V);
      M.markValue(LastResult);
    });
  }

  EngineOptions Opts;
  Heap TheHeap;
  AtomTable Atoms;
  ShapeTree Shapes;
  GlobalTable Globals;
  std::vector<std::unique_ptr<FunctionScript>> Scripts;
  VMStats Stats;

  /// Created lazily when the JIT is enabled. Owned by the Engine.
  TraceMonitor *Monitor = nullptr;

  /// The installed JIT event listener (null = observability off). Every
  /// emission site is gated on this single pointer so a disabled engine
  /// pays one predictable branch per site. Owned by the Engine (usually a
  /// JitEventMux fanning out to user and built-in listeners).
  JitEventListener *EventListener = nullptr;
  /// Timebase for JitEvent::TimeUs (engine creation).
  std::chrono::steady_clock::time_point EventEpoch =
      std::chrono::steady_clock::now();

  /// Stamp and deliver \p E. Callers check EventListener first so the
  /// disabled path constructs nothing.
  void emitEvent(JitEvent E) {
    E.TimeUs = (uint64_t)std::chrono::duration_cast<std::chrono::microseconds>(
                   std::chrono::steady_clock::now() - EventEpoch)
                   .count();
    EventListener->onEvent(E);
  }

  /// Value of the last top-level expression statement (Op::PopResult);
  /// surfaced through EvalResult::LastValue. GC-rooted until overwritten.
  Value LastResult = Value::undefined();

  /// The preempt flag: set by GC pressure (or tests); every compiled loop
  /// edge guards on it being zero (§6.4). Must have a stable address that
  /// generated code can embed; std::atomic<uint32_t> is layout-compatible
  /// with the plain 4-byte load traces compile in, and makes cross-thread
  /// raises (a future external interruptor; TSan today) well-defined.
  std::atomic<uint32_t> PreemptFlag{0};

  /// Set while a compiled trace is running; external functions that reenter
  /// the interpreter check it (§6.5). Also used as the "no GC on trace"
  /// latch.
  bool OnTrace = false;

  /// When a nested tree call returns through an unexpected exit, generated
  /// code stashes the inner tree's actual exit descriptor here before
  /// side-exiting the outer trace (§4.1).
  ExitDescriptor *LastNestedExit = nullptr;

  /// The trace-time call-stack area (the paper's "frame entry and exit LIR
  /// saves just enough information to allow the interpreter call stack to
  /// be restored later", §3.1). Exit descriptors record the static shape
  /// of the frame chain (scripts, bases), but return pcs depend on the
  /// call site a trace was entered from, so they travel dynamically: the
  /// monitor writes the live frames' return pcs here on trace entry, and
  /// traces store the (static) return pc of each call they inline at the
  /// frame's depth. Restores read return pcs from here.
  std::vector<uint32_t> FrameReturnPcs = std::vector<uint32_t>(2048, 0);

  /// Runtime error state (we compile with -fno-exceptions style error
  /// handling: natives/interpreter set this and unwind by return values).
  bool HasError = false;
  std::string ErrorMessage;

  /// Where `print` output goes; tests capture it, examples print to stdout.
  std::function<void(const std::string &)> PrintHook;

  /// Deterministic Math.random state (xorshift64*).
  uint64_t RandomState;

  void raiseError(const std::string &Msg) {
    if (!HasError) {
      HasError = true;
      ErrorMessage = Msg;
    }
  }

  /// Reset every property inline cache in every script (vm/ic.h). Part of
  /// the whole-cache-flush contract: a flush drops all speculation state at
  /// once, and ICs are speculation state just like compiled fragments.
  void invalidateAllICs() {
    uint64_t Cleared = 0;
    for (auto &S : Scripts)
      for (PropertyIC &IC : S->ICs)
        if (IC.State != ICState::Uninit) {
          IC.reset();
          ++Cleared;
        }
    Stats.IcInvalidations += Cleared;
    if (EventListener) {
      JitEvent E;
      E.Kind = JitEventKind::IcInvalidateAll;
      E.Arg0 = Cleared;
      emitEvent(E);
    }
  }

  /// Request a GC at the next safe point by raising the preempt flag.
  void maybeScheduleGC() {
    if (TheHeap.wantsGC())
      PreemptFlag = 1;
  }

  /// Service the preempt flag at a safe point (interpreter loop edge or
  /// trace exit): run the GC if the heap asked for one.
  void servicePreempt() {
    PreemptFlag = 0;
    if (TheHeap.wantsGC()) {
      TheHeap.collect();
      ++Stats.GCs;
      if (EventListener) {
        JitEvent E;
        E.Kind = JitEventKind::GC;
        E.Arg0 = Stats.GCs;
        emitEvent(E);
      }
    }
  }
};

} // namespace tracejit

#endif // TRACEJIT_INTERP_VMCONTEXT_H
