//===- vmcontext.h - Shared VM state ---------------------------------------===//
//
// The state shared by the interpreter, the trace engine, and the public
// Engine facade: heap, atoms, shapes, compiled scripts, the global table,
// options, statistics, and the preempt flag the paper guards at every loop
// edge (§6.4).
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_INTERP_VMCONTEXT_H
#define TRACEJIT_INTERP_VMCONTEXT_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/analysis.h"
#include "api/options.h"
#include "api/result.h"
#include "frontend/bytecode.h"
#include "support/stats.h"
#include "vm/gc.h"
#include "vm/object.h"
#include "vm/shape.h"
#include "vm/string.h"

namespace tracejit {

class TraceMonitor;
struct ExitDescriptor;

/// The global variable table. The bytecode compiler resolves global names
/// to slot indices at compile time, so the interpreter indexes an array and
/// compiled traces import globals by slot ("the trace imports local and
/// global variables by unboxing them and copying them to its activation
/// record", §3.1).
struct GlobalTable {
  std::vector<String *> Names;
  std::vector<Value> Values;
  std::unordered_map<String *, uint32_t> Index;

  uint32_t slotFor(String *Name) {
    auto It = Index.find(Name);
    if (It != Index.end())
      return It->second;
    uint32_t Slot = (uint32_t)Values.size();
    Names.push_back(Name);
    Values.push_back(Value::undefined());
    Index.emplace(Name, Slot);
    return Slot;
  }
  uint32_t size() const { return (uint32_t)Values.size(); }
};

/// Interrupt-request bits for VMContext::PreemptFlag. Any nonzero value
/// makes every compiled loop edge side-exit (the §6.4 guard tests the whole
/// word against zero, so new bits need no codegen change) and makes the
/// interpreter service the request at its next loop edge.
enum : uint32_t {
  InterruptGC = 1u << 0,        ///< The heap asked for a collection (benign).
  InterruptHost = 1u << 1,      ///< Engine::requestInterrupt: terminate the
                                ///< script as ErrorKind::Interrupted.
  InterruptDeadline = 1u << 2,  ///< A deadline expired: terminate as
                                ///< ErrorKind::Timeout.
  InterruptHeapQuota = 1u << 3, ///< Collection cannot get under
                                ///< MaxHeapBytes: terminate as OutOfMemory.
  /// The bits that terminate the script (vs. the benign GC request).
  InterruptTermination = InterruptHost | InterruptDeadline | InterruptHeapQuota,
};

struct VMContext {
  explicit VMContext(const EngineOptions &O)
      : Opts(O), Atoms(TheHeap),
        FrameReturnPcs((size_t)O.MaxFrames + O.MaxInlineDepth + 1, 0),
        RandomState(0x2545F4914F6CDD1DULL) {
    TheHeap.addRootProvider([this](Marker &M) {
      for (Value &V : Globals.Values)
        M.markValue(V);
      for (auto &S : Scripts)
        for (Value &V : S->Consts)
          M.markValue(V);
      M.markValue(LastResult);
    });
  }

  EngineOptions Opts;
  Heap TheHeap;
  AtomTable Atoms;
  ShapeTree Shapes;
  GlobalTable Globals;
  std::vector<std::unique_ptr<FunctionScript>> Scripts;
  VMStats Stats;

  /// Static analysis results, one per analyzed script (populated by the
  /// Engine after each parse when Opts.StaticAnalysis is on). Keyed by the
  /// script's address; entries live exactly as long as the script does.
  std::unordered_map<const FunctionScript *, std::unique_ptr<ScriptAnalysis>>
      Analyses;

  /// Facts for \p S, or null when analysis is off / didn't converge.
  const ScriptAnalysis *analysisOf(const FunctionScript *S) const {
    auto It = Analyses.find(S);
    if (It == Analyses.end() || !It->second->Converged)
      return nullptr;
    return It->second.get();
  }

  /// Created lazily when the JIT is enabled. Owned by the Engine.
  TraceMonitor *Monitor = nullptr;

  /// The installed JIT event listener (null = observability off). Every
  /// emission site is gated on this single pointer so a disabled engine
  /// pays one predictable branch per site. Owned by the Engine (usually a
  /// JitEventMux fanning out to user and built-in listeners).
  JitEventListener *EventListener = nullptr;
  /// Timebase for JitEvent::TimeUs (engine creation).
  std::chrono::steady_clock::time_point EventEpoch =
      std::chrono::steady_clock::now();

  /// Stamp and deliver \p E. Callers check EventListener first so the
  /// disabled path constructs nothing.
  void emitEvent(JitEvent E) {
    E.TimeUs = (uint64_t)std::chrono::duration_cast<std::chrono::microseconds>(
                   std::chrono::steady_clock::now() - EventEpoch)
                   .count();
    EventListener->onEvent(E);
  }

  /// Value of the last top-level expression statement (Op::PopResult);
  /// surfaced through EvalResult::LastValue. GC-rooted until overwritten.
  Value LastResult = Value::undefined();

  /// The interrupt-request bitmask (Interrupt* bits above), historically
  /// the GC preempt flag. Every compiled loop edge guards on it being zero
  /// (§6.4), so a raise from any thread drives hot traces back to the
  /// monitor within one iteration. Must have a stable address that
  /// generated code can embed; std::atomic<uint32_t> is layout-compatible
  /// with the plain 4-byte load traces compile in, and makes cross-thread
  /// raises (the Engine deadline timer, the ScriptServer watchdog)
  /// well-defined. This word is the one sanctioned cross-thread touch of
  /// engine state.
  std::atomic<uint32_t> PreemptFlag{0};

  /// OR interrupt-request bits into the flag. Safe from any thread; the
  /// owning thread services the request at its next safe point.
  void requestInterrupt(uint32_t Bits) {
    PreemptFlag.fetch_or(Bits, std::memory_order_release);
  }

  /// Set while a compiled trace is running; external functions that reenter
  /// the interpreter check it (§6.5). Also used as the "no GC on trace"
  /// latch.
  bool OnTrace = false;

  /// When a nested tree call returns through an unexpected exit, generated
  /// code stashes the inner tree's actual exit descriptor here before
  /// side-exiting the outer trace (§4.1).
  ExitDescriptor *LastNestedExit = nullptr;

  /// The trace-time call-stack area (the paper's "frame entry and exit LIR
  /// saves just enough information to allow the interpreter call stack to
  /// be restored later", §3.1). Exit descriptors record the static shape
  /// of the frame chain (scripts, bases), but return pcs depend on the
  /// call site a trace was entered from, so they travel dynamically: the
  /// monitor writes the live frames' return pcs here on trace entry, and
  /// traces store the (static) return pc of each call they inline at the
  /// frame's depth. Restores read return pcs from here. Sized in the ctor:
  /// MaxFrames interpreter frames plus MaxInlineDepth trace-inlined frames.
  std::vector<uint32_t> FrameReturnPcs;

  /// Runtime error state (we compile with -fno-exceptions style error
  /// handling: natives/interpreter set this and unwind by return values).
  bool HasError = false;
  std::string ErrorMessage;
  ErrorKind ErrorCode = ErrorKind::Runtime; ///< Kind of the pending error.
  uint32_t ErrorLine = 0;                   ///< 1-based; 0 when unknown.
  uint32_t ErrorCol = 0;

  // --- Deadline governor state (owning thread only) ---------------------------

  /// Armed by Engine::eval when EvalDeadlineMs is set. The interpreter
  /// polls the monotonic clock every DeadlinePollInterval loop edges (hot
  /// traces don't poll -- the Engine's timer thread or the server watchdog
  /// raises InterruptDeadline, and the §6.4 guard drives the trace out).
  bool DeadlineArmed = false;
  std::chrono::steady_clock::time_point DeadlineAt{};
  uint32_t DeadlinePollCountdown = 0;
  static constexpr uint32_t DeadlinePollInterval = 64;

  /// Cheap loop-edge deadline check: one decrement most edges, one clock
  /// read every DeadlinePollInterval-th.
  void pollDeadline() {
    if (!DeadlineArmed)
      return;
    if (DeadlinePollCountdown > 0) {
      --DeadlinePollCountdown;
      return;
    }
    DeadlinePollCountdown = DeadlinePollInterval;
    if (std::chrono::steady_clock::now() >= DeadlineAt)
      requestInterrupt(InterruptDeadline);
  }

  /// Where `print` output goes; tests capture it, examples print to stdout.
  std::function<void(const std::string &)> PrintHook;

  /// Deterministic Math.random state (xorshift64*).
  uint64_t RandomState;

  /// Raise a structured error; the first error wins (later raises during
  /// the unwind are dropped). Plain-message form = ErrorKind::Runtime.
  void raiseError(ErrorKind Kind, const std::string &Msg, uint32_t Line = 0,
                  uint32_t Col = 0) {
    if (!HasError) {
      HasError = true;
      ErrorCode = Kind;
      ErrorMessage = Msg;
      ErrorLine = Line;
      ErrorCol = Col;
    }
  }
  void raiseError(const std::string &Msg) {
    raiseError(ErrorKind::Runtime, Msg);
  }

  /// Reset every property inline cache in every script (vm/ic.h). Part of
  /// the whole-cache-flush contract: a flush drops all speculation state at
  /// once, and ICs are speculation state just like compiled fragments.
  void invalidateAllICs() {
    uint64_t Cleared = 0;
    for (auto &S : Scripts)
      for (PropertyIC &IC : S->ICs)
        if (IC.State != ICState::Uninit) {
          IC.reset();
          ++Cleared;
        }
    Stats.IcInvalidations += Cleared;
    if (EventListener) {
      JitEvent E;
      E.Kind = JitEventKind::IcInvalidateAll;
      E.Arg0 = Cleared;
      emitEvent(E);
    }
  }

  /// True when a heap quota is configured and allocation exceeds it.
  bool overHeapQuota() const {
    return Opts.MaxHeapBytes && TheHeap.bytesAllocated() > Opts.MaxHeapBytes;
  }

  /// Allocation-site hook: request a GC at the next safe point when the
  /// heap wants one or the quota is exceeded (collection gets first crack
  /// at freeing garbage; serviceInterrupts re-checks the quota after it
  /// runs). The HeapAllocFail fault site simulates a collection that cannot
  /// get under quota by raising the terminal bit directly.
  void maybeScheduleGC() {
    if (Opts.FaultInjector && Opts.FaultInjector(FaultSite::HeapAllocFail)) {
      requestInterrupt(InterruptHeapQuota);
      return;
    }
    if (TheHeap.wantsGC() || overHeapQuota())
      requestInterrupt(InterruptGC);
  }

  /// Service pending interrupt requests at a safe point (interpreter loop
  /// edge, trace preempt exit, or nested-call abort path). Runs the GC for
  /// benign requests; for termination requests (deadline / host / heap
  /// quota) aborts any active recording (forgiven, not blacklisted) and
  /// raises the matching structured error, leaving the engine fully
  /// reusable. Defined in vmcontext.cpp (needs TraceMonitor).
  void serviceInterrupts();
};

} // namespace tracejit

#endif // TRACEJIT_INTERP_VMCONTEXT_H
