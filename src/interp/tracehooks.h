//===- tracehooks.h - Interpreter <-> trace-engine interface ---------------===//
//
// The interpreter's only knowledge of the trace engine: an abstract monitor
// invoked at loop edges (the paper's "trace monitor", Fig. 2) and a
// per-bytecode recording hook ("the interpreter's dispatch table is swapped
// to call a recording routine for every bytecode", §6.3 -- we gate on a
// flag instead, same semantics).
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_INTERP_TRACEHOOKS_H
#define TRACEJIT_INTERP_TRACEHOOKS_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/events.h"

namespace tracejit {

class Interpreter;

class TraceMonitor {
public:
  virtual ~TraceMonitor() = default;

  /// Called when the interpreter executes a LoopHeader bytecode at \p Pc
  /// (interpreter state is synced). The monitor may count hotness, start or
  /// finish recording, or execute a compiled trace (mutating the
  /// interpreter's frames/stack). Returns the pc to continue interpreting
  /// at.
  virtual uint32_t onLoopEdge(Interpreter &I, uint32_t Pc, uint16_t LoopId) = 0;

  /// True while a trace recorder is active.
  virtual bool recording() const = 0;

  /// Pre-execution recording hook for every bytecode while recording.
  /// Interpreter state is synced; the hook must not mutate it.
  virtual void recordOp(Interpreter &I, uint32_t Pc) = 0;

  /// A property IC left the monomorphic state: the site at (ScriptId, Pc)
  /// went polymorphic, or megamorphic when \p Megamorphic. Speculation
  /// feedback for the oracle, like double-demotion failures (§5): the
  /// recorder emits multi-shape guards at poly sites and refuses to record
  /// through mega sites.
  virtual void notePropSite(uint32_t ScriptId, uint32_t Pc, bool Megamorphic) {
    (void)ScriptId;
    (void)Pc;
    (void)Megamorphic;
  }

  /// Static-analysis seeding (analysis/analysis.h): a slot is proven
  /// int-and-double at some loop header, so record the §3.2 demotion fact
  /// in the oracle before the first recording ever specializes it as int.
  /// \p Key is an Oracle slot key (globalKey/localKey).
  virtual void noteStaticDemotion(uint64_t Key) { (void)Key; }

  /// Called when the dispatch loop is about to return from the outermost
  /// frame or an error unwinds; any active recording must be aborted.
  virtual void flushRecorder() = 0;

  /// A governor (deadline, host interrupt, heap quota) is terminating the
  /// running script: abort any active recording without blacklisting the
  /// loop (AbortReason::Interrupted) -- the loop did nothing untraceable,
  /// the script just ran out of budget.
  virtual void abortForInterrupt() {}

  /// Fold derived statistics (e.g. the Figure 11 native-bytecode estimate,
  /// summed over fragments) into VMStats before it is read.
  virtual void syncStats() {}

  /// Snapshot per-fragment telemetry (enter counts, iterations, per-guard
  /// side-exit histograms, LIR/native sizes) into \p Out. Appends one
  /// FragmentProfile per fragment in the current cache generation,
  /// including aborted ones.
  virtual void collectFragmentProfiles(std::vector<FragmentProfile> &Out) const {
    (void)Out;
  }

  /// Raw compilation tier (the Tier enum in trace/tier.h) of loop
  /// \p LoopId of the script with id \p ScriptId. Loops the monitor has
  /// never seen report the engine's initial tier. Engine::tierOf is the
  /// typed wrapper; the raw value keeps this interface free of trace-layer
  /// headers. Default: 1 (Tier::Trace).
  virtual uint8_t tierOfLoop(uint32_t ScriptId, uint16_t LoopId) const {
    (void)ScriptId;
    (void)LoopId;
    return 1;
  }

  // --- Code-cache lifecycle --------------------------------------------------

  /// Called by the engine at the top of every eval; resets the per-eval
  /// flush budget that feeds the jit-disable kill switch.
  virtual void onEvalStart() {}

  /// Request a whole-cache flush: retire every fragment, reset the code
  /// pool, bump the generation, and re-enter monitoring cold. Deferred
  /// (not dropped) while a trace is on the native stack or a recording is
  /// active; the flush then runs at the next safe loop edge.
  virtual void requestCacheFlush() {}

  /// Monotonic generation counter; bumped by every completed flush.
  virtual uint32_t cacheGeneration() const { return 0; }

  /// True once the kill switch disabled the JIT for this engine.
  virtual bool jitDisabled() const { return false; }

  /// Executable-pool occupancy (0 for the executor backend).
  virtual size_t codeCacheUsed() const { return 0; }
  virtual size_t codeCacheCapacity() const { return 0; }

  // --- Off-thread compilation (jit/compile_queue.h) --------------------------

  /// Compile jobs submitted but not yet published or dropped (0 when
  /// OffThreadCompile is off).
  virtual uint32_t pendingCompileJobs() const { return 0; }

  /// Publish/drop any finished compile jobs now (normally done at loop
  /// edges; tests and the serving harness call this at request boundaries).
  virtual void pumpCompileQueue() {}

  /// Block until the background compiler has finished every submitted job,
  /// then publish/drop the results. Deterministic drains for tests,
  /// benchmarks, and engine teardown.
  virtual void waitCompileQueueIdle() {}
};

} // namespace tracejit

#endif // TRACEJIT_INTERP_TRACEHOOKS_H
