//===- natives.h - Built-in globals and the typed-native FFI ---------------===//
//
// The classic FFI: natives take boxed values through the interpreter API
// (paper §6.5). On top of that, the paper describes "a new FFI that allows
// C functions to be annotated with their argument types so that the tracer
// can call them directly, without unnecessary argument conversions" -- the
// TraceableNative registry below is that annotation table: the recorder
// looks natives up here and, when a typed entry exists, emits a direct
// call on unboxed doubles instead of aborting the trace.
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_INTERP_NATIVES_H
#define TRACEJIT_INTERP_NATIVES_H

#include <cstdint>

#include "vm/object.h"

namespace tracejit {

class Interpreter;
struct VMContext;

/// Install print, Math, String, Array, and the test hooks into the global
/// table of \p I's context.
void installStandardGlobals(Interpreter &I);

/// Typed signature kinds for traceable natives (all double-valued; JS
/// numbers are doubles).
enum class TraceableSig : uint8_t {
  D_D,   ///< double f(double)
  D_DD,  ///< double f(double, double)
  D_CTX, ///< double f(VMContext*)   (Math.random)
};

struct TraceableNative {
  const char *Name;
  void *RawFn; ///< The unboxed entry point the trace calls directly.
  TraceableSig Sig;
};

/// Typed-FFI annotation lookup: the traceable entry for a boxed native, or
/// nullptr (in which case the recorder aborts the trace, §3.1 "Aborts").
const TraceableNative *lookupTraceableNative(NativeFn Fn);

/// Deterministic xorshift64* random in [0,1); exposed for tests.
double nextRandom(VMContext *Ctx);

} // namespace tracejit

#endif // TRACEJIT_INTERP_NATIVES_H
