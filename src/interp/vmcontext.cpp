//===- vmcontext.cpp - Interrupt servicing ----------------------------------===//
//
// The safe-point half of the resource-governance layer: turn pending
// interrupt-request bits into a collection (benign) or a structured script
// termination (deadline / host interrupt / heap quota). Lives out of line
// because termination must reach through the TraceMonitor to abort an
// active recording.
//
//===----------------------------------------------------------------------===//

#include "interp/vmcontext.h"

#include "interp/tracehooks.h"

namespace tracejit {

void VMContext::serviceInterrupts() {
  uint32_t Bits = PreemptFlag.exchange(0, std::memory_order_acquire);
  if (!Bits)
    return;

  // A collection first: it serves explicit GC requests and gives an
  // over-quota heap the chance to get back under before we call it OOM.
  bool OverQuota = overHeapQuota();
  if ((Bits & InterruptGC) || TheHeap.wantsGC() || OverQuota) {
    TheHeap.collect();
    ++Stats.GCs;
    if (EventListener) {
      JitEvent E;
      E.Kind = JitEventKind::GC;
      E.Arg0 = Stats.GCs;
      emitEvent(E);
    }
    OverQuota = overHeapQuota();
  }

  ErrorKind Kind = ErrorKind::None;
  std::string Msg;
  if ((Bits & InterruptHeapQuota) || OverQuota) {
    Kind = ErrorKind::OutOfMemory;
    Msg = "heap quota exceeded (" + std::to_string(TheHeap.bytesAllocated()) +
          " bytes live, quota " + std::to_string(Opts.MaxHeapBytes) + ")";
    ++Stats.HeapQuotaHits;
  } else if (Bits & InterruptDeadline) {
    Kind = ErrorKind::Timeout;
    Msg = "script exceeded its deadline";
    ++Stats.Timeouts;
  } else if (Bits & InterruptHost) {
    Kind = ErrorKind::Interrupted;
    Msg = "script interrupted by host";
    ++Stats.HostInterrupts;
  }
  if (Kind == ErrorKind::None)
    return;

  // Terminating: a recording in flight is about a loop that did nothing
  // wrong, so discard it without feeding the blacklist.
  if (Monitor)
    Monitor->abortForInterrupt();
  raiseError(Kind, Msg);
  if (EventListener) {
    JitEvent E;
    E.Kind = JitEventKind::ScriptInterrupted;
    E.Arg0 = Bits;
    E.Arg1 = (uint64_t)Kind;
    emitEvent(E);
  }
}

} // namespace tracejit
