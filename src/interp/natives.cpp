//===- natives.cpp - Built-in globals, string/array methods, typed FFI -----===//

#include "interp/natives.h"

#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "interp/interpreter.h"
#include "interp/vmcontext.h"

namespace tracejit {

// --- Raw (unboxed) math entry points for the typed FFI -----------------------
// Plain functions with C-compatible signatures: the trace compiler calls
// these directly on unboxed doubles.

extern "C" {
double tj_math_abs(double X) { return std::fabs(X); }
double tj_math_floor(double X) { return std::floor(X); }
double tj_math_ceil(double X) { return std::ceil(X); }
double tj_math_sqrt(double X) { return std::sqrt(X); }
double tj_math_sin(double X) { return std::sin(X); }
double tj_math_cos(double X) { return std::cos(X); }
double tj_math_tan(double X) { return std::tan(X); }
double tj_math_exp(double X) { return std::exp(X); }
double tj_math_log(double X) { return std::log(X); }
double tj_math_round(double X) { return std::floor(X + 0.5); }
double tj_math_pow(double X, double Y) { return std::pow(X, Y); }
double tj_math_atan2(double Y, double X) { return std::atan2(Y, X); }
double tj_math_min(double X, double Y) {
  if (std::isnan(X) || std::isnan(Y))
    return std::nan("");
  return X < Y ? X : Y;
}
double tj_math_max(double X, double Y) {
  if (std::isnan(X) || std::isnan(Y))
    return std::nan("");
  return X > Y ? X : Y;
}
double tj_math_random(VMContext *Ctx) { return nextRandom(Ctx); }
}

double nextRandom(VMContext *Ctx) {
  uint64_t X = Ctx->RandomState;
  X ^= X >> 12;
  X ^= X << 25;
  X ^= X >> 27;
  Ctx->RandomState = X;
  return (double)((X * 0x2545F4914F6CDD1DULL) >> 11) /
         (double)(1ULL << 53);
}

// --- Boxed natives ---------------------------------------------------------------

static double argNum(const Value *Args, uint32_t N, uint32_t I) {
  return I < N ? Interpreter::toNumber(Args[I]) : std::nan("");
}

static Value nativePrint(Interpreter &I, Value, const Value *Args,
                         uint32_t N) {
  std::string Line;
  for (uint32_t K = 0; K < N; ++K) {
    if (K)
      Line += " ";
    Line += valueToString(Args[K]);
  }
  Line += "\n";
  VMContext &C = I.context();
  if (C.PrintHook)
    C.PrintHook(Line);
  else
    fputs(Line.c_str(), stdout);
  return Value::undefined();
}

static Value nativeArrayCtor(Interpreter &I, Value, const Value *Args,
                             uint32_t N) {
  VMContext &C = I.context();
  if (N == 1 && Args[0].isNumber()) {
    double D = Args[0].numberValue();
    if (D >= 0 && D == std::floor(D) && D < 1e8)
      return Value::makeObject(
          Object::createArray(C.TheHeap, C.Shapes, (uint32_t)D));
  }
  Object *A = Object::createArray(C.TheHeap, C.Shapes, N);
  for (uint32_t K = 0; K < N; ++K)
    A->setElement(C.TheHeap, K, Args[K]);
  return Value::makeObject(A);
}

static Value nativeFromCharCode(Interpreter &I, Value, const Value *Args,
                                uint32_t N) {
  std::string S;
  for (uint32_t K = 0; K < N; ++K)
    S.push_back((char)(Interpreter::valueToInt32(Args[K]) & 0xff));
  return Value::makeString(String::create(I.context().TheHeap, S));
}

static Value nativeGcNow(Interpreter &I, Value, const Value *, uint32_t) {
  I.context().TheHeap.collect();
  ++I.context().Stats.GCs;
  return Value::undefined();
}

#define BOXED_MATH_1(NAME, RAW)                                                \
  static Value NAME(Interpreter &I, Value, const Value *Args, uint32_t N) {   \
    return I.context().TheHeap.boxNumber(RAW(argNum(Args, N, 0)));            \
  }
#define BOXED_MATH_2(NAME, RAW)                                                \
  static Value NAME(Interpreter &I, Value, const Value *Args, uint32_t N) {   \
    return I.context().TheHeap.boxNumber(                                      \
        RAW(argNum(Args, N, 0), argNum(Args, N, 1)));                          \
  }

BOXED_MATH_1(nativeAbs, tj_math_abs)
BOXED_MATH_1(nativeFloor, tj_math_floor)
BOXED_MATH_1(nativeCeil, tj_math_ceil)
BOXED_MATH_1(nativeSqrt, tj_math_sqrt)
BOXED_MATH_1(nativeSin, tj_math_sin)
BOXED_MATH_1(nativeCos, tj_math_cos)
BOXED_MATH_1(nativeTan, tj_math_tan)
BOXED_MATH_1(nativeExp, tj_math_exp)
BOXED_MATH_1(nativeLog, tj_math_log)
BOXED_MATH_1(nativeRound, tj_math_round)
BOXED_MATH_2(nativePow, tj_math_pow)
BOXED_MATH_2(nativeAtan2, tj_math_atan2)
BOXED_MATH_2(nativeMin, tj_math_min)
BOXED_MATH_2(nativeMax, tj_math_max)

static Value nativeRandom(Interpreter &I, Value, const Value *, uint32_t) {
  return I.context().TheHeap.boxDouble(nextRandom(&I.context()));
}

// --- Typed-FFI registry -------------------------------------------------------

namespace {
struct RegistryEntry {
  NativeFn Boxed;
  TraceableNative Info;
};
} // namespace

static const RegistryEntry Registry[] = {
    {nativeAbs, {"Math.abs", (void *)tj_math_abs, TraceableSig::D_D}},
    {nativeFloor, {"Math.floor", (void *)tj_math_floor, TraceableSig::D_D}},
    {nativeCeil, {"Math.ceil", (void *)tj_math_ceil, TraceableSig::D_D}},
    {nativeSqrt, {"Math.sqrt", (void *)tj_math_sqrt, TraceableSig::D_D}},
    {nativeSin, {"Math.sin", (void *)tj_math_sin, TraceableSig::D_D}},
    {nativeCos, {"Math.cos", (void *)tj_math_cos, TraceableSig::D_D}},
    {nativeTan, {"Math.tan", (void *)tj_math_tan, TraceableSig::D_D}},
    {nativeExp, {"Math.exp", (void *)tj_math_exp, TraceableSig::D_D}},
    {nativeLog, {"Math.log", (void *)tj_math_log, TraceableSig::D_D}},
    {nativeRound, {"Math.round", (void *)tj_math_round, TraceableSig::D_D}},
    {nativePow, {"Math.pow", (void *)tj_math_pow, TraceableSig::D_DD}},
    {nativeAtan2, {"Math.atan2", (void *)tj_math_atan2, TraceableSig::D_DD}},
    {nativeMin, {"Math.min", (void *)tj_math_min, TraceableSig::D_DD}},
    {nativeMax, {"Math.max", (void *)tj_math_max, TraceableSig::D_DD}},
    {nativeRandom, {"Math.random", (void *)tj_math_random,
                    TraceableSig::D_CTX}},
};

const TraceableNative *lookupTraceableNative(NativeFn Fn) {
  for (const RegistryEntry &E : Registry)
    if (E.Boxed == Fn)
      return &E.Info;
  return nullptr;
}

// --- String / array method dispatch (CallProp fallback) -------------------------

Value Interpreter::callPropValue(Value Recv, String *Name, const Value *Args,
                                 uint32_t N) {
  VMContext &C = Ctx;
  if (Recv.isString()) {
    String *S = Recv.toString();
    std::string_view M = Name->view();
    if (M == "charCodeAt") {
      int64_t I = (int64_t)argNum(Args, N, 0);
      if (I < 0 || I >= (int64_t)S->length())
        return C.TheHeap.boxDouble(std::nan(""));
      return Value::makeInt((uint8_t)S->charAt((uint32_t)I));
    }
    if (M == "charAt") {
      int64_t I = (int64_t)argNum(Args, N, 0);
      if (I < 0 || I >= (int64_t)S->length())
        return Value::makeString(String::create(C.TheHeap, ""));
      return Value::makeString(
          String::create(C.TheHeap, std::string_view(S->data() + I, 1)));
    }
    if (M == "indexOf") {
      if (N < 1 || !Args[0].isString())
        return Value::makeInt(-1);
      size_t From = N >= 2 ? (size_t)argNum(Args, N, 1) : 0;
      size_t Found = S->view().find(Args[0].toString()->view(), From);
      return Value::makeInt(Found == std::string_view::npos ? -1
                                                            : (int32_t)Found);
    }
    if (M == "substring") {
      int64_t A = (int64_t)argNum(Args, N, 0);
      int64_t B = N >= 2 ? (int64_t)argNum(Args, N, 1) : S->length();
      if (A < 0)
        A = 0;
      if (B > (int64_t)S->length())
        B = S->length();
      if (A > B)
        std::swap(A, B);
      return Value::makeString(
          String::create(C.TheHeap, S->view().substr(A, B - A)));
    }
    rtError("unknown string method");
    return Value::undefined();
  }

  if (Recv.isObject() && Recv.toObject()->isArray()) {
    Object *A = Recv.toObject();
    std::string_view M = Name->view();
    if (M == "push") {
      for (uint32_t K = 0; K < N; ++K)
        A->setElement(C.TheHeap, A->arrayLength(), Args[K]);
      return Value::makeInt((int32_t)A->arrayLength());
    }
    if (M == "join") {
      std::string Sep = N >= 1 ? valueToString(Args[0]) : ",";
      std::string Out;
      for (uint32_t K = 0; K < A->arrayLength(); ++K) {
        if (K)
          Out += Sep;
        Value E = A->getElement(K);
        if (!E.isUndefined() && !E.isNull())
          Out += valueToString(E);
      }
      return Value::makeString(String::create(C.TheHeap, Out));
    }
    rtError("unknown array method");
    return Value::undefined();
  }

  rtError("method call on unsupported receiver");
  return Value::undefined();
}

// --- Global installation -----------------------------------------------------------

static void defineNativeOn(VMContext &C, Object *Holder, const char *Name,
                           NativeFn Fn) {
  String *A = C.Atoms.intern(Name);
  Object *F = Object::createNativeFunction(C.TheHeap, C.Shapes, Fn, A);
  Holder->setProperty(C.Shapes, A, Value::makeObject(F));
}

static void defineGlobalNative(VMContext &C, const char *Name, NativeFn Fn) {
  String *A = C.Atoms.intern(Name);
  Object *F = Object::createNativeFunction(C.TheHeap, C.Shapes, Fn, A);
  C.Globals.Values[C.Globals.slotFor(A)] = Value::makeObject(F);
}

void installStandardGlobals(Interpreter &I) {
  VMContext &C = I.context();

  defineGlobalNative(C, "print", nativePrint);
  defineGlobalNative(C, "Array", nativeArrayCtor);
  defineGlobalNative(C, "gc", nativeGcNow);

  Object *MathObj = Object::create(C.TheHeap, C.Shapes);
  defineNativeOn(C, MathObj, "abs", nativeAbs);
  defineNativeOn(C, MathObj, "floor", nativeFloor);
  defineNativeOn(C, MathObj, "ceil", nativeCeil);
  defineNativeOn(C, MathObj, "sqrt", nativeSqrt);
  defineNativeOn(C, MathObj, "sin", nativeSin);
  defineNativeOn(C, MathObj, "cos", nativeCos);
  defineNativeOn(C, MathObj, "tan", nativeTan);
  defineNativeOn(C, MathObj, "exp", nativeExp);
  defineNativeOn(C, MathObj, "log", nativeLog);
  defineNativeOn(C, MathObj, "round", nativeRound);
  defineNativeOn(C, MathObj, "pow", nativePow);
  defineNativeOn(C, MathObj, "atan2", nativeAtan2);
  defineNativeOn(C, MathObj, "min", nativeMin);
  defineNativeOn(C, MathObj, "max", nativeMax);
  defineNativeOn(C, MathObj, "random", nativeRandom);
  MathObj->setProperty(C.Shapes, C.Atoms.intern("PI"),
                       C.TheHeap.boxDouble(M_PI));
  MathObj->setProperty(C.Shapes, C.Atoms.intern("E"),
                       C.TheHeap.boxDouble(M_E));
  C.Globals.Values[C.Globals.slotFor(C.Atoms.intern("Math"))] =
      Value::makeObject(MathObj);

  Object *StringObj = Object::create(C.TheHeap, C.Shapes);
  defineNativeOn(C, StringObj, "fromCharCode", nativeFromCharCode);
  C.Globals.Values[C.Globals.slotFor(C.Atoms.intern("String"))] =
      Value::makeObject(StringObj);
}

} // namespace tracejit
