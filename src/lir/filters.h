//===- filters.h - Forward LIR filter pipeline -------------------------------===//
//
// "We implemented the optimizations as pipelined filters so that they can
// be turned on and off independently, and yet all run in just two loop
// passes over the trace: one forward and one backward." (§5.1)
//
// Forward filters (this file) run as the recorder emits; they see each
// instruction before it reaches the buffer:
//   * ExprFilter -- constant folding, algebraic identities, and the
//     source-language-specific INT/DOUBLE narrowing (D2I(I2D(x)) => x).
//   * CseFilter -- common subexpression elimination over pure ops, loads
//     (invalidated by stores/calls), and redundant guards on
//     already-guarded conditions.
//
// Backward filters live in backward.h.
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_LIR_FILTERS_H
#define TRACEJIT_LIR_FILTERS_H

#include <unordered_map>
#include <unordered_set>

#include "lir/lir.h"

namespace tracejit {

/// Expression simplification: constant folding plus algebraic identities.
class ExprFilter : public LirWriter {
public:
  explicit ExprFilter(LirWriter *Out) : LirWriter(Out) {}

  LIns *ins1(LOp Op, LIns *A) override;
  LIns *ins2(LOp Op, LIns *A, LIns *B) override;
  LIns *insGuard(LOp Op, LIns *Cond, ExitDescriptor *Exit) override;
  LIns *insOvf(LOp Op, LIns *A, LIns *B, ExitDescriptor *Exit) override;
};

/// Common subexpression elimination. Pure expressions are hashed on
/// (op, operands, immediate); loads additionally participate until any
/// store or impure call invalidates them; duplicate guards on a condition
/// already guarded with the same polarity are dropped.
class CseFilter : public LirWriter {
public:
  explicit CseFilter(LirWriter *Out) : LirWriter(Out) {}

  LIns *ins1(LOp Op, LIns *A) override;
  LIns *ins2(LOp Op, LIns *A, LIns *B) override;
  LIns *insImmI(int32_t V) override;
  LIns *insImmQ(int64_t V) override;
  LIns *insImmD(double V) override;
  LIns *insLoad(LOp Op, LIns *Base, int32_t Disp) override;
  LIns *insStore(LOp Op, LIns *Val, LIns *Base, int32_t Disp) override;
  LIns *insCall(const CallInfo *CI, LIns **Args, uint32_t N) override;
  LIns *insGuard(LOp Op, LIns *Cond, ExitDescriptor *Exit) override;
  LIns *insTreeCall(Fragment *Inner, ExitDescriptor *Expected,
                    ExitDescriptor *MismatchExit) override;
  LIns *insLoop() override;

  uint64_t hits() const { return Hits; }

private:
  struct Key {
    uint32_t Op;
    uint64_t A;
    uint64_t B;
    int64_t Extra;
    bool operator==(const Key &O) const {
      return Op == O.Op && A == O.A && B == O.B && Extra == O.Extra;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const {
      uint64_t H = K.Op * 0x9E3779B97F4A7C15ULL;
      H ^= K.A + 0x9E3779B97F4A7C15ULL + (H << 6) + (H >> 2);
      H ^= K.B + 0x9E3779B97F4A7C15ULL + (H << 6) + (H >> 2);
      H ^= (uint64_t)K.Extra + (H << 6) + (H >> 2);
      return (size_t)H;
    }
  };

  LIns *lookupOrInsert(const Key &K, LIns *Candidate);
  void invalidateLoads();

  std::unordered_map<Key, LIns *, KeyHash> Exprs;
  std::unordered_map<Key, LIns *, KeyHash> Loads;
  /// (condition id, polarity) pairs already guarded.
  std::unordered_set<uint64_t> GuardedConds;
  uint64_t Hits = 0;
};

} // namespace tracejit

#endif // TRACEJIT_LIR_FILTERS_H
