//===- verify.cpp - LIR verifier and trace-invariant checker -----------------===//

#include "lir/verify.h"

#include <unordered_set>

#include "frontend/bytecode.h"
#include "jit/fragment.h"
#include "support/stats.h"

namespace tracejit {

std::string VerifyError::describe() const {
  std::string Out = verifyRuleName(Rule);
  if (InsId != ~0u) {
    Out += " @v";
    Out += std::to_string(InsId);
  }
  Out += ": ";
  Out += Message;
  return Out;
}

namespace {

const char *tyn(LTy T) {
  switch (T) {
  case LTy::Void:
    return "void";
  case LTy::I32:
    return "i32";
  case LTy::Q:
    return "q";
  case LTy::D:
    return "d";
  }
  return "?";
}

/// A rule violation found by one of the shared checkers; empty = ok.
struct RuleHit {
  VerifyRule Rule = VerifyRule::None;
  std::string Msg;
  explicit operator bool() const { return Rule != VerifyRule::None; }
};

RuleHit wantOperand(LOp Op, const LIns *O, LTy Want, const char *Which) {
  if (!O)
    return {VerifyRule::MissingOperand,
            std::string("missing ") + Which + " operand of " + lopName(Op)};
  if (O->Ty != Want)
    return {VerifyRule::OperandType, std::string(Which) + " operand of " +
                                         lopName(Op) + " is " + tyn(O->Ty) +
                                         ", want " + tyn(Want)};
  return {};
}

RuleHit wantOperands(LOp Op, const LIns *A, LTy WantA, const LIns *B,
                     LTy WantB) {
  if (RuleHit H = wantOperand(Op, A, WantA, "first"))
    return H;
  return wantOperand(Op, B, WantB, "second");
}

/// Operand typing rules per opcode (the I/Q/D domains of §3.1; same table
/// the legacy typecheckBody used, now shared by both verifier entry
/// points). For stores, A is the value and B the base, matching both the
/// LIns layout and the insStore argument order.
RuleHit checkOperandTypes(LOp Op, const LIns *A, const LIns *B) {
  switch (Op) {
  case LOp::AddI:
  case LOp::SubI:
  case LOp::MulI:
  case LOp::AndI:
  case LOp::OrI:
  case LOp::XorI:
  case LOp::ShlI:
  case LOp::ShrI:
  case LOp::UshrI:
  case LOp::AddOvI:
  case LOp::SubOvI:
  case LOp::MulOvI:
  case LOp::EqI:
  case LOp::NeI:
  case LOp::LtI:
  case LOp::LeI:
  case LOp::GtI:
  case LOp::GeI:
  case LOp::LtUI:
    return wantOperands(Op, A, LTy::I32, B, LTy::I32);
  case LOp::AddD:
  case LOp::SubD:
  case LOp::MulD:
  case LOp::DivD:
  case LOp::EqD:
  case LOp::NeD:
  case LOp::LtD:
  case LOp::LeD:
  case LOp::GtD:
  case LOp::GeD:
    return wantOperands(Op, A, LTy::D, B, LTy::D);
  case LOp::NegD:
  case LOp::D2I:
    return wantOperand(Op, A, LTy::D, "first");
  case LOp::I2D:
  case LOp::UI2D:
  case LOp::UI2Q:
    return wantOperand(Op, A, LTy::I32, "first");
  case LOp::Q2I:
    return wantOperand(Op, A, LTy::Q, "first");
  case LOp::AddQ:
  case LOp::AndQ:
  case LOp::OrQ:
  case LOp::EqQ:
    return wantOperands(Op, A, LTy::Q, B, LTy::Q);
  case LOp::ShlQ:
  case LOp::ShrQ:
  case LOp::SarQ:
    if (RuleHit H = wantOperands(Op, A, LTy::Q, B, LTy::I32))
      return H;
    if (B->Op != LOp::ImmI)
      return {VerifyRule::ShiftCountNotImm,
              std::string(lopName(Op)) + " count must be an immediate"};
    return {};
  case LOp::LdI:
  case LOp::LdQ:
  case LOp::LdD:
  case LOp::LdUB:
    return wantOperand(Op, A, LTy::Q, "base");
  case LOp::StI:
    return wantOperands(Op, A, LTy::I32, B, LTy::Q);
  case LOp::StQ:
    return wantOperands(Op, A, LTy::Q, B, LTy::Q);
  case LOp::StD:
    return wantOperands(Op, A, LTy::D, B, LTy::Q);
  case LOp::GuardT:
  case LOp::GuardF:
    return wantOperand(Op, A, LTy::I32, "condition");
  default:
    return {};
  }
}

/// TAR base+disp addressing: slots are 8 bytes and indexed from 0, so a
/// load/store whose base is the TAR parameter must use a non-negative,
/// 8-aligned offset; \p SlotLimit (when nonzero: the fragment's
/// RequiredTarSlots) bounds the slot domain.
RuleHit checkTarDisp(LOp Op, const LIns *Base, int32_t Disp,
                     uint32_t SlotLimit) {
  if (!Base || Base->Op != LOp::ParamTar)
    return {};
  if (Disp < 0 || (Disp % 8) != 0)
    return {VerifyRule::TarAddressing, std::string(lopName(Op)) +
                                           " TAR offset " +
                                           std::to_string(Disp) +
                                           " is negative or unaligned"};
  if (SlotLimit && (uint32_t)(Disp / 8) >= SlotLimit)
    return {VerifyRule::TarAddressing,
            std::string(lopName(Op)) + " TAR slot " +
                std::to_string(Disp / 8) +
                " is outside the fragment's slot domain (" +
                std::to_string(SlotLimit) + " slots)"};
  return {};
}

RuleHit checkCall(const CallInfo *CI, LIns *const *Args, uint32_t N) {
  if (!CI)
    return {VerifyRule::CallSignature, "call without a CallInfo"};
  if (N != CI->NArgs || N > 6)
    return {VerifyRule::CallSignature,
            std::string("call to ") + CI->Name + " passes " +
                std::to_string(N) + " args, signature has " +
                std::to_string(CI->NArgs)};
  for (uint32_t K = 0; K < N; ++K) {
    const LIns *A = Args ? Args[K] : nullptr;
    if (!A)
      return {VerifyRule::MissingOperand, std::string("missing arg ") +
                                              std::to_string(K) +
                                              " of call to " + CI->Name};
    if (A->Ty != CI->Args[K])
      return {VerifyRule::CallSignature,
              std::string("arg ") + std::to_string(K) + " of call to " +
                  CI->Name + " is " + tyn(A->Ty) + ", want " +
                  tyn(CI->Args[K])};
  }
  return {};
}

/// Exit descriptors restore interpreter state, so their type map must
/// cover exactly the slot domain [0, NumGlobals + Sp) (§2, §4).
RuleHit checkExitMap(LOp Op, const ExitDescriptor *E, uint32_t NumGlobals) {
  if (!E)
    return {VerifyRule::GuardWithoutExit,
            std::string(lopName(Op)) + " without an exit descriptor"};
  if (E->Types.NumGlobals != NumGlobals ||
      E->Types.size() != NumGlobals + E->Sp)
    return {VerifyRule::ExitTypeMapLength,
            std::string("exit") + std::to_string(E->Id) + " type map covers " +
                std::to_string(E->Types.size()) + " slots (globals " +
                std::to_string(E->Types.NumGlobals) + "), want " +
                std::to_string(NumGlobals + E->Sp) + " (globals " +
                std::to_string(NumGlobals) + " + sp " + std::to_string(E->Sp) +
                ")"};
  return {};
}

/// Frame-chain sanity at an exit: bases grow bottom-to-top, the top frame
/// sits at or below the exit Sp, and the resume pc lands inside the top
/// frame's script. Hand-built fragments without frame chains skip this.
RuleHit checkExitFrames(const ExitDescriptor *E) {
  if (!E || E->Frames.empty())
    return {};
  uint32_t PrevBase = 0;
  for (const FrameEntry &Fr : E->Frames) {
    if (Fr.Base < PrevBase)
      return {VerifyRule::ExitFrameBounds,
              std::string("exit") + std::to_string(E->Id) +
                  " frame bases are not monotonic"};
    PrevBase = Fr.Base;
  }
  if (E->Frames.back().Base > E->Sp)
    return {VerifyRule::ExitFrameBounds,
            std::string("exit") + std::to_string(E->Id) + " top frame base " +
                std::to_string(E->Frames.back().Base) + " is above sp " +
                std::to_string(E->Sp)};
  if (!E->Frames.back().Script)
    return {VerifyRule::ExitFrameBounds, std::string("exit") +
                                             std::to_string(E->Id) +
                                             " top frame has no script"};
  if (E->Pc >= E->Frames.back().Script->Code.size())
    return {VerifyRule::ExitFrameBounds,
            std::string("exit") + std::to_string(E->Id) + " resume pc " +
                std::to_string(E->Pc) + " is outside the top frame's script"};
  return {};
}

/// Tree-call stitch point (§4.1): the target must be a compiled root tree,
/// and the expected return exit must belong to a tree anchored at the same
/// loop (it may be a branch fragment's exit, or a type-unstable peer's
/// when the inner tree jumped across peers before exiting).
RuleHit checkTreeCallLinkage(const Fragment *Inner,
                             const ExitDescriptor *Expected) {
  if (!Inner)
    return {VerifyRule::TransferTarget, "treecall without a target tree"};
  if (Inner->Root != Inner)
    return {VerifyRule::TransferTarget,
            "treecall target frag" + std::to_string(Inner->Id) +
                " is not a root fragment"};
  if (!Expected)
    return {VerifyRule::TransferTarget, "treecall without an expected exit"};
  if (!Expected->Parent || !Expected->Parent->Root)
    return {VerifyRule::TransferTarget,
            "treecall expected exit" + std::to_string(Expected->Id) +
                " is orphaned (no parent fragment)"};
  if (Expected->Parent->Root->Loop != Inner->Loop)
    return {VerifyRule::TransferTarget,
            "treecall expected exit" + std::to_string(Expected->Id) +
                " belongs to a tree of a different loop"};
  return {};
}

/// The call-site type map (the mismatch exit snapshot, taken right after
/// coerceTo) must agree with the inner tree's entry map: "identical type
/// maps yield identical activation record layouts" (§6.2), which is what
/// lets the outer trace pass its own TAR to the inner tree.
RuleHit checkTreeCallTypes(const Fragment *Inner,
                           const ExitDescriptor *Mismatch) {
  if (!Inner || !Mismatch)
    return {}; // linkage/exit rules already reported
  if (Mismatch->Types != Inner->EntryTypes)
    return {VerifyRule::TreeCallTypeMaps,
            "call-site map " + Mismatch->Types.describe() +
                " does not match inner entry map " +
                Inner->EntryTypes.describe()};
  return {};
}

} // namespace

// --- Streaming entry point ------------------------------------------------------

VerifyWriter::VerifyWriter(LirWriter *Downstream, LirBuffer &B, uint32_t NG,
                           VMStats *S)
    : LirWriter(Downstream), Buf(B), NumGlobals(NG), Stats(S) {}

void VerifyWriter::fail(VerifyRule R, const std::string &Msg, const LIns *At) {
  if (Err)
    return; // keep the first violation; the rest is fallout
  Err.Rule = R;
  Err.InsId = At ? At->Id : Buf.size();
  Err.Message = Msg;
  if (At) {
    Err.Message += ": ";
    Err.Message += formatIns(At);
  }
  if (Stats) {
    ++Stats->VerifyFailures;
    ++Stats->VerifyFailuresByRule[(size_t)R];
  }
}

void VerifyWriter::countIns() {
  if (Stats)
    ++Stats->LirInsVerified;
}

bool VerifyWriter::checkDefined(LOp Op, const LIns *O, const char *Which) {
  if (!O)
    return true; // presence is the type rules' business
  const std::vector<LIns *> &Body = Buf.instructions();
  if (O->Id < Body.size() && Body[O->Id] == O)
    return true;
  fail(VerifyRule::UseBeforeDef, std::string(Which) + " operand of " +
                                     lopName(Op) +
                                     " is not defined in this trace",
       O);
  return false;
}

bool VerifyWriter::checkOperands(LOp Op, LIns *A, LIns *B) {
  bool Ok = checkDefined(Op, A, "first");
  Ok &= checkDefined(Op, B, "second");
  if (RuleHit H = checkOperandTypes(Op, A, B)) {
    fail(H.Rule, H.Msg);
    Ok = false;
  }
  return Ok;
}

bool VerifyWriter::checkExit(LOp Op, const ExitDescriptor *Exit) {
  if (RuleHit H = checkExitMap(Op, Exit, NumGlobals)) {
    fail(H.Rule, H.Msg);
    return false;
  }
  return true;
}

LIns *VerifyWriter::ins0(LOp Op) {
  countIns();
  return Out->ins0(Op);
}

LIns *VerifyWriter::ins1(LOp Op, LIns *A) {
  countIns();
  checkOperands(Op, A, nullptr);
  return Out->ins1(Op, A);
}

LIns *VerifyWriter::ins2(LOp Op, LIns *A, LIns *B) {
  countIns();
  checkOperands(Op, A, B);
  return Out->ins2(Op, A, B);
}

LIns *VerifyWriter::insLoad(LOp Op, LIns *Base, int32_t Disp) {
  countIns();
  checkOperands(Op, Base, nullptr);
  // The streaming pass cannot bound the slot yet (the recorder grows the
  // domain as it imports); verifyTrace applies RequiredTarSlots.
  if (RuleHit H = checkTarDisp(Op, Base, Disp, 0))
    fail(H.Rule, H.Msg);
  return Out->insLoad(Op, Base, Disp);
}

LIns *VerifyWriter::insStore(LOp Op, LIns *Val, LIns *Base, int32_t Disp) {
  countIns();
  checkOperands(Op, Val, Base);
  if (RuleHit H = checkTarDisp(Op, Base, Disp, 0))
    fail(H.Rule, H.Msg);
  return Out->insStore(Op, Val, Base, Disp);
}

LIns *VerifyWriter::insCall(const CallInfo *CI, LIns **Args, uint32_t N) {
  countIns();
  for (uint32_t K = 0; K < N && Args; ++K)
    checkDefined(LOp::Call, Args[K], "arg");
  if (RuleHit H = checkCall(CI, Args, N))
    fail(H.Rule, H.Msg);
  return Out->insCall(CI, Args, N);
}

LIns *VerifyWriter::insGuard(LOp Op, LIns *Cond, ExitDescriptor *Exit) {
  countIns();
  checkOperands(Op, Cond, nullptr);
  checkExit(Op, Exit);
  return Out->insGuard(Op, Cond, Exit);
}

LIns *VerifyWriter::insOvf(LOp Op, LIns *A, LIns *B, ExitDescriptor *Exit) {
  countIns();
  checkOperands(Op, A, B);
  checkExit(Op, Exit);
  return Out->insOvf(Op, A, B, Exit);
}

LIns *VerifyWriter::insExit(ExitDescriptor *Exit) {
  countIns();
  checkExit(LOp::Exit, Exit);
  return Out->insExit(Exit);
}

LIns *VerifyWriter::insTreeCall(Fragment *Inner, ExitDescriptor *Expected,
                                ExitDescriptor *MismatchExit) {
  countIns();
  checkExit(LOp::TreeCall, MismatchExit);
  if (RuleHit H = checkTreeCallLinkage(Inner, Expected))
    fail(H.Rule, H.Msg);
  else if (RuleHit H2 = checkTreeCallTypes(Inner, MismatchExit))
    fail(H2.Rule, H2.Msg);
  return Out->insTreeCall(Inner, Expected, MismatchExit);
}

LIns *VerifyWriter::insJmpFrag(Fragment *Target) {
  countIns();
  if (!Target || Target->Root != Target)
    fail(VerifyRule::TransferTarget,
         "jmpfrag target is missing or not a root fragment");
  return Out->insJmpFrag(Target);
}

// --- Whole-trace entry point ----------------------------------------------------

bool verifyTrace(const Fragment &F, uint32_t NumGlobals, VerifyError &Err,
                 VMStats *Stats) {
  Err = VerifyError();
  if (Stats) {
    ++Stats->TracesVerified;
    Stats->LirInsVerified += F.Body.size();
  }

  auto Fail = [&](VerifyRule R, const LIns *I, std::string Msg) {
    Err.Rule = R;
    Err.InsId = I ? I->Id : ~0u;
    Err.Message = std::move(Msg);
    if (I) {
      Err.Message += ": ";
      Err.Message += formatIns(I);
    }
    if (Stats) {
      ++Stats->VerifyFailures;
      ++Stats->VerifyFailuresByRule[(size_t)R];
    }
    return false;
  };

  if (F.Body.empty())
    return Fail(VerifyRule::Terminator, nullptr,
                "empty trace body (no terminator)");

  // Prologue region shape (lir/opt.h, Hoist): Body[0, PrologueEnd) runs
  // once per tree entry, so it must sit strictly inside a Loop-terminated
  // body, execute no side effects (a prologue-guard failure claims "we
  // never entered"), and fail only through the entry-state Deopt exit.
  if (F.PrologueEnd) {
    if (F.PrologueEnd >= F.Body.size() || F.Body.back() == nullptr ||
        F.Body.back()->Op != LOp::Loop)
      return Fail(VerifyRule::PrologueShape, nullptr,
                  "prologue end " + std::to_string(F.PrologueEnd) +
                      " out of range, or trace does not end in Loop");
    for (uint32_t P = 0; P < F.PrologueEnd; ++P) {
      const LIns *I = F.Body[P];
      if (!I)
        break; // the main loop reports null instructions
      if (I->isStore() || I->Op == LOp::TreeCall || I->Op == LOp::Exit ||
          I->Op == LOp::JmpFrag ||
          (I->Op == LOp::Call && (!I->CI || !I->CI->Pure)))
        return Fail(VerifyRule::PrologueEffect, I,
                    "side effect inside the prologue region");
      if (I->isGuard() &&
          (!F.EntryExit || I->Exit != F.EntryExit ||
           F.EntryExit->Kind != ExitKind::Deopt))
        return Fail(
            VerifyRule::PrologueExit, I,
            "prologue guard does not exit through the entry-state Deopt exit");
    }
  }

  // Membership first: distinguishes "defined later" (an ordering bug) from
  // "not in the body at all" (a value the backward filters removed while a
  // survivor still uses it).
  std::unordered_set<const LIns *> InBody(F.Body.begin(), F.Body.end());
  std::unordered_set<const LIns *> Defined;
  Defined.reserve(F.Body.size());

  for (size_t Idx = 0; Idx < F.Body.size(); ++Idx) {
    const LIns *I = F.Body[Idx];
    if (!I)
      return Fail(VerifyRule::MissingOperand, nullptr,
                  "null instruction at index " + std::to_string(Idx));

    // A trace is one straight line: exactly one terminator, and it is the
    // last instruction ("the VM simply ends the trace with an exit", §3.2).
    bool IsTerm =
        I->Op == LOp::Loop || I->Op == LOp::Exit || I->Op == LOp::JmpFrag;
    bool IsLast = Idx + 1 == F.Body.size();
    if (IsTerm && !IsLast)
      return Fail(VerifyRule::Terminator, I,
                  "terminator before the end of the trace");
    if (IsLast && !IsTerm)
      return Fail(VerifyRule::Terminator, I,
                  "trace does not end in a loop/exit/jmpfrag terminator");

    // Defined-before-use over the filtered body (SSA dominance is linear
    // order in a trace, §3.1).
    auto CheckUse = [&](const LIns *O, const char *Which) {
      if (!O)
        return true;
      if (!InBody.count(O)) {
        Fail(VerifyRule::DanglingOperand, I,
             std::string(Which) + " operand v" + std::to_string(O->Id) +
                 " is not in the trace body (removed by DCE?)");
        return false;
      }
      if (!Defined.count(O)) {
        Fail(VerifyRule::UseBeforeDef, I,
             std::string(Which) + " operand v" + std::to_string(O->Id) +
                 " is used before it is defined");
        return false;
      }
      return true;
    };
    if (!CheckUse(I->A, "first") || !CheckUse(I->B, "second"))
      return false;
    for (uint32_t K = 0; K < I->NCallArgs; ++K)
      if (!CheckUse(I->CallArgs ? I->CallArgs[K] : nullptr, "call"))
        return false;

    if (RuleHit H = checkOperandTypes(I->Op, I->A, I->B))
      return Fail(H.Rule, I, H.Msg);

    LTy WantTy =
        I->Op == LOp::Call ? (I->CI ? I->CI->Ret : LTy::Void) : resultType(I->Op);
    if (I->Ty != WantTy)
      return Fail(VerifyRule::ResultType, I,
                  std::string("result typed ") + tyn(I->Ty) + ", opcode yields " +
                      tyn(WantTy));

    if (I->Op == LOp::Call)
      if (RuleHit H = checkCall(I->CI, I->CallArgs, I->NCallArgs))
        return Fail(H.Rule, I, H.Msg);

    if (I->isLoad() || I->isStore()) {
      const LIns *Base = I->isLoad() ? I->A : I->B;
      if (RuleHit H = checkTarDisp(I->Op, Base, I->Disp, F.RequiredTarSlots))
        return Fail(H.Rule, I, H.Msg);
    }

    if (I->isGuard() || I->Op == LOp::Exit) {
      if (RuleHit H = checkExitMap(I->Op, I->Exit, NumGlobals))
        return Fail(H.Rule, I, H.Msg);
      if (RuleHit H = checkExitFrames(I->Exit))
        return Fail(H.Rule, I, H.Msg);
    }

    if (I->Op == LOp::TreeCall) {
      if (RuleHit H = checkTreeCallLinkage(I->Target, I->ExpectedExit))
        return Fail(H.Rule, I, H.Msg);
      if (RuleHit H = checkTreeCallTypes(I->Target, I->Exit))
        return Fail(H.Rule, I, H.Msg);
    }
    if (I->Op == LOp::JmpFrag)
      if (!I->Target || I->Target->Root != I->Target)
        return Fail(VerifyRule::TransferTarget, I,
                    "jmpfrag target is missing or not a root fragment");

    Defined.insert(I);
  }
  return true;
}

// --- Whole-method-body entry point ----------------------------------------------

bool verifyMethodBody(const Fragment &F, uint32_t NumGlobals, VerifyError &Err,
                      VMStats *Stats) {
  Err = VerifyError();
  if (Stats) {
    ++Stats->TracesVerified;
    Stats->LirInsVerified += F.Body.size();
  }

  auto Fail = [&](VerifyRule R, const LIns *I, std::string Msg) {
    Err.Rule = R;
    Err.InsId = I ? I->Id : ~0u;
    Err.Message = std::move(Msg);
    if (I) {
      Err.Message += ": ";
      Err.Message += formatIns(I);
    }
    if (Stats) {
      ++Stats->VerifyFailures;
      ++Stats->VerifyFailuresByRule[(size_t)R];
    }
    return false;
  };

  if (F.Body.empty())
    return Fail(VerifyRule::Terminator, nullptr,
                "empty method body (no terminator)");
  if (F.PrologueEnd != 0 || F.EntryExit != nullptr)
    return Fail(VerifyRule::PrologueShape, nullptr,
                "method bodies must not carry a -O2 prologue or entry exit");

  std::unordered_set<const LIns *> InBody(F.Body.begin(), F.Body.end());
  std::unordered_set<const LIns *> Defined;
  Defined.reserve(F.Body.size());

  auto CheckLabel = [&](const LIns *I, const LIns *L) {
    if (!L || L->Op != LOp::Label)
      return Fail(VerifyRule::TransferTarget, I,
                  "branch target is not a label");
    if (!InBody.count(L))
      return Fail(VerifyRule::TransferTarget, I,
                  "branch target label is not in the body");
    if (L->Imm.ImmI32 < 0 || (size_t)L->Imm.ImmI32 >= F.Body.size() ||
        F.Body[(size_t)L->Imm.ImmI32] != L)
      return Fail(VerifyRule::TransferTarget, I,
                  "branch target label is unbound or mis-indexed");
    return true;
  };

  for (size_t Idx = 0; Idx < F.Body.size(); ++Idx) {
    const LIns *I = F.Body[Idx];
    if (!I)
      return Fail(VerifyRule::MissingOperand, nullptr,
                  "null instruction at index " + std::to_string(Idx));

    // Trace-only transfers never belong in a method body: there is no tree
    // to close, call, or stitch into.
    if (I->Op == LOp::Loop || I->Op == LOp::JmpFrag || I->Op == LOp::TreeCall)
      return Fail(VerifyRule::TransferTarget, I,
                  "trace-only transfer inside a method body");

    // Def-before-use in linear order (the builder keeps all cross-branch
    // state in the TAR); label operands are control-flow markers and may be
    // bound later in the body.
    auto CheckUse = [&](const LIns *O, const char *Which) {
      if (!O || O->Op == LOp::Label)
        return true;
      if (!InBody.count(O)) {
        Fail(VerifyRule::DanglingOperand, I,
             std::string(Which) + " operand v" + std::to_string(O->Id) +
                 " is not in the method body");
        return false;
      }
      if (!Defined.count(O)) {
        Fail(VerifyRule::UseBeforeDef, I,
             std::string(Which) + " operand v" + std::to_string(O->Id) +
                 " is used before it is defined");
        return false;
      }
      return true;
    };
    if (!CheckUse(I->A, "first") || !CheckUse(I->B, "second"))
      return false;
    for (uint32_t K = 0; K < I->NCallArgs; ++K)
      if (!CheckUse(I->CallArgs ? I->CallArgs[K] : nullptr, "call"))
        return false;

    switch (I->Op) {
    case LOp::Label:
      if (!CheckLabel(I, I))
        return false;
      if ((size_t)I->Imm.ImmI32 != Idx)
        return Fail(VerifyRule::TransferTarget, I,
                    "label index does not match its position");
      break;
    case LOp::Jmp:
      if (!CheckLabel(I, I->A))
        return false;
      break;
    case LOp::JmpIfT:
    case LOp::JmpIfF:
      if (!I->A || I->A->Ty != LTy::I32)
        return Fail(VerifyRule::OperandType, I,
                    "conditional jump condition is not i32");
      if (!CheckLabel(I, I->B))
        return false;
      break;
    default:
      if (RuleHit H = checkOperandTypes(I->Op, I->A, I->B))
        return Fail(H.Rule, I, H.Msg);
      break;
    }

    LTy WantTy = I->Op == LOp::Call ? (I->CI ? I->CI->Ret : LTy::Void)
                                    : resultType(I->Op);
    if (I->Ty != WantTy)
      return Fail(VerifyRule::ResultType, I,
                  std::string("result typed ") + tyn(I->Ty) +
                      ", opcode yields " + tyn(WantTy));

    if (I->Op == LOp::Call)
      if (RuleHit H = checkCall(I->CI, I->CallArgs, I->NCallArgs))
        return Fail(H.Rule, I, H.Msg);

    if (I->isLoad() || I->isStore()) {
      const LIns *Base = I->isLoad() ? I->A : I->B;
      if (RuleHit H = checkTarDisp(I->Op, Base, I->Disp, F.RequiredTarSlots))
        return Fail(H.Rule, I, H.Msg);
    }

    if (I->isGuard() || I->Op == LOp::Exit) {
      if (RuleHit H = checkExitMap(I->Op, I->Exit, NumGlobals))
        return Fail(H.Rule, I, H.Msg);
      if (RuleHit H = checkExitFrames(I->Exit))
        return Fail(H.Rule, I, H.Msg);
    }

    Defined.insert(I);
  }

  // Control must never fall off the end: the last instruction is an
  // unconditional transfer (back edge or exit).
  const LIns *Last = F.Body.back();
  if (Last->Op != LOp::Exit && Last->Op != LOp::Jmp)
    return Fail(VerifyRule::Terminator, Last,
                "method body does not end in an exit or jmp");
  return true;
}

} // namespace tracejit
