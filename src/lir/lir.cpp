//===- lir.cpp - LIR buffer and base writer ---------------------------------===//

#include "lir/lir.h"

#include <cassert>

namespace tracejit {

const char *lopName(LOp Op) {
  switch (Op) {
  case LOp::ParamTar:
    return "param.tar";
  case LOp::ImmI:
    return "immi";
  case LOp::ImmQ:
    return "immq";
  case LOp::ImmD:
    return "immd";
  case LOp::LdI:
    return "ldi";
  case LOp::LdQ:
    return "ldq";
  case LOp::LdD:
    return "ldd";
  case LOp::LdUB:
    return "ldub";
  case LOp::StI:
    return "sti";
  case LOp::StQ:
    return "stq";
  case LOp::StD:
    return "std";
  case LOp::AddI:
    return "addi";
  case LOp::SubI:
    return "subi";
  case LOp::MulI:
    return "muli";
  case LOp::AndI:
    return "andi";
  case LOp::OrI:
    return "ori";
  case LOp::XorI:
    return "xori";
  case LOp::ShlI:
    return "shli";
  case LOp::ShrI:
    return "shri";
  case LOp::UshrI:
    return "ushri";
  case LOp::AddOvI:
    return "addov";
  case LOp::SubOvI:
    return "subov";
  case LOp::MulOvI:
    return "mulov";
  case LOp::AddQ:
    return "addq";
  case LOp::AndQ:
    return "andq";
  case LOp::OrQ:
    return "orq";
  case LOp::ShlQ:
    return "shlq";
  case LOp::ShrQ:
    return "shrq";
  case LOp::SarQ:
    return "sarq";
  case LOp::Q2I:
    return "q2i";
  case LOp::UI2Q:
    return "ui2q";
  case LOp::EqI:
    return "eqi";
  case LOp::NeI:
    return "nei";
  case LOp::LtI:
    return "lti";
  case LOp::LeI:
    return "lei";
  case LOp::GtI:
    return "gti";
  case LOp::GeI:
    return "gei";
  case LOp::LtUI:
    return "ltui";
  case LOp::EqQ:
    return "eqq";
  case LOp::AddD:
    return "addd";
  case LOp::SubD:
    return "subd";
  case LOp::MulD:
    return "muld";
  case LOp::DivD:
    return "divd";
  case LOp::NegD:
    return "negd";
  case LOp::EqD:
    return "eqd";
  case LOp::NeD:
    return "ned";
  case LOp::LtD:
    return "ltd";
  case LOp::LeD:
    return "led";
  case LOp::GtD:
    return "gtd";
  case LOp::GeD:
    return "ged";
  case LOp::I2D:
    return "i2d";
  case LOp::UI2D:
    return "ui2d";
  case LOp::D2I:
    return "d2i";
  case LOp::Call:
    return "call";
  case LOp::GuardT:
    return "xf"; // exits if condition false (paper's xf mnemonic)
  case LOp::GuardF:
    return "xt";
  case LOp::Exit:
    return "exit";
  case LOp::TreeCall:
    return "treecall";
  case LOp::Loop:
    return "loop";
  case LOp::JmpFrag:
    return "jmpfrag";
  case LOp::Label:
    return "label";
  case LOp::Jmp:
    return "jmp";
  case LOp::JmpIfT:
    return "jt";
  case LOp::JmpIfF:
    return "jf";
  case LOp::NumOps:
    break;
  }
  return "?";
}

LTy resultType(LOp Op) {
  switch (Op) {
  case LOp::ParamTar:
  case LOp::ImmQ:
  case LOp::LdQ:
  case LOp::AddQ:
  case LOp::AndQ:
  case LOp::OrQ:
  case LOp::ShlQ:
  case LOp::ShrQ:
  case LOp::SarQ:
  case LOp::UI2Q:
    return LTy::Q;
  case LOp::ImmD:
  case LOp::LdD:
  case LOp::AddD:
  case LOp::SubD:
  case LOp::MulD:
  case LOp::DivD:
  case LOp::NegD:
  case LOp::I2D:
  case LOp::UI2D:
    return LTy::D;
  case LOp::StI:
  case LOp::StQ:
  case LOp::StD:
  case LOp::GuardT:
  case LOp::GuardF:
  case LOp::Exit:
  case LOp::Loop:
  case LOp::JmpFrag:
  case LOp::TreeCall:
  case LOp::Label:
  case LOp::Jmp:
  case LOp::JmpIfT:
  case LOp::JmpIfF:
    return LTy::Void;
  case LOp::Call:
    return LTy::Void; // actual type comes from CallInfo
  default:
    return LTy::I32;
  }
}

// --- Base writer: forward everything downstream ---------------------------------

LIns *LirWriter::ins0(LOp Op) { return Out->ins0(Op); }
LIns *LirWriter::ins1(LOp Op, LIns *A) { return Out->ins1(Op, A); }
LIns *LirWriter::ins2(LOp Op, LIns *A, LIns *B) { return Out->ins2(Op, A, B); }
LIns *LirWriter::insImmI(int32_t V) { return Out->insImmI(V); }
LIns *LirWriter::insImmQ(int64_t V) { return Out->insImmQ(V); }
LIns *LirWriter::insImmD(double V) { return Out->insImmD(V); }
LIns *LirWriter::insLoad(LOp Op, LIns *Base, int32_t Disp) {
  return Out->insLoad(Op, Base, Disp);
}
LIns *LirWriter::insStore(LOp Op, LIns *Val, LIns *Base, int32_t Disp) {
  return Out->insStore(Op, Val, Base, Disp);
}
LIns *LirWriter::insCall(const CallInfo *CI, LIns **Args, uint32_t N) {
  return Out->insCall(CI, Args, N);
}
LIns *LirWriter::insGuard(LOp Op, LIns *Cond, ExitDescriptor *Exit) {
  return Out->insGuard(Op, Cond, Exit);
}
LIns *LirWriter::insOvf(LOp Op, LIns *A, LIns *B, ExitDescriptor *Exit) {
  return Out->insOvf(Op, A, B, Exit);
}
LIns *LirWriter::insExit(ExitDescriptor *Exit) { return Out->insExit(Exit); }
LIns *LirWriter::insTreeCall(Fragment *Inner, ExitDescriptor *Expected,
                             ExitDescriptor *MismatchExit) {
  return Out->insTreeCall(Inner, Expected, MismatchExit);
}
LIns *LirWriter::insLoop() { return Out->insLoop(); }
LIns *LirWriter::insJmpFrag(Fragment *Target) {
  return Out->insJmpFrag(Target);
}
LIns *LirWriter::makeLabel() { return Out->makeLabel(); }
LIns *LirWriter::bindLabel(LIns *Label) { return Out->bindLabel(Label); }
LIns *LirWriter::insJmp(LIns *Label) { return Out->insJmp(Label); }
LIns *LirWriter::insJmpIf(LOp Op, LIns *Cond, LIns *Label) {
  return Out->insJmpIf(Op, Cond, Label);
}

// --- Buffer -----------------------------------------------------------------------

LIns *LirBuffer::ins0(LOp Op) {
  LIns *I = fresh();
  I->Op = Op;
  I->Ty = resultType(Op);
  return append(I);
}

LIns *LirBuffer::ins1(LOp Op, LIns *A) {
  LIns *I = fresh();
  I->Op = Op;
  I->Ty = resultType(Op);
  I->A = A;
  return append(I);
}

LIns *LirBuffer::ins2(LOp Op, LIns *A, LIns *B) {
  LIns *I = fresh();
  I->Op = Op;
  I->Ty = resultType(Op);
  I->A = A;
  I->B = B;
  return append(I);
}

LIns *LirBuffer::insImmI(int32_t V) {
  LIns *I = fresh();
  I->Op = LOp::ImmI;
  I->Ty = LTy::I32;
  I->Imm.ImmI32 = V;
  return append(I);
}

LIns *LirBuffer::insImmQ(int64_t V) {
  LIns *I = fresh();
  I->Op = LOp::ImmQ;
  I->Ty = LTy::Q;
  I->Imm.ImmQ64 = V;
  return append(I);
}

LIns *LirBuffer::insImmD(double V) {
  LIns *I = fresh();
  I->Op = LOp::ImmD;
  I->Ty = LTy::D;
  I->Imm.ImmDbl = V;
  return append(I);
}

LIns *LirBuffer::insLoad(LOp Op, LIns *Base, int32_t Disp) {
  LIns *I = fresh();
  I->Op = Op;
  I->Ty = resultType(Op);
  I->A = Base;
  I->Disp = Disp;
  return append(I);
}

LIns *LirBuffer::insStore(LOp Op, LIns *Val, LIns *Base, int32_t Disp) {
  LIns *I = fresh();
  I->Op = Op;
  I->Ty = LTy::Void;
  I->A = Val;
  I->B = Base;
  I->Disp = Disp;
  return append(I);
}

LIns *LirBuffer::insCall(const CallInfo *CI, LIns **Args, uint32_t N) {
  assert(N == CI->NArgs && "call arity mismatch");
  LIns *I = fresh();
  I->Op = LOp::Call;
  I->Ty = CI->Ret;
  I->CI = CI;
  I->NCallArgs = (uint8_t)N;
  I->CallArgs = TheArena.makeArray<LIns *>(N);
  for (uint32_t K = 0; K < N; ++K)
    I->CallArgs[K] = Args[K];
  return append(I);
}

LIns *LirBuffer::insGuard(LOp Op, LIns *Cond, ExitDescriptor *Exit) {
  LIns *I = fresh();
  I->Op = Op;
  I->Ty = LTy::Void;
  I->A = Cond;
  I->Exit = Exit;
  return append(I);
}

LIns *LirBuffer::insOvf(LOp Op, LIns *A, LIns *B, ExitDescriptor *Exit) {
  LIns *I = fresh();
  I->Op = Op;
  I->Ty = LTy::I32;
  I->A = A;
  I->B = B;
  I->Exit = Exit;
  return append(I);
}

LIns *LirBuffer::insExit(ExitDescriptor *Exit) {
  LIns *I = fresh();
  I->Op = LOp::Exit;
  I->Ty = LTy::Void;
  I->Exit = Exit;
  return append(I);
}

LIns *LirBuffer::insTreeCall(Fragment *Inner, ExitDescriptor *Expected,
                             ExitDescriptor *MismatchExit) {
  LIns *I = fresh();
  I->Op = LOp::TreeCall;
  I->Ty = LTy::Void;
  I->Target = Inner;
  I->ExpectedExit = Expected;
  I->Exit = MismatchExit;
  return append(I);
}

LIns *LirBuffer::insLoop() {
  LIns *I = fresh();
  I->Op = LOp::Loop;
  I->Ty = LTy::Void;
  return append(I);
}

LIns *LirBuffer::insJmpFrag(Fragment *Target) {
  LIns *I = fresh();
  I->Op = LOp::JmpFrag;
  I->Ty = LTy::Void;
  I->Target = Target;
  return append(I);
}

LIns *LirBuffer::makeLabel() {
  // Allocated but NOT appended: forward branches may reference the label
  // before bindLabel() places it in the body and stamps its index.
  LIns *I = fresh();
  I->Op = LOp::Label;
  I->Ty = LTy::Void;
  I->Imm.ImmI32 = -1; // unbound
  return I;
}

LIns *LirBuffer::bindLabel(LIns *Label) {
  assert(Label->Op == LOp::Label && Label->Imm.ImmI32 < 0 &&
         "label already bound");
  Label->Imm.ImmI32 = (int32_t)Body.size();
  return append(Label);
}

LIns *LirBuffer::insJmp(LIns *Label) {
  LIns *I = fresh();
  I->Op = LOp::Jmp;
  I->Ty = LTy::Void;
  I->A = Label;
  return append(I);
}

LIns *LirBuffer::insJmpIf(LOp Op, LIns *Cond, LIns *Label) {
  assert((Op == LOp::JmpIfT || Op == LOp::JmpIfF) && "not a conditional jump");
  LIns *I = fresh();
  I->Op = Op;
  I->Ty = LTy::Void;
  I->A = Cond;
  I->B = Label;
  return append(I);
}

} // namespace tracejit
