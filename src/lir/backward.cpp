//===- backward.cpp - Dead store and dead code elimination -------------------===//

#include "lir/backward.h"

#include <unordered_set>

#include "jit/fragment.h"

namespace tracejit {

static bool isTarBase(const LIns *Base) { return Base->Op == LOp::ParamTar; }

uint32_t eliminateDeadStores(std::vector<LIns *> &Body, uint32_t NumGlobals,
                             uint32_t EntrySlots) {
  // Determine the slot-domain size.
  uint32_t MaxSlot = 0;
  auto NoteSlot = [&](uint32_t S) {
    if (S > MaxSlot)
      MaxSlot = S;
  };
  std::vector<uint32_t> TarLoadSlots;
  // Slots the next iteration can observe without an explicit load: any
  // exit's writeback reads [0, NumGlobals + Sp) straight from the TAR, so
  // a store feeding an exit across the backedge is live even though no
  // load in the body mentions it.
  uint32_t BackedgeExitSlots = 0;
  for (LIns *I : Body) {
    if (I->isLoad() && isTarBase(I->A)) {
      uint32_t S = (uint32_t)(I->Disp / 8);
      NoteSlot(S + 1);
      TarLoadSlots.push_back(S);
    } else if (I->isStore() && isTarBase(I->B)) {
      NoteSlot((uint32_t)(I->Disp / 8) + 1);
    } else if (I->Exit) {
      NoteSlot(NumGlobals + I->Exit->Sp);
      if (NumGlobals + I->Exit->Sp > BackedgeExitSlots)
        BackedgeExitSlots = NumGlobals + I->Exit->Sp;
    } else if (I->Op == LOp::JmpFrag || I->Op == LOp::TreeCall) {
      NoteSlot(I->Target->EntryTypes.size());
      if (I->Target->EntryTypes.size() > BackedgeExitSlots)
        BackedgeExitSlots = I->Target->EntryTypes.size();
    }
  }

  std::vector<bool> Live(MaxSlot, false);
  auto LiveRange = [&](uint32_t End) {
    if (End > Live.size())
      End = (uint32_t)Live.size();
    for (uint32_t S = 0; S < End; ++S)
      Live[S] = true;
  };

  uint32_t Removed = 0;
  for (size_t K = Body.size(); K-- > 0;) {
    LIns *I = Body[K];
    switch (I->Op) {
    case LOp::Loop:
      // The next iteration re-imports everything the trace loads from the
      // TAR anywhere in its body, and every exit it can take writes back
      // from the TAR directly -- so the loop-header state (the entry
      // typemap) must be intact across the backedge. Stack slots above the
      // header depth are exempt: any exit deep enough to read one is
      // preceded, in its own iteration, by the pushes that store it.
      for (uint32_t S : TarLoadSlots)
        if (S < Live.size())
          Live[S] = true;
      LiveRange(EntrySlots != UINT32_MAX ? EntrySlots : BackedgeExitSlots);
      break;
    case LOp::JmpFrag:
      // The target fragment imports from its whole entry type map.
      LiveRange(I->Target->EntryTypes.size());
      break;
    case LOp::TreeCall:
      // The inner tree reads its entry slots; it may also write slots, but
      // treating those as live is conservative and safe.
      LiveRange(I->Target->EntryTypes.size());
      if (I->Exit)
        LiveRange(NumGlobals + I->Exit->Sp);
      break;
    case LOp::GuardT:
    case LOp::GuardF:
    case LOp::AddOvI:
    case LOp::SubOvI:
    case LOp::MulOvI:
    case LOp::Exit:
      if (I->Exit)
        LiveRange(NumGlobals + I->Exit->Sp);
      break;
    case LOp::StI:
    case LOp::StQ:
    case LOp::StD: {
      if (!isTarBase(I->B))
        break; // heap store: always observable
      uint32_t S = (uint32_t)(I->Disp / 8);
      if (S >= Live.size() || !Live[S]) {
        Body.erase(Body.begin() + (long)K);
        ++Removed;
        break;
      }
      Live[S] = false; // this store satisfies later reads
      break;
    }
    case LOp::LdI:
    case LOp::LdQ:
    case LOp::LdD:
    case LOp::LdUB:
      if (isTarBase(I->A)) {
        uint32_t S = (uint32_t)(I->Disp / 8);
        if (S < Live.size())
          Live[S] = true;
      }
      break;
    default:
      break;
    }
  }
  return Removed;
}

uint32_t eliminateDeadCode(std::vector<LIns *> &Body) {
  std::unordered_set<const LIns *> Marked;
  auto Mark = [&](auto &&Self, LIns *I) -> void {
    if (!I || Marked.count(I))
      return;
    Marked.insert(I);
    // Stores keep A (value) and B (base); others keep operands as defined.
    Self(Self, I->A);
    Self(Self, I->B);
    for (uint32_t K = 0; K < I->NCallArgs; ++K)
      Self(Self, I->CallArgs[K]);
  };

  for (LIns *I : Body) {
    bool Root = false;
    switch (I->Op) {
    case LOp::StI:
    case LOp::StQ:
    case LOp::StD:
    case LOp::GuardT:
    case LOp::GuardF:
    case LOp::AddOvI:
    case LOp::SubOvI:
    case LOp::MulOvI:
    case LOp::Exit:
    case LOp::TreeCall:
    case LOp::Loop:
    case LOp::JmpFrag:
      Root = true;
      break;
    case LOp::Call:
      Root = !I->CI->Pure;
      break;
    default:
      break;
    }
    if (Root)
      Mark(Mark, I);
  }

  uint32_t Removed = 0;
  std::vector<LIns *> Kept;
  Kept.reserve(Body.size());
  for (LIns *I : Body) {
    if (Marked.count(I) || I->Op == LOp::ParamTar) {
      Kept.push_back(I);
    } else {
      ++Removed;
    }
  }
  Body.swap(Kept);
  return Removed;
}

} // namespace tracejit
