//===- filters.cpp - Forward LIR filters -------------------------------------===//

#include "lir/filters.h"

#include <cmath>

namespace tracejit {

// --- ExprFilter ------------------------------------------------------------------

static bool isImmI(LIns *I, int32_t V) {
  return I->Op == LOp::ImmI && I->Imm.ImmI32 == V;
}

LIns *ExprFilter::ins1(LOp Op, LIns *A) {
  // Constant folding on unary ops.
  if (A->Op == LOp::ImmI) {
    int32_t V = A->Imm.ImmI32;
    switch (Op) {
    case LOp::I2D:
      return insImmD((double)V);
    case LOp::UI2D:
      return insImmD((double)(uint32_t)V);
    case LOp::UI2Q:
      return insImmQ((int64_t)(uint32_t)V);
    default:
      break;
    }
  }
  if (A->Op == LOp::ImmD && Op == LOp::D2I)
    return insImmI((int32_t)A->Imm.ImmDbl);
  if (A->Op == LOp::ImmD && Op == LOp::NegD)
    return insImmD(-A->Imm.ImmDbl);
  if (A->Op == LOp::ImmQ && Op == LOp::Q2I)
    return insImmI((int32_t)A->Imm.ImmQ64);

  // The language-specific INT<->DOUBLE narrowing from §5.1: "LIR that
  // converts an INT to a DOUBLE and then back again would be removed".
  if (Op == LOp::D2I && A->Op == LOp::I2D)
    return A->A;
  // Double negation.
  if (Op == LOp::NegD && A->Op == LOp::NegD)
    return A->A;

  return Out->ins1(Op, A);
}

LIns *ExprFilter::ins2(LOp Op, LIns *A, LIns *B) {
  // Integer constant folding.
  if (A->Op == LOp::ImmI && B->Op == LOp::ImmI) {
    int64_t X = A->Imm.ImmI32, Y = B->Imm.ImmI32;
    switch (Op) {
    case LOp::AddI:
      return insImmI((int32_t)(X + Y));
    case LOp::SubI:
      return insImmI((int32_t)(X - Y));
    case LOp::MulI:
      return insImmI((int32_t)(X * Y));
    case LOp::AndI:
      return insImmI((int32_t)(X & Y));
    case LOp::OrI:
      return insImmI((int32_t)(X | Y));
    case LOp::XorI:
      return insImmI((int32_t)(X ^ Y));
    case LOp::ShlI:
      return insImmI((int32_t)((uint32_t)X << (Y & 31)));
    case LOp::ShrI:
      return insImmI((int32_t)X >> (Y & 31));
    case LOp::UshrI:
      return insImmI((int32_t)((uint32_t)X >> (Y & 31)));
    case LOp::EqI:
      return insImmI(X == Y);
    case LOp::NeI:
      return insImmI(X != Y);
    case LOp::LtI:
      return insImmI(X < Y);
    case LOp::LeI:
      return insImmI(X <= Y);
    case LOp::GtI:
      return insImmI(X > Y);
    case LOp::GeI:
      return insImmI(X >= Y);
    case LOp::LtUI:
      return insImmI((uint32_t)X < (uint32_t)Y);
    default:
      break;
    }
  }
  // Double constant folding.
  if (A->Op == LOp::ImmD && B->Op == LOp::ImmD) {
    double X = A->Imm.ImmDbl, Y = B->Imm.ImmDbl;
    switch (Op) {
    case LOp::AddD:
      return insImmD(X + Y);
    case LOp::SubD:
      return insImmD(X - Y);
    case LOp::MulD:
      return insImmD(X * Y);
    case LOp::DivD:
      return insImmD(X / Y);
    case LOp::EqD:
      return insImmI(X == Y);
    case LOp::NeD:
      return insImmI(X != Y);
    case LOp::LtD:
      return insImmI(X < Y);
    case LOp::LeD:
      return insImmI(X <= Y);
    case LOp::GtD:
      return insImmI(X > Y);
    case LOp::GeD:
      return insImmI(X >= Y);
    default:
      break;
    }
  }
  // Pointer-equality folding.
  if (Op == LOp::EqQ && A->Op == LOp::ImmQ && B->Op == LOp::ImmQ)
    return insImmI(A->Imm.ImmQ64 == B->Imm.ImmQ64);

  // Algebraic identities.
  switch (Op) {
  case LOp::AddI:
    if (isImmI(B, 0))
      return A;
    if (isImmI(A, 0))
      return B;
    break;
  case LOp::SubI:
    if (isImmI(B, 0))
      return A;
    if (A == B)
      return insImmI(0); // a - a = 0 (§5.1)
    break;
  case LOp::MulI:
    if (isImmI(B, 1))
      return A;
    if (isImmI(A, 1))
      return B;
    if (isImmI(B, 0) || isImmI(A, 0))
      return insImmI(0);
    break;
  case LOp::AndI:
    if (A == B)
      return A;
    if (isImmI(B, -1))
      return A;
    if (isImmI(A, -1))
      return B;
    if (isImmI(B, 0) || isImmI(A, 0))
      return insImmI(0);
    break;
  case LOp::OrI:
    if (A == B)
      return A;
    if (isImmI(B, 0))
      return A;
    if (isImmI(A, 0))
      return B;
    break;
  case LOp::XorI:
    if (A == B)
      return insImmI(0);
    if (isImmI(B, 0))
      return A;
    break;
  case LOp::ShlI:
  case LOp::ShrI:
  case LOp::UshrI:
    if (isImmI(B, 0))
      return A;
    break;
  case LOp::EqI:
    if (A == B)
      return insImmI(1);
    break;
  case LOp::NeI:
    if (A == B)
      return insImmI(0);
    break;
  case LOp::EqQ:
    if (A == B)
      return insImmI(1);
    break;
  case LOp::AddD:
    // NOTE: no `x + 0.0 => x`: wrong for x = -0.0.
    break;
  case LOp::MulD:
    if (B->Op == LOp::ImmD && B->Imm.ImmDbl == 1.0)
      return A;
    if (A->Op == LOp::ImmD && A->Imm.ImmDbl == 1.0)
      return B;
    break;
  case LOp::AndQ:
    if (B->Op == LOp::ImmQ && B->Imm.ImmQ64 == -1)
      return A;
    break;
  case LOp::AddQ:
    if (B->Op == LOp::ImmQ && B->Imm.ImmQ64 == 0)
      return A;
    break;
  case LOp::OrQ:
    if (B->Op == LOp::ImmQ && B->Imm.ImmQ64 == 0)
      return A;
    break;
  case LOp::ShlQ:
  case LOp::ShrQ:
  case LOp::SarQ:
    if (isImmI(B, 0))
      return A;
    break;
  default:
    break;
  }
  return Out->ins2(Op, A, B);
}

LIns *ExprFilter::insGuard(LOp Op, LIns *Cond, ExitDescriptor *Exit) {
  // A guard on a constant condition either always holds (drop it) or would
  // always exit. The recorder never emits an always-failing guard except
  // deliberately; keep those.
  if (Cond->Op == LOp::ImmI) {
    bool Holds = (Op == LOp::GuardT) == (Cond->Imm.ImmI32 != 0);
    if (Holds)
      return nullptr;
  }
  return Out->insGuard(Op, Cond, Exit);
}

LIns *ExprFilter::insOvf(LOp Op, LIns *A, LIns *B, ExitDescriptor *Exit) {
  // Fold overflow-checked arithmetic on constants when no overflow occurs.
  if (A->Op == LOp::ImmI && B->Op == LOp::ImmI) {
    int64_t X = A->Imm.ImmI32, Y = B->Imm.ImmI32;
    int64_t R = Op == LOp::AddOvI ? X + Y : Op == LOp::SubOvI ? X - Y : X * Y;
    if (R >= INT32_MIN && R <= INT32_MAX)
      return insImmI((int32_t)R);
  }
  // x +/- 0 and x * 1 cannot overflow.
  if ((Op == LOp::AddOvI || Op == LOp::SubOvI) && isImmI(B, 0))
    return A;
  if (Op == LOp::AddOvI && isImmI(A, 0))
    return B;
  if (Op == LOp::MulOvI && isImmI(B, 1))
    return A;
  if (Op == LOp::MulOvI && isImmI(A, 1))
    return B;
  return Out->insOvf(Op, A, B, Exit);
}

// --- CseFilter -------------------------------------------------------------------

LIns *CseFilter::lookupOrInsert(const Key &K, LIns *Candidate) {
  auto [It, Inserted] = Exprs.emplace(K, Candidate);
  if (!Inserted) {
    ++Hits;
    return It->second;
  }
  return Candidate;
}

void CseFilter::invalidateLoads() { Loads.clear(); }

LIns *CseFilter::ins1(LOp Op, LIns *A) {
  Key K{(uint32_t)Op, (uint64_t)(uintptr_t)A, 0, 0};
  auto It = Exprs.find(K);
  if (It != Exprs.end()) {
    ++Hits;
    return It->second;
  }
  LIns *I = Out->ins1(Op, A);
  Exprs.emplace(K, I);
  return I;
}

LIns *CseFilter::ins2(LOp Op, LIns *A, LIns *B) {
  Key K{(uint32_t)Op, (uint64_t)(uintptr_t)A, (uint64_t)(uintptr_t)B, 0};
  auto It = Exprs.find(K);
  if (It != Exprs.end()) {
    ++Hits;
    return It->second;
  }
  LIns *I = Out->ins2(Op, A, B);
  Exprs.emplace(K, I);
  return I;
}

LIns *CseFilter::insImmI(int32_t V) {
  Key K{(uint32_t)LOp::ImmI, 0, 0, V};
  auto It = Exprs.find(K);
  if (It != Exprs.end())
    return It->second;
  LIns *I = Out->insImmI(V);
  Exprs.emplace(K, I);
  return I;
}

LIns *CseFilter::insImmQ(int64_t V) {
  Key K{(uint32_t)LOp::ImmQ, 0, 0, V};
  auto It = Exprs.find(K);
  if (It != Exprs.end())
    return It->second;
  LIns *I = Out->insImmQ(V);
  Exprs.emplace(K, I);
  return I;
}

LIns *CseFilter::insImmD(double V) {
  int64_t Bits;
  static_assert(sizeof(Bits) == sizeof(V));
  __builtin_memcpy(&Bits, &V, 8);
  Key K{(uint32_t)LOp::ImmD, 0, 0, Bits};
  auto It = Exprs.find(K);
  if (It != Exprs.end())
    return It->second;
  LIns *I = Out->insImmD(V);
  Exprs.emplace(K, I);
  return I;
}

LIns *CseFilter::insLoad(LOp Op, LIns *Base, int32_t Disp) {
  Key K{(uint32_t)Op, (uint64_t)(uintptr_t)Base, 0, Disp};
  auto It = Loads.find(K);
  if (It != Loads.end()) {
    ++Hits;
    return It->second;
  }
  LIns *I = Out->insLoad(Op, Base, Disp);
  Loads.emplace(K, I);
  return I;
}

LIns *CseFilter::insStore(LOp Op, LIns *Val, LIns *Base, int32_t Disp) {
  // Conservative aliasing: any store invalidates all cached loads.
  invalidateLoads();
  return Out->insStore(Op, Val, Base, Disp);
}

LIns *CseFilter::insCall(const CallInfo *CI, LIns **Args, uint32_t N) {
  if (CI->Pure) {
    Key K{(uint32_t)LOp::Call, (uint64_t)(uintptr_t)CI,
          N >= 1 ? (uint64_t)(uintptr_t)Args[0] : 0,
          N >= 2 ? (int64_t)(uintptr_t)Args[1] : 0};
    if (N <= 2) {
      auto It = Exprs.find(K);
      if (It != Exprs.end()) {
        ++Hits;
        return It->second;
      }
      LIns *I = Out->insCall(CI, Args, N);
      Exprs.emplace(K, I);
      return I;
    }
    return Out->insCall(CI, Args, N);
  }
  invalidateLoads();
  return Out->insCall(CI, Args, N);
}

LIns *CseFilter::insGuard(LOp Op, LIns *Cond, ExitDescriptor *Exit) {
  // A second guard on the same SSA condition with the same polarity is
  // redundant: the first guard already proved it.
  uint64_t GK = ((uint64_t)(uintptr_t)Cond << 1) | (Op == LOp::GuardT ? 1 : 0);
  if (GuardedConds.count(GK)) {
    ++Hits;
    return nullptr;
  }
  LIns *I = Out->insGuard(Op, Cond, Exit);
  if (I)
    GuardedConds.insert(GK);
  return I;
}

LIns *CseFilter::insTreeCall(Fragment *Inner, ExitDescriptor *Expected,
                             ExitDescriptor *MismatchExit) {
  // The inner tree can write any TAR slot and any heap location.
  invalidateLoads();
  return Out->insTreeCall(Inner, Expected, MismatchExit);
}

LIns *CseFilter::insLoop() {
  invalidateLoads();
  return Out->insLoop();
}

} // namespace tracejit
