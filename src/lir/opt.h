//===- opt.h - LIR loop optimizer ---------------------------------------------===//
//
// Trace-level optimization passes run over a finished recording, between
// the paper's §5.1 backward filters and the backend. A trace is one
// straight line, so dominance is linear order and every pass is a single
// forward or backward sweep:
//
//  * GuardElim -- dominating-guard elimination. A GVN sweep with memory
//    generations (per-TAR-slot + heap) merges redundant pure ops, loads,
//    and overflow checks, then drops any guard whose condition (by value
//    number) was already guarded with the same polarity. This is the
//    "one shape/type guard subsumes later ones" win of lazy basic block
//    versioning, obtained from trace-local dominance.
//
//  * IndVar -- induction-variable recognition. An overflow-checked
//    increment `AddOvI(i, c)` dominated by a range guard on `i`
//    (`GuardT(LtI(i, n))` and friends) cannot overflow, so the check is
//    folded to a plain `AddI`; array-indexing address chains
//    `base + (i+c)*8` are strength-reduced to `addr(i) + 8c` when both
//    indices are bounds-checked against the same capacity.
//
//  * Hoist -- loop-invariant code + guard hoisting. Invariant pure ops,
//    loads from never-clobbered locations, and guards over them move into
//    a trace prologue (Body[0, Fragment::PrologueEnd)) executed once per
//    tree entry; the Loop back edge re-enters after it. Hoisted guards
//    exit through Fragment::EntryExit, a Deopt snapshot of the entry
//    state: the prologue has no side effects, so a hoisted-guard failure
//    soundly means "pretend we never entered".
//
// Pass order (optimizeTrace): DeadStore, Dce, GuardElim, IndVar, Hoist,
// Dce. Selection comes from the EngineOptions::Passes pipeline; order is
// fixed here.
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_LIR_OPT_H
#define TRACEJIT_LIR_OPT_H

#include <cstdint>

#include "api/options.h"
#include "lir/lir.h"

namespace tracejit {

class Fragment;
struct VMStats;

/// What one optimizeTrace run did (also accumulated into VMStats).
struct OptResult {
  uint32_t GuardsEliminated = 0;  ///< Dominated guards + overflow checks dropped.
  uint32_t OvfChecksFolded = 0;   ///< AddOvI/SubOvI rewritten to AddI/SubI.
  uint32_t IdxStrengthReduced = 0;///< Indexing address chains simplified.
  uint32_t InsHoisted = 0;        ///< Instructions moved into the prologue.
  uint32_t GuardsHoisted = 0;     ///< ... of which guards/overflow checks.
};

/// Run the enabled backward + loop passes over \p F's finished body.
/// Requires the body to be closed (terminator last). Hoisting only applies
/// to root fragments that end in Loop and carry an EntryExit; everything
/// else runs on any trace. Counters land in \p Stats when non-null.
OptResult optimizeTrace(Fragment &F, const OptPipeline &Passes,
                        uint32_t NumGlobals, VMStats *Stats);

} // namespace tracejit

#endif // TRACEJIT_LIR_OPT_H
