//===- verify.h - LIR verifier and trace-invariant checker -------------------===//
//
// Static analysis over trace-flavored LIR: enforce mechanically the
// invariants the paper's correctness story rests on. Traces are straight
// lines of SSA instructions (§3.1), so "dominance" is linear order and the
// whole IR is checkable in one pass; every guard carries an exit type map
// describing the interpreter state it restores (§2, §4); and the forward
// and backward filter pipelines (§5.1) must preserve all of that while
// rewriting the instruction stream.
//
// Two entry points cover the whole pipeline:
//
//  * VerifyWriter -- a streaming LirWriter at the head of the forward
//    pipeline. It checks each instruction as the recorder emits it, before
//    any filter sees it: operand types match the op signature, operands
//    are defined before use, loads/stores use well-typed base+disp
//    addressing, and guards/overflow ops carry a non-null ExitDescriptor
//    whose type map covers NumGlobals + Sp slots.
//
//  * verifyTrace() -- a whole-trace pass run after the backward filters
//    and before the compiler. It re-checks the per-instruction rules on
//    the filtered body (catching uses of DCE-removed values) and adds the
//    pipeline-level invariants: exit map lengths, exit Sp/frame bounds,
//    TAR offsets inside the fragment's slot domain, tree-call stitch
//    points whose entry/exit maps agree, and exactly one terminator, last.
//
// A violation produces a structured VerifyError (rule id, instruction
// index, printer excerpt); callers surface it as AbortReason::VerifyFailed
// so the recording aborts and blacklists rather than compiling garbage.
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_LIR_VERIFY_H
#define TRACEJIT_LIR_VERIFY_H

#include <string>

#include "lir/lir.h"
#include "support/events.h"

namespace tracejit {

class Fragment;
struct VMStats;

/// One verifier violation. Only the first violation of a trace is kept:
/// after an invariant breaks, follow-on reports are noise.
struct VerifyError {
  VerifyRule Rule = VerifyRule::None;
  uint32_t InsId = ~0u;  ///< LIns::Id of the offending instruction, or ~0u.
  std::string Message;   ///< Includes a formatIns() excerpt where possible.

  explicit operator bool() const { return Rule != VerifyRule::None; }
  /// "rule-name @vN: message" -- ready for diagnostics.
  std::string describe() const;
};

/// Streaming verifier at the head of the forward pipeline (§5.1). Checks
/// arguments before forwarding downstream, so a recorder bug is attributed
/// to its emission site rather than to whatever the filters made of it.
/// On the first violation the error latches (failed() turns true); the
/// instruction is still forwarded so the pipeline stays consistent while
/// the recorder unwinds and aborts.
class VerifyWriter final : public LirWriter {
public:
  /// \p Buf is the pipeline tail: an operand is "defined" iff it already
  /// lives in the buffer (downstream filters may mint constants that never
  /// pass through this writer, so membership is checked there, not here).
  /// \p NumGlobals sizes the slot domain for exit-map checks
  /// (type map length must be NumGlobals + Sp at every exit).
  VerifyWriter(LirWriter *Downstream, LirBuffer &Buf, uint32_t NumGlobals,
               VMStats *Stats = nullptr);

  bool failed() const { return static_cast<bool>(Err); }
  const VerifyError &error() const { return Err; }

  LIns *ins0(LOp Op) override;
  LIns *ins1(LOp Op, LIns *A) override;
  LIns *ins2(LOp Op, LIns *A, LIns *B) override;
  LIns *insLoad(LOp Op, LIns *Base, int32_t Disp) override;
  LIns *insStore(LOp Op, LIns *Val, LIns *Base, int32_t Disp) override;
  LIns *insCall(const CallInfo *CI, LIns **Args, uint32_t N) override;
  LIns *insGuard(LOp Op, LIns *Cond, ExitDescriptor *Exit) override;
  LIns *insOvf(LOp Op, LIns *A, LIns *B, ExitDescriptor *Exit) override;
  LIns *insExit(ExitDescriptor *Exit) override;
  LIns *insTreeCall(Fragment *Inner, ExitDescriptor *Expected,
                    ExitDescriptor *MismatchExit) override;
  LIns *insJmpFrag(Fragment *Target) override;

private:
  void fail(VerifyRule R, const std::string &Msg, const LIns *At = nullptr);
  /// Operand checks shared with the emission overrides; all latch the
  /// first error and return false once anything failed.
  bool checkDefined(LOp Op, const LIns *O, const char *Which);
  bool checkOperands(LOp Op, LIns *A, LIns *B);
  bool checkExit(LOp Op, const ExitDescriptor *Exit);
  void countIns();

  LirBuffer &Buf;
  uint32_t NumGlobals;
  VMStats *Stats;
  VerifyError Err;
};

/// Whole-trace pass over a finished (post-filter) fragment body. Returns
/// true when every invariant holds; otherwise fills \p Err with the first
/// violation. \p NumGlobals is the global-table size of the trace's slot
/// domain (Fragment::EntryTypes.NumGlobals for recorded traces). Counts
/// activity into \p Stats when given.
bool verifyTrace(const Fragment &F, uint32_t NumGlobals, VerifyError &Err,
                 VMStats *Stats = nullptr);

/// Whole-body pass for method-tier fragments (FragmentKind::Method). The
/// straight-line trace rules don't apply -- method bodies have real control
/// flow -- so this variant allows Label/Jmp/JmpIfT/JmpIfF and multiple
/// terminators, requires every branch target to be a bound in-body Label,
/// and forbids the trace-only transfers (Loop/JmpFrag/TreeCall). Per-
/// instruction typing, call-signature, TAR-addressing, and exit-map rules
/// are shared with verifyTrace. Def-before-use stays linear: the method
/// builder never flows SSA values across branches (state lives in the TAR).
bool verifyMethodBody(const Fragment &F, uint32_t NumGlobals, VerifyError &Err,
                      VMStats *Stats = nullptr);

} // namespace tracejit

#endif // TRACEJIT_LIR_VERIFY_H
