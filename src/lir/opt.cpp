//===- opt.cpp - LIR loop optimizer: guard elim, indvars, hoisting -----------===//
//
// Soundness notes common to all passes. A trace is straight-line SSA, so:
//  * "dominates" is simply "appears earlier in the body";
//  * an SSA value never changes, so a fact established by a passed guard
//    (GuardT(c) implies c != 0 downstream) holds for the rest of the trace
//    and is never invalidated;
//  * memory is the only mutable state. Three disjoint location classes
//    cover every LIR access: TAR slots (base == ParamTar; written only by
//    explicit TAR stores and by TreeCall, which runs an inner tree over the
//    same TAR), absolute addresses (base == ImmQ; VM communication channels
//    such as the preempt flag and stats counters -- treated as volatile:
//    never merged, never hoisted), and the heap (everything else; clobbered
//    by heap stores, impure calls and TreeCall). The dead-store pass in
//    backward.cpp already relies on calls not writing the TAR; we inherit
//    that invariant.
//
//===----------------------------------------------------------------------===//

#include "lir/opt.h"

#include <cstring>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "jit/fragment.h"
#include "lir/backward.h"
#include "support/stats.h"

namespace tracejit {

namespace {

/// Pure value-producing ops: no side effects, no traps, result depends only
/// on operands. Loads, overflow-checked ops, guards and calls are handled
/// separately by each pass.
bool isPureValueOp(LOp Op) {
  switch (Op) {
  case LOp::AddI:
  case LOp::SubI:
  case LOp::MulI:
  case LOp::AndI:
  case LOp::OrI:
  case LOp::XorI:
  case LOp::ShlI:
  case LOp::ShrI:
  case LOp::UshrI:
  case LOp::AddQ:
  case LOp::AndQ:
  case LOp::OrQ:
  case LOp::ShlQ:
  case LOp::ShrQ:
  case LOp::SarQ:
  case LOp::Q2I:
  case LOp::UI2Q:
  case LOp::EqI:
  case LOp::NeI:
  case LOp::LtI:
  case LOp::LeI:
  case LOp::GtI:
  case LOp::GeI:
  case LOp::LtUI:
  case LOp::EqQ:
  case LOp::AddD:
  case LOp::SubD:
  case LOp::MulD:
  case LOp::DivD:
  case LOp::NegD:
  case LOp::EqD:
  case LOp::NeD:
  case LOp::LtD:
  case LOp::LeD:
  case LOp::GtD:
  case LOp::GeD:
  case LOp::I2D:
  case LOp::UI2D:
  case LOp::D2I:
    return true;
  default:
    return false;
  }
}

bool isOvf(LOp Op) {
  return Op == LOp::AddOvI || Op == LOp::SubOvI || Op == LOp::MulOvI;
}

// --- Dominating-guard elimination (GVN) -------------------------------------
//
// One forward sweep value-numbers immediates, pure ops, loads (keyed with a
// per-location-class generation so a clobber starts a new equivalence
// class) and overflow-checked ops. Redundant value instructions are dropped
// and later operands rewritten to the surviving representative; a
// GuardT/GuardF whose (condition, polarity) was already guarded is dropped
// outright -- if the condition were false the earlier guard would already
// have exited, so the re-check can never fire.

struct VNKey {
  uint16_t Op = 0;
  const LIns *A = nullptr;
  const LIns *B = nullptr;
  int64_t Extra = 0; ///< Immediate bits, or load displacement.
  uint64_t Gen = 0;  ///< Load location-class generation.

  bool operator==(const VNKey &O) const {
    return Op == O.Op && A == O.A && B == O.B && Extra == O.Extra &&
           Gen == O.Gen;
  }
};

struct VNKeyHash {
  size_t operator()(const VNKey &K) const {
    uint64_t H = 0x9E3779B97F4A7C15ull * (K.Op + 1);
    auto Mix = [&H](uint64_t V) { H = (H ^ V) * 0x100000001B3ull; };
    Mix((uint64_t)(uintptr_t)K.A);
    Mix((uint64_t)(uintptr_t)K.B);
    Mix((uint64_t)K.Extra);
    Mix(K.Gen);
    return (size_t)H;
  }
};

struct GuardElimResult {
  uint32_t GuardsDropped = 0;
  uint32_t ValuesMerged = 0;
};

GuardElimResult runGuardElim(std::vector<LIns *> &Body) {
  GuardElimResult R;
  std::unordered_map<VNKey, LIns *, VNKeyHash> VN;
  std::unordered_map<const LIns *, LIns *> Replace;
  std::unordered_set<const LIns *> GuardedT, GuardedF;
  // TAR slot generations: (epoch << 32 | per-slot count). TreeCall bumps the
  // epoch (the inner tree may write any slot); a TAR store bumps one slot.
  std::unordered_map<int32_t, uint64_t> TarGen;
  uint64_t TarEpoch = 0;
  uint64_t HeapGen = 0;

  auto Resolve = [&](LIns *V) -> LIns * {
    if (!V)
      return V;
    auto It = Replace.find(V);
    return It == Replace.end() ? V : It->second;
  };

  std::vector<LIns *> Out;
  Out.reserve(Body.size());
  for (LIns *I : Body) {
    I->A = Resolve(I->A);
    I->B = Resolve(I->B);
    for (uint32_t K = 0; K < I->NCallArgs; ++K)
      I->CallArgs[K] = Resolve(I->CallArgs[K]);

    // Clobbers: advance the written class's generation.
    if (I->isStore()) {
      if (I->B->Op == LOp::ParamTar)
        ++TarGen[I->Disp / 8];
      else if (I->B->Op != LOp::ImmQ)
        ++HeapGen;
      Out.push_back(I);
      continue;
    }
    if (I->Op == LOp::Call) {
      if (!I->CI->Pure)
        ++HeapGen;
      Out.push_back(I);
      continue;
    }
    if (I->Op == LOp::TreeCall) {
      ++HeapGen;
      ++TarEpoch;
      TarGen.clear();
      Out.push_back(I);
      continue;
    }

    // Dominated guards: the same SSA condition already guarded with the
    // same polarity can never fire again.
    if (I->Op == LOp::GuardT || I->Op == LOp::GuardF) {
      auto &Set = I->Op == LOp::GuardT ? GuardedT : GuardedF;
      if (!Set.insert(I->A).second) {
        ++R.GuardsDropped;
        continue;
      }
      Out.push_back(I);
      continue;
    }

    // Value numbering.
    VNKey Key;
    bool Numbered = false;
    if (I->isImm()) {
      int64_t Bits = 0;
      if (I->Op == LOp::ImmI)
        Bits = I->Imm.ImmI32;
      else if (I->Op == LOp::ImmQ)
        Bits = I->Imm.ImmQ64;
      else
        std::memcpy(&Bits, &I->Imm.ImmDbl, 8);
      Key = {(uint16_t)I->Op, nullptr, nullptr, Bits, 0};
      Numbered = true;
    } else if (I->isLoad()) {
      const LIns *Base = I->A;
      if (Base->Op != LOp::ImmQ) { // absolute loads are volatile: never merged
        uint64_t Gen = Base->Op == LOp::ParamTar
                           ? (TarEpoch << 32) | TarGen[I->Disp / 8]
                           : HeapGen;
        Key = {(uint16_t)I->Op, Base, nullptr, I->Disp, Gen};
        Numbered = true;
      }
    } else if (isPureValueOp(I->Op)) {
      Key = {(uint16_t)I->Op, I->A, I->B, I->Disp, 0};
      Numbered = true;
    } else if (isOvf(I->Op)) {
      // Same operands -> same result and the earlier check already passed;
      // the duplicate's value folds and its guard disappears with it.
      Key = {(uint16_t)I->Op, I->A, I->B, 0, 0};
      Numbered = true;
    }

    if (Numbered) {
      auto It = VN.find(Key);
      if (It != VN.end()) {
        Replace[I] = It->second;
        if (isOvf(I->Op))
          ++R.GuardsDropped;
        else
          ++R.ValuesMerged;
        continue;
      }
      VN.emplace(Key, I);
    }
    Out.push_back(I);
  }
  Body.swap(Out);
  return R;
}

// --- Induction-variable recognition -----------------------------------------
//
// Range facts come from passed guards over integer comparisons: after
// GuardT(LtI(x, n)) the rest of the trace knows x < n. An overflow-checked
// constant step dominated by a suitable bound cannot overflow and folds to
// the plain op. Bounds-checked array indexing (x <u cap, with cap a loaded
// capacity) additionally proves 0 <= x < 2^31 -- the VM never creates a
// container with more than 2^31-1 elements, so capacity loads are
// non-negative int32s -- which both folds +/-1 steps and licenses
// strength-reducing the address chain base + 8*(x+c) into addr(x) + 8c.

struct IndVarResult {
  uint32_t Folded = 0;
  uint32_t Reduced = 0;
};

IndVarResult runIndVar(Fragment &F, std::vector<LIns *> &Body) {
  IndVarResult R;
  using Fact = std::pair<LOp, const LIns *>;
  std::unordered_map<const LIns *, std::vector<Fact>> Facts;

  auto AddFact = [&](LOp Rel, const LIns *L, const LIns *RHS) {
    Facts[L].push_back({Rel, RHS});
    LOp Sw;
    switch (Rel) { // mirror signed relations: a < b  ==  b > a
    case LOp::LtI:
      Sw = LOp::GtI;
      break;
    case LOp::LeI:
      Sw = LOp::GeI;
      break;
    case LOp::GtI:
      Sw = LOp::LtI;
      break;
    case LOp::GeI:
      Sw = LOp::LeI;
      break;
    default:
      return; // LtUI has no mirror
    }
    Facts[RHS].push_back({Sw, L});
  };

  auto HasFact = [&](const LIns *L, LOp Rel, auto Pred) -> bool {
    auto It = Facts.find(L);
    if (It == Facts.end())
      return false;
    for (const Fact &Fc : It->second)
      if (Fc.first == Rel && Pred(Fc.second))
        return true;
    return false;
  };
  auto Any = [](const LIns *) { return true; };
  // x <u cap implies 0 <= x < 2^31 when cap is a loaded capacity (VM
  // invariant) or a non-negative immediate.
  auto IsCap = [](const LIns *RHS) {
    return RHS->isLoad() || (RHS->Op == LOp::ImmI && RHS->Imm.ImmI32 >= 0);
  };

  // Can x + c (c > 0) overflow given the facts?
  auto FoldableAdd = [&](const LIns *X, int64_t C) {
    if (C == 1 && HasFact(X, LOp::LtI, Any))
      return true; // x < anything keeps x <= INT32_MAX - 1
    if (HasFact(X, LOp::LtI, [&](const LIns *RHS) {
          return RHS->Op == LOp::ImmI &&
                 (int64_t)RHS->Imm.ImmI32 - 1 + C <= INT32_MAX;
        }))
      return true;
    if (HasFact(X, LOp::LeI, [&](const LIns *RHS) {
          return RHS->Op == LOp::ImmI &&
                 (int64_t)RHS->Imm.ImmI32 + C <= INT32_MAX;
        }))
      return true;
    if (C == 1 && HasFact(X, LOp::LtUI, IsCap))
      return true; // x < cap < 2^31
    if (HasFact(X, LOp::LtUI, [&](const LIns *RHS) {
          return RHS->Op == LOp::ImmI && RHS->Imm.ImmI32 >= 0 &&
                 (int64_t)RHS->Imm.ImmI32 - 1 + C <= INT32_MAX;
        }))
      return true;
    return false;
  };
  // Can x - c (c > 0) underflow given the facts?
  auto FoldableSub = [&](const LIns *X, int64_t C) {
    if (C == 1 && HasFact(X, LOp::GtI, Any))
      return true; // x > anything keeps x >= INT32_MIN + 1
    if (HasFact(X, LOp::GtI, [&](const LIns *RHS) {
          return RHS->Op == LOp::ImmI &&
                 (int64_t)RHS->Imm.ImmI32 + 1 - C >= INT32_MIN;
        }))
      return true;
    if (HasFact(X, LOp::GeI, [&](const LIns *RHS) {
          return RHS->Op == LOp::ImmI &&
                 (int64_t)RHS->Imm.ImmI32 - C >= INT32_MIN;
        }))
      return true;
    if (HasFact(X, LOp::LtUI, IsCap))
      return true; // x >= 0, so x - c > INT32_MIN for int32 c
    return false;
  };

  // Match addr = data + (UI2Q(idx) << 3); out-params are the data pointer
  // and the I32 index value.
  auto MatchAddr = [](LIns *Addr, const LIns *&Data, LIns *&Idx) {
    if (Addr->Op != LOp::AddQ)
      return false;
    for (int Side = 0; Side < 2; ++Side) {
      LIns *Sh = Side ? Addr->B : Addr->A;
      const LIns *Dt = Side ? Addr->A : Addr->B;
      if (Sh->Op == LOp::ShlQ && Sh->B->Op == LOp::ImmI &&
          Sh->B->Imm.ImmI32 == 3 && Sh->A->Op == LOp::UI2Q) {
        Data = Dt;
        Idx = Sh->A->A;
        return true;
      }
    }
    return false;
  };
  // Both idx and idx' bounds-checked (<u) against the same capacity load?
  auto SameCapBound = [&](const LIns *X, const LIns *J) {
    auto ItX = Facts.find(X);
    auto ItJ = Facts.find(J);
    if (ItX == Facts.end() || ItJ == Facts.end())
      return false;
    for (const Fact &FX : ItX->second) {
      if (FX.first != LOp::LtUI || !FX.second->isLoad())
        continue;
      for (const Fact &FJ : ItJ->second)
        if (FJ.first == LOp::LtUI && FJ.second == FX.second)
          return true;
    }
    return false;
  };

  uint32_t MaxId = 0;
  for (const LIns *I : Body)
    if (I->Id > MaxId)
      MaxId = I->Id;

  // (data pointer, index value) -> address instruction already in the body.
  std::map<std::pair<const LIns *, const LIns *>, LIns *> Addrs;

  std::vector<LIns *> Out;
  Out.reserve(Body.size() + 8);
  for (LIns *I : Body) {
    if (I->Op == LOp::GuardT || I->Op == LOp::GuardF) {
      const LIns *C = I->A;
      LOp Rel = C->Op;
      if (I->Op == LOp::GuardF) {
        switch (C->Op) { // a passed GuardF establishes the negation
        case LOp::LtI:
          Rel = LOp::GeI;
          break;
        case LOp::LeI:
          Rel = LOp::GtI;
          break;
        case LOp::GtI:
          Rel = LOp::LeI;
          break;
        case LOp::GeI:
          Rel = LOp::LtI;
          break;
        default:
          Rel = LOp::NumOps;
          break;
        }
      }
      switch (Rel) {
      case LOp::LtI:
      case LOp::LeI:
      case LOp::GtI:
      case LOp::GeI:
      case LOp::LtUI:
        AddFact(Rel, C->A, C->B);
        break;
      default:
        break;
      }
      Out.push_back(I);
      continue;
    }

    if (I->Op == LOp::AddOvI || I->Op == LOp::SubOvI) {
      const LIns *X = nullptr;
      int64_t C = 0;
      if (I->B->Op == LOp::ImmI) {
        X = I->A;
        C = I->B->Imm.ImmI32;
      } else if (I->A->Op == LOp::ImmI && I->Op == LOp::AddOvI) {
        X = I->B;
        C = I->A->Imm.ImmI32;
      }
      bool Fold = false;
      if (X && C != 0 && C != INT32_MIN) {
        bool IsAdd = (I->Op == LOp::AddOvI) == (C > 0);
        int64_t Mag = C > 0 ? C : -C;
        Fold = IsAdd ? FoldableAdd(X, Mag) : FoldableSub(X, Mag);
      }
      if (Fold) {
        I->Op = I->Op == LOp::AddOvI ? LOp::AddI : LOp::SubI;
        I->Exit = nullptr;
        ++R.Folded;
      }
      Out.push_back(I);
      continue;
    }

    const LIns *Data = nullptr;
    LIns *Idx = nullptr;
    if (MatchAddr(I, Data, Idx)) {
      // data + 8*(x+c)  ->  addr(x) + 8c, when addr(x) = data + 8*x exists
      // earlier and both x and x+c are checked against the same capacity
      // (so x+c cannot wrap and the shifts agree exactly).
      const LIns *X = nullptr;
      int64_t C = 0;
      if (Idx->Op == LOp::AddI || Idx->Op == LOp::AddOvI) {
        if (Idx->B->Op == LOp::ImmI) {
          X = Idx->A;
          C = Idx->B->Imm.ImmI32;
        } else if (Idx->A->Op == LOp::ImmI) {
          X = Idx->B;
          C = Idx->A->Imm.ImmI32;
        }
      }
      if (X && C > 0 && SameCapBound(X, Idx)) {
        auto It = Addrs.find({Data, X});
        if (It != Addrs.end()) {
          LIns *Off = F.LirArena->make<LIns>();
          Off->Op = LOp::ImmQ;
          Off->Ty = LTy::Q;
          Off->Id = ++MaxId;
          Off->Imm.ImmQ64 = 8 * C;
          Out.push_back(Off);
          I->A = It->second;
          I->B = Off;
          ++R.Reduced;
        }
      }
      Addrs[{Data, Idx}] = I; // post-rewrite it still computes data + 8*idx
    }
    Out.push_back(I);
  }
  Body.swap(Out);
  return R;
}

// --- Loop-invariant code and guard hoisting ---------------------------------
//
// Build an operand-closed, order-preserving set of invariant instructions
// and move it to the front of the body; Fragment::PrologueEnd marks the
// boundary and the Loop back edge re-enters after it. Rules:
//  * ParamTar and immediates are trivially invariant (imms move only when a
//    hoisted instruction uses them, to preserve define-before-use).
//  * A pure op / pure call is invariant iff all operands are.
//  * A load is invariant iff its base is, its location class is never
//    stored in the whole trace, it is not an absolute (ImmQ-based) load,
//    and no unhoisted guard precedes it -- a load must not move above a
//    guard that stays in the loop, because that guard may be what proves
//    the access safe.
//  * A guard (or overflow op) hoists iff its condition/operands do; its
//    exit is rewired to Fragment::EntryExit, the Deopt snapshot of the
//    entry state. Moving a guard earlier only strengthens it, and failing
//    at entry is sound because the prologue executes no side effects:
//    "pretend we never entered" and let the interpreter run the iteration.
//  * Stores, impure calls, TreeCall and terminators never hoist.

struct HoistResult {
  uint32_t Ins = 0;
  uint32_t Guards = 0;
};

HoistResult runHoist(Fragment &F) {
  HoistResult R;
  std::vector<LIns *> &Body = F.Body;
  if (F.Kind != FragmentKind::Root || !F.EntryExit || Body.empty() ||
      Body.back()->Op != LOp::Loop)
    return R;

  // Whole-trace clobber summary per location class.
  std::unordered_set<int32_t> TarStored;
  bool HeapStored = false;
  bool TarClobberAll = false;
  for (const LIns *I : Body) {
    if (I->isStore()) {
      if (I->B->Op == LOp::ParamTar)
        TarStored.insert(I->Disp / 8);
      else if (I->B->Op != LOp::ImmQ)
        HeapStored = true;
    } else if (I->Op == LOp::Call && !I->CI->Pure) {
      HeapStored = true;
    } else if (I->Op == LOp::TreeCall) {
      HeapStored = true;
      TarClobberAll = true; // the inner tree writes the shared TAR
    }
  }

  std::unordered_set<const LIns *> Avail;   // usable as hoisted operands
  std::unordered_set<const LIns *> Hoisted; // instructions that move
  bool SeenUnhoistedGuard = false;
  auto IsAvail = [&](const LIns *V) { return !V || Avail.count(V) != 0; };
  // Only guards that inspect pointer-typed data (type/shape checks) can
  // establish memory-layout facts a later load's safety depends on; when
  // such a guard stays in the loop, loads must not float above it. An i32
  // compare (loop condition, bounds check) cannot strand a hoisted load:
  // under class-granularity clobbering, any load it protects shares its
  // condition's dataflow, so the load only becomes available when the
  // guard hoists with it (and the rebuild preserves their order).
  auto GuardsMemoryLayout = [](const LIns *Cond) {
    if (!Cond)
      return true; // be conservative about malformed conds
    const LIns *Ops[2] = {Cond->A, Cond->B};
    for (const LIns *V : Ops)
      if (V && V->Ty == LTy::Q)
        return true;
    return false;
  };

  for (size_t P = 0; P + 1 < Body.size(); ++P) { // terminator never moves
    LIns *I = Body[P];
    switch (I->Op) {
    case LOp::ParamTar:
      Avail.insert(I);
      Hoisted.insert(I);
      break;
    case LOp::ImmI:
    case LOp::ImmQ:
    case LOp::ImmD:
      Avail.insert(I);
      break;
    case LOp::GuardT:
    case LOp::GuardF:
      if (IsAvail(I->A))
        Hoisted.insert(I);
      else if (GuardsMemoryLayout(I->A))
        SeenUnhoistedGuard = true;
      break;
    case LOp::AddOvI:
    case LOp::SubOvI:
    case LOp::MulOvI:
      if (IsAvail(I->A) && IsAvail(I->B)) {
        Avail.insert(I);
        Hoisted.insert(I);
      }
      // An unhoisted overflow check guards i32 arithmetic, never memory
      // layout; it does not block later loads.
      break;
    case LOp::TreeCall:
      SeenUnhoistedGuard = true;
      break;
    case LOp::Call: {
      bool Ok = I->CI->Pure; // pure helpers (sin, floor, ...) cannot trap
      for (uint32_t K = 0; Ok && K < I->NCallArgs; ++K)
        Ok = IsAvail(I->CallArgs[K]);
      if (Ok) {
        Avail.insert(I);
        Hoisted.insert(I);
      }
      break;
    }
    case LOp::LdI:
    case LOp::LdQ:
    case LOp::LdD:
    case LOp::LdUB: {
      bool Ok = IsAvail(I->A) && !SeenUnhoistedGuard;
      if (Ok) {
        if (I->A->Op == LOp::ParamTar)
          Ok = !TarClobberAll && !TarStored.count(I->Disp / 8);
        else if (I->A->Op == LOp::ImmQ)
          Ok = false; // absolute loads are VM channels; never invariant
        else
          Ok = !HeapStored;
      }
      if (Ok) {
        Avail.insert(I);
        Hoisted.insert(I);
      }
      break;
    }
    default:
      if (isPureValueOp(I->Op) && IsAvail(I->A) && IsAvail(I->B)) {
        Avail.insert(I);
        Hoisted.insert(I);
      }
      break;
    }
  }

  uint32_t Meaningful = 0;
  for (const LIns *I : Hoisted)
    if (I->Op != LOp::ParamTar)
      ++Meaningful;
  if (Meaningful == 0)
    return R; // nothing worth a prologue

  // Immediates referenced by hoisted instructions must move too, or the
  // prologue would use values defined after it.
  std::unordered_set<const LIns *> NeededImms;
  auto NeedImm = [&](const LIns *V) {
    if (V && V->isImm())
      NeededImms.insert(V);
  };
  for (const LIns *I : Hoisted) {
    NeedImm(I->A);
    NeedImm(I->B);
    for (uint32_t K = 0; K < I->NCallArgs; ++K)
      NeedImm(I->CallArgs[K]);
  }

  auto Moves = [&](const LIns *I) {
    return Hoisted.count(I) != 0 || (I->isImm() && NeededImms.count(I) != 0);
  };
  std::vector<LIns *> NewBody;
  NewBody.reserve(Body.size());
  for (LIns *I : Body)
    if (Moves(I))
      NewBody.push_back(I);
  F.PrologueEnd = (uint32_t)NewBody.size();
  for (LIns *I : Body)
    if (!Moves(I))
      NewBody.push_back(I);
  Body.swap(NewBody);

  for (uint32_t P = 0; P < F.PrologueEnd; ++P) {
    LIns *I = Body[P];
    if (I->Op == LOp::ParamTar || I->isImm())
      continue;
    ++R.Ins;
    if (I->isGuard()) {
      I->Exit = F.EntryExit; // fail at entry = never entered
      ++R.Guards;
    }
  }
  return R;
}

} // namespace

OptResult optimizeTrace(Fragment &F, const OptPipeline &Passes,
                        uint32_t NumGlobals, VMStats *Stats) {
  OptResult R;

  // The paper's §5.1 backward filters, unchanged (the -O0 pipeline).
  if (Passes.has(OptPass::DeadStore))
    eliminateDeadStores(F.Body, NumGlobals,
                        (uint32_t)F.EntryTypes.size());
  if (Stats)
    Stats->LirAfterForwardFilters += F.Body.size();
  if (Passes.has(OptPass::Dce))
    eliminateDeadCode(F.Body);

  bool RanLoopOpt = false;
  if (Passes.has(OptPass::GuardElim)) {
    GuardElimResult G = runGuardElim(F.Body);
    R.GuardsEliminated = G.GuardsDropped;
    RanLoopOpt = true;
  }
  if (Passes.has(OptPass::IndVar)) {
    IndVarResult IV = runIndVar(F, F.Body);
    R.OvfChecksFolded = IV.Folded;
    R.IdxStrengthReduced = IV.Reduced;
    RanLoopOpt = true;
  }
  if (Passes.has(OptPass::Hoist)) {
    HoistResult H = runHoist(F);
    R.InsHoisted = H.Ins;
    R.GuardsHoisted = H.Guards;
    RanLoopOpt = true;
  }

  // The loop passes orphan values (dropped guards' conditions, bypassed
  // address chains); clean up, keeping the prologue boundary consistent.
  if (RanLoopOpt && Passes.has(OptPass::Dce)) {
    if (F.PrologueEnd) {
      std::unordered_set<const LIns *> Pro(F.Body.begin(),
                                           F.Body.begin() + F.PrologueEnd);
      eliminateDeadCode(F.Body);
      uint32_t End = 0; // survivors keep their order: prologue is a prefix
      while (End < F.Body.size() && Pro.count(F.Body[End]))
        ++End;
      F.PrologueEnd = End;
    } else {
      eliminateDeadCode(F.Body);
    }
  }

  if (Stats) {
    Stats->LirAfterBackwardFilters += F.Body.size();
    Stats->GuardsEliminated += R.GuardsEliminated;
    Stats->OverflowChecksFolded += R.OvfChecksFolded;
    Stats->IdxStrengthReduced += R.IdxStrengthReduced;
    Stats->InsHoisted += R.InsHoisted;
    Stats->GuardsHoisted += R.GuardsHoisted;
    if (F.PrologueEnd)
      ++Stats->LoopsWithPrologue;
  }
  return R;
}

} // namespace tracejit
