//===- lir.h - Trace-flavored SSA LIR ---------------------------------------===//
//
// "In TraceMonkey, traces are recorded in trace-flavored SSA LIR (low-level
// intermediate representation)... The important LIR primitives are constant
// values, memory loads and stores (by address and offset), integer
// operators, floating-point operators, function calls, and conditional
// exits." (§3.1)
//
// Because a trace has no control-flow joins, the IR is a straight line of
// instructions in SSA form; the only control transfers are guards (exits),
// the closing Loop back edge, calls to nested trace trees, and tail jumps
// to peer fragments.
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_LIR_LIR_H
#define TRACEJIT_LIR_LIR_H

#include <cstdint>
#include <string>
#include <vector>

#include "support/arena.h"

namespace tracejit {

class Fragment;
struct ExitDescriptor;

/// Value types carried by LIR instructions.
enum class LTy : uint8_t {
  Void,
  I32, ///< 32-bit integer (also booleans 0/1)
  Q,   ///< 64-bit integer / pointer
  D,   ///< IEEE double
};

enum class LOp : uint8_t {
  // Entry.
  ParamTar, ///< The TAR base pointer (Q).

  // Constants.
  ImmI,
  ImmQ,
  ImmD,

  // Memory. A = base (Q), Disp = byte offset. LdUB zero-extends a byte.
  LdI,
  LdQ,
  LdD,
  LdUB,
  // Stores: A = value, B = base, Disp = byte offset.
  StI,
  StQ,
  StD,

  // 32-bit integer ALU.
  AddI,
  SubI,
  MulI,
  AndI,
  OrI,
  XorI,
  ShlI,
  ShrI,  ///< arithmetic shift right
  UshrI, ///< logical shift right
  // Overflow-checked (guards attached; exit on signed overflow).
  AddOvI,
  SubOvI,
  MulOvI,

  // 64-bit ALU (tag manipulation, address arithmetic).
  AddQ,
  AndQ,
  OrQ,
  ShlQ, ///< shift by immediate count (B = ImmI)
  ShrQ, ///< logical; shift by immediate count
  SarQ, ///< arithmetic; shift by immediate count
  Q2I,  ///< truncate to low 32 bits
  UI2Q, ///< zero-extend int32 to 64-bit

  // Integer comparisons -> I32 0/1.
  EqI,
  NeI,
  LtI,
  LeI,
  GtI,
  GeI,
  LtUI, ///< unsigned < (bounds checks)
  // Pointer comparison.
  EqQ,

  // Double arithmetic.
  AddD,
  SubD,
  MulD,
  DivD,
  NegD,
  // Double comparisons -> I32 0/1; NaN compares false (JS semantics).
  EqD,
  NeD, ///< true iff ordered-and-unequal OR unordered (JS !=)
  LtD,
  LeD,
  GtD,
  GeD,

  // Conversions.
  I2D,
  UI2D, ///< uint32 -> double (>>> results)
  D2I,  ///< truncating; pair with an exactness guard where needed

  // Calls to C helpers / typed natives.
  Call,

  // Guards: A = I32 condition; Exit attached. GuardT exits if A is FALSE
  // (the condition must hold to stay on trace); GuardF exits if A is TRUE.
  GuardT,
  GuardF,

  // Unconditional transfer off-trace (trace tail that cannot loop back).
  Exit,

  // Call a nested trace tree (Target fragment); exits through the attached
  // descriptor if the inner tree does not return through ExpectedExit.
  TreeCall,

  // Close the loop: jump back to this fragment's entry.
  Loop,

  // Tail-jump to another fragment (branch trace -> tree anchor; linked
  // type-unstable peers).
  JmpFrag,

  // Intra-body control flow (method-tier bodies only; trace bodies stay
  // straight-line). Label marks a join point: Imm.ImmI32 holds its own
  // body index once bound. Jmp: A = target label. JmpIfT/JmpIfF:
  // A = I32 condition, B = target label (taken when true / false).
  Label,
  Jmp,
  JmpIfT,
  JmpIfF,

  NumOps
};

/// Signature and properties of a callable helper.
struct CallInfo {
  void *Addr = nullptr;
  const char *Name = "?";
  LTy Ret = LTy::Void;
  uint8_t NArgs = 0;
  LTy Args[6] = {};
  bool Pure = false; ///< No side effects; CSE/DCE may touch it.
  /// Portable entry for the LIR executor backend: dispatches to Addr with
  /// args as raw 64-bit words (doubles bit-cast); returns a raw word.
  uint64_t (*Shim)(void *Addr, const uint64_t *A) = nullptr;
};

/// One LIR instruction. Arena-allocated; identity is the pointer.
struct LIns {
  LOp Op = LOp::ImmI;
  LTy Ty = LTy::Void;
  uint32_t Id = 0;   ///< Dense numbering for printing / side tables.
  int32_t Disp = 0;  ///< Loads/stores: byte offset.
  LIns *A = nullptr; ///< First operand.
  LIns *B = nullptr; ///< Second operand.

  union {
    int32_t ImmI32;
    int64_t ImmQ64;
    double ImmDbl;
  } Imm = {0};

  // Calls.
  const CallInfo *CI = nullptr;
  LIns **CallArgs = nullptr;
  uint8_t NCallArgs = 0;

  // Guards / exits / transfers.
  ExitDescriptor *Exit = nullptr;
  Fragment *Target = nullptr;        ///< TreeCall / JmpFrag target.
  ExitDescriptor *ExpectedExit = nullptr; ///< TreeCall expected return.

  bool isGuard() const {
    return Op == LOp::GuardT || Op == LOp::GuardF || Op == LOp::AddOvI ||
           Op == LOp::SubOvI || Op == LOp::MulOvI || Op == LOp::TreeCall;
  }
  bool isLoad() const {
    return Op == LOp::LdI || Op == LOp::LdQ || Op == LOp::LdD ||
           Op == LOp::LdUB;
  }
  bool isStore() const {
    return Op == LOp::StI || Op == LOp::StQ || Op == LOp::StD;
  }
  bool isImm() const {
    return Op == LOp::ImmI || Op == LOp::ImmQ || Op == LOp::ImmD;
  }
};

const char *lopName(LOp Op);

/// Streaming writer interface: the recorder emits into the head of a filter
/// pipeline ("Every time the trace recorder emits a LIR instruction, the
/// instruction is immediately passed to the first filter in the forward
/// pipeline", §5.1). Each filter may pass an instruction through, replace
/// it, or swallow it (returning an equivalent existing value).
class LirWriter {
public:
  explicit LirWriter(LirWriter *Downstream) : Out(Downstream) {}
  virtual ~LirWriter() = default;

  virtual LIns *ins0(LOp Op);
  virtual LIns *ins1(LOp Op, LIns *A);
  virtual LIns *ins2(LOp Op, LIns *A, LIns *B);
  virtual LIns *insImmI(int32_t V);
  virtual LIns *insImmQ(int64_t V);
  virtual LIns *insImmD(double V);
  virtual LIns *insLoad(LOp Op, LIns *Base, int32_t Disp);
  virtual LIns *insStore(LOp Op, LIns *Val, LIns *Base, int32_t Disp);
  virtual LIns *insCall(const CallInfo *CI, LIns **Args, uint32_t N);
  virtual LIns *insGuard(LOp Op, LIns *Cond, ExitDescriptor *Exit);
  /// Overflow-checked arithmetic (guard fused into the op).
  virtual LIns *insOvf(LOp Op, LIns *A, LIns *B, ExitDescriptor *Exit);
  virtual LIns *insExit(ExitDescriptor *Exit);
  virtual LIns *insTreeCall(Fragment *Inner, ExitDescriptor *Expected,
                            ExitDescriptor *MismatchExit);
  virtual LIns *insLoop();
  virtual LIns *insJmpFrag(Fragment *Target);
  // Method-tier control flow. makeLabel allocates a label without
  // appending it (forward references); bindLabel appends it at the
  // current position and records its body index; insJmp/insJmpIf emit
  // transfers to a (possibly still unbound) label.
  virtual LIns *makeLabel();
  virtual LIns *bindLabel(LIns *Label);
  virtual LIns *insJmp(LIns *Label);
  virtual LIns *insJmpIf(LOp Op, LIns *Cond, LIns *Label);

protected:
  LirWriter *Out;
};

/// Pipeline tail: materializes instructions into a buffer.
class LirBuffer : public LirWriter {
public:
  explicit LirBuffer(Arena &A) : LirWriter(nullptr), TheArena(A) {}

  LIns *ins0(LOp Op) override;
  LIns *ins1(LOp Op, LIns *A) override;
  LIns *ins2(LOp Op, LIns *A, LIns *B) override;
  LIns *insImmI(int32_t V) override;
  LIns *insImmQ(int64_t V) override;
  LIns *insImmD(double V) override;
  LIns *insLoad(LOp Op, LIns *Base, int32_t Disp) override;
  LIns *insStore(LOp Op, LIns *Val, LIns *Base, int32_t Disp) override;
  LIns *insCall(const CallInfo *CI, LIns **Args, uint32_t N) override;
  LIns *insGuard(LOp Op, LIns *Cond, ExitDescriptor *Exit) override;
  LIns *insOvf(LOp Op, LIns *A, LIns *B, ExitDescriptor *Exit) override;
  LIns *insExit(ExitDescriptor *Exit) override;
  LIns *insTreeCall(Fragment *Inner, ExitDescriptor *Expected,
                    ExitDescriptor *MismatchExit) override;
  LIns *insLoop() override;
  LIns *insJmpFrag(Fragment *Target) override;
  LIns *makeLabel() override;
  LIns *bindLabel(LIns *Label) override;
  LIns *insJmp(LIns *Label) override;
  LIns *insJmpIf(LOp Op, LIns *Cond, LIns *Label) override;

  std::vector<LIns *> &instructions() { return Body; }
  uint32_t size() const { return (uint32_t)Body.size(); }
  Arena &arena() { return TheArena; }

private:
  LIns *append(LIns *I) {
    I->Id = NextId++;
    Body.push_back(I);
    return I;
  }
  LIns *fresh() { return TheArena.make<LIns>(); }

  Arena &TheArena;
  std::vector<LIns *> Body;
  uint32_t NextId = 0;
};

/// Result type of an opcode given the IR's typing rules.
LTy resultType(LOp Op);

/// Render one instruction / a whole body for diagnostics and tests. The
/// PrologueEnd overload brackets a loop-optimized body with "-- prologue --"
/// and "-- loop --" markers (see lir/opt.h).
std::string formatIns(const LIns *I);
std::string formatBody(const std::vector<LIns *> &Body);
std::string formatBody(const std::vector<LIns *> &Body, uint32_t PrologueEnd);

/// Debug consistency check: operand types match opcode signatures, SSA
/// ordering holds (operands defined before uses). Returns an empty string
/// on success, else a description of the first problem.
std::string typecheckBody(const std::vector<LIns *> &Body);

} // namespace tracejit

#endif // TRACEJIT_LIR_LIR_H
