//===- backward.h - Backward LIR filters -------------------------------------===//
//
// The paper's backward filter pipeline (§5.1):
//   * Dead data-stack store elimination -- stores into the trace activation
//     record that no later exit or load can observe are dead. "Stores to
//     locations that are off the top of the interpreter stack at future
//     exits are also dead."
//   * Dead call-stack store elimination -- the same analysis applied to the
//     slots of inlined call frames (in our unified TAR layout these are
//     simply higher slot indices, so one analysis covers both).
//   * Dead code elimination -- removes operations whose values are never
//     used.
//
// The paper streams these through a backward reader into the code
// generator; we run them as two in-place passes over the finished buffer
// before compilation, which computes the same result.
//
//===----------------------------------------------------------------------===//

#ifndef TRACEJIT_LIR_BACKWARD_H
#define TRACEJIT_LIR_BACKWARD_H

#include <cstdint>
#include <vector>

#include "lir/lir.h"

namespace tracejit {

struct BackwardFilterResult {
  uint32_t StoresRemoved = 0;
  uint32_t InsnsRemoved = 0;
};

/// Remove dead TAR stores. \p NumGlobals sizes the globals area of the
/// type-map slot domain (exit liveness is [0, NumGlobals + exit->Sp)).
/// \p EntrySlots is the loop-header state size (the fragment's entry
/// typemap length): those slots stay live across the backedge because a
/// next-iteration side exit writes them back straight from the TAR. Pass
/// UINT32_MAX when unknown; the filter then keeps the widest exit range
/// live at the backedge instead.
uint32_t eliminateDeadStores(std::vector<LIns *> &Body, uint32_t NumGlobals,
                             uint32_t EntrySlots = UINT32_MAX);

/// Remove instructions whose results are unused and that have no side
/// effects.
uint32_t eliminateDeadCode(std::vector<LIns *> &Body);

} // namespace tracejit

#endif // TRACEJIT_LIR_BACKWARD_H
